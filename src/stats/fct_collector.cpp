#include "stats/fct_collector.hpp"

#include <algorithm>

namespace conga::stats {

double FctCollector::avg_normalized_fct() const {
  if (records_.empty()) return 0;
  double s = 0;
  for (const FlowRecord& r : records_) {
    s += static_cast<double>(r.fct) /
         static_cast<double>(std::max<sim::TimeNs>(r.optimal_fct, 1));
  }
  return s / static_cast<double>(records_.size());
}

double FctCollector::avg_fct_seconds(std::uint64_t lo, std::uint64_t hi) const {
  double s = 0;
  std::size_t n = 0;
  for (const FlowRecord& r : records_) {
    if (r.size_bytes >= lo && r.size_bytes < hi) {
      s += sim::to_seconds(r.fct);
      ++n;
    }
  }
  return n == 0 ? 0 : s / static_cast<double>(n);
}

double FctCollector::p99_normalized_fct() const {
  if (records_.empty()) return 0;
  Summary sum;
  for (const FlowRecord& r : records_) {
    sum.add(static_cast<double>(r.fct) /
            static_cast<double>(std::max<sim::TimeNs>(r.optimal_fct, 1)));
  }
  return sum.percentile(99);
}

double FctCollector::median_normalized_fct() const {
  if (records_.empty()) return 0;
  Summary sum;
  for (const FlowRecord& r : records_) {
    sum.add(static_cast<double>(r.fct) /
            static_cast<double>(std::max<sim::TimeNs>(r.optimal_fct, 1)));
  }
  return sum.median();
}

std::size_t FctCollector::count_in(std::uint64_t lo, std::uint64_t hi) const {
  std::size_t n = 0;
  for (const FlowRecord& r : records_) {
    if (r.size_bytes >= lo && r.size_bytes < hi) ++n;
  }
  return n;
}

}  // namespace conga::stats
