#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace conga::stats {

double Summary::mean() const {
  if (samples_.empty()) return 0;
  double s = 0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0;
  const double m = mean();
  double s = 0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size()));
}

double Summary::min() const {
  return samples_.empty() ? 0 : *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  return samples_.empty() ? 0 : *std::max_element(samples_.begin(), samples_.end());
}

double Summary::percentile(double p) const {
  if (samples_.empty()) return 0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

double Summary::cdf_at(double x) const {
  if (samples_.empty()) return 0;
  std::size_t n = 0;
  for (double s : samples_) {
    if (s <= x) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Summary::cdf_points(int n) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || n < 2) return out;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double q = static_cast<double>(i) / (n - 1);
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    out.emplace_back(sorted[idx],
                     static_cast<double>(idx + 1) /
                         static_cast<double>(sorted.size()));
  }
  return out;
}

}  // namespace conga::stats
