#include "stats/samplers.hpp"

#include <algorithm>

namespace conga::stats {

ThroughputImbalanceSampler::ThroughputImbalanceSampler(
    sim::Scheduler& sched, std::vector<const net::Link*> links,
    sim::TimeNs interval, sim::TimeNs start, sim::TimeNs end)
    : sched_(sched), links_(std::move(links)), interval_(interval), end_(end) {
  last_bytes_.resize(links_.size(), 0);
  first_bytes_.resize(links_.size(), 0);
  sched_.schedule_at(start, [this] {
    window_start_ = sched_.now();
    for (std::size_t i = 0; i < links_.size(); ++i) {
      last_bytes_[i] = links_[i]->bytes_sent();
      first_bytes_[i] = last_bytes_[i];
    }
    sched_.schedule_after(interval_, [this] { tick(); });
  });
}

void ThroughputImbalanceSampler::tick() {
  double mx = 0, mn = 0, avg = 0;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const std::uint64_t b = links_[i]->bytes_sent();
    const double delta = static_cast<double>(b - last_bytes_[i]);
    last_bytes_[i] = b;
    if (i == 0) {
      mx = mn = delta;
    } else {
      mx = std::max(mx, delta);
      mn = std::min(mn, delta);
    }
    avg += delta;
  }
  avg /= static_cast<double>(links_.size());
  if (avg > 0) imbalance_.add((mx - mn) / avg * 100.0);
  if (sched_.now() + interval_ <= end_) {
    sched_.schedule_after(interval_, [this] { tick(); });
  }
}

std::vector<double> ThroughputImbalanceSampler::mean_throughput_bps() const {
  std::vector<double> out;
  const double elapsed = sim::to_seconds(sched_.now() - window_start_);
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const double bytes =
        static_cast<double>(links_[i]->bytes_sent() - first_bytes_[i]);
    out.push_back(elapsed > 0 ? bytes * 8.0 / elapsed : 0.0);
  }
  return out;
}

}  // namespace conga::stats
