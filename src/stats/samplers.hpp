// Periodic samplers driving the paper's balance/queue metrics:
//  * ThroughputImbalanceSampler — Fig 12: synchronous samples of per-uplink
//    throughput over fixed intervals; records (MAX-MIN)/AVG per interval.
//  * QueueSampler — Fig 11(c): periodic queue-occupancy samples of one port.
#pragma once

#include <cstdint>
#include <vector>

#include "net/link.hpp"
#include "sim/scheduler.hpp"
#include "stats/summary.hpp"

namespace conga::stats {

class ThroughputImbalanceSampler {
 public:
  /// Samples the byte counters of `links` every `interval` during
  /// [start, end); each interval contributes one imbalance sample in percent.
  ThroughputImbalanceSampler(sim::Scheduler& sched,
                             std::vector<const net::Link*> links,
                             sim::TimeNs interval, sim::TimeNs start,
                             sim::TimeNs end);

  const Summary& imbalance_pct() const { return imbalance_; }
  /// Per-link mean throughput (bits/s) over the whole window.
  std::vector<double> mean_throughput_bps() const;

 private:
  void tick();

  sim::Scheduler& sched_;
  std::vector<const net::Link*> links_;
  sim::TimeNs interval_;
  sim::TimeNs end_;
  sim::TimeNs window_start_ = 0;
  std::vector<std::uint64_t> last_bytes_;
  std::vector<std::uint64_t> first_bytes_;
  Summary imbalance_;
};

class QueueSampler {
 public:
  QueueSampler(sim::Scheduler& sched, const net::Link* link,
               sim::TimeNs interval, sim::TimeNs start, sim::TimeNs end);

  /// Queue occupancy samples, bytes.
  const Summary& occupancy_bytes() const { return occupancy_; }

 private:
  void tick();

  sim::Scheduler& sched_;
  const net::Link* link_;
  sim::TimeNs interval_;
  sim::TimeNs end_;
  Summary occupancy_;
};

}  // namespace conga::stats
