// Periodic samplers driving the paper's balance metrics:
//  * ThroughputImbalanceSampler — Fig 12: synchronous samples of per-uplink
//    throughput over fixed intervals; records (MAX-MIN)/AVG per interval.
// (Single-metric occupancy sampling lives in telemetry::PeriodicSampler over
// a registered probe; the old stats::QueueSampler was folded into it.)
#pragma once

#include <cstdint>
#include <vector>

#include "net/link.hpp"
#include "sim/scheduler.hpp"
#include "stats/summary.hpp"

namespace conga::stats {

class ThroughputImbalanceSampler {
 public:
  /// Samples the byte counters of `links` every `interval` during
  /// [start, end); each interval contributes one imbalance sample in percent.
  ThroughputImbalanceSampler(sim::Scheduler& sched,
                             std::vector<const net::Link*> links,
                             sim::TimeNs interval, sim::TimeNs start,
                             sim::TimeNs end);

  const Summary& imbalance_pct() const { return imbalance_; }
  /// Per-link mean throughput (bits/s) over the whole window.
  std::vector<double> mean_throughput_bps() const;

 private:
  void tick();

  sim::Scheduler& sched_;
  std::vector<const net::Link*> links_;
  sim::TimeNs interval_;
  sim::TimeNs end_;
  sim::TimeNs window_start_ = 0;
  std::vector<std::uint64_t> last_bytes_;
  std::vector<std::uint64_t> first_bytes_;
  Summary imbalance_;
};

}  // namespace conga::stats
