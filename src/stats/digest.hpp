// Run digests for the determinism auditor.
//
// Two complementary hashes over a simulation run:
//  * TraceDigest — order-SENSITIVE streaming hash; fed the dispatch stream
//    (time, event id) it fingerprints the exact interleaving of the run, so
//    any hidden dependence on wall clock, pointer order, or
//    unordered-container iteration shows up as a different digest.
//  * UnorderedDigest — order-INSENSITIVE accumulator (commutative sum + xor
//    of mixed values); fed per-flow FCT records it fingerprints the *results*
//    regardless of completion order, separating "same outcome, different
//    schedule" from "different outcome".
//
// Both are cheap enough to leave on in CI runs and deterministic across
// platforms (pure 64-bit integer arithmetic; doubles are hashed by bit
// pattern).
#pragma once

#include <bit>
#include <cstdint>

#include "sim/hash.hpp"

namespace conga::stats {

/// Hashes a double by bit pattern (bit-identical results hash identically;
/// any numeric drift changes the digest). Normalises -0.0 to 0.0 so the two
/// representations of zero cannot split a digest.
inline std::uint64_t hash_double(double d) {
  if (d == 0.0) d = 0.0;  // collapse -0.0
  return sim::mix64(std::bit_cast<std::uint64_t>(d));
}

/// Order-sensitive streaming digest (mix-and-fold chain over 64-bit words).
class TraceDigest {
 public:
  void add(std::uint64_t v) {
    h_ = sim::mix64(h_ ^ sim::mix64(v + kGamma));
    ++words_;
  }
  void add_double(double d) { add(hash_double(d)); }

  /// Final value; folds the word count in so a truncated stream with a
  /// colliding prefix still differs.
  std::uint64_t value() const { return sim::mix64(h_ ^ words_); }
  std::uint64_t words() const { return words_; }

 private:
  static constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
  std::uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV offset basis as a seed
  std::uint64_t words_ = 0;
};

/// Order-insensitive accumulator: items may arrive in any order and produce
/// the same digest. Keeps both a wrapping sum and an xor of the mixed items
/// (either alone admits easy collisions; together they are robust for audit
/// purposes) plus the count.
class UnorderedDigest {
 public:
  void add(std::uint64_t item_hash) {
    const std::uint64_t m = sim::mix64(item_hash);
    sum_ += m;
    xor_ ^= m;
    ++count_;
  }

  std::uint64_t value() const {
    return sim::mix64(sum_ ^ sim::mix64(xor_ ^ count_));
  }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t sum_ = 0;
  std::uint64_t xor_ = 0;
  std::uint64_t count_ = 0;
};

class FctCollector;

/// Order-insensitive digest over a collector's flow records
/// (size, fct, optimal_fct per flow).
std::uint64_t fct_digest(const FctCollector& collector);

}  // namespace conga::stats
