#include "stats/digest.hpp"

#include "stats/fct_collector.hpp"

namespace conga::stats {

std::uint64_t fct_digest(const FctCollector& collector) {
  UnorderedDigest d;
  for (const FlowRecord& r : collector.records()) {
    // Chain the three fields order-sensitively *within* a record (records as
    // a set are unordered, but a record's fields are not interchangeable).
    TraceDigest rec;
    rec.add(r.size_bytes);
    rec.add(static_cast<std::uint64_t>(r.fct));
    rec.add(static_cast<std::uint64_t>(r.optimal_fct));
    d.add(rec.value());
  }
  return d.value();
}

}  // namespace conga::stats
