// Flow-completion-time accounting, matching the paper's methodology (§5.2):
//  * overall average FCT normalised to the *optimal* FCT achievable in an
//    idle network (Figs 9a, 10a, 11a, 11b);
//  * small-flow (< 100 KB) and large-flow (> 10 MB) breakdowns, reported
//    relative to ECMP (Figs 9b/c, 10b/c).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "stats/summary.hpp"

namespace conga::stats {

struct FlowRecord {
  std::uint64_t size_bytes;
  sim::TimeNs fct;
  sim::TimeNs optimal_fct;
};

class FctCollector {
 public:
  static constexpr std::uint64_t kSmallFlowBytes = 100 * 1000;      // <100KB
  static constexpr std::uint64_t kLargeFlowBytes = 10 * 1000 * 1000;  // >10MB

  void record(std::uint64_t size_bytes, sim::TimeNs fct,
              sim::TimeNs optimal_fct) {
    records_.push_back({size_bytes, fct, optimal_fct});
  }

  std::size_t count() const { return records_.size(); }

  /// Accounts a flow that never completed (reported after the drain gives
  /// up): `delivered_bytes` of its `size_bytes` made it. Unfinished flows
  /// are tracked separately from records_ — they have no FCT, and keeping
  /// them out of records_ leaves the FCT digest a function of completed
  /// flows only.
  void record_unfinished(std::uint64_t size_bytes,
                         std::uint64_t delivered_bytes) {
    ++unfinished_;
    bytes_outstanding_ +=
        size_bytes > delivered_bytes ? size_bytes - delivered_bytes : 0;
  }

  /// Flows accounted via record_unfinished() and their undelivered bytes.
  std::size_t unfinished_count() const { return unfinished_; }
  std::uint64_t bytes_outstanding() const { return bytes_outstanding_; }

  /// Reordering ledger, aggregated over measured flows. Kept out of
  /// records_ so the FCT digest stays a function of completion times only —
  /// policies that reorder identically but deliver differently still get
  /// distinct digests, and vice versa.
  void record_reorder(std::uint64_t segments, std::uint64_t max_distance) {
    reorder_segments_ += segments;
    if (segments > 0) ++reordered_flows_;
    if (max_distance > reorder_max_distance_) {
      reorder_max_distance_ = max_distance;
    }
  }

  /// Out-of-order segments summed over flows.
  std::uint64_t reorder_segments() const { return reorder_segments_; }
  /// Worst byte gap between a stray segment and the in-order frontier.
  std::uint64_t reorder_max_distance() const { return reorder_max_distance_; }
  /// Flows that saw at least one out-of-order segment.
  std::uint64_t reordered_flows() const { return reordered_flows_; }

  /// Mean of FCT / optimal-FCT over all flows ("FCT (Norm. to Optimal)").
  double avg_normalized_fct() const;

  /// Mean raw FCT in seconds over flows in [lo, hi) bytes.
  double avg_fct_seconds(std::uint64_t lo, std::uint64_t hi) const;

  double avg_fct_small() const {
    return avg_fct_seconds(0, kSmallFlowBytes);
  }
  double avg_fct_large() const {
    return avg_fct_seconds(kLargeFlowBytes, UINT64_MAX);
  }
  double avg_fct_overall() const { return avg_fct_seconds(0, UINT64_MAX); }

  /// 99th-percentile normalised FCT (tail behaviour).
  double p99_normalized_fct() const;

  /// Median normalised FCT (robust to RTO-tail outliers).
  double median_normalized_fct() const;

  std::size_t count_in(std::uint64_t lo, std::uint64_t hi) const;

  const std::vector<FlowRecord>& records() const { return records_; }

 private:
  std::vector<FlowRecord> records_;
  std::size_t unfinished_ = 0;
  std::uint64_t bytes_outstanding_ = 0;
  std::uint64_t reorder_segments_ = 0;
  std::uint64_t reorder_max_distance_ = 0;
  std::uint64_t reordered_flows_ = 0;
};

}  // namespace conga::stats
