// Flow-completion-time accounting, matching the paper's methodology (§5.2):
//  * overall average FCT normalised to the *optimal* FCT achievable in an
//    idle network (Figs 9a, 10a, 11a, 11b);
//  * small-flow (< 100 KB) and large-flow (> 10 MB) breakdowns, reported
//    relative to ECMP (Figs 9b/c, 10b/c).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "stats/summary.hpp"

namespace conga::stats {

struct FlowRecord {
  std::uint64_t size_bytes;
  sim::TimeNs fct;
  sim::TimeNs optimal_fct;
};

class FctCollector {
 public:
  static constexpr std::uint64_t kSmallFlowBytes = 100 * 1000;      // <100KB
  static constexpr std::uint64_t kLargeFlowBytes = 10 * 1000 * 1000;  // >10MB

  void record(std::uint64_t size_bytes, sim::TimeNs fct,
              sim::TimeNs optimal_fct) {
    records_.push_back({size_bytes, fct, optimal_fct});
  }

  std::size_t count() const { return records_.size(); }

  /// Mean of FCT / optimal-FCT over all flows ("FCT (Norm. to Optimal)").
  double avg_normalized_fct() const;

  /// Mean raw FCT in seconds over flows in [lo, hi) bytes.
  double avg_fct_seconds(std::uint64_t lo, std::uint64_t hi) const;

  double avg_fct_small() const {
    return avg_fct_seconds(0, kSmallFlowBytes);
  }
  double avg_fct_large() const {
    return avg_fct_seconds(kLargeFlowBytes, UINT64_MAX);
  }
  double avg_fct_overall() const { return avg_fct_seconds(0, UINT64_MAX); }

  /// 99th-percentile normalised FCT (tail behaviour).
  double p99_normalized_fct() const;

  /// Median normalised FCT (robust to RTO-tail outliers).
  double median_normalized_fct() const;

  std::size_t count_in(std::uint64_t lo, std::uint64_t hi) const;

  const std::vector<FlowRecord>& records() const { return records_; }

 private:
  std::vector<FlowRecord> records_;
};

}  // namespace conga::stats
