// Summary statistics helpers: mean, percentiles, CDF extraction.
#pragma once

#include <cstdint>
#include <vector>

namespace conga::stats {

/// Accumulates samples; percentile queries sort a copy on demand.
class Summary {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// p in [0, 100]; linear interpolation between order statistics.
  double percentile(double p) const;
  double median() const { return percentile(50); }

  /// Evaluates the empirical CDF at `x` (fraction of samples <= x).
  double cdf_at(double x) const;

  /// Returns `n` evenly spaced (value, cdf) pairs spanning the sample range,
  /// for printing CDF curves (Figs 11c, 12).
  std::vector<std::pair<double, double>> cdf_points(int n) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace conga::stats
