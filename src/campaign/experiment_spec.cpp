#include "campaign/experiment_spec.hpp"

#include <cstdlib>
#include <memory>
#include <utility>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "lb_ext/policies.hpp"
#include "sim/random.hpp"
#include "stats/digest.hpp"
#include "tcp/flow.hpp"
#include "workload/flow_size_dist.hpp"

namespace conga::campaign {

namespace {

constexpr const char* kSpecSchema = "conga-cell-spec-v1";

Json json_of_override(const net::LinkOverride& o) {
  Json j = Json::object();
  j.set("leaf", Json::integer(o.leaf));
  j.set("spine", Json::integer(o.spine));
  j.set("parallel", Json::integer(o.parallel));
  j.set("rate_factor", Json::number(o.rate_factor));
  return j;
}

}  // namespace

Json json_of_topo(const net::TopologyConfig& t) {
  Json j = Json::object();
  j.set("num_leaves", Json::integer(t.num_leaves));
  j.set("num_spines", Json::integer(t.num_spines));
  j.set("hosts_per_leaf", Json::integer(t.hosts_per_leaf));
  j.set("links_per_spine", Json::integer(t.links_per_spine));
  j.set("host_link_bps", Json::number(t.host_link_bps));
  j.set("fabric_link_bps", Json::number(t.fabric_link_bps));
  j.set("host_link_delay_ns", Json::integer(t.host_link_delay));
  j.set("fabric_link_delay_ns", Json::integer(t.fabric_link_delay));
  j.set("edge_queue_bytes", Json::uinteger(t.edge_queue_bytes));
  j.set("fabric_queue_bytes", Json::uinteger(t.fabric_queue_bytes));
  j.set("nic_queue_bytes", Json::uinteger(t.nic_queue_bytes));
  Json dre = Json::object();
  dre.set("t_dre_ns", Json::integer(t.dre.t_dre));
  dre.set("alpha", Json::number(t.dre.alpha));
  dre.set("q_bits", Json::integer(t.dre.q_bits));
  j.set("dre", std::move(dre));
  j.set("ce_sum", Json::boolean(t.ce_sum));
  j.set("ecn_threshold_bytes", Json::uinteger(t.ecn_threshold_bytes));
  j.set("shared_buffer_bytes", Json::uinteger(t.shared_buffer_bytes));
  j.set("shared_buffer_alpha", Json::number(t.shared_buffer_alpha));
  Json ovr = Json::array();
  for (const net::LinkOverride& o : t.overrides) {
    ovr.push_back(json_of_override(o));
  }
  j.set("overrides", std::move(ovr));
  return j;
}

namespace {

// --- strict field extraction -------------------------------------------------
// Every parser walks the object's members and dispatches by name; an
// unmatched name is an error (a typo must not hash to a fresh cell key).

struct FieldReader {
  const Json& doc;
  std::string& err;
  bool ok = true;

  bool fail(const std::string& what) {
    if (ok) err = what;
    ok = false;
    return false;
  }

  bool want(const Json& v, Json::Kind kind, const char* key) {
    if (kind == Json::Kind::kDouble ? !v.is_number() : v.kind() != kind) {
      return fail(std::string("field '") + key + "' has the wrong type");
    }
    return true;
  }
};

bool read_int(FieldReader& r, const Json& v, const char* key, int& out) {
  if (!v.is_integer()) return r.fail(std::string("expected integer ") + key);
  out = static_cast<int>(v.as_int());
  return true;
}

bool read_i64(FieldReader& r, const Json& v, const char* key,
              std::int64_t& out) {
  if (!v.is_integer()) return r.fail(std::string("expected integer ") + key);
  out = v.as_int();
  return true;
}

bool read_u64(FieldReader& r, const Json& v, const char* key,
              std::uint64_t& out) {
  if (!v.is_integer()) return r.fail(std::string("expected integer ") + key);
  out = v.as_uint();
  return true;
}

bool read_double(FieldReader& r, const Json& v, const char* key,
                 double& out) {
  if (!v.is_number()) return r.fail(std::string("expected number ") + key);
  out = v.as_double();
  return true;
}

bool read_bool(FieldReader& r, const Json& v, const char* key, bool& out) {
  if (!v.is_bool()) return r.fail(std::string("expected bool ") + key);
  out = v.as_bool();
  return true;
}

bool read_string(FieldReader& r, const Json& v, const char* key,
                 std::string& out) {
  if (!v.is_string()) return r.fail(std::string("expected string ") + key);
  out = v.as_string();
  return true;
}

}  // namespace

bool topo_from_json(const Json& doc, net::TopologyConfig& out,
                    std::string& err) {
  if (!doc.is_object()) {
    err = "topo must be an object";
    return false;
  }
  FieldReader r{doc, err};
  net::TopologyConfig t;
  for (const auto& [key, v] : doc.members()) {
    if (key == "num_leaves") read_int(r, v, key.c_str(), t.num_leaves);
    else if (key == "num_spines") read_int(r, v, key.c_str(), t.num_spines);
    else if (key == "hosts_per_leaf")
      read_int(r, v, key.c_str(), t.hosts_per_leaf);
    else if (key == "links_per_spine")
      read_int(r, v, key.c_str(), t.links_per_spine);
    else if (key == "host_link_bps")
      read_double(r, v, key.c_str(), t.host_link_bps);
    else if (key == "fabric_link_bps")
      read_double(r, v, key.c_str(), t.fabric_link_bps);
    else if (key == "host_link_delay_ns")
      read_i64(r, v, key.c_str(), t.host_link_delay);
    else if (key == "fabric_link_delay_ns")
      read_i64(r, v, key.c_str(), t.fabric_link_delay);
    else if (key == "edge_queue_bytes")
      read_u64(r, v, key.c_str(), t.edge_queue_bytes);
    else if (key == "fabric_queue_bytes")
      read_u64(r, v, key.c_str(), t.fabric_queue_bytes);
    else if (key == "nic_queue_bytes")
      read_u64(r, v, key.c_str(), t.nic_queue_bytes);
    else if (key == "dre") {
      if (!v.is_object()) return r.fail("dre must be an object");
      for (const auto& [dk, dv] : v.members()) {
        if (dk == "t_dre_ns") read_i64(r, dv, dk.c_str(), t.dre.t_dre);
        else if (dk == "alpha") read_double(r, dv, dk.c_str(), t.dre.alpha);
        else if (dk == "q_bits") read_int(r, dv, dk.c_str(), t.dre.q_bits);
        else return r.fail("unknown dre field '" + dk + "'");
      }
    } else if (key == "ce_sum") read_bool(r, v, key.c_str(), t.ce_sum);
    else if (key == "ecn_threshold_bytes")
      read_u64(r, v, key.c_str(), t.ecn_threshold_bytes);
    else if (key == "shared_buffer_bytes")
      read_u64(r, v, key.c_str(), t.shared_buffer_bytes);
    else if (key == "shared_buffer_alpha")
      read_double(r, v, key.c_str(), t.shared_buffer_alpha);
    else if (key == "overrides") {
      if (!v.is_array()) return r.fail("overrides must be an array");
      for (const Json& item : v.items()) {
        if (!item.is_object()) return r.fail("override must be an object");
        net::LinkOverride o;
        for (const auto& [ok_, ov] : item.members()) {
          if (ok_ == "leaf") read_int(r, ov, ok_.c_str(), o.leaf);
          else if (ok_ == "spine") read_int(r, ov, ok_.c_str(), o.spine);
          else if (ok_ == "parallel")
            read_int(r, ov, ok_.c_str(), o.parallel);
          else if (ok_ == "rate_factor")
            read_double(r, ov, ok_.c_str(), o.rate_factor);
          else return r.fail("unknown override field '" + ok_ + "'");
        }
        t.overrides.push_back(o);
      }
    } else {
      return r.fail("unknown topo field '" + key + "'");
    }
    if (!r.ok) return false;
  }
  out = t;
  return true;
}

Json json_of_spec(const ExperimentSpec& spec) {
  Json j = Json::object();
  j.set("schema", Json::string(kSpecSchema));
  j.set("dist", Json::string(spec.dist));
  j.set("policy", Json::string(spec.policy));
  j.set("load", Json::number(spec.load));
  j.set("min_rto_ns", Json::integer(spec.min_rto_ns));
  j.set("dctcp", Json::boolean(spec.dctcp));
  j.set("warmup_ns", Json::integer(spec.warmup_ns));
  j.set("measure_ns", Json::integer(spec.measure_ns));
  j.set("max_drain_ns", Json::integer(spec.max_drain_ns));
  j.set("fabric_seed", Json::uinteger(spec.fabric_seed));
  j.set("traffic_seed", Json::uinteger(spec.traffic_seed));
  Json fault = Json::object();
  fault.set("profile", Json::string(spec.fault.profile));
  fault.set("seed", Json::uinteger(spec.fault.seed));
  j.set("fault", std::move(fault));
  j.set("topo", json_of_topo(spec.topo));
  return j;
}

std::string canonical_json(const ExperimentSpec& spec) {
  return json_of_spec(spec).dump();
}

bool spec_from_json(const Json& doc, ExperimentSpec& out, std::string& err) {
  if (!doc.is_object()) {
    err = "spec must be an object";
    return false;
  }
  FieldReader r{doc, err};
  ExperimentSpec s;
  for (const auto& [key, v] : doc.members()) {
    if (key == "schema") {
      std::string schema;
      if (read_string(r, v, key.c_str(), schema) && schema != kSpecSchema) {
        return r.fail("unsupported spec schema '" + schema + "'");
      }
    } else if (key == "dist") read_string(r, v, key.c_str(), s.dist);
    else if (key == "policy") read_string(r, v, key.c_str(), s.policy);
    else if (key == "load") read_double(r, v, key.c_str(), s.load);
    else if (key == "min_rto_ns") read_i64(r, v, key.c_str(), s.min_rto_ns);
    else if (key == "dctcp") read_bool(r, v, key.c_str(), s.dctcp);
    else if (key == "warmup_ns") read_i64(r, v, key.c_str(), s.warmup_ns);
    else if (key == "measure_ns") read_i64(r, v, key.c_str(), s.measure_ns);
    else if (key == "max_drain_ns")
      read_i64(r, v, key.c_str(), s.max_drain_ns);
    else if (key == "fabric_seed")
      read_u64(r, v, key.c_str(), s.fabric_seed);
    else if (key == "traffic_seed")
      read_u64(r, v, key.c_str(), s.traffic_seed);
    else if (key == "fault") {
      if (!v.is_object()) return r.fail("fault must be an object");
      for (const auto& [fk, fv] : v.members()) {
        if (fk == "profile")
          read_string(r, fv, fk.c_str(), s.fault.profile);
        else if (fk == "seed") read_u64(r, fv, fk.c_str(), s.fault.seed);
        else return r.fail("unknown fault field '" + fk + "'");
      }
    } else if (key == "topo") {
      if (!topo_from_json(v, s.topo, err)) return false;
    } else {
      return r.fail("unknown spec field '" + key + "'");
    }
    if (!r.ok) return false;
  }
  out = s;
  return true;
}

bool parse_spec(const std::string& text, ExperimentSpec& out,
                std::string& err) {
  Json doc;
  if (!Json::parse(text, doc, err)) return false;
  return spec_from_json(doc, out, err);
}

std::string cell_key(const ExperimentSpec& spec,
                     const std::string& fingerprint) {
  const std::string keyed = canonical_json(spec) + "\n" + fingerprint;
  stats::TraceDigest stream;
  for (const char c : keyed) stream.add(static_cast<unsigned char>(c));
  return hex64(fnv1a64(keyed)) + hex64(stream.value());
}

namespace {

const workload::FlowSizeDist* find_builtin_dist(const std::string& name) {
  if (name == "enterprise") return &workload::enterprise();
  if (name == "datamining") return &workload::data_mining();
  if (name == "websearch") return &workload::web_search();
  return nullptr;
}

/// The chaos_audit gray profile: 2-3 gray-failure links drawn from the fault
/// seed, covering the whole measurement window.
fault::FaultPlan make_gray_plan(const net::TopologyConfig& topo,
                                std::uint64_t seed, sim::TimeNs horizon) {
  sim::Rng rng(seed);
  fault::FaultPlan plan;
  const int n = static_cast<int>(rng.uniform_int(2, 3));
  for (int i = 0; i < n; ++i) {
    fault::GrayFailureSpec s;
    s.leaf = static_cast<int>(rng.uniform_int(0, topo.num_leaves - 1));
    s.spine = static_cast<int>(rng.uniform_int(0, topo.num_spines - 1));
    s.parallel =
        static_cast<int>(rng.uniform_int(0, topo.links_per_spine - 1));
    s.drop_prob = rng.uniform(0.005, 0.03);
    s.corrupt_prob = rng.uniform(0.0, 0.01);
    s.start = 0;
    s.stop = horizon;
    plan.add(s);
  }
  return plan;
}

}  // namespace

bool to_experiment_config(const ExperimentSpec& spec,
                          workload::ExperimentConfig& out, std::string& err) {
  const lb_ext::PolicyInfo* info = lb_ext::find_policy(spec.policy);
  if (info == nullptr) {
    err = "unknown policy '" + spec.policy +
          "' (registered: " + lb_ext::policy_names() + ")";
    return false;
  }
  workload::ExperimentConfig cfg;
  if (spec.dist.rfind("fixed:", 0) == 0) {
    const double bytes = std::strtod(spec.dist.c_str() + 6, nullptr);
    if (!(bytes >= 1)) {
      err = "bad fixed distribution '" + spec.dist + "'";
      return false;
    }
    cfg.dist = workload::fixed_size(bytes);
  } else if (const workload::FlowSizeDist* d = find_builtin_dist(spec.dist)) {
    cfg.dist = *d;
  } else {
    err = "unknown distribution '" + spec.dist +
          "' (enterprise|datamining|websearch|fixed:<bytes>)";
    return false;
  }
  if (!(spec.load > 0.0) || spec.load > 1.0) {
    err = "load must be in (0, 1]";
    return false;
  }
  const std::string topo_err = spec.topo.validate();
  if (!topo_err.empty()) {
    err = "topo: " + topo_err;
    return false;
  }
  if (spec.warmup_ns < 0 || spec.measure_ns <= 0 || spec.max_drain_ns < 0) {
    err = "windows must be non-negative (measure > 0)";
    return false;
  }

  const sim::TimeNs horizon = spec.warmup_ns + spec.measure_ns;
  fault::FaultPlan plan;
  if (spec.fault.profile == "random") {
    fault::RandomPlanConfig rc;
    rc.horizon = horizon;
    plan = fault::make_random_plan(spec.topo, spec.fault.seed, rc);
  } else if (spec.fault.profile == "gray") {
    plan = make_gray_plan(spec.topo, spec.fault.seed, horizon);
  } else if (spec.fault.profile != "none") {
    err = "unknown fault profile '" + spec.fault.profile +
          "' (none|random|gray)";
    return false;
  }

  cfg.topo = spec.topo;
  cfg.load = spec.load;
  tcp::TcpConfig tcp_cfg;
  tcp_cfg.min_rto = spec.min_rto_ns;
  tcp_cfg.dctcp = spec.dctcp;
  cfg.transport = tcp::make_tcp_flow_factory(tcp_cfg);
  cfg.lb = lb_ext::make_policy(spec.policy);
  cfg.warmup = spec.warmup_ns;
  cfg.measure = spec.measure_ns;
  cfg.max_drain = spec.max_drain_ns;
  cfg.fabric_seed = spec.fabric_seed;
  cfg.traffic_seed = spec.traffic_seed;

  const bool spine_drill = info->spine_drill;
  if (spine_drill || !plan.empty()) {
    // The holder keeps the injector alive for as long as the returned config
    // (run_fct_experiment's callers hold the config through the run).
    auto holder = std::make_shared<std::unique_ptr<fault::FaultInjector>>();
    const std::uint64_t fault_seed = spec.fault.seed;
    cfg.fabric_hook = [spine_drill, plan, fault_seed,
                       holder](net::Fabric& f) {
      if (spine_drill) f.set_spine_drill(true);
      if (!plan.empty()) {
        *holder = std::make_unique<fault::FaultInjector>(f, fault_seed);
        (*holder)->arm(plan);
      }
    };
  }
  out = std::move(cfg);
  return true;
}

Json json_of_result(const workload::ExperimentResult& r) {
  Json j = Json::object();
  j.set("avg_norm_fct", Json::number(r.avg_norm_fct));
  j.set("median_norm_fct", Json::number(r.median_norm_fct));
  j.set("p99_norm_fct", Json::number(r.p99_norm_fct));
  j.set("avg_fct_small", Json::number(r.avg_fct_small));
  j.set("avg_fct_large", Json::number(r.avg_fct_large));
  j.set("avg_fct_overall", Json::number(r.avg_fct_overall));
  j.set("flows", Json::uinteger(r.flows));
  j.set("small_flows", Json::uinteger(r.small_flows));
  j.set("large_flows", Json::uinteger(r.large_flows));
  j.set("completed_fraction", Json::number(r.completed_fraction));
  j.set("drained", Json::boolean(r.drained));
  j.set("unfinished_flows", Json::uinteger(r.unfinished_flows));
  j.set("bytes_outstanding", Json::uinteger(r.bytes_outstanding));
  j.set("fct_digest", Json::string(hex64(r.fct_digest)));
  j.set("reorder_segments", Json::uinteger(r.reorder_segments));
  j.set("reorder_max_distance", Json::uinteger(r.reorder_max_distance));
  j.set("reordered_flows", Json::uinteger(r.reordered_flows));
  j.set("probes_sent", Json::uinteger(r.probes_sent));
  j.set("probes_received", Json::uinteger(r.probes_received));
  return j;
}

bool result_from_json(const Json& doc, workload::ExperimentResult& out,
                      std::string& err) {
  if (!doc.is_object()) {
    err = "result must be an object";
    return false;
  }
  FieldReader r{doc, err};
  workload::ExperimentResult res;
  std::uint64_t tmp = 0;
  for (const auto& [key, v] : doc.members()) {
    if (key == "avg_norm_fct") read_double(r, v, key.c_str(), res.avg_norm_fct);
    else if (key == "median_norm_fct")
      read_double(r, v, key.c_str(), res.median_norm_fct);
    else if (key == "p99_norm_fct")
      read_double(r, v, key.c_str(), res.p99_norm_fct);
    else if (key == "avg_fct_small")
      read_double(r, v, key.c_str(), res.avg_fct_small);
    else if (key == "avg_fct_large")
      read_double(r, v, key.c_str(), res.avg_fct_large);
    else if (key == "avg_fct_overall")
      read_double(r, v, key.c_str(), res.avg_fct_overall);
    else if (key == "flows") {
      if (read_u64(r, v, key.c_str(), tmp)) res.flows = tmp;
    } else if (key == "small_flows") {
      if (read_u64(r, v, key.c_str(), tmp)) res.small_flows = tmp;
    } else if (key == "large_flows") {
      if (read_u64(r, v, key.c_str(), tmp)) res.large_flows = tmp;
    } else if (key == "completed_fraction")
      read_double(r, v, key.c_str(), res.completed_fraction);
    else if (key == "drained") read_bool(r, v, key.c_str(), res.drained);
    else if (key == "unfinished_flows") {
      if (read_u64(r, v, key.c_str(), tmp)) res.unfinished_flows = tmp;
    } else if (key == "bytes_outstanding")
      read_u64(r, v, key.c_str(), res.bytes_outstanding);
    else if (key == "fct_digest") {
      std::string hex;
      if (read_string(r, v, key.c_str(), hex)) {
        res.fct_digest = std::strtoull(hex.c_str(), nullptr, 16);
      }
    } else if (key == "reorder_segments")
      read_u64(r, v, key.c_str(), res.reorder_segments);
    else if (key == "reorder_max_distance")
      read_u64(r, v, key.c_str(), res.reorder_max_distance);
    else if (key == "reordered_flows")
      read_u64(r, v, key.c_str(), res.reordered_flows);
    else if (key == "probes_sent")
      read_u64(r, v, key.c_str(), res.probes_sent);
    else if (key == "probes_received")
      read_u64(r, v, key.c_str(), res.probes_received);
    else
      return r.fail("unknown result field '" + key + "'");
    if (!r.ok) return false;
  }
  out = res;
  return true;
}

}  // namespace conga::campaign
