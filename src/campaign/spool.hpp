// Spool-mode service loop for conga_serve: a long-lived daemon that watches
// a spool directory for campaign request files and runs each one under the
// crash-safe supervisor.
//
// Protocol (one request file => three derived files, all beside it):
//   <name>.json         the campaign request (conga-campaign-v1 spec doc)
//   <name>.out.jsonl    streamed per-cell results, one JSON object per line,
//                       appended (and flushed) as each cell resolves
//   <name>.report.json  the final conga-campaign-v1 report, written
//                       atomically (tmp + rename + fsync); its existence
//                       marks the request done and it is never rewritten
//   <name>.resume.json  fsync'd drain marker: the daemon was shut down with
//                       this request in flight; a restarted daemon picks the
//                       request up again (store hits make completed cells
//                       free) and replaces the marker with the report
//   <name>.error        the request was malformed; recorded once so a bad
//                       file cannot wedge the spool
//
// Requests are processed in lexicographic filename order. SIGTERM/SIGINT
// (the caller's shutdown flag) drains: in-flight children get their grace,
// a resume marker is fsync'd, and serve_spool returns cleanly — a
// killed-and-restarted daemon reproduces the undisturbed report
// byte-for-byte because the report is a pure function of (request,
// fingerprint, results) and completed cells come back as store hits.
#pragma once

#include <csignal>
#include <string>

#include "campaign/supervisor.hpp"

namespace conga::campaign {

struct SpoolOptions {
  std::string dir;         ///< spool directory (created if absent)
  std::string store_root;  ///< result store; "" disables caching AND resume
  int poll_ms = 500;       ///< directory re-scan interval when idle
  bool once = false;       ///< process what is there now, then exit
  SupervisorOptions supervisor;
  telemetry::TraceSink* sink = nullptr;
  bool verbose = false;
};

/// Runs the spool loop until `shutdown` (may not be null) goes nonzero —
/// or, with `once`, until the current directory contents are processed.
/// Returns 0 on a clean exit (including a drain), 2 on setup failure
/// (unusable spool directory), with `err` set.
int serve_spool(const SpoolOptions& opts,
                const volatile std::sig_atomic_t* shutdown, std::string& err);

}  // namespace conga::campaign
