// Minimal JSON document model for the campaign service.
//
// The cache keys of the content-addressed result store are hashes of
// *canonical* JSON bytes, so the campaign layer needs its own JSON that can
// (a) parse a request or stored entry whose fields arrive in any order, and
// (b) re-serialize it into one deterministic byte sequence. The writer is
// canonical by construction: object keys are emitted in the order the caller
// inserted them (spec serializers use one fixed order), integers print as
// plain decimal, and doubles print via std::to_chars shortest-round-trip
// form, so value-preserving parse -> dump cycles are byte-stable.
//
// Deliberately small: objects, arrays, strings, bools, null, and numbers
// split into signed/unsigned integer vs double (a cache key must not change
// because 7 was reparsed as 7.0). No external dependency — the container
// bakes in only gtest/benchmark.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace conga::campaign {

class Json {
 public:
  enum class Kind : std::uint8_t {
    kNull = 0,
    kBool,
    kInt,     ///< fits std::int64_t, written without decimal point
    kUint,    ///< > INT64_MAX, written without decimal point
    kDouble,  ///< everything else numeric
    kString,
    kArray,
    kObject,
  };

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json integer(std::int64_t v);
  static Json uinteger(std::uint64_t v);
  static Json number(double v);
  static Json string(std::string v);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }
  bool is_integer() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  /// Numeric accessors convert between the three numeric kinds.
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;
  const std::string& as_string() const { return str_; }

  // Arrays.
  const std::vector<Json>& items() const { return items_; }
  std::size_t size() const { return items_.size(); }
  const Json& at(std::size_t i) const { return items_[i]; }
  Json& push_back(Json v);

  // Objects: insertion-ordered key/value pairs (canonical serializers rely
  // on controlling the order; lookups are linear, specs are small).
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }
  /// Value for `key`, or nullptr when absent.
  const Json* find(const std::string& key) const;
  /// Appends (no duplicate check — serializers own the key discipline).
  Json& set(std::string key, Json v);

  /// Canonical compact form: no whitespace, fixed member order.
  std::string dump() const;
  /// Two-space indented form for human-facing report files. Same bytes for
  /// the same document — only the whitespace differs from dump().
  std::string dump_pretty() const;

  /// Parses `text` (strict JSON, UTF-8 passthrough). Returns false and sets
  /// `err` (with a byte offset) on malformed input or trailing garbage.
  static bool parse(const std::string& text, Json& out, std::string& err);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double dbl_ = 0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Formats a double the way the canonical writer does (std::to_chars
/// shortest round-trip); exposed for result-payload digests.
std::string canonical_double(double v);

/// 64-bit FNV-1a over a byte string — the store's payload digest primitive.
std::uint64_t fnv1a64(const std::string& bytes);

/// Fixed-width lowercase hex of a 64-bit value (16 chars).
std::string hex64(std::uint64_t v);

}  // namespace conga::campaign
