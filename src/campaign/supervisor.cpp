#include "campaign/supervisor.hpp"

// conga-lint: allow-file(wall-clock): supervision deadlines, retry backoff,
// and drain grace are real elapsed time by design; they schedule child
// processes, never simulation events, and no digest or report byte depends
// on them.

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/experiment_spec.hpp"
#include "campaign/fingerprint.hpp"
#include "campaign/json.hpp"
#include "campaign/store.hpp"

namespace conga::campaign {

namespace {

constexpr const char* kCellRequestSchema = "conga-cell-request-v1";
constexpr const char* kCellResponseSchema = "conga-cell-response-v1";
constexpr const char* kQuarantineSchema = "conga-quarantine-v1";

/// Child exit code meaning "retrying cannot help" (bad request / spec).
constexpr int kExitPermanent = 3;

constexpr std::uint64_t kRecomputedFlag = 1ULL << 63;

using Clock = std::chrono::steady_clock;

std::int64_t ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(to - from)
      .count();
}

/// One finished attempt, as recorded in the quarantine poison file.
struct AttemptRecord {
  std::string outcome;  ///< "exit" | "signal" | "timeout"
  int exit_code = 0;
  int term_signal = 0;
  std::int64_t backoff_ms = 0;  ///< delay scheduled after this attempt
};

/// A cell waiting to run (first time or retry).
struct PendingCell {
  std::size_t idx = 0;
  int attempt = 1;  ///< attempt number the next launch will be
  Clock::time_point ready_at;  ///< epoch default: ready immediately
  bool was_corrupt = false;    ///< store had a corrupt entry for this key
  std::vector<AttemptRecord> attempts;
};

/// A live child process.
struct ChildSlot {
  pid_t pid = -1;
  int out_fd = -1;      ///< nonblocking read end of the child's stdout
  std::string buf;      ///< accumulated response bytes
  PendingCell cell;
  Clock::time_point started;
  bool killed = false;
  bool timed_out = false;      ///< killed by its own deadline
  bool shutdown_kill = false;  ///< killed by the drain grace; stays pending
};

std::string make_cell_request(const Cell& cell, const std::string& fingerprint,
                              const std::string& store_root) {
  Json j = Json::object();
  j.set("schema", Json::string(kCellRequestSchema));
  j.set("key", Json::string(cell.key));
  j.set("fingerprint", Json::string(fingerprint));
  j.set("store", Json::string(store_root));
  j.set("spec", json_of_spec(cell.spec));
  return j.dump() + "\n";
}

/// Forks and execs `exe cell`, feeding it `request` on stdin. On success
/// the child's stdout read end (nonblocking) and pid are returned.
bool spawn_cell(const std::string& exe, const std::string& request,
                const char* action, pid_t& pid_out, int& fd_out,
                std::string& err) {
  int in_pipe[2] = {-1, -1};
  int out_pipe[2] = {-1, -1};
  if (::pipe(in_pipe) != 0) {
    err = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  if (::pipe(out_pipe) != 0) {
    err = std::string("pipe: ") + std::strerror(errno);
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    err = std::string("fork: ") + std::strerror(errno);
    for (const int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]}) {
      ::close(fd);
    }
    return false;
  }
  if (pid == 0) {
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    // Close everything but stdio — inherited pipe ends of sibling children
    // must not keep their streams open.
    for (int fd = 3; fd < 256; ++fd) ::close(fd);
    if (action != nullptr && *action != '\0') {
      ::setenv("CONGA_CELL_FAULT_ACTION", action, 1);
    } else {
      ::unsetenv("CONGA_CELL_FAULT_ACTION");
    }
    ::execl(exe.c_str(), "conga_serve", "cell",
            static_cast<char*>(nullptr));
    std::fprintf(stderr, "conga_serve: exec %s failed: %s\n", exe.c_str(),
                 std::strerror(errno));
    std::_Exit(127);
  }
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  // The child reads stdin to EOF before anything else, so a blocking write
  // completes; if it died already (EPIPE — SIGPIPE is ignored), the reaper
  // classifies the failure.
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::write(in_pipe[1], request.data() + off, request.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(in_pipe[1]);
  ::fcntl(out_pipe[0], F_SETFL, O_NONBLOCK);
  pid_out = pid;
  fd_out = out_pipe[0];
  return true;
}

void drain_pipe(ChildSlot& slot) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(slot.out_fd, buf, sizeof(buf));
    if (n > 0) {
      slot.buf.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    break;  // 0 = EOF, -1 = EAGAIN/err; the reaper does the final drain
  }
}

bool parse_response(const std::string& text, const std::string& key,
                    workload::ExperimentResult& result, bool& stored,
                    std::string& err) {
  Json doc;
  if (!Json::parse(text, doc, err)) {
    err = "unparseable cell response: " + err;
    return false;
  }
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kCellResponseSchema) {
    err = "bad cell response schema";
    return false;
  }
  const Json* got_key = doc.find("key");
  if (got_key == nullptr || !got_key->is_string() ||
      got_key->as_string() != key) {
    err = "cell response key mismatch";
    return false;
  }
  const Json* stored_v = doc.find("stored");
  stored = stored_v != nullptr && stored_v->is_bool() && stored_v->as_bool();
  const Json* result_v = doc.find("result");
  if (result_v == nullptr || !result_v->is_object()) {
    err = "cell response missing result";
    return false;
  }
  return result_from_json(*result_v, result, err);
}

bool write_file_synced(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool flushed = std::fflush(f) == 0;
  const bool synced = ::fsync(::fileno(f)) == 0;
  return (std::fclose(f) == 0) && wrote && flushed && synced;
}

/// Writes the quarantine poison record; returns its path or "" on failure
/// (a store that cannot take the record must not re-kill the campaign).
std::string write_quarantine(const std::string& store_root, const Cell& cell,
                             const PendingCell& pc, int max_attempts) {
  if (store_root.empty()) return "";
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(store_root) / "quarantine";
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return "";

  Json j = Json::object();
  j.set("schema", Json::string(kQuarantineSchema));
  j.set("key", Json::string(cell.key));
  j.set("coordinate", Json::string(cell_coordinate(cell)));
  j.set("cell_index", Json::uinteger(pc.idx));
  j.set("max_attempts", Json::integer(max_attempts));
  Json attempts = Json::array();
  for (std::size_t a = 0; a < pc.attempts.size(); ++a) {
    const AttemptRecord& rec = pc.attempts[a];
    Json e = Json::object();
    e.set("attempt", Json::uinteger(a + 1));
    e.set("outcome", Json::string(rec.outcome));
    e.set("exit_code", Json::integer(rec.exit_code));
    e.set("signal", Json::integer(rec.term_signal));
    e.set("backoff_ms", Json::integer(rec.backoff_ms));
    attempts.push_back(std::move(e));
  }
  j.set("attempts", std::move(attempts));
  j.set("spec", json_of_spec(cell.spec));

  const std::string path = (dir / (cell.key + ".json")).string();
  const std::string tmp = path + "." + std::to_string(::getpid()) + ".tmp";
  if (!write_file_synced(tmp, j.dump_pretty() + "\n")) {
    fs::remove(tmp, ec);
    return "";
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return "";
  }
  return path;
}

}  // namespace

std::int64_t backoff_delay_ms(const std::string& key, int attempt,
                              const SupervisorOptions& opts) {
  const std::int64_t base = std::max<std::int64_t>(1, opts.backoff_base_ms);
  const std::int64_t cap = std::max<std::int64_t>(base, opts.backoff_cap_ms);
  const int shift = std::min(std::max(attempt - 1, 0), 20);
  std::int64_t delay = base << shift;
  if (delay <= 0 || delay > cap) delay = cap;
  // Keyed jitter: deterministic per (cell, attempt), so reruns follow the
  // same schedule while distinct cells desynchronize.
  const std::uint64_t h = fnv1a64(key + "#" + std::to_string(attempt));
  const auto span = static_cast<std::uint64_t>(std::max<std::int64_t>(
      1, base / 4));
  return delay + static_cast<std::int64_t>(h % span);
}

bool parse_cell_fault(const std::string& text,
                      std::vector<CellFaultDirective>& out,
                      std::string& err) {
  out.clear();
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) {
      err = "CONGA_CELL_FAULT directive '" + item +
            "' wants mode:cell[@attempt]";
      return false;
    }
    CellFaultDirective d;
    const std::string mode = item.substr(0, colon);
    if (mode == "crash") {
      d.mode = CellFaultDirective::Mode::kCrash;
    } else if (mode == "hang") {
      d.mode = CellFaultDirective::Mode::kHang;
    } else if (mode == "tear") {
      d.mode = CellFaultDirective::Mode::kTear;
    } else {
      err = "unknown CONGA_CELL_FAULT mode '" + mode +
            "' (crash, hang, tear)";
      return false;
    }
    std::string rest = item.substr(colon + 1);
    const std::size_t at = rest.find('@');
    if (at != std::string::npos) {
      const std::string attempt_text = rest.substr(at + 1);
      char* parse_end = nullptr;
      const long attempt = std::strtol(attempt_text.c_str(), &parse_end, 10);
      if (parse_end == attempt_text.c_str() || *parse_end != '\0' ||
          attempt <= 0) {
        err = "bad attempt in CONGA_CELL_FAULT directive '" + item + "'";
        return false;
      }
      d.attempt = static_cast<int>(attempt);
      rest = rest.substr(0, at);
    }
    char* parse_end = nullptr;
    const long cell = std::strtol(rest.c_str(), &parse_end, 10);
    if (parse_end == rest.c_str() || *parse_end != '\0' || cell < 0) {
      err = "bad cell index in CONGA_CELL_FAULT directive '" + item + "'";
      return false;
    }
    d.cell = static_cast<std::size_t>(cell);
    out.push_back(d);
  }
  return true;
}

const char* fault_action(const std::vector<CellFaultDirective>& directives,
                         std::size_t cell, int attempt) {
  for (const CellFaultDirective& d : directives) {
    if (d.cell != cell) continue;
    if (d.attempt != 0 && d.attempt != attempt) continue;
    switch (d.mode) {
      case CellFaultDirective::Mode::kCrash:
        return "crash";
      case CellFaultDirective::Mode::kHang:
        return "hang";
      case CellFaultDirective::Mode::kTear:
        return "tear";
    }
  }
  return "";
}

std::string self_exe_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
  return argv0 != nullptr ? std::string(argv0) : std::string();
}

int cell_main(const std::string& request_text, std::string& response_out,
              std::string& diag) {
  response_out.clear();
  Json doc;
  std::string err;
  if (!Json::parse(request_text, doc, err)) {
    diag = "cell: bad request: " + err;
    return kExitPermanent;
  }
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kCellRequestSchema) {
    diag = "cell: not a conga-cell-request-v1 document";
    return kExitPermanent;
  }
  const Json* key_v = doc.find("key");
  const Json* fp_v = doc.find("fingerprint");
  const Json* store_v = doc.find("store");
  const Json* spec_v = doc.find("spec");
  if (key_v == nullptr || !key_v->is_string() || fp_v == nullptr ||
      !fp_v->is_string() || store_v == nullptr || !store_v->is_string() ||
      spec_v == nullptr || !spec_v->is_object()) {
    diag = "cell: request missing key/fingerprint/store/spec";
    return kExitPermanent;
  }

  // Deterministic failure injection for tests and the crash-resilience CI
  // lane; the supervisor decides which (cell, attempt) gets which action.
  const char* action = std::getenv("CONGA_CELL_FAULT_ACTION");
  if (action != nullptr) {
    if (std::strcmp(action, "crash") == 0) std::abort();
    if (std::strcmp(action, "hang") == 0) {
      // Hang until killed — but bail out if orphaned (supervisor was
      // SIGKILLed and can no longer reap us), so tests never leak sleepers.
      while (::getppid() != 1) ::usleep(50 * 1000);
      std::_Exit(0);
    }
    if (std::strcmp(action, "tear") == 0) {
      ResultStore::set_tear_after_tmp_write_for_tests(true);
    }
  }

  ExperimentSpec spec;
  if (!spec_from_json(*spec_v, spec, err)) {
    diag = "cell: bad spec: " + err;
    return kExitPermanent;
  }
  workload::ExperimentConfig cfg;
  if (!to_experiment_config(spec, cfg, err)) {
    diag = "cell: " + err;
    return kExitPermanent;
  }
  const workload::ExperimentResult result = workload::run_fct_experiment(cfg);

  bool stored = false;
  std::string store_err;
  if (!store_v->as_string().empty()) {
    ResultStore store(store_v->as_string());
    stored = store.put(key_v->as_string(), fp_v->as_string(),
                       canonical_json(spec), result, store_err);
  }

  Json resp = Json::object();
  resp.set("schema", Json::string(kCellResponseSchema));
  resp.set("key", Json::string(key_v->as_string()));
  resp.set("stored", Json::boolean(stored));
  resp.set("store_error", Json::string(store_err));
  resp.set("result", json_of_result(result));
  response_out = resp.dump() + "\n";
  return 0;
}

bool run_campaign_supervised(const CampaignSpec& spec, const RunOptions& ropts,
                             const SupervisorOptions& sopts,
                             const CellDoneFn& on_done,
                             const volatile std::sig_atomic_t* shutdown,
                             CampaignRun& out, SuperviseOutcome& outcome,
                             std::string& err) {
  outcome = SuperviseOutcome::kComplete;
  if (spec.policies.empty() || spec.loads_pct.empty() || spec.seeds.empty() ||
      spec.faults.empty()) {
    err = "campaign axes must be non-empty "
          "(policies, loads_pct, seeds, faults)";
    return false;
  }
  if (sopts.exe.empty() || ::access(sopts.exe.c_str(), X_OK) != 0) {
    err = "supervisor: cell executable '" + sopts.exe +
          "' is not executable";
    return false;
  }
  std::vector<CellFaultDirective> faults;
  if (!parse_cell_fault(sopts.fault_spec, faults, err)) return false;

  CampaignRun run;
  run.spec = spec;
  if (run.spec.cases.empty()) {
    run.spec.cases.push_back({"baseline", net::testbed_baseline()});
  }
  run.fingerprint = code_fingerprint();
  run.cells = expand_campaign(run.spec, run.fingerprint);
  const std::size_t n = run.cells.size();
  run.results.resize(n);
  run.origins.assign(n, CellOrigin::kComputed);
  run.stats.cells = n;

  // Phase 1 — store lookups on the main thread; hits stream immediately.
  std::vector<PendingCell> pending;
  for (std::size_t i = 0; i < n; ++i) {
    PendingCell pc;
    pc.idx = i;
    if (ropts.store == nullptr) {
      pending.push_back(std::move(pc));
      continue;
    }
    std::string load_err;
    switch (ropts.store->load(run.cells[i].key, run.results[i], load_err)) {
      case ResultStore::LoadStatus::kHit:
        run.origins[i] = CellOrigin::kCached;
        ++run.stats.hits;
        if (on_done) {
          on_done(i, run.cells[i], CellOrigin::kCached, &run.results[i]);
        }
        break;
      case ResultStore::LoadStatus::kCorrupt:
        ++run.stats.corrupt;
        if (ropts.verbose) {
          std::fprintf(stderr,
                       "supervisor: corrupt entry %s (%s); recomputing\n",
                       run.cells[i].key.c_str(), load_err.c_str());
        }
        pc.was_corrupt = true;
        pending.push_back(std::move(pc));
        break;
      case ResultStore::LoadStatus::kMiss:
        pending.push_back(std::move(pc));
        break;
    }
  }
  run.stats.misses = pending.size();

  // Phase 2 — the supervision loop. Main thread only: it forks children,
  // drains their pipes, enforces deadlines, and emits telemetry.
  std::signal(SIGPIPE, SIG_IGN);  // a dead child's stdin is a failed write
  telemetry::ComponentId comp = telemetry::kInvalidComponent;
  if (ropts.sink != nullptr) {
    comp = ropts.sink->intern_component("supervisor/" + run.spec.name);
  }
  const std::size_t jobs =
      static_cast<std::size_t>(std::max(1, sopts.jobs));
  std::vector<ChildSlot> running;
  std::vector<std::uint8_t> stored_flags(n, 0);
  bool degraded = false;
  bool degraded_warned = false;
  bool stop_seen = false;
  Clock::time_point stop_time;
  bool drained = false;

  auto handle_exit = [&](ChildSlot& slot, int status) {
    PendingCell pc = std::move(slot.cell);
    const std::size_t idx = pc.idx;
    const Cell& cell = run.cells[idx];
    if (slot.shutdown_kill) {
      // In-flight at shutdown: goes back to pending untouched so a resumed
      // run recomputes it (and only it).
      pending.push_back(std::move(pc));
      return;
    }
    const bool exited = WIFEXITED(status);
    const int code = exited ? WEXITSTATUS(status) : 0;
    const int sig = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
    const std::uint64_t enc =
        exited ? static_cast<std::uint64_t>(code)
               : (0x100ULL | static_cast<std::uint64_t>(sig));
    telemetry::emit(ropts.sink, telemetry::EventType::kSupervisorExit, comp,
                    0, idx,
                    (static_cast<std::uint64_t>(pc.attempt) << 32) | enc);

    if (exited && code == 0) {
      workload::ExperimentResult result;
      bool stored = false;
      std::string perr;
      if (parse_response(slot.buf, cell.key, result, stored, perr)) {
        run.results[idx] = result;
        run.origins[idx] =
            pc.was_corrupt ? CellOrigin::kRecomputed : CellOrigin::kComputed;
        stored_flags[idx] = stored ? 1 : 0;
        if (!sopts.store_root.empty() && !stored) {
          degraded = true;
          if (!degraded_warned) {
            degraded_warned = true;
            std::fprintf(stderr,
                         "supervisor: WARNING store degraded, keeping "
                         "results in memory\n");
          }
        }
        if (ropts.verbose) {
          std::fprintf(stderr, "  [%s: %zu flows, attempt %d]\n",
                       cell_coordinate(cell).c_str(), result.flows,
                       pc.attempt);
        }
        if (on_done) on_done(idx, cell, run.origins[idx], &run.results[idx]);
        return;
      }
      if (ropts.verbose) {
        std::fprintf(stderr, "supervisor: cell %zu attempt %d: %s\n", idx,
                     pc.attempt, perr.c_str());
      }
    }

    AttemptRecord rec;
    if (slot.timed_out) {
      rec.outcome = "timeout";
      rec.term_signal = sig;
      ++run.stats.timeouts;
    } else if (sig != 0) {
      rec.outcome = "signal";
      rec.term_signal = sig;
    } else {
      rec.outcome = "exit";
      rec.exit_code = code;
    }
    pc.attempts.push_back(rec);

    const bool permanent = exited && code == kExitPermanent;
    if (permanent || pc.attempt >= sopts.max_attempts) {
      FailedCell f;
      f.index = idx;
      f.coordinate = cell_coordinate(cell);
      f.key = cell.key;
      f.attempts = pc.attempt;
      f.outcome = pc.attempts.back().outcome;
      f.exit_code = pc.attempts.back().exit_code;
      f.term_signal = pc.attempts.back().term_signal;
      f.quarantine_path =
          write_quarantine(sopts.store_root, cell, pc, sopts.max_attempts);
      run.origins[idx] = CellOrigin::kFailed;
      ++run.stats.failed;
      telemetry::emit(ropts.sink,
                      telemetry::EventType::kSupervisorQuarantine, comp, 0,
                      idx, static_cast<std::uint64_t>(pc.attempt));
      {
        std::fprintf(stderr,
                     "supervisor: QUARANTINE cell %zu (%s) after %d "
                     "attempt(s): %s\n",
                     idx, f.coordinate.c_str(), f.attempts,
                     f.outcome.c_str());
      }
      run.failed.push_back(std::move(f));
      if (on_done) on_done(idx, cell, CellOrigin::kFailed, nullptr);
      return;
    }

    const std::int64_t delay = backoff_delay_ms(cell.key, pc.attempt, sopts);
    pc.attempts.back().backoff_ms = delay;
    telemetry::emit(
        ropts.sink, telemetry::EventType::kSupervisorRetry, comp, 0, idx,
        (static_cast<std::uint64_t>(pc.attempt) << 32) |
            static_cast<std::uint64_t>(delay));
    ++run.stats.retries;
    if (ropts.verbose) {
      std::fprintf(stderr,
                   "supervisor: cell %zu attempt %d failed (%s); retry in "
                   "%lld ms\n",
                   idx, pc.attempt, rec.outcome.c_str(),
                   static_cast<long long>(delay));
    }
    pc.ready_at = Clock::now() + std::chrono::milliseconds(delay);
    ++pc.attempt;
    pending.push_back(std::move(pc));
  };

  while (!pending.empty() || !running.empty()) {
    const bool stopping = shutdown != nullptr && *shutdown != 0;
    if (stopping && !stop_seen) {
      stop_seen = true;
      stop_time = Clock::now();
    }

    // Launch ready cells into free slots (never after shutdown).
    if (!stopping) {
      for (auto it = pending.begin();
           it != pending.end() && running.size() < jobs;) {
        if (it->ready_at > Clock::now()) {
          ++it;
          continue;
        }
        ChildSlot slot;
        slot.cell = std::move(*it);
        it = pending.erase(it);
        const Cell& cell = run.cells[slot.cell.idx];
        const std::string request =
            make_cell_request(cell, run.fingerprint, sopts.store_root);
        const char* action =
            fault_action(faults, slot.cell.idx, slot.cell.attempt);
        std::string spawn_err;
        if (!spawn_cell(sopts.exe, request, action, slot.pid, slot.out_fd,
                        spawn_err)) {
          // fork/pipe exhaustion: treat as a failed attempt so the backoff
          // gives the system air instead of spinning.
          ChildSlot failed = std::move(slot);
          failed.buf.clear();
          std::fprintf(stderr, "supervisor: spawn failed: %s\n",
                       spawn_err.c_str());
          handle_exit(failed, 127 << 8);  // synthesized "exit 127" status
          continue;
        }
        slot.started = Clock::now();
        telemetry::emit(ropts.sink, telemetry::EventType::kSupervisorSpawn,
                        comp, 0, slot.cell.idx,
                        static_cast<std::uint64_t>(slot.cell.attempt));
        if (ropts.verbose) {
          std::fprintf(stderr, "supervisor: spawn cell %zu attempt %d%s%s\n",
                       slot.cell.idx, slot.cell.attempt,
                       *action != '\0' ? " fault=" : "", action);
        }
        running.push_back(std::move(slot));
      }
    }

    // Drain child stdout so a chatty child never blocks on a full pipe.
    for (ChildSlot& slot : running) drain_pipe(slot);

    // Reap.
    for (std::size_t si = 0; si < running.size();) {
      int status = 0;
      const pid_t r = ::waitpid(running[si].pid, &status, WNOHANG);
      if (r == running[si].pid) {
        drain_pipe(running[si]);  // final bytes between last drain and exit
        ::close(running[si].out_fd);
        handle_exit(running[si], status);
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(si));
      } else {
        ++si;
      }
    }

    // Deadlines — and, during shutdown, the drain grace.
    for (ChildSlot& slot : running) {
      if (slot.killed) continue;
      const std::int64_t elapsed = ms_between(slot.started, Clock::now());
      const bool over_deadline = elapsed > sopts.deadline_ms;
      const bool over_grace =
          stop_seen &&
          ms_between(stop_time, Clock::now()) > sopts.drain_grace_ms;
      if (!over_deadline && !over_grace) continue;
      ::kill(slot.pid, SIGKILL);
      slot.killed = true;
      if (over_deadline) {
        slot.timed_out = true;
        telemetry::emit(ropts.sink, telemetry::EventType::kSupervisorTimeout,
                        comp, 0, slot.cell.idx,
                        static_cast<std::uint64_t>(slot.cell.attempt));
        if (ropts.verbose) {
          std::fprintf(stderr,
                       "supervisor: cell %zu attempt %d hit the %lld ms "
                       "deadline\n",
                       slot.cell.idx, slot.cell.attempt,
                       static_cast<long long>(sopts.deadline_ms));
        }
      } else {
        slot.shutdown_kill = true;
      }
    }

    if (stopping && running.empty()) {
      drained = !pending.empty();
      break;
    }
    if (!running.empty() || !pending.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  // Deterministic report order regardless of completion interleaving.
  std::sort(run.failed.begin(), run.failed.end(),
            [](const FailedCell& a, const FailedCell& b) {
              return a.index < b.index;
            });

  run.stats.store = sopts.store_root.empty() && ropts.store == nullptr
                        ? StoreHealth::kNone
                        : (degraded ? StoreHealth::kDegraded
                                    : StoreHealth::kOk);
  std::uint64_t writes = 0;
  for (const std::uint8_t s : stored_flags) writes += s;
  run.stats.store_writes = writes;

  // Phase 3 — campaign cache telemetry, same shape as run_campaign().
  if (ropts.sink != nullptr && !drained) {
    const telemetry::ComponentId ccomp =
        ropts.sink->intern_component("campaign/" + run.spec.name);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key_hash = fnv1a64(run.cells[i].key);
      switch (run.origins[i]) {
        case CellOrigin::kCached:
          telemetry::emit(ropts.sink, telemetry::EventType::kCampaignCellHit,
                          ccomp, 0, i, key_hash);
          break;
        case CellOrigin::kComputed:
          telemetry::emit(ropts.sink,
                          telemetry::EventType::kCampaignCellMiss, ccomp, 0,
                          i, key_hash);
          break;
        case CellOrigin::kRecomputed:
          telemetry::emit(ropts.sink,
                          telemetry::EventType::kCampaignCellMiss, ccomp, 0,
                          i, key_hash | kRecomputedFlag);
          break;
        case CellOrigin::kFailed:
          break;  // kSupervisorQuarantine already told the story
      }
      if (stored_flags[i] != 0) {
        telemetry::emit(ropts.sink,
                        telemetry::EventType::kCampaignStoreWrite, ccomp, 0,
                        i, key_hash);
      }
    }
  }

  outcome = drained ? SuperviseOutcome::kDrained : SuperviseOutcome::kComplete;
  out = std::move(run);
  return true;
}

}  // namespace conga::campaign
