// Campaign service: declarative sweep requests, incremental execution.
//
// A campaign is a declarative request — scenario family (named topology
// cases), a seed set, and a policy x load x fault grid — expanded into
// cells in one canonical order. Each cell is an ExperimentSpec keyed by
// cell_key() (canonical spec bytes + build fingerprint) and looked up in a
// content-addressed ResultStore; only misses are scheduled onto the
// parallel experiment runner, and fresh results are written back. The
// assembled report (conga-campaign-v1) is a pure function of (request,
// code): byte-identical between a cold run and a 100%-cached warm run, and
// across --jobs counts.
//
// On top of the report sit two audit primitives:
//  * verdicts — per-cell FCT / digest / reorder deltas against a named
//    baseline report, matched on cell coordinates (not cache keys, which
//    change with the code on purpose);
//  * --verify-sample — recompute a deterministic sample of cache hits and
//    fault on any divergence, the defense against a poisoned store.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/experiment_spec.hpp"
#include "campaign/json.hpp"
#include "campaign/store.hpp"
#include "net/topology.hpp"
#include "telemetry/telemetry.hpp"

namespace conga::campaign {

/// One member of the scenario family: a named topology variant.
struct CampaignCase {
  std::string name;
  net::TopologyConfig topo;
};

/// One replica seed: per-cell fabric and traffic RNG roots.
struct SeedPair {
  std::uint64_t fabric = 1;
  std::uint64_t traffic = 7;
};

struct CampaignSpec {
  std::string name = "campaign";
  std::string dist = "enterprise";
  std::vector<std::string> policies{"conga"};
  std::vector<int> loads_pct{60};
  std::vector<CampaignCase> cases;  ///< empty = one "baseline" testbed case
  std::vector<SeedPair> seeds{{1, 7}};
  std::vector<FaultSpec> faults{{"none", 1}};

  sim::TimeNs min_rto_ns = sim::milliseconds(200);
  bool dctcp = false;
  sim::TimeNs warmup_ns = sim::milliseconds(10);
  sim::TimeNs measure_ns = sim::milliseconds(40);
  sim::TimeNs max_drain_ns = sim::seconds(1.0);
};

/// Canonical document form of a request (round-trips like specs do).
Json json_of_campaign(const CampaignSpec& spec);
bool campaign_from_json(const Json& doc, CampaignSpec& out, std::string& err);
bool parse_campaign(const std::string& text, CampaignSpec& out,
                    std::string& err);

/// The 2-cell campaign used by CI smoke lanes and the perf baseline's
/// campaign_cache phase: {ecmp, conga} x 40% load on a scaled testbed.
CampaignSpec make_smoke_campaign();

/// One expanded cell: the spec plus its grid coordinates and cache key.
struct Cell {
  ExperimentSpec spec;
  std::string key;
  std::string case_name;
};

/// Canonical expansion order: case -> policy -> load -> seed -> fault.
std::vector<Cell> expand_campaign(const CampaignSpec& spec,
                                  const std::string& fingerprint);

/// The verdict/report join key for a cell: its grid coordinates, stable
/// across code changes (cache keys are not — they fold in the fingerprint).
std::string cell_coordinate(const Cell& cell);

/// How each cell's result was obtained.
enum class CellOrigin : std::uint8_t {
  kComputed = 0,  ///< cache miss, simulated this run
  kCached,        ///< verified store hit
  kRecomputed,    ///< store entry was corrupt; recomputed and overwritten
  kFailed,        ///< supervised cell exhausted its retries; no result
};

/// Health of the backing store over one run. A campaign never dies because
/// its store does: an unwritable store degrades to in-memory results and the
/// report still completes (stats carry the warning).
enum class StoreHealth : std::uint8_t {
  kNone = 0,   ///< ran without a store
  kOk,         ///< every write landed
  kDegraded,   ///< at least one write failed; results kept in memory
};

const char* store_health_name(StoreHealth h);

struct RunStats {
  std::size_t cells = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;    ///< includes corrupt recomputations
  std::size_t corrupt = 0;   ///< corrupt entries detected (and healed)
  std::size_t failed = 0;    ///< quarantined cells (supervised runs)
  std::uint64_t retries = 0;   ///< child re-spawns after a failed attempt
  std::uint64_t timeouts = 0;  ///< children killed at the per-cell deadline
  std::uint64_t store_writes = 0;
  StoreHealth store = StoreHealth::kNone;
};

/// One cell that exhausted its retry budget under supervision. Everything
/// here is deterministic given the failure mode — no wall-clock timestamps —
/// so reports stay comparable across runs.
struct FailedCell {
  std::size_t index = 0;      ///< canonical expansion index
  std::string coordinate;
  std::string key;
  int attempts = 0;           ///< attempts consumed (== max_attempts unless
                              ///< the failure was permanent)
  std::string outcome;        ///< "exit" | "signal" | "timeout"
  int exit_code = 0;          ///< valid when outcome == "exit"
  int term_signal = 0;        ///< valid when outcome == "signal"
  std::string quarantine_path;  ///< poison record, "" when no store
};

struct RunOptions {
  int jobs = 1;
  ResultStore* store = nullptr;  ///< null: compute everything, cache nothing
  telemetry::TraceSink* sink = nullptr;  ///< kCampaign* events land here
  bool verbose = false;                  ///< per-cell stderr progress
};

struct CampaignRun {
  CampaignSpec spec;
  std::string fingerprint;
  std::vector<Cell> cells;
  std::vector<workload::ExperimentResult> results;  ///< cell order
  std::vector<CellOrigin> origins;                  ///< cell order
  std::vector<FailedCell> failed;                   ///< quarantined cells
  RunStats stats;
};

/// Expands, looks up, schedules misses on the parallel runner, writes fresh
/// entries back, and fills `out`. Returns false and sets `err` on invalid
/// requests, unresolvable specs, or store I/O failure.
bool run_campaign(const CampaignSpec& spec, const RunOptions& opts,
                  CampaignRun& out, std::string& err);

/// The conga-campaign-v1 report: request axes + per-cell results, plus a
/// `failed_cells` block (empty on clean runs) naming any quarantined cells.
/// A pure function of (request, fingerprint, results, failures) — no cache
/// state and no timestamps, so cold and warm runs serialize byte-identically
/// and a resumed run reproduces an undisturbed run's bytes.
std::string report_json(const CampaignRun& run);

/// Cache statistics document (conga-campaign-stats-v1). Run-dependent by
/// design — kept out of the report so caching stays invisible there.
Json stats_json(const RunStats& stats);

struct VerdictOptions {
  /// Relative avg_norm_fct change flagged as a regression/improvement.
  double rel_fct_tolerance = 0.01;
};

/// Compares two conga-campaign-v1 reports cell-by-cell (coordinate-matched)
/// into a conga-campaign-verdict-v1 document. Returns false and sets `err`
/// if either document is not a campaign report.
bool make_verdict(const Json& report, const Json& baseline,
                  const VerdictOptions& opts, Json& out, std::string& err);

/// True when a verdict document carries no FCT or reorder regressions.
bool verdict_pass(const Json& verdict);

struct VerifyOutcome {
  std::size_t sampled = 0;
  std::size_t mismatched = 0;
  std::vector<std::string> poisoned_keys;
};

/// Recomputes a deterministic sample of `run`'s cache hits (`fraction` of
/// them, at least one when any exist) and compares the recomputed payload
/// byte-for-byte with the cached one. Mismatches mean the store served a
/// result current code would not produce — a poisoned or stale-keyed entry.
/// Returns false and sets `err` only on expansion/run failures; divergence
/// is reported through `out`.
bool verify_sample(const CampaignRun& run, double fraction, int jobs,
                   telemetry::TraceSink* sink, VerifyOutcome& out,
                   std::string& err);

}  // namespace conga::campaign
