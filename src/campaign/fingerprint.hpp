// Build/code fingerprint for campaign cache keys.
//
// A cached cell is only reusable while the code that produced it would
// reproduce it bit-for-bit, so every cache key folds in a fingerprint of the
// build: a content digest over the simulator sources (regenerated on every
// build by tools/cmake/gen_fingerprint.cmake), the compiler version, and the
// compile-time gates that change simulation behaviour (NDEBUG, telemetry,
// invariant hooks). Any change to any of them invalidates every cell.
//
// The CONGA_CODE_FINGERPRINT environment variable overrides the computed
// value — tests use it to prove invalidation, and reproducible pipelines can
// pin it across identical builds on different hosts.
#pragma once

#include <string>

namespace conga::campaign {

/// The fingerprint folded into every cache key. Reads the environment
/// override on each call (cheap; campaigns call it once per run).
std::string code_fingerprint();

/// The source-tree content digest alone (hex), for report metadata.
std::string source_digest();

}  // namespace conga::campaign
