#include "campaign/store.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <system_error>
#include <utility>

#include "campaign/experiment_spec.hpp"
#include "campaign/json.hpp"

namespace conga::campaign {

namespace {

constexpr const char* kEntrySchema = "conga-cell-v1";

/// Armed by set_tear_after_tmp_write_for_tests(): the next put() dies in the
/// write-then-rename window, leaving an orphaned tmp file behind.
std::atomic<bool> g_tear_after_tmp_write{false};

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  out.clear();
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    out.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace

ResultStore::ResultStore(std::string root) : root_(std::move(root)) {}

std::string ResultStore::entry_path(const std::string& key) const {
  const std::string shard = key.size() >= 2 ? key.substr(0, 2) : "xx";
  return root_ + "/" + shard + "/" + key + ".json";
}

ResultStore::LoadStatus ResultStore::load(const std::string& key,
                                          workload::ExperimentResult& out,
                                          std::string& err) const {
  std::string bytes;
  if (!read_file(entry_path(key), bytes)) return LoadStatus::kMiss;

  Json doc;
  if (!Json::parse(bytes, doc, err)) {
    err = "unparseable entry: " + err;
    return LoadStatus::kCorrupt;
  }
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kEntrySchema) {
    err = "bad entry schema";
    return LoadStatus::kCorrupt;
  }
  const Json* stored_key = doc.find("key");
  if (stored_key == nullptr || !stored_key->is_string() ||
      stored_key->as_string() != key) {
    err = "entry key mismatch";
    return LoadStatus::kCorrupt;
  }
  const Json* result = doc.find("result");
  const Json* digest = doc.find("payload_digest");
  if (result == nullptr || !result->is_object() || digest == nullptr ||
      !digest->is_string()) {
    err = "entry missing result/payload_digest";
    return LoadStatus::kCorrupt;
  }
  if (hex64(fnv1a64(result->dump())) != digest->as_string()) {
    err = "stored payload digest mismatch (corrupted entry)";
    return LoadStatus::kCorrupt;
  }
  if (!result_from_json(*result, out, err)) {
    err = "bad result payload: " + err;
    return LoadStatus::kCorrupt;
  }
  return LoadStatus::kHit;
}

bool ResultStore::put(const std::string& key, const std::string& fingerprint,
                      const std::string& spec_canonical,
                      const workload::ExperimentResult& result,
                      std::string& err) {
  namespace fs = std::filesystem;

  Json spec_doc;
  if (!Json::parse(spec_canonical, spec_doc, err)) {
    err = "put: spec is not valid JSON: " + err;
    return false;
  }
  Json result_doc = json_of_result(result);
  const std::string payload_digest = hex64(fnv1a64(result_doc.dump()));

  Json entry = Json::object();
  entry.set("schema", Json::string(kEntrySchema));
  entry.set("key", Json::string(key));
  entry.set("fingerprint", Json::string(fingerprint));
  entry.set("spec", std::move(spec_doc));
  entry.set("result", std::move(result_doc));
  entry.set("payload_digest", Json::string(payload_digest));
  const std::string bytes = entry.dump_pretty();

  const std::string final_path = entry_path(key);
  std::error_code ec;
  fs::create_directories(fs::path(final_path).parent_path(), ec);
  fs::create_directories(fs::path(root_) / "tmp", ec);
  if (ec) {
    err = "put: cannot create store directories under " + root_ + ": " +
          ec.message();
    return false;
  }

  // Unique in-flight name per (process, store instance, write): concurrent
  // writers never share a tmp file, and rename() is atomic, so readers see
  // whole entries only.
  const std::uint64_t seq = tmp_seq_.fetch_add(1);
  const std::string tmp_path = root_ + "/tmp/" + key + "." +
                               std::to_string(::getpid()) + "." +
                               std::to_string(seq) + ".tmp";
  if (!write_file(tmp_path, bytes)) {
    err = "put: cannot write " + tmp_path;
    return false;
  }
  if (g_tear_after_tmp_write.load(std::memory_order_relaxed)) {
    // Simulated crash between write and rename: exactly the window that
    // leaks a tmp orphan for `store gc` to reap. _exit, not abort — the
    // point is the torn store state, not a corefile.
    std::fprintf(stderr, "store: injected tear after tmp write (%s)\n",
                 tmp_path.c_str());
    std::_Exit(42);
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    err = "put: rename to " + final_path + " failed: " + ec.message();
    fs::remove(tmp_path, ec);
    return false;
  }
  writes_.fetch_add(1);
  return true;
}

void ResultStore::set_tear_after_tmp_write_for_tests(bool armed) {
  g_tear_after_tmp_write.store(armed, std::memory_order_relaxed);
}

namespace {

/// Fingerprint field of an entry file, or "(unreadable)" when the file is
/// not a parseable conga-cell-v1 document.
std::string entry_fingerprint(const std::string& path) {
  std::string bytes;
  if (!read_file(path, bytes)) return "(unreadable)";
  Json doc;
  std::string err;
  if (!Json::parse(bytes, doc, err)) return "(unreadable)";
  const Json* fp = doc.find("fingerprint");
  if (fp == nullptr || !fp->is_string()) return "(unreadable)";
  return fp->as_string();
}

std::uint64_t file_bytes(const std::filesystem::path& p) {
  std::error_code ec;
  const auto n = std::filesystem::file_size(p, ec);
  return ec ? 0 : static_cast<std::uint64_t>(n);
}

}  // namespace

bool ResultStore::gc(const GcOptions& opts, GcStats& out,
                     std::string& err) const {
  namespace fs = std::filesystem;
  out = GcStats{};
  std::error_code ec;
  if (!fs::exists(root_, ec)) return true;  // empty store: nothing to do

  // Orphaned in-flight writes. Age is judged against the filesystem's own
  // clock so a crashed writer's leftovers qualify as soon as they are old
  // enough, regardless of who runs the gc.
  const auto now = fs::file_time_type::clock::now();
  const fs::path tmp_dir = fs::path(root_) / "tmp";
  if (fs::exists(tmp_dir, ec)) {
    for (const fs::directory_entry& e : fs::directory_iterator(tmp_dir, ec)) {
      if (!e.is_regular_file(ec)) continue;
      const auto mtime = fs::last_write_time(e.path(), ec);
      if (ec) continue;
      const auto age =
          std::chrono::duration_cast<std::chrono::seconds>(now - mtime)
              .count();
      if (age >= opts.tmp_age_seconds) {
        const std::uint64_t sz = file_bytes(e.path());
        if (fs::remove(e.path(), ec)) {
          ++out.tmp_removed;
          out.bytes_reclaimed += sz;
        } else {
          err = "gc: cannot remove " + e.path().string() + ": " + ec.message();
          return false;
        }
      } else {
        ++out.tmp_kept;
      }
    }
  }

  // Dead-fingerprint entries (only when a keep list was given).
  for (const fs::directory_entry& shard : fs::directory_iterator(root_, ec)) {
    if (!shard.is_directory(ec)) continue;
    const std::string shard_name = shard.path().filename().string();
    if (shard_name == "tmp" || shard_name == "quarantine") continue;
    for (const fs::directory_entry& e :
         fs::directory_iterator(shard.path(), ec)) {
      if (!e.is_regular_file(ec) || e.path().extension() != ".json") continue;
      if (opts.keep_fingerprints.empty()) {
        ++out.entries_kept;
        continue;
      }
      const std::string fp = entry_fingerprint(e.path().string());
      const bool keep = std::find(opts.keep_fingerprints.begin(),
                                  opts.keep_fingerprints.end(),
                                  fp) != opts.keep_fingerprints.end();
      if (keep) {
        ++out.entries_kept;
        continue;
      }
      const std::uint64_t sz = file_bytes(e.path());
      if (fs::remove(e.path(), ec)) {
        ++out.entries_removed;
        out.bytes_reclaimed += sz;
      } else {
        err = "gc: cannot remove " + e.path().string() + ": " + ec.message();
        return false;
      }
    }
  }
  return true;
}

bool ResultStore::stat(StoreStat& out, std::string& err) const {
  namespace fs = std::filesystem;
  (void)err;
  out = StoreStat{};
  std::error_code ec;
  if (!fs::exists(root_, ec)) return true;

  // std::map: stat output is user-facing and must be deterministically
  // ordered (and the conga-lint unordered-iteration rule agrees).
  std::map<std::string, StatBucket> buckets;
  for (const fs::directory_entry& shard : fs::directory_iterator(root_, ec)) {
    if (!shard.is_directory(ec)) continue;
    const std::string shard_name = shard.path().filename().string();
    if (shard_name == "tmp") {
      for (const fs::directory_entry& e :
           fs::directory_iterator(shard.path(), ec)) {
        if (!e.is_regular_file(ec)) continue;
        ++out.tmp_files;
        out.tmp_bytes += file_bytes(e.path());
      }
      continue;
    }
    if (shard_name == "quarantine") {
      for (const fs::directory_entry& e :
           fs::directory_iterator(shard.path(), ec)) {
        if (e.is_regular_file(ec) && e.path().extension() == ".json") {
          ++out.quarantined;
        }
      }
      continue;
    }
    for (const fs::directory_entry& e :
         fs::directory_iterator(shard.path(), ec)) {
      if (!e.is_regular_file(ec) || e.path().extension() != ".json") continue;
      const std::uint64_t sz = file_bytes(e.path());
      StatBucket& b = buckets[entry_fingerprint(e.path().string())];
      ++b.entries;
      b.bytes += sz;
      ++out.entries;
      out.bytes += sz;
    }
  }
  out.by_fingerprint.reserve(buckets.size());
  for (auto& [fp, bucket] : buckets) {
    bucket.fingerprint = fp;
    out.by_fingerprint.push_back(std::move(bucket));
  }
  return true;
}

}  // namespace conga::campaign
