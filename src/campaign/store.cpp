#include "campaign/store.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "campaign/experiment_spec.hpp"
#include "campaign/json.hpp"

namespace conga::campaign {

namespace {

constexpr const char* kEntrySchema = "conga-cell-v1";

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  out.clear();
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    out.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace

ResultStore::ResultStore(std::string root) : root_(std::move(root)) {}

std::string ResultStore::entry_path(const std::string& key) const {
  const std::string shard = key.size() >= 2 ? key.substr(0, 2) : "xx";
  return root_ + "/" + shard + "/" + key + ".json";
}

ResultStore::LoadStatus ResultStore::load(const std::string& key,
                                          workload::ExperimentResult& out,
                                          std::string& err) const {
  std::string bytes;
  if (!read_file(entry_path(key), bytes)) return LoadStatus::kMiss;

  Json doc;
  if (!Json::parse(bytes, doc, err)) {
    err = "unparseable entry: " + err;
    return LoadStatus::kCorrupt;
  }
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kEntrySchema) {
    err = "bad entry schema";
    return LoadStatus::kCorrupt;
  }
  const Json* stored_key = doc.find("key");
  if (stored_key == nullptr || !stored_key->is_string() ||
      stored_key->as_string() != key) {
    err = "entry key mismatch";
    return LoadStatus::kCorrupt;
  }
  const Json* result = doc.find("result");
  const Json* digest = doc.find("payload_digest");
  if (result == nullptr || !result->is_object() || digest == nullptr ||
      !digest->is_string()) {
    err = "entry missing result/payload_digest";
    return LoadStatus::kCorrupt;
  }
  if (hex64(fnv1a64(result->dump())) != digest->as_string()) {
    err = "stored payload digest mismatch (corrupted entry)";
    return LoadStatus::kCorrupt;
  }
  if (!result_from_json(*result, out, err)) {
    err = "bad result payload: " + err;
    return LoadStatus::kCorrupt;
  }
  return LoadStatus::kHit;
}

bool ResultStore::put(const std::string& key, const std::string& fingerprint,
                      const std::string& spec_canonical,
                      const workload::ExperimentResult& result,
                      std::string& err) {
  namespace fs = std::filesystem;

  Json spec_doc;
  if (!Json::parse(spec_canonical, spec_doc, err)) {
    err = "put: spec is not valid JSON: " + err;
    return false;
  }
  Json result_doc = json_of_result(result);
  const std::string payload_digest = hex64(fnv1a64(result_doc.dump()));

  Json entry = Json::object();
  entry.set("schema", Json::string(kEntrySchema));
  entry.set("key", Json::string(key));
  entry.set("fingerprint", Json::string(fingerprint));
  entry.set("spec", std::move(spec_doc));
  entry.set("result", std::move(result_doc));
  entry.set("payload_digest", Json::string(payload_digest));
  const std::string bytes = entry.dump_pretty();

  const std::string final_path = entry_path(key);
  std::error_code ec;
  fs::create_directories(fs::path(final_path).parent_path(), ec);
  fs::create_directories(fs::path(root_) / "tmp", ec);
  if (ec) {
    err = "put: cannot create store directories under " + root_ + ": " +
          ec.message();
    return false;
  }

  // Unique in-flight name per (process, store instance, write): concurrent
  // writers never share a tmp file, and rename() is atomic, so readers see
  // whole entries only.
  const std::uint64_t seq = tmp_seq_.fetch_add(1);
  const std::string tmp_path = root_ + "/tmp/" + key + "." +
                               std::to_string(::getpid()) + "." +
                               std::to_string(seq) + ".tmp";
  if (!write_file(tmp_path, bytes)) {
    err = "put: cannot write " + tmp_path;
    return false;
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    err = "put: rename to " + final_path + " failed: " + ec.message();
    fs::remove(tmp_path, ec);
    return false;
  }
  writes_.fetch_add(1);
  return true;
}

}  // namespace conga::campaign
