#include "campaign/json.hpp"

#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace conga::campaign {

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::integer(std::int64_t v) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

Json Json::uinteger(std::uint64_t v) {
  if (v <= static_cast<std::uint64_t>(INT64_MAX)) {
    return integer(static_cast<std::int64_t>(v));
  }
  Json j;
  j.kind_ = Kind::kUint;
  j.uint_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::kDouble;
  j.dbl_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

std::int64_t Json::as_int() const {
  switch (kind_) {
    case Kind::kInt: return int_;
    case Kind::kUint: return static_cast<std::int64_t>(uint_);
    case Kind::kDouble: return static_cast<std::int64_t>(dbl_);
    default: return 0;
  }
}

std::uint64_t Json::as_uint() const {
  switch (kind_) {
    case Kind::kInt: return static_cast<std::uint64_t>(int_);
    case Kind::kUint: return uint_;
    case Kind::kDouble: return static_cast<std::uint64_t>(dbl_);
    default: return 0;
  }
}

double Json::as_double() const {
  switch (kind_) {
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kUint: return static_cast<double>(uint_);
    case Kind::kDouble: return dbl_;
    default: return 0;
  }
}

Json& Json::push_back(Json v) {
  items_.push_back(std::move(v));
  return items_.back();
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::set(std::string key, Json v) {
  members_.emplace_back(std::move(key), std::move(v));
  return members_.back().second;
}

std::string canonical_double(double v) {
  char buf[40];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, r.ptr);
}

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%" PRId64, int_);
      out += buf;
      return;
    }
    case Kind::kUint: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%" PRIu64, uint_);
      out += buf;
      return;
    }
    case Kind::kDouble:
      // JSON has no inf/nan; canonicalize them to null like the bench writer.
      if (dbl_ != dbl_ || dbl_ > 1.7976931348623157e308 ||
          dbl_ < -1.7976931348623157e308) {
        out += "null";
      } else {
        out += canonical_double(dbl_);
      }
      return;
    case Kind::kString:
      write_escaped(out, str_);
      return;
    case Kind::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_indent(out, indent, depth + 1);
        items_[i].write(out, indent, depth + 1);
      }
      if (!items_.empty()) newline_indent(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Kind::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_indent(out, indent, depth + 1);
        write_escaped(out, members_[i].first);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        members_[i].second.write(out, indent, depth + 1);
      }
      if (!members_.empty()) newline_indent(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string Json::dump_pretty() const {
  std::string out;
  write(out, 2, 0);
  out.push_back('\n');
  return out;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string& err)
      : s_(text.c_str()), n_(text.size()), err_(err) {}

  bool run(Json& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != n_) return fail("trailing garbage");
    return true;
  }

 private:
  bool fail(const char* what) {
    err_ = std::string(what) + " at byte " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < n_ && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                         s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word, std::size_t len) {
    if (pos_ + len > n_ || std::memcmp(s_ + pos_, word, len) != 0) {
      return fail("bad literal");
    }
    pos_ += len;
    return true;
  }

  bool string_body(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < n_) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= n_) return fail("truncated escape");
        const char e = s_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > n_) return fail("truncated \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_ + static_cast<std::size_t>(i)];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                cp |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("bad \\u escape");
            }
            pos_ += 4;
            // Encode the code point as UTF-8 (BMP only; the writers never
            // emit surrogate pairs).
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            }
            break;
          }
          default:
            return fail("bad escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      out.push_back(c);
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool number(Json& out) {
    const std::size_t start = pos_;
    if (pos_ < n_ && s_[pos_] == '-') ++pos_;
    while (pos_ < n_ && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (pos_ < n_ && s_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < n_ && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < n_ && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < n_ && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < n_ && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && s_[start] == '-')) {
      return fail("bad number");
    }
    const std::string tok(s_ + start, pos_ - start);
    if (integral) {
      if (tok[0] != '-') {
        std::uint64_t u = 0;
        const auto [p, ec] =
            std::from_chars(tok.data(), tok.data() + tok.size(), u);
        if (ec == std::errc() && p == tok.data() + tok.size()) {
          out = Json::uinteger(u);
          return true;
        }
      } else {
        std::int64_t v = 0;
        const auto [p, ec] =
            std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (ec == std::errc() && p == tok.data() + tok.size()) {
          out = Json::integer(v);
          return true;
        }
      }
      // Out-of-range integer literal: keep it as a double.
    }
    out = Json::number(std::strtod(tok.c_str(), nullptr));
    return true;
  }

  bool value(Json& out) {
    if (++depth_ > 64) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= n_) return fail("unexpected end of input");
    bool ok = false;
    switch (s_[pos_]) {
      case '{': {
        ++pos_;
        out = Json::object();
        skip_ws();
        if (pos_ < n_ && s_[pos_] == '}') {
          ++pos_;
          ok = true;
          break;
        }
        for (;;) {
          skip_ws();
          if (pos_ >= n_ || s_[pos_] != '"') return fail("expected key");
          std::string key;
          if (!string_body(key)) return false;
          skip_ws();
          if (pos_ >= n_ || s_[pos_] != ':') return fail("expected ':'");
          ++pos_;
          Json v;
          if (!value(v)) return false;
          out.set(std::move(key), std::move(v));
          skip_ws();
          if (pos_ < n_ && s_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (pos_ < n_ && s_[pos_] == '}') {
            ++pos_;
            ok = true;
            break;
          }
          return fail("expected ',' or '}'");
        }
        break;
      }
      case '[': {
        ++pos_;
        out = Json::array();
        skip_ws();
        if (pos_ < n_ && s_[pos_] == ']') {
          ++pos_;
          ok = true;
          break;
        }
        for (;;) {
          Json v;
          if (!value(v)) return false;
          out.push_back(std::move(v));
          skip_ws();
          if (pos_ < n_ && s_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (pos_ < n_ && s_[pos_] == ']') {
            ++pos_;
            ok = true;
            break;
          }
          return fail("expected ',' or ']'");
        }
        break;
      }
      case '"': {
        std::string v;
        if (!string_body(v)) return false;
        out = Json::string(std::move(v));
        ok = true;
        break;
      }
      case 't':
        if (!literal("true", 4)) return false;
        out = Json::boolean(true);
        ok = true;
        break;
      case 'f':
        if (!literal("false", 5)) return false;
        out = Json::boolean(false);
        ok = true;
        break;
      case 'n':
        if (!literal("null", 4)) return false;
        out = Json::null();
        ok = true;
        break;
      default:
        ok = number(out);
    }
    --depth_;
    return ok;
  }

  const char* s_;
  std::size_t n_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string& err_;
};

}  // namespace

bool Json::parse(const std::string& text, Json& out, std::string& err) {
  Parser p(text, err);
  return p.run(out);
}

}  // namespace conga::campaign
