#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "campaign/fingerprint.hpp"
#include "runtime/parallel_runner.hpp"
#include "sim/random.hpp"

namespace conga::campaign {

namespace {

constexpr const char* kRequestSchema = "conga-campaign-request-v1";
constexpr const char* kReportSchema = "conga-campaign-v1";
constexpr const char* kStatsSchema = "conga-campaign-stats-v1";
constexpr const char* kVerdictSchema = "conga-campaign-verdict-v1";

// Strict-parse helpers (same contract as the spec parsers: an unmatched
// field name is an error, a wrong type is an error).
struct Reader {
  std::string& err;
  bool ok = true;
  bool fail(const std::string& what) {
    if (ok) err = what;
    ok = false;
    return false;
  }
};

bool read_string(Reader& r, const Json& v, const std::string& key,
                 std::string& out) {
  if (!v.is_string()) return r.fail("expected string " + key);
  out = v.as_string();
  return true;
}

bool read_i64(Reader& r, const Json& v, const std::string& key,
              std::int64_t& out) {
  if (!v.is_integer()) return r.fail("expected integer " + key);
  out = v.as_int();
  return true;
}

bool read_u64(Reader& r, const Json& v, const std::string& key,
              std::uint64_t& out) {
  if (!v.is_integer()) return r.fail("expected integer " + key);
  out = v.as_uint();
  return true;
}

bool read_bool(Reader& r, const Json& v, const std::string& key, bool& out) {
  if (!v.is_bool()) return r.fail("expected bool " + key);
  out = v.as_bool();
  return true;
}

int load_pct_of(const ExperimentSpec& spec) {
  return static_cast<int>(std::lround(spec.load * 100.0));
}

/// The verdict's join key: the grid coordinates of a cell, stable across
/// code changes (cache keys are not — they fold in the fingerprint).
std::string coordinate_of(const std::string& case_name,
                          const std::string& policy, int load_pct,
                          std::uint64_t fabric_seed,
                          std::uint64_t traffic_seed,
                          const std::string& fault_profile,
                          std::uint64_t fault_seed) {
  return case_name + "|" + policy + "|" + std::to_string(load_pct) + "|" +
         std::to_string(fabric_seed) + "|" + std::to_string(traffic_seed) +
         "|" + fault_profile + "|" + std::to_string(fault_seed);
}

constexpr std::uint64_t kRecomputedFlag = 1ULL << 63;

}  // namespace

std::string cell_coordinate(const Cell& cell) {
  const ExperimentSpec& s = cell.spec;
  return coordinate_of(cell.case_name, s.policy, load_pct_of(s),
                       s.fabric_seed, s.traffic_seed, s.fault.profile,
                       s.fault.seed);
}

const char* store_health_name(StoreHealth h) {
  switch (h) {
    case StoreHealth::kNone:
      return "none";
    case StoreHealth::kOk:
      return "ok";
    case StoreHealth::kDegraded:
      return "degraded";
  }
  return "none";
}

Json json_of_campaign(const CampaignSpec& spec) {
  Json j = Json::object();
  j.set("schema", Json::string(kRequestSchema));
  j.set("name", Json::string(spec.name));
  j.set("dist", Json::string(spec.dist));
  Json policies = Json::array();
  for (const std::string& p : spec.policies) policies.push_back(Json::string(p));
  j.set("policies", std::move(policies));
  Json loads = Json::array();
  for (const int l : spec.loads_pct) loads.push_back(Json::integer(l));
  j.set("loads_pct", std::move(loads));
  j.set("min_rto_ns", Json::integer(spec.min_rto_ns));
  j.set("dctcp", Json::boolean(spec.dctcp));
  j.set("warmup_ns", Json::integer(spec.warmup_ns));
  j.set("measure_ns", Json::integer(spec.measure_ns));
  j.set("max_drain_ns", Json::integer(spec.max_drain_ns));
  Json seeds = Json::array();
  for (const SeedPair& s : spec.seeds) {
    Json e = Json::object();
    e.set("fabric", Json::uinteger(s.fabric));
    e.set("traffic", Json::uinteger(s.traffic));
    seeds.push_back(std::move(e));
  }
  j.set("seeds", std::move(seeds));
  Json faults = Json::array();
  for (const FaultSpec& f : spec.faults) {
    Json e = Json::object();
    e.set("profile", Json::string(f.profile));
    e.set("seed", Json::uinteger(f.seed));
    faults.push_back(std::move(e));
  }
  j.set("faults", std::move(faults));
  Json cases = Json::array();
  for (const CampaignCase& c : spec.cases) {
    Json e = Json::object();
    e.set("name", Json::string(c.name));
    e.set("topo", json_of_topo(c.topo));
    cases.push_back(std::move(e));
  }
  j.set("cases", std::move(cases));
  return j;
}

bool campaign_from_json(const Json& doc, CampaignSpec& out, std::string& err) {
  if (!doc.is_object()) {
    err = "campaign must be an object";
    return false;
  }
  Reader r{err};
  CampaignSpec c;
  for (const auto& [key, v] : doc.members()) {
    if (key == "schema") {
      std::string schema;
      if (read_string(r, v, key, schema) && schema != kRequestSchema) {
        return r.fail("unsupported campaign schema '" + schema + "'");
      }
    } else if (key == "name") read_string(r, v, key, c.name);
    else if (key == "dist") read_string(r, v, key, c.dist);
    else if (key == "policies") {
      if (!v.is_array()) return r.fail("policies must be an array");
      c.policies.clear();
      for (const Json& p : v.items()) {
        std::string name;
        if (!read_string(r, p, "policy", name)) return false;
        c.policies.push_back(name);
      }
    } else if (key == "loads_pct") {
      if (!v.is_array()) return r.fail("loads_pct must be an array");
      c.loads_pct.clear();
      for (const Json& l : v.items()) {
        std::int64_t pct = 0;
        if (!read_i64(r, l, "load_pct", pct)) return false;
        if (pct <= 0 || pct > 100) return r.fail("load_pct out of (0, 100]");
        c.loads_pct.push_back(static_cast<int>(pct));
      }
    } else if (key == "min_rto_ns") read_i64(r, v, key, c.min_rto_ns);
    else if (key == "dctcp") read_bool(r, v, key, c.dctcp);
    else if (key == "warmup_ns") read_i64(r, v, key, c.warmup_ns);
    else if (key == "measure_ns") read_i64(r, v, key, c.measure_ns);
    else if (key == "max_drain_ns") read_i64(r, v, key, c.max_drain_ns);
    else if (key == "seeds") {
      if (!v.is_array()) return r.fail("seeds must be an array");
      c.seeds.clear();
      for (const Json& s : v.items()) {
        if (!s.is_object()) return r.fail("seed entry must be an object");
        SeedPair pair;
        for (const auto& [sk, sv] : s.members()) {
          if (sk == "fabric") read_u64(r, sv, sk, pair.fabric);
          else if (sk == "traffic") read_u64(r, sv, sk, pair.traffic);
          else return r.fail("unknown seed field '" + sk + "'");
          if (!r.ok) return false;
        }
        c.seeds.push_back(pair);
      }
    } else if (key == "faults") {
      if (!v.is_array()) return r.fail("faults must be an array");
      c.faults.clear();
      for (const Json& f : v.items()) {
        if (!f.is_object()) return r.fail("fault entry must be an object");
        FaultSpec fs;
        for (const auto& [fk, fv] : f.members()) {
          if (fk == "profile") read_string(r, fv, fk, fs.profile);
          else if (fk == "seed") read_u64(r, fv, fk, fs.seed);
          else return r.fail("unknown fault field '" + fk + "'");
          if (!r.ok) return false;
        }
        c.faults.push_back(fs);
      }
    } else if (key == "cases") {
      if (!v.is_array()) return r.fail("cases must be an array");
      c.cases.clear();
      for (const Json& e : v.items()) {
        if (!e.is_object()) return r.fail("case entry must be an object");
        CampaignCase cc;
        bool have_topo = false;
        for (const auto& [ck, cv] : e.members()) {
          if (ck == "name") read_string(r, cv, ck, cc.name);
          else if (ck == "topo") {
            if (!topo_from_json(cv, cc.topo, err)) return false;
            have_topo = true;
          } else {
            return r.fail("unknown case field '" + ck + "'");
          }
          if (!r.ok) return false;
        }
        if (cc.name.empty()) return r.fail("case needs a name");
        if (!have_topo) return r.fail("case '" + cc.name + "' needs a topo");
        c.cases.push_back(std::move(cc));
      }
    } else {
      return r.fail("unknown campaign field '" + key + "'");
    }
    if (!r.ok) return false;
  }
  out = std::move(c);
  return true;
}

bool parse_campaign(const std::string& text, CampaignSpec& out,
                    std::string& err) {
  Json doc;
  if (!Json::parse(text, doc, err)) return false;
  return campaign_from_json(doc, out, err);
}

CampaignSpec make_smoke_campaign() {
  CampaignSpec c;
  c.name = "smoke";
  c.policies = {"ecmp", "conga"};
  c.loads_pct = {40};
  net::TopologyConfig topo = net::testbed_baseline();
  topo.hosts_per_leaf = 8;  // 16 hosts total — seconds, not minutes
  c.cases.push_back({"testbed", topo});
  c.warmup_ns = sim::milliseconds(2);
  c.measure_ns = sim::milliseconds(8);
  c.max_drain_ns = sim::milliseconds(500);
  return c;
}

std::vector<Cell> expand_campaign(const CampaignSpec& spec,
                                  const std::string& fingerprint) {
  std::vector<CampaignCase> cases = spec.cases;
  if (cases.empty()) cases.push_back({"baseline", net::testbed_baseline()});
  std::vector<Cell> cells;
  cells.reserve(cases.size() * spec.policies.size() * spec.loads_pct.size() *
                spec.seeds.size() * spec.faults.size());
  for (const CampaignCase& cs : cases) {
    for (const std::string& policy : spec.policies) {
      for (const int load : spec.loads_pct) {
        for (const SeedPair& seed : spec.seeds) {
          for (const FaultSpec& fault : spec.faults) {
            Cell cell;
            cell.spec.dist = spec.dist;
            cell.spec.policy = policy;
            cell.spec.load = load / 100.0;
            cell.spec.topo = cs.topo;
            cell.spec.min_rto_ns = spec.min_rto_ns;
            cell.spec.dctcp = spec.dctcp;
            cell.spec.warmup_ns = spec.warmup_ns;
            cell.spec.measure_ns = spec.measure_ns;
            cell.spec.max_drain_ns = spec.max_drain_ns;
            cell.spec.fabric_seed = seed.fabric;
            cell.spec.traffic_seed = seed.traffic;
            cell.spec.fault = fault;
            cell.key = cell_key(cell.spec, fingerprint);
            cell.case_name = cs.name;
            cells.push_back(std::move(cell));
          }
        }
      }
    }
  }
  return cells;
}

bool run_campaign(const CampaignSpec& spec, const RunOptions& opts,
                  CampaignRun& out, std::string& err) {
  if (spec.policies.empty() || spec.loads_pct.empty() || spec.seeds.empty() ||
      spec.faults.empty()) {
    err = "campaign axes must be non-empty "
          "(policies, loads_pct, seeds, faults)";
    return false;
  }
  CampaignRun run;
  run.spec = spec;
  if (run.spec.cases.empty()) {
    run.spec.cases.push_back({"baseline", net::testbed_baseline()});
  }
  run.fingerprint = code_fingerprint();
  run.cells = expand_campaign(run.spec, run.fingerprint);
  const std::size_t n = run.cells.size();
  run.results.resize(n);
  run.origins.assign(n, CellOrigin::kComputed);
  run.stats.cells = n;

  // Phase 1 — lookups, sequential on the main thread (pure file reads).
  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < n; ++i) {
    if (opts.store == nullptr) {
      misses.push_back(i);
      continue;
    }
    std::string load_err;
    switch (opts.store->load(run.cells[i].key, run.results[i], load_err)) {
      case ResultStore::LoadStatus::kHit:
        run.origins[i] = CellOrigin::kCached;
        ++run.stats.hits;
        break;
      case ResultStore::LoadStatus::kCorrupt:
        run.origins[i] = CellOrigin::kRecomputed;
        ++run.stats.corrupt;
        if (opts.verbose) {
          std::fprintf(stderr, "campaign: corrupt entry %s (%s); recomputing\n",
                       run.cells[i].key.c_str(), load_err.c_str());
        }
        misses.push_back(i);
        break;
      case ResultStore::LoadStatus::kMiss:
        misses.push_back(i);
        break;
    }
  }
  run.stats.misses = misses.size();
  const std::uint64_t writes_before =
      opts.store != nullptr ? opts.store->writes() : 0;

  // Phase 2 — misses on the parallel runner; each worker owns its whole
  // simulation and writes its entry back itself (put() is thread-safe).
  // A store that stops accepting writes (read-only root, ENOSPC) must not
  // kill a campaign mid-run: the run degrades to in-memory results, warns
  // once, and the report still completes in full.
  std::mutex progress_mu;
  std::atomic<bool> store_degraded{false};
  try {
    runtime::parallel_for(misses.size(), opts.jobs, [&](std::size_t mi) {
      const std::size_t i = misses[mi];
      const Cell& cell = run.cells[i];
      workload::ExperimentConfig cfg;
      std::string cell_err;
      if (!to_experiment_config(cell.spec, cfg, cell_err)) {
        throw std::runtime_error("cell " + cell_coordinate(cell) + ": " +
                                 cell_err);
      }
      run.results[i] = workload::run_fct_experiment(cfg);
      if (opts.store != nullptr) {
        std::string put_err;
        if (!opts.store->put(cell.key, run.fingerprint,
                             canonical_json(cell.spec), run.results[i],
                             put_err)) {
          if (!store_degraded.exchange(true)) {
            std::fprintf(stderr,
                         "campaign: WARNING store degraded, keeping results "
                         "in memory (%s)\n",
                         put_err.c_str());
          }
        }
      }
      if (opts.verbose) {
        const std::lock_guard<std::mutex> lock(progress_mu);
        std::fprintf(stderr, "  [%s: %zu flows, %.0f%% completed]\n",
                     cell_coordinate(cell).c_str(), run.results[i].flows,
                     run.results[i].completed_fraction * 100);
      }
    });
  } catch (const std::exception& e) {
    err = e.what();
    return false;
  }
  run.stats.store_writes =
      opts.store != nullptr ? opts.store->writes() - writes_before : 0;
  run.stats.store = opts.store == nullptr ? StoreHealth::kNone
                    : store_degraded.load() ? StoreHealth::kDegraded
                                            : StoreHealth::kOk;

  // Phase 3 — telemetry, main thread only (the sink is thread-confined).
  // a: cell index in canonical order, b: FNV-1a of the cell key.
  if (opts.sink != nullptr) {
    const telemetry::ComponentId comp =
        opts.sink->intern_component("campaign/" + run.spec.name);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key_hash = fnv1a64(run.cells[i].key);
      switch (run.origins[i]) {
        case CellOrigin::kCached:
          telemetry::emit(opts.sink, telemetry::EventType::kCampaignCellHit,
                          comp, 0, i, key_hash);
          break;
        case CellOrigin::kComputed:
          telemetry::emit(opts.sink, telemetry::EventType::kCampaignCellMiss,
                          comp, 0, i, key_hash);
          break;
        case CellOrigin::kRecomputed:
          telemetry::emit(opts.sink, telemetry::EventType::kCampaignCellMiss,
                          comp, 0, i, key_hash | kRecomputedFlag);
          break;
        case CellOrigin::kFailed:
          break;  // unreachable in-process; supervised runs emit their own
      }
      if (run.origins[i] != CellOrigin::kCached && opts.store != nullptr) {
        telemetry::emit(opts.sink, telemetry::EventType::kCampaignStoreWrite,
                        comp, 0, i, key_hash);
      }
    }
  }

  out = std::move(run);
  return true;
}

std::string report_json(const CampaignRun& run) {
  Json j = Json::object();
  j.set("schema", Json::string(kReportSchema));
  j.set("name", Json::string(run.spec.name));
  j.set("fingerprint", Json::string(run.fingerprint));
  j.set("request", json_of_campaign(run.spec));
  Json cells = Json::array();
  for (std::size_t i = 0; i < run.cells.size(); ++i) {
    if (i < run.origins.size() && run.origins[i] == CellOrigin::kFailed) {
      continue;  // quarantined cells live in failed_cells, not cells
    }
    const Cell& cell = run.cells[i];
    Json e = Json::object();
    e.set("case", Json::string(cell.case_name));
    e.set("policy", Json::string(cell.spec.policy));
    e.set("load_pct", Json::integer(load_pct_of(cell.spec)));
    e.set("fabric_seed", Json::uinteger(cell.spec.fabric_seed));
    e.set("traffic_seed", Json::uinteger(cell.spec.traffic_seed));
    e.set("fault_profile", Json::string(cell.spec.fault.profile));
    e.set("fault_seed", Json::uinteger(cell.spec.fault.seed));
    e.set("key", Json::string(cell.key));
    e.set("result", json_of_result(run.results[i]));
    cells.push_back(std::move(e));
  }
  j.set("cells", std::move(cells));
  Json failed = Json::array();
  for (const FailedCell& f : run.failed) {
    Json e = Json::object();
    e.set("coordinate", Json::string(f.coordinate));
    e.set("key", Json::string(f.key));
    e.set("attempts", Json::integer(f.attempts));
    e.set("outcome", Json::string(f.outcome));
    e.set("exit_code", Json::integer(f.exit_code));
    e.set("signal", Json::integer(f.term_signal));
    e.set("quarantine", Json::string(f.quarantine_path));
    failed.push_back(std::move(e));
  }
  j.set("failed_cells", std::move(failed));
  return j.dump_pretty() + "\n";
}

Json stats_json(const RunStats& stats) {
  Json j = Json::object();
  j.set("schema", Json::string(kStatsSchema));
  j.set("cells", Json::uinteger(stats.cells));
  j.set("hits", Json::uinteger(stats.hits));
  j.set("misses", Json::uinteger(stats.misses));
  j.set("corrupt", Json::uinteger(stats.corrupt));
  j.set("failed", Json::uinteger(stats.failed));
  j.set("retries", Json::uinteger(stats.retries));
  j.set("timeouts", Json::uinteger(stats.timeouts));
  j.set("store_writes", Json::uinteger(stats.store_writes));
  j.set("store", Json::string(store_health_name(stats.store)));
  return j;
}

namespace {

/// Pulls the coordinate string and the interesting metrics out of one
/// report cell; false when the cell is malformed.
struct ReportCell {
  std::string coordinate;
  double avg_norm_fct = 0.0;
  std::string fct_digest;
  std::uint64_t reorder_segments = 0;
};

bool read_report_cell(const Json& e, ReportCell& out, std::string& err) {
  const Json* case_name = e.find("case");
  const Json* policy = e.find("policy");
  const Json* load_pct = e.find("load_pct");
  const Json* fabric_seed = e.find("fabric_seed");
  const Json* traffic_seed = e.find("traffic_seed");
  const Json* fault_profile = e.find("fault_profile");
  const Json* fault_seed = e.find("fault_seed");
  const Json* result = e.find("result");
  if (case_name == nullptr || !case_name->is_string() || policy == nullptr ||
      !policy->is_string() || load_pct == nullptr ||
      !load_pct->is_integer() || fabric_seed == nullptr ||
      !fabric_seed->is_integer() || traffic_seed == nullptr ||
      !traffic_seed->is_integer() || fault_profile == nullptr ||
      !fault_profile->is_string() || fault_seed == nullptr ||
      !fault_seed->is_integer() || result == nullptr || !result->is_object()) {
    err = "malformed report cell";
    return false;
  }
  out.coordinate = coordinate_of(
      case_name->as_string(), policy->as_string(),
      static_cast<int>(load_pct->as_int()), fabric_seed->as_uint(),
      traffic_seed->as_uint(), fault_profile->as_string(),
      fault_seed->as_uint());
  const Json* fct = result->find("avg_norm_fct");
  const Json* digest = result->find("fct_digest");
  const Json* reorder = result->find("reorder_segments");
  if (fct == nullptr || !fct->is_number() || digest == nullptr ||
      !digest->is_string() || reorder == nullptr || !reorder->is_integer()) {
    err = "report cell result missing avg_norm_fct/fct_digest/"
          "reorder_segments";
    return false;
  }
  out.avg_norm_fct = fct->as_double();
  out.fct_digest = digest->as_string();
  out.reorder_segments = reorder->as_uint();
  return true;
}

bool read_report(const Json& doc, std::vector<ReportCell>& out,
                 std::string& fingerprint, std::string& err) {
  const Json* schema = doc.find("schema");
  if (!doc.is_object() || schema == nullptr || !schema->is_string() ||
      schema->as_string() != kReportSchema) {
    err = "not a conga-campaign-v1 report";
    return false;
  }
  const Json* fp = doc.find("fingerprint");
  fingerprint = fp != nullptr && fp->is_string() ? fp->as_string() : "";
  const Json* cells = doc.find("cells");
  if (cells == nullptr || !cells->is_array()) {
    err = "report has no cells array";
    return false;
  }
  out.clear();
  for (const Json& e : cells->items()) {
    ReportCell cell;
    if (!read_report_cell(e, cell, err)) return false;
    out.push_back(std::move(cell));
  }
  return true;
}

}  // namespace

bool make_verdict(const Json& report, const Json& baseline,
                  const VerdictOptions& opts, Json& out, std::string& err) {
  std::vector<ReportCell> cur_cells;
  std::vector<ReportCell> base_cells;
  std::string cur_fp;
  std::string base_fp;
  if (!read_report(report, cur_cells, cur_fp, err)) {
    err = "report: " + err;
    return false;
  }
  if (!read_report(baseline, base_cells, base_fp, err)) {
    err = "baseline: " + err;
    return false;
  }

  // Coordinate -> baseline cell. std::map, not unordered: verdict cell
  // order must be deterministic (the conga-lint iteration rule).
  std::map<std::string, const ReportCell*> base_by_coord;
  for (const ReportCell& c : base_cells) base_by_coord[c.coordinate] = &c;

  Json cells = Json::array();
  Json missing = Json::array();
  std::uint64_t regressions = 0;
  std::uint64_t improvements = 0;
  for (const ReportCell& cur : cur_cells) {
    const auto it = base_by_coord.find(cur.coordinate);
    if (it == base_by_coord.end()) {
      missing.push_back(Json::string(cur.coordinate));
      continue;
    }
    const ReportCell& base = *it->second;
    const double rel_delta =
        base.avg_norm_fct != 0.0
            ? (cur.avg_norm_fct - base.avg_norm_fct) / base.avg_norm_fct
            : (cur.avg_norm_fct != 0.0 ? 1.0 : 0.0);
    const bool fct_regression = rel_delta > opts.rel_fct_tolerance;
    const bool fct_improvement = rel_delta < -opts.rel_fct_tolerance;
    const bool reorder_regression =
        cur.reorder_segments > base.reorder_segments &&
        (base.reorder_segments == 0 ||
         static_cast<double>(cur.reorder_segments - base.reorder_segments) /
                 static_cast<double>(base.reorder_segments) >
             opts.rel_fct_tolerance);
    if (fct_regression || reorder_regression) ++regressions;
    if (fct_improvement && !reorder_regression) ++improvements;

    Json e = Json::object();
    e.set("coordinate", Json::string(cur.coordinate));
    e.set("avg_norm_fct", Json::number(cur.avg_norm_fct));
    e.set("baseline_avg_norm_fct", Json::number(base.avg_norm_fct));
    e.set("rel_delta", Json::number(rel_delta));
    e.set("fct_digest_changed",
          Json::boolean(cur.fct_digest != base.fct_digest));
    e.set("reorder_segments", Json::uinteger(cur.reorder_segments));
    e.set("baseline_reorder_segments", Json::uinteger(base.reorder_segments));
    e.set("status",
          Json::string(fct_regression || reorder_regression ? "regression"
                       : fct_improvement                    ? "improvement"
                                                            : "ok"));
    cells.push_back(std::move(e));
  }

  Json v = Json::object();
  v.set("schema", Json::string(kVerdictSchema));
  v.set("fingerprint", Json::string(cur_fp));
  v.set("baseline_fingerprint", Json::string(base_fp));
  v.set("rel_fct_tolerance", Json::number(opts.rel_fct_tolerance));
  v.set("regressions", Json::uinteger(regressions));
  v.set("improvements", Json::uinteger(improvements));
  v.set("cells", std::move(cells));
  v.set("missing_baseline", std::move(missing));
  out = std::move(v);
  return true;
}

bool verdict_pass(const Json& verdict) {
  const Json* schema = verdict.find("schema");
  const Json* regressions = verdict.find("regressions");
  return verdict.is_object() && schema != nullptr && schema->is_string() &&
         schema->as_string() == kVerdictSchema && regressions != nullptr &&
         regressions->is_integer() && regressions->as_uint() == 0;
}

bool verify_sample(const CampaignRun& run, double fraction, int jobs,
                   telemetry::TraceSink* sink, VerifyOutcome& out,
                   std::string& err) {
  out = VerifyOutcome{};
  if (!(fraction > 0.0)) return true;
  if (fraction > 1.0) fraction = 1.0;

  std::vector<std::size_t> hits;
  for (std::size_t i = 0; i < run.cells.size(); ++i) {
    if (run.origins[i] == CellOrigin::kCached) hits.push_back(i);
  }
  if (hits.empty()) return true;

  // Deterministic sample: keyed off the fingerprint and campaign name, so a
  // rerun of the same campaign on the same build re-verifies the same cells
  // (and a new build rotates the sample).
  sim::Rng rng(fnv1a64(run.fingerprint + "|" + run.spec.name));
  sim::shuffle(hits, rng);
  const std::size_t want = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(fraction * static_cast<double>(hits.size()))));
  hits.resize(std::min(want, hits.size()));

  std::vector<std::uint8_t> mismatched;
  try {
    mismatched = runtime::parallel_map<std::uint8_t>(
        hits.size(), jobs, [&](std::size_t si) -> std::uint8_t {
          const std::size_t i = hits[si];
          const Cell& cell = run.cells[i];
          workload::ExperimentConfig cfg;
          std::string cell_err;
          if (!to_experiment_config(cell.spec, cfg, cell_err)) {
            throw std::runtime_error("cell " + cell_coordinate(cell) +
                                     ": " + cell_err);
          }
          const workload::ExperimentResult fresh =
              workload::run_fct_experiment(cfg);
          return json_of_result(fresh).dump() !=
                         json_of_result(run.results[i]).dump()
                     ? 1
                     : 0;
        });
  } catch (const std::exception& e) {
    err = e.what();
    return false;
  }

  const telemetry::ComponentId comp =
      sink != nullptr ? sink->intern_component("campaign/" + run.spec.name)
                      : telemetry::kInvalidComponent;
  for (std::size_t si = 0; si < hits.size(); ++si) {
    const std::size_t i = hits[si];
    const std::uint64_t key_hash = fnv1a64(run.cells[i].key);
    telemetry::emit(sink, telemetry::EventType::kCampaignVerifyRecompute,
                    comp, 0, i,
                    mismatched[si] != 0 ? (key_hash | kRecomputedFlag)
                                        : key_hash);
    ++out.sampled;
    if (mismatched[si] != 0) {
      ++out.mismatched;
      out.poisoned_keys.push_back(run.cells[i].key);
    }
  }
  return true;
}

}  // namespace conga::campaign
