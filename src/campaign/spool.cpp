#include "campaign/spool.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/json.hpp"
#include "campaign/store.hpp"

namespace conga::campaign {

namespace {

namespace fs = std::filesystem;

constexpr const char* kResumeSchema = "conga-spool-resume-v1";

const char* origin_name(CellOrigin o) {
  switch (o) {
    case CellOrigin::kComputed:
      return "computed";
    case CellOrigin::kCached:
      return "cached";
    case CellOrigin::kRecomputed:
      return "recomputed";
    case CellOrigin::kFailed:
      return "failed";
  }
  return "unknown";
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  out.clear();
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    out.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_file_synced(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool flushed = std::fflush(f) == 0;
  const bool synced = ::fsync(::fileno(f)) == 0;
  return (std::fclose(f) == 0) && wrote && flushed && synced;
}

/// tmp + rename + fsync: readers only ever see whole documents, and the
/// rename survives a crash immediately after return.
bool write_file_atomic(const std::string& path, const std::string& bytes,
                       std::string& err) {
  const std::string tmp = path + "." + std::to_string(::getpid()) + ".tmp";
  if (!write_file_synced(tmp, bytes)) {
    err = "cannot write " + tmp;
    return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    err = "rename to " + path + " failed: " + ec.message();
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Paths derived from one request file (spool protocol, see spool.hpp).
struct RequestPaths {
  std::string request;
  std::string out_jsonl;
  std::string report;
  std::string resume;
  std::string error;
};

RequestPaths paths_of(const std::string& request_path) {
  RequestPaths p;
  p.request = request_path;
  const std::string base =
      request_path.substr(0, request_path.size() - 5);  // strip ".json"
  p.out_jsonl = base + ".out.jsonl";
  p.report = base + ".report.json";
  p.resume = base + ".resume.json";
  p.error = base + ".error";
  return p;
}

/// Requests ready to run: *.json files that are not derived documents and
/// have neither a report (done) nor an error record (rejected).
std::vector<std::string> scan_requests(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(dir, ec)) {
    if (!e.is_regular_file(ec)) continue;
    const std::string name = e.path().filename().string();
    if (!ends_with(name, ".json")) continue;
    if (ends_with(name, ".report.json") || ends_with(name, ".resume.json")) {
      continue;
    }
    const RequestPaths p = paths_of(e.path().string());
    if (fs::exists(p.report, ec) || fs::exists(p.error, ec)) continue;
    out.push_back(e.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void record_error(const RequestPaths& p, const std::string& message) {
  std::fprintf(stderr, "serve: %s rejected: %s\n", p.request.c_str(),
               message.c_str());
  write_file_synced(p.error, message + "\n");
}

enum class RequestOutcome { kDone, kDrained, kRejected };

RequestOutcome process_request(const SpoolOptions& opts,
                               const RequestPaths& p,
                               const volatile std::sig_atomic_t* shutdown) {
  std::string text;
  std::string err;
  if (!read_file(p.request, text)) {
    record_error(p, "cannot read request file");
    return RequestOutcome::kRejected;
  }
  CampaignSpec spec;
  if (!parse_campaign(text, spec, err)) {
    record_error(p, "bad campaign request: " + err);
    return RequestOutcome::kRejected;
  }

  // Stream per-cell results as they resolve. Truncate on (re)start: a
  // resumed request rewrites the stream — completed cells come back as
  // store hits, so the finished stream is always complete.
  std::FILE* jsonl = std::fopen(p.out_jsonl.c_str(), "wb");
  const auto on_done = [&](std::size_t index, const Cell& cell,
                           CellOrigin origin,
                           const workload::ExperimentResult* result) {
    if (jsonl == nullptr) return;
    Json line = Json::object();
    line.set("cell", Json::uinteger(index));
    line.set("coordinate", Json::string(cell_coordinate(cell)));
    line.set("key", Json::string(cell.key));
    line.set("origin", Json::string(origin_name(origin)));
    if (result != nullptr) line.set("result", json_of_result(*result));
    const std::string bytes = line.dump() + "\n";
    std::fwrite(bytes.data(), 1, bytes.size(), jsonl);
    std::fflush(jsonl);
  };

  ResultStore store(opts.store_root);
  RunOptions ropts;
  ropts.jobs = 1;  // lookups are main-thread; children do the computing
  ropts.store = opts.store_root.empty() ? nullptr : &store;
  ropts.sink = opts.sink;
  ropts.verbose = opts.verbose;
  SupervisorOptions sopts = opts.supervisor;
  sopts.store_root = opts.store_root;

  CampaignRun run;
  SuperviseOutcome outcome = SuperviseOutcome::kComplete;
  const bool ok = run_campaign_supervised(spec, ropts, sopts, on_done,
                                          shutdown, run, outcome, err);
  if (jsonl != nullptr) std::fclose(jsonl);
  if (!ok) {
    record_error(p, err);
    return RequestOutcome::kRejected;
  }

  if (outcome == SuperviseOutcome::kDrained) {
    // kComputed doubles as the placeholder origin of still-pending cells;
    // a pending cell still holds a default (flowless) result, which is how
    // the two are told apart here. The marker is informational — resume
    // correctness comes from the store, not this count.
    std::size_t resolved = run.stats.hits + run.stats.failed;
    for (std::size_t i = 0; i < run.origins.size(); ++i) {
      if (run.origins[i] == CellOrigin::kRecomputed ||
          (run.origins[i] == CellOrigin::kComputed &&
           run.results[i].flows > 0)) {
        ++resolved;
      }
    }
    Json marker = Json::object();
    marker.set("schema", Json::string(kResumeSchema));
    marker.set("request",
               Json::string(fs::path(p.request).filename().string()));
    marker.set("cells", Json::uinteger(run.stats.cells));
    marker.set("resolved", Json::uinteger(resolved));
    if (!write_file_atomic(p.resume, marker.dump_pretty() + "\n", err)) {
      std::fprintf(stderr, "serve: cannot write resume marker: %s\n",
                   err.c_str());
    } else if (opts.verbose) {
      std::fprintf(stderr, "serve: drained %s (%zu/%zu cells resolved)\n",
                   p.request.c_str(), resolved,
                   static_cast<std::size_t>(run.stats.cells));
    }
    return RequestOutcome::kDrained;
  }

  if (!write_file_atomic(p.report, report_json(run), err)) {
    record_error(p, "cannot write report: " + err);
    return RequestOutcome::kRejected;
  }
  std::error_code ec;
  fs::remove(p.resume, ec);  // the report supersedes any drain marker
  std::fprintf(stderr,
               "serve: %s done (%zu cells, %zu hits, %zu failed)%s\n",
               fs::path(p.request).filename().string().c_str(),
               run.stats.cells, run.stats.hits, run.stats.failed,
               run.stats.store == StoreHealth::kDegraded
                   ? " [store degraded]"
                   : "");
  return RequestOutcome::kDone;
}

}  // namespace

int serve_spool(const SpoolOptions& opts,
                const volatile std::sig_atomic_t* shutdown,
                std::string& err) {
  std::error_code ec;
  fs::create_directories(opts.dir, ec);
  if (ec || !fs::is_directory(opts.dir, ec)) {
    err = "serve: unusable spool directory " + opts.dir +
          (ec ? ": " + ec.message() : "");
    return 2;
  }
  if (opts.verbose) {
    std::fprintf(stderr, "serve: watching %s (poll %d ms%s)\n",
                 opts.dir.c_str(), opts.poll_ms,
                 opts.once ? ", once" : "");
  }

  while (shutdown == nullptr || *shutdown == 0) {
    const std::vector<std::string> requests = scan_requests(opts.dir);
    for (const std::string& request : requests) {
      if (shutdown != nullptr && *shutdown != 0) return 0;
      const RequestPaths p = paths_of(request);
      if (process_request(opts, p, shutdown) == RequestOutcome::kDrained) {
        return 0;
      }
    }
    if (opts.once) return 0;
    // Idle poll, in small slices so a signal turns around fast.
    const int poll_ms = std::max(10, opts.poll_ms);
    for (int waited = 0; waited < poll_ms; waited += 10) {
      if (shutdown != nullptr && *shutdown != 0) return 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  return 0;
}

}  // namespace conga::campaign
