// On-disk content-addressed result store.
//
// One entry per experiment cell, addressed by cell_key() — the hash of the
// cell's canonical spec bytes plus the build fingerprint, so a key can only
// ever name one (config, code) pair and entries never need invalidation
// logic: changed code means changed keys means misses.
//
// Layout under the root (created lazily):
//   <root>/<key[0:2]>/<key>.json   one entry (conga-cell-v1)
//   <root>/tmp/                    in-flight writes
//
// Entries are written atomically: the payload goes to a uniquely named file
// under tmp/ and is rename()d into place, so a reader (or a concurrent
// writer under --jobs N) can never observe a torn entry — it sees the old
// bytes, the new bytes, or a miss. Concurrent writers of the same key are
// benign: both rename identical bytes (results are deterministic), last one
// wins.
//
// Every load re-verifies the stored payload digest (FNV-1a over the
// canonical result bytes recorded at write time); a corrupted or truncated
// entry reports kCorrupt and the campaign runner recomputes and overwrites
// it. The store never trusts what it reads.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "workload/experiment.hpp"

namespace conga::campaign {

class ResultStore {
 public:
  enum class LoadStatus : std::uint8_t {
    kHit = 0,   ///< entry present and digest-verified
    kMiss,      ///< no entry for this key
    kCorrupt,   ///< entry present but unparseable or digest-mismatched
  };

  explicit ResultStore(std::string root);

  const std::string& root() const { return root_; }

  /// Verified lookup. `err` describes kCorrupt outcomes.
  LoadStatus load(const std::string& key, workload::ExperimentResult& out,
                  std::string& err) const;

  /// Atomically (over)writes the entry for `key`. `spec_canonical` is the
  /// cell's canonical spec JSON, embedded for auditability (`conga_serve
  /// expand` and humans can read back what produced a cell). Thread-safe:
  /// concurrent put()s — same or different keys — never tear an entry.
  /// Returns false and sets `err` on I/O failure.
  bool put(const std::string& key, const std::string& fingerprint,
           const std::string& spec_canonical,
           const workload::ExperimentResult& result, std::string& err);

  /// Entry path for `key` (exists or not).
  std::string entry_path(const std::string& key) const;

  /// Entries written by this instance (atomic; workers write concurrently).
  std::uint64_t writes() const { return writes_.load(); }

 private:
  std::string root_;
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> tmp_seq_{0};
};

}  // namespace conga::campaign
