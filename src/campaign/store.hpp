// On-disk content-addressed result store.
//
// One entry per experiment cell, addressed by cell_key() — the hash of the
// cell's canonical spec bytes plus the build fingerprint, so a key can only
// ever name one (config, code) pair and entries never need invalidation
// logic: changed code means changed keys means misses.
//
// Layout under the root (created lazily):
//   <root>/<key[0:2]>/<key>.json   one entry (conga-cell-v1)
//   <root>/tmp/                    in-flight writes
//
// Entries are written atomically: the payload goes to a uniquely named file
// under tmp/ and is rename()d into place, so a reader (or a concurrent
// writer under --jobs N) can never observe a torn entry — it sees the old
// bytes, the new bytes, or a miss. Concurrent writers of the same key are
// benign: both rename identical bytes (results are deterministic), last one
// wins.
//
// Every load re-verifies the stored payload digest (FNV-1a over the
// canonical result bytes recorded at write time); a corrupted or truncated
// entry reports kCorrupt and the campaign runner recomputes and overwrites
// it. The store never trusts what it reads.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "workload/experiment.hpp"

namespace conga::campaign {

class ResultStore {
 public:
  enum class LoadStatus : std::uint8_t {
    kHit = 0,   ///< entry present and digest-verified
    kMiss,      ///< no entry for this key
    kCorrupt,   ///< entry present but unparseable or digest-mismatched
  };

  explicit ResultStore(std::string root);

  const std::string& root() const { return root_; }

  /// Verified lookup. `err` describes kCorrupt outcomes.
  LoadStatus load(const std::string& key, workload::ExperimentResult& out,
                  std::string& err) const;

  /// Atomically (over)writes the entry for `key`. `spec_canonical` is the
  /// cell's canonical spec JSON, embedded for auditability (`conga_serve
  /// expand` and humans can read back what produced a cell). Thread-safe:
  /// concurrent put()s — same or different keys — never tear an entry.
  /// Returns false and sets `err` on I/O failure.
  bool put(const std::string& key, const std::string& fingerprint,
           const std::string& spec_canonical,
           const workload::ExperimentResult& result, std::string& err);

  /// Entry path for `key` (exists or not).
  std::string entry_path(const std::string& key) const;

  /// Entries written by this instance (atomic; workers write concurrently).
  std::uint64_t writes() const { return writes_.load(); }

  // --- maintenance (conga_serve store gc / store stat) ---------------------

  struct GcOptions {
    /// Remove tmp/*.tmp files older than this many seconds (orphans left by
    /// a crash between write and rename). 0 removes every tmp file.
    std::int64_t tmp_age_seconds = 3600;
    /// When non-empty, remove entries whose fingerprint is not in the list
    /// (dead keys from builds that no longer exist). Empty keeps everything.
    std::vector<std::string> keep_fingerprints;
  };

  struct GcStats {
    std::uint64_t tmp_removed = 0;
    std::uint64_t tmp_kept = 0;
    std::uint64_t entries_removed = 0;
    std::uint64_t entries_kept = 0;
    std::uint64_t bytes_reclaimed = 0;
  };

  /// Removes orphaned tmp files and (optionally) dead-fingerprint entries.
  /// A missing store root is an empty store, not an error. Returns false and
  /// sets `err` only on I/O failure mid-walk.
  bool gc(const GcOptions& opts, GcStats& out, std::string& err) const;

  struct StatBucket {
    std::string fingerprint;  ///< "(unreadable)" for unparseable entries
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
  };

  struct StoreStat {
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
    std::uint64_t tmp_files = 0;
    std::uint64_t tmp_bytes = 0;
    std::uint64_t quarantined = 0;  ///< poison records under quarantine/
    std::vector<StatBucket> by_fingerprint;  ///< sorted by fingerprint
  };

  /// Walks the store and summarizes it (entry count/bytes per fingerprint,
  /// tmp backlog, quarantine records). Missing root = empty store.
  bool stat(StoreStat& out, std::string& err) const;

  /// Test hook: when armed, the next put() aborts the process after writing
  /// its tmp file but before the rename — the crash window that orphans a
  /// tmp file. Used by the CONGA_CELL_FAULT=tear:N injection mode.
  static void set_tear_after_tmp_write_for_tests(bool armed);

 private:
  std::string root_;
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> tmp_seq_{0};
};

}  // namespace conga::campaign
