#include "campaign/fingerprint.hpp"

#include <cstdlib>

#include "telemetry/telemetry.hpp"

// Generated into ${CMAKE_BINARY_DIR}/generated on every build; defines
// kCongaSourceDigest (see tools/cmake/gen_fingerprint.cmake).
#include "campaign_fingerprint.inc"

namespace conga::campaign {

std::string source_digest() { return kCongaSourceDigest; }

std::string code_fingerprint() {
  const char* env = std::getenv("CONGA_CODE_FINGERPRINT");
  if (env != nullptr && env[0] != '\0') return env;
  std::string fp = "src:";
  fp += kCongaSourceDigest;
  fp += "|cxx:";
  fp += __VERSION__;
#ifdef NDEBUG
  fp += "|ndebug:1";
#else
  fp += "|ndebug:0";
#endif
  fp += telemetry::compiled_in() ? "|tele:1" : "|tele:0";
#ifdef CONGA_CHECK_INVARIANTS
  fp += "|inv:1";
#else
  fp += "|inv:0";
#endif
  return fp;
}

}  // namespace conga::campaign
