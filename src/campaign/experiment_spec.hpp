// Declarative experiment cell specification — the campaign service's unit of
// caching.
//
// workload::ExperimentConfig holds function-valued members (the transport
// factory, the LB factory, the fabric hook), so it cannot be hashed or
// stored. ExperimentSpec is its declarative mirror: every axis the sweeps
// vary, expressed as plain data — the policy by its registry name, the
// distribution by name, the topology as the (already declarative)
// TopologyConfig, faults as a named profile plus seed. A spec expands to an
// ExperimentConfig via the policy/distribution registries, and serializes to
// *canonical JSON*: one fixed field order, shortest-round-trip doubles, no
// whitespace — the byte sequence the content-addressed store keys on.
//
// Canonical contract (tests/campaign_test.cpp enforces it):
//   parse(canonical_json(s)) == s  and  canonical_json(parse(text)) is
//   byte-identical for any field ordering of `text`. Unknown fields are a
//   parse error (a typo must not silently hash to a fresh cell); absent
//   fields take the documented defaults (so adding a field with its old
//   behaviour as default does not invalidate existing cells... the code
//   fingerprint already does).
#pragma once

#include <cstdint>
#include <string>

#include "campaign/json.hpp"
#include "net/topology.hpp"
#include "sim/time.hpp"
#include "workload/experiment.hpp"

namespace conga::campaign {

/// Fault axis of a cell: a named profile executed off a keyed seed.
///  * "none"   — no injector (bit-identical to a run without one).
///  * "random" — fault::make_random_plan over the cell's topology.
///  * "gray"   — 2-3 gray-failure links (loss + corruption the control plane
///               never hears about), the chaos_audit gray profile.
struct FaultSpec {
  std::string profile = "none";
  std::uint64_t seed = 1;

  bool operator==(const FaultSpec&) const = default;
};

struct ExperimentSpec {
  std::string dist = "enterprise";  ///< enterprise|datamining|websearch|fixed:<bytes>
  std::string policy = "conga";     ///< lb_ext policy-registry name
  double load = 0.6;                ///< offered load fraction in (0, 1]
  net::TopologyConfig topo;

  // Transport knobs the sweeps vary (the rest of TcpConfig is fixed; a new
  // knob becomes a new field with the old value as default).
  sim::TimeNs min_rto_ns = sim::milliseconds(200);
  bool dctcp = false;

  sim::TimeNs warmup_ns = sim::milliseconds(10);
  sim::TimeNs measure_ns = sim::milliseconds(40);
  sim::TimeNs max_drain_ns = sim::seconds(1.0);

  std::uint64_t fabric_seed = 1;
  std::uint64_t traffic_seed = 7;

  FaultSpec fault;
};

/// Topology <-> canonical document (shared by cell specs and campaign
/// requests; same strict-parse contract as specs).
Json json_of_topo(const net::TopologyConfig& topo);
bool topo_from_json(const Json& doc, net::TopologyConfig& out,
                    std::string& err);

/// Spec -> canonical JSON document (fixed member order).
Json json_of_spec(const ExperimentSpec& spec);
/// Spec -> canonical JSON bytes (compact dump of json_of_spec).
std::string canonical_json(const ExperimentSpec& spec);

/// Strict parse from a document: fields in any order, unknown fields are an
/// error, absent fields keep defaults. Returns false and sets `err`.
bool spec_from_json(const Json& doc, ExperimentSpec& out, std::string& err);
/// Convenience: text -> spec.
bool parse_spec(const std::string& text, ExperimentSpec& out,
                std::string& err);

/// Content-addressed cache key: 32 lowercase hex chars over the canonical
/// spec bytes and the build fingerprint (two independent 64-bit hashes — a
/// collision must fool both).
std::string cell_key(const ExperimentSpec& spec,
                     const std::string& fingerprint);

/// Expands the spec to a runnable config, resolving the policy and
/// distribution registries and arming the fault profile (the returned
/// config's fabric_hook owns the injector; keep the config alive through the
/// run, as run_fct_experiment's callers do). Returns false and sets `err`
/// for unknown names or invalid parameters; `out` is untouched on failure.
bool to_experiment_config(const ExperimentSpec& spec,
                          workload::ExperimentConfig& out, std::string& err);

/// Serializes a result into the store's canonical payload object (fixed
/// member order; doubles in shortest-round-trip form).
Json json_of_result(const workload::ExperimentResult& r);
/// Strict inverse of json_of_result (same contract as spec_from_json).
bool result_from_json(const Json& doc, workload::ExperimentResult& out,
                      std::string& err);

}  // namespace conga::campaign
