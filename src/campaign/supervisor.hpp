// Crash-safe campaign supervisor: per-cell child processes, deadlines,
// retry/backoff, quarantine.
//
// The campaign runner in campaign.cpp executes cells on in-process worker
// threads — fast, but one aborting cell (an invariant violation, a sanitizer
// kill, a plain crash) takes the whole sweep down with it, and one stuck
// cell hangs it forever. The supervisor trades a fork+exec per cache miss
// for containment: each miss runs in an isolated child process (a hidden
// `conga_serve cell` subcommand that reads a conga-cell-request-v1 document
// on stdin, simulates, writes its result entry into the content-addressed
// store itself, and echoes the result on stdout), so the failure domain of a
// cell is exactly that cell.
//
// Supervision policy (DESIGN.md §15):
//  * deadline   — a child that outlives its per-cell wall-clock deadline is
//                 SIGKILLed and the attempt counts as a timeout;
//  * retry      — failed attempts are re-run on a deterministic, capped
//                 exponential backoff schedule keyed by the cell key (no
//                 ambient randomness: the same cell retries on the same
//                 schedule in every run);
//  * quarantine — a cell that exhausts max_attempts (or fails permanently:
//                 child exit code 3 means "retrying cannot help") is written
//                 to <store>/quarantine/<key>.json as a poison record
//                 embedding the full attempt log, and the campaign completes
//                 with an explicit failed_cells block instead of dying;
//  * drain      — when the caller's shutdown flag goes up (SIGTERM/SIGINT),
//                 no new children launch, in-flight children get
//                 min(remaining deadline, drain grace) to finish, stragglers
//                 are killed back to pending, and the run returns kDrained
//                 so the spool layer can write a resume marker. Completed
//                 cells are already in the store — a restarted run re-reads
//                 them as hits and reproduces the report byte-for-byte.
//
// Every decision is observable: kSupervisor telemetry events
// (spawn/exit/timeout/retry/quarantine) fire on the main thread as the loop
// takes them, and the CONGA_CELL_FAULT env knob (parsed by the CLI into
// SupervisorOptions::fault_spec) injects deterministic crashes, hangs, and
// torn store writes for tests and the crash-resilience CI lane.
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace conga::campaign {

struct SupervisorOptions {
  /// Path to the conga_serve binary to exec for `cell` children (resolve
  /// with self_exe_path()). Required.
  std::string exe;
  /// Store root children write their entries into; "" runs storeless (the
  /// parent keeps results from the child's stdout echo only).
  std::string store_root;
  int jobs = 1;               ///< concurrent children
  int max_attempts = 3;       ///< attempts per cell before quarantine
  std::int64_t deadline_ms = 120000;     ///< per-attempt wall-clock budget
  std::int64_t backoff_base_ms = 250;    ///< first retry delay
  std::int64_t backoff_cap_ms = 5000;    ///< exponential growth cap
  std::int64_t drain_grace_ms = 5000;    ///< shutdown budget for in-flight
  /// CONGA_CELL_FAULT directives ("crash:0,hang:2@1,tear:3"); see
  /// parse_cell_fault(). Empty injects nothing.
  std::string fault_spec;
};

/// The deterministic retry schedule: capped exponential growth from
/// backoff_base_ms plus a keyed jitter term, a pure function of
/// (key, attempt, options) — reruns retry on identical schedules.
std::int64_t backoff_delay_ms(const std::string& key, int attempt,
                              const SupervisorOptions& opts);

/// One CONGA_CELL_FAULT directive: inject `mode` into cell `cell` on
/// attempt `attempt` (0 = every attempt).
///  * crash — the child aborts (SIGABRT) after reading its request;
///  * hang  — the child sleeps forever (killed at the deadline);
///  * tear  — the child's store write dies between tmp write and rename,
///            orphaning a tmp file (the `store gc` target).
struct CellFaultDirective {
  enum class Mode : std::uint8_t { kCrash, kHang, kTear };
  Mode mode = Mode::kCrash;
  std::size_t cell = 0;
  int attempt = 0;
};

/// Parses "mode:cell[@attempt]" comma lists ("crash:0,hang:2@1"). Returns
/// false and sets `err` on malformed directives.
bool parse_cell_fault(const std::string& text,
                      std::vector<CellFaultDirective>& out, std::string& err);

/// Action name for (cell, attempt) — "crash", "hang", "tear", or "" — the
/// value the supervisor exports as CONGA_CELL_FAULT_ACTION to that child.
const char* fault_action(const std::vector<CellFaultDirective>& directives,
                         std::size_t cell, int attempt);

/// Resolves the running binary's path (/proc/self/exe, falling back to
/// argv0) for SupervisorOptions::exe.
std::string self_exe_path(const char* argv0);

enum class SuperviseOutcome : std::uint8_t {
  kComplete = 0,  ///< every cell resolved (result or quarantine)
  kDrained,       ///< shutdown observed; unfinished cells left pending
};

/// Streaming notification, invoked on the main thread as each cell resolves
/// (store hits during lookup, then children as they land). `result` is null
/// for kFailed cells.
using CellDoneFn =
    std::function<void(std::size_t index, const Cell& cell, CellOrigin origin,
                       const workload::ExperimentResult* result)>;

/// Supervised counterpart of run_campaign(): store lookups on the main
/// thread, then every miss in an isolated child process under the
/// deadline/retry/quarantine policy. `shutdown` (may be null) is polled
/// between supervision steps; when it goes nonzero the run drains and
/// `outcome` reports kDrained (out's results are then incomplete — write a
/// resume marker, not a report). on_done may be null. Returns false and
/// sets `err` on invalid requests or when the supervisor cannot spawn at
/// all (bad exe path).
bool run_campaign_supervised(const CampaignSpec& spec, const RunOptions& ropts,
                             const SupervisorOptions& sopts,
                             const CellDoneFn& on_done,
                             const volatile std::sig_atomic_t* shutdown,
                             CampaignRun& out, SuperviseOutcome& outcome,
                             std::string& err);

/// Child-side body of the hidden `conga_serve cell` subcommand: parses a
/// conga-cell-request-v1 document, applies the CONGA_CELL_FAULT_ACTION env
/// knob, simulates, writes the store entry (when a store root was given),
/// and prints a conga-cell-response-v1 document. Returns the process exit
/// code: 0 success (even when the store write degraded), 3 permanent
/// failure (malformed request / unresolvable spec — retrying cannot help).
int cell_main(const std::string& request_text, std::string& response_out,
              std::string& diag);

}  // namespace conga::campaign
