#include "net/pod_fabric.hpp"

#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace conga::net {

namespace {
const CoreLinkOverride* find_override(const PodTopologyConfig& cfg, int pod,
                                      int spine, int core) {
  for (const CoreLinkOverride& o : cfg.core_overrides) {
    if (o.pod == pod && o.spine == spine && o.core == core) return &o;
  }
  return nullptr;
}
}  // namespace

std::string PodTopologyConfig::validate() const {
  if (num_pods < 1) return "num_pods must be >= 1";
  if (leaves_per_pod < 1) return "leaves_per_pod must be >= 1";
  if (spines_per_pod < 1) return "spines_per_pod must be >= 1";
  if (hosts_per_leaf < 1) return "hosts_per_leaf must be >= 1";
  if (num_cores < 1) return "num_cores must be >= 1";
  if (spines_per_pod > 16) return "LBTag is 4 bits: at most 16 leaf uplinks";
  for (const CoreLinkOverride& o : core_overrides) {
    if (o.pod < 0 || o.pod >= num_pods) return "override: pod out of range";
    if (o.spine < 0 || o.spine >= spines_per_pod)
      return "override: spine out of range";
    if (o.core < 0 || o.core >= num_cores)
      return "override: core out of range";
    if (o.rate_factor < 0) return "override: negative rate factor";
  }
  return {};
}

PodFabric::PodFabric(sim::Scheduler& sched, const PodTopologyConfig& cfg,
                     std::uint64_t seed)
    : sched_(sched), cfg_(cfg), rng_(seed) {
  if (const std::string err = cfg_.validate(); !err.empty()) {
    throw std::invalid_argument("PodTopologyConfig: " + err);
  }
  build();
}

void PodFabric::build() {
  const int P = cfg_.num_pods;
  const int Lp = cfg_.leaves_per_pod;
  const int Sp = cfg_.spines_per_pod;
  const int H = cfg_.hosts_per_leaf;
  const int C = cfg_.num_cores;
  const int L = P * Lp;

  directory_.resize(static_cast<std::size_t>(L) * H);
  leaf_to_pod_.resize(static_cast<std::size_t>(L));
  for (int h = 0; h < L * H; ++h) directory_[static_cast<std::size_t>(h)] = h / H;
  for (int l = 0; l < L; ++l) leaf_to_pod_[static_cast<std::size_t>(l)] = l / Lp;

  // Keyed per-component seed streams (see Fabric::build): stable under
  // wiring-order changes and component addition.
  for (int l = 0; l < L; ++l) {
    leaves_.push_back(std::make_unique<LeafSwitch>(
        sched_, l, &directory_,
        rng_.stream_seed((1ULL << 56) | static_cast<std::uint64_t>(l))));
  }
  for (int p = 0; p < P; ++p) {
    for (int s = 0; s < Sp; ++s) {
      spines_.push_back(std::make_unique<SpineSwitch>(
          p * Sp + s, L,
          rng_.stream_seed((2ULL << 56) |
                           static_cast<std::uint64_t>(p * Sp + s))));
      spines_.back()->set_pod_membership(leaf_to_pod_, p);
    }
  }
  for (int c = 0; c < C; ++c) {
    cores_.push_back(std::make_unique<CoreSwitch>(
        c, leaf_to_pod_, P,
        rng_.stream_seed((4ULL << 56) | static_cast<std::uint64_t>(c))));
  }

  // Hosts and access links.
  LinkConfig edge;
  edge.rate_bps = cfg_.host_link_bps;
  edge.propagation_delay = cfg_.host_link_delay;
  edge.queue_capacity_bytes = cfg_.edge_queue_bytes;
  edge.marks_ce = false;
  edge.dre = cfg_.dre;
  for (int h = 0; h < L * H; ++h) {
    const LeafId l = directory_[static_cast<std::size_t>(h)];
    auto host = std::make_unique<Host>(h, l);
    LinkConfig nic = edge;
    nic.queue_capacity_bytes = cfg_.nic_queue_bytes;
    char up_name[48];
    std::snprintf(up_name, sizeof up_name, "host%d->leaf%d", h, l);
    auto up = std::make_unique<Link>(sched_, up_name, nic);
    up->connect_to(leaves_[static_cast<std::size_t>(l)].get(), h);
    host->attach_uplink(up.get());
    char down_name[48];
    std::snprintf(down_name, sizeof down_name, "leaf%d->host%d", l, h);
    auto down = std::make_unique<Link>(sched_, down_name, edge);
    down->connect_to(host.get(), 0);
    leaves_[static_cast<std::size_t>(l)]->add_host_port(h, down.get());
    hosts_.push_back(std::move(host));
    links_.push_back(std::move(up));
    links_.push_back(std::move(down));
  }

  // Pod fabric links: each pod leaf to each pod spine (single links).
  LinkConfig fab;
  fab.rate_bps = cfg_.fabric_link_bps;
  fab.propagation_delay = cfg_.fabric_link_delay;
  fab.queue_capacity_bytes = cfg_.fabric_queue_bytes;
  fab.marks_ce = true;
  fab.dre = cfg_.dre;
  for (int p = 0; p < P; ++p) {
    for (int lp = 0; lp < Lp; ++lp) {
      const int l = p * Lp + lp;
      for (int s = 0; s < Sp; ++s) {
        SpineSwitch* spine = spines_[static_cast<std::size_t>(p * Sp + s)].get();
        char up_name[48];
        std::snprintf(up_name, sizeof up_name, "up:l%ds%d", l, p * Sp + s);
        char down_name[48];
        std::snprintf(down_name, sizeof down_name, "down:l%ds%d", l, p * Sp + s);
        auto up = std::make_unique<Link>(sched_, up_name, fab);
        up->connect_to(spine, l);
        leaves_[static_cast<std::size_t>(l)]->add_uplink(up.get(), p * Sp + s);
        fabric_links_.push_back(up.get());
        auto down = std::make_unique<Link>(sched_, down_name, fab);
        down->connect_to(leaves_[static_cast<std::size_t>(l)].get(), 1000 + s);
        spine->add_downlink(l, down.get());
        fabric_links_.push_back(down.get());
        links_.push_back(std::move(up));
        links_.push_back(std::move(down));
      }
    }
  }

  // Core links: every pod spine to every core, both directions.
  up_to_core_.assign(
      static_cast<std::size_t>(P),
      std::vector<std::vector<Link*>>(
          static_cast<std::size_t>(Sp),
          std::vector<Link*>(static_cast<std::size_t>(C), nullptr)));
  down_from_core_.assign(
      static_cast<std::size_t>(C),
      std::vector<std::vector<Link*>>(
          static_cast<std::size_t>(P),
          std::vector<Link*>(static_cast<std::size_t>(Sp), nullptr)));
  for (int p = 0; p < P; ++p) {
    for (int s = 0; s < Sp; ++s) {
      for (int c = 0; c < C; ++c) {
        const CoreLinkOverride* o = find_override(cfg_, p, s, c);
        if (o != nullptr && o->rate_factor == 0.0) continue;
        LinkConfig core_cfg = fab;
        core_cfg.rate_bps =
            cfg_.core_link_bps * (o != nullptr ? o->rate_factor : 1.0);
        SpineSwitch* spine = spines_[static_cast<std::size_t>(p * Sp + s)].get();
        char cu_name[48];
        std::snprintf(cu_name, sizeof cu_name, "core-up:p%ds%dc%d", p, s, c);
        char cd_name[48];
        std::snprintf(cd_name, sizeof cd_name, "core-down:p%ds%dc%d", p, s, c);
        auto up = std::make_unique<Link>(sched_, cu_name, core_cfg);
        up->connect_to(cores_[static_cast<std::size_t>(c)].get(), p * Sp + s);
        spine->add_core_uplink(up.get());
        up_to_core_[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)]
                   [static_cast<std::size_t>(c)] = up.get();
        fabric_links_.push_back(up.get());
        auto down = std::make_unique<Link>(sched_, cd_name, core_cfg);
        down->connect_to(spine, 2000 + c);
        cores_[static_cast<std::size_t>(c)]->add_pod_link(p, down.get());
        down_from_core_[static_cast<std::size_t>(c)][static_cast<std::size_t>(p)]
                       [static_cast<std::size_t>(s)] = down.get();
        fabric_links_.push_back(down.get());
        links_.push_back(std::move(up));
        links_.push_back(std::move(down));
      }
    }
  }

  // Leaf reachability: an uplink (to pod spine s) reaches
  //  * a local leaf iff that spine has a downlink to it (always true here),
  //  * a remote leaf iff the spine has >= 1 core uplink and some core has a
  //    link into the destination pod.
  for (int l = 0; l < L; ++l) {
    LeafSwitch& lf = *leaves_[static_cast<std::size_t>(l)];
    const int p = leaf_to_pod_[static_cast<std::size_t>(l)];
    std::vector<std::vector<bool>> reaches(
        lf.uplinks().size(),
        std::vector<bool>(static_cast<std::size_t>(L), false));
    for (std::size_t u = 0; u < lf.uplinks().size(); ++u) {
      const int s = static_cast<int>(u);  // uplink u -> pod spine u
      for (int d = 0; d < L; ++d) {
        const int dp = leaf_to_pod_[static_cast<std::size_t>(d)];
        if (dp == p) {
          reaches[u][static_cast<std::size_t>(d)] = true;
          continue;
        }
        bool ok = false;
        for (int c = 0; c < C && !ok; ++c) {
          if (up_to_core_[static_cast<std::size_t>(p)]
                         [static_cast<std::size_t>(s)]
                         [static_cast<std::size_t>(c)] == nullptr) {
            continue;
          }
          for (int ds = 0; ds < Sp; ++ds) {
            if (down_from_core_[static_cast<std::size_t>(c)]
                               [static_cast<std::size_t>(dp)]
                               [static_cast<std::size_t>(ds)] != nullptr) {
              ok = true;
              break;
            }
          }
        }
        reaches[u][static_cast<std::size_t>(d)] = ok;
      }
    }
    lf.set_uplink_reachability(std::move(reaches));
  }
}

void PodFabric::install_lb(const Fabric::LbFactory& factory) {
  // Synthesize the 2-tier view the factories read (global leaf count etc.).
  TopologyConfig flat;
  flat.num_leaves = cfg_.num_leaves();
  flat.num_spines = cfg_.spines_per_pod;
  flat.hosts_per_leaf = cfg_.hosts_per_leaf;
  flat.host_link_bps = cfg_.host_link_bps;
  flat.fabric_link_bps = cfg_.fabric_link_bps;
  flat.dre = cfg_.dre;
  for (auto& leaf : leaves_) {
    leaf->set_load_balancer(factory(
        *leaf, flat,
        rng_.stream_seed((3ULL << 56) |
                         static_cast<std::uint64_t>(leaf->id()))));
  }
}

Link* PodFabric::spine_to_core(int pod, int spine, int core) {
  return up_to_core_[static_cast<std::size_t>(pod)]
                    [static_cast<std::size_t>(spine)]
                    [static_cast<std::size_t>(core)];
}

Link* PodFabric::core_to_spine(int core, int pod, int spine) {
  return down_from_core_[static_cast<std::size_t>(core)]
                        [static_cast<std::size_t>(pod)]
                        [static_cast<std::size_t>(spine)];
}

}  // namespace conga::net
