#include "net/fabric.hpp"

#include <cassert>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "telemetry/probes.hpp"
#include "telemetry/telemetry.hpp"

namespace conga::net {

namespace {
/// Finds the override for a (leaf, spine, parallel) triple, if any.
const LinkOverride* find_override(const TopologyConfig& cfg, int leaf,
                                  int spine, int parallel) {
  for (const LinkOverride& o : cfg.overrides) {
    if (o.leaf == leaf && o.spine == spine && o.parallel == parallel) return &o;
  }
  return nullptr;
}
}  // namespace

Fabric::Fabric(sim::Scheduler& sched, const TopologyConfig& cfg,
               std::uint64_t seed)
    : sched_(sched), cfg_(cfg), rng_(seed) {
  if (const std::string err = cfg_.validate(); !err.empty()) {
    throw std::invalid_argument("TopologyConfig: " + err);
  }
  build();
}

void Fabric::build() {
  const int L = cfg_.num_leaves;
  const int S = cfg_.num_spines;
  const int H = cfg_.hosts_per_leaf;
  const int P = cfg_.links_per_spine;

  directory_.resize(static_cast<std::size_t>(L) * H);
  for (int h = 0; h < L * H; ++h) {
    directory_[static_cast<std::size_t>(h)] = h / H;
  }

  // Per-component seeds are keyed streams (component class in the high byte,
  // index below), not sequential engine draws: adding or reordering
  // components never perturbs another component's stream.
  for (int l = 0; l < L; ++l) {
    leaves_.push_back(std::make_unique<LeafSwitch>(
        sched_, l, &directory_,
        rng_.stream_seed((1ULL << 56) | static_cast<std::uint64_t>(l))));
    if (cfg_.shared_buffer_bytes > 0) {
      leaf_pools_.push_back(std::make_unique<SharedBufferPool>(
          cfg_.shared_buffer_bytes, cfg_.shared_buffer_alpha));
    }
  }
  for (int s = 0; s < S; ++s) {
    spines_.push_back(std::make_unique<SpineSwitch>(
        s, L, rng_.stream_seed((2ULL << 56) | static_cast<std::uint64_t>(s))));
    if (cfg_.shared_buffer_bytes > 0) {
      spine_pools_.push_back(std::make_unique<SharedBufferPool>(
          cfg_.shared_buffer_bytes, cfg_.shared_buffer_alpha));
    }
  }
  auto leaf_pool = [&](int l) -> SharedBufferPool* {
    return leaf_pools_.empty() ? nullptr
                               : leaf_pools_[static_cast<std::size_t>(l)].get();
  };
  auto spine_pool = [&](int s) -> SharedBufferPool* {
    return spine_pools_.empty()
               ? nullptr
               : spine_pools_[static_cast<std::size_t>(s)].get();
  };

  // Hosts and access links.
  LinkConfig edge;
  edge.rate_bps = cfg_.host_link_bps;
  edge.propagation_delay = cfg_.host_link_delay;
  edge.queue_capacity_bytes = cfg_.edge_queue_bytes;
  edge.ecn_threshold_bytes = cfg_.ecn_threshold_bytes;
  edge.marks_ce = false;
  edge.dre = cfg_.dre;
  for (int h = 0; h < L * H; ++h) {
    const LeafId l = directory_[static_cast<std::size_t>(h)];
    auto host = std::make_unique<Host>(h, l);

    LinkConfig nic = edge;
    nic.queue_capacity_bytes = cfg_.nic_queue_bytes;
    nic.ecn_threshold_bytes = 0;  // hosts don't CE-mark their own qdisc
    char up_name[48];
    std::snprintf(up_name, sizeof up_name, "host%d->leaf%d", h, l);
    auto up = std::make_unique<Link>(sched_, up_name, nic);
    up->connect_to(leaves_[static_cast<std::size_t>(l)].get(), h);
    host->attach_uplink(up.get());
    host_up_.push_back(up.get());

    LinkConfig down_cfg = edge;
    down_cfg.shared_pool = leaf_pool(l);  // a leaf egress port
    char down_name[48];
    std::snprintf(down_name, sizeof down_name, "leaf%d->host%d", l, h);
    auto down = std::make_unique<Link>(sched_, down_name, down_cfg);
    down->connect_to(host.get(), 0);
    leaves_[static_cast<std::size_t>(l)]->add_host_port(h, down.get());
    host_down_.push_back(down.get());

    hosts_.push_back(std::move(host));
    links_.push_back(std::move(up));
    links_.push_back(std::move(down));
  }

  // Fabric links: for each (leaf, spine, parallel) pair, one link each way.
  down_live_.assign(static_cast<std::size_t>(S) * static_cast<std::size_t>(L) *
                        static_cast<std::size_t>(P),
                    0);
  fault_epoch_.assign(down_live_.size(), 0);
  down_links_.assign(static_cast<std::size_t>(S),
                     std::vector<std::vector<Link*>>(
                         static_cast<std::size_t>(L),
                         std::vector<Link*>(static_cast<std::size_t>(P),
                                            nullptr)));
  up_links_.assign(static_cast<std::size_t>(L),
                   std::vector<std::vector<Link*>>(
                       static_cast<std::size_t>(S),
                       std::vector<Link*>(static_cast<std::size_t>(P),
                                          nullptr)));
  for (int l = 0; l < L; ++l) {
    for (int s = 0; s < S; ++s) {
      for (int p = 0; p < P; ++p) {
        const LinkOverride* o = find_override(cfg_, l, s, p);
        if (o != nullptr && o->rate_factor == 0.0) continue;  // failed

        LinkConfig fab;
        fab.rate_bps = cfg_.fabric_link_bps *
                       (o != nullptr ? o->rate_factor : 1.0);
        fab.propagation_delay = cfg_.fabric_link_delay;
        fab.queue_capacity_bytes = cfg_.fabric_queue_bytes;
        fab.ecn_threshold_bytes = cfg_.ecn_threshold_bytes;
        fab.marks_ce = true;
        fab.ce_sum = cfg_.ce_sum;
        fab.dre = cfg_.dre;

        char up_name[48];
        std::snprintf(up_name, sizeof up_name, "up:l%ds%dp%d", l, s, p);
        char down_name[48];
        std::snprintf(down_name, sizeof down_name, "down:l%ds%dp%d", l, s, p);
        LinkConfig up_cfg = fab;
        up_cfg.shared_pool = leaf_pool(l);  // leaf egress toward the spine
        auto up = std::make_unique<Link>(sched_, up_name, up_cfg);
        up->connect_to(spines_[static_cast<std::size_t>(s)].get(), l);
        leaves_[static_cast<std::size_t>(l)]->add_uplink(up.get(), s);
        up_links_[static_cast<std::size_t>(l)][static_cast<std::size_t>(s)]
                 [static_cast<std::size_t>(p)] = up.get();
        fabric_links_.push_back(up.get());

        fab.shared_pool = spine_pool(s);  // spine egress toward the leaf
        auto down = std::make_unique<Link>(sched_, down_name, fab);
        down->connect_to(leaves_[static_cast<std::size_t>(l)].get(),
                         1000 + s * P + p);
        spines_[static_cast<std::size_t>(s)]->add_downlink(l, down.get());
        down_links_[static_cast<std::size_t>(s)][static_cast<std::size_t>(l)]
                   [static_cast<std::size_t>(p)] = down.get();
        down_live_[live_index(s, l, p)] = 1;
        fabric_links_.push_back(down.get());

        links_.push_back(std::move(up));
        links_.push_back(std::move(down));
      }
    }
  }

  recompute_reachability();
}

void Fabric::recompute_reachability() {
  // Routing reachability: an uplink to spine s is a valid next hop for
  // destination leaf d iff s currently has at least one live downlink to d.
  // down_live_ caches control-plane liveness per (spine, leaf, parallel),
  // maintained by the fail/restore detection handlers, so this is a flat
  // flag read rather than a scan over the failed-link list.
  const int L = cfg_.num_leaves;
  const int P = cfg_.links_per_spine;
  for (int l = 0; l < L; ++l) {
    LeafSwitch& lf = *leaves_[static_cast<std::size_t>(l)];
    std::vector<std::vector<bool>> reaches(
        lf.uplinks().size(),
        std::vector<bool>(static_cast<std::size_t>(L), false));
    for (std::size_t u = 0; u < lf.uplinks().size(); ++u) {
      const int s = lf.uplinks()[u].spine;
      for (int d = 0; d < L; ++d) {
        for (int p = 0; p < P; ++p) {
          if (down_live_[live_index(s, d, p)] != 0) {
            reaches[u][static_cast<std::size_t>(d)] = true;
            break;
          }
        }
      }
    }
    lf.set_uplink_reachability(std::move(reaches));
  }
}

int Fabric::uplink_index(int leaf, Link* link) const {
  const auto& ups = leaves_[static_cast<std::size_t>(leaf)]->uplinks();
  for (std::size_t i = 0; i < ups.size(); ++i) {
    if (ups[i].link == link) return static_cast<int>(i);
  }
  return -1;
}

Link* Fabric::up_link(int leaf, int spine, int parallel) {
  return up_links_[static_cast<std::size_t>(leaf)]
                  [static_cast<std::size_t>(spine)]
                  [static_cast<std::size_t>(parallel)];
}

void Fabric::fail_fabric_link(int leaf, int spine, int parallel,
                              sim::TimeNs detection_delay) {
  Link* up = up_link(leaf, spine, parallel);
  Link* down = down_link(spine, leaf, parallel);
  assert(up != nullptr && down != nullptr && "link absent at build time");
  // Dataplane dies immediately...
  up->set_up(false);
  down->set_up(false);
  // ...the control plane notices after the detection window. Only the most
  // recent fail/restore call for this triple gets to apply: a flap faster
  // than the detection window supersedes the earlier handler.
  const std::uint64_t epoch = ++fault_epoch_[live_index(spine, leaf, parallel)];
  sched_.schedule_after(detection_delay, [this, leaf, spine, parallel, up,
                                          down, epoch] {
    const std::size_t idx = live_index(spine, leaf, parallel);
    if (fault_epoch_[idx] != epoch) return;  // superseded by a later call
    if (down_live_[idx] == 0) return;        // already withdrawn
    down_live_[idx] = 0;
    leaves_[static_cast<std::size_t>(leaf)]->set_uplink_live(
        uplink_index(leaf, up), false);
    spines_[static_cast<std::size_t>(spine)]->remove_downlink(leaf, down);
    recompute_reachability();
    if (tele_ != nullptr) {
      const sim::TimeNs now = sched_.now();
      telemetry::emit(tele_, telemetry::EventType::kLinkWithdrawn,
                      tele_->intern_component(up->name()), now,
                      static_cast<std::uint64_t>(spine),
                      static_cast<std::uint64_t>(leaf));
      telemetry::emit(tele_, telemetry::EventType::kLinkWithdrawn,
                      tele_->intern_component(down->name()), now,
                      static_cast<std::uint64_t>(spine),
                      static_cast<std::uint64_t>(leaf));
    }
  });
}

void Fabric::restore_fabric_link(int leaf, int spine, int parallel,
                                 sim::TimeNs detection_delay) {
  Link* up = up_link(leaf, spine, parallel);
  Link* down = down_link(spine, leaf, parallel);
  assert(up != nullptr && down != nullptr);
  up->set_up(true);
  down->set_up(true);
  const std::uint64_t epoch = ++fault_epoch_[live_index(spine, leaf, parallel)];
  sched_.schedule_after(detection_delay, [this, leaf, spine, parallel, up,
                                          down, epoch] {
    const std::size_t idx = live_index(spine, leaf, parallel);
    if (fault_epoch_[idx] != epoch) return;  // superseded by a later call
    if (down_live_[idx] != 0) return;        // already live (fail was
                                             // superseded before applying)
    down_live_[idx] = 1;
    leaves_[static_cast<std::size_t>(leaf)]->set_uplink_live(
        uplink_index(leaf, up), true);
    spines_[static_cast<std::size_t>(spine)]->add_downlink(leaf, down);
    recompute_reachability();
    if (tele_ != nullptr) {
      const sim::TimeNs now = sched_.now();
      telemetry::emit(tele_, telemetry::EventType::kLinkRestored,
                      tele_->intern_component(up->name()), now,
                      static_cast<std::uint64_t>(spine),
                      static_cast<std::uint64_t>(leaf));
      telemetry::emit(tele_, telemetry::EventType::kLinkRestored,
                      tele_->intern_component(down->name()), now,
                      static_cast<std::uint64_t>(spine),
                      static_cast<std::uint64_t>(leaf));
    }
  });
}

void Fabric::install_lb(const LbFactory& factory) {
  for (auto& leaf : leaves_) {
    leaf->set_load_balancer(factory(
        *leaf, cfg_,
        rng_.stream_seed((3ULL << 56) |
                         static_cast<std::uint64_t>(leaf->id()))));
    if (tele_ != nullptr) leaf->load_balancer()->attach_telemetry(tele_);
  }
}

void Fabric::set_spine_drill(bool enabled) {
  for (auto& spine : spines_) {
    if (enabled) {
      // Class 6 in the keyed-stream namespace (1 leaves, 2 spines, 3 LBs,
      // 4 flap, 5 gray). stream_seed() is a pure derivation, so flipping the
      // mode never advances rng_ and cannot perturb other streams.
      spine->enable_drill(rng_.stream_seed(
          (6ULL << 56) | static_cast<std::uint64_t>(spine->id())));
    } else {
      spine->disable_drill();
    }
  }
}

void Fabric::attach_telemetry(telemetry::TraceSink* sink) {
  tele_ = sink;
  // TCP senders and other Scheduler& holders reach the sink ambiently.
  sched_.set_telemetry(sink);
  for (auto& link : links_) link->attach_telemetry(sink);
  for (auto& leaf : leaves_) {
    if (leaf->load_balancer() != nullptr) {
      leaf->load_balancer()->attach_telemetry(sink);
    }
  }
  if (sink == nullptr) return;
  // Build-time degradations are part of the fabric's history too: record
  // them once at attach so a trace is self-describing.
  for (const LinkOverride& o : cfg_.overrides) {
    if (o.rate_factor <= 0.0 || o.rate_factor >= 1.0) continue;
    Link* up = up_link(o.leaf, o.spine, o.parallel);
    if (up == nullptr) continue;
    telemetry::emit(sink, telemetry::EventType::kLinkDegraded,
                    sink->intern_component(up->name()), sched_.now(),
                    static_cast<std::uint64_t>(o.rate_factor * 1000.0));
  }
  register_probes();
}

void Fabric::register_probes() {
  telemetry::ProbeRegistry& reg = tele_->probes();
  for (Link* link : fabric_links_) {
    reg.add_gauge(link->name() + "/queue_bytes", [link] {
      return static_cast<double>(link->queue().bytes());
    });
    reg.add_counter(link->name() + "/tx_bytes",
                    [link] { return link->bytes_sent(); });
  }
  for (auto& leaf_ptr : leaves_) {
    LeafSwitch* leaf = leaf_ptr.get();
    reg.add_counter(leaf->name() + "/pkts_to_fabric",
                    [leaf] { return leaf->packets_to_fabric(); });
    reg.add_counter(leaf->name() + "/pkts_from_fabric",
                    [leaf] { return leaf->packets_from_fabric(); });
    // Delivered host bytes per leaf: the hand-rolled per-host accumulation
    // loops the benches used to carry, as one probe.
    std::vector<Host*> members;
    for (auto& host : hosts_) {
      if (host->leaf() == leaf->id()) members.push_back(host.get());
    }
    reg.add_counter(leaf->name() + "/rx_host_bytes", [members] {
      std::uint64_t total = 0;
      for (const Host* h : members) total += h->bytes_received();
      return total;
    });
  }
  // Fabric-wide drop accounting, split by cause. Queue overflow is counted
  // by the queues; the other causes by the links' fault hooks.
  const std::vector<Link*>* fab = &fabric_links_;
  reg.add_counter("fabric/drops_queue", [fab] {
    std::uint64_t n = 0;
    for (const Link* l : *fab) n += l->queue().stats().dropped_pkts;
    return n;
  });
  reg.add_counter("fabric/drops_admin_down", [fab] {
    std::uint64_t n = 0;
    for (const Link* l : *fab) n += l->drop_stats().admin_down_pkts;
    return n;
  });
  reg.add_counter("fabric/drops_gray", [fab] {
    std::uint64_t n = 0;
    for (const Link* l : *fab) n += l->drop_stats().gray_pkts;
    return n;
  });
  reg.add_counter("fabric/drops_corrupt", [fab] {
    std::uint64_t n = 0;
    for (const Link* l : *fab) n += l->drop_stats().corrupt_pkts;
    return n;
  });
  // No-route drops at the switches (all candidate ports withdrawn): the one
  // drop cause that lives above the links.
  reg.add_counter("fabric/drops_no_route", [this] {
    std::uint64_t n = 0;
    for (const auto& l : leaves_) n += l->dropped_no_route();
    for (const auto& s : spines_) n += s->dropped_no_route();
    return n;
  });
  sim::Scheduler* sched = &sched_;
  reg.add_counter("sched/events_dispatched",
                  [sched] { return sched->events_dispatched(); });
  reg.add_gauge("sched/pending",
                [sched] { return static_cast<double>(sched->pending()); });
}

Link* Fabric::down_link(int spine, int leaf, int parallel) {
  return down_links_[static_cast<std::size_t>(spine)]
                    [static_cast<std::size_t>(leaf)]
                    [static_cast<std::size_t>(parallel)];
}

sim::TimeNs Fabric::one_way_latency(std::uint32_t bytes) const {
  // host->leaf, leaf->spine, spine->leaf, leaf->host.
  auto ser = [](double rate_bps, std::uint32_t b) {
    return static_cast<sim::TimeNs>(static_cast<double>(b) * 8.0 / rate_bps *
                                    1e9);
  };
  return ser(cfg_.host_link_bps, bytes) + cfg_.host_link_delay +
         2 * (ser(cfg_.fabric_link_bps, bytes + kOverlayHeaderBytes) +
              cfg_.fabric_link_delay) +
         ser(cfg_.host_link_bps, bytes) + cfg_.host_link_delay;
}

sim::TimeNs Fabric::base_rtt(std::uint32_t bytes) const {
  // Data one way, a pure ACK back.
  return one_way_latency(bytes) + one_way_latency(kAckBytes);
}

}  // namespace conga::net
