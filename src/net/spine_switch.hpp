// Spine switch.
//
// Stateless per-flow: forwards on the outer (overlay) destination leaf. When
// several parallel links lead to the destination leaf it picks one by ECMP
// hash of the wire 5-tuple (paper §3.3 footnote: "the spine switches pick one
// using standard ECMP hashing"). Its links' DREs mark CE as packets traverse
// them — the spine's entire role in CONGA.
//
// In a 3-tier pod fabric (§7 "Larger topologies") the spine additionally
// holds core uplinks: destinations outside its pod are forwarded to the core
// tier by ECMP. CONGA still operates leaf-to-leaf end to end — the CE field
// keeps accumulating across the extra hops.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/random.hpp"

namespace conga::net {

class SpineSwitch : public Node {
 public:
  SpineSwitch(int id, int num_leaves, std::uint64_t hash_seed)
      : id_(id), ports_to_leaf_(static_cast<std::size_t>(num_leaves)),
        hash_seed_(hash_seed) {}

  /// Registers a spine -> leaf link (possibly one of several in parallel).
  void add_downlink(LeafId leaf, Link* link) {
    ports_to_leaf_[static_cast<std::size_t>(leaf)].push_back(link);
  }

  /// Removes a failed downlink from the forwarding table.
  void remove_downlink(LeafId leaf, Link* link);

  /// Downlinks currently in the forwarding table for `leaf` (re-entrancy
  /// tests assert fail/restore sequences never double-remove or
  /// duplicate-add a port).
  std::size_t downlink_count(LeafId leaf) const {
    return ports_to_leaf_[static_cast<std::size_t>(leaf)].size();
  }

  /// 3-tier wiring: declares pod membership (per global leaf id) and this
  /// spine's own pod. Destinations in other pods route via core uplinks.
  void set_pod_membership(std::vector<int> leaf_to_pod, int my_pod) {
    leaf_to_pod_ = std::move(leaf_to_pod);
    my_pod_ = my_pod;
  }
  void add_core_uplink(Link* link) { core_uplinks_.push_back(link); }

  /// DRILL forwarding mode (src/lb_ext/drill_lb.hpp is the leaf half): when
  /// several parallel links lead to the destination leaf, pick by
  /// power-of-two-choices over live egress queue depths with per-destination
  /// memory of the last winner, instead of ECMP hashing. The Rng is
  /// allocated only when enabled, so ECMP fabrics carry no extra state or
  /// draws (pay-for-what-you-use). Core uplinks of 3-tier pods keep ECMP.
  void enable_drill(std::uint64_t rng_seed) {
    drill_rng_ = std::make_unique<sim::Rng>(rng_seed);
    drill_best_.assign(ports_to_leaf_.size(), -1);
  }
  void disable_drill() {
    drill_rng_.reset();
    drill_best_.clear();
  }
  bool drill_enabled() const { return drill_rng_ != nullptr; }

  void receive(PacketPtr pkt, int in_port) override;
  std::string name() const override { return "spine" + std::to_string(id_); }

  int id() const { return id_; }
  std::uint64_t dropped_no_route() const { return dropped_no_route_; }

 private:
  /// Two-choices-plus-memory pick over the parallel links toward `leaf`.
  /// Ties prefer the remembered port, then the lowest index (the same pinned
  /// rule as the leaf-side DrillLb).
  std::size_t drill_pick(std::size_t leaf, const std::vector<Link*>& links);

  int id_;
  std::vector<std::vector<Link*>> ports_to_leaf_;
  std::uint64_t hash_seed_;
  std::uint64_t dropped_no_route_ = 0;
  std::vector<int> leaf_to_pod_;  ///< empty in plain 2-tier fabrics
  int my_pod_ = -1;
  std::vector<Link*> core_uplinks_;
  std::unique_ptr<sim::Rng> drill_rng_;  ///< null == ECMP forwarding
  std::vector<int> drill_best_;          ///< per-leaf last winner (DRILL)
};

/// Core-tier switch of a 3-tier pod fabric: routes on the destination leaf's
/// pod, ECMP over its links into that pod's spines. Stateless, like the
/// spine; its links' DREs keep marking CE.
class CoreSwitch : public Node {
 public:
  /// `leaf_to_pod` maps global leaf ids to pods.
  CoreSwitch(int id, std::vector<int> leaf_to_pod, int num_pods,
             std::uint64_t hash_seed)
      : id_(id),
        leaf_to_pod_(std::move(leaf_to_pod)),
        ports_to_pod_(static_cast<std::size_t>(num_pods)),
        hash_seed_(hash_seed) {}

  void add_pod_link(int pod, Link* link) {
    ports_to_pod_[static_cast<std::size_t>(pod)].push_back(link);
  }

  void receive(PacketPtr pkt, int in_port) override;
  std::string name() const override { return "core" + std::to_string(id_); }

  std::uint64_t dropped_no_route() const { return dropped_no_route_; }

 private:
  int id_;
  std::vector<int> leaf_to_pod_;
  std::vector<std::vector<Link*>> ports_to_pod_;
  std::uint64_t hash_seed_;
  std::uint64_t dropped_no_route_ = 0;
};

}  // namespace conga::net
