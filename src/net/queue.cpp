#include "net/queue.hpp"

#include <algorithm>

#include "debug/invariants.hpp"
#include "telemetry/telemetry.hpp"

namespace conga::net {

void DropTailQueue::account(sim::TimeNs now) {
  byte_time_integral_ +=
      static_cast<double>(bytes_) * static_cast<double>(now - last_change_);
  last_change_ = now;
}

bool DropTailQueue::enqueue(PacketPtr pkt, sim::TimeNs now) {
  bool admit = bytes_ + pkt->size_bytes <= capacity_bytes_;
  if (admit && pool_ != nullptr) {
    admit = bytes_ + pkt->size_bytes <= pool_->dynamic_limit();
  }
  if (!admit) {
    ++stats_.dropped_pkts;
    stats_.dropped_bytes += pkt->size_bytes;
    telemetry::emit(tele_, telemetry::EventType::kQueueDrop, tele_comp_, now,
                    pkt->size_bytes, bytes_);
    return false;  // pkt freed here
  }
  if (pool_ != nullptr) pool_->reserve(pkt->size_bytes);
  account(now);
  if (ecn_threshold_bytes_ > 0 && bytes_ > ecn_threshold_bytes_) {
    pkt->ecn_ce = true;
    ++stats_.ecn_marked_pkts;
    telemetry::emit(tele_, telemetry::EventType::kQueueEcnMark, tele_comp_,
                    now, pkt->size_bytes, bytes_);
  }
  bytes_ += pkt->size_bytes;
  ++stats_.enqueued_pkts;
  stats_.enqueued_bytes += pkt->size_bytes;
  stats_.max_bytes_seen = std::max(stats_.max_bytes_seen, bytes_);
  pkt->enqueued_at = now;
  telemetry::emit(tele_, telemetry::EventType::kQueueEnqueue, tele_comp_, now,
                  pkt->size_bytes, bytes_);
  q_.push_back(std::move(pkt));
  CONGA_INVARIANT(check_queue_bounds(label_, now, bytes_, capacity_bytes_,
                                     q_.size()));
  CONGA_INVARIANT(check_byte_conservation(label_, now, stats_.enqueued_bytes,
                                          stats_.dequeued_bytes, bytes_));
  return true;
}

PacketPtr DropTailQueue::dequeue(sim::TimeNs now) {
  if (q_.empty()) return nullptr;
  account(now);
  PacketPtr pkt = std::move(q_.front());
  q_.pop_front();
  bytes_ -= pkt->size_bytes;
  ++stats_.dequeued_pkts;
  stats_.dequeued_bytes += pkt->size_bytes;
  if (pool_ != nullptr) pool_->release(pkt->size_bytes);
  telemetry::emit(tele_, telemetry::EventType::kQueueDequeue, tele_comp_, now,
                  pkt->size_bytes, bytes_);
  CONGA_INVARIANT(check_queue_bounds(label_, now, bytes_, capacity_bytes_,
                                     q_.size()));
  CONGA_INVARIANT(check_byte_conservation(label_, now, stats_.enqueued_bytes,
                                          stats_.dequeued_bytes, bytes_));
  return pkt;
}

double DropTailQueue::time_avg_bytes(sim::TimeNs now) const {
  if (now <= 0) return 0.0;
  const double integral =
      byte_time_integral_ +
      static_cast<double>(bytes_) * static_cast<double>(now - last_change_);
  return integral / static_cast<double>(now);
}

}  // namespace conga::net
