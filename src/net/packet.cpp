#include "net/packet.hpp"

#include <atomic>

namespace conga::net {

PacketPtr make_packet() {
  static std::atomic<std::uint64_t> next_id{1};
  auto p = std::make_unique<Packet>();
  p->id = next_id.fetch_add(1, std::memory_order_relaxed);
  return p;
}

}  // namespace conga::net
