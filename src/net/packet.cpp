#include "net/packet.hpp"

#include <atomic>
#include <vector>

namespace conga::net {

namespace {

// Thread-local free-list pool. Chunked growth keeps the packets themselves
// stable in memory (chunks are never shrunk while the thread lives); the
// free list is a simple LIFO vector, so a release/acquire pair in the steady
// state touches only the hot end of one cache line. Thread-local (rather
// than a locked global) makes the pool safe under the parallel experiment
// runner for free: every worker owns a full simulation, so packets are
// acquired and released on the same thread.
class PacketPool {
 public:
  Packet* acquire() {
    ++stats_.acquired;
    if (free_.empty()) grow();
    Packet* p = free_.back();
    free_.pop_back();
    return p;
  }

  void release(Packet* p) noexcept {
    ++stats_.released;
    free_.push_back(p);
  }

  PacketPoolStats stats() const {
    PacketPoolStats s = stats_;
    s.free_size = free_.size();
    return s;
  }

 private:
  static constexpr std::size_t kChunkPackets = 256;

  void grow() {
    ++stats_.chunk_allocs;
    chunks_.push_back(std::make_unique<Packet[]>(kChunkPackets));
    Packet* base = chunks_.back().get();
    free_.reserve(free_.size() + kChunkPackets);
    for (std::size_t i = 0; i < kChunkPackets; ++i) free_.push_back(base + i);
  }

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  std::vector<Packet*> free_;
  PacketPoolStats stats_;
};

PacketPool& thread_pool() {
  thread_local PacketPool pool;
  return pool;
}

}  // namespace

void PacketDeleter::operator()(Packet* p) const noexcept {
  thread_pool().release(p);
}

PacketPtr make_packet() {
  static std::atomic<std::uint64_t> next_id{1};
  Packet* p = thread_pool().acquire();
  *p = Packet{};  // trivially-copyable reset; replaces the old value-init
  p->id = next_id.fetch_add(1, std::memory_order_relaxed);
  return PacketPtr(p);
}

PacketPoolStats packet_pool_stats() { return thread_pool().stats(); }

}  // namespace conga::net
