#include "net/packet.hpp"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

namespace conga::net {

namespace {

// Thread-local free-list pool. Chunked growth keeps the packets themselves
// stable in memory (chunks are never shrunk while the thread lives); the
// free list is a simple LIFO vector, so a release/acquire pair in the steady
// state touches only the hot end of one cache line. Thread-local (rather
// than a locked global) makes the pool safe under the parallel experiment
// runner for free: every worker owns a full simulation, so packets are
// acquired and released on the same thread. The ThreadChecker states that
// confinement as a checkable capability for -Wthread-safety; because the
// pool is thread_local, the sharper runtime hazard is a packet *released on
// the wrong thread* — it lands in the releasing thread's pool while its
// chunk belongs to (and dies with) the allocating thread. Invariant builds
// verify chunk ownership on every release and abort on the first crossing.
class PacketPool {
 public:
  Packet* acquire() {
    thread_.check();
    ++stats_.acquired;
    if (free_.empty()) grow();
    Packet* p = free_.back();
    free_.pop_back();
    return p;
  }

  void release(Packet* p) noexcept {
    thread_.check();
#ifdef CONGA_CHECK_INVARIANTS
    if (!owns(p)) {
      std::fprintf(stderr,
                   "PacketPool: packet %p released on a thread that did not "
                   "allocate it (cross-thread PacketPtr escape)\n",
                   static_cast<void*>(p));
      std::abort();
    }
#endif
    ++stats_.released;
    free_.push_back(p);
  }

  PacketPoolStats stats() const {
    thread_.check();
    PacketPoolStats s = stats_;
    s.free_size = free_.size();
    return s;
  }

 private:
  static constexpr std::size_t kChunkPackets = 256;

#ifdef CONGA_CHECK_INVARIANTS
  bool owns(const Packet* p) const CONGA_REQUIRES(thread_) {
    const auto addr = reinterpret_cast<std::uintptr_t>(p);
    for (const auto& chunk : chunks_) {
      const auto base = reinterpret_cast<std::uintptr_t>(chunk.get());
      if (addr >= base && addr < base + kChunkPackets * sizeof(Packet)) {
        return true;
      }
    }
    return false;
  }
#endif

  void grow() CONGA_REQUIRES(thread_) {
    ++stats_.chunk_allocs;
    chunks_.push_back(std::make_unique<Packet[]>(kChunkPackets));
    Packet* base = chunks_.back().get();
    free_.reserve(free_.size() + kChunkPackets);
    for (std::size_t i = 0; i < kChunkPackets; ++i) free_.push_back(base + i);
  }

  core::ThreadChecker thread_;
  std::vector<std::unique_ptr<Packet[]>> chunks_ CONGA_GUARDED_BY(thread_);
  std::vector<Packet*> free_ CONGA_GUARDED_BY(thread_);
  PacketPoolStats stats_ CONGA_GUARDED_BY(thread_);
};

PacketPool& thread_pool() {
  thread_local PacketPool pool;
  return pool;
}

}  // namespace

void PacketDeleter::operator()(Packet* p) const noexcept {
  thread_pool().release(p);
}

PacketPtr make_packet() {
  static std::atomic<std::uint64_t> next_id{1};
  Packet* p = thread_pool().acquire();
  *p = Packet{};  // trivially-copyable reset; replaces the old value-init
  p->id = next_id.fetch_add(1, std::memory_order_relaxed);
  return PacketPtr(p);
}

PacketPoolStats packet_pool_stats() { return thread_pool().stats(); }

}  // namespace conga::net
