// Flow identity: the inner 5-tuple and the fabric-wide id types.
//
// Split out of packet.hpp so the CONGA table layer (src/core/ — flowlet
// table, congestion tables) can key on flow identity without seeing the TCP
// or overlay header definitions; the layering checker
// (tools/analyze/layers.conf) places this header in the bottom `wire` layer
// together with packet.hpp.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/hash.hpp"

namespace conga::net {

using HostId = std::int32_t;
using LeafId = std::int32_t;

// mix64 historically lived in packet.hpp; it moved to sim/hash.hpp so lower
// layers (sim::Rng stream derivation) can share it. Re-exported for the many
// net-layer consumers.
using sim::mix64;

/// Inner 5-tuple, always stated in the *data* direction of a connection
/// (sender -> receiver); ACKs carry the same key with `is_ack` set. This
/// keeps endpoint demux trivial while still giving hash-based mechanisms
/// (ECMP, flowlet table) a stable per-connection identity.
struct FlowKey {
  HostId src_host = -1;
  HostId dst_host = -1;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;

  /// Stable 64-bit mix of the tuple (SplitMix64 over the packed fields), the
  /// base for ECMP and flowlet hashing. Per-switch seeds are XORed in by the
  /// consumers so different switches make independent choices.
  std::uint64_t hash() const {
    std::uint64_t x = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_host)) << 32) |
                      static_cast<std::uint32_t>(dst_host);
    x ^= (static_cast<std::uint64_t>(src_port) << 16 | dst_port) * 0x9e3779b97f4a7c15ULL;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }
};

/// Reverses a key (used when constructing the ACK direction's wire identity,
/// e.g. for CONGA, which sees the ACK stream as reverse-direction traffic).
inline FlowKey reversed(const FlowKey& k) {
  return FlowKey{k.dst_host, k.src_host, k.dst_port, k.src_port};
}

}  // namespace conga::net

template <>
struct std::hash<conga::net::FlowKey> {
  std::size_t operator()(const conga::net::FlowKey& k) const noexcept {
    return static_cast<std::size_t>(k.hash());
  }
};
