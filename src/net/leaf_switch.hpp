// Leaf (top-of-rack) switch.
//
// Holds the host-facing ports and the fabric uplinks, performs overlay
// encapsulation/decapsulation (the VXLAN-style tunnel of §2.5), and delegates
// the uplink choice to a pluggable LoadBalancer. All CONGA leaf state lives
// inside the CongaLb strategy (src/core/conga_lb.hpp); the switch itself is
// scheme-agnostic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lb/load_balancer.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace conga::net {

class LeafSwitch : public Node {
 public:
  struct Uplink {
    Link* link = nullptr;  ///< leaf -> spine link (owned by the Fabric)
    int spine = -1;        ///< spine this uplink attaches to
  };

  /// `directory` maps HostId -> LeafId for the whole fabric (the overlay
  /// mapping of endpoint to tunnel endpoint; assumed given, as in the paper).
  LeafSwitch(sim::Scheduler& sched, LeafId id,
             const std::vector<LeafId>* directory, std::uint64_t rng_seed);

  // --- wiring (called by the topology builder) ---
  void add_host_port(HostId host, Link* down_link);
  int add_uplink(Link* up_link, int spine);
  void set_load_balancer(std::unique_ptr<lb::LoadBalancer> lb);

  /// Routing state: which uplinks can reach which destination leaf (a spine
  /// with no surviving downlink to the destination is not a valid next hop —
  /// the fabric's routing protocol withdraws it). reaches[uplink][leaf].
  void set_uplink_reachability(std::vector<std::vector<bool>> reaches) {
    uplink_reaches_ = std::move(reaches);
  }

  /// Administrative liveness of one uplink (set false when the routing
  /// layer detects the link failed at runtime; true again on recovery).
  /// Indices are stable across failures so CONGA's tables stay consistent.
  void set_uplink_live(int uplink, bool live) {
    if (uplink_live_.empty()) {
      uplink_live_.assign(uplinks_.size(), true);
    }
    uplink_live_[static_cast<std::size_t>(uplink)] = live;
  }
  bool uplink_live(int uplink) const {
    return uplink_live_.empty() ||
           uplink_live_[static_cast<std::size_t>(uplink)];
  }

  /// True if `uplink` is a valid next hop toward `dst_leaf`. Load balancers
  /// must only pick among uplinks for which this holds. Defaults to true
  /// when no reachability table was installed (fully-connected fabrics).
  bool uplink_reaches(int uplink, LeafId dst_leaf) const {
    if (!uplink_live(uplink)) return false;
    if (uplink_reaches_.empty()) return true;
    return uplink_reaches_[static_cast<std::size_t>(uplink)]
                          [static_cast<std::size_t>(dst_leaf)];
  }

  // --- Node ---
  void receive(PacketPtr pkt, int in_port) override;
  std::string name() const override { return "leaf" + std::to_string(id_); }

  // --- accessors (used by load balancers and tests) ---
  LeafId id() const { return id_; }
  const std::vector<Uplink>& uplinks() const { return uplinks_; }
  sim::Scheduler& scheduler() { return sched_; }
  sim::Rng& rng() { return rng_; }
  lb::LoadBalancer* load_balancer() { return lb_.get(); }
  LeafId leaf_of(HostId h) const { return (*directory_)[static_cast<std::size_t>(h)]; }

  std::uint64_t packets_to_fabric() const { return packets_to_fabric_; }
  std::uint64_t packets_from_fabric() const { return packets_from_fabric_; }
  /// Packets dropped because no uplink could reach the destination leaf
  /// (every candidate withdrawn — a switch-reboot fault, not overload).
  std::uint64_t dropped_no_route() const { return dropped_no_route_; }

  /// Injects a probe-plane packet (pkt->probe.kind != 0) on `uplink` toward
  /// `dst_leaf`, encapsulating it like data traffic. The probe plane picks
  /// its own uplink, so the load balancer is bypassed entirely — its flowlet
  /// and queue state must not be perturbed by control traffic. The packet is
  /// charged to the chosen uplink's queue/DRE like any other, so probe
  /// overhead shows up as real bytes on links.
  void send_probe(PacketPtr pkt, int uplink, LeafId dst_leaf);

  /// Probe-plane packets injected by / terminated at this leaf. Counted
  /// separately from packets_to/from_fabric so data-plane accounting is
  /// unchanged when a probe-based policy runs.
  std::uint64_t probes_to_fabric() const { return probes_to_fabric_; }
  std::uint64_t probes_from_fabric() const { return probes_from_fabric_; }

 private:
  void forward_down(PacketPtr pkt);
  void send_to_fabric(PacketPtr pkt, LeafId dst_leaf);
  HostId wire_dst_host(const Packet& pkt) const {
    return pkt.tcp.is_ack ? pkt.flow.src_host : pkt.flow.dst_host;
  }

  sim::Scheduler& sched_;
  LeafId id_;
  const std::vector<LeafId>* directory_;
  sim::Rng rng_;
  std::unique_ptr<lb::LoadBalancer> lb_;
  std::vector<Uplink> uplinks_;
  std::vector<std::vector<bool>> uplink_reaches_;
  std::vector<bool> uplink_live_;  ///< empty == all live
  // host -> downlink; sparse map over global host ids
  std::vector<std::pair<HostId, Link*>> down_links_;
  std::uint64_t packets_to_fabric_ = 0;
  std::uint64_t packets_from_fabric_ = 0;
  std::uint64_t dropped_no_route_ = 0;
  std::uint64_t probes_to_fabric_ = 0;
  std::uint64_t probes_from_fabric_ = 0;
};

}  // namespace conga::net
