#include "net/leaf_switch.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "debug/invariants.hpp"

namespace conga::net {

LeafSwitch::LeafSwitch(sim::Scheduler& sched, LeafId id,
                       const std::vector<LeafId>* directory,
                       std::uint64_t rng_seed)
    : sched_(sched), id_(id), directory_(directory), rng_(rng_seed) {}

void LeafSwitch::add_host_port(HostId host, Link* down_link) {
  down_links_.emplace_back(host, down_link);
}

int LeafSwitch::add_uplink(Link* up_link, int spine) {
  uplinks_.push_back(Uplink{up_link, spine});
  return static_cast<int>(uplinks_.size()) - 1;
}

void LeafSwitch::set_load_balancer(std::unique_ptr<lb::LoadBalancer> lb) {
  lb_ = std::move(lb);
}

void LeafSwitch::forward_down(PacketPtr pkt) {
  const HostId dst = wire_dst_host(*pkt);
  const auto it =
      std::find_if(down_links_.begin(), down_links_.end(),
                   [dst](const auto& p) { return p.first == dst; });
  assert(it != down_links_.end() && "destination host not on this leaf");
  it->second->send(std::move(pkt));
}

void LeafSwitch::send_to_fabric(PacketPtr pkt, LeafId dst_leaf) {
  assert(lb_ != nullptr && "no load balancer installed");
  assert(!uplinks_.empty() && "leaf has no live uplinks");

  // Total partition toward dst_leaf (every uplink withdrawn — e.g. a
  // rebooting leaf, or the whole spine tier down): there is no route, so the
  // packet is dropped here. Load balancers are never invoked with an empty
  // candidate set.
  bool routable = false;
  for (std::size_t u = 0; u < uplinks_.size() && !routable; ++u) {
    routable = uplink_reaches(static_cast<int>(u), dst_leaf);
  }
  if (!routable) {
    ++dropped_no_route_;
    return;
  }

  pkt->overlay.valid = true;
  pkt->overlay.src_leaf = id_;
  pkt->overlay.dst_leaf = dst_leaf;
  pkt->overlay.ce = 0;
  pkt->overlay.fb_valid = false;
  pkt->size_bytes += kOverlayHeaderBytes;

  const sim::TimeNs now = sched_.now();
  int up = lb_->select_uplink(*pkt, dst_leaf, now);
  assert(up >= 0 && up < static_cast<int>(uplinks_.size()));
  CONGA_INVARIANT(check_condition(
      up >= 0 && up < static_cast<int>(uplinks_.size()) &&
          uplink_reaches(up, dst_leaf),
      name(), now, "leaf.uplink-validity",
      "load balancer picked an uplink that is out of range, down, or cannot "
      "reach the destination leaf"));
  pkt->overlay.lbtag = static_cast<std::uint8_t>(up);
  lb_->annotate(*pkt, up, now);

  ++packets_to_fabric_;
  uplinks_[static_cast<std::size_t>(up)].link->send(std::move(pkt));
}

void LeafSwitch::send_probe(PacketPtr pkt, int uplink, LeafId dst_leaf) {
  assert(pkt->probe.kind != 0 && "send_probe is for probe-plane packets");
  assert(uplink >= 0 && uplink < static_cast<int>(uplinks_.size()));
  pkt->overlay.valid = true;
  pkt->overlay.src_leaf = id_;
  pkt->overlay.dst_leaf = dst_leaf;
  pkt->overlay.ce = 0;
  pkt->overlay.fb_valid = false;
  pkt->overlay.lbtag = static_cast<std::uint8_t>(uplink);
  pkt->size_bytes += kOverlayHeaderBytes;
  ++probes_to_fabric_;
  uplinks_[static_cast<std::size_t>(uplink)].link->send(std::move(pkt));
}

void LeafSwitch::receive(PacketPtr pkt, int /*in_port*/) {
  if (pkt->overlay.valid && pkt->probe.kind != 0) {
    // Probe-plane packet: it terminates here — handed to the balancer's
    // probe hook, never decapsulated or forwarded to a host. A policy
    // without a probe plane simply lets it drop.
    assert(pkt->overlay.dst_leaf == id_);
    ++probes_from_fabric_;
    if (lb_) lb_->on_probe_packet(std::move(pkt), sched_.now());
    return;
  }

  if (pkt->overlay.valid) {
    // Arrived from the fabric: harvest CONGA state, decapsulate, deliver.
    assert(pkt->overlay.dst_leaf == id_);
    CONGA_INVARIANT(check_condition(
        pkt->overlay.dst_leaf == id_, name(), sched_.now(),
        "leaf.overlay-routing",
        "fabric delivered a packet whose outer destination is another leaf"));
    ++packets_from_fabric_;
    if (lb_) lb_->on_fabric_receive(*pkt, sched_.now());
    pkt->overlay = OverlayHeader{};
    pkt->size_bytes -= kOverlayHeaderBytes;
    forward_down(std::move(pkt));
    return;
  }

  // Arrived from a host.
  const HostId dst = wire_dst_host(*pkt);
  const LeafId dst_leaf = leaf_of(dst);
  if (dst_leaf == id_) {
    forward_down(std::move(pkt));
  } else {
    send_to_fabric(std::move(pkt), dst_leaf);
  }
}

}  // namespace conga::net
