// Topology description for 2-tier Leaf-Spine (Clos) fabrics.
//
// Covers every configuration the paper evaluates: the 64-server testbed
// (2 leaves x 32 hosts, 2 spines, 2x40G uplinks each — Fig 7a), its link-
// failure variant (Fig 7b), the large-scale simulations (up to 8 leaves / 12
// spines / 384 hosts, varying oversubscription — §5.5), and the 288-port
// multi-failure fabric of Fig 16 (6 leaves x 4 spines x 3 parallel 40G links).
//
// Asymmetry is expressed with LinkOverride entries: a rate factor of 0 fails
// the leaf<->spine link pair entirely (removed from forwarding tables, the
// usual outcome of link-down detection); other factors rescale its capacity
// (e.g. 0.5 models the degraded link-aggregation group of Fig 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dre.hpp"
#include "sim/time.hpp"

namespace conga::net {

struct LinkOverride {
  int leaf = 0;
  int spine = 0;
  int parallel = 0;          ///< which of the parallel links (0-based)
  double rate_factor = 0.0;  ///< 0 = failed; 0.5 = half capacity; etc.
};

struct TopologyConfig {
  int num_leaves = 2;
  int num_spines = 2;
  int hosts_per_leaf = 32;
  int links_per_spine = 1;  ///< parallel links between each leaf-spine pair

  double host_link_bps = 10e9;
  double fabric_link_bps = 40e9;
  sim::TimeNs host_link_delay = sim::microseconds(1);
  sim::TimeNs fabric_link_delay = sim::microseconds(1);

  /// Switch egress buffer toward a host (where Incast bursts land).
  std::uint64_t edge_queue_bytes = 512 * 1024;
  /// Fabric (leaf<->spine) port buffers.
  std::uint64_t fabric_queue_bytes = 2 * 1024 * 1024;
  /// Host NIC/qdisc queue (host -> leaf). Must exceed the TCP window cap so
  /// a sender never drops its own packets locally (Linux's qdisc + TSQ make
  /// the local path effectively lossless).
  std::uint64_t nic_queue_bytes = 16 * 1024 * 1024;

  core::DreConfig dre;  ///< DRE parameters used on every link

  /// CE path aggregation on fabric links: max (default, the paper) or
  /// clamped sum (§7 ablation).
  bool ce_sum = false;

  /// ECN marking threshold on every switch queue (DCTCP's K); 0 disables.
  /// Used with tcp::TcpConfig::dctcp for the CONGA+DCTCP extension.
  std::uint64_t ecn_threshold_bytes = 0;

  /// Dynamic shared buffering per switch (the testbed ASICs' model): when
  /// > 0, every egress port of a leaf/spine draws from one pool of this many
  /// bytes, admitted while the port stays below
  /// shared_buffer_alpha * (free pool). Port queues keep
  /// edge/fabric_queue_bytes as hard caps (set them large to let the pool
  /// govern). 0 = static per-port buffers only.
  std::uint64_t shared_buffer_bytes = 0;
  double shared_buffer_alpha = 2.0;

  std::vector<LinkOverride> overrides;

  int num_hosts() const { return num_leaves * hosts_per_leaf; }
  int uplinks_per_leaf() const { return num_spines * links_per_spine; }

  /// Total leaf->fabric capacity of one leaf with no overrides, in bits/s.
  double leaf_uplink_capacity_bps() const {
    return fabric_link_bps * uplinks_per_leaf();
  }

  /// Validates invariants (counts positive, overrides in range, LBTag fits in
  /// 4 bits); returns a description of the first problem, or empty if OK.
  std::string validate() const;
};

/// The paper's baseline testbed (Fig 7a): 2 leaves x 32 x 10G hosts,
/// 2 spines, 2 x 40G uplinks per leaf-spine pair (2:1 oversubscription).
TopologyConfig testbed_baseline();

/// Fig 7b: the baseline with one of the Leaf1-Spine1 links failed.
TopologyConfig testbed_link_failure();

}  // namespace conga::net
