#include "net/link.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace conga::net {

Link::Link(sim::Scheduler& sched, std::string name, const LinkConfig& cfg)
    : sched_(sched),
      name_(std::move(name)),
      cfg_(cfg),
      queue_(cfg.queue_capacity_bytes, cfg.ecn_threshold_bytes,
             cfg.shared_pool),
      dre_(cfg.dre, cfg.rate_bps) {
  queue_.set_label(name_);
  dre_.set_label(name_);
}

void Link::connect_to(Node* dst, int dst_port) {
  dst_ = dst;
  dst_port_ = dst_port;
}

void Link::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  telemetry::emit(tele_,
                  up ? telemetry::EventType::kLinkUp
                     : telemetry::EventType::kLinkDown,
                  tele_comp_, sched_.now(), up ? 1 : 0);
}

void Link::set_rate_scale(double scale) {
  if (scale == rate_scale_) return;
  rate_scale_ = scale;
  dre_.set_rate_scale(scale);
  telemetry::emit(tele_, telemetry::EventType::kLinkDegraded, tele_comp_,
                  sched_.now(),
                  static_cast<std::uint64_t>(std::llround(scale * 1000.0)));
}

void Link::set_gray_failure(double drop_prob, double corrupt_prob,
                            std::uint64_t seed) {
  gray_drop_prob_ = drop_prob;
  gray_corrupt_prob_ = corrupt_prob;
  gray_rng_ = sim::Rng(seed);
}

void Link::attach_telemetry(telemetry::TraceSink* sink) {
  tele_ = sink;
  tele_comp_ = sink != nullptr ? sink->intern_component(name_) : 0;
  queue_.set_telemetry(sink, tele_comp_);
  dre_.set_telemetry(sink, tele_comp_);
}

void Link::send(PacketPtr pkt) {
  assert(dst_ != nullptr && "link not connected");
  ++packets_offered_;
  bytes_offered_ += pkt->size_bytes;
  if (!up_) {  // black-hole on a failed link
    ++drop_stats_.admin_down_pkts;
    drop_stats_.admin_down_bytes += pkt->size_bytes;
    telemetry::emit(tele_, telemetry::EventType::kLinkDropAdminDown,
                    tele_comp_, sched_.now(), pkt->size_bytes);
    return;
  }
  if (gray_drop_prob_ > 0.0 && gray_rng_.chance(gray_drop_prob_)) {
    ++drop_stats_.gray_pkts;
    drop_stats_.gray_bytes += pkt->size_bytes;
    telemetry::emit(
        tele_, telemetry::EventType::kLinkDropGray, tele_comp_, sched_.now(),
        pkt->size_bytes,
        static_cast<std::uint64_t>(std::llround(gray_drop_prob_ * 1e6)));
    return;
  }
  if (gray_corrupt_prob_ > 0.0 && gray_rng_.chance(gray_corrupt_prob_)) {
    // Bit error on the wire: the packet still occupies the link (charges the
    // DRE, accumulates CE) but the far end discards it on receipt.
    pkt->corrupted = true;
  }
  if (!queue_.enqueue(std::move(pkt), sched_.now())) return;  // tail drop
  if (!busy_) start_transmission();
}

void Link::start_transmission() {
  PacketPtr pkt = queue_.dequeue(sched_.now());
  if (!pkt) return;
  busy_ = true;

  const sim::TimeNs now = sched_.now();
  dre_.add(pkt->size_bytes, now);
  if (cfg_.marks_ce && pkt->overlay.valid && !ce_suppressed_) {
    const std::uint8_t q = dre_.quantized(now);
    if (cfg_.ce_sum) {
      pkt->overlay.ce = static_cast<std::uint8_t>(
          std::min<int>(pkt->overlay.ce + q, dre_.max_metric()));
    } else {
      pkt->overlay.ce = std::max(pkt->overlay.ce, q);
    }
  }

  bytes_sent_ += pkt->size_bytes;
  ++packets_sent_;
  ++in_flight_pkts_;

  const sim::TimeNs ser = serialization_delay(pkt->size_bytes);
  // Wire free after serialization: start on the next queued packet.
  sched_.schedule_after(ser, [this] {
    busy_ = false;
    if (!queue_.empty()) start_transmission();
  });
  // Far end sees the packet after serialization + propagation.
  sched_.schedule_after(ser + cfg_.propagation_delay,
                        [this, p = std::move(pkt)]() mutable {
                          --in_flight_pkts_;
                          if (p->corrupted) {
                            ++drop_stats_.corrupt_pkts;
                            drop_stats_.corrupt_bytes += p->size_bytes;
                            telemetry::emit(
                                tele_,
                                telemetry::EventType::kLinkDropCorrupt,
                                tele_comp_, sched_.now(), p->size_bytes);
                            return;
                          }
                          ++packets_delivered_;
                          bytes_delivered_ += p->size_bytes;
                          dst_->receive(std::move(p), dst_port_);
                        });
}

}  // namespace conga::net
