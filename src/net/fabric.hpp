// Fabric: builds and owns a complete Leaf-Spine network instance.
//
// Construction wires hosts, leaves, spines and every (unidirectional) link
// per the TopologyConfig, applying failure/degradation overrides. Load
// balancers are installed afterwards via a factory, so one topology can be
// re-created identically for each scheme under comparison.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "lb/load_balancer.hpp"
#include "net/host.hpp"
#include "net/leaf_switch.hpp"
#include "net/link.hpp"
#include "net/spine_switch.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace conga::net {

class Fabric {
 public:
  /// A factory producing one LoadBalancer per leaf. The leaf is fully wired
  /// (all uplinks present) when invoked.
  using LbFactory = std::function<std::unique_ptr<lb::LoadBalancer>(
      LeafSwitch& leaf, const TopologyConfig& cfg, std::uint64_t seed)>;

  Fabric(sim::Scheduler& sched, const TopologyConfig& cfg,
         std::uint64_t seed = 1);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Installs a load balancer on every leaf.
  void install_lb(const LbFactory& factory);

  /// Switches every spine between ECMP (default) and DRILL forwarding for
  /// the spine -> leaf stage (power-of-two-choices over parallel downlink
  /// queue depths; see SpineSwitch::enable_drill). The policy registry
  /// (src/lb_ext/policies.hpp) flips this when installing "drill".
  void set_spine_drill(bool enabled);

  /// Routes the whole fabric's telemetry to `sink` (nullptr detaches):
  /// every link (queue + DRE included), every installed load balancer, and
  /// the scheduler's ambient pointer (which TCP senders read). Also
  /// registers the standard probe set: per-fabric-link queue_bytes gauges
  /// and tx_bytes counters, per-leaf packet counters, and per-leaf
  /// rx_host_bytes (sum of attached hosts' received bytes). Call after
  /// install_lb(); calling install_lb() later re-attaches the new balancers.
  void attach_telemetry(telemetry::TraceSink* sink);
  telemetry::TraceSink* telemetry() const { return tele_; }

  // --- accessors ---
  sim::Scheduler& scheduler() { return sched_; }
  const TopologyConfig& config() const { return cfg_; }

  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  Host& host(HostId h) { return *hosts_[static_cast<std::size_t>(h)]; }
  LeafSwitch& leaf(int l) { return *leaves_[static_cast<std::size_t>(l)]; }
  SpineSwitch& spine(int s) { return *spines_[static_cast<std::size_t>(s)]; }
  int num_leaves() const { return static_cast<int>(leaves_.size()); }
  int num_spines() const { return static_cast<int>(spines_.size()); }

  /// The leaf a host attaches to.
  LeafId leaf_of(HostId h) const { return directory_[static_cast<std::size_t>(h)]; }
  const std::vector<LeafId>& directory() const { return directory_; }

  /// The spine -> leaf link for (spine, leaf, parallel); nullptr if failed.
  Link* down_link(int spine, int leaf, int parallel);
  /// The leaf -> spine link for (leaf, spine, parallel); nullptr if it was
  /// removed at build time. The fault injector drives per-link hooks
  /// (rate scale, gray failure, CE suppression) through this.
  Link* up_link(int leaf, int spine, int parallel);
  /// The host's access links.
  Link* host_to_leaf(HostId h) { return host_up_[static_cast<std::size_t>(h)]; }
  Link* leaf_to_host(HostId h) { return host_down_[static_cast<std::size_t>(h)]; }

  /// All fabric (leaf<->spine) links that exist, for fleet-wide stats
  /// (Fig 16 reports queue lengths at every fabric port).
  const std::vector<Link*>& fabric_links() const { return fabric_links_; }

  /// Fails a live leaf<->spine link pair at runtime (packets blackhole
  /// immediately); after `detection_delay` the routing layer notices and
  /// withdraws the link from the leaf's and spine's forwarding state.
  /// Models the failure-detection window real fabrics have.
  ///
  /// Re-entrancy: fail/restore calls may overlap an earlier call's detection
  /// window (a flapping link). Each call bumps the triple's epoch and only
  /// the most recent call's detection handler applies — superseded handlers
  /// no-op, and a handler whose target state is already in place (e.g.
  /// fail→fail) does nothing, so forwarding state is never double-flipped.
  void fail_fabric_link(int leaf, int spine, int parallel,
                        sim::TimeNs detection_delay = 0);

  /// Restores a previously failed link pair (forwarding state is reinstated
  /// after `detection_delay`). Same last-call-wins epoch semantics as
  /// fail_fabric_link().
  void restore_fabric_link(int leaf, int spine, int parallel,
                           sim::TimeNs detection_delay = 0);

  /// One-way host-to-host latency across the spine for a single packet of
  /// `bytes` on an idle fabric (store-and-forward serialization at each of
  /// the 4 hops plus propagation).
  sim::TimeNs one_way_latency(std::uint32_t bytes) const;

  /// Base round-trip time host-to-host across the spine with empty queues
  /// (serialization of a `bytes` packet at each hop + propagation, plus the
  /// return of a `kAckBytes` ACK). Used for optimal-FCT normalization.
  sim::TimeNs base_rtt(std::uint32_t bytes) const;

 private:
  void build();
  /// Recomputes every leaf's per-destination reachability from the spines'
  /// current downlink state (runtime failures change it).
  void recompute_reachability();
  int uplink_index(int leaf, Link* link) const;
  /// Flat index into down_live_ for (spine, leaf, parallel).
  std::size_t live_index(int spine, int leaf, int parallel) const {
    return (static_cast<std::size_t>(spine) *
                static_cast<std::size_t>(cfg_.num_leaves) +
            static_cast<std::size_t>(leaf)) *
               static_cast<std::size_t>(cfg_.links_per_spine) +
           static_cast<std::size_t>(parallel);
  }
  /// Registers the standard probe set with the attached sink.
  void register_probes();

  sim::Scheduler& sched_;
  TopologyConfig cfg_;
  sim::Rng rng_;
  std::vector<LeafId> directory_;
  // Per-switch shared buffer pools (empty when static buffering is used).
  std::vector<std::unique_ptr<SharedBufferPool>> leaf_pools_;
  std::vector<std::unique_ptr<SharedBufferPool>> spine_pools_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<LeafSwitch>> leaves_;
  std::vector<std::unique_ptr<SpineSwitch>> spines_;
  std::vector<std::unique_ptr<Link>> links_;  // owns every link
  std::vector<Link*> host_up_;
  std::vector<Link*> host_down_;
  std::vector<Link*> fabric_links_;
  // [spine][leaf][parallel] -> link or nullptr
  std::vector<std::vector<std::vector<Link*>>> down_links_;
  // [leaf][spine][parallel] -> link or nullptr
  std::vector<std::vector<std::vector<Link*>>> up_links_;
  // Control-plane liveness of spine->leaf downlinks, flat-indexed by
  // live_index(): 1 iff the link exists and is not runtime-failed
  // (post-detection). Flipped by the fail/restore detection handlers, so
  // recompute_reachability() reads a flag instead of scanning a list of
  // failed triples for every (spine, leaf, parallel) combination.
  std::vector<std::uint8_t> down_live_;
  // Per-triple epoch counter, bumped by every fail/restore call. Detection
  // handlers capture the epoch of their call and no-op if a later call
  // superseded them, so overlapping fail/restore sequences (link flaps
  // faster than the detection window) resolve to the last call's state.
  std::vector<std::uint64_t> fault_epoch_;
  telemetry::TraceSink* tele_ = nullptr;
};

}  // namespace conga::net
