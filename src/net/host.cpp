#include "net/host.hpp"

#include <utility>

namespace conga::net {

void Host::receive(PacketPtr pkt, int /*in_port*/) {
  bytes_received_ += pkt->size_bytes;
  const auto it = endpoints_.find(pkt->flow);
  if (it != endpoints_.end()) {
    // Copy the handler before invoking: the callback may unregister this very
    // flow, which would otherwise destroy the std::function mid-call.
    Handler h = it->second;
    h(std::move(pkt));
    return;
  }
  if (default_handler_) {
    default_handler_(std::move(pkt));
    return;
  }
  // No endpoint and no default handler: drop silently (e.g. stray
  // retransmissions arriving after a flow finished and deregistered).
}

}  // namespace conga::net
