#include "net/topology.hpp"

namespace conga::net {

std::string TopologyConfig::validate() const {
  if (num_leaves < 1) return "num_leaves must be >= 1";
  if (num_spines < 1) return "num_spines must be >= 1";
  if (hosts_per_leaf < 1) return "hosts_per_leaf must be >= 1";
  if (links_per_spine < 1) return "links_per_spine must be >= 1";
  if (uplinks_per_leaf() > 16) {
    return "more than 16 uplinks per leaf: LBTag is a 4-bit field (paper "
           "§3.1: at most 12 uplinks in the reference configuration)";
  }
  if (host_link_bps <= 0 || fabric_link_bps <= 0) {
    return "link rates must be positive";
  }
  for (const LinkOverride& o : overrides) {
    if (o.leaf < 0 || o.leaf >= num_leaves) return "override: leaf out of range";
    if (o.spine < 0 || o.spine >= num_spines)
      return "override: spine out of range";
    if (o.parallel < 0 || o.parallel >= links_per_spine)
      return "override: parallel index out of range";
    if (o.rate_factor < 0) return "override: negative rate factor";
  }
  return {};
}

TopologyConfig testbed_baseline() {
  TopologyConfig cfg;
  cfg.num_leaves = 2;
  cfg.num_spines = 2;
  cfg.hosts_per_leaf = 32;
  cfg.links_per_spine = 2;  // 2 x 40G uplinks to each spine (Fig 7a)
  cfg.host_link_bps = 10e9;
  cfg.fabric_link_bps = 40e9;
  return cfg;
}

TopologyConfig testbed_link_failure() {
  TopologyConfig cfg = testbed_baseline();
  // One of the two Leaf1 <-> Spine1 links is down (Fig 7b).
  cfg.overrides.push_back(LinkOverride{/*leaf=*/1, /*spine=*/1,
                                       /*parallel=*/1, /*rate_factor=*/0.0});
  return cfg;
}

}  // namespace conga::net
