// Drop-tail byte-bounded FIFO queue with occupancy statistics.
//
// One queue sits at the egress of every link (the standard output-queued
// switch model). Statistics support the paper's queue-occupancy results:
// Fig 11(c) needs an occupancy CDF at a hotspot port, Fig 16 needs the
// time-averaged occupancy of every fabric port.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace conga::telemetry {
class TraceSink;
}  // namespace conga::telemetry

namespace conga::net {

struct QueueStats {
  std::uint64_t enqueued_pkts = 0;
  std::uint64_t enqueued_bytes = 0;
  std::uint64_t dequeued_pkts = 0;
  std::uint64_t dequeued_bytes = 0;
  std::uint64_t dropped_pkts = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t ecn_marked_pkts = 0;
  std::uint64_t max_bytes_seen = 0;
};

/// Shared packet-buffer pool with dynamic per-queue thresholds — the
/// admission scheme of real switch ASICs (and of the paper's testbed
/// switches): a queue may grow while its occupancy stays below
/// alpha * (free pool), so a single hot port can absorb most of the memory,
/// but many simultaneously hot ports squeeze each other.
class SharedBufferPool {
 public:
  SharedBufferPool(std::uint64_t total_bytes, double alpha)
      : total_(total_bytes), alpha_(alpha) {}

  /// Admission limit for a queue currently using `queue_bytes`.
  std::uint64_t dynamic_limit() const {
    const std::uint64_t free_bytes = total_ > used_ ? total_ - used_ : 0;
    return static_cast<std::uint64_t>(alpha_ *
                                      static_cast<double>(free_bytes));
  }
  void reserve(std::uint64_t bytes) { used_ += bytes; }
  void release(std::uint64_t bytes) { used_ -= bytes; }
  std::uint64_t used() const { return used_; }
  std::uint64_t total() const { return total_; }

 private:
  std::uint64_t total_;
  double alpha_;
  std::uint64_t used_ = 0;
};

class DropTailQueue {
 public:
  /// `ecn_threshold_bytes`: packets enqueued while the occupancy exceeds
  /// this get the CE mark (DCTCP-style instantaneous-threshold marking);
  /// 0 disables ECN. `pool`: optional switch-level shared buffer; when set,
  /// admission also requires occupancy < the pool's dynamic limit.
  explicit DropTailQueue(std::uint64_t capacity_bytes,
                         std::uint64_t ecn_threshold_bytes = 0,
                         SharedBufferPool* pool = nullptr)
      : capacity_bytes_(capacity_bytes),
        ecn_threshold_bytes_(ecn_threshold_bytes),
        pool_(pool) {}

  /// Attempts to enqueue; on overflow the packet is dropped (freed) and
  /// false is returned.
  bool enqueue(PacketPtr pkt, sim::TimeNs now);

  /// Pops the head, or nullptr if empty.
  PacketPtr dequeue(sim::TimeNs now);

  /// Names this queue in invariant-violation reports (the owning link's
  /// name); optional, defaults to "queue".
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

  /// Routes enqueue/dequeue/drop/ECN events to `sink` under component
  /// `comp` (normally the owning link's interned name). nullptr detaches.
  void set_telemetry(telemetry::TraceSink* sink, std::uint32_t comp) {
    tele_ = sink;
    tele_comp_ = comp;
  }

  bool empty() const { return q_.empty(); }
  std::uint64_t bytes() const { return bytes_; }
  std::size_t packets() const { return q_.size(); }
  std::uint64_t capacity_bytes() const { return capacity_bytes_; }
  const QueueStats& stats() const { return stats_; }

  /// Time-average occupancy in bytes over [0, now].
  double time_avg_bytes(sim::TimeNs now) const;

 private:
  void account(sim::TimeNs now);

  std::uint64_t capacity_bytes_;
  std::uint64_t ecn_threshold_bytes_;
  SharedBufferPool* pool_;
  telemetry::TraceSink* tele_ = nullptr;
  std::uint32_t tele_comp_ = 0;
  std::string label_ = "queue";
  std::uint64_t bytes_ = 0;
  std::deque<PacketPtr> q_;
  QueueStats stats_;
  // Integral of occupancy over time, for time-averaged queue length.
  double byte_time_integral_ = 0.0;
  sim::TimeNs last_change_ = 0;
};

}  // namespace conga::net
