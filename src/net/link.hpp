// Unidirectional link: egress queue + serialization + propagation + DRE.
//
// The link models an output-queued switch port. A packet handed to send() is
// enqueued; when the wire is free the head packet begins transmission, at
// which point the link's DRE is charged and — on fabric links — the packet's
// CE field is raised to the link's quantized congestion metric (paper §3.3
// step 2: "its CE field is updated if the link's congestion metric is larger
// than the current value in the packet").
#pragma once

#include <cstdint>
#include <string>

#include "core/dre.hpp"
#include "net/node.hpp"
#include "net/queue.hpp"
#include "sim/scheduler.hpp"

namespace conga::net {

struct LinkConfig {
  double rate_bps = 10e9;
  sim::TimeNs propagation_delay = sim::microseconds(1);
  std::uint64_t queue_capacity_bytes = 2'000'000;
  /// Queue depth above which packets get ECN CE marks (0 = ECN off). DCTCP's
  /// K parameter; independent of CONGA's CE *path-congestion* field.
  std::uint64_t ecn_threshold_bytes = 0;
  /// Optional switch-level shared buffer this port draws from.
  SharedBufferPool* shared_pool = nullptr;
  bool marks_ce = false;  ///< fabric links update CE; edge links do not
  /// CE aggregation along the path: false = max of link metrics (the paper's
  /// choice, emphasizing the bottleneck), true = clamped sum (§7 "Other path
  /// metrics", the 4/3-PoA alternative that needs wider header fields).
  bool ce_sum = false;
  core::DreConfig dre;
};

class Link {
 public:
  Link(sim::Scheduler& sched, std::string name, const LinkConfig& cfg);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Connects the far end. Must be called before any send().
  void connect_to(Node* dst, int dst_port);

  /// Hands a packet to the link for transmission (possibly dropping it).
  void send(PacketPtr pkt);

  /// Administratively disables the link: packets handed to a down link are
  /// dropped. (Used to model failures discovered by the routing layer; the
  /// topology normally removes failed links from forwarding tables instead.)
  /// Actual state changes emit kLinkUp/kLinkDown telemetry events.
  void set_up(bool up);
  bool is_up() const { return up_; }

  /// Registers this link (by name) with `sink` and routes the link's own,
  /// its queue's, and its DRE's events there.
  void attach_telemetry(telemetry::TraceSink* sink);

  double rate_bps() const { return cfg_.rate_bps; }
  const std::string& name() const { return name_; }
  const DropTailQueue& queue() const { return queue_; }
  core::Dre& dre() { return dre_; }
  const core::Dre& dre() const { return dre_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t packets_sent() const { return packets_sent_; }

  /// Average delivered throughput in bits/s over [t0, t1], from the byte
  /// counter deltas the caller snapshots. Convenience for tests.
  sim::TimeNs serialization_delay(std::uint32_t bytes) const {
    return static_cast<sim::TimeNs>(static_cast<double>(bytes) * 8.0 /
                                    cfg_.rate_bps * 1e9);
  }

 private:
  void start_transmission();

  sim::Scheduler& sched_;
  std::string name_;
  LinkConfig cfg_;
  Node* dst_ = nullptr;
  int dst_port_ = -1;
  DropTailQueue queue_;
  core::Dre dre_;
  telemetry::TraceSink* tele_ = nullptr;
  std::uint32_t tele_comp_ = 0;
  bool busy_ = false;
  bool up_ = true;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t packets_sent_ = 0;
};

}  // namespace conga::net
