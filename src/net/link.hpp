// Unidirectional link: egress queue + serialization + propagation + DRE.
//
// The link models an output-queued switch port. A packet handed to send() is
// enqueued; when the wire is free the head packet begins transmission, at
// which point the link's DRE is charged and — on fabric links — the packet's
// CE field is raised to the link's quantized congestion metric (paper §3.3
// step 2: "its CE field is updated if the link's congestion metric is larger
// than the current value in the packet").
//
// Fault hooks (driven by fault::FaultInjector; all default to "off" and cost
// nothing when unused):
//  * set_rate_scale()   — capacity degradation: serialization slows down and
//    the DRE renormalizes against the shrunken capacity;
//  * set_gray_failure() — per-packet Bernoulli loss and corruption from a
//    dedicated keyed RNG stream. Losses vanish silently at admission;
//    corrupted packets occupy the wire (charge the DRE, pick up CE marks)
//    and are discarded at the far end, like a frame failing its CRC;
//  * set_ce_suppressed() — stale-feedback injection: the link stops raising
//    the CONGA CE field, so downstream leaves see frozen congestion info.
//
// Every drop is accounted by cause (admin-down / gray / corrupt here;
// queue overflow in QueueStats), and the link maintains a packet
// conservation identity the chaos auditor checks after drain:
//   offered == admin_down + gray + queue_drops + queue_resident
//              + in_flight + corrupt + delivered.
#pragma once

#include <cstdint>
#include <string>

#include "core/dre.hpp"
#include "net/node.hpp"
#include "net/queue.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace conga::net {

struct LinkConfig {
  double rate_bps = 10e9;
  sim::TimeNs propagation_delay = sim::microseconds(1);
  std::uint64_t queue_capacity_bytes = 2'000'000;
  /// Queue depth above which packets get ECN CE marks (0 = ECN off). DCTCP's
  /// K parameter; independent of CONGA's CE *path-congestion* field.
  std::uint64_t ecn_threshold_bytes = 0;
  /// Optional switch-level shared buffer this port draws from.
  SharedBufferPool* shared_pool = nullptr;
  bool marks_ce = false;  ///< fabric links update CE; edge links do not
  /// CE aggregation along the path: false = max of link metrics (the paper's
  /// choice, emphasizing the bottleneck), true = clamped sum (§7 "Other path
  /// metrics", the 4/3-PoA alternative that needs wider header fields).
  bool ce_sum = false;
  core::DreConfig dre;
};

/// Link-level drops split by cause. Queue-overflow drops are counted by the
/// egress queue (QueueStats::dropped_*); together the two structs name the
/// cause of every packet that entered send() and never reached the far end.
struct LinkDropStats {
  std::uint64_t admin_down_pkts = 0;   ///< handed to a down link
  std::uint64_t admin_down_bytes = 0;
  std::uint64_t gray_pkts = 0;         ///< gray-failure Bernoulli loss
  std::uint64_t gray_bytes = 0;
  std::uint64_t corrupt_pkts = 0;      ///< transmitted, discarded at rx
  std::uint64_t corrupt_bytes = 0;
};

class Link {
 public:
  Link(sim::Scheduler& sched, std::string name, const LinkConfig& cfg);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Connects the far end. Must be called before any send().
  void connect_to(Node* dst, int dst_port);

  /// Hands a packet to the link for transmission (possibly dropping it).
  void send(PacketPtr pkt);

  /// Administratively disables the link: packets handed to a down link are
  /// dropped. (Used to model failures discovered by the routing layer; the
  /// topology normally removes failed links from forwarding tables instead.)
  /// Actual state changes emit kLinkUp/kLinkDown telemetry events.
  void set_up(bool up);
  bool is_up() const { return up_; }

  /// Scales the link to `scale` of its configured rate (capacity
  /// degradation, e.g. a LAG that lost members). Serialization slows down
  /// and the DRE renormalizes so utilization is measured against the
  /// *current* capacity. scale == 1 restores nominal. Emits kLinkDegraded.
  void set_rate_scale(double scale);
  double rate_scale() const { return rate_scale_; }

  /// Arms per-packet Bernoulli gray failure: each packet handed to send() is
  /// independently dropped with `drop_prob`, else corrupted with
  /// `corrupt_prob`. Draws come from a dedicated Rng seeded with `seed`
  /// (callers derive it via Rng::stream_seed so it is reproducible and
  /// independent of traffic). Passing both probabilities 0 disarms.
  void set_gray_failure(double drop_prob, double corrupt_prob,
                        std::uint64_t seed);
  void clear_gray_failure() { gray_drop_prob_ = gray_corrupt_prob_ = 0.0; }
  bool gray_failure_active() const {
    return gray_drop_prob_ > 0.0 || gray_corrupt_prob_ > 0.0;
  }

  /// Stale-feedback injection: while suppressed, the link no longer raises
  /// the CONGA CE field of packets it transmits, freezing the congestion
  /// information downstream leaves learn through this uplink.
  void set_ce_suppressed(bool suppressed) { ce_suppressed_ = suppressed; }
  bool ce_suppressed() const { return ce_suppressed_; }

  /// Registers this link (by name) with `sink` and routes the link's own,
  /// its queue's, and its DRE's events there.
  void attach_telemetry(telemetry::TraceSink* sink);

  double rate_bps() const { return cfg_.rate_bps; }
  /// Current rate after degradation (== rate_bps() when unscaled).
  double effective_rate_bps() const { return cfg_.rate_bps * rate_scale_; }
  const std::string& name() const { return name_; }
  const DropTailQueue& queue() const { return queue_; }
  core::Dre& dre() { return dre_; }
  const core::Dre& dre() const { return dre_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t packets_sent() const { return packets_sent_; }

  const LinkDropStats& drop_stats() const { return drop_stats_; }
  std::uint64_t packets_offered() const { return packets_offered_; }
  std::uint64_t bytes_offered() const { return bytes_offered_; }
  std::uint64_t packets_in_flight() const { return in_flight_pkts_; }
  std::uint64_t packets_delivered() const { return packets_delivered_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }

  /// Packet conservation: every packet offered to this link is accounted to
  /// exactly one fate. After a full drain (no packets queued or on the wire)
  /// the resident and in-flight terms are zero and the identity degenerates
  /// to offered == drops-by-cause + delivered.
  bool conserves_packets() const {
    return packets_offered_ ==
           drop_stats_.admin_down_pkts + drop_stats_.gray_pkts +
               queue_.stats().dropped_pkts + queue_.packets() +
               in_flight_pkts_ + drop_stats_.corrupt_pkts +
               packets_delivered_;
  }

  /// Average delivered throughput in bits/s over [t0, t1], from the byte
  /// counter deltas the caller snapshots. Convenience for tests.
  sim::TimeNs serialization_delay(std::uint32_t bytes) const {
    return static_cast<sim::TimeNs>(static_cast<double>(bytes) * 8.0 /
                                    (cfg_.rate_bps * rate_scale_) * 1e9);
  }

 private:
  void start_transmission();

  sim::Scheduler& sched_;
  std::string name_;
  LinkConfig cfg_;
  Node* dst_ = nullptr;
  int dst_port_ = -1;
  DropTailQueue queue_;
  core::Dre dre_;
  telemetry::TraceSink* tele_ = nullptr;
  std::uint32_t tele_comp_ = 0;
  bool busy_ = false;
  bool up_ = true;
  bool ce_suppressed_ = false;
  double rate_scale_ = 1.0;
  double gray_drop_prob_ = 0.0;
  double gray_corrupt_prob_ = 0.0;
  sim::Rng gray_rng_{0};
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_offered_ = 0;
  std::uint64_t bytes_offered_ = 0;
  std::uint64_t in_flight_pkts_ = 0;
  std::uint64_t packets_delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  LinkDropStats drop_stats_;
};

}  // namespace conga::net
