// End host (server / VM).
//
// A host owns nothing but its NIC link to the leaf and a demux table from
// FlowKey to transport endpoints. Transport objects (TcpConnection, TcpSink,
// MptcpConnection) register themselves per flow; unknown incoming flows go to
// a default handler so receivers can spawn sinks on demand (the moral
// equivalent of a listening socket).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"

namespace conga::net {

class Host : public Node {
 public:
  using Handler = std::function<void(PacketPtr)>;

  Host(HostId id, LeafId leaf) : id_(id), leaf_(leaf) {}

  /// Attaches the host -> leaf link (owned by the Fabric).
  void attach_uplink(Link* to_leaf) { nic_ = to_leaf; }

  /// Routes packets of `flow` (both data and ACK directions) to `h`.
  void register_flow(const FlowKey& flow, Handler h) {
    endpoints_[flow] = std::move(h);
  }
  void unregister_flow(const FlowKey& flow) { endpoints_.erase(flow); }

  /// Handler for packets of flows with no registered endpoint (typically: a
  /// sink factory installed by the workload driver).
  void set_default_handler(Handler h) { default_handler_ = std::move(h); }

  /// Transmits a packet out of the NIC.
  void send(PacketPtr pkt) { nic_->send(std::move(pkt)); }

  void receive(PacketPtr pkt, int in_port) override;
  std::string name() const override { return "host" + std::to_string(id_); }

  HostId id() const { return id_; }
  LeafId leaf() const { return leaf_; }
  Link* nic() { return nic_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  HostId id_;
  LeafId leaf_;
  Link* nic_ = nullptr;
  std::unordered_map<FlowKey, Handler> endpoints_;
  Handler default_handler_;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace conga::net
