// Packet model.
//
// A single packet struct serves the whole stack: the TCP header fields, and
// the VXLAN-style overlay header CONGA piggybacks on (§3.1 of the paper:
// LBTag 4b, CE 3b, FB_LBTag 4b, FB_Metric 3b). Field widths larger than the
// ASIC's are used in memory, but values are always masked to the paper's
// widths by the CONGA logic so quantization behaviour is faithful.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "net/flow_key.hpp"
#include "sim/time.hpp"

namespace conga::net {

/// One SACK block: received bytes [start, end).
struct SackBlock {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
};

/// TCP header state carried by every packet.
struct TcpHeader {
  std::uint64_t seq = 0;        ///< first payload byte (data) / echo (ack)
  std::uint64_t ack = 0;        ///< cumulative ack (valid if is_ack)
  std::uint32_t payload = 0;    ///< payload bytes carried
  bool is_ack = false;          ///< pure ACK traveling receiver -> sender
  bool fin = false;             ///< last segment of the flow
  std::uint32_t subflow = 0;    ///< MPTCP subflow index (0 for plain TCP)
  std::uint64_t echo_ts = 0;    ///< sender timestamp echoed by ACKs (RTT est.)
  std::uint8_t sack_count = 0;  ///< valid entries in `sack` (ACKs only)
  std::array<SackBlock, 3> sack{};  ///< out-of-order blocks held (RFC 2018)
};

/// VXLAN-style overlay header with CONGA's fields (§3.1).
struct OverlayHeader {
  bool valid = false;           ///< packet is encapsulated (inter-leaf)
  LeafId src_leaf = -1;
  LeafId dst_leaf = -1;
  std::uint8_t lbtag = 0;       ///< source-leaf uplink port (4 bits)
  std::uint8_t ce = 0;          ///< max path congestion so far (Q bits)
  bool fb_valid = false;        ///< feedback pair present
  std::uint8_t fb_lbtag = 0;    ///< which uplink the feedback refers to
  std::uint8_t fb_metric = 0;   ///< its congestion metric
};

/// In-fabric probe-plane header (src/probe/). `kind` holds a
/// probe::ProbeKind value and is 0 on every data packet. Probes ride the
/// overlay exactly like data, so the links' CE marking folds the max DRE
/// utilization along the path into overlay.ce with no extra mechanism.
struct ProbeHeader {
  std::uint8_t kind = 0;           ///< 0 = not a probe (probe::ProbeKind)
  std::uint8_t origin_uplink = 0;  ///< origin leaf's uplink under measurement
  std::uint8_t util = 0;           ///< reply: max path utilization observed
  LeafId origin_leaf = -1;         ///< leaf that launched the round-trip
};

/// Wire overheads, in bytes.
constexpr std::uint32_t kIpTcpHeaderBytes = 40;    // IP(20) + TCP(20)
constexpr std::uint32_t kOverlayHeaderBytes = 50;  // outer Eth+IP+UDP+VXLAN
constexpr std::uint32_t kAckBytes = kIpTcpHeaderBytes + 24;  // pure ACK frame

struct Packet {
  std::uint64_t id = 0;          ///< globally unique, for tracing
  FlowKey flow;                  ///< data-direction 5-tuple
  std::uint32_t size_bytes = 0;  ///< total bytes on the wire (incl. headers)
  sim::TimeNs enqueued_at = 0;   ///< set by queues, for latency accounting
  bool ecn_ce = false;           ///< ECN Congestion-Experienced codepoint
  bool ecn_echo = false;         ///< ECE on ACKs (echoed per packet, DCTCP)
  bool corrupted = false;        ///< gray-failure bit error; dropped at rx
  TcpHeader tcp;
  OverlayHeader overlay;
  ProbeHeader probe;

  /// The 5-tuple as seen on the wire for this packet's direction of travel:
  /// data packets travel along `flow`, ACKs along the reversed key. Hashing
  /// mechanisms (ECMP, flowlets) must use this so that the forward and
  /// reverse streams of one connection are balanced independently, exactly
  /// as a real switch hashing the actual header would.
  FlowKey wire_key() const { return tcp.is_ack ? reversed(flow) : flow; }
};

/// Returns a packet to the calling thread's free-list pool (see PacketPool).
struct PacketDeleter {
  void operator()(Packet* p) const noexcept;
};

using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

/// Creates a packet with a fresh globally unique id. Steady-state traffic is
/// allocation-free: packets come from a thread-local free-list pool that
/// grows in chunks and is refilled by PacketDeleter, so after warmup
/// make_packet() is a pop + field reset. Each simulation runs on one thread
/// (workers of the parallel experiment runner included), so packets return
/// to the pool they came from; a packet must not outlive the thread that
/// allocated it.
PacketPtr make_packet();

/// Introspection for the calling thread's packet pool (perf baselines and
/// the allocation-freedom microbenchmark assert against these).
struct PacketPoolStats {
  std::uint64_t acquired = 0;     ///< make_packet() calls on this thread
  std::uint64_t released = 0;     ///< packets returned to this thread's pool
  std::uint64_t chunk_allocs = 0; ///< times the pool had to grow (malloc)
  std::size_t free_size = 0;      ///< packets currently in the free list
};
PacketPoolStats packet_pool_stats();

}  // namespace conga::net
