#include "net/spine_switch.hpp"

#include <algorithm>
#include <cassert>

#include "debug/invariants.hpp"

namespace conga::net {

void SpineSwitch::remove_downlink(LeafId leaf, Link* link) {
  auto& v = ports_to_leaf_[static_cast<std::size_t>(leaf)];
  v.erase(std::remove(v.begin(), v.end(), link), v.end());
}

void SpineSwitch::receive(PacketPtr pkt, int /*in_port*/) {
  assert(pkt->overlay.valid && "spine received a non-encapsulated packet");
  const auto leaf = static_cast<std::size_t>(pkt->overlay.dst_leaf);
  assert(leaf < ports_to_leaf_.size());
  CONGA_INVARIANT(check_condition(
      pkt->overlay.valid && leaf < ports_to_leaf_.size(), name(), 0,
      "spine.overlay-routing",
      "spine received a non-encapsulated packet or an out-of-range "
      "destination leaf"));

  // 3-tier: destinations outside this pod go up to the core.
  if (!leaf_to_pod_.empty() && leaf_to_pod_[leaf] != my_pod_) {
    if (core_uplinks_.empty()) {
      ++dropped_no_route_;
      return;
    }
    std::size_t i = 0;
    if (core_uplinks_.size() > 1) {
      i = static_cast<std::size_t>(
          mix64(pkt->wire_key().hash() ^ hash_seed_ ^ 0x5bd1e995u) %
          core_uplinks_.size());
    }
    core_uplinks_[i]->send(std::move(pkt));
    return;
  }

  const auto& links = ports_to_leaf_[leaf];
  if (links.empty()) {
    ++dropped_no_route_;
    return;
  }
  std::size_t i = 0;
  if (links.size() > 1) {
    i = drill_rng_ != nullptr
            ? drill_pick(leaf, links)
            : static_cast<std::size_t>(
                  mix64(pkt->wire_key().hash() ^ hash_seed_) % links.size());
  }
  links[i]->send(std::move(pkt));
}

std::size_t SpineSwitch::drill_pick(std::size_t leaf,
                                    const std::vector<Link*>& links) {
  // Downlink removals shift indices, so the remembered winner is only a
  // heuristic; out-of-range memory is ignored until rewritten.
  const int mem = drill_best_[leaf];
  const bool mem_ok = mem >= 0 && mem < static_cast<int>(links.size());
  int cand[3];
  int n = 0;
  cand[n++] = static_cast<int>(drill_rng_->index(links.size()));
  cand[n++] = static_cast<int>(drill_rng_->index(links.size()));
  if (mem_ok) cand[n++] = mem;
  int winner = -1;
  std::uint64_t winner_q = 0;
  for (int c = 0; c < n; ++c) {
    const std::uint64_t q =
        links[static_cast<std::size_t>(cand[c])]->queue().bytes();
    if (winner < 0 || q < winner_q) {
      winner = cand[c];
      winner_q = q;
    } else if (q == winner_q && winner != cand[c]) {
      // Pinned tie-break: the remembered port wins, then the lowest index.
      if (mem_ok && cand[c] == mem) {
        winner = mem;
      } else if (!(mem_ok && winner == mem) && cand[c] < winner) {
        winner = cand[c];
      }
    }
  }
  drill_best_[leaf] = winner;
  return static_cast<std::size_t>(winner);
}

void CoreSwitch::receive(PacketPtr pkt, int /*in_port*/) {
  assert(pkt->overlay.valid && "core received a non-encapsulated packet");
  const auto leaf = static_cast<std::size_t>(pkt->overlay.dst_leaf);
  assert(leaf < leaf_to_pod_.size());
  const auto pod = static_cast<std::size_t>(leaf_to_pod_[leaf]);
  const auto& links = ports_to_pod_[pod];
  if (links.empty()) {
    ++dropped_no_route_;
    return;
  }
  std::size_t i = 0;
  if (links.size() > 1) {
    i = static_cast<std::size_t>(mix64(pkt->wire_key().hash() ^ hash_seed_) %
                                 links.size());
  }
  links[i]->send(std::move(pkt));
}

}  // namespace conga::net
