// Base interface for anything that can receive packets from a link.
#pragma once

#include <string>

#include "net/packet.hpp"

namespace conga::net {

class Node {
 public:
  virtual ~Node() = default;

  /// Delivers a packet arriving on `in_port` (the receiving node's port
  /// numbering; -1 when the sender did not specify one).
  virtual void receive(PacketPtr pkt, int in_port) = 0;

  virtual std::string name() const = 0;
};

}  // namespace conga::net
