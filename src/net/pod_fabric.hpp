// 3-tier pod fabric (paper §7, "Larger topologies").
//
// "Large datacenter networks are typically organized as multiple pods, each
//  of which is a 2-tier Clos. Therefore, CONGA is beneficial even in these
//  cases since it balances the traffic within each pod optimally ... and
//  even for inter-pod traffic, CONGA makes better decisions than ECMP at the
//  first hop."
//
// Structure: `num_pods` pods, each a Leaf-Spine Clos; every pod spine
// connects to every core switch. Forwarding: the source leaf picks an uplink
// (any LoadBalancer, incl. CONGA); a spine delivers intra-pod destinations
// directly and sends inter-pod traffic to the core by ECMP; cores ECMP into
// the destination pod's spines. CONGA's leaf-to-leaf feedback spans the
// whole path — the CE field keeps accumulating across the core hops, so the
// source leaf's decision reflects 4-hop congestion even though only the
// first hop is CONGA-controlled.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "net/host.hpp"
#include "net/leaf_switch.hpp"
#include "net/link.hpp"
#include "net/spine_switch.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace conga::net {

struct CoreLinkOverride {
  int pod = 0;
  int spine = 0;  ///< spine index within the pod
  int core = 0;
  double rate_factor = 0.0;  ///< 0 = failed
};

struct PodTopologyConfig {
  int num_pods = 2;
  int leaves_per_pod = 2;
  int spines_per_pod = 2;
  int hosts_per_leaf = 4;
  int num_cores = 2;

  double host_link_bps = 10e9;
  double fabric_link_bps = 40e9;
  double core_link_bps = 40e9;
  sim::TimeNs host_link_delay = sim::microseconds(1);
  sim::TimeNs fabric_link_delay = sim::microseconds(1);

  std::uint64_t edge_queue_bytes = 512 * 1024;
  std::uint64_t fabric_queue_bytes = 2 * 1024 * 1024;
  std::uint64_t nic_queue_bytes = 16 * 1024 * 1024;
  core::DreConfig dre;

  std::vector<CoreLinkOverride> core_overrides;

  int num_leaves() const { return num_pods * leaves_per_pod; }
  int num_hosts() const { return num_leaves() * hosts_per_leaf; }

  std::string validate() const;
};

class PodFabric {
 public:
  PodFabric(sim::Scheduler& sched, const PodTopologyConfig& cfg,
            std::uint64_t seed = 1);

  PodFabric(const PodFabric&) = delete;
  PodFabric& operator=(const PodFabric&) = delete;

  /// Installs a LoadBalancer on every leaf (same factory type as Fabric; the
  /// TopologyConfig handed to the factory carries the global leaf count).
  void install_lb(const Fabric::LbFactory& factory);

  sim::Scheduler& scheduler() { return sched_; }
  const PodTopologyConfig& config() const { return cfg_; }

  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  Host& host(HostId h) { return *hosts_[static_cast<std::size_t>(h)]; }
  LeafSwitch& leaf(int global_leaf) {
    return *leaves_[static_cast<std::size_t>(global_leaf)];
  }
  SpineSwitch& spine(int pod, int idx) {
    return *spines_[static_cast<std::size_t>(pod * cfg_.spines_per_pod + idx)];
  }
  CoreSwitch& core(int c) { return *cores_[static_cast<std::size_t>(c)]; }

  LeafId leaf_of(HostId h) const {
    return directory_[static_cast<std::size_t>(h)];
  }
  int pod_of_leaf(int global_leaf) const {
    return global_leaf / cfg_.leaves_per_pod;
  }

  /// The spine -> core link for (pod, spine, core); nullptr if failed.
  Link* spine_to_core(int pod, int spine, int core);
  /// The core -> spine link for (core, pod, spine); nullptr if failed.
  Link* core_to_spine(int core, int pod, int spine);

  const std::vector<Link*>& fabric_links() const { return fabric_links_; }

 private:
  void build();

  sim::Scheduler& sched_;
  PodTopologyConfig cfg_;
  sim::Rng rng_;
  std::vector<LeafId> directory_;
  std::vector<int> leaf_to_pod_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<LeafSwitch>> leaves_;
  std::vector<std::unique_ptr<SpineSwitch>> spines_;
  std::vector<std::unique_ptr<CoreSwitch>> cores_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Link*> fabric_links_;
  // [pod][spine][core] and [core][pod][spine]; nullptr where failed.
  std::vector<std::vector<std::vector<Link*>>> up_to_core_;
  std::vector<std::vector<std::vector<Link*>>> down_from_core_;
};

}  // namespace conga::net
