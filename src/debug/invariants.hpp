// Runtime invariant checker (correctness tooling).
//
// The simulator's results are only as credible as its internal bookkeeping:
// a queue that leaks bytes or a scheduler that travels back in time corrupts
// every figure silently. This subsystem threads cheap structural checks
// through the hot paths — event-time monotonicity, per-queue byte
// conservation, occupancy bounds, DRE register sanity, flowlet-table expiry
// consistency, and TCP sequence-window ordering — and raises a structured
// report (node, simulated time, invariant class, detail) on violation.
//
// Two layers:
//  * The check functions below are ALWAYS compiled, so tests can exercise
//    each invariant class directly by feeding it violating inputs.
//  * The hook sites inside sim/net/core/tcp are compiled in only under
//    -DCONGA_CHECK_INVARIANTS=1 (CMake option CONGA_CHECK_INVARIANTS=ON), so
//    release builds pay nothing — not even a branch.
//
// The default handler prints the report to stderr and aborts; tests install
// a ScopedViolationCapture to assert that a specific invariant fired.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace conga::debug {

/// One detected violation, naming the offending component and instant.
struct Violation {
  std::string node;       ///< component that detected it, e.g. "leaf0"
  sim::TimeNs time = 0;   ///< simulated time of detection
  std::string invariant;  ///< invariant class, e.g. "queue.byte-conservation"
  std::string detail;     ///< the numbers that broke it
};

using ViolationHandler = std::function<void(const Violation&)>;

/// Replaces the violation handler, returning the previous one. Passing an
/// empty handler restores the default (print to stderr + abort).
ViolationHandler set_violation_handler(ViolationHandler h);

/// Violations reported since process start / the last reset. Counted before
/// the handler runs, so a non-aborting handler still leaves a tally.
std::uint64_t violation_count();
void reset_violation_count();

/// Formats `v` as the single-line structured report the default handler
/// prints: "invariant violation [<invariant>] node=<node> t=<ns>ns: <detail>".
std::string format_violation(const Violation& v);

/// Routes a violation through the current handler (and bumps the counter).
void report(Violation v);

/// RAII handler swap for tests: collects violations instead of aborting.
class ScopedViolationCapture {
 public:
  ScopedViolationCapture();
  ~ScopedViolationCapture();
  ScopedViolationCapture(const ScopedViolationCapture&) = delete;
  ScopedViolationCapture& operator=(const ScopedViolationCapture&) = delete;

  const std::vector<Violation>& violations() const { return captured_; }
  std::size_t count() const { return captured_.size(); }
  /// True if any captured violation belongs to invariant class `invariant`.
  bool fired(std::string_view invariant) const;

 private:
  std::vector<Violation> captured_;
  ViolationHandler prev_;
};

// ---------------------------------------------------------------------------
// Invariant checks. Each returns true when the invariant holds and reports a
// structured violation otherwise. Detail strings are built only on failure.
// ---------------------------------------------------------------------------

/// Scheduler: dispatched event times never regress (event-time monotonicity).
bool check_time_monotonic(std::string_view node, sim::TimeNs now,
                          sim::TimeNs event_time);

/// Queue: every byte ever enqueued is either dequeued or still resident
/// (drops are counted before admission, so they never enter the ledger).
bool check_byte_conservation(std::string_view node, sim::TimeNs now,
                             std::uint64_t enqueued_bytes,
                             std::uint64_t dequeued_bytes,
                             std::uint64_t resident_bytes);

/// Queue: occupancy within [0, capacity] and consistent with emptiness
/// (bytes == 0 exactly when no packets are resident).
bool check_queue_bounds(std::string_view node, sim::TimeNs now,
                        std::uint64_t bytes, std::uint64_t capacity_bytes,
                        std::size_t packets);

/// DRE: the register is non-negative, and decay never increases it
/// (`before` is the register value entering the decay step, `after` leaving).
bool check_dre_register(std::string_view node, sim::TimeNs now, double before,
                        double after);

/// Flowlet table: an entry's liveness bookkeeping is consistent — last_seen
/// never lies in the future, and a hit (returned port >= 0) only happens on a
/// valid entry within the flowlet gap.
bool check_flowlet_entry(std::string_view node, sim::TimeNs now,
                         sim::TimeNs last_seen, sim::TimeNs gap, bool valid,
                         int port_returned);

/// TCP: sequence-window ordering snd_una <= snd_nxt <= snd_max, and the
/// congestion window is non-negative.
bool check_tcp_window(std::string_view node, sim::TimeNs now,
                      std::uint64_t snd_una, std::uint64_t snd_nxt,
                      std::uint64_t snd_max, double cwnd_bytes);

/// Generic structural condition with a caller-supplied invariant class —
/// used by the switch forwarding paths (uplink validity, overlay routing)
/// where the condition is a one-off property of that hop.
bool check_condition(bool ok, std::string_view node, sim::TimeNs now,
                     std::string_view invariant, std::string_view detail);

}  // namespace conga::debug

// Hook-site gate: wraps a check call so that release builds compile it out
// entirely. Usage: CONGA_INVARIANT(check_queue_bounds(name, now, ...));
#if defined(CONGA_CHECK_INVARIANTS) && CONGA_CHECK_INVARIANTS
#define CONGA_INVARIANT(call) \
  do {                        \
    (void)::conga::debug::call; \
  } while (0)
#else
#define CONGA_INVARIANT(call) \
  do {                        \
  } while (0)
#endif
