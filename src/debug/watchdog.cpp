#include "debug/watchdog.hpp"

#include "telemetry/telemetry.hpp"

namespace conga::debug {

LivenessWatchdog::LivenessWatchdog(sim::Scheduler& sched, WatchdogConfig cfg)
    : sched_(sched), cfg_(cfg) {}

void LivenessWatchdog::attach_telemetry(telemetry::TraceSink* sink) {
  tele_ = sink;
  tele_comp_ = sink != nullptr ? sink->intern_component("watchdog") : 0;
}

void LivenessWatchdog::watch(std::uint64_t tag, const tcp::FlowHandle* flow) {
  Watch w;
  w.flow = flow;
  w.last_bytes = flow->progress_bytes();
  w.last_progress = sched_.now();
  watched_[tag] = w;
  schedule_poll();
}

void LivenessWatchdog::unwatch(std::uint64_t tag) {
  auto it = watched_.find(tag);
  if (it == watched_.end()) return;
  if (it->second.reported) --currently_stalled_;
  watched_.erase(it);
}

void LivenessWatchdog::schedule_poll() {
  if (poll_scheduled_ || watched_.empty()) return;
  poll_scheduled_ = true;
  sched_.schedule_after(cfg_.poll_interval, [this] { poll(); });
}

void LivenessWatchdog::poll() {
  poll_scheduled_ = false;
  const sim::TimeNs now = sched_.now();
  for (auto& [tag, w] : watched_) {
    const std::uint64_t bytes = w.flow->progress_bytes();
    if (bytes != w.last_bytes) {
      w.last_bytes = bytes;
      w.last_progress = now;
      if (w.reported) {
        w.reported = false;  // episode over; a new stall reports again
        --currently_stalled_;
      }
      continue;
    }
    if (!w.reported && now - w.last_progress >= cfg_.horizon) {
      w.reported = true;
      ++currently_stalled_;
      stalls_.push_back({tag, bytes, w.last_progress, now});
      telemetry::emit(tele_, telemetry::EventType::kFlowStalled, tele_comp_,
                      now, tag, bytes);
    }
  }
  schedule_poll();
}

}  // namespace conga::debug
