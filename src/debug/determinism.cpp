#include "debug/determinism.hpp"

#include "fault/fault_injector.hpp"
#include "stats/digest.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/traffic_gen.hpp"

namespace conga::debug {

RunDigests run_digest_trial(const DigestScenario& s) {
  sim::Scheduler sched;
  stats::TraceDigest trace;
  sched.set_trace_hook([&trace](sim::TimeNs t, sim::EventId id) {
    trace.add(static_cast<std::uint64_t>(t));
    trace.add(id);
  });

  net::Fabric fabric(sched, s.topo, s.fabric_seed);
  fabric.install_lb(s.lb);

  // Small rings: the audit only needs the streaming digest (which covers
  // every event, retained or not), so don't hold event history per link.
  telemetry::TraceSinkConfig sink_cfg;
  sink_cfg.ring_capacity = 64;
  telemetry::TraceSink sink(sink_cfg);
  if (s.telemetry != TelemetryMode::kOff) {
    if (s.telemetry == TelemetryMode::kMasked) sink.set_category_mask(0);
    fabric.attach_telemetry(&sink);
  }

  workload::TrafficGenConfig gc;
  gc.load = s.load;
  gc.stop = s.warmup + s.measure;
  gc.measure_start = s.warmup;
  gc.measure_stop = gc.stop;
  gc.seed = s.traffic_seed;

  tcp::FlowFactory transport =
      s.transport ? s.transport : tcp::make_tcp_flow_factory({});
  workload::TrafficGenerator gen(fabric, transport, s.dist, gc);
  gen.start();

  fault::FaultInjector injector(fabric, s.fault_seed);
  injector.arm(s.faults);

  RunDigests r;
  r.drained = workload::run_with_drain(sched, gen, gc.stop, s.max_drain);
  r.fct = stats::fct_digest(gen.collector());
  r.trace = trace.value();
  r.events = sched.events_dispatched();
  r.flows = gen.collector().count();
  if (s.telemetry != TelemetryMode::kOff) r.telemetry = sink.digest();
  return r;
}

}  // namespace conga::debug
