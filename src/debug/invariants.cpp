#include "debug/invariants.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace conga::debug {

namespace {

// Single-threaded simulator: plain globals, no synchronisation needed.
ViolationHandler g_handler;  // empty == default (print + abort)
std::uint64_t g_count = 0;

void default_handler(const Violation& v) {
  std::fprintf(stderr, "%s\n", format_violation(v).c_str());
  std::abort();
}

}  // namespace

ViolationHandler set_violation_handler(ViolationHandler h) {
  ViolationHandler prev = std::move(g_handler);
  g_handler = std::move(h);
  return prev;
}

std::uint64_t violation_count() { return g_count; }
void reset_violation_count() { g_count = 0; }

std::string format_violation(const Violation& v) {
  std::ostringstream os;
  os << "invariant violation [" << v.invariant << "] node=" << v.node
     << " t=" << v.time << "ns: " << v.detail;
  return os.str();
}

void report(Violation v) {
  ++g_count;
  if (g_handler) {
    g_handler(v);
  } else {
    default_handler(v);
  }
}

ScopedViolationCapture::ScopedViolationCapture() {
  prev_ = set_violation_handler(
      [this](const Violation& v) { captured_.push_back(v); });
}

ScopedViolationCapture::~ScopedViolationCapture() {
  set_violation_handler(std::move(prev_));
}

bool ScopedViolationCapture::fired(std::string_view invariant) const {
  for (const Violation& v : captured_) {
    if (v.invariant == invariant) return true;
  }
  return false;
}

namespace {

/// Shared failure path: assemble the report from a detail builder.
template <typename DetailFn>
bool fail(std::string_view node, sim::TimeNs now, std::string_view invariant,
          DetailFn&& detail) {
  report(Violation{std::string(node), now, std::string(invariant), detail()});
  return false;
}

}  // namespace

bool check_time_monotonic(std::string_view node, sim::TimeNs now,
                          sim::TimeNs event_time) {
  if (event_time >= now) return true;
  return fail(node, now, "scheduler.time-monotonic", [&] {
    std::ostringstream os;
    os << "event time " << event_time << "ns precedes current time " << now
       << "ns";
    return os.str();
  });
}

bool check_byte_conservation(std::string_view node, sim::TimeNs now,
                             std::uint64_t enqueued_bytes,
                             std::uint64_t dequeued_bytes,
                             std::uint64_t resident_bytes) {
  if (enqueued_bytes == dequeued_bytes + resident_bytes) return true;
  return fail(node, now, "queue.byte-conservation", [&] {
    std::ostringstream os;
    os << "enqueued=" << enqueued_bytes << " != dequeued=" << dequeued_bytes
       << " + resident=" << resident_bytes << " (delta="
       << (static_cast<std::int64_t>(enqueued_bytes) -
           static_cast<std::int64_t>(dequeued_bytes + resident_bytes))
       << ")";
    return os.str();
  });
}

bool check_queue_bounds(std::string_view node, sim::TimeNs now,
                        std::uint64_t bytes, std::uint64_t capacity_bytes,
                        std::size_t packets) {
  const bool within_cap = bytes <= capacity_bytes;
  const bool consistent = (bytes == 0) == (packets == 0);
  if (within_cap && consistent) return true;
  return fail(node, now, "queue.occupancy-bounds", [&] {
    std::ostringstream os;
    os << "bytes=" << bytes << " capacity=" << capacity_bytes
       << " packets=" << packets
       << (within_cap ? "" : " (over capacity)")
       << (consistent ? "" : " (bytes/packets emptiness mismatch)");
    return os.str();
  });
}

bool check_dre_register(std::string_view node, sim::TimeNs now, double before,
                        double after) {
  // Decay multiplies by (1-alpha)^k with k >= 0: never negative, never
  // larger than the value it started from (allow exact equality for k == 0).
  if (after >= 0.0 && after <= before) return true;
  return fail(node, now, "dre.register-bounds", [&] {
    std::ostringstream os;
    os << "register " << before << " -> " << after
       << (after < 0.0 ? " (negative)" : " (decay increased the register)");
    return os.str();
  });
}

bool check_flowlet_entry(std::string_view node, sim::TimeNs now,
                         sim::TimeNs last_seen, sim::TimeNs gap, bool valid,
                         int port_returned) {
  const bool seen_ok = last_seen <= now;
  // A hit must come from a valid entry whose gap has not elapsed. (The age-bit
  // mode can only expire *later* than the timestamp mode, so a timestamp-mode
  // hit bound is safe for both.)
  const bool hit_ok =
      port_returned < 0 || (valid && now - last_seen <= 2 * gap);
  if (seen_ok && hit_ok) return true;
  return fail(node, now, "flowlet.age-consistency", [&] {
    std::ostringstream os;
    os << "last_seen=" << last_seen << "ns gap=" << gap << "ns valid=" << valid
       << " port=" << port_returned
       << (seen_ok ? "" : " (last_seen in the future)")
       << (hit_ok ? "" : " (hit on an expired/invalid entry)");
    return os.str();
  });
}

bool check_tcp_window(std::string_view node, sim::TimeNs now,
                      std::uint64_t snd_una, std::uint64_t snd_nxt,
                      std::uint64_t snd_max, double cwnd_bytes) {
  if (snd_una <= snd_nxt && snd_nxt <= snd_max && cwnd_bytes >= 0.0) {
    return true;
  }
  return fail(node, now, "tcp.sequence-window", [&] {
    std::ostringstream os;
    os << "snd_una=" << snd_una << " snd_nxt=" << snd_nxt
       << " snd_max=" << snd_max << " cwnd=" << cwnd_bytes;
    return os.str();
  });
}

bool check_condition(bool ok, std::string_view node, sim::TimeNs now,
                     std::string_view invariant, std::string_view detail) {
  if (ok) return true;
  return fail(node, now, invariant, [&] { return std::string(detail); });
}

}  // namespace conga::debug
