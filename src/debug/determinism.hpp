// Determinism trial runner (correctness tooling).
//
// Runs one experiment cell with a digest-instrumented scheduler and returns
// two fingerprints of the run:
//  * an order-insensitive digest of the per-flow FCT records (did the run
//    produce the same *results*?), and
//  * an order-sensitive digest of the dispatch stream (did it produce them
//    via the same *schedule*?).
// Running the same scenario twice with the same seeds must yield identical
// digests of both kinds; a trace mismatch with matching FCTs pinpoints a
// hidden ordering dependence (wall clock, pointer order, unordered-container
// iteration) before it grows into a results divergence.
//
// Shared by tools/determinism_audit (the CI gate) and the determinism
// regression test.
#pragma once

#include <cstdint>

#include "fault/fault_plan.hpp"
#include "net/fabric.hpp"
#include "sim/time.hpp"
#include "tcp/flow.hpp"
#include "workload/flow_size_dist.hpp"

namespace conga::debug {

/// How much telemetry an audited run attaches. The trial's FCT/trace digests
/// must be identical across all three (the sink is passive); the telemetry
/// digest itself is only comparable between runs using the same mode.
enum class TelemetryMode {
  kOff,     ///< no sink attached (what perf timing uses)
  kMasked,  ///< sink attached, every category masked off
  kFull,    ///< sink attached, all categories enabled
};

/// One experiment cell to fingerprint. Mirrors workload::ExperimentConfig,
/// minus the summary knobs that do not affect the packet-level schedule.
struct DigestScenario {
  net::TopologyConfig topo;
  net::Fabric::LbFactory lb;                          ///< required
  workload::FlowSizeDist dist = workload::enterprise();
  tcp::FlowFactory transport;                         ///< empty = plain TCP
  double load = 0.6;
  sim::TimeNs warmup = sim::milliseconds(5);
  sim::TimeNs measure = sim::milliseconds(20);
  sim::TimeNs max_drain = sim::seconds(1.0);
  std::uint64_t fabric_seed = 1;
  std::uint64_t traffic_seed = 7;
  TelemetryMode telemetry = TelemetryMode::kFull;
  /// Fault campaign armed before the run (empty = no injector activity; the
  /// trial is then bit-identical to one without the injector). Injected
  /// faults are part of the fingerprinted schedule, so a fault-campaign
  /// trial must reproduce its digests exactly like a fault-free one.
  fault::FaultPlan faults;
  std::uint64_t fault_seed = 11;
};

struct RunDigests {
  std::uint64_t fct = 0;     ///< order-insensitive FCT-record digest
  std::uint64_t trace = 0;   ///< order-sensitive event-trace digest
  std::uint64_t events = 0;  ///< events dispatched (quick divergence hint)
  std::uint64_t flows = 0;   ///< measured flows recorded
  /// Telemetry stream digest (0 in kOff mode): fingerprints every recorded
  /// event, so an instrumentation-order divergence is caught even when the
  /// packet schedule digests still agree.
  std::uint64_t telemetry = 0;
  bool drained = false;      ///< all measured flows completed

  friend bool operator==(const RunDigests&, const RunDigests&) = default;
};

/// Builds a fresh simulation from `s`, runs it to completion, and digests it.
RunDigests run_digest_trial(const DigestScenario& s);

}  // namespace conga::debug
