// Liveness watchdog: detects flows making no forward progress.
//
// A blackholed flow (failed link inside the detection window, gray loss on
// its only viable path, a load balancer steering into a withdrawn port) does
// not crash the simulation — it just silently never finishes, and a bounded
// drain converts that into an unexplained "drain incomplete". The watchdog
// turns silence into a signal: it polls every watched flow's
// progress_bytes() and reports any flow that advanced by nothing for a full
// horizon.
//
// The watchdog is active instrumentation — it schedules its polling events
// on the simulation's scheduler, so (unlike the passive TraceSink) attaching
// it perturbs the event-trace digest. It is strictly pay-for-what-you-use:
// with nothing watched, nothing is ever scheduled. Polling stops as soon as
// the watch set empties and resumes when a flow is watched again.
//
// A stall is reported once per episode: a flow that stalls, resumes, and
// stalls again yields two reports. Reports accumulate in stalls() and are
// emitted as kFlowStalled telemetry events (a: flow tag, b: bytes
// delivered).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/scheduler.hpp"
#include "tcp/flow.hpp"

namespace conga::telemetry {
class TraceSink;
}  // namespace conga::telemetry

namespace conga::debug {

struct WatchdogConfig {
  /// A flow whose progress_bytes() is unchanged for this long is stalled.
  sim::TimeNs horizon = sim::milliseconds(50);
  /// How often the watch set is polled. Detection latency is in
  /// [horizon, horizon + poll_interval).
  sim::TimeNs poll_interval = sim::milliseconds(5);
};

struct StallReport {
  std::uint64_t tag = 0;             ///< caller's flow id
  std::uint64_t progress_bytes = 0;  ///< bytes delivered when detected
  sim::TimeNs last_progress = 0;     ///< when progress last advanced
  sim::TimeNs detected = 0;          ///< when the watchdog noticed
};

class LivenessWatchdog final : public tcp::FlowMonitor {
 public:
  LivenessWatchdog(sim::Scheduler& sched, WatchdogConfig cfg = {});

  LivenessWatchdog(const LivenessWatchdog&) = delete;
  LivenessWatchdog& operator=(const LivenessWatchdog&) = delete;

  /// Starts monitoring `flow` under `tag`. The flow must outlive the watch
  /// (unwatch before destroying it).
  void watch(std::uint64_t tag, const tcp::FlowHandle* flow);
  void unwatch(std::uint64_t tag);
  std::size_t watched() const { return watched_.size(); }

  // tcp::FlowMonitor — lets a TrafficGenerator drive watch/unwatch.
  void on_flow_started(std::uint64_t id, const tcp::FlowHandle& flow) override {
    watch(id, &flow);
  }
  void on_flow_finished(std::uint64_t id) override { unwatch(id); }

  const std::vector<StallReport>& stalls() const { return stalls_; }
  std::uint64_t stall_count() const { return stalls_.size(); }
  /// Watched flows currently inside a stall episode.
  std::size_t currently_stalled() const { return currently_stalled_; }

  /// Routes kFlowStalled events to `sink` (nullptr detaches).
  void attach_telemetry(telemetry::TraceSink* sink);

 private:
  struct Watch {
    const tcp::FlowHandle* flow = nullptr;
    std::uint64_t last_bytes = 0;
    sim::TimeNs last_progress = 0;
    bool reported = false;  ///< current episode already reported
  };

  void poll();
  void schedule_poll();

  sim::Scheduler& sched_;
  WatchdogConfig cfg_;
  // Ordered by tag so polling (and hence stall-report order and telemetry)
  // is deterministic regardless of insertion pattern.
  std::map<std::uint64_t, Watch> watched_;
  std::vector<StallReport> stalls_;
  std::size_t currently_stalled_ = 0;
  bool poll_scheduled_ = false;
  telemetry::TraceSink* tele_ = nullptr;
  std::uint32_t tele_comp_ = 0;
};

}  // namespace conga::debug
