#include "runtime/parallel_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

namespace conga::runtime {

namespace {

/// First-error capture shared by the worker threads. The annotations make
/// the discipline checkable: `first_` is only reachable with `mu_` held, so
/// a refactor that touches it lock-free fails the -Wthread-safety lane.
class ErrorSlot {
 public:
  void capture(std::exception_ptr e) CONGA_EXCLUDES(mu_) {
    const core::MutexLock lock(mu_);
    if (!first_) first_ = std::move(e);
  }

  /// The first captured exception (empty if none). Called after all workers
  /// joined; still locks so the annotation story stays uniform.
  std::exception_ptr take() CONGA_EXCLUDES(mu_) {
    const core::MutexLock lock(mu_);
    return first_;
  }

 private:
  core::Mutex mu_;
  std::exception_ptr first_ CONGA_GUARDED_BY(mu_);
};

}  // namespace

int default_jobs() {
  if (const char* env = std::getenv("CONGA_BENCH_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void parallel_for(std::size_t count, int jobs,
                  const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (jobs <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs), count);
  std::atomic<std::size_t> next{0};
  ErrorSlot errors;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(i);
      } catch (...) {
        errors.capture(std::current_exception());
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  if (std::exception_ptr e = errors.take()) std::rethrow_exception(e);
}

}  // namespace conga::runtime
