#include "runtime/parallel_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace conga::runtime {

int default_jobs() {
  if (const char* env = std::getenv("CONGA_BENCH_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void parallel_for(std::size_t count, int jobs,
                  const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (jobs <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs), count);
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace conga::runtime
