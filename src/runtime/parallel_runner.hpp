// Parallel experiment runner.
//
// Every paper figure is a scheme x load x seed grid of fully independent
// simulations: the codebase has no global mutable simulation state (no
// singleton scheduler, per-component RNG streams), so each worker thread can
// own a complete Scheduler/Fabric/Rng and run whole cells concurrently.
// This header provides the small thread-pool primitives the benches build
// on:
//
//   * parallel_for(count, jobs, task)  — runs task(0..count-1) across
//     `jobs` worker threads (inline on the calling thread when jobs <= 1,
//     which is bit-for-bit today's sequential behaviour).
//   * parallel_map<R>(count, jobs, fn) — same, committing fn(i) into slot i
//     of the result vector, so results are in deterministic cell order
//     regardless of completion order.
//
// Determinism: cells are claimed from a shared atomic counter, so the
// *assignment* of cells to threads varies run to run — but each cell is a
// closed simulation whose outputs depend only on its config and seeds, so
// per-cell results (FCT digests, event-trace digests) are identical for any
// jobs value. tools/determinism_audit --jobs N enforces exactly this.
//
// Threading model details live in DESIGN.md ("Threading model").
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace conga::runtime {

/// Worker count implied by the environment: CONGA_BENCH_JOBS if set to a
/// positive integer, else std::thread::hardware_concurrency(), floored at 1.
int default_jobs();

/// Runs task(i) for i in [0, count) using up to `jobs` worker threads.
/// jobs <= 1 (or count <= 1) runs inline on the calling thread in index
/// order — exactly the sequential behaviour. Tasks must not touch shared
/// mutable state (give each cell its own Scheduler/Fabric/Rng). The first
/// exception thrown by a task is rethrown on the calling thread after all
/// workers join.
void parallel_for(std::size_t count, int jobs,
                  const std::function<void(std::size_t)>& task);

/// parallel_for committing results by index: out[i] = fn(i). R must be
/// default-constructible and assignable (ExperimentResult and RunDigests
/// are).
template <typename R>
std::vector<R> parallel_map(std::size_t count, int jobs,
                            const std::function<R(std::size_t)>& fn) {
  std::vector<R> out(count);
  parallel_for(count, jobs, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace conga::runtime
