// In-fabric probe plane (HULA-flavored; cf. Katta et al., SOSR'16).
//
// Each leaf that runs a probe-based policy owns a ProbeAgent. Periodically
// the agent launches one probe *request* per (destination leaf, viable
// uplink); the request is encapsulated like data, so the links it crosses
// fold their DRE utilization into the overlay CE field exactly as they do
// for CONGA — the probe reads max path utilization with no new dataplane
// mechanism. The destination leaf's agent answers with a *reply* carrying
// that measurement back, and the origin folds it into a per-(destination
// leaf, uplink) best-path table with aging. Probes are real packets on real
// links: they queue, serialize, and can be dropped or gray-failed, so probe
// overhead and probe loss are first-class simulation effects.
//
// Divergences from HULA proper (documented in DESIGN.md §12): HULA floods
// one-way probes that switches replicate and aggregate hop by hop; here the
// leaf echoes a request/reply round-trip per uplink instead, which
// distance-vector-lite covers the 2-tier and pod fabrics of this repo
// (spines stay stateless). The table keys on the origin uplink, not a path
// id, so parallel spine downlinks are sampled across rounds by varying the
// probe's wire identity.
#pragma once

#include <cstdint>
#include <vector>

#include "net/leaf_switch.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace conga::telemetry {
class TraceSink;
}  // namespace conga::telemetry

namespace conga::probe {

/// Values of net::ProbeHeader::kind. kNone marks every data packet.
enum class ProbeKind : std::uint8_t { kNone = 0, kRequest = 1, kReply = 2 };

struct ProbeConfig {
  sim::TimeNs period = sim::microseconds(50);  ///< one round per period
  sim::TimeNs start = 0;                       ///< offset of the first round
  /// Rounds stop after this, bounding Scheduler::run() with a probe plane
  /// installed; every experiment window in the repo ends well before.
  sim::TimeNs horizon = sim::seconds(10);
  /// A table entry untouched for this long is stale — treated as unknown,
  /// so a path whose probes die (gray failure, partition) stops attracting
  /// flowlets even though no one withdrew it.
  sim::TimeNs age_after = sim::microseconds(500);
  std::uint32_t probe_bytes = 64;  ///< wire size before encapsulation
};

/// Per-(destination leaf, uplink) path utilization learned from probe
/// replies. kUnknown orders never-seen and stale paths after any measured
/// one, so known-good paths win until the table warms up or re-converges.
class PathTable {
 public:
  static constexpr std::uint8_t kUnknown = 0xff;

  PathTable(int num_leaves, int num_uplinks, sim::TimeNs age_after);

  void update(net::LeafId dst, int uplink, std::uint8_t util,
              sim::TimeNs now);

  /// The learned utilization, or kUnknown when never updated or stale.
  std::uint8_t metric(net::LeafId dst, int uplink, sim::TimeNs now) const;

  /// Time of the last update for (dst, uplink); -1 if never updated.
  sim::TimeNs updated_at(net::LeafId dst, int uplink) const;

  std::uint64_t updates() const { return updates_; }

 private:
  struct Entry {
    std::uint8_t util = 0;
    sim::TimeNs at = -1;
  };

  std::size_t index(net::LeafId dst, int uplink) const {
    return static_cast<std::size_t>(dst) * num_uplinks_ +
           static_cast<std::size_t>(uplink);
  }

  std::size_t num_uplinks_;
  sim::TimeNs age_after_;
  std::vector<Entry> entries_;
  std::uint64_t updates_ = 0;
};

/// One leaf's half of the probe plane: the periodic request fan-out, the
/// reply echo, and the PathTable fed by returning replies. Owned by the
/// policy that uses it (lb_ext::HulaLb), so fabrics running other policies
/// allocate nothing and schedule nothing.
class ProbeAgent {
 public:
  ProbeAgent(net::LeafSwitch& leaf, int num_leaves, const ProbeConfig& cfg);
  ~ProbeAgent();

  ProbeAgent(const ProbeAgent&) = delete;
  ProbeAgent& operator=(const ProbeAgent&) = delete;

  /// Schedules the first probe round (idempotent).
  void start();

  /// Consumes a probe packet addressed to this leaf: answers requests,
  /// folds replies into the table.
  void on_probe_packet(net::PacketPtr pkt, sim::TimeNs now);

  const PathTable& table() const { return table_; }
  const ProbeConfig& config() const { return cfg_; }

  std::uint64_t requests_sent() const { return requests_sent_; }
  std::uint64_t replies_sent() const { return replies_sent_; }
  std::uint64_t replies_received() const { return replies_received_; }

  /// Routes probe events to `sink` under component "<leaf>/probe".
  void attach_telemetry(telemetry::TraceSink* sink);

 private:
  void tick();
  void send_request(net::LeafId dst, int uplink, sim::TimeNs now);
  void send_reply(const net::Packet& req, sim::TimeNs now);

  net::LeafSwitch& leaf_;
  int num_leaves_;
  ProbeConfig cfg_;
  PathTable table_;
  sim::EventId pending_ = sim::kInvalidEventId;
  std::uint32_t round_ = 0;     ///< varies the request wire identity
  std::uint32_t reply_rr_ = 0;  ///< rotates the reply's return uplink
  bool started_ = false;
  std::uint64_t requests_sent_ = 0;
  std::uint64_t replies_sent_ = 0;
  std::uint64_t replies_received_ = 0;
  telemetry::TraceSink* tele_ = nullptr;
  std::uint32_t tele_comp_ = 0;
};

}  // namespace conga::probe
