#include "probe/probe_plane.hpp"

#include <cassert>

#include "telemetry/telemetry.hpp"

namespace conga::probe {

PathTable::PathTable(int num_leaves, int num_uplinks, sim::TimeNs age_after)
    : num_uplinks_(static_cast<std::size_t>(num_uplinks)),
      age_after_(age_after),
      entries_(static_cast<std::size_t>(num_leaves) *
               static_cast<std::size_t>(num_uplinks)) {}

void PathTable::update(net::LeafId dst, int uplink, std::uint8_t util,
                       sim::TimeNs now) {
  Entry& e = entries_[index(dst, uplink)];
  e.util = util;
  e.at = now;
  ++updates_;
}

std::uint8_t PathTable::metric(net::LeafId dst, int uplink,
                               sim::TimeNs now) const {
  const Entry& e = entries_[index(dst, uplink)];
  if (e.at < 0 || now - e.at > age_after_) return kUnknown;
  return e.util;
}

sim::TimeNs PathTable::updated_at(net::LeafId dst, int uplink) const {
  return entries_[index(dst, uplink)].at;
}

ProbeAgent::ProbeAgent(net::LeafSwitch& leaf, int num_leaves,
                       const ProbeConfig& cfg)
    : leaf_(leaf),
      num_leaves_(num_leaves),
      cfg_(cfg),
      table_(num_leaves, static_cast<int>(leaf.uplinks().size()),
             cfg.age_after) {}

ProbeAgent::~ProbeAgent() {
  // install_lb() can replace the owning policy mid-run; the pending tick
  // must not outlive the agent.
  if (pending_ != sim::kInvalidEventId) leaf_.scheduler().cancel(pending_);
}

void ProbeAgent::start() {
  if (started_) return;
  started_ = true;
  pending_ = leaf_.scheduler().schedule_after(cfg_.start + cfg_.period,
                                              [this] { tick(); });
}

void ProbeAgent::tick() {
  pending_ = sim::kInvalidEventId;
  const sim::TimeNs now = leaf_.scheduler().now();
  for (net::LeafId dst = 0; dst < num_leaves_; ++dst) {
    if (dst == leaf_.id()) continue;
    for (int u = 0; u < static_cast<int>(leaf_.uplinks().size()); ++u) {
      if (!leaf_.uplink_reaches(u, dst)) continue;
      send_request(dst, u, now);
    }
  }
  ++round_;
  if (now + cfg_.period <= cfg_.horizon) {
    pending_ = leaf_.scheduler().schedule_after(cfg_.period,
                                                [this] { tick(); });
  }
}

void ProbeAgent::send_request(net::LeafId dst, int uplink, sim::TimeNs now) {
  net::PacketPtr p = net::make_packet();
  p->flow.src_host = static_cast<net::HostId>(leaf_.id());
  p->flow.dst_host = static_cast<net::HostId>(dst);
  // Vary the wire identity each round so spine ECMP spreads successive
  // probes across parallel downlinks; the table keeps the freshest reply.
  p->flow.src_port = static_cast<std::uint16_t>(round_);
  p->flow.dst_port = static_cast<std::uint16_t>(uplink);
  p->size_bytes = cfg_.probe_bytes;
  p->probe.kind = static_cast<std::uint8_t>(ProbeKind::kRequest);
  p->probe.origin_leaf = leaf_.id();
  p->probe.origin_uplink = static_cast<std::uint8_t>(uplink);
  ++requests_sent_;
  telemetry::emit(tele_, telemetry::EventType::kProbeSent, tele_comp_, now,
                  static_cast<std::uint64_t>(dst),
                  static_cast<std::uint64_t>(uplink));
  leaf_.send_probe(std::move(p), uplink, dst);
}

void ProbeAgent::send_reply(const net::Packet& req, sim::TimeNs /*now*/) {
  const net::LeafId origin = req.probe.origin_leaf;
  int viable[16];
  int n = 0;
  for (int i = 0; i < static_cast<int>(leaf_.uplinks().size()); ++i) {
    if (leaf_.uplink_reaches(i, origin)) viable[n++] = i;
  }
  if (n == 0) return;  // origin unreachable: the request's entry goes stale
  // Replies rotate over the viable uplinks instead of consulting the load
  // balancer: control traffic must not touch the policy's flowlet or queue
  // state, and rotation keeps the return load spread deterministically.
  const int u = viable[reply_rr_++ % static_cast<std::uint32_t>(n)];
  net::PacketPtr p = net::make_packet();
  p->flow.src_host = static_cast<net::HostId>(leaf_.id());
  p->flow.dst_host = static_cast<net::HostId>(origin);
  p->flow.src_port = static_cast<std::uint16_t>(reply_rr_);
  p->flow.dst_port = req.probe.origin_uplink;
  p->size_bytes = cfg_.probe_bytes;
  p->probe.kind = static_cast<std::uint8_t>(ProbeKind::kReply);
  p->probe.origin_leaf = origin;
  p->probe.origin_uplink = req.probe.origin_uplink;
  // The forward path's measurement: max DRE utilization the overlay
  // accumulated on the way here (quantized exactly like CONGA's CE).
  p->probe.util = req.overlay.ce;
  ++replies_sent_;
  leaf_.send_probe(std::move(p), u, origin);
}

void ProbeAgent::on_probe_packet(net::PacketPtr pkt, sim::TimeNs now) {
  if (pkt->probe.kind == static_cast<std::uint8_t>(ProbeKind::kRequest)) {
    telemetry::emit(tele_, telemetry::EventType::kProbeReceived, tele_comp_,
                    now, static_cast<std::uint64_t>(pkt->probe.origin_leaf),
                    pkt->overlay.ce);
    send_reply(*pkt, now);
    return;
  }
  if (pkt->probe.kind == static_cast<std::uint8_t>(ProbeKind::kReply)) {
    ++replies_received_;
    assert(pkt->probe.origin_leaf == leaf_.id());
    const int uplink = pkt->probe.origin_uplink;
    if (uplink < 0 || uplink >= static_cast<int>(leaf_.uplinks().size())) {
      return;
    }
    // The replying leaf is the destination this path was probed toward.
    const net::LeafId dst = pkt->overlay.src_leaf;
    table_.update(dst, uplink, pkt->probe.util, now);
    telemetry::emit(
        tele_, telemetry::EventType::kProbeTableUpdate, tele_comp_, now,
        (static_cast<std::uint64_t>(dst) << 8) |
            static_cast<std::uint64_t>(uplink),
        pkt->probe.util);
  }
}

void ProbeAgent::attach_telemetry(telemetry::TraceSink* sink) {
  tele_ = sink;
  if (sink != nullptr) {
    tele_comp_ = sink->intern_component(leaf_.name() + "/probe");
  }
}

}  // namespace conga::probe
