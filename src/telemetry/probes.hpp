// Probe registry and periodic sampler.
//
// A probe is a named read-only view onto a live component metric:
//  * counter — a monotonically nondecreasing std::uint64_t (bytes sent,
//    packets forwarded, retransmits). Sampled as (value, delta).
//  * gauge   — an instantaneous double (queue occupancy, DRE utilization).
//
// Probes cost nothing until a PeriodicSampler reads them: registration just
// stores a closure. The sampler keeps in-memory series (what the benches
// consume) and additionally records kCounterSample / kGaugeSample events
// into the TraceSink when the kProbe category is enabled, which is what the
// JSONL exporters and conga_trace slice.
//
// Sampling schedule: the first sample fires at `start` (counters use it as
// the delta baseline and contribute no delta), then every `interval` while
// now + interval <= end — the same schedule the old stats::QueueSampler
// used, so migrated benches reproduce their previous sample series exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "sim/scheduler.hpp"
#include "stats/summary.hpp"
#include "telemetry/telemetry.hpp"

namespace conga::telemetry {

class ProbeRegistry {
 public:
  using GaugeFn = std::function<double()>;
  using CounterFn = std::function<std::uint64_t()>;

  enum class Kind : std::uint8_t { kCounter, kGauge };

  struct Probe {
    std::string name;
    Kind kind;
    CounterFn counter;  ///< set when kind == kCounter
    GaugeFn gauge;      ///< set when kind == kGauge
  };

  /// Registers a probe; returns its dense index. Names should be unique
  /// ("<component>/<metric>"); a duplicate name replaces nothing and simply
  /// coexists (lookup returns the first).
  int add_counter(std::string name, CounterFn fn);
  int add_gauge(std::string name, GaugeFn fn);

  /// Index of the first probe named `name`, or -1.
  int find(std::string_view name) const;

  std::size_t size() const {
    thread_.check();
    return probes_.size();
  }
  const Probe& probe(int index) const {
    thread_.check();
    return probes_[static_cast<std::size_t>(index)];
  }

 private:
  // Thread-confined like the TraceSink that owns this registry: probes are
  // registered and sampled on the simulation's one thread (see
  // core::ThreadChecker).
  core::ThreadChecker thread_;
  std::vector<Probe> probes_ CONGA_GUARDED_BY(thread_);
};

/// Samples a set of probes on a fixed schedule. Series are always collected
/// in memory; trace events are additionally recorded when the sink's kProbe
/// category is enabled.
class PeriodicSampler {
 public:
  /// Samples `probe_indices` (empty = every probe registered in
  /// `sink.probes()` at construction time) every `interval` during
  /// [start, end]. The sampler must outlive the scheduler run.
  PeriodicSampler(sim::Scheduler& sched, TraceSink& sink, sim::TimeNs interval,
                  sim::TimeNs start, sim::TimeNs end,
                  std::vector<int> probe_indices = {});

  std::size_t probe_count() const { return probes_.size(); }
  const std::string& probe_name(std::size_t i) const;

  /// Sample timestamps (shared by every probe).
  const std::vector<sim::TimeNs>& times() const { return times_; }

  /// Gauge probes: the sampled values. Counter probes: the per-interval
  /// deltas (one fewer entry than times(), since the first sample is the
  /// baseline).
  const std::vector<double>& series(std::size_t i) const {
    return series_[i];
  }

  /// Summary over series(i) — percentiles for gauge occupancy CDFs etc.
  stats::Summary summary(std::size_t i) const;

  /// Convenience: summary of the probe named `name` (aborts if absent).
  stats::Summary summary(std::string_view name) const;

 private:
  struct Sampled {
    int index;           ///< into the registry
    ComponentId comp;    ///< sink component ("probe:<name>")
    std::uint64_t last;  ///< previous counter value
    bool primed;         ///< counter baseline taken
  };

  void tick();

  sim::Scheduler& sched_;
  TraceSink& sink_;
  sim::TimeNs interval_;
  sim::TimeNs end_;
  std::vector<Sampled> probes_;
  std::vector<sim::TimeNs> times_;
  std::vector<std::vector<double>> series_;
};

}  // namespace conga::telemetry
