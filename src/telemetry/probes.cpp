#include "telemetry/probes.hpp"

#include <bit>
#include <cassert>
#include <utility>

namespace conga::telemetry {

int ProbeRegistry::add_counter(std::string name, CounterFn fn) {
  thread_.check();
  Probe p;
  p.name = std::move(name);
  p.kind = Kind::kCounter;
  p.counter = std::move(fn);
  probes_.push_back(std::move(p));
  return static_cast<int>(probes_.size()) - 1;
}

int ProbeRegistry::add_gauge(std::string name, GaugeFn fn) {
  thread_.check();
  Probe p;
  p.name = std::move(name);
  p.kind = Kind::kGauge;
  p.gauge = std::move(fn);
  probes_.push_back(std::move(p));
  return static_cast<int>(probes_.size()) - 1;
}

int ProbeRegistry::find(std::string_view name) const {
  thread_.check();
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    if (probes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

PeriodicSampler::PeriodicSampler(sim::Scheduler& sched, TraceSink& sink,
                                 sim::TimeNs interval, sim::TimeNs start,
                                 sim::TimeNs end,
                                 std::vector<int> probe_indices)
    : sched_(sched), sink_(sink), interval_(interval), end_(end) {
  if (probe_indices.empty()) {
    for (std::size_t i = 0; i < sink_.probes().size(); ++i) {
      probe_indices.push_back(static_cast<int>(i));
    }
  }
  for (const int idx : probe_indices) {
    Sampled s;
    s.index = idx;
    // Probe samples get their own component namespace so a link's probe
    // series never interleaves with its dataplane events in one ring.
    s.comp =
        sink_.intern_component("probe:" + sink_.probes().probe(idx).name);
    s.last = 0;
    s.primed = false;
    probes_.push_back(s);
  }
  series_.resize(probes_.size());
  sched_.schedule_at(start, [this] { tick(); });
}

const std::string& PeriodicSampler::probe_name(std::size_t i) const {
  return sink_.probes().probe(probes_[i].index).name;
}

void PeriodicSampler::tick() {
  const sim::TimeNs now = sched_.now();
  times_.push_back(now);
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    Sampled& s = probes_[i];
    const ProbeRegistry::Probe& p = sink_.probes().probe(s.index);
    if (p.kind == ProbeRegistry::Kind::kGauge) {
      const double v = p.gauge();
      series_[i].push_back(v);
      emit(&sink_, EventType::kGaugeSample, s.comp, now,
           std::bit_cast<std::uint64_t>(v));
    } else {
      const std::uint64_t v = p.counter();
      if (s.primed) {
        series_[i].push_back(static_cast<double>(v - s.last));
        emit(&sink_, EventType::kCounterSample, s.comp, now, v, v - s.last);
      } else {
        s.primed = true;
        emit(&sink_, EventType::kCounterSample, s.comp, now, v, 0);
      }
      s.last = v;
    }
  }
  if (now + interval_ <= end_) {
    sched_.schedule_after(interval_, [this] { tick(); });
  }
}

stats::Summary PeriodicSampler::summary(std::size_t i) const {
  stats::Summary out;
  for (const double v : series_[i]) out.add(v);
  return out;
}

stats::Summary PeriodicSampler::summary(std::string_view name) const {
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    if (sink_.probes().probe(probes_[i].index).name == name) {
      return summary(i);
    }
  }
  assert(false && "unknown probe name");
  return {};
}

}  // namespace conga::telemetry
