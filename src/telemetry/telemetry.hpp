// Telemetry core: typed event tracing with per-component ring buffers.
//
// Every layer of the simulator (queues, links, DRE, flowlet table, CONGA
// tables, TCP, flows) can publish typed, timestamped events to a TraceSink.
// Recording is double-gated:
//  * compile time — the CONGA_TELEMETRY CMake option (default ON) compiles
//    the emit() helper down to nothing when OFF, so the hot paths carry zero
//    instructions;
//  * run time — a per-category enable mask, so a build with telemetry
//    compiled in still skips disabled categories with one load+test.
//
// Determinism: a TraceSink is strictly passive. It never schedules events,
// never touches simulation state, and assigns its own monotone sequence
// numbers, so attaching one cannot perturb the packet schedule — the FCT and
// event-trace digests of an instrumented run are bit-identical to an
// uninstrumented one. The sink maintains a streaming order-sensitive digest
// over *all* recorded events (including ones later overwritten in a ring),
// which the determinism auditor compares across runs and --jobs counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "sim/time.hpp"
#include "stats/digest.hpp"

namespace conga::telemetry {

class ProbeRegistry;

/// Event categories, used as bits in the runtime enable mask.
enum class Category : std::uint8_t {
  kQueue = 0,   ///< enqueue / dequeue / drop / ECN mark
  kLink,        ///< up / down / withdraw / restore / degrade
  kDre,         ///< DRE register updates
  kFlowlet,     ///< flowlet create / expire / path change
  kCongaTable,  ///< congestion-to-leaf / from-leaf table updates
  kTcp,         ///< cwnd discontinuities, RTO, retransmits
  kFlow,        ///< flow start / finish / stall reports
  kProbe,       ///< periodic counter / gauge samples
  kFault,       ///< injected fault transitions (src/fault/)
  kCampaign,    ///< campaign cache decisions (src/campaign/)
  kSupervisor,  ///< campaign supervisor child-process lifecycle
  kCount,
};

constexpr std::uint32_t category_bit(Category c) {
  return 1U << static_cast<unsigned>(c);
}
constexpr std::uint32_t kAllCategories =
    (1U << static_cast<unsigned>(Category::kCount)) - 1;

enum class EventType : std::uint8_t {
  // kQueue — a: packet bytes, b: queue bytes after the operation.
  kQueueEnqueue = 0,
  kQueueDequeue,
  kQueueDrop,
  kQueueEcnMark,
  // kLink — dataplane (a: 1 = up after the change) and control plane
  // (withdraw/restore, a: spine, b: leaf). Degrade: a: permille of full rate.
  kLinkUp,
  kLinkDown,
  kLinkWithdrawn,
  kLinkRestored,
  kLinkDegraded,
  // kDre — a: bytes added, b: register value (double bit pattern).
  kDreUpdate,
  // kFlowlet — a: flow hash, b: port (create/path-change: new port).
  kFlowletCreate,
  kFlowletExpire,
  kFlowletPathChange,
  // kCongaTable — a: (leaf << 8) | lbtag, b: metric.
  kCongaToLeafUpdate,
  kCongaFromLeafUpdate,
  // kTcp — a: flow hash, b: cwnd in packets / retransmit count.
  kTcpCwnd,
  kTcpRto,
  kTcpRetransmit,
  // kFlow — a: flow hash, b: flow size / bytes delivered.
  kFlowStart,
  kFlowFinish,
  // kProbe — counter: a value, b delta; gauge: a value (double bit pattern).
  kCounterSample,
  kGaugeSample,
  // Cause-tagged link drops (kLink) — a: packet bytes, b: cause detail
  // (gray: drop probability in ppm; others 0). Queue-overflow drops keep
  // their own kQueueDrop kind, so every drop in a trace names its cause.
  kLinkDropAdminDown,  ///< handed to an administratively-down link
  kLinkDropGray,       ///< injected gray-failure Bernoulli loss
  kLinkDropCorrupt,    ///< transmitted but corrupted on the wire
  // kFault — injected fault transitions, emitted by the FaultInjector.
  // a: 1 = fault asserted / link down, 0 = cleared / link up. b: spec detail
  // (flap: (leaf<<16)|(spine<<8)|parallel; degrade: rate permille;
  // gray: drop ppm in high 32 bits | corrupt ppm low; reboot:
  // (kind<<16)|index; stale feedback: (leaf<<16)|(spine<<8)|parallel).
  kFaultLinkFlap,
  kFaultDegrade,
  kFaultGray,
  kFaultSwitchReboot,
  kFaultStaleFeedback,
  // kFlow — watchdog stall report. a: flow tag, b: bytes delivered so far.
  kFlowStalled,
  // Probe plane (kProbe; src/probe/) — sent: a destination leaf, b uplink;
  // received (request arriving at its target leaf): a origin leaf, b the max
  // path utilization the overlay accumulated; table update (reply back at
  // the origin): a (destination leaf << 8) | uplink, b utilization.
  kProbeSent,
  kProbeReceived,
  kProbeTableUpdate,
  // kFlowlet — Presto flowcell boundary: a flow hash, b the next port.
  kFlowcellRotate,
  // kCampaign — cache decisions, emitted by the campaign runner on the main
  // thread after the parallel section (the sink is thread-confined).
  // a: cell index in canonical expansion order, b: FNV-1a of the cell key
  // (miss after a corrupt entry: b's top bit set — a healed recomputation).
  kCampaignCellHit,
  kCampaignCellMiss,
  kCampaignStoreWrite,
  kCampaignVerifyRecompute,
  // kSupervisor — child-process supervision decisions, emitted by the
  // campaign supervisor on the main thread as they happen. a: cell index in
  // canonical expansion order. b: spawn: attempt number (1-based);
  // exit: (attempt << 32) | wait status encoding (exit code, or 0x100|signal
  // for signal deaths); timeout: attempt; retry: (attempt << 32) | backoff
  // delay in ms; quarantine: total attempts consumed.
  kSupervisorSpawn,
  kSupervisorExit,
  kSupervisorTimeout,
  kSupervisorRetry,
  kSupervisorQuarantine,
  kTypeCount,
};

constexpr Category category_of(EventType t) {
  switch (t) {
    case EventType::kQueueEnqueue:
    case EventType::kQueueDequeue:
    case EventType::kQueueDrop:
    case EventType::kQueueEcnMark:
      return Category::kQueue;
    case EventType::kLinkUp:
    case EventType::kLinkDown:
    case EventType::kLinkWithdrawn:
    case EventType::kLinkRestored:
    case EventType::kLinkDegraded:
    case EventType::kLinkDropAdminDown:
    case EventType::kLinkDropGray:
    case EventType::kLinkDropCorrupt:
      return Category::kLink;
    case EventType::kDreUpdate:
      return Category::kDre;
    case EventType::kFlowletCreate:
    case EventType::kFlowletExpire:
    case EventType::kFlowletPathChange:
    case EventType::kFlowcellRotate:
      return Category::kFlowlet;
    case EventType::kCongaToLeafUpdate:
    case EventType::kCongaFromLeafUpdate:
      return Category::kCongaTable;
    case EventType::kTcpCwnd:
    case EventType::kTcpRto:
    case EventType::kTcpRetransmit:
      return Category::kTcp;
    case EventType::kFlowStart:
    case EventType::kFlowFinish:
    case EventType::kFlowStalled:
      return Category::kFlow;
    case EventType::kFaultLinkFlap:
    case EventType::kFaultDegrade:
    case EventType::kFaultGray:
    case EventType::kFaultSwitchReboot:
    case EventType::kFaultStaleFeedback:
      return Category::kFault;
    case EventType::kCampaignCellHit:
    case EventType::kCampaignCellMiss:
    case EventType::kCampaignStoreWrite:
    case EventType::kCampaignVerifyRecompute:
      return Category::kCampaign;
    case EventType::kSupervisorSpawn:
    case EventType::kSupervisorExit:
    case EventType::kSupervisorTimeout:
    case EventType::kSupervisorRetry:
    case EventType::kSupervisorQuarantine:
      return Category::kSupervisor;
    default:
      return Category::kProbe;
  }
}

/// Stable wire names, used by the exporters and the conga_trace CLI.
const char* event_type_name(EventType t);
const char* category_name(Category c);
/// Inverse lookups for CLI filters; return false on unknown names.
bool parse_event_type(std::string_view name, EventType& out);
bool parse_category(std::string_view name, Category& out);

/// Identifies a registered component (a link, a flowlet table, ...) within
/// one TraceSink. Dense, assigned in registration order.
using ComponentId = std::uint32_t;
constexpr ComponentId kInvalidComponent = 0xffffffffU;

/// One recorded event. 32 bytes; `a` and `b` are type-dependent payloads
/// (see EventType comments). `seq` is the sink's own monotone counter, so a
/// global ordering of events can be recovered from the per-component rings.
struct Event {
  sim::TimeNs t = 0;
  std::uint64_t seq = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  ComponentId comp = kInvalidComponent;
  EventType type = EventType::kTypeCount;
};

struct TraceSinkConfig {
  /// Per-component ring capacity in events; the ring overwrites its oldest
  /// entries once full (the digest still covers every event ever recorded).
  std::size_t ring_capacity = 8192;
  std::uint32_t category_mask = kAllCategories;
};

class TraceSink {
 public:
  explicit TraceSink(TraceSinkConfig cfg = {});
  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Returns the id for `name`, registering it on first use. Registration
  /// order is deterministic because the simulator is single-threaded.
  ComponentId intern_component(std::string_view name);
  /// Lookup without registering; kInvalidComponent if absent.
  ComponentId find_component(std::string_view name) const;
  std::size_t component_count() const {
    thread_.check();
    return components_.size();
  }
  const std::string& component_name(ComponentId id) const {
    thread_.check();
    return components_[id].name;
  }

  bool enabled(Category c) const {
    return (category_mask_ & category_bit(c)) != 0;
  }
  void set_category_mask(std::uint32_t mask) { category_mask_ = mask; }
  std::uint32_t category_mask() const { return category_mask_; }

  /// Records unconditionally — callers are expected to have checked
  /// enabled() (emit() below does). Never schedules or mutates sim state.
  void record(EventType type, ComponentId comp, sim::TimeNs t,
              std::uint64_t a = 0, std::uint64_t b = 0);

  /// Events still held in `comp`'s ring, oldest first.
  std::vector<Event> events(ComponentId comp) const;
  /// Events of every component merged into global (seq) order.
  std::vector<Event> all_events() const;

  /// Total events recorded / overwritten-by-ring-wrap, across components.
  std::uint64_t total_recorded() const {
    thread_.check();
    return total_recorded_;
  }
  std::uint64_t total_overwritten() const {
    thread_.check();
    return total_overwritten_;
  }
  std::uint64_t recorded(ComponentId comp) const {
    thread_.check();
    return components_[comp].recorded;
  }

  /// Streaming order-sensitive digest over every event ever recorded plus
  /// the component name table. Byte-identical across runs iff the
  /// instrumented run is deterministic.
  std::uint64_t digest() const;

  ProbeRegistry& probes() { return *probes_; }
  const ProbeRegistry& probes() const { return *probes_; }

  const TraceSinkConfig& config() const { return cfg_; }

 private:
  struct Component {
    std::string name;
    std::vector<Event> ring;   ///< circular once `recorded` > capacity
    std::uint64_t recorded = 0;
  };

  // The recording state is thread-confined, not locked: each simulation
  // (parallel-runner cells included) owns its sink on one thread. The
  // ThreadChecker makes that confinement a checkable capability — every
  // method touching the rings asserts it, -Wthread-safety rejects accesses
  // that skip the assert, and invariant builds verify the thread at runtime.
  // cfg_ / category_mask_ are configuration, set before the run; they stay
  // outside the guard so emit()'s mask test stays a bare load.
  TraceSinkConfig cfg_;
  std::uint32_t category_mask_;
  core::ThreadChecker thread_;
  std::vector<Component> components_ CONGA_GUARDED_BY(thread_);
  std::unordered_map<std::string, ComponentId> by_name_
      CONGA_GUARDED_BY(thread_);
  std::uint64_t next_seq_ CONGA_GUARDED_BY(thread_) = 1;
  std::uint64_t total_recorded_ CONGA_GUARDED_BY(thread_) = 0;
  std::uint64_t total_overwritten_ CONGA_GUARDED_BY(thread_) = 0;
  stats::TraceDigest digest_ CONGA_GUARDED_BY(thread_);
  std::unique_ptr<ProbeRegistry> probes_;
};

/// The instrumentation entry point. Compiles to nothing when the
/// CONGA_TELEMETRY gate is off; otherwise one null check + one mask test
/// before anything is written.
inline void emit(TraceSink* sink, EventType type, ComponentId comp,
                 sim::TimeNs t, std::uint64_t a = 0, std::uint64_t b = 0) {
#ifdef CONGA_TELEMETRY
  if (sink != nullptr && sink->enabled(category_of(type))) {
    sink->record(type, comp, t, a, b);
  }
#else
  (void)sink;
  (void)type;
  (void)comp;
  (void)t;
  (void)a;
  (void)b;
#endif
}

/// True when instrumentation call sites are compiled in.
constexpr bool compiled_in() {
#ifdef CONGA_TELEMETRY
  return true;
#else
  return false;
#endif
}

}  // namespace conga::telemetry
