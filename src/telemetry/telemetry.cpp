#include "telemetry/telemetry.hpp"

#include <algorithm>

#include "telemetry/probes.hpp"

namespace conga::telemetry {

namespace {

// Index-aligned with EventType. These are wire names: the JSONL/CSV
// exporters and conga_trace filters use them, so renames break traces.
constexpr const char* kTypeNames[] = {
    "queue_enqueue",     "queue_dequeue",  "queue_drop",
    "queue_ecn_mark",    "link_up",        "link_down",
    "link_withdrawn",    "link_restored",  "link_degraded",
    "dre_update",        "flowlet_create", "flowlet_expire",
    "flowlet_path_change", "conga_to_leaf_update", "conga_from_leaf_update",
    "tcp_cwnd",          "tcp_rto",        "tcp_retransmit",
    "flow_start",        "flow_finish",    "counter_sample",
    "gauge_sample",      "link_drop_admin_down", "link_drop_gray",
    "link_drop_corrupt", "fault_link_flap", "fault_degrade",
    "fault_gray",        "fault_switch_reboot", "fault_stale_feedback",
    "flow_stalled",      "probe_sent",     "probe_received",
    "probe_table_update", "flowcell_rotate", "campaign_cell_hit",
    "campaign_cell_miss", "campaign_store_write", "campaign_verify_recompute",
    "supervisor_spawn",   "supervisor_exit",  "supervisor_timeout",
    "supervisor_retry",   "supervisor_quarantine",
};
static_assert(sizeof(kTypeNames) / sizeof(kTypeNames[0]) ==
                  static_cast<std::size_t>(EventType::kTypeCount),
              "kTypeNames out of sync with EventType");

constexpr const char* kCategoryNames[] = {
    "queue", "link", "dre", "flowlet", "conga_table", "tcp", "flow", "probe",
    "fault", "campaign", "supervisor",
};
static_assert(sizeof(kCategoryNames) / sizeof(kCategoryNames[0]) ==
                  static_cast<std::size_t>(Category::kCount),
              "kCategoryNames out of sync with Category");

}  // namespace

const char* event_type_name(EventType t) {
  const auto i = static_cast<std::size_t>(t);
  return i < static_cast<std::size_t>(EventType::kTypeCount) ? kTypeNames[i]
                                                             : "unknown";
}

const char* category_name(Category c) {
  const auto i = static_cast<std::size_t>(c);
  return i < static_cast<std::size_t>(Category::kCount) ? kCategoryNames[i]
                                                        : "unknown";
}

bool parse_event_type(std::string_view name, EventType& out) {
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(EventType::kTypeCount); ++i) {
    if (name == kTypeNames[i]) {
      out = static_cast<EventType>(i);
      return true;
    }
  }
  return false;
}

bool parse_category(std::string_view name, Category& out) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Category::kCount);
       ++i) {
    if (name == kCategoryNames[i]) {
      out = static_cast<Category>(i);
      return true;
    }
  }
  return false;
}

TraceSink::TraceSink(TraceSinkConfig cfg)
    : cfg_(cfg),
      category_mask_(cfg.category_mask),
      probes_(std::make_unique<ProbeRegistry>()) {
  if (cfg_.ring_capacity == 0) cfg_.ring_capacity = 1;
}

TraceSink::~TraceSink() = default;

ComponentId TraceSink::intern_component(std::string_view name) {
  thread_.check();
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) return it->second;
  const auto id = static_cast<ComponentId>(components_.size());
  components_.push_back(Component{std::string(name), {}, 0});
  by_name_.emplace(components_.back().name, id);
  // The name table is part of the run's fingerprint: a different set (or
  // registration order) of components is a different instrumented run.
  digest_.add(0x636f6d70ULL);  // "comp" sentinel
  for (const char ch : components_.back().name) {
    digest_.add(static_cast<std::uint64_t>(ch));
  }
  return id;
}

ComponentId TraceSink::find_component(std::string_view name) const {
  thread_.check();
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kInvalidComponent : it->second;
}

void TraceSink::record(EventType type, ComponentId comp, sim::TimeNs t,
                       std::uint64_t a, std::uint64_t b) {
  thread_.check();
  Component& c = components_[comp];
  Event e;
  e.t = t;
  e.seq = next_seq_++;
  e.a = a;
  e.b = b;
  e.comp = comp;
  e.type = type;

  if (c.ring.size() < cfg_.ring_capacity) {
    c.ring.push_back(e);
  } else {
    // Circular overwrite of the oldest entry.
    c.ring[c.recorded % cfg_.ring_capacity] = e;
    ++total_overwritten_;
  }
  ++c.recorded;
  ++total_recorded_;

  digest_.add(static_cast<std::uint64_t>(type));
  digest_.add(static_cast<std::uint64_t>(comp));
  digest_.add(static_cast<std::uint64_t>(t));
  digest_.add(a);
  digest_.add(b);
}

std::vector<Event> TraceSink::events(ComponentId comp) const {
  thread_.check();
  const Component& c = components_[comp];
  std::vector<Event> out;
  out.reserve(c.ring.size());
  if (c.recorded <= cfg_.ring_capacity) {
    out = c.ring;
  } else {
    const std::size_t head = c.recorded % cfg_.ring_capacity;
    out.insert(out.end(), c.ring.begin() + static_cast<std::ptrdiff_t>(head),
               c.ring.end());
    out.insert(out.end(), c.ring.begin(),
               c.ring.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

std::vector<Event> TraceSink::all_events() const {
  thread_.check();
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(total_recorded_, components_.size() *
                                                   cfg_.ring_capacity)));
  for (ComponentId id = 0; id < components_.size(); ++id) {
    const std::vector<Event> ev = events(id);
    out.insert(out.end(), ev.begin(), ev.end());
  }
  std::sort(out.begin(), out.end(),
            [](const Event& x, const Event& y) { return x.seq < y.seq; });
  return out;
}

std::uint64_t TraceSink::digest() const {
  thread_.check();
  return digest_.value();
}

}  // namespace conga::telemetry
