#include "telemetry/export.hpp"

#include <bit>
#include <cinttypes>
#include <vector>

namespace conga::telemetry {

namespace {

/// Escapes the characters that can occur in component names. Names here are
/// machine-generated ("up:l1s1p0", "leaf0/flowlets"), so this only needs to
/// be correct, not fast.
void write_json_string(std::FILE* out, const std::string& s) {
  std::fputc('"', out);
  for (const char c : s) {
    switch (c) {
      case '"':
        std::fputs("\\\"", out);
        break;
      case '\\':
        std::fputs("\\\\", out);
        break;
      case '\n':
        std::fputs("\\n", out);
        break;
      case '\t':
        std::fputs("\\t", out);
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::fprintf(out, "\\u%04x", static_cast<unsigned>(c));
        } else {
          std::fputc(c, out);
        }
    }
  }
  std::fputc('"', out);
}

void write_event_jsonl(std::FILE* out, const TraceSink& sink,
                       const Event& e) {
  std::fprintf(out, "{\"t\":%" PRId64 ",\"seq\":%" PRIu64 ",\"comp\":",
               static_cast<std::int64_t>(e.t), e.seq);
  write_json_string(out, sink.component_name(e.comp));
  std::fprintf(out, ",\"cat\":\"%s\",\"type\":\"%s\",\"a\":%" PRIu64
                    ",\"b\":%" PRIu64,
               category_name(category_of(e.type)), event_type_name(e.type),
               e.a, e.b);
  if (e.type == EventType::kGaugeSample) {
    std::fprintf(out, ",\"value\":%.17g", std::bit_cast<double>(e.a));
  } else if (e.type == EventType::kCounterSample) {
    std::fprintf(out, ",\"value\":%" PRIu64 ",\"delta\":%" PRIu64, e.a, e.b);
  }
  std::fputs("}\n", out);
}

}  // namespace

void write_jsonl(const TraceSink& sink, std::FILE* out) {
  std::fprintf(out,
               "{\"meta\":{\"schema\":\"conga-trace-v1\",\"ring_capacity\":%zu"
               ",\"category_mask\":%u,\"total_recorded\":%" PRIu64
               ",\"total_overwritten\":%" PRIu64 ",\"components\":[",
               sink.config().ring_capacity, sink.category_mask(),
               sink.total_recorded(), sink.total_overwritten());
  for (ComponentId id = 0; id < sink.component_count(); ++id) {
    if (id != 0) std::fputc(',', out);
    write_json_string(out, sink.component_name(id));
  }
  std::fputs("]}}\n", out);
  for (const Event& e : sink.all_events()) {
    write_event_jsonl(out, sink, e);
  }
}

void write_csv(const TraceSink& sink, std::FILE* out) {
  std::fputs("t,seq,comp,cat,type,a,b\n", out);
  for (const Event& e : sink.all_events()) {
    std::fprintf(out, "%" PRId64 ",%" PRIu64 ",%s,%s,%s,%" PRIu64
                      ",%" PRIu64 "\n",
                 static_cast<std::int64_t>(e.t), e.seq,
                 sink.component_name(e.comp).c_str(),
                 category_name(category_of(e.type)), event_type_name(e.type),
                 e.a, e.b);
  }
}

bool write_jsonl_file(const TraceSink& sink, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  write_jsonl(sink, f);
  std::fclose(f);
  return true;
}

bool write_csv_file(const TraceSink& sink, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  write_csv(sink, f);
  std::fclose(f);
  return true;
}

}  // namespace conga::telemetry
