// Trace exporters: JSONL (one JSON object per line) and CSV.
//
// JSONL layout (schema "conga-trace-v1"):
//   line 1:  {"meta":{"schema":"conga-trace-v1","ring_capacity":...,
//             "category_mask":...,"total_recorded":...,
//             "total_overwritten":...,"components":[...]}}
//   line 2+: {"t":<ns>,"seq":<n>,"comp":"<name>","cat":"<category>",
//             "type":"<event type>","a":<u64>,"b":<u64>}
//            gauge_sample lines add   "value":<double>
//            counter_sample lines add "value":<u64>,"delta":<u64>
//
// Events are exported in global seq order (the merge of every component
// ring), so a JSONL trace replays the run's recorded history in order.
// No external dependencies: the writers emit the JSON by hand.
#pragma once

#include <cstdio>
#include <string>

#include "telemetry/telemetry.hpp"

namespace conga::telemetry {

void write_jsonl(const TraceSink& sink, std::FILE* out);
void write_csv(const TraceSink& sink, std::FILE* out);

/// Convenience wrappers; return false if the file cannot be opened.
bool write_jsonl_file(const TraceSink& sink, const std::string& path);
bool write_csv_file(const TraceSink& sink, const std::string& path);

}  // namespace conga::telemetry
