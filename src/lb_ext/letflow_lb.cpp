#include "lb_ext/letflow_lb.hpp"

#include "telemetry/telemetry.hpp"

namespace conga::lb_ext {

void LetFlowLb::attach_telemetry(telemetry::TraceSink* sink) {
  if (sink == nullptr) {
    flowlets_.set_telemetry(nullptr, 0);
    return;
  }
  flowlets_.set_telemetry(sink,
                          sink->intern_component(leaf_.name() + "/flowlets"));
}

}  // namespace conga::lb_ext
