// Presto-style flowcell spraying (He et al., SIGCOMM'15). The sender-side
// half: each flow is chopped into fixed-size flowcells (64 KB, one TSO
// burst) and successive cells are round-robined over the viable uplinks —
// congestion-oblivious, near-perfect coarse balancing for flows longer
// than one cell. The receiver-side half Presto implements in GRO is stood
// in for by the reordering ledger (tcp/reorder_*): the simulator's sinks
// already resequence, so what the ledger records is the reordering Presto's
// shim would have had to absorb.
//
// Divergence (DESIGN.md §12): real Presto source-routes each cell over a
// spine path chosen by the edge; here the leaf picks the uplink and the
// spine stays ECMP, matching how every other policy in this repo divides
// leaf and spine roles.
#pragma once

#include <cstdint>
#include <vector>

#include "lb/load_balancer.hpp"
#include "net/leaf_switch.hpp"

namespace conga::lb_ext {

struct PrestoConfig {
  std::uint64_t flowcell_bytes = 64 * 1024;  ///< cell size (one TSO burst)
  std::size_t num_entries = 64 * 1024;       ///< flow-state table slots
};

class PrestoLb final : public lb::LoadBalancer {
 public:
  PrestoLb(net::LeafSwitch& leaf, const PrestoConfig& cfg = {});

  int select_uplink(const net::Packet& pkt, net::LeafId dst_leaf,
                    sim::TimeNs now) override;
  void attach_telemetry(telemetry::TraceSink* sink) override;
  std::string name() const override { return "Presto"; }

  std::uint64_t rotations() const { return rotations_; }
  const PrestoConfig& config() const { return cfg_; }

 private:
  /// Per-flow-hash cell state. Like the flowlet table, collisions merge
  /// flows onto one cell counter (they just rotate a little early).
  struct Cell {
    std::int32_t port = -1;
    std::uint64_t bytes = 0;
  };

  net::LeafSwitch& leaf_;
  PrestoConfig cfg_;
  std::vector<Cell> cells_;
  std::uint64_t rotations_ = 0;
  telemetry::TraceSink* tele_ = nullptr;
  std::uint32_t tele_comp_ = 0;
};

}  // namespace conga::lb_ext
