// LetFlow (Vanini et al., NSDI'17): flowlet switching with *no* congestion
// input — on flowlet expiry the next uplink is picked uniformly at random.
// The insight reproduced here is that flowlet gaps themselves are elastic:
// flows on congested paths naturally fragment into more flowlets and so get
// re-rolled more often, which passively shifts load away from congestion.
// Congestion awareness is exactly what separates CONGA from this baseline.
#pragma once

#include "core/flowlet_table.hpp"
#include "lb/load_balancer.hpp"
#include "net/leaf_switch.hpp"

namespace conga::lb_ext {

struct LetFlowConfig {
  /// LetFlow's own flowlet table. The gap is set explicitly here rather
  /// than inherited from FlowletTableConfig's default, so retuning CONGA's
  /// Tfl can never silently retune LetFlow (per-policy gap ownership).
  core::FlowletTableConfig flowlet;

  LetFlowConfig() { flowlet.gap = sim::microseconds(500); }
};

class LetFlowLb final : public lb::LoadBalancer {
 public:
  LetFlowLb(net::LeafSwitch& leaf, const LetFlowConfig& cfg)
      : leaf_(leaf), flowlets_(cfg.flowlet) {
    flowlets_.set_label(leaf.name() + "/flowlets");
  }

  int select_uplink(const net::Packet& pkt, net::LeafId dst_leaf,
                    sim::TimeNs now) override {
    const net::FlowKey key = pkt.wire_key();
    const int cached = flowlets_.lookup(key, now);
    if (cached >= 0 && cached < static_cast<int>(leaf_.uplinks().size()) &&
        leaf_.uplink_reaches(cached, dst_leaf)) {
      return cached;
    }
    int viable[16];
    int n = 0;
    for (int i = 0; i < static_cast<int>(leaf_.uplinks().size()); ++i) {
      if (leaf_.uplink_reaches(i, dst_leaf)) viable[n++] = i;
    }
    const int pick = viable[leaf_.rng().index(static_cast<std::size_t>(n))];
    flowlets_.install(key, pick, now);
    return pick;
  }

  void attach_telemetry(telemetry::TraceSink* sink) override;

  std::string name() const override { return "LetFlow"; }

  core::FlowletTable& flowlets() { return flowlets_; }

 private:
  net::LeafSwitch& leaf_;
  core::FlowletTable flowlets_;
};

}  // namespace conga::lb_ext
