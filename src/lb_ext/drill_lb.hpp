// DRILL (Ghorbani et al., SIGCOMM'17): per-packet micro load balancing from
// local state only. Every packet samples `d` random uplinks, adds the port
// remembered as last-best for the destination leaf, and sends on the one
// with the smallest live egress queue — power-of-two-choices with memory,
// DRILL(d, m=1). No flowlet table, no remote state: reordering is the price,
// measured by the receiver-side reordering ledger (tcp/reorder_*).
//
// The leaf half reads leaf uplink queues; installing the "drill" policy via
// lb_ext::install_policy() also flips the spines to the matching
// queue-aware forwarding (SpineSwitch::enable_drill).
#pragma once

#include <vector>

#include "lb/load_balancer.hpp"
#include "net/leaf_switch.hpp"

namespace conga::lb_ext {

struct DrillConfig {
  int samples = 2;  ///< d: random candidates per packet (clamped to [1, 6])
};

class DrillLb final : public lb::LoadBalancer {
 public:
  DrillLb(net::LeafSwitch& leaf, int num_leaves, const DrillConfig& cfg = {})
      : leaf_(leaf),
        samples_(cfg.samples < 1 ? 1 : (cfg.samples > 6 ? 6 : cfg.samples)),
        best_(static_cast<std::size_t>(num_leaves), -1) {}

  int select_uplink(const net::Packet& /*pkt*/, net::LeafId dst_leaf,
                    sim::TimeNs /*now*/) override {
    int viable[16];
    int n = 0;
    for (int i = 0; i < static_cast<int>(leaf_.uplinks().size()); ++i) {
      if (leaf_.uplink_reaches(i, dst_leaf)) viable[n++] = i;
    }
    const auto d = static_cast<std::size_t>(dst_leaf);
    if (n == 1) {
      best_[d] = viable[0];
      return viable[0];
    }
    const int mem = best_[d];
    const bool mem_ok = mem >= 0 &&
                        mem < static_cast<int>(leaf_.uplinks().size()) &&
                        leaf_.uplink_reaches(mem, dst_leaf);
    int cand[7];
    int m = 0;
    for (int s = 0; s < samples_; ++s) {
      cand[m++] = viable[leaf_.rng().index(static_cast<std::size_t>(n))];
    }
    if (mem_ok) cand[m++] = mem;
    int winner = -1;
    std::uint64_t winner_q = 0;
    for (int c = 0; c < m; ++c) {
      const std::uint64_t q = leaf_.uplinks()[static_cast<std::size_t>(cand[c])]
                                  .link->queue()
                                  .bytes();
      if (winner < 0 || q < winner_q) {
        winner = cand[c];
        winner_q = q;
      } else if (q == winner_q && winner != cand[c]) {
        // Pinned tie-break (DrillTieBreak test): the remembered port wins,
        // then the lowest uplink index.
        if (mem_ok && cand[c] == mem) {
          winner = mem;
        } else if (!(mem_ok && winner == mem) && cand[c] < winner) {
          winner = cand[c];
        }
      }
    }
    best_[d] = winner;
    return winner;
  }

  /// The remembered last-best port toward `dst_leaf` (-1 before the first
  /// decision); exposed for the tie-break tests.
  int remembered(net::LeafId dst_leaf) const {
    return best_[static_cast<std::size_t>(dst_leaf)];
  }

  std::string name() const override { return "DRILL"; }

 private:
  net::LeafSwitch& leaf_;
  int samples_;
  std::vector<int> best_;  ///< per-destination-leaf last winner
};

}  // namespace conga::lb_ext
