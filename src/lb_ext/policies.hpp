// The policy registry: every load balancer the simulator can run, keyed by
// the command-line name the tools and benches accept. One table drives
// conga_sim/conga_trace/chaos_audit --lb validation, the ext_lb_comparison
// sweep, and the README policy matrix, so a policy added here shows up
// everywhere at once.
#pragma once

#include <string>
#include <vector>

#include "net/fabric.hpp"

namespace conga::lb_ext {

struct PolicyInfo {
  const char* name;     ///< command-line name ("letflow", "drill", ...)
  const char* summary;  ///< one-line description for help text / docs
  /// Whether the policy also switches the spines to queue-aware forwarding
  /// (SpineSwitch::enable_drill); applied by install_policy().
  bool spine_drill;
};

/// All registered policies, in canonical (documentation) order.
const std::vector<PolicyInfo>& policy_catalog();

/// Catalog entry for `name`, or nullptr if unknown.
const PolicyInfo* find_policy(const std::string& name);

/// The registered names joined with ", " — for usage/error messages.
std::string policy_names();

/// Factory for `name`; an empty std::function if unknown.
net::Fabric::LbFactory make_policy(const std::string& name);

/// Installs `name` on `fabric` (leaf balancers plus the spine mode from the
/// catalog). Returns false — leaving the fabric untouched — if unknown.
bool install_policy(net::Fabric& fabric, const std::string& name);

}  // namespace conga::lb_ext
