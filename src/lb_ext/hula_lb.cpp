#include "lb_ext/hula_lb.hpp"

#include "telemetry/telemetry.hpp"

namespace conga::lb_ext {

HulaLb::HulaLb(net::LeafSwitch& leaf, int num_leaves, const HulaConfig& cfg)
    : leaf_(leaf), flowlets_(cfg.flowlet), agent_(leaf, num_leaves, cfg.probe) {
  flowlets_.set_label(leaf.name() + "/flowlets");
  agent_.start();
}

int HulaLb::decide(const net::FlowKey& key, net::LeafId dst_leaf,
                   sim::TimeNs now) {
  int best[16];
  int nbest = 0;
  std::uint8_t best_metric = 0;
  for (int i = 0; i < static_cast<int>(leaf_.uplinks().size()); ++i) {
    if (!leaf_.uplink_reaches(i, dst_leaf)) continue;
    const std::uint8_t m = agent_.table().metric(dst_leaf, i, now);
    if (nbest == 0 || m < best_metric) {
      best_metric = m;
      best[0] = i;
      nbest = 1;
    } else if (m == best_metric) {
      best[nbest++] = i;
    }
  }
  // Same tie-break as CONGA §3.5: a flow only moves off its previous port
  // for a strictly better one; fresh ties break randomly.
  const int last = flowlets_.last_port(key);
  for (int i = 0; i < nbest; ++i) {
    if (best[i] == last) return last;
  }
  return best[leaf_.rng().index(static_cast<std::size_t>(nbest))];
}

int HulaLb::select_uplink(const net::Packet& pkt, net::LeafId dst_leaf,
                          sim::TimeNs now) {
  const net::FlowKey key = pkt.wire_key();
  const int cached = flowlets_.lookup(key, now);
  if (cached >= 0 && cached < static_cast<int>(leaf_.uplinks().size()) &&
      leaf_.uplink_reaches(cached, dst_leaf)) {
    return cached;
  }
  const int pick = decide(key, dst_leaf, now);
  flowlets_.install(key, pick, now);
  return pick;
}

void HulaLb::on_probe_packet(net::PacketPtr pkt, sim::TimeNs now) {
  agent_.on_probe_packet(std::move(pkt), now);
}

void HulaLb::attach_telemetry(telemetry::TraceSink* sink) {
  agent_.attach_telemetry(sink);
  if (sink == nullptr) {
    flowlets_.set_telemetry(nullptr, 0);
    return;
  }
  flowlets_.set_telemetry(sink,
                          sink->intern_component(leaf_.name() + "/flowlets"));
}

}  // namespace conga::lb_ext
