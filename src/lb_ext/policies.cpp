#include "lb_ext/policies.hpp"

#include <memory>

#include "lb/factories.hpp"

namespace conga::lb_ext {

const std::vector<PolicyInfo>& policy_catalog() {
  static const std::vector<PolicyInfo> kCatalog = {
      {"ecmp", "hash each flow onto one uplink (baseline)", false},
      {"conga", "CONGA: congestion-aware flowlets (paper §3)", false},
      {"conga-flow", "CONGA with one decision per flow (paper §5)", false},
      {"spray", "per-packet round-robin spraying", false},
      {"local", "flowlets on least-loaded local uplink (DRE only)", false},
      {"local-eq", "flowlets, random among locally-equal uplinks", false},
      {"weighted", "flowlets, static equal WCMP weights", false},
      {"letflow", "LetFlow: flowlets re-rolled uniformly at random", false},
      {"drill", "DRILL: per-packet two-choices over local queues", true},
      {"presto", "Presto: 64KB flowcells round-robined per flow", false},
      {"hula", "HULA-style: flowlets on probe-learned best paths", false},
  };
  return kCatalog;
}

const PolicyInfo* find_policy(const std::string& name) {
  for (const PolicyInfo& p : policy_catalog()) {
    if (name == p.name) return &p;
  }
  return nullptr;
}

std::string policy_names() {
  std::string out;
  for (const PolicyInfo& p : policy_catalog()) {
    if (!out.empty()) out += ", ";
    out += p.name;
  }
  return out;
}

net::Fabric::LbFactory make_policy(const std::string& name) {
  if (name == "ecmp") return lb::ecmp();
  if (name == "conga") return core::conga();
  if (name == "conga-flow") return core::conga_flow();
  if (name == "spray") return lb::spray();
  if (name == "local") return lb::local_aware();
  if (name == "local-eq") return lb::local_equal();
  if (name == "weighted") {
    // Equal static weights, one per uplink: WCMP degenerates to ECMP-over-
    // flowlets, the useful "weighted" baseline on any symmetric topology.
    return [](net::LeafSwitch& leaf, const net::TopologyConfig& topo,
              std::uint64_t) -> std::unique_ptr<lb::LoadBalancer> {
      const std::size_t uplinks = static_cast<std::size_t>(topo.num_spines) *
                                  static_cast<std::size_t>(topo.links_per_spine);
      return std::make_unique<lb::WeightedLb>(
          leaf, std::vector<double>(uplinks, 1.0), core::FlowletTableConfig{});
    };
  }
  if (name == "letflow") return letflow();
  if (name == "drill") return drill();
  if (name == "presto") return presto();
  if (name == "hula") return hula();
  return {};
}

bool install_policy(net::Fabric& fabric, const std::string& name) {
  const PolicyInfo* p = find_policy(name);
  if (p == nullptr) return false;
  net::Fabric::LbFactory factory = make_policy(name);
  if (!factory) return false;
  fabric.set_spine_drill(p->spine_drill);
  fabric.install_lb(std::move(factory));
  return true;
}

}  // namespace conga::lb_ext
