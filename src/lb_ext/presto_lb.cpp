#include "lb_ext/presto_lb.hpp"

#include "telemetry/telemetry.hpp"

namespace conga::lb_ext {

namespace {
// Decorrelates the starting-uplink choice from the table index, which uses
// the raw flow hash.
constexpr std::uint64_t kStartSalt = 0x5ca1ab1e0ddba11ULL;
}  // namespace

PrestoLb::PrestoLb(net::LeafSwitch& leaf, const PrestoConfig& cfg)
    : leaf_(leaf), cfg_(cfg), cells_(cfg.num_entries) {}

int PrestoLb::select_uplink(const net::Packet& pkt, net::LeafId dst_leaf,
                            sim::TimeNs now) {
  int viable[16];
  int n = 0;
  for (int i = 0; i < static_cast<int>(leaf_.uplinks().size()); ++i) {
    if (leaf_.uplink_reaches(i, dst_leaf)) viable[n++] = i;
  }
  const std::uint64_t h = pkt.wire_key().hash();
  Cell& c = cells_[h % cfg_.num_entries];
  const bool cell_ok = c.port >= 0 &&
                       c.port < static_cast<int>(leaf_.uplinks().size()) &&
                       leaf_.uplink_reaches(c.port, dst_leaf);
  if (!cell_ok) {
    // Fresh cell: flows start at a hash-chosen offset so simultaneous flows
    // don't march the same round-robin sequence in lockstep.
    c.port = viable[net::mix64(h ^ kStartSalt) % static_cast<std::uint64_t>(n)];
    c.bytes = 0;
  }
  const int out = c.port;
  c.bytes += pkt.size_bytes;
  if (c.bytes >= cfg_.flowcell_bytes) {
    // The cell is full: the *next* packet starts a new cell on the next
    // viable uplink, cyclically. This packet still rides the old port.
    int pos = 0;
    for (int i = 0; i < n; ++i) {
      if (viable[i] == out) {
        pos = i;
        break;
      }
    }
    c.port = viable[(pos + 1) % n];
    c.bytes = 0;
    ++rotations_;
    telemetry::emit(tele_, telemetry::EventType::kFlowcellRotate, tele_comp_,
                    now, h, static_cast<std::uint64_t>(c.port));
  }
  return out;
}

void PrestoLb::attach_telemetry(telemetry::TraceSink* sink) {
  tele_ = sink;
  if (sink != nullptr) {
    tele_comp_ = sink->intern_component(leaf_.name() + "/flowcells");
  }
}

}  // namespace conga::lb_ext
