// HULA-style probe-informed flowlet routing (Katta et al., SOSR'16).
// Forwarding state is learned entirely from the probe plane: a ProbeAgent
// keeps a per-(destination leaf, uplink) best-path utilization table fresh,
// and each new flowlet takes the uplink with the lowest learned metric.
// Unlike CONGA there is no piggybacked feedback and no per-packet CE use by
// the decision — congestion information travels only in probes, so its
// freshness is bounded by the probe period and its cost is real probe
// packets on real links.
//
// Divergences from the paper are documented in DESIGN.md §12 (request/reply
// echo instead of switch-replicated one-way probes; leaf-resident tables).
#pragma once

#include "core/flowlet_table.hpp"
#include "lb/load_balancer.hpp"
#include "net/leaf_switch.hpp"
#include "probe/probe_plane.hpp"

namespace conga::lb_ext {

struct HulaConfig {
  probe::ProbeConfig probe;           ///< probe-plane cadence and aging
  core::FlowletTableConfig flowlet;   ///< HULA keeps its own gap (below)

  /// HULA's evaluation uses a much finer flowlet gap than CONGA (it leans
  /// on the probe plane to keep short flowlets well-routed); 100us here,
  /// owned per-policy so CONGA's Tfl never leaks in.
  HulaConfig() { flowlet.gap = sim::microseconds(100); }
};

class HulaLb final : public lb::LoadBalancer {
 public:
  HulaLb(net::LeafSwitch& leaf, int num_leaves, const HulaConfig& cfg = {});

  int select_uplink(const net::Packet& pkt, net::LeafId dst_leaf,
                    sim::TimeNs now) override;
  void on_probe_packet(net::PacketPtr pkt, sim::TimeNs now) override;
  void attach_telemetry(telemetry::TraceSink* sink) override;
  std::string name() const override { return "HULA"; }

  /// The probe-table decision in isolation (no flowlet cache); for tests.
  int decide(const net::FlowKey& key, net::LeafId dst_leaf, sim::TimeNs now);

  probe::ProbeAgent& agent() { return agent_; }
  core::FlowletTable& flowlets() { return flowlets_; }

 private:
  net::LeafSwitch& leaf_;
  core::FlowletTable flowlets_;
  probe::ProbeAgent agent_;
};

}  // namespace conga::lb_ext
