// Per-packet random spraying (cf. DRB / packet-spraying baselines, §2.4,
// §8). Optimal static balance per link, but reorders heavily — equivalent to
// CONGA with a zero flowlet gap and no congestion awareness.
#pragma once

#include "lb/load_balancer.hpp"
#include "net/leaf_switch.hpp"

namespace conga::lb {

class SprayLb final : public LoadBalancer {
 public:
  explicit SprayLb(net::LeafSwitch& leaf) : leaf_(leaf) {}

  int select_uplink(const net::Packet& /*pkt*/, net::LeafId dst_leaf,
                    sim::TimeNs /*now*/) override {
    int viable[16];
    int n = 0;
    for (int i = 0; i < static_cast<int>(leaf_.uplinks().size()); ++i) {
      if (leaf_.uplink_reaches(i, dst_leaf)) viable[n++] = i;
    }
    return viable[leaf_.rng().index(static_cast<std::size_t>(n))];
  }

  std::string name() const override { return "Spray"; }

 private:
  net::LeafSwitch& leaf_;
};

}  // namespace conga::lb
