// Local congestion-aware balancing (the strawman of §2.4, in the spirit of
// Flare / LocalFlow): picks, per flowlet, the uplink whose *local* DRE is
// least loaded, ignoring downstream congestion. The paper shows this is
// *worse than ECMP* under asymmetry (Fig 2b: 80 Gbps vs ECMP's 90), because
// TCP backing off on the constrained path makes the local link look idle and
// attracts yet more traffic. Included to reproduce that pathology.
#pragma once

#include "core/flowlet_table.hpp"
#include "lb/load_balancer.hpp"
#include "net/leaf_switch.hpp"

namespace conga::lb {

class LocalAwareLb final : public LoadBalancer {
 public:
  LocalAwareLb(net::LeafSwitch& leaf, const core::FlowletTableConfig& fcfg)
      : leaf_(leaf), flowlets_(fcfg) {}

  int select_uplink(const net::Packet& pkt, net::LeafId dst_leaf,
                    sim::TimeNs now) override {
    const net::FlowKey key = pkt.wire_key();
    const int cached = flowlets_.lookup(key, now);
    if (cached >= 0 && cached < static_cast<int>(leaf_.uplinks().size()) &&
        leaf_.uplink_reaches(cached, dst_leaf)) {
      return cached;
    }
    const auto& ups = leaf_.uplinks();
    int best = -1;
    double best_u = 0;
    for (int i = 0; i < static_cast<int>(ups.size()); ++i) {
      if (!leaf_.uplink_reaches(i, dst_leaf)) continue;
      const double u =
          ups[static_cast<std::size_t>(i)].link->dre().utilization(now);
      if (best < 0 || u < best_u) {
        best_u = u;
        best = i;
      }
    }
    flowlets_.install(key, best, now);
    return best;
  }

  std::string name() const override { return "Local"; }

 private:
  net::LeafSwitch& leaf_;
  core::FlowletTable flowlets_;
};

/// Strict equal-split local balancing (the LocalFlow / packet-scatter model
/// of §2.4): per flowlet, pick the uplink that has transmitted the fewest
/// bytes, enforcing an equal byte split regardless of downstream capacity.
/// This is the baseline for which the paper derives the 80-of-100G Fig 2(b)
/// equilibrium: the constrained path throttles its TCP flows, and equal
/// splitting then drags the healthy path down to the same rate.
class LocalEqualLb final : public LoadBalancer {
 public:
  LocalEqualLb(net::LeafSwitch& leaf, const core::FlowletTableConfig& fcfg)
      : leaf_(leaf), flowlets_(fcfg) {}

  int select_uplink(const net::Packet& pkt, net::LeafId dst_leaf,
                    sim::TimeNs now) override {
    const net::FlowKey key = pkt.wire_key();
    const int cached = flowlets_.lookup(key, now);
    if (cached >= 0 && cached < static_cast<int>(leaf_.uplinks().size()) &&
        leaf_.uplink_reaches(cached, dst_leaf)) {
      return cached;
    }
    const auto& ups = leaf_.uplinks();
    int best = -1;
    std::uint64_t best_bytes = 0;
    for (int i = 0; i < static_cast<int>(ups.size()); ++i) {
      if (!leaf_.uplink_reaches(i, dst_leaf)) continue;
      const std::uint64_t b =
          ups[static_cast<std::size_t>(i)].link->bytes_sent();
      if (best < 0 || b < best_bytes) {
        best_bytes = b;
        best = i;
      }
    }
    flowlets_.install(key, best, now);
    return best;
  }

  std::string name() const override { return "LocalEq"; }

 private:
  net::LeafSwitch& leaf_;
  core::FlowletTable flowlets_;
};

}  // namespace conga::lb
