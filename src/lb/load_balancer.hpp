// Strategy interface for the source-leaf uplink choice.
//
// A LeafSwitch owns one LoadBalancer and consults it for every packet it
// encapsulates toward the fabric. Congestion-aware schemes additionally get
// (a) a hook on every fabric packet received at the destination leaf — where
// CONGA harvests CE values and piggybacked feedback — and (b) an annotation
// hook to stamp overlay fields on outgoing packets.
//
// Implementations in src/lb/ (ECMP, packet spray, local-aware, weighted) and
// src/core/ (CONGA itself). Downstream users can plug their own scheme; see
// examples/custom_lb.cpp.
#pragma once

#include <string>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace conga::net {
class LeafSwitch;
}

namespace conga::telemetry {
class TraceSink;
}  // namespace conga::telemetry

namespace conga::lb {

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  /// Chooses an index into the leaf's live uplink list for a packet headed to
  /// `dst_leaf`. Called for every fabric-bound packet.
  virtual int select_uplink(const net::Packet& pkt, net::LeafId dst_leaf,
                            sim::TimeNs now) = 0;

  /// Destination-leaf hook: invoked for every encapsulated packet received
  /// from the fabric, before decapsulation.
  virtual void on_fabric_receive(const net::Packet& /*pkt*/,
                                 sim::TimeNs /*now*/) {}

  /// Source-leaf hook: stamps overlay fields (LBTag, CE, feedback) on a
  /// packet after `uplink` was selected.
  virtual void annotate(net::Packet& /*pkt*/, int /*uplink*/,
                        sim::TimeNs /*now*/) {}

  /// Probe-plane hook: a probe packet (pkt->probe.kind != 0) addressed to
  /// this leaf. The balancer takes ownership; schemes without a probe plane
  /// let it drop here. Never invoked for data packets, so policies that run
  /// no probe plane pay nothing.
  virtual void on_probe_packet(net::PacketPtr /*pkt*/, sim::TimeNs /*now*/) {}

  /// Telemetry hook: route the balancer's internal events (flowlet table,
  /// congestion tables, ...) to `sink`. Stateless schemes ignore it.
  virtual void attach_telemetry(telemetry::TraceSink* /*sink*/) {}

  virtual std::string name() const = 0;
};

}  // namespace conga::lb
