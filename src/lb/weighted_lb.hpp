// Static weighted random balancing (oblivious routing, §2.4): each flowlet
// picks uplink i with probability weight_i. With weights proportional to
// downstream capacity this fixes Fig 2's asymmetry — but, as Fig 3 shows, no
// static weighting can be right for every traffic matrix, which is the
// paper's argument for congestion feedback. Included to reproduce Fig 3.
#pragma once

#include <vector>

#include "core/flowlet_table.hpp"
#include "lb/load_balancer.hpp"
#include "net/leaf_switch.hpp"

namespace conga::lb {

class WeightedLb final : public LoadBalancer {
 public:
  /// `weights` must have one non-negative entry per leaf uplink.
  WeightedLb(net::LeafSwitch& leaf, std::vector<double> weights,
             const core::FlowletTableConfig& fcfg);

  int select_uplink(const net::Packet& pkt, net::LeafId dst_leaf,
                    sim::TimeNs now) override;

  std::string name() const override { return "Weighted"; }

 private:
  net::LeafSwitch& leaf_;
  std::vector<double> cumulative_;  ///< normalized CDF over uplinks
  core::FlowletTable flowlets_;
};

}  // namespace conga::lb
