// Ready-made LoadBalancer factories for Fabric::install_lb.
//
// Each factory returns a callable creating one balancer per leaf; the
// experiment harnesses pass them around as values so a scenario can be
// re-run per scheme:
//
//   fabric.install_lb(lb::ecmp());
//   fabric.install_lb(core::conga());                       // Tfl = 500us
//   fabric.install_lb(core::conga(make_conga_flow_config()));  // CONGA-Flow
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/conga_lb.hpp"
#include "lb/ecmp_lb.hpp"
#include "lb/local_aware_lb.hpp"
#include "lb/spray_lb.hpp"
#include "lb/weighted_lb.hpp"
#include "lb_ext/drill_lb.hpp"
#include "lb_ext/hula_lb.hpp"
#include "lb_ext/letflow_lb.hpp"
#include "lb_ext/presto_lb.hpp"
#include "net/fabric.hpp"

namespace conga::lb {

inline net::Fabric::LbFactory ecmp() {
  return [](net::LeafSwitch& leaf, const net::TopologyConfig&,
            std::uint64_t seed) -> std::unique_ptr<LoadBalancer> {
    return std::make_unique<EcmpLb>(leaf, seed);
  };
}

inline net::Fabric::LbFactory spray() {
  return [](net::LeafSwitch& leaf, const net::TopologyConfig&,
            std::uint64_t) -> std::unique_ptr<LoadBalancer> {
    return std::make_unique<SprayLb>(leaf);
  };
}

inline net::Fabric::LbFactory local_aware(
    core::FlowletTableConfig fcfg = {}) {
  return [fcfg](net::LeafSwitch& leaf, const net::TopologyConfig&,
                std::uint64_t) -> std::unique_ptr<LoadBalancer> {
    return std::make_unique<LocalAwareLb>(leaf, fcfg);
  };
}

inline net::Fabric::LbFactory local_equal(core::FlowletTableConfig fcfg = {}) {
  return [fcfg](net::LeafSwitch& leaf, const net::TopologyConfig&,
                std::uint64_t) -> std::unique_ptr<LoadBalancer> {
    return std::make_unique<LocalEqualLb>(leaf, fcfg);
  };
}

/// `weights` has one entry per uplink (same weights on every leaf).
inline net::Fabric::LbFactory weighted(std::vector<double> weights,
                                       core::FlowletTableConfig fcfg = {}) {
  return [weights, fcfg](net::LeafSwitch& leaf, const net::TopologyConfig&,
                         std::uint64_t) -> std::unique_ptr<LoadBalancer> {
    return std::make_unique<WeightedLb>(leaf, weights, fcfg);
  };
}

}  // namespace conga::lb

namespace conga::core {

inline net::Fabric::LbFactory conga(CongaConfig cfg = {},
                                    std::string name = "CONGA") {
  return [cfg, name](net::LeafSwitch& leaf, const net::TopologyConfig& topo,
                     std::uint64_t) -> std::unique_ptr<lb::LoadBalancer> {
    return std::make_unique<CongaLb>(leaf, topo.num_leaves, cfg, name);
  };
}

/// CONGA-Flow: one congestion-aware decision per flow (§5 "Schemes
/// compared").
inline net::Fabric::LbFactory conga_flow(
    sim::TimeNs gap = sim::milliseconds(13)) {
  return conga(make_conga_flow_config(gap), "CONGA-Flow");
}

}  // namespace conga::core

// Competitor schemes (src/lb_ext/). Name-keyed lookup over all of these
// lives in lb_ext/policies.hpp; use install_policy() instead of install_lb()
// for schemes that also need a spine-side mode (DRILL).
namespace conga::lb_ext {

inline net::Fabric::LbFactory letflow(LetFlowConfig cfg = {}) {
  return [cfg](net::LeafSwitch& leaf, const net::TopologyConfig&,
               std::uint64_t) -> std::unique_ptr<lb::LoadBalancer> {
    return std::make_unique<LetFlowLb>(leaf, cfg);
  };
}

/// Leaf half only — pair with Fabric::set_spine_drill(true) (or use
/// install_policy("drill")) for the full scheme.
inline net::Fabric::LbFactory drill(DrillConfig cfg = {}) {
  return [cfg](net::LeafSwitch& leaf, const net::TopologyConfig& topo,
               std::uint64_t) -> std::unique_ptr<lb::LoadBalancer> {
    return std::make_unique<DrillLb>(leaf, topo.num_leaves, cfg);
  };
}

inline net::Fabric::LbFactory presto(PrestoConfig cfg = {}) {
  return [cfg](net::LeafSwitch& leaf, const net::TopologyConfig&,
               std::uint64_t) -> std::unique_ptr<lb::LoadBalancer> {
    return std::make_unique<PrestoLb>(leaf, cfg);
  };
}

inline net::Fabric::LbFactory hula(HulaConfig cfg = {}) {
  return [cfg](net::LeafSwitch& leaf, const net::TopologyConfig& topo,
               std::uint64_t) -> std::unique_ptr<lb::LoadBalancer> {
    return std::make_unique<HulaLb>(leaf, topo.num_leaves, cfg);
  };
}

}  // namespace conga::lb_ext
