// ECMP: static hash of the 5-tuple onto the uplinks — the paper's primary
// baseline. Purely local, congestion-oblivious, one decision per flow (every
// packet of a flow hashes identically).
#pragma once

#include <cstdint>

#include "lb/load_balancer.hpp"
#include "net/leaf_switch.hpp"

namespace conga::lb {

class EcmpLb final : public LoadBalancer {
 public:
  explicit EcmpLb(net::LeafSwitch& leaf, std::uint64_t seed)
      : leaf_(leaf), seed_(seed) {}

  int select_uplink(const net::Packet& pkt, net::LeafId dst_leaf,
                    sim::TimeNs /*now*/) override {
    // Hash over the uplinks that are valid next hops for this destination.
    int viable[16];
    int n = 0;
    for (int i = 0; i < static_cast<int>(leaf_.uplinks().size()); ++i) {
      if (leaf_.uplink_reaches(i, dst_leaf)) viable[n++] = i;
    }
    return viable[net::mix64(pkt.wire_key().hash() ^ seed_) %
                  static_cast<std::uint64_t>(n)];
  }

  std::string name() const override { return "ECMP"; }

 private:
  net::LeafSwitch& leaf_;
  std::uint64_t seed_;
};

}  // namespace conga::lb
