#include "lb/weighted_lb.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace conga::lb {

WeightedLb::WeightedLb(net::LeafSwitch& leaf, std::vector<double> weights,
                       const core::FlowletTableConfig& fcfg)
    : leaf_(leaf), flowlets_(fcfg) {
  // Weights are stated for a leaf with the full uplink complement; a leaf
  // that lost uplinks (failures) falls back to an equal split — a static
  // scheme has no principled way to redistribute them anyway (§2.4).
  if (weights.size() != leaf.uplinks().size()) {
    weights.assign(leaf.uplinks().size(), 1.0);
  }
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) {
    weights.assign(leaf.uplinks().size(), 1.0);
    total = static_cast<double>(weights.size());
  }
  cumulative_.resize(weights.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] / total;
    cumulative_[i] = acc;
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

int WeightedLb::select_uplink(const net::Packet& pkt, net::LeafId dst_leaf,
                              sim::TimeNs now) {
  const net::FlowKey key = pkt.wire_key();
  const int cached = flowlets_.lookup(key, now);
  if (cached >= 0 && cached < static_cast<int>(leaf_.uplinks().size()) &&
      leaf_.uplink_reaches(cached, dst_leaf)) {
    return cached;
  }
  // Draw proportionally to the weights of the uplinks that can reach the
  // destination (the static weights renormalize over survivors).
  const int n = static_cast<int>(cumulative_.size());
  double total = 0;
  for (int i = 0; i < n; ++i) {
    if (leaf_.uplink_reaches(i, dst_leaf)) {
      total += cumulative_[static_cast<std::size_t>(i)] -
               (i > 0 ? cumulative_[static_cast<std::size_t>(i) - 1] : 0.0);
    }
  }
  double u = leaf_.rng().uniform() * total;
  int chosen = -1;
  for (int i = 0; i < n; ++i) {
    if (!leaf_.uplink_reaches(i, dst_leaf)) continue;
    const double w = cumulative_[static_cast<std::size_t>(i)] -
                     (i > 0 ? cumulative_[static_cast<std::size_t>(i) - 1] : 0.0);
    chosen = i;
    u -= w;
    if (u <= 0) break;
  }
  flowlets_.install(key, chosen, now);
  return chosen;
}

}  // namespace conga::lb
