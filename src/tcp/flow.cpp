#include "tcp/flow.hpp"

#include <utility>

namespace conga::tcp {

TcpFlow::TcpFlow(sim::Scheduler& sched, net::Host& src, net::Host& dst,
                 const net::FlowKey& key, std::uint64_t size,
                 const TcpConfig& cfg, FlowCompleteFn on_complete)
    : FlowHandle(size, sched.now()),
      sched_(sched),
      source_(size),
      sender_(sched, src, key, source_, cfg),
      sink_(sched, dst, key, cfg,
            [this](std::uint64_t /*delta*/) {
              if (!complete() && sink_.delivered() >= this->size()) {
                mark_complete(sched_.now());
                if (on_complete_) on_complete_(*this);
              }
            }),
      on_complete_(std::move(on_complete)) {}

void TcpFlow::start() {
  sink_.start();
  sender_.start();
  if (size() == 0 && !complete()) {
    // Degenerate zero-byte flow: complete instantly.
    mark_complete(sched_.now());
    if (on_complete_) on_complete_(*this);
  }
}

FlowFactory make_tcp_flow_factory(const TcpConfig& cfg) {
  return [cfg](sim::Scheduler& sched, net::Host& src, net::Host& dst,
               const net::FlowKey& key, std::uint64_t size,
               FlowCompleteFn on_complete) -> std::unique_ptr<FlowHandle> {
    return std::make_unique<TcpFlow>(sched, src, dst, key, size, cfg,
                                     std::move(on_complete));
  };
}

}  // namespace conga::tcp
