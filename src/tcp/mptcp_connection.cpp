#include "tcp/mptcp_connection.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace conga::tcp {

namespace {
/// RTT to use for subflows that have no sample yet (a plausible loaded-DC
/// round trip; only influences alpha before the first real samples arrive).
constexpr double kDefaultRttSec = 100e-6;

double rtt_seconds(const TcpSender& s) {
  return s.srtt() > 0 ? sim::to_seconds(s.srtt()) : kDefaultRttSec;
}
}  // namespace

MptcpFlow::MptcpFlow(sim::Scheduler& sched, net::Host& src, net::Host& dst,
                     const net::FlowKey& base_key, std::uint64_t size,
                     const MptcpConfig& cfg, FlowCompleteFn on_complete)
    : FlowHandle(size, sched.now()),
      sched_(sched),
      source_(size),
      on_complete_(std::move(on_complete)) {
  const int n = std::max(1, cfg.num_subflows);
  subflows_.reserve(static_cast<std::size_t>(n));
  sinks_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    net::FlowKey key = base_key;
    key.src_port = static_cast<std::uint16_t>(base_key.src_port + i);
    key.dst_port = base_key.dst_port;
    subflows_.push_back(
        std::make_unique<Subflow>(*this, sched, src, key, source_, cfg.tcp));
    sinks_.push_back(std::make_unique<TcpSink>(
        sched, dst, key, cfg.tcp,
        [this](std::uint64_t delta) { on_subflow_data(delta); }));
  }
}

void MptcpFlow::start() {
  for (auto& sink : sinks_) sink->start();
  for (auto& sf : subflows_) sf->start();
  if (size() == 0 && !complete()) {
    mark_complete(sched_.now());
    if (on_complete_) on_complete_(*this);
  }
}

double MptcpFlow::total_cwnd() const {
  double total = 0;
  for (const auto& sf : subflows_) total += sf->cwnd_bytes();
  return total;
}

void MptcpFlow::recompute_alpha() {
  // RFC 6356: alpha = total * max_i(w_i / rtt_i^2) / (sum_i w_i / rtt_i)^2.
  double total = 0, best = 0, denom = 0;
  for (const auto& sf : subflows_) {
    const double w = sf->cwnd_bytes();
    const double rtt = rtt_seconds(*sf);
    total += w;
    best = std::max(best, w / (rtt * rtt));
    denom += w / rtt;
  }
  if (denom <= 0) {
    alpha_ = 1.0;
    return;
  }
  alpha_ = total * best / (denom * denom);
}

void MptcpFlow::Subflow::ca_increase(std::uint64_t bytes_acked) {
  conn_.recompute_alpha();
  const double total = conn_.total_cwnd();
  const double b = static_cast<double>(bytes_acked);
  const double m = static_cast<double>(mss());
  const double coupled = conn_.alpha_ * b * m / std::max(total, 1.0);
  const double uncoupled = b * m / std::max(cwnd_, 1.0);
  cwnd_ += std::min(coupled, uncoupled);
}

void MptcpFlow::on_subflow_data(std::uint64_t delta) {
  delivered_ += delta;
  if (!complete() && delivered_ >= size()) {
    mark_complete(sched_.now());
    if (on_complete_) on_complete_(*this);
  }
}

FlowFactory make_mptcp_flow_factory(const MptcpConfig& cfg) {
  return [cfg](sim::Scheduler& sched, net::Host& src, net::Host& dst,
               const net::FlowKey& key, std::uint64_t size,
               FlowCompleteFn on_complete) -> std::unique_ptr<FlowHandle> {
    return std::make_unique<MptcpFlow>(sched, src, dst, key, size, cfg,
                                       std::move(on_complete));
  };
}

}  // namespace conga::tcp
