// Flow abstraction: one application-level transfer over some transport.
//
// Workload generators create flows through a FlowFactory, so the same
// workload runs unchanged over TCP or MPTCP (the paper's transport dimension)
// while the fabric's load balancer is varied independently.
//
// Lifetime rule: the completion callback fires from within packet processing;
// do not destroy the flow inside it — defer deletion (schedule_after(0)), as
// TrafficGenerator does.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/host.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp_config.hpp"
#include "tcp/tcp_connection.hpp"
#include "tcp/tcp_sink.hpp"

namespace conga::tcp {

class FlowHandle {
 public:
  FlowHandle(std::uint64_t size, sim::TimeNs start)
      : size_(size), start_time_(start) {}
  virtual ~FlowHandle() = default;

  /// Begins transmission. Must be called exactly once.
  virtual void start() = 0;

  /// Payload bytes delivered in order at the receiver so far — the forward
  /// progress the liveness watchdog monitors. Equals size() once complete.
  virtual std::uint64_t progress_bytes() const = 0;

  /// Reordering ledger: segments that arrived ahead of the in-order frontier
  /// and had to be buffered at the receiver, and the largest byte gap any of
  /// them landed at. Per-packet schemes (spray, DRILL, Presto) pay here.
  virtual std::uint64_t reorder_segments() const { return 0; }
  virtual std::uint64_t reorder_max_distance() const { return 0; }

  std::uint64_t size() const { return size_; }
  sim::TimeNs start_time() const { return start_time_; }
  bool complete() const { return completion_time_ >= 0; }
  sim::TimeNs completion_time() const { return completion_time_; }
  sim::TimeNs fct() const { return completion_time_ - start_time_; }

 protected:
  void mark_complete(sim::TimeNs t) { completion_time_ = t; }

 private:
  std::uint64_t size_;
  sim::TimeNs start_time_;
  sim::TimeNs completion_time_ = -1;
};

using FlowCompleteFn = std::function<void(FlowHandle&)>;

/// Observes flow lifetimes. The traffic generator notifies an attached
/// monitor as flows start and finish; the liveness watchdog implements this
/// to track per-flow forward progress. Lives at the tcp layer so workload
/// code need not depend on the debug tooling that implements it.
class FlowMonitor {
 public:
  virtual ~FlowMonitor() = default;
  /// `flow` stays valid until on_flow_finished(id) is called.
  virtual void on_flow_started(std::uint64_t id, const FlowHandle& flow) = 0;
  virtual void on_flow_finished(std::uint64_t id) = 0;
};

/// Creates an un-started flow of `size` payload bytes from src to dst with
/// wire identity `key`. Completion == last payload byte delivered in order
/// at the receiver.
using FlowFactory = std::function<std::unique_ptr<FlowHandle>(
    sim::Scheduler& sched, net::Host& src, net::Host& dst,
    const net::FlowKey& key, std::uint64_t size, FlowCompleteFn on_complete)>;

/// A plain TCP transfer: one sender at src, one sink at dst.
class TcpFlow final : public FlowHandle {
 public:
  TcpFlow(sim::Scheduler& sched, net::Host& src, net::Host& dst,
          const net::FlowKey& key, std::uint64_t size, const TcpConfig& cfg,
          FlowCompleteFn on_complete);

  void start() override;

  std::uint64_t progress_bytes() const override { return sink_.delivered(); }

  std::uint64_t reorder_segments() const override {
    return sink_.out_of_order_segments();
  }
  std::uint64_t reorder_max_distance() const override {
    return sink_.max_reorder_distance();
  }

  const TcpSender& sender() const { return sender_; }
  const TcpSink& sink() const { return sink_; }

 private:
  sim::Scheduler& sched_;
  FixedSource source_;
  TcpSender sender_;
  TcpSink sink_;
  FlowCompleteFn on_complete_;
};

FlowFactory make_tcp_flow_factory(const TcpConfig& cfg);

}  // namespace conga::tcp
