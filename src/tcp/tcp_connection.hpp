// TCP sender: NewReno congestion control over the simulated fabric.
//
// Implements the loss-recovery machinery the paper's results depend on:
//  * slow start and AIMD congestion avoidance (byte-counting),
//  * fast retransmit on 3 duplicate ACKs, NewReno fast recovery with
//    partial-ACK retransmission and window inflation/deflation,
//  * RFC 6298 RTO estimation (SRTT/RTTVAR from timestamp echoes) with
//    exponential backoff and a configurable minRTO,
//  * go-back-N after a timeout.
//
// There is no SYN handshake: flows start sending data immediately, the usual
// simulator idealisation (connection setup is not load-balancing-relevant).
// Payload bytes are modelled as counts; sequence numbers are flow offsets.
//
// The class is also the base for MPTCP subflows, which override the
// congestion-avoidance increase (ca_increase) with the coupled LIA rule and
// share a data allocator through the ChunkSource interface.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/host.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp_config.hpp"

namespace conga::telemetry {
enum class EventType : std::uint8_t;
}  // namespace conga::telemetry

namespace conga::tcp {

/// Source of payload bytes for a sender. Plain TCP uses a fixed budget;
/// MPTCP subflows pull chunks from a connection-level allocator at send time.
class ChunkSource {
 public:
  virtual ~ChunkSource() = default;
  /// Grants up to `max_bytes` of new payload; 0 means exhausted *for now*
  /// (a later call may still return bytes only if exhausted() is false).
  virtual std::uint32_t grab(std::uint32_t max_bytes) = 0;
  /// True once no further bytes will ever be granted.
  virtual bool exhausted() const = 0;
};

/// Fixed-size source for plain TCP flows.
class FixedSource final : public ChunkSource {
 public:
  explicit FixedSource(std::uint64_t total) : remaining_(total) {}
  std::uint32_t grab(std::uint32_t max_bytes) override {
    const std::uint32_t n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(max_bytes, remaining_));
    remaining_ -= n;
    return n;
  }
  bool exhausted() const override { return remaining_ == 0; }

 private:
  std::uint64_t remaining_;
};

class TcpSender {
 public:
  /// `source` must outlive the sender. `on_done` fires when every sent byte
  /// has been cumulatively ACKed and the source is exhausted.
  TcpSender(sim::Scheduler& sched, net::Host& local, const net::FlowKey& flow,
            ChunkSource& source, const TcpConfig& cfg,
            std::function<void()> on_done = {});
  virtual ~TcpSender();

  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  /// Registers with the host and sends the initial window.
  void start();

  /// Entry point for incoming (ACK) packets, wired via Host::register_flow.
  void on_packet(net::PacketPtr pkt);

  /// Nudges the sender to (re)fill the window — used by MPTCP when the
  /// shared allocator gains headroom and after subflow events.
  void pump();

  bool done() const { return done_; }
  double cwnd_bytes() const { return cwnd_; }
  std::uint64_t bytes_acked() const { return snd_una_; }
  std::uint64_t bytes_sent_total() const { return bytes_sent_total_; }
  std::uint32_t retransmits() const { return retransmits_; }
  std::uint32_t timeouts() const { return timeouts_; }
  double dctcp_alpha() const { return dctcp_alpha_; }
  sim::TimeNs srtt() const { return srtt_; }
  const net::FlowKey& flow() const { return flow_; }
  const TcpConfig& config() const { return cfg_; }

 protected:
  /// Congestion-avoidance increase per ACK of `bytes_acked` — Reno by
  /// default; MPTCP's LIA overrides this.
  virtual void ca_increase(std::uint64_t bytes_acked);

  /// Invoked on every loss event (fast retransmit or RTO), after the window
  /// reduction — lets MPTCP recompute its coupling factor.
  virtual void on_loss_event() {}

  std::uint32_t mss() const { return cfg_.mss(); }

  double cwnd_ = 0;  ///< congestion window, bytes (fractional for smooth CA)

 private:
  void send_available();
  void emit_segment(std::uint64_t seq, std::uint32_t len);
  void handle_ack(const net::TcpHeader& hdr, bool ecn_echo);
  void enter_recovery();
  // SACK/FACK machinery (cfg.sack == true).
  void apply_sack(const net::TcpHeader& hdr);
  void enter_sack_recovery();
  std::uint64_t sacked_bytes_in(std::uint64_t from, std::uint64_t to) const;
  /// First unsacked gap in [from, limit); false if none.
  bool find_unsacked_gap(std::uint64_t from, std::uint64_t limit,
                         std::uint64_t* gap_start,
                         std::uint64_t* gap_len) const;
  /// Estimated bytes in flight, accounting for SACKed and presumed-lost data.
  double pipe_bytes() const;
  void on_rto();
  void arm_rto();
  void update_rtt(sim::TimeNs sample);
  void maybe_finish();
  std::uint64_t flight() const { return snd_nxt_ - snd_una_; }
  /// Emits a kTcp/kFlow telemetry event for this connection (a: flow hash).
  void tele(telemetry::EventType type, std::uint64_t b);

  sim::Scheduler& sched_;
  net::Host& local_;
  net::FlowKey flow_;
  ChunkSource& source_;
  TcpConfig cfg_;
  std::function<void()> on_done_;

  std::uint64_t snd_una_ = 0;  ///< lowest unacked byte
  std::uint64_t snd_nxt_ = 0;  ///< next byte to send
  std::uint64_t snd_max_ = 0;  ///< highest byte ever sent (== allocated)
  double ssthresh_;
  int dup_acks_ = 0;
  bool in_recovery_ = false;   ///< NewReno recovery (cfg.sack == false)
  std::uint64_t recover_ = 0;  ///< recovery point (both modes)

  // DCTCP state (cfg.dctcp == true).
  void dctcp_on_ack(std::uint64_t bytes_acked, bool ece);
  double dctcp_alpha_ = 0;
  std::uint64_t dctcp_window_end_ = 0;
  std::uint64_t dctcp_acked_ = 0;
  std::uint64_t dctcp_marked_ = 0;

  // SACK scoreboard: merged received-above-cumulative ranges [start, end).
  std::map<std::uint64_t, std::uint64_t> sacked_;
  std::uint64_t fack_ = 0;      ///< forward-most SACKed byte
  std::uint64_t rtx_next_ = 0;  ///< retransmission scan pointer (per epoch)
  bool sack_recovery_ = false;

  // RTO state (RFC 6298) and Tail Loss Probe.
  sim::TimeNs srtt_ = 0;
  sim::TimeNs rttvar_ = 0;
  sim::TimeNs rto_;
  int backoff_ = 0;
  sim::EventId rto_timer_ = sim::kInvalidEventId;
  bool timer_is_tlp_ = false;  ///< pending timer is a probe, not an RTO
  bool tlp_done_ = false;      ///< one probe per flight
  void on_tlp();

  bool started_ = false;
  bool done_ = false;
  /// Shared "tcp" component id, interned lazily on the first event
  /// (0xffffffff == telemetry::kInvalidComponent == not yet interned).
  std::uint32_t tele_comp_ = 0xffffffffU;
  std::uint64_t bytes_sent_total_ = 0;
  std::uint32_t retransmits_ = 0;
  std::uint32_t timeouts_ = 0;
};

}  // namespace conga::tcp
