// TCP receiver: reassembly and cumulative ACK generation.
//
// Every arriving data segment triggers an ACK carrying the current rcv_nxt
// (so out-of-order arrivals — e.g. from flowlet moves or packet spraying —
// produce duplicate ACKs, which is exactly the reordering sensitivity the
// paper's flowlet gap protects against). Optional delayed ACKs (`ack_every`).
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/host.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp_config.hpp"

namespace conga::tcp {

class TcpSink {
 public:
  /// `on_data(delta)` fires whenever `delta` new in-order bytes become
  /// deliverable (the application-progress signal used for FCT accounting).
  TcpSink(sim::Scheduler& sched, net::Host& local, const net::FlowKey& flow,
          const TcpConfig& cfg,
          std::function<void(std::uint64_t)> on_data = {});
  ~TcpSink();

  TcpSink(const TcpSink&) = delete;
  TcpSink& operator=(const TcpSink&) = delete;

  /// Registers with the host demux.
  void start();

  void on_packet(net::PacketPtr pkt);

  std::uint64_t delivered() const { return rcv_nxt_; }
  std::uint64_t out_of_order_segments() const { return ooo_segments_; }
  /// Largest gap (bytes) between an out-of-order arrival and the in-order
  /// frontier at that moment — how far ahead the worst stray segment landed.
  std::uint64_t max_reorder_distance() const { return max_reorder_bytes_; }
  const net::FlowKey& flow() const { return flow_; }

 private:
  /// `trigger_seq`: sequence of the segment that triggered this ACK (selects
  /// the first SACK block per RFC 2018). `ecn_ce`: whether the triggering
  /// data packet carried a CE mark (echoed per packet for DCTCP).
  void send_ack(std::uint64_t echo_ts, std::uint64_t trigger_seq,
                bool ecn_ce);

  sim::Scheduler& sched_;
  net::Host& local_;
  net::FlowKey flow_;
  TcpConfig cfg_;
  std::function<void(std::uint64_t)> on_data_;

  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, std::uint64_t> ooo_;  ///< seq -> end, disjoint
  std::uint64_t ooo_segments_ = 0;
  std::uint64_t max_reorder_bytes_ = 0;
  int unacked_segments_ = 0;
  bool started_ = false;
};

}  // namespace conga::tcp
