#include "tcp/tcp_connection.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <utility>

#include "debug/invariants.hpp"
#include "telemetry/telemetry.hpp"

#if defined(CONGA_CHECK_INVARIANTS) && CONGA_CHECK_INVARIANTS
#include <string>

namespace {
// Violation-report label for a sender: the connection's data-direction tuple.
std::string tcp_node_name(const conga::net::FlowKey& f) {
  return "tcp host" + std::to_string(f.src_host) + "->host" +
         std::to_string(f.dst_host) + ":" + std::to_string(f.dst_port);
}
}  // namespace
#endif

namespace conga::tcp {

TcpSender::TcpSender(sim::Scheduler& sched, net::Host& local,
                     const net::FlowKey& flow, ChunkSource& source,
                     const TcpConfig& cfg, std::function<void()> on_done)
    : sched_(sched),
      local_(local),
      flow_(flow),
      source_(source),
      cfg_(cfg),
      on_done_(std::move(on_done)),
      ssthresh_(static_cast<double>(cfg.max_cwnd_bytes)),
      rto_(std::max<sim::TimeNs>(cfg.min_rto, sim::milliseconds(10))) {
  cwnd_ = static_cast<double>(cfg.init_cwnd_pkts) * mss();
}

TcpSender::~TcpSender() {
  sched_.cancel(rto_timer_);
  if (started_) local_.unregister_flow(flow_);
}

void TcpSender::tele(telemetry::EventType type, std::uint64_t b) {
  telemetry::TraceSink* sink = sched_.telemetry();
  if (sink == nullptr) return;
  // All senders share one "tcp" component: per-flow rings would let a long
  // run register unbounded components, and the flow hash in `a` already
  // attributes each event.
  if (tele_comp_ == telemetry::kInvalidComponent) {
    tele_comp_ = sink->intern_component("tcp");
  }
  telemetry::emit(sink, type, tele_comp_, sched_.now(), flow_.hash(), b);
}

void TcpSender::start() {
  if (started_) return;
  started_ = true;
  local_.register_flow(flow_,
                       [this](net::PacketPtr pkt) { on_packet(std::move(pkt)); });
  tele(telemetry::EventType::kFlowStart, 0);
  send_available();
  maybe_finish();  // zero-byte flows complete immediately
}

void TcpSender::pump() {
  if (started_ && !done_) send_available();
}

void TcpSender::emit_segment(std::uint64_t seq, std::uint32_t len) {
  net::PacketPtr pkt = net::make_packet();
  pkt->flow = flow_;
  pkt->size_bytes = len + net::kIpTcpHeaderBytes;
  pkt->tcp.seq = seq;
  pkt->tcp.payload = len;
  pkt->tcp.is_ack = false;
  pkt->tcp.echo_ts = static_cast<std::uint64_t>(sched_.now());
  pkt->tcp.fin = source_.exhausted() && (seq + len == snd_max_);
  bytes_sent_total_ += len;
  local_.send(std::move(pkt));
}

std::uint64_t TcpSender::sacked_bytes_in(std::uint64_t from,
                                         std::uint64_t to) const {
  std::uint64_t total = 0;
  for (const auto& [start, end] : sacked_) {
    if (end <= from) continue;
    if (start >= to) break;
    total += std::min(end, to) - std::max(start, from);
  }
  return total;
}

bool TcpSender::find_unsacked_gap(std::uint64_t from, std::uint64_t limit,
                                  std::uint64_t* gap_start,
                                  std::uint64_t* gap_len) const {
  std::uint64_t cursor = from;
  for (const auto& [start, end] : sacked_) {
    if (end <= cursor) continue;
    if (start >= limit) break;
    if (start > cursor) {
      *gap_start = cursor;
      *gap_len = start - cursor;
      return true;
    }
    cursor = end;
  }
  if (cursor < limit) {
    *gap_start = cursor;
    *gap_len = limit - cursor;
    return true;
  }
  return false;
}

double TcpSender::pipe_bytes() const {
  // Outstanding data minus SACKed bytes minus the presumed-lost region the
  // retransmission scan has not re-sent yet (bytes below rtx_next_ were just
  // retransmitted, so they count as in flight again).
  const std::uint64_t out = snd_nxt_ - snd_una_;
  const std::uint64_t sacked = sacked_bytes_in(snd_una_, snd_nxt_);
  const std::uint64_t scan_from = std::max(rtx_next_, snd_una_);
  std::uint64_t lost_unsent = 0;
  if (fack_ > scan_from) {
    lost_unsent =
        (fack_ - scan_from) - sacked_bytes_in(scan_from, fack_);
  }
  return static_cast<double>(out) - static_cast<double>(sacked) -
         static_cast<double>(lost_unsent);
}

void TcpSender::send_available() {
  const double wnd =
      std::min(cwnd_, static_cast<double>(cfg_.max_cwnd_bytes));

  if (sack_recovery_) {
    // SACK recovery: retransmit holes below the forward-most SACK first,
    // then new data, all under pipe-based accounting (RFC 6675 flavour).
    while (pipe_bytes() < wnd) {
      std::uint64_t gap_start = 0, gap_len = 0;
      if (find_unsacked_gap(std::max(rtx_next_, snd_una_), fack_, &gap_start,
                            &gap_len)) {
        const auto len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(gap_len, mss()));
        emit_segment(gap_start, len);
        ++retransmits_;
        tele(telemetry::EventType::kTcpRetransmit, retransmits_);
        rtx_next_ = gap_start + len;
        continue;
      }
      const std::uint32_t len = source_.grab(mss());
      if (len == 0) break;
      snd_max_ += len;
      emit_segment(snd_nxt_, len);
      snd_nxt_ += len;
    }
  } else {
    while (static_cast<double>(flight()) < wnd) {
      std::uint32_t len = 0;
      if (snd_nxt_ < snd_max_) {
        // Resending previously sent bytes (go-back-N after an RTO).
        len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(mss(), snd_max_ - snd_nxt_));
        ++retransmits_;
        tele(telemetry::EventType::kTcpRetransmit, retransmits_);
      } else {
        len = source_.grab(mss());
        if (len == 0) break;
        snd_max_ += len;
      }
      emit_segment(snd_nxt_, len);
      snd_nxt_ += len;
    }
  }
  if (flight() > 0 && rto_timer_ == sim::kInvalidEventId) arm_rto();
}

void TcpSender::apply_sack(const net::TcpHeader& hdr) {
  for (int i = 0; i < hdr.sack_count; ++i) {
    std::uint64_t start = std::max(hdr.sack[static_cast<std::size_t>(i)].start,
                                   snd_una_);
    std::uint64_t end = hdr.sack[static_cast<std::size_t>(i)].end;
    if (end <= start) continue;
    fack_ = std::max(fack_, end);
    // Merge [start, end) into the scoreboard.
    auto it = sacked_.lower_bound(start);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= start) {
        start = prev->first;
        end = std::max(end, prev->second);
        it = prev;
      }
    }
    while (it != sacked_.end() && it->first <= end) {
      end = std::max(end, it->second);
      it = sacked_.erase(it);
    }
    sacked_[start] = end;
  }
}

void TcpSender::enter_sack_recovery() {
  sack_recovery_ = true;
  recover_ = snd_nxt_;
  ssthresh_ = std::max(static_cast<double>(flight()) / 2.0,
                       2.0 * static_cast<double>(mss()));
  cwnd_ = ssthresh_;
  // Monotone across epochs: a byte is retransmitted at most once between
  // RTOs (a lost retransmission is recovered by the timer, as in real TCP).
  rtx_next_ = std::max(rtx_next_, snd_una_);
  tele(telemetry::EventType::kTcpCwnd, std::bit_cast<std::uint64_t>(cwnd_));
  on_loss_event();
}

void TcpSender::arm_rto() {
  sched_.cancel(rto_timer_);
  const sim::TimeNs timeout = rto_ << std::min(backoff_, 12);
  // Tail Loss Probe: before the first (non-backed-off) RTO of a flight,
  // schedule a probe at ~2 SRTT instead. A tail drop then triggers SACK
  // recovery in round-trip time rather than stalling a full minRTO.
  sim::TimeNs when = timeout;
  timer_is_tlp_ = false;
  if (cfg_.tlp && !tlp_done_ && backoff_ == 0 && srtt_ > 0 &&
      !sack_recovery_ && !in_recovery_) {
    const sim::TimeNs pto = 2 * srtt_ + cfg_.rto_granularity();
    if (pto < timeout) {
      when = pto;
      timer_is_tlp_ = true;
    }
  }
  rto_timer_ = sched_.schedule_after(when, [this] {
    rto_timer_ = sim::kInvalidEventId;
    if (timer_is_tlp_) {
      on_tlp();
    } else {
      on_rto();
    }
  });
}

void TcpSender::on_tlp() {
  if (flight() == 0) return;
  // Probe with the highest outstanding segment; its (S)ACK exposes any
  // earlier holes. No cwnd change — loss is not confirmed yet.
  tlp_done_ = true;
  const std::uint64_t len =
      std::min<std::uint64_t>(mss(), snd_nxt_ - snd_una_);
  emit_segment(snd_nxt_ - len, static_cast<std::uint32_t>(len));
  ++retransmits_;
  tele(telemetry::EventType::kTcpRetransmit, retransmits_);
  arm_rto();  // now arms the real RTO (tlp_done_ is set)
}

void TcpSender::update_rtt(sim::TimeNs sample) {
  if (sample <= 0) return;
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const sim::TimeNs err = std::abs(srtt_ - sample);
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  rto_ = std::clamp<sim::TimeNs>(
      srtt_ + std::max(cfg_.rto_granularity(), 4 * rttvar_), cfg_.min_rto,
      cfg_.max_rto);
}

void TcpSender::ca_increase(std::uint64_t bytes_acked) {
  // Reno byte-counting: ~one MSS per window per RTT.
  cwnd_ += static_cast<double>(mss()) * static_cast<double>(bytes_acked) /
           std::max(cwnd_, 1.0);
}

void TcpSender::enter_recovery() {
  in_recovery_ = true;
  recover_ = snd_nxt_;
  ssthresh_ = std::max(static_cast<double>(flight()) / 2.0,
                       2.0 * static_cast<double>(mss()));
  cwnd_ = ssthresh_ + 3.0 * mss();
  // Fast retransmit of the missing segment.
  if (snd_una_ < snd_max_) {
    const auto len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(mss(), snd_max_ - snd_una_));
    emit_segment(snd_una_, len);
    ++retransmits_;
    tele(telemetry::EventType::kTcpRetransmit, retransmits_);
  }
  tele(telemetry::EventType::kTcpCwnd, std::bit_cast<std::uint64_t>(cwnd_));
  on_loss_event();
}

void TcpSender::dctcp_on_ack(std::uint64_t bytes_acked, bool ece) {
  dctcp_acked_ += bytes_acked;
  if (ece) dctcp_marked_ += bytes_acked;
  if (snd_una_ < dctcp_window_end_) return;
  // One observation window (~RTT) completed: fold the marked fraction into
  // alpha and, if marks were seen, scale cwnd by (1 - alpha/2).
  if (dctcp_acked_ > 0) {
    const double frac = static_cast<double>(dctcp_marked_) /
                        static_cast<double>(dctcp_acked_);
    dctcp_alpha_ = (1 - cfg_.dctcp_g) * dctcp_alpha_ + cfg_.dctcp_g * frac;
    if (dctcp_marked_ > 0 && !in_recovery_ && !sack_recovery_) {
      cwnd_ = std::max(cwnd_ * (1.0 - dctcp_alpha_ / 2.0),
                       2.0 * static_cast<double>(mss()));
      ssthresh_ = std::min(ssthresh_, cwnd_);
    }
  }
  dctcp_acked_ = 0;
  dctcp_marked_ = 0;
  dctcp_window_end_ = snd_nxt_;
}

void TcpSender::handle_ack(const net::TcpHeader& hdr, bool ecn_echo) {
  std::uint64_t ack = hdr.ack;
  const std::uint64_t echo_ts = hdr.echo_ts;
  if (ack > snd_max_) ack = snd_max_;
  if (cfg_.sack) apply_sack(hdr);

  if (ack > snd_una_) {
    const std::uint64_t bytes_acked = ack - snd_una_;
    if (cfg_.dctcp) dctcp_on_ack(bytes_acked, ecn_echo);
    snd_una_ = ack;
    // A late ACK for pre-RTO transmissions can overtake the go-back-N reset
    // point; flight() must never underflow.
    snd_nxt_ = std::max(snd_nxt_, snd_una_);
    fack_ = std::max(fack_, snd_una_);
    // Prune the scoreboard below the cumulative ACK.
    while (!sacked_.empty() && sacked_.begin()->second <= snd_una_) {
      sacked_.erase(sacked_.begin());
    }
    dup_acks_ = 0;
    backoff_ = 0;
    tlp_done_ = false;  // new flight, new probe budget
    if (echo_ts != 0) {
      update_rtt(sched_.now() - static_cast<sim::TimeNs>(echo_ts));
    }

    if (sack_recovery_) {
      if (ack >= recover_) {
        sack_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        arm_rto();  // progress: keep the timer fresh, stay in recovery
      }
    } else if (in_recovery_) {
      if (ack >= recover_) {
        // Full ACK: leave recovery, deflate to ssthresh.
        in_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        // Partial ACK (NewReno): retransmit the next hole, deflate.
        const auto len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(mss(), snd_max_ - snd_una_));
        if (len > 0) {
          emit_segment(snd_una_, len);
          ++retransmits_;
          tele(telemetry::EventType::kTcpRetransmit, retransmits_);
        }
        cwnd_ = std::max(cwnd_ - static_cast<double>(bytes_acked) +
                             static_cast<double>(mss()),
                         static_cast<double>(mss()));
        arm_rto();  // restart the timer on a partial ACK
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(bytes_acked);  // slow start
      if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;
    } else {
      ca_increase(bytes_acked);
    }
    cwnd_ = std::min(cwnd_, static_cast<double>(cfg_.max_cwnd_bytes));

    // Reset or disarm the retransmission timer.
    sched_.cancel(rto_timer_);
    rto_timer_ = sim::kInvalidEventId;
    if (flight() > 0) arm_rto();
  } else if (flight() > 0 && !cfg_.sack) {
    // Duplicate ACK (classic NewReno path).
    ++dup_acks_;
    if (in_recovery_) {
      cwnd_ += static_cast<double>(mss());  // window inflation
    } else if (dup_acks_ == cfg_.dupack_segments) {
      enter_recovery();
    }
  }

  // FACK loss detection: data SACKed more than 3 segments past the
  // cumulative ACK implies the hole at snd_una is lost. The second clause is
  // early retransmit (RFC 5827 flavour): with a short tail, everything
  // outstanding above the hole being SACKed is already conclusive.
  const auto dup_bytes =
      static_cast<std::uint64_t>(cfg_.dupack_segments) * mss();
  if (cfg_.sack && !sack_recovery_ && flight() > 0 && fack_ > snd_una_ &&
      (fack_ - snd_una_ > dup_bytes ||
       (fack_ == snd_nxt_ && sacked_bytes_in(snd_una_, snd_nxt_) > 0))) {
    enter_sack_recovery();
  }

  send_available();
  maybe_finish();
  CONGA_INVARIANT(check_tcp_window(tcp_node_name(flow_), sched_.now(),
                                   snd_una_, snd_nxt_, snd_max_, cwnd_));
}

void TcpSender::on_rto() {
  if (flight() == 0) return;  // spurious (e.g. raced with the final ACK)
  ++timeouts_;
  ssthresh_ = std::max(static_cast<double>(flight()) / 2.0,
                       2.0 * static_cast<double>(mss()));
  cwnd_ = static_cast<double>(mss());
  tele(telemetry::EventType::kTcpRto, timeouts_);
  tele(telemetry::EventType::kTcpCwnd, std::bit_cast<std::uint64_t>(cwnd_));
  snd_nxt_ = snd_una_;  // go-back-N
  in_recovery_ = false;
  sack_recovery_ = false;
  sacked_.clear();  // conservative: rebuild the scoreboard from fresh ACKs
  fack_ = snd_una_;
  rtx_next_ = snd_una_;
  dup_acks_ = 0;
  ++backoff_;
  on_loss_event();
  send_available();
  CONGA_INVARIANT(check_tcp_window(tcp_node_name(flow_), sched_.now(),
                                   snd_una_, snd_nxt_, snd_max_, cwnd_));
}

void TcpSender::on_packet(net::PacketPtr pkt) {
  if (done_ || !pkt->tcp.is_ack) return;
  handle_ack(pkt->tcp, pkt->ecn_echo);
}

void TcpSender::maybe_finish() {
  if (done_ || !source_.exhausted() || snd_una_ != snd_max_ || !started_) {
    return;
  }
  done_ = true;
  sched_.cancel(rto_timer_);
  rto_timer_ = sim::kInvalidEventId;
  tele(telemetry::EventType::kFlowFinish, snd_max_);
  if (on_done_) on_done_();
}

}  // namespace conga::tcp
