// MPTCP: multipath TCP with coupled congestion control (RFC 6356 "LIA"),
// the paper's host-based baseline (§2.3, §5).
//
// The connection opens `num_subflows` subflows (8 in the paper, following
// Raiciu et al.), each with its own 5-tuple — source ports base..base+n-1 —
// so ECMP hashing spreads them over distinct fabric paths. Payload is
// allocated to subflows chunk-by-chunk at transmission time from a shared
// allocator (pull scheduling: whichever subflow has window space takes the
// next bytes).
//
// Coupled increase: in congestion avoidance, an ACK of b bytes on subflow i
// grows cwnd_i by min(alpha * b * mss / cwnd_total, b * mss / cwnd_i), with
//   alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / (sum_i cwnd_i / rtt_i)^2.
// Slow start and loss recovery are per-subflow, as in the Linux
// implementation. There is no opportunistic reinjection: a subflow that
// stalls in timeout holds its allocated bytes until its own RTO recovers
// them — the brittleness under Incast the paper measures (Fig 13) emerges
// from exactly this behaviour plus the small per-subflow windows.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tcp/flow.hpp"

namespace conga::tcp {

struct MptcpConfig {
  TcpConfig tcp;
  int num_subflows = 8;
};

class MptcpFlow final : public FlowHandle {
 public:
  MptcpFlow(sim::Scheduler& sched, net::Host& src, net::Host& dst,
            const net::FlowKey& base_key, std::uint64_t size,
            const MptcpConfig& cfg, FlowCompleteFn on_complete);

  void start() override;

  std::uint64_t progress_bytes() const override { return delivered_; }

  std::uint64_t reorder_segments() const override {
    std::uint64_t sum = 0;
    for (const auto& s : sinks_) sum += s->out_of_order_segments();
    return sum;
  }
  std::uint64_t reorder_max_distance() const override {
    std::uint64_t worst = 0;
    for (const auto& s : sinks_) {
      if (s->max_reorder_distance() > worst) worst = s->max_reorder_distance();
    }
    return worst;
  }

  /// Sum of subflow congestion windows, bytes.
  double total_cwnd() const;
  /// The current LIA coupling factor.
  double alpha() const { return alpha_; }
  int num_subflows() const { return static_cast<int>(subflows_.size()); }
  const TcpSender& subflow(int i) const { return *subflows_[static_cast<std::size_t>(i)]; }

 private:
  /// Shared payload allocator over all subflows.
  class SharedSource final : public ChunkSource {
   public:
    explicit SharedSource(std::uint64_t total) : remaining_(total) {}
    std::uint32_t grab(std::uint32_t max_bytes) override {
      const auto n = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(max_bytes, remaining_));
      remaining_ -= n;
      return n;
    }
    bool exhausted() const override { return remaining_ == 0; }

   private:
    std::uint64_t remaining_;
  };

  class Subflow final : public TcpSender {
   public:
    Subflow(MptcpFlow& conn, sim::Scheduler& sched, net::Host& local,
            const net::FlowKey& key, ChunkSource& src, const TcpConfig& cfg)
        : TcpSender(sched, local, key, src, cfg), conn_(conn) {}

   protected:
    void ca_increase(std::uint64_t bytes_acked) override;
    void on_loss_event() override { conn_.recompute_alpha(); }

   private:
    MptcpFlow& conn_;
  };

  void recompute_alpha();
  void on_subflow_data(std::uint64_t delta);

  sim::Scheduler& sched_;
  SharedSource source_;
  double alpha_ = 1.0;
  std::uint64_t delivered_ = 0;
  std::vector<std::unique_ptr<Subflow>> subflows_;
  std::vector<std::unique_ptr<TcpSink>> sinks_;
  FlowCompleteFn on_complete_;
};

FlowFactory make_mptcp_flow_factory(const MptcpConfig& cfg);

}  // namespace conga::tcp
