// TCP parameters shared by senders, sinks and MPTCP subflows.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"

namespace conga::tcp {

struct TcpConfig {
  std::uint32_t mtu = 1500;           ///< bytes incl. IP+TCP headers
  std::uint32_t init_cwnd_pkts = 10;  ///< IW10, the modern Linux default
  std::uint64_t max_cwnd_bytes = 4 * 1024 * 1024;  ///< receive-window cap

  /// Minimum retransmission timeout. The paper evaluates 200 ms (the Linux
  /// default) and 1 ms (Vasudevan et al.'s Incast remedy) in Fig 13.
  sim::TimeNs min_rto = sim::milliseconds(200);
  sim::TimeNs max_rto = sim::seconds(60.0);

  /// ACK every n-th in-order segment (1 = every segment; 2 = delayed ACKs).
  int ack_every = 1;

  /// Selective acknowledgments (RFC 2018) with FACK-style loss recovery —
  /// what Linux TCP (the paper's testbed stack) does. Disable for the
  /// plain-NewReno ablation.
  bool sack = true;

  /// Loss-inference threshold in segments (the classic dupack threshold /
  /// FACK gap). Raising it makes TCP reordering-resilient at the cost of
  /// slower loss detection — what Fig 1's "per packet ... optimal, needs
  /// reordering-resilient TCP" branch assumes.
  int dupack_segments = 3;

  /// Tail Loss Probe: if the last packets of a flight die, probe after
  /// ~2 SRTT instead of waiting a full (min)RTO — present in the Linux
  /// kernels of the paper's era and essential for request/response traffic
  /// with the default 200 ms minRTO (Incast rounds, small flows).
  bool tlp = true;

  /// DCTCP congestion control (Alizadeh et al., SIGCOMM 2010): scale cwnd by
  /// the fraction of ECN-marked bytes once per window. Needs ECN marking in
  /// the fabric (TopologyConfig::ecn_threshold_bytes). An extension beyond
  /// the paper's testbed TCP, for the CONGA+DCTCP ablation.
  bool dctcp = false;
  double dctcp_g = 1.0 / 16;  ///< EWMA gain for the marked fraction

  std::uint32_t mss() const { return mtu - 40; }

  /// Timer granularity for the RTO calculation: fine-grained timers come
  /// along with a small minRTO (RFC 6298's G term).
  sim::TimeNs rto_granularity() const {
    return std::min<sim::TimeNs>(sim::milliseconds(1), min_rto / 4);
  }
};

}  // namespace conga::tcp
