#include "tcp/tcp_sink.hpp"

#include <utility>

namespace conga::tcp {

TcpSink::TcpSink(sim::Scheduler& sched, net::Host& local,
                 const net::FlowKey& flow, const TcpConfig& cfg,
                 std::function<void(std::uint64_t)> on_data)
    : sched_(sched),
      local_(local),
      flow_(flow),
      cfg_(cfg),
      on_data_(std::move(on_data)) {}

TcpSink::~TcpSink() {
  if (started_) local_.unregister_flow(flow_);
}

void TcpSink::start() {
  if (started_) return;
  started_ = true;
  local_.register_flow(flow_,
                       [this](net::PacketPtr pkt) { on_packet(std::move(pkt)); });
}

void TcpSink::send_ack(std::uint64_t echo_ts, std::uint64_t trigger_seq,
                       bool ecn_ce) {
  net::PacketPtr ack = net::make_packet();
  ack->flow = flow_;  // data-direction key; is_ack marks the reverse travel
  ack->size_bytes = net::kAckBytes;
  ack->tcp.is_ack = true;
  ack->tcp.ack = rcv_nxt_;
  ack->tcp.echo_ts = echo_ts;
  ack->ecn_echo = ecn_ce;  // per-packet echo, as DCTCP requires
  if (cfg_.sack && !ooo_.empty()) {
    // RFC 2018: the first block MUST contain the most recently received
    // segment — that is how the sender learns every block across a dupack
    // stream. Follow with the next blocks in sequence order (wrapping).
    auto first = ooo_.upper_bound(trigger_seq);
    if (first != ooo_.begin()) {
      auto prev = std::prev(first);
      if (prev->second >= trigger_seq) first = prev;
    }
    if (first == ooo_.end()) first = ooo_.begin();
    auto it = first;
    do {
      ack->tcp.sack[ack->tcp.sack_count++] =
          net::SackBlock{it->first, it->second};
      ++it;
      if (it == ooo_.end()) it = ooo_.begin();
    } while (ack->tcp.sack_count < 3 && it != first);
  }
  local_.send(std::move(ack));
}

void TcpSink::on_packet(net::PacketPtr pkt) {
  if (pkt->tcp.is_ack) return;  // not for us
  const std::uint64_t seq = pkt->tcp.seq;
  const std::uint64_t end = seq + pkt->tcp.payload;
  const std::uint64_t old_nxt = rcv_nxt_;

  if (end <= rcv_nxt_) {
    // Entirely duplicate data; still ACK so the sender can make progress.
    send_ack(pkt->tcp.echo_ts, seq, pkt->ecn_ce);
    return;
  }

  if (seq <= rcv_nxt_) {
    rcv_nxt_ = end;
    // Pull any now-contiguous out-of-order segments.
    auto it = ooo_.begin();
    while (it != ooo_.end() && it->first <= rcv_nxt_) {
      rcv_nxt_ = std::max(rcv_nxt_, it->second);
      it = ooo_.erase(it);
    }
  } else {
    // Out-of-order: buffer (coalescing is unnecessary — disjoint by MSS
    // boundaries in practice; overlaps just resolve via the max above).
    ooo_.emplace(seq, end);
    ++ooo_segments_;
    const std::uint64_t dist = seq - rcv_nxt_;  // seq > rcv_nxt_ here
    if (dist > max_reorder_bytes_) max_reorder_bytes_ = dist;
  }

  const bool advanced = rcv_nxt_ > old_nxt;
  bool ack_now = !advanced;  // out-of-order data => immediate (dup) ACK
  if (advanced) {
    ++unacked_segments_;
    if (unacked_segments_ >= cfg_.ack_every || pkt->tcp.fin ||
        !ooo_.empty()) {
      ack_now = true;
    }
  }
  if (ack_now) {
    unacked_segments_ = 0;
    send_ack(pkt->tcp.echo_ts, seq, pkt->ecn_ce);
  }
  if (advanced && on_data_) on_data_(rcv_nxt_ - old_nxt);
}

}  // namespace conga::tcp
