// Dinic max-flow on small dense-ish graphs with real-valued capacities.
//
// Used by the analysis suite for single-commodity feasibility checks (e.g.
// the maximum L0->L1 throughput of Fig 2's asymmetric topology) and as a
// sanity cross-check on the LP solver.
#pragma once

#include <cstdint>
#include <vector>

namespace conga::analysis {

class MaxFlow {
 public:
  explicit MaxFlow(int num_nodes);

  /// Adds a directed edge u -> v with the given capacity.
  void add_edge(int u, int v, double capacity);

  /// Computes the max flow value from s to t (destroys residual state;
  /// one-shot per instance unless reset()).
  double solve(int s, int t);

  /// Restores all edge capacities to their initial values.
  void reset();

  /// Flow currently assigned to the i-th added edge (after solve()).
  double edge_flow(int index) const;

 private:
  struct Edge {
    int to;
    double cap;
    double initial_cap;
    int rev;  ///< index of the reverse edge in graph_[to]
  };

  bool bfs(int s, int t);
  double dfs(int v, int t, double pushed);

  std::vector<std::vector<Edge>> graph_;
  std::vector<std::pair<int, int>> edge_index_;  ///< (node, offset) per add
  std::vector<int> level_;
  std::vector<int> iter_;
};

}  // namespace conga::analysis
