// Stochastic traffic-imbalance model (paper §6.2, Theorem 2).
//
// Flows arrive Poisson(lambda) over (0, t], each assigned to one of n links
// uniformly at random, sizes i.i.d. from a distribution S. The imbalance is
//   chi(t) = (max_k A_k(t) - min_k A_k(t)) / (lambda E[S] t / n),
// and Theorem 2 bounds E[chi(t)] <= 1/sqrt(lambda_e t) + O(1/t) with
//   lambda_e = lambda / (8 n log n (1 + (sigma_S/E[S])^2)).
// The Monte-Carlo here measures E[chi(t)] directly, demonstrating both the
// 1/sqrt(t) decay and the coefficient-of-variation dependence that explains
// why the data-mining workload needs flowlets while the enterprise workload
// is fine with per-flow ECMP.
#pragma once

#include <cstdint>

#include "workload/flow_size_dist.hpp"

namespace conga::analysis {

struct ImbalanceParams {
  int n_links = 4;
  double lambda = 10000;  ///< flow arrivals per second
  double t_seconds = 1.0;
  int trials = 200;
  std::uint64_t seed = 5;
};

/// Monte-Carlo estimate of E[chi(t)] for randomized per-flow placement.
double expected_imbalance(const workload::FlowSizeDist& dist,
                          const ImbalanceParams& p);

/// The effective rate lambda_e of Theorem 2 (equation 2).
double effective_rate(const workload::FlowSizeDist& dist, int n_links,
                      double lambda);

/// The leading bound term 1/sqrt(lambda_e * t) of Theorem 2 (equation 1).
double theorem2_bound(const workload::FlowSizeDist& dist, int n_links,
                      double lambda, double t_seconds);

}  // namespace conga::analysis
