#include "analysis/simplex.hpp"

#include <cmath>
#include <limits>
#include <utility>

namespace conga::analysis {

namespace {
constexpr double kEps = 1e-9;
}

Simplex::Simplex(const std::vector<std::vector<double>>& A,
                 const std::vector<double>& b, const std::vector<double>& c)
    : m_(static_cast<int>(b.size())),
      n_(static_cast<int>(c.size())),
      basic_(static_cast<std::size_t>(m_)),
      nonbasic_(static_cast<std::size_t>(n_) + 1),
      d_(static_cast<std::size_t>(m_) + 2,
         std::vector<double>(static_cast<std::size_t>(n_) + 2)) {
  for (int i = 0; i < m_; ++i) {
    for (int j = 0; j < n_; ++j) {
      d_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          A[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
  }
  for (int i = 0; i < m_; ++i) {
    basic_[static_cast<std::size_t>(i)] = n_ + i;
    d_[static_cast<std::size_t>(i)][static_cast<std::size_t>(n_)] = -1;
    d_[static_cast<std::size_t>(i)][static_cast<std::size_t>(n_) + 1] =
        b[static_cast<std::size_t>(i)];
  }
  for (int j = 0; j < n_; ++j) {
    nonbasic_[static_cast<std::size_t>(j)] = j;
    d_[static_cast<std::size_t>(m_)][static_cast<std::size_t>(j)] =
        -c[static_cast<std::size_t>(j)];
  }
  nonbasic_[static_cast<std::size_t>(n_)] = -1;
  d_[static_cast<std::size_t>(m_) + 1][static_cast<std::size_t>(n_)] = 1;
}

void Simplex::pivot(int r, int s) {
  const auto ur = static_cast<std::size_t>(r);
  const auto us = static_cast<std::size_t>(s);
  const double inv = 1.0 / d_[ur][us];
  for (int i = 0; i < m_ + 2; ++i) {
    if (i == r) continue;
    const auto ui = static_cast<std::size_t>(i);
    if (std::abs(d_[ui][us]) < kEps) continue;
    for (int j = 0; j < n_ + 2; ++j) {
      if (j == s) continue;
      const auto uj = static_cast<std::size_t>(j);
      d_[ui][uj] -= d_[ur][uj] * d_[ui][us] * inv;
    }
  }
  for (int j = 0; j < n_ + 2; ++j) {
    if (j != s) d_[ur][static_cast<std::size_t>(j)] *= inv;
  }
  for (int i = 0; i < m_ + 2; ++i) {
    if (i != r) d_[static_cast<std::size_t>(i)][us] *= -inv;
  }
  d_[ur][us] = inv;
  std::swap(basic_[ur], nonbasic_[us]);
}

bool Simplex::iterate(int phase) {
  const int x = phase == 1 ? m_ + 1 : m_;
  const auto ux = static_cast<std::size_t>(x);
  while (true) {
    int s = -1;
    for (int j = 0; j <= n_; ++j) {
      const auto uj = static_cast<std::size_t>(j);
      if (phase == 2 && nonbasic_[uj] == -1) continue;
      if (s == -1 || d_[ux][uj] < d_[ux][static_cast<std::size_t>(s)] ||
          (d_[ux][uj] == d_[ux][static_cast<std::size_t>(s)] &&
           nonbasic_[uj] < nonbasic_[static_cast<std::size_t>(s)])) {
        s = j;
      }
    }
    if (d_[ux][static_cast<std::size_t>(s)] > -kEps) return true;
    int r = -1;
    for (int i = 0; i < m_; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      const auto us = static_cast<std::size_t>(s);
      if (d_[ui][us] < kEps) continue;
      const auto un1 = static_cast<std::size_t>(n_) + 1;
      if (r == -1 ||
          d_[ui][un1] / d_[ui][us] <
              d_[static_cast<std::size_t>(r)][un1] /
                  d_[static_cast<std::size_t>(r)][us] ||
          (d_[ui][un1] / d_[ui][us] ==
               d_[static_cast<std::size_t>(r)][un1] /
                   d_[static_cast<std::size_t>(r)][us] &&
           basic_[ui] < basic_[static_cast<std::size_t>(r)])) {
        r = i;
      }
    }
    if (r == -1) return false;  // unbounded
    pivot(r, s);
  }
}

double Simplex::solve(std::vector<double>& x) {
  const auto un1 = static_cast<std::size_t>(n_) + 1;
  int r = 0;
  for (int i = 1; i < m_; ++i) {
    if (d_[static_cast<std::size_t>(i)][un1] <
        d_[static_cast<std::size_t>(r)][un1]) {
      r = i;
    }
  }
  if (m_ > 0 && d_[static_cast<std::size_t>(r)][un1] < -kEps) {
    pivot(r, n_);
    if (!iterate(1) ||
        d_[static_cast<std::size_t>(m_) + 1][un1] < -kEps) {
      return -std::numeric_limits<double>::infinity();
    }
    for (int i = 0; i < m_; ++i) {
      if (basic_[static_cast<std::size_t>(i)] != -1) continue;
      int s = -1;
      for (int j = 0; j <= n_; ++j) {
        const auto ui = static_cast<std::size_t>(i);
        const auto uj = static_cast<std::size_t>(j);
        if (s == -1 || d_[ui][uj] < d_[ui][static_cast<std::size_t>(s)] ||
            (d_[ui][uj] == d_[ui][static_cast<std::size_t>(s)] &&
             nonbasic_[uj] < nonbasic_[static_cast<std::size_t>(s)])) {
          s = j;
        }
      }
      pivot(i, s);
    }
  }
  if (!iterate(2)) return std::numeric_limits<double>::infinity();
  x.assign(static_cast<std::size_t>(n_), 0.0);
  for (int i = 0; i < m_; ++i) {
    if (basic_[static_cast<std::size_t>(i)] < n_) {
      x[static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)])] =
          d_[static_cast<std::size_t>(i)][un1];
    }
  }
  return d_[static_cast<std::size_t>(m_)][un1];
}

}  // namespace conga::analysis
