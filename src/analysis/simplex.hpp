// Dense two-phase simplex LP solver.
//
// Solves   maximize c.x   subject to   A x <= b,  x >= 0.
// Returns the optimum (+inf if unbounded, -inf if infeasible) and the
// optimal x. Equality constraints are expressed as two inequalities by the
// callers. Sized for the analysis module's small instances (tens of
// variables) — the bottleneck routing game LP of §6.1, not a general solver.
//
// Classic tableau implementation (Bland-style lexicographic tie-breaking for
// anti-cycling), after the well-known contest formulation.
#pragma once

#include <vector>

namespace conga::analysis {

class Simplex {
 public:
  Simplex(const std::vector<std::vector<double>>& A,
          const std::vector<double>& b, const std::vector<double>& c);

  /// Runs the solver; fills `x` on success.
  double solve(std::vector<double>& x);

 private:
  void pivot(int r, int s);
  bool iterate(int phase);

  int m_, n_;
  std::vector<int> basic_, nonbasic_;
  std::vector<std::vector<double>> d_;
};

}  // namespace conga::analysis
