#include "analysis/imbalance_model.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "sim/random.hpp"

namespace conga::analysis {

double expected_imbalance(const workload::FlowSizeDist& dist,
                          const ImbalanceParams& p) {
  sim::Rng rng(p.seed);
  std::poisson_distribution<long> poisson(p.lambda * p.t_seconds);
  const double denom =
      p.lambda * dist.mean_bytes() * p.t_seconds / p.n_links;

  double sum_chi = 0;
  std::vector<double> bins(static_cast<std::size_t>(p.n_links));
  for (int trial = 0; trial < p.trials; ++trial) {
    std::fill(bins.begin(), bins.end(), 0.0);
    const long flows = poisson(rng.engine());
    for (long i = 0; i < flows; ++i) {
      bins[rng.index(bins.size())] += static_cast<double>(dist.sample(rng));
    }
    const auto [mn, mx] = std::minmax_element(bins.begin(), bins.end());
    sum_chi += (*mx - *mn) / denom;
  }
  return sum_chi / p.trials;
}

double effective_rate(const workload::FlowSizeDist& dist, int n_links,
                      double lambda) {
  const double cv = dist.coeff_of_variation();
  return lambda / (8.0 * n_links * std::log(n_links) * (1.0 + cv * cv));
}

double theorem2_bound(const workload::FlowSizeDist& dist, int n_links,
                      double lambda, double t_seconds) {
  return 1.0 / std::sqrt(effective_rate(dist, n_links, lambda) * t_seconds);
}

}  // namespace conga::analysis
