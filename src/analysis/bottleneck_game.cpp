#include "analysis/bottleneck_game.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "analysis/simplex.hpp"

namespace conga::analysis {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Link loads excluding (optionally) one user.
struct Loads {
  std::vector<std::vector<double>> up;    // [leaf][spine]
  std::vector<std::vector<double>> down;  // [spine][leaf]
};

Loads link_loads(const LeafSpineGame& g, const GameFlow& f, int skip_user) {
  Loads L;
  L.up.assign(static_cast<std::size_t>(g.num_leaves),
              std::vector<double>(static_cast<std::size_t>(g.num_spines), 0));
  L.down.assign(static_cast<std::size_t>(g.num_spines),
                std::vector<double>(static_cast<std::size_t>(g.num_leaves), 0));
  for (std::size_t u = 0; u < g.users.size(); ++u) {
    if (static_cast<int>(u) == skip_user) continue;
    const GameUser& user = g.users[u];
    for (int s = 0; s < g.num_spines; ++s) {
      const double amt = f.x[u][static_cast<std::size_t>(s)];
      if (amt <= 0) continue;
      L.up[static_cast<std::size_t>(user.src)][static_cast<std::size_t>(s)] +=
          amt;
      L.down[static_cast<std::size_t>(s)][static_cast<std::size_t>(user.dst)] +=
          amt;
    }
  }
  return L;
}

double util(double load, double cap) {
  if (cap <= 0) return load > 0 ? kInf : 0.0;
  return load / cap;
}

}  // namespace

LeafSpineGame LeafSpineGame::uniform(int leaves, int spines, double cap) {
  LeafSpineGame g;
  g.num_leaves = leaves;
  g.num_spines = spines;
  g.up.assign(static_cast<std::size_t>(leaves),
              std::vector<double>(static_cast<std::size_t>(spines), cap));
  g.down.assign(static_cast<std::size_t>(spines),
                std::vector<double>(static_cast<std::size_t>(leaves), cap));
  return g;
}

bool LeafSpineGame::usable(int u, int s) const {
  const GameUser& user = users[static_cast<std::size_t>(u)];
  return up[static_cast<std::size_t>(user.src)][static_cast<std::size_t>(s)] >
             0 &&
         down[static_cast<std::size_t>(s)][static_cast<std::size_t>(user.dst)] >
             0;
}

GameFlow GameFlow::zeros(const LeafSpineGame& g) {
  GameFlow f;
  f.x.assign(g.users.size(),
             std::vector<double>(static_cast<std::size_t>(g.num_spines), 0));
  return f;
}

double network_bottleneck(const LeafSpineGame& g, const GameFlow& f) {
  const Loads L = link_loads(g, f, -1);
  double b = 0;
  for (int l = 0; l < g.num_leaves; ++l) {
    for (int s = 0; s < g.num_spines; ++s) {
      b = std::max(b, util(L.up[static_cast<std::size_t>(l)]
                               [static_cast<std::size_t>(s)],
                           g.up[static_cast<std::size_t>(l)]
                               [static_cast<std::size_t>(s)]));
      b = std::max(b, util(L.down[static_cast<std::size_t>(s)]
                                 [static_cast<std::size_t>(l)],
                           g.down[static_cast<std::size_t>(s)]
                                 [static_cast<std::size_t>(l)]));
    }
  }
  return b;
}

double user_bottleneck(const LeafSpineGame& g, const GameFlow& f, int u) {
  const Loads L = link_loads(g, f, -1);
  const GameUser& user = g.users[static_cast<std::size_t>(u)];
  double b = 0;
  for (int s = 0; s < g.num_spines; ++s) {
    if (f.x[static_cast<std::size_t>(u)][static_cast<std::size_t>(s)] <= 0) {
      continue;
    }
    b = std::max(b, util(L.up[static_cast<std::size_t>(user.src)]
                             [static_cast<std::size_t>(s)],
                         g.up[static_cast<std::size_t>(user.src)]
                             [static_cast<std::size_t>(s)]));
    b = std::max(b, util(L.down[static_cast<std::size_t>(s)]
                               [static_cast<std::size_t>(user.dst)],
                         g.down[static_cast<std::size_t>(s)]
                               [static_cast<std::size_t>(user.dst)]));
  }
  return b;
}

double optimal_bottleneck(const LeafSpineGame& g, GameFlow* opt_flow) {
  // LP variables: x[u][s] for usable (u,s) pairs, plus B (last variable).
  // Maximize -B subject to:
  //   sum_s x[u][s] = demand_u      (two inequalities)
  //   sum over users at a link - B*cap <= 0
  const int U = static_cast<int>(g.users.size());
  const int S = g.num_spines;
  std::vector<std::vector<int>> var(static_cast<std::size_t>(U),
                                    std::vector<int>(static_cast<std::size_t>(S),
                                                     -1));
  int nvars = 0;
  for (int u = 0; u < U; ++u) {
    for (int s = 0; s < S; ++s) {
      if (g.usable(u, s)) {
        var[static_cast<std::size_t>(u)][static_cast<std::size_t>(s)] =
            nvars++;
      }
    }
  }
  const int bvar = nvars++;  // the bottleneck variable B

  std::vector<std::vector<double>> A;
  std::vector<double> b;
  auto add_row = [&](std::vector<double> row, double rhs) {
    A.push_back(std::move(row));
    b.push_back(rhs);
  };

  for (int u = 0; u < U; ++u) {
    std::vector<double> row(static_cast<std::size_t>(nvars), 0.0);
    bool any = false;
    for (int s = 0; s < S; ++s) {
      const int v = var[static_cast<std::size_t>(u)][static_cast<std::size_t>(s)];
      if (v >= 0) {
        row[static_cast<std::size_t>(v)] = 1.0;
        any = true;
      }
    }
    if (!any) return kInf;  // user has no usable path
    const double d = g.users[static_cast<std::size_t>(u)].demand;
    add_row(row, d);
    for (double& v : row) v = -v;
    add_row(std::move(row), -d);
  }

  auto add_capacity_row = [&](bool is_up, int leaf, int spine, double cap) {
    if (cap <= 0) return;
    std::vector<double> row(static_cast<std::size_t>(nvars), 0.0);
    bool any = false;
    for (int u = 0; u < U; ++u) {
      const GameUser& user = g.users[static_cast<std::size_t>(u)];
      const bool touches = is_up ? user.src == leaf : user.dst == leaf;
      const int v =
          var[static_cast<std::size_t>(u)][static_cast<std::size_t>(spine)];
      if (touches && v >= 0) {
        row[static_cast<std::size_t>(v)] = 1.0;
        any = true;
      }
    }
    if (!any) return;
    row[static_cast<std::size_t>(bvar)] = -cap;
    add_row(std::move(row), 0.0);
  };
  for (int l = 0; l < g.num_leaves; ++l) {
    for (int s = 0; s < S; ++s) {
      add_capacity_row(true, l, s,
                       g.up[static_cast<std::size_t>(l)]
                           [static_cast<std::size_t>(s)]);
      add_capacity_row(false, l, s,
                       g.down[static_cast<std::size_t>(s)]
                             [static_cast<std::size_t>(l)]);
    }
  }

  std::vector<double> c(static_cast<std::size_t>(nvars), 0.0);
  c[static_cast<std::size_t>(bvar)] = -1.0;  // maximize -B

  std::vector<double> x;
  Simplex lp(A, b, c);
  const double value = lp.solve(x);
  if (value == -kInf) return kInf;  // infeasible demands

  if (opt_flow != nullptr) {
    *opt_flow = GameFlow::zeros(g);
    for (int u = 0; u < U; ++u) {
      for (int s = 0; s < S; ++s) {
        const int v =
            var[static_cast<std::size_t>(u)][static_cast<std::size_t>(s)];
        if (v >= 0) {
          opt_flow->x[static_cast<std::size_t>(u)][static_cast<std::size_t>(s)] =
              x[static_cast<std::size_t>(v)];
        }
      }
    }
  }
  return x[static_cast<std::size_t>(bvar)];
}

double best_response(const LeafSpineGame& g, GameFlow& f, int u) {
  const GameUser& user = g.users[static_cast<std::size_t>(u)];
  const Loads others = link_loads(g, f, u);

  // How much user traffic fits through spine s with all its links kept at
  // utilization <= t.
  auto headroom = [&](int s, double t) -> double {
    if (!g.usable(u, s)) return 0.0;
    const double cu = g.up[static_cast<std::size_t>(user.src)]
                          [static_cast<std::size_t>(s)];
    const double cd = g.down[static_cast<std::size_t>(s)]
                            [static_cast<std::size_t>(user.dst)];
    const double hu =
        cu * t -
        others.up[static_cast<std::size_t>(user.src)][static_cast<std::size_t>(s)];
    const double hd =
        cd * t -
        others.down[static_cast<std::size_t>(s)][static_cast<std::size_t>(user.dst)];
    return std::max(0.0, std::min(hu, hd));
  };
  auto feasible = [&](double t) {
    double total = 0;
    for (int s = 0; s < g.num_spines; ++s) total += headroom(s, t);
    return total >= user.demand - 1e-12;
  };

  double lo = 0, hi = 1.0;
  while (!feasible(hi)) {
    hi *= 2;
    if (hi > 1e12) break;  // demands cannot be routed; spread evenly below
  }
  for (int it = 0; it < 100; ++it) {
    const double mid = (lo + hi) / 2;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const double t = hi;

  // Realize the response: fill spines up to the bottleneck level t.
  double remaining = user.demand;
  for (int s = 0; s < g.num_spines; ++s) {
    const double amt = std::min(remaining, headroom(s, t));
    f.x[static_cast<std::size_t>(u)][static_cast<std::size_t>(s)] = amt;
    remaining -= amt;
  }
  // Numerical slack: dump any leftover on the first usable spine.
  if (remaining > 1e-12) {
    for (int s = 0; s < g.num_spines; ++s) {
      if (g.usable(u, s)) {
        f.x[static_cast<std::size_t>(u)][static_cast<std::size_t>(s)] +=
            remaining;
        break;
      }
    }
  }
  return user_bottleneck(g, f, u);
}

int best_response_dynamics(const LeafSpineGame& g, GameFlow& f, double eps,
                           int max_rounds) {
  for (int round = 1; round <= max_rounds; ++round) {
    bool improved = false;
    for (int u = 0; u < static_cast<int>(g.users.size()); ++u) {
      const double before = user_bottleneck(g, f, u);
      const std::vector<double> saved = f.x[static_cast<std::size_t>(u)];
      const double after = best_response(g, f, u);
      if (after < before - eps) {
        improved = true;
      } else {
        f.x[static_cast<std::size_t>(u)] = saved;  // keep incumbent on ties
      }
    }
    if (!improved) return round;
  }
  return max_rounds;
}

bool is_nash(const LeafSpineGame& g, const GameFlow& f, double eps) {
  GameFlow probe = f;
  for (int u = 0; u < static_cast<int>(g.users.size()); ++u) {
    const double before = user_bottleneck(g, f, u);
    probe.x[static_cast<std::size_t>(u)] = f.x[static_cast<std::size_t>(u)];
    const double after = best_response(g, probe, u);
    probe.x[static_cast<std::size_t>(u)] = f.x[static_cast<std::size_t>(u)];
    if (after < before - eps) return false;
  }
  return true;
}

double anarchy_ratio(const LeafSpineGame& g, const GameFlow& nash_flow) {
  const double opt = optimal_bottleneck(g);
  if (opt <= 0 || opt == kInf) return 1.0;
  return network_bottleneck(g, nash_flow) / opt;
}

GameFlow random_flow(const LeafSpineGame& g, sim::Rng& rng) {
  GameFlow f = GameFlow::zeros(g);
  for (std::size_t u = 0; u < g.users.size(); ++u) {
    std::vector<double> w(static_cast<std::size_t>(g.num_spines), 0);
    double total = 0;
    for (int s = 0; s < g.num_spines; ++s) {
      if (g.usable(static_cast<int>(u), s)) {
        // Squared uniforms favour lopsided starts, probing more of the
        // equilibrium landscape than near-even splits would.
        const double r = rng.uniform();
        w[static_cast<std::size_t>(s)] = r * r;
        total += w[static_cast<std::size_t>(s)];
      }
    }
    if (total <= 0) continue;
    for (int s = 0; s < g.num_spines; ++s) {
      f.x[u][static_cast<std::size_t>(s)] =
          g.users[u].demand * w[static_cast<std::size_t>(s)] / total;
    }
  }
  return f;
}

}  // namespace conga::analysis
