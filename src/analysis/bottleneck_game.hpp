// Bottleneck routing game on Leaf-Spine fabrics (paper §6.1, after Banner &
// Orda): users are (source leaf, destination leaf, demand) triples that split
// their traffic over the spines to selfishly minimise their own bottleneck
// — the model of CONGA's uncoordinated leaf decisions.
//
// Provided machinery:
//  * optimal_bottleneck()     — the centralized optimum min-max utilization,
//    solved exactly as an LP (the benchmark Theorem 1 compares against);
//  * best_response()          — a user's exact selfish optimum given the
//    others (water-filling via bisection on the bottleneck level);
//  * best_response_dynamics() — CONGA-style repeated re-balancing;
//  * is_nash() / price_of_anarchy() — equilibrium verification and the
//    Nash-vs-optimal ratio (Theorem 1: at most 2 on Leaf-Spine).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace conga::analysis {

struct GameUser {
  int src;
  int dst;
  double demand;
};

struct LeafSpineGame {
  int num_leaves = 0;
  int num_spines = 0;
  std::vector<std::vector<double>> up;    ///< [leaf][spine] capacity; 0 = none
  std::vector<std::vector<double>> down;  ///< [spine][leaf] capacity; 0 = none
  std::vector<GameUser> users;

  static LeafSpineGame uniform(int leaves, int spines, double cap);
  /// True if user u can route via spine s at all.
  bool usable(int u, int s) const;
};

/// x[user][spine] = traffic of that user through that spine.
struct GameFlow {
  std::vector<std::vector<double>> x;

  static GameFlow zeros(const LeafSpineGame& g);
};

/// Utilization of every link under `f`: (up utilizations, down utilizations).
double network_bottleneck(const LeafSpineGame& g, const GameFlow& f);

/// Max utilization among links that user u actually uses (b_u in the paper).
double user_bottleneck(const LeafSpineGame& g, const GameFlow& f, int u);

/// Centralized optimum B* = min over feasible flows of the network
/// bottleneck. Returns B*; fills `*opt_flow` if non-null. Returns +inf if
/// the demands cannot be routed at all.
double optimal_bottleneck(const LeafSpineGame& g, GameFlow* opt_flow = nullptr);

/// Replaces user u's strategy with its exact best response to the others.
/// Returns the user's new bottleneck.
double best_response(const LeafSpineGame& g, GameFlow& f, int u);

/// Round-robin best-response until no user improves by more than eps.
/// Returns the number of full rounds executed (== max_rounds if it did not
/// settle).
int best_response_dynamics(const LeafSpineGame& g, GameFlow& f,
                           double eps = 1e-9, int max_rounds = 200);

/// True if no user can improve its bottleneck by more than eps.
bool is_nash(const LeafSpineGame& g, const GameFlow& f, double eps = 1e-6);

/// Nash-vs-optimal bottleneck ratio for a given equilibrium flow.
double anarchy_ratio(const LeafSpineGame& g, const GameFlow& nash_flow);

/// Random feasible-ish starting flow (each user splits over its usable
/// spines with random weights) for exploring the equilibrium landscape.
GameFlow random_flow(const LeafSpineGame& g, sim::Rng& rng);

}  // namespace conga::analysis
