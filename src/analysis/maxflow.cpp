#include "analysis/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace conga::analysis {

namespace {
constexpr double kEps = 1e-12;
}

MaxFlow::MaxFlow(int num_nodes)
    : graph_(static_cast<std::size_t>(num_nodes)),
      level_(static_cast<std::size_t>(num_nodes)),
      iter_(static_cast<std::size_t>(num_nodes)) {}

void MaxFlow::add_edge(int u, int v, double capacity) {
  const auto su = static_cast<std::size_t>(u);
  const auto sv = static_cast<std::size_t>(v);
  edge_index_.emplace_back(u, static_cast<int>(graph_[su].size()));
  graph_[su].push_back(
      Edge{v, capacity, capacity, static_cast<int>(graph_[sv].size())});
  graph_[sv].push_back(
      Edge{u, 0.0, 0.0, static_cast<int>(graph_[su].size()) - 1});
}

void MaxFlow::reset() {
  for (auto& adj : graph_) {
    for (Edge& e : adj) e.cap = e.initial_cap;
  }
}

bool MaxFlow::bfs(int s, int t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<int> q;
  level_[static_cast<std::size_t>(s)] = 0;
  q.push(s);
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (const Edge& e : graph_[static_cast<std::size_t>(v)]) {
      if (e.cap > kEps && level_[static_cast<std::size_t>(e.to)] < 0) {
        level_[static_cast<std::size_t>(e.to)] =
            level_[static_cast<std::size_t>(v)] + 1;
        q.push(e.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(t)] >= 0;
}

double MaxFlow::dfs(int v, int t, double pushed) {
  if (v == t) return pushed;
  for (int& i = iter_[static_cast<std::size_t>(v)];
       i < static_cast<int>(graph_[static_cast<std::size_t>(v)].size()); ++i) {
    Edge& e = graph_[static_cast<std::size_t>(v)][static_cast<std::size_t>(i)];
    if (e.cap > kEps && level_[static_cast<std::size_t>(v)] <
                            level_[static_cast<std::size_t>(e.to)]) {
      const double d = dfs(e.to, t, std::min(pushed, e.cap));
      if (d > kEps) {
        e.cap -= d;
        graph_[static_cast<std::size_t>(e.to)][static_cast<std::size_t>(e.rev)]
            .cap += d;
        return d;
      }
    }
  }
  return 0;
}

double MaxFlow::solve(int s, int t) {
  double flow = 0;
  while (bfs(s, t)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    double f = 0;
    while ((f = dfs(s, t, std::numeric_limits<double>::infinity())) > kEps) {
      flow += f;
    }
  }
  return flow;
}

double MaxFlow::edge_flow(int index) const {
  const auto [node, offset] = edge_index_[static_cast<std::size_t>(index)];
  const Edge& e =
      graph_[static_cast<std::size_t>(node)][static_cast<std::size_t>(offset)];
  return e.initial_cap - e.cap;
}

}  // namespace conga::analysis
