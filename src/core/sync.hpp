// Annotated synchronization primitives.
//
// Thin wrappers over <mutex> and <thread> carrying the Clang
// thread-safety-analysis attributes (src/core/thread_annotations.hpp), so
// lock discipline is statically checkable under -Wthread-safety while
// compiling to exactly the std primitives everywhere else.
//
//  * Mutex / MutexLock — std::mutex plus CAPABILITY/SCOPED_CAPABILITY
//    annotations; members guarded by a Mutex declare CONGA_GUARDED_BY(mu_).
//  * ThreadChecker — a *thread-confinement* capability (the simulator's
//    single-writer components: TraceSink rings, ProbeRegistry, PacketPool).
//    It is not a lock: check() asserts, for the analysis, that the calling
//    context is the owning thread, and — in CONGA_CHECK_INVARIANTS builds —
//    verifies it at runtime (lazy-bound to the first checking thread, like
//    the components themselves, which are created and used on one worker).
//    Members declared CONGA_GUARDED_BY(checker_) are then inaccessible from
//    any method that forgot to check, and a cross-thread use aborts with a
//    report in invariant builds instead of corrupting a digest.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "core/thread_annotations.hpp"

namespace conga::core {

/// std::mutex with capability annotations.
class CONGA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CONGA_ACQUIRE() { mu_.lock(); }
  void unlock() CONGA_RELEASE() { mu_.unlock(); }
  bool try_lock() CONGA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock holding a Mutex for the enclosing scope.
class CONGA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CONGA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CONGA_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Thread-confinement capability (see file comment). Zero-cost in regular
/// builds: check() is an empty inline function carrying only the
/// assert_capability attribute.
class CONGA_CAPABILITY("role") ThreadChecker {
 public:
  /// Asserts that the caller runs on the owning thread. Binds the owner on
  /// first call (construction-site threads never touch some components, so
  /// binding at first *use* matches the confinement that matters).
  void check() const CONGA_ASSERT_CAPABILITY() {
#ifdef CONGA_CHECK_INVARIANTS
    const std::uint64_t self = current_thread_token();
    std::uint64_t bound = owner_.load(std::memory_order_relaxed);
    if (bound == 0) {
      if (owner_.compare_exchange_strong(bound, self,
                                         std::memory_order_relaxed)) {
        return;
      }
      // Lost the race: `bound` now holds the winner's token.
    }
    if (bound != self) {
      std::fprintf(stderr,
                   "ThreadChecker: component bound to thread %016llx touched "
                   "from thread %016llx — thread-confined state crossed a "
                   "thread boundary\n",
                   static_cast<unsigned long long>(bound),
                   static_cast<unsigned long long>(self));
      std::abort();
    }
#endif
  }

  /// Releases ownership so the next check() rebinds (explicit handoff, e.g.
  /// a component built on the main thread then given to one worker).
  void detach() {
#ifdef CONGA_CHECK_INVARIANTS
    owner_.store(0, std::memory_order_relaxed);
#endif
  }

 private:
#ifdef CONGA_CHECK_INVARIANTS
  static std::uint64_t current_thread_token() {
    const std::uint64_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return h | 1;  // 0 is the "unbound" sentinel
  }

  mutable std::atomic<std::uint64_t> owner_{0};
#endif
};

}  // namespace conga::core
