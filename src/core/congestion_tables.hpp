// Congestion-To-Leaf and Congestion-From-Leaf tables (paper §3.3, Fig 6).
//
//  * Congestion-To-Leaf (at the *source* leaf): remote path congestion per
//    (destination leaf, uplink/LBTag) — the values the load-balancing
//    decision combines with the local DREs. Populated from piggybacked
//    feedback.
//  * Congestion-From-Leaf (at the *destination* leaf): latest CE received per
//    (source leaf, LBTag), waiting to be fed back. Feedback is selected
//    round-robin, favouring entries whose value changed since they were last
//    fed back (§3.3 step 4).
//
// Both tables age: a metric not refreshed within `age_after` decays linearly
// to zero over the following `age_after` period ("a simple aging mechanism
// ... gradually decays to zero", §3.3), which also guarantees a
// congested-looking path is eventually probed again.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/flow_key.hpp"
#include "sim/time.hpp"

namespace conga::telemetry {
class TraceSink;
}  // namespace conga::telemetry

namespace conga::core {

struct MetricCell {
  std::uint8_t value = 0;
  sim::TimeNs updated = -1;  ///< -1: never written
  bool changed = false;      ///< changed since last fed back (From-Leaf only)
};

struct CongestionTableConfig {
  int num_leaves = 0;
  int num_uplinks = 0;  ///< max LBTag values (<= 16 with the 4-bit field)
  sim::TimeNs age_after = sim::milliseconds(10);
  /// Prefer entries whose value changed since last fed back (§3.3 step 4
  /// optimization); false = plain round-robin (ablation).
  bool favor_changed = true;
};

/// Applies the aging rule to a raw cell value.
std::uint8_t aged_value(const MetricCell& cell, sim::TimeNs now,
                        sim::TimeNs age_after);

/// Remote metrics table at the source leaf: [dst_leaf][uplink] -> metric.
class CongestionToLeafTable {
 public:
  explicit CongestionToLeafTable(const CongestionTableConfig& cfg);

  /// Records feedback: congestion `metric` for our uplink `lbtag` on paths
  /// toward `dst_leaf`.
  void update(net::LeafId dst_leaf, int lbtag, std::uint8_t metric,
              sim::TimeNs now);

  /// The aged remote metric for (dst_leaf, uplink). Unknown cells read 0,
  /// so unprobed paths look attractive and get explored.
  std::uint8_t metric(net::LeafId dst_leaf, int uplink, sim::TimeNs now) const;

  const CongestionTableConfig& config() const { return cfg_; }

  /// Routes update events to `sink` under component `comp`.
  void set_telemetry(telemetry::TraceSink* sink, std::uint32_t comp) {
    tele_ = sink;
    tele_comp_ = comp;
  }

 private:
  CongestionTableConfig cfg_;
  telemetry::TraceSink* tele_ = nullptr;
  std::uint32_t tele_comp_ = 0;
  std::vector<MetricCell> cells_;  // row-major [leaf][uplink]
};

/// Received-CE table at the destination leaf: [src_leaf][lbtag] -> metric,
/// with the round-robin / changed-first feedback selector.
class CongestionFromLeafTable {
 public:
  explicit CongestionFromLeafTable(const CongestionTableConfig& cfg);

  /// Records the CE of a packet received from `src_leaf` with tag `lbtag`.
  void update(net::LeafId src_leaf, int lbtag, std::uint8_t ce,
              sim::TimeNs now);

  struct Feedback {
    std::uint8_t lbtag;
    std::uint8_t metric;
  };

  /// Picks the feedback pair to piggyback on a packet headed to `dst_leaf`
  /// (the reverse of the direction the metrics describe): round-robin over
  /// LBTags, preferring changed entries; marks the chosen one clean.
  /// Returns nullopt if nothing was ever received from that leaf.
  std::optional<Feedback> pick_feedback(net::LeafId dst_leaf, sim::TimeNs now);

  /// Raw (un-aged) view for tests.
  std::uint8_t raw(net::LeafId src_leaf, int lbtag) const;

  /// Routes update events to `sink` under component `comp`.
  void set_telemetry(telemetry::TraceSink* sink, std::uint32_t comp) {
    tele_ = sink;
    tele_comp_ = comp;
  }

 private:
  CongestionTableConfig cfg_;
  telemetry::TraceSink* tele_ = nullptr;
  std::uint32_t tele_comp_ = 0;
  std::vector<MetricCell> cells_;        // row-major [leaf][lbtag]
  std::vector<int> rr_next_;             // per-leaf round-robin cursor
  std::vector<bool> any_;                // per-leaf: ever updated
};

}  // namespace conga::core
