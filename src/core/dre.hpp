// Discounting Rate Estimator (paper §3.2).
//
// One register X per link: incremented by the packet size on every
// transmission, multiplied by (1 - alpha) every Tdre. Then X ~= R * tau with
// tau = Tdre / alpha, i.e. X tracks the link rate through a first-order
// low-pass filter that reacts immediately to bursts. The link's congestion
// metric is X / (C * tau) quantized to Q bits.
//
// Implementation note: instead of a per-link timer firing every Tdre (which
// would dominate the event queue), the decay is applied lazily — on access we
// multiply by (1-alpha)^k for the k whole periods that elapsed. This is
// bit-identical to the periodic version at period boundaries and free
// otherwise.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "sim/time.hpp"

namespace conga::telemetry {
class TraceSink;
}  // namespace conga::telemetry

namespace conga::core {

struct DreConfig {
  // Defaults give the paper's tau = 160us. Alpha trades estimator ripple
  // against decay cost: at steady rate R the register oscillates within
  // [(1-alpha) R tau, R tau] across each decay period, so a small alpha
  // keeps X ~= R tau tight.
  sim::TimeNs t_dre = sim::microseconds(20);  ///< decay period
  double alpha = 0.125;                       ///< multiplicative decay factor
  int q_bits = 3;                             ///< quantization bits (Q)

  /// Time constant tau = Tdre / alpha; the (1 - 1/e) rise time of the filter.
  sim::TimeNs tau() const {
    return static_cast<sim::TimeNs>(static_cast<double>(t_dre) / alpha);
  }
};

class Dre {
 public:
  /// `link_rate_bps` is C, the capacity used to normalize the estimate.
  Dre(DreConfig cfg, double link_rate_bps);

  /// Records `bytes` sent at time `now`.
  void add(std::uint32_t bytes, sim::TimeNs now);

  /// Estimated link rate in bits/s at time `now`.
  double rate_bps(sim::TimeNs now) const;

  /// Estimated utilization X / (C * tau) in [0, +inf) — can transiently
  /// exceed 1 during bursts.
  double utilization(sim::TimeNs now) const;

  /// The Q-bit congestion metric: round(utilization * (2^Q - 1)), clamped to
  /// [0, 2^Q - 1].
  std::uint8_t quantized(sim::TimeNs now) const;

  /// Largest representable metric value (2^Q - 1).
  std::uint8_t max_metric() const { return max_metric_; }

  /// Rescales the normalization capacity C to `scale` of the construction
  /// rate (runtime capacity degradation: utilization is measured against the
  /// link's *current* capacity, as the switch ASIC tracking a shrunken LAG
  /// would). scale == 1 restores the nominal rate.
  void set_rate_scale(double scale);

  const DreConfig& config() const { return cfg_; }
  double raw_register(sim::TimeNs now) const;

  /// Names this estimator in invariant-violation reports (the owning link's
  /// name); optional, defaults to "dre".
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

  /// Routes register-update events to `sink` under component `comp`
  /// (normally the owning link's interned name). nullptr detaches.
  void set_telemetry(telemetry::TraceSink* sink, std::uint32_t comp) {
    tele_ = sink;
    tele_comp_ = comp;
  }

 private:
  void decay_to(sim::TimeNs now) const;

  DreConfig cfg_;
  telemetry::TraceSink* tele_ = nullptr;
  std::uint32_t tele_comp_ = 0;
  std::string label_ = "dre";
  double nominal_capacity_bytes_per_tau_;  ///< C * tau at construction rate
  double capacity_bytes_per_tau_;          ///< C * tau, in bytes (scaled)
  std::uint8_t max_metric_;
  mutable double x_ = 0.0;            ///< the register, in bytes
  mutable std::int64_t last_period_ = 0;  ///< floor(now / Tdre) at last decay
};

}  // namespace conga::core
