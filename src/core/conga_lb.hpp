// CONGA: the paper's load-balancing algorithm, as a LeafSwitch strategy.
//
// Combines (per §3 / Fig 6):
//  * per-uplink local DREs (owned by the uplink links themselves),
//  * the Congestion-To-Leaf table of remote path metrics,
//  * the Congestion-From-Leaf table + piggybacked feedback selection,
//  * the Flowlet Table.
//
// Decision rule (§3.5): on the first packet of a flowlet pick the uplink
// minimizing max(local DRE metric, remote metric to the destination leaf);
// ties prefer the port the flow last used (a flow only moves for a strictly
// better uplink), then random. Subsequent packets of the flowlet stick to the
// cached port.
//
// CONGA-Flow (§5) is this class with the flowlet gap set above the maximum
// path latency (one decision per flow); see make_conga_flow_config().
#pragma once

#include <cstdint>
#include <string>

#include "core/congestion_tables.hpp"
#include "core/flowlet_table.hpp"
#include "lb/load_balancer.hpp"
#include "net/leaf_switch.hpp"

namespace conga::core {

/// The LBTag field is 4 bits wide (§3.1).
constexpr int kMaxLbTagValues = 16;

struct CongaConfig {
  FlowletTableConfig flowlet;                           ///< Tfl = 500us default
  sim::TimeNs metric_age_after = sim::milliseconds(10);  ///< §3.3 aging
  bool feedback_favor_changed = true;  ///< §3.3 step 4 (ablation knob)
};

/// CONGA-Flow: one load-balancing decision per flow, by choosing a flowlet
/// gap larger than any path latency (13 ms in the paper's testbed).
inline CongaConfig make_conga_flow_config(
    sim::TimeNs gap = sim::milliseconds(13)) {
  CongaConfig cfg;
  cfg.flowlet.gap = gap;
  return cfg;
}

class CongaLb final : public lb::LoadBalancer {
 public:
  /// `num_leaves` sizes the congestion tables; the uplink count is taken from
  /// the leaf (which must be fully wired before the balancer is installed).
  CongaLb(net::LeafSwitch& leaf, int num_leaves, const CongaConfig& cfg,
          std::string display_name = "CONGA");

  int select_uplink(const net::Packet& pkt, net::LeafId dst_leaf,
                    sim::TimeNs now) override;
  void on_fabric_receive(const net::Packet& pkt, sim::TimeNs now) override;
  void annotate(net::Packet& pkt, int uplink, sim::TimeNs now) override;
  void attach_telemetry(telemetry::TraceSink* sink) override;
  std::string name() const override { return display_name_; }

  /// The §3.5 rule in isolation (no flowlet cache); exposed for tests.
  int decide(const net::FlowKey& key, net::LeafId dst_leaf, sim::TimeNs now);

  /// Path cost for one uplink: max(local, remote).
  std::uint8_t cost(net::LeafId dst_leaf, int uplink, sim::TimeNs now) const;

  FlowletTable& flowlets() { return flowlets_; }
  const CongestionToLeafTable& to_leaf_table() const { return to_leaf_; }
  CongestionFromLeafTable& from_leaf_table() { return from_leaf_; }

 private:
  net::LeafSwitch& leaf_;
  std::string display_name_;
  FlowletTable flowlets_;
  CongestionToLeafTable to_leaf_;
  CongestionFromLeafTable from_leaf_;
};

}  // namespace conga::core
