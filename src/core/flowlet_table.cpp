#include "core/flowlet_table.hpp"

#include "debug/invariants.hpp"
#include "telemetry/telemetry.hpp"

namespace conga::core {

FlowletTable::FlowletTable(const FlowletTableConfig& cfg)
    : cfg_(cfg), entries_(cfg.num_entries) {}

std::size_t FlowletTable::index(const net::FlowKey& key) const {
  return static_cast<std::size_t>(key.hash() % entries_.size());
}

bool FlowletTable::expired(const Entry& e, sim::TimeNs now) const {
  if (!e.valid) return true;
  if (cfg_.expiry == FlowletExpiry::kTimestamp) {
    return now - e.last_seen > cfg_.gap;
  }
  // Age-bit semantics: a timer fires at t = k*Tfl. At each tick, an entry
  // whose age bit is still set (no packet since the *previous* tick) expires.
  // The first tick that can expire an entry last touched at time s is the
  // second tick boundary after s, i.e. (floor(s/Tfl) + 2) * Tfl.
  const sim::TimeNs first_expiring_tick =
      (e.last_seen / cfg_.gap + 2) * cfg_.gap;
  return now >= first_expiring_tick;
}

int FlowletTable::lookup(const net::FlowKey& key, sim::TimeNs now) {
  Entry& e = entries_[index(key)];
  if (expired(e, now)) {
    if (e.valid) {
      telemetry::emit(tele_, telemetry::EventType::kFlowletExpire, tele_comp_,
                      now, key.hash(),
                      static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(e.port)));
    }
    e.valid = false;
    return -1;
  }
  // A hit: the entry must be live and its timestamp in the past.
  CONGA_INVARIANT(check_flowlet_entry(label_, now, e.last_seen, cfg_.gap,
                                      e.valid, e.port));
  e.last_seen = now;
  return e.port;
}

void FlowletTable::install(const net::FlowKey& key, int port, sim::TimeNs now) {
  Entry& e = entries_[index(key)];
  telemetry::emit(tele_,
                  e.port != -1 && e.port != port
                      ? telemetry::EventType::kFlowletPathChange
                      : telemetry::EventType::kFlowletCreate,
                  tele_comp_, now, key.hash(),
                  static_cast<std::uint64_t>(static_cast<std::uint32_t>(port)));
  e.port = port;
  e.valid = true;
  e.last_seen = now;
  ++new_flowlets_;
  CONGA_INVARIANT(check_flowlet_entry(label_, now, e.last_seen, cfg_.gap,
                                      e.valid, e.port));
}

int FlowletTable::last_port(const net::FlowKey& key) const {
  return entries_[index(key)].port;
}

std::size_t FlowletTable::active_flowlets(sim::TimeNs now) const {
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (e.valid && !expired(e, now)) ++n;
  }
  return n;
}

}  // namespace conga::core
