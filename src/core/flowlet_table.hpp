// Flowlet Table (paper §3.4).
//
// A fixed-size table indexed by a hash of the packet's 5-tuple. Each entry
// holds only {port, valid, age} — no flow identifier — so, exactly as in the
// ASIC, hash collisions silently merge flows onto one entry (paper Remark 1:
// collisions merely forgo some load-balancing opportunities).
//
// Two expiry modes:
//  * kTimestamp — an entry expires exactly Tfl after its last packet
//    (idealised behaviour, the default);
//  * kAgeBit — reproduces the hardware's single age bit checked by a periodic
//    timer: detects gaps between Tfl and 2*Tfl. Modelled lazily from the last
//    packet timestamp (an entry is expired at `now` iff a timer tick has
//    passed that found it untouched for a full period), which is equivalent
//    to the bit-and-timer mechanism without per-entry scan events.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/flow_key.hpp"
#include "sim/time.hpp"

namespace conga::telemetry {
class TraceSink;
}  // namespace conga::telemetry

namespace conga::core {

enum class FlowletExpiry { kTimestamp, kAgeBit };

struct FlowletTableConfig {
  std::size_t num_entries = 64 * 1024;                ///< 64K in the ASIC
  sim::TimeNs gap = sim::microseconds(500);           ///< Tfl
  FlowletExpiry expiry = FlowletExpiry::kTimestamp;
};

class FlowletTable {
 public:
  explicit FlowletTable(const FlowletTableConfig& cfg);

  /// Looks up the entry for `key` at time `now`.
  /// Returns the cached uplink port if the flowlet is still active (and
  /// refreshes its liveness), or -1 if a new flowlet starts.
  int lookup(const net::FlowKey& key, sim::TimeNs now);

  /// Records the decision for a new flowlet (marks the entry valid).
  void install(const net::FlowKey& key, int port, sim::TimeNs now);

  /// The port stored in the (possibly expired) entry — the paper's tie-break
  /// prefers "the port cached in the (invalid) entry", i.e. a flow only moves
  /// when a strictly better uplink exists. Returns -1 if never set.
  int last_port(const net::FlowKey& key) const;

  /// Number of currently active flowlets (O(n); for tests/inspection).
  std::size_t active_flowlets(sim::TimeNs now) const;

  std::uint64_t new_flowlets() const { return new_flowlets_; }
  const FlowletTableConfig& config() const { return cfg_; }

  /// Names this table in invariant-violation reports (e.g. the owning leaf);
  /// optional, defaults to "flowlet_table".
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

  /// Routes create/expire/path-change events to `sink` under component
  /// `comp` (normally "<leaf>/flowlets"). nullptr detaches.
  void set_telemetry(telemetry::TraceSink* sink, std::uint32_t comp) {
    tele_ = sink;
    tele_comp_ = comp;
  }

 private:
  struct Entry {
    std::int32_t port = -1;
    bool valid = false;
    sim::TimeNs last_seen = 0;
  };

  bool expired(const Entry& e, sim::TimeNs now) const;
  std::size_t index(const net::FlowKey& key) const;

  FlowletTableConfig cfg_;
  telemetry::TraceSink* tele_ = nullptr;
  std::uint32_t tele_comp_ = 0;
  std::string label_ = "flowlet_table";
  std::vector<Entry> entries_;
  std::uint64_t new_flowlets_ = 0;
};

}  // namespace conga::core
