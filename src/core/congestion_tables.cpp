#include "core/congestion_tables.hpp"

#include <cassert>

#include "telemetry/telemetry.hpp"

namespace conga::core {

namespace {
/// Packs (leaf, lbtag) into the event's `a` payload.
std::uint64_t pack_cell(net::LeafId leaf, int lbtag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(leaf)) << 8) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(lbtag) & 0xff);
}
}  // namespace

std::uint8_t aged_value(const MetricCell& cell, sim::TimeNs now,
                        sim::TimeNs age_after) {
  if (cell.updated < 0) return 0;
  const sim::TimeNs age = now - cell.updated;
  if (age <= age_after) return cell.value;
  if (age >= 2 * age_after) return 0;
  // Linear decay to zero over the second age_after period.
  const double frac = static_cast<double>(2 * age_after - age) /
                      static_cast<double>(age_after);
  return static_cast<std::uint8_t>(static_cast<double>(cell.value) * frac);
}

CongestionToLeafTable::CongestionToLeafTable(const CongestionTableConfig& cfg)
    : cfg_(cfg),
      cells_(static_cast<std::size_t>(cfg.num_leaves) * cfg.num_uplinks) {}

void CongestionToLeafTable::update(net::LeafId dst_leaf, int lbtag,
                                   std::uint8_t metric, sim::TimeNs now) {
  assert(dst_leaf >= 0 && dst_leaf < cfg_.num_leaves);
  assert(lbtag >= 0 && lbtag < cfg_.num_uplinks);
  MetricCell& c = cells_[static_cast<std::size_t>(dst_leaf) * cfg_.num_uplinks +
                         lbtag];
  c.value = metric;
  c.updated = now;
  telemetry::emit(tele_, telemetry::EventType::kCongaToLeafUpdate, tele_comp_,
                  now, pack_cell(dst_leaf, lbtag), metric);
}

std::uint8_t CongestionToLeafTable::metric(net::LeafId dst_leaf, int uplink,
                                           sim::TimeNs now) const {
  assert(dst_leaf >= 0 && dst_leaf < cfg_.num_leaves);
  assert(uplink >= 0 && uplink < cfg_.num_uplinks);
  const MetricCell& c =
      cells_[static_cast<std::size_t>(dst_leaf) * cfg_.num_uplinks + uplink];
  return aged_value(c, now, cfg_.age_after);
}

CongestionFromLeafTable::CongestionFromLeafTable(
    const CongestionTableConfig& cfg)
    : cfg_(cfg),
      cells_(static_cast<std::size_t>(cfg.num_leaves) * cfg.num_uplinks),
      rr_next_(static_cast<std::size_t>(cfg.num_leaves), 0),
      any_(static_cast<std::size_t>(cfg.num_leaves), false) {}

void CongestionFromLeafTable::update(net::LeafId src_leaf, int lbtag,
                                     std::uint8_t ce, sim::TimeNs now) {
  assert(src_leaf >= 0 && src_leaf < cfg_.num_leaves);
  assert(lbtag >= 0 && lbtag < cfg_.num_uplinks);
  MetricCell& c = cells_[static_cast<std::size_t>(src_leaf) * cfg_.num_uplinks +
                         lbtag];
  if (c.value != ce || c.updated < 0) c.changed = true;
  c.value = ce;
  c.updated = now;
  any_[static_cast<std::size_t>(src_leaf)] = true;
  telemetry::emit(tele_, telemetry::EventType::kCongaFromLeafUpdate,
                  tele_comp_, now, pack_cell(src_leaf, lbtag), ce);
}

std::uint8_t CongestionFromLeafTable::raw(net::LeafId src_leaf,
                                          int lbtag) const {
  return cells_[static_cast<std::size_t>(src_leaf) * cfg_.num_uplinks + lbtag]
      .value;
}

std::optional<CongestionFromLeafTable::Feedback>
CongestionFromLeafTable::pick_feedback(net::LeafId dst_leaf, sim::TimeNs now) {
  assert(dst_leaf >= 0 && dst_leaf < cfg_.num_leaves);
  const auto leaf = static_cast<std::size_t>(dst_leaf);
  if (!any_[leaf]) return std::nullopt;

  const int n = cfg_.num_uplinks;
  MetricCell* row = &cells_[leaf * static_cast<std::size_t>(n)];
  int& cursor = rr_next_[leaf];

  auto take = [&](int i) -> Feedback {
    MetricCell& c = row[i];
    c.changed = false;
    cursor = (i + 1) % n;
    return Feedback{static_cast<std::uint8_t>(i),
                    aged_value(c, now, cfg_.age_after)};
  };

  // First pass: the next *changed* entry in round-robin order.
  if (cfg_.favor_changed) {
    for (int k = 0; k < n; ++k) {
      const int i = (cursor + k) % n;
      if (row[i].updated >= 0 && row[i].changed) return take(i);
    }
  }
  // Otherwise: the next ever-written entry in round-robin order.
  for (int k = 0; k < n; ++k) {
    const int i = (cursor + k) % n;
    if (row[i].updated >= 0) return take(i);
  }
  return std::nullopt;
}

}  // namespace conga::core
