#include "core/conga_lb.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace conga::core {

namespace {
CongestionTableConfig table_config(int num_leaves, int num_uplinks,
                                   const CongaConfig& cfg) {
  CongestionTableConfig t;
  t.num_leaves = num_leaves;
  t.num_uplinks = num_uplinks;
  t.age_after = cfg.metric_age_after;
  t.favor_changed = cfg.feedback_favor_changed;
  return t;
}
}  // namespace

CongaLb::CongaLb(net::LeafSwitch& leaf, int num_leaves, const CongaConfig& cfg,
                 std::string display_name)
    : leaf_(leaf),
      display_name_(std::move(display_name)),
      flowlets_(cfg.flowlet),
      to_leaf_(table_config(num_leaves, static_cast<int>(leaf.uplinks().size()),
                            cfg)),
      // The From-Leaf table is indexed by the *remote* leaf's LBTag, whose
      // range is bounded by the 4-bit field, not by our own uplink count
      // (remote leaves may have more uplinks than we do).
      from_leaf_(table_config(num_leaves, kMaxLbTagValues, cfg)) {
  assert(!leaf.uplinks().empty() &&
         "install CONGA after wiring the leaf's uplinks");
  flowlets_.set_label(leaf.name() + "/flowlets");
}

void CongaLb::attach_telemetry(telemetry::TraceSink* sink) {
  if (sink == nullptr) {
    flowlets_.set_telemetry(nullptr, 0);
    to_leaf_.set_telemetry(nullptr, 0);
    from_leaf_.set_telemetry(nullptr, 0);
    return;
  }
  flowlets_.set_telemetry(sink,
                          sink->intern_component(leaf_.name() + "/flowlets"));
  to_leaf_.set_telemetry(sink,
                         sink->intern_component(leaf_.name() + "/to_leaf"));
  from_leaf_.set_telemetry(
      sink, sink->intern_component(leaf_.name() + "/from_leaf"));
}

std::uint8_t CongaLb::cost(net::LeafId dst_leaf, int uplink,
                           sim::TimeNs now) const {
  const std::uint8_t local =
      leaf_.uplinks()[static_cast<std::size_t>(uplink)].link->dre().quantized(
          now);
  const std::uint8_t remote = to_leaf_.metric(dst_leaf, uplink, now);
  return std::max(local, remote);
}

int CongaLb::decide(const net::FlowKey& key, net::LeafId dst_leaf,
                    sim::TimeNs now) {
  const int n = static_cast<int>(leaf_.uplinks().size());
  std::uint8_t best = 255;
  // Collect the argmin set to break ties as §3.5 prescribes, considering
  // only uplinks that are valid next hops for this destination.
  std::vector<int> ties;
  ties.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (!leaf_.uplink_reaches(i, dst_leaf)) continue;
    const std::uint8_t c = cost(dst_leaf, i, now);
    if (c < best) {
      best = c;
      ties.clear();
      ties.push_back(i);
    } else if (c == best) {
      ties.push_back(i);
    }
  }
  const int prev = flowlets_.last_port(key);
  if (prev >= 0 &&
      std::find(ties.begin(), ties.end(), prev) != ties.end()) {
    return prev;  // a flow only moves if a strictly better uplink exists
  }
  return ties[leaf_.rng().index(ties.size())];
}

int CongaLb::select_uplink(const net::Packet& pkt, net::LeafId dst_leaf,
                           sim::TimeNs now) {
  const net::FlowKey key = pkt.wire_key();
  const int cached = flowlets_.lookup(key, now);
  if (cached >= 0 && cached < static_cast<int>(leaf_.uplinks().size()) &&
      leaf_.uplink_reaches(cached, dst_leaf)) {
    return cached;
  }
  const int chosen = decide(key, dst_leaf, now);
  flowlets_.install(key, chosen, now);
  return chosen;
}

void CongaLb::annotate(net::Packet& pkt, int /*uplink*/, sim::TimeNs now) {
  // LBTag was stamped by the leaf; add one piggybacked feedback pair for the
  // destination (the metrics we have been collecting *from* it).
  if (auto fb = from_leaf_.pick_feedback(pkt.overlay.dst_leaf, now)) {
    pkt.overlay.fb_valid = true;
    pkt.overlay.fb_lbtag = fb->lbtag;
    pkt.overlay.fb_metric = fb->metric;
  }
}

void CongaLb::on_fabric_receive(const net::Packet& pkt, sim::TimeNs now) {
  const net::OverlayHeader& oh = pkt.overlay;
  // Forward direction: the packet's CE is the max congestion it saw on the
  // path identified by (src_leaf, lbtag).
  from_leaf_.update(oh.src_leaf, oh.lbtag, oh.ce, now);
  // Piggybacked feedback: congestion of *our* uplink fb_lbtag on paths toward
  // the leaf this packet came from.
  if (oh.fb_valid &&
      oh.fb_lbtag < leaf_.uplinks().size()) {
    to_leaf_.update(oh.src_leaf, oh.fb_lbtag, oh.fb_metric, now);
  }
}

}  // namespace conga::core
