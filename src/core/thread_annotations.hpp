// Portable Clang thread-safety-analysis annotations.
//
// Wraps the `thread_safety` attribute family so annotated code compiles on
// every toolchain: under Clang the macros expand to the real attributes and
// a build with -Wthread-safety (the CI `analysis` lane sets
// CONGA_THREAD_SAFETY=ON, which adds -Wthread-safety -Werror=thread-safety)
// statically verifies lock discipline; under GCC they expand to nothing.
//
// This is the static complement to the TSan lane: TSan finds races a test
// happens to execute, the annotations reject lock-discipline violations at
// compile time on every path. The annotated primitives live in
// src/core/sync.hpp (Mutex, MutexLock, ThreadChecker).
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define CONGA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CONGA_THREAD_ANNOTATION(x)  // no-op on non-Clang toolchains
#endif

/// Marks a class as a capability (e.g. a mutex, or a thread-confinement
/// role). `x` names the capability kind in diagnostics ("mutex", "role").
#define CONGA_CAPABILITY(x) CONGA_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define CONGA_SCOPED_CAPABILITY CONGA_THREAD_ANNOTATION(scoped_lockable)

/// Data member is protected by the given capability.
#define CONGA_GUARDED_BY(x) CONGA_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define CONGA_PT_GUARDED_BY(x) CONGA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability/capabilities held on entry (and does not
/// release them).
#define CONGA_REQUIRES(...) \
  CONGA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past the return.
#define CONGA_ACQUIRE(...) \
  CONGA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define CONGA_RELEASE(...) \
  CONGA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define CONGA_TRY_ACQUIRE(b, ...) \
  CONGA_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrant locking).
#define CONGA_EXCLUDES(...) CONGA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (without acquiring) that the calling context holds the
/// capability; the analysis treats it as held for the rest of the scope.
/// Used by ThreadChecker::check() for thread-confined components.
#define CONGA_ASSERT_CAPABILITY(...) \
  CONGA_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define CONGA_RETURN_CAPABILITY(x) CONGA_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function (e.g. test
/// scaffolding deliberately violating discipline).
#define CONGA_NO_THREAD_SAFETY_ANALYSIS \
  CONGA_THREAD_ANNOTATION(no_thread_safety_analysis)
