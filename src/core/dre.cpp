#include "core/dre.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "debug/invariants.hpp"
#include "telemetry/telemetry.hpp"

namespace conga::core {

Dre::Dre(DreConfig cfg, double link_rate_bps)
    : cfg_(cfg),
      nominal_capacity_bytes_per_tau_(link_rate_bps / 8.0 *
                                      sim::to_seconds(cfg.tau())),
      capacity_bytes_per_tau_(nominal_capacity_bytes_per_tau_),
      max_metric_(static_cast<std::uint8_t>((1u << cfg.q_bits) - 1)) {}

void Dre::set_rate_scale(double scale) {
  capacity_bytes_per_tau_ = nominal_capacity_bytes_per_tau_ * scale;
}

void Dre::decay_to(sim::TimeNs now) const {
  const std::int64_t period = now / cfg_.t_dre;
  if (period <= last_period_) return;
  const std::int64_t k = period - last_period_;
#if defined(CONGA_CHECK_INVARIANTS) && CONGA_CHECK_INVARIANTS
  const double before = x_;
#endif
  // (1-alpha)^k decays below any measurable value quickly; short-circuit the
  // pow for long idle stretches.
  if (k > 200) {
    x_ = 0.0;
  } else {
    x_ *= std::pow(1.0 - cfg_.alpha, static_cast<double>(k));
  }
  last_period_ = period;
  CONGA_INVARIANT(check_dre_register(label_, now, before, x_));
}

void Dre::add(std::uint32_t bytes, sim::TimeNs now) {
  decay_to(now);
  x_ += static_cast<double>(bytes);
  telemetry::emit(tele_, telemetry::EventType::kDreUpdate, tele_comp_, now,
                  bytes, std::bit_cast<std::uint64_t>(x_));
}

double Dre::raw_register(sim::TimeNs now) const {
  decay_to(now);
  return x_;
}

double Dre::rate_bps(sim::TimeNs now) const {
  decay_to(now);
  return x_ * 8.0 / sim::to_seconds(cfg_.tau());
}

double Dre::utilization(sim::TimeNs now) const {
  decay_to(now);
  return x_ / capacity_bytes_per_tau_;
}

std::uint8_t Dre::quantized(sim::TimeNs now) const {
  const double u = utilization(now);
  const double scaled = std::round(u * static_cast<double>(max_metric_));
  return static_cast<std::uint8_t>(
      std::clamp(scaled, 0.0, static_cast<double>(max_metric_)));
}

}  // namespace conga::core
