// Declarative fault plans.
//
// A FaultPlan is data: a list of typed fault specifications with explicit
// targets and times, independent of any simulation instance. The
// FaultInjector executes a plan against a Fabric; the same plan replayed
// against an identically-seeded fabric reproduces the same fault schedule
// bit-for-bit, which is what lets the chaos auditor compare load-balancing
// policies under *identical* adversity.
//
// Times are absolute simulation times. A `stop` at or before `start` means
// the fault never clears (it persists through the drain). Plans that want a
// clean drain (every flow eventually completes) should clear their faults
// before the traffic stop time — make_random_plan() does.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "net/topology.hpp"
#include "sim/time.hpp"

namespace conga::fault {

/// A link that flaps: starting at `start` the (leaf, spine, parallel) pair
/// alternates down/up with exponentially distributed dwell times (a 2-state
/// Markov process), until `stop`, when it is restored for good. Each
/// transition goes through Fabric::fail/restore_fabric_link with
/// `detection_delay`, so flaps faster than the detection window exercise the
/// control plane's re-entrancy handling.
struct LinkFlapSpec {
  int leaf = 0;
  int spine = 0;
  int parallel = 0;
  sim::TimeNs mean_down_dwell = sim::microseconds(200);
  sim::TimeNs mean_up_dwell = sim::microseconds(500);
  sim::TimeNs detection_delay = sim::microseconds(100);
  sim::TimeNs start = 0;
  sim::TimeNs stop = 0;
};

/// Capacity degradation: the pair runs at `rate_scale` of nominal between
/// `start` and `stop`. The routing layer does not react (the link stays in
/// the forwarding tables) — only congestion-aware schemes can route around
/// it, which is exactly the paper's Fig 16 asymmetry scenario, induced at
/// runtime.
struct DegradeSpec {
  int leaf = 0;
  int spine = 0;
  int parallel = 0;
  double rate_scale = 0.1;  ///< fraction of nominal rate, in (0, 1]
  bool both_directions = true;
  sim::TimeNs start = 0;
  sim::TimeNs stop = 0;
};

/// Gray failure: the link stays "up" to the control plane but loses each
/// packet with `drop_prob` and corrupts each surviving packet with
/// `corrupt_prob` (discarded at the receiver, like a CRC failure). Draws
/// come from a per-spec keyed RNG stream, so the loss pattern is
/// reproducible and independent of traffic.
struct GrayFailureSpec {
  int leaf = 0;
  int spine = 0;
  int parallel = 0;
  double drop_prob = 0.01;
  double corrupt_prob = 0.0;
  bool both_directions = true;
  sim::TimeNs start = 0;
  sim::TimeNs stop = 0;
};

/// Switch reboot: every fabric link attached to the switch fails at `at` and
/// is restored at `at + outage` (each through the usual detection window).
/// For a leaf this severs all its uplinks — its hosts are unreachable until
/// the reboot completes and transports recover via RTO.
struct SwitchRebootSpec {
  enum class Kind : std::uint8_t { kLeaf = 0, kSpine = 1 };
  Kind kind = Kind::kSpine;
  int index = 0;
  sim::TimeNs at = 0;
  sim::TimeNs outage = sim::milliseconds(1);
  sim::TimeNs detection_delay = sim::microseconds(100);
};

/// Stale-feedback injection: between `start` and `stop` the chosen uplink
/// stops raising the CONGA CE field of packets it transmits, so remote
/// leaves keep acting on frozen congestion information for paths through it.
struct StaleFeedbackSpec {
  int leaf = 0;
  int spine = 0;
  int parallel = 0;
  sim::TimeNs start = 0;
  sim::TimeNs stop = 0;
};

using FaultSpec = std::variant<LinkFlapSpec, DegradeSpec, GrayFailureSpec,
                               SwitchRebootSpec, StaleFeedbackSpec>;

struct FaultPlan {
  std::vector<FaultSpec> faults;

  bool empty() const { return faults.empty(); }
  std::size_t size() const { return faults.size(); }

  FaultPlan& add(FaultSpec spec) {
    faults.push_back(spec);
    return *this;
  }
};

/// Knobs for make_random_plan(). Fault counts are drawn uniformly in
/// [min_faults, max_faults]; targets, kinds, and times uniformly over the
/// topology and [0, horizon), with every fault clearing by `horizon` so a
/// post-traffic drain can complete.
struct RandomPlanConfig {
  int min_faults = 1;
  int max_faults = 4;
  sim::TimeNs horizon = sim::milliseconds(5);
  sim::TimeNs detection_delay = sim::microseconds(100);
  double max_gray_drop_prob = 0.05;
  double max_gray_corrupt_prob = 0.02;
};

/// Generates a randomized fault campaign over `topo`, deterministic in
/// `seed`. Used by tools/chaos_audit; also convenient for fuzz-style tests.
FaultPlan make_random_plan(const net::TopologyConfig& topo, std::uint64_t seed,
                           const RandomPlanConfig& cfg = {});

}  // namespace conga::fault
