#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/probes.hpp"

namespace conga::fault {

namespace {

// RNG stream key classes for the injector's per-spec streams (fabric uses
// 1..3 for leaves/spines/LBs; the injector continues the registry).
constexpr std::uint64_t kFlapStream = 4ULL << 56;
constexpr std::uint64_t kGrayStream = 5ULL << 56;

std::uint64_t pack_triple(int leaf, int spine, int parallel) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(leaf)) << 16) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(spine)) << 8) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(parallel));
}

std::uint64_t ppm(double p) {
  return static_cast<std::uint64_t>(std::llround(p * 1e6));
}

sim::TimeNs dwell(sim::Rng& rng, sim::TimeNs mean) {
  const double d = rng.exponential(static_cast<double>(mean));
  return std::max<sim::TimeNs>(1, static_cast<sim::TimeNs>(d));
}

}  // namespace

FaultInjector::FaultInjector(net::Fabric& fabric, std::uint64_t seed)
    : fabric_(fabric), sched_(fabric.scheduler()), rng_(seed) {}

void FaultInjector::arm(const FaultPlan& plan) {
  if (plan.empty()) return;
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    const FaultSpec& spec = plan.faults[i];
    if (const auto* f = std::get_if<LinkFlapSpec>(&spec)) {
      arm_flap(*f, i);
    } else if (const auto* d = std::get_if<DegradeSpec>(&spec)) {
      arm_degrade(*d);
    } else if (const auto* g = std::get_if<GrayFailureSpec>(&spec)) {
      arm_gray(*g, i);
    } else if (const auto* r = std::get_if<SwitchRebootSpec>(&spec)) {
      arm_reboot(*r);
    } else if (const auto* sf = std::get_if<StaleFeedbackSpec>(&spec)) {
      arm_stale(*sf);
    }
  }
  if (telemetry::TraceSink* sink = fabric_.telemetry()) {
    sink->probes().add_counter("fault/transitions",
                               [this] { return transitions_; });
  }
}

void FaultInjector::emit(telemetry::EventType type, std::uint64_t a,
                         std::uint64_t b) {
  telemetry::TraceSink* sink = fabric_.telemetry();
  if (sink == nullptr) return;
  if (!comp_interned_) {
    comp_ = sink->intern_component("fault_injector");
    comp_interned_ = true;
  }
  telemetry::emit(sink, type, comp_, sched_.now(), a, b);
}

void FaultInjector::arm_flap(const LinkFlapSpec& s, std::size_t index) {
  auto st = std::make_unique<FlapState>();
  st->spec = s;
  st->rng = sim::Rng(rng_.stream_seed(kFlapStream | index));
  FlapState* p = st.get();
  flaps_.push_back(std::move(st));
  sched_.schedule_at(s.start, [this, p] { flap_toggle(p); });
}

void FaultInjector::flap_toggle(FlapState* st) {
  const LinkFlapSpec& s = st->spec;
  const sim::TimeNs now = sched_.now();
  if (!st->down) {
    if (now >= s.stop) return;  // window over while up: flap is done
    fabric_.fail_fabric_link(s.leaf, s.spine, s.parallel, s.detection_delay);
    st->down = true;
    ++transitions_;
    emit(telemetry::EventType::kFaultLinkFlap, 1,
         pack_triple(s.leaf, s.spine, s.parallel));
    sched_.schedule_after(dwell(st->rng, s.mean_down_dwell),
                          [this, st] { flap_toggle(st); });
  } else {
    // Always leave the link up: the down->up edge runs even past `stop`.
    fabric_.restore_fabric_link(s.leaf, s.spine, s.parallel,
                                s.detection_delay);
    st->down = false;
    ++transitions_;
    emit(telemetry::EventType::kFaultLinkFlap, 0,
         pack_triple(s.leaf, s.spine, s.parallel));
    if (now >= s.stop) return;
    sched_.schedule_after(dwell(st->rng, s.mean_up_dwell),
                          [this, st] { flap_toggle(st); });
  }
}

void FaultInjector::arm_degrade(const DegradeSpec& s) {
  auto apply = [this, s](double scale) {
    if (net::Link* up = fabric_.up_link(s.leaf, s.spine, s.parallel)) {
      up->set_rate_scale(scale);
    }
    if (s.both_directions) {
      if (net::Link* dn = fabric_.down_link(s.spine, s.leaf, s.parallel)) {
        dn->set_rate_scale(scale);
      }
    }
  };
  const auto permille =
      static_cast<std::uint64_t>(std::llround(s.rate_scale * 1000.0));
  sched_.schedule_at(s.start, [this, apply, s, permille] {
    apply(s.rate_scale);
    ++transitions_;
    emit(telemetry::EventType::kFaultDegrade, 1, permille);
  });
  if (s.stop > s.start) {
    sched_.schedule_at(s.stop, [this, apply, permille] {
      apply(1.0);
      ++transitions_;
      emit(telemetry::EventType::kFaultDegrade, 0, permille);
    });
  }
}

void FaultInjector::arm_gray(const GrayFailureSpec& s, std::size_t index) {
  // Distinct streams for the two directions, so enabling the reverse
  // direction does not perturb the forward loss pattern.
  const std::uint64_t up_seed = rng_.stream_seed(kGrayStream | (index << 1));
  const std::uint64_t dn_seed =
      rng_.stream_seed(kGrayStream | (index << 1) | 1);
  const std::uint64_t detail = (ppm(s.drop_prob) << 32) | ppm(s.corrupt_prob);
  sched_.schedule_at(s.start, [this, s, up_seed, dn_seed, detail] {
    if (net::Link* up = fabric_.up_link(s.leaf, s.spine, s.parallel)) {
      up->set_gray_failure(s.drop_prob, s.corrupt_prob, up_seed);
    }
    if (s.both_directions) {
      if (net::Link* dn = fabric_.down_link(s.spine, s.leaf, s.parallel)) {
        dn->set_gray_failure(s.drop_prob, s.corrupt_prob, dn_seed);
      }
    }
    ++transitions_;
    emit(telemetry::EventType::kFaultGray, 1, detail);
  });
  if (s.stop > s.start) {
    sched_.schedule_at(s.stop, [this, s, detail] {
      if (net::Link* up = fabric_.up_link(s.leaf, s.spine, s.parallel)) {
        up->clear_gray_failure();
      }
      if (s.both_directions) {
        if (net::Link* dn = fabric_.down_link(s.spine, s.leaf, s.parallel)) {
          dn->clear_gray_failure();
        }
      }
      ++transitions_;
      emit(telemetry::EventType::kFaultGray, 0, detail);
    });
  }
}

void FaultInjector::set_switch_links(const SwitchRebootSpec& s, bool down) {
  const net::TopologyConfig& topo = fabric_.config();
  auto toggle = [this, &s, down](int leaf, int spine, int parallel) {
    if (fabric_.up_link(leaf, spine, parallel) == nullptr) return;
    if (down) {
      fabric_.fail_fabric_link(leaf, spine, parallel, s.detection_delay);
    } else {
      fabric_.restore_fabric_link(leaf, spine, parallel, s.detection_delay);
    }
  };
  if (s.kind == SwitchRebootSpec::Kind::kLeaf) {
    for (int sp = 0; sp < topo.num_spines; ++sp) {
      for (int p = 0; p < topo.links_per_spine; ++p) toggle(s.index, sp, p);
    }
  } else {
    for (int l = 0; l < topo.num_leaves; ++l) {
      for (int p = 0; p < topo.links_per_spine; ++p) toggle(l, s.index, p);
    }
  }
}

void FaultInjector::arm_reboot(const SwitchRebootSpec& s) {
  const std::uint64_t detail =
      (static_cast<std::uint64_t>(s.kind) << 16) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.index) &
                                 0xffffU);
  sched_.schedule_at(s.at, [this, s, detail] {
    set_switch_links(s, true);
    ++transitions_;
    emit(telemetry::EventType::kFaultSwitchReboot, 1, detail);
  });
  sched_.schedule_at(s.at + s.outage, [this, s, detail] {
    set_switch_links(s, false);
    ++transitions_;
    emit(telemetry::EventType::kFaultSwitchReboot, 0, detail);
  });
}

void FaultInjector::arm_stale(const StaleFeedbackSpec& s) {
  sched_.schedule_at(s.start, [this, s] {
    if (net::Link* up = fabric_.up_link(s.leaf, s.spine, s.parallel)) {
      up->set_ce_suppressed(true);
    }
    ++transitions_;
    emit(telemetry::EventType::kFaultStaleFeedback, 1,
         pack_triple(s.leaf, s.spine, s.parallel));
  });
  if (s.stop > s.start) {
    sched_.schedule_at(s.stop, [this, s] {
      if (net::Link* up = fabric_.up_link(s.leaf, s.spine, s.parallel)) {
        up->set_ce_suppressed(false);
      }
      ++transitions_;
      emit(telemetry::EventType::kFaultStaleFeedback, 0,
           pack_triple(s.leaf, s.spine, s.parallel));
    });
  }
}

}  // namespace conga::fault
