// FaultInjector: executes a FaultPlan against a Fabric.
//
// arm() walks the plan and schedules every fault transition on the fabric's
// scheduler. Link flaps run as per-spec Markov on/off state machines whose
// dwell times come from keyed RNG streams (Rng::stream_seed of the injector
// seed and the spec index), so the fault schedule is a pure function of
// (plan, seed) — independent of traffic, and bit-reproducible across runs
// and across worker threads of the parallel experiment runner.
//
// Strictly pay-for-what-you-use: constructing an injector and arming an
// empty plan schedules nothing, draws no randomness, and interns no
// telemetry components, so a run with no faults is bit-identical to a run
// without an injector (the seed-corpus digests prove it).
//
// Every transition the injector applies is counted (transitions()) and
// emitted as a kFault* telemetry event under the "fault_injector" component;
// the induced link/routing changes additionally emit their own kLink*
// events from the layers that perform them.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault_plan.hpp"
#include "net/fabric.hpp"
#include "sim/random.hpp"
#include "telemetry/telemetry.hpp"

namespace conga::fault {

class FaultInjector {
 public:
  /// `seed` is the root of the injector's keyed RNG streams; campaigns that
  /// must be comparable across policies pass the same seed (and plan).
  FaultInjector(net::Fabric& fabric, std::uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every fault in `plan`. Normally called once, before the
  /// simulation runs (all spec times are absolute). An empty plan is a
  /// complete no-op.
  void arm(const FaultPlan& plan);

  /// Fault transitions applied so far (assert + clear each count as one).
  std::uint64_t transitions() const { return transitions_; }

 private:
  struct FlapState {
    LinkFlapSpec spec;
    sim::Rng rng{0};
    bool down = false;
  };

  void arm_flap(const LinkFlapSpec& s, std::size_t index);
  void flap_toggle(FlapState* st);
  void arm_degrade(const DegradeSpec& s);
  void arm_gray(const GrayFailureSpec& s, std::size_t index);
  void arm_reboot(const SwitchRebootSpec& s);
  void arm_stale(const StaleFeedbackSpec& s);

  /// Fails (down = true) or restores every fabric link pair attached to the
  /// switch named by `s`.
  void set_switch_links(const SwitchRebootSpec& s, bool down);

  void emit(telemetry::EventType type, std::uint64_t a, std::uint64_t b);

  net::Fabric& fabric_;
  sim::Scheduler& sched_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<FlapState>> flaps_;
  std::uint64_t transitions_ = 0;
  bool comp_interned_ = false;
  telemetry::ComponentId comp_ = 0;
};

}  // namespace conga::fault
