#include "fault/fault_plan.hpp"

#include <algorithm>

#include "sim/random.hpp"

namespace conga::fault {

FaultPlan make_random_plan(const net::TopologyConfig& topo, std::uint64_t seed,
                           const RandomPlanConfig& cfg) {
  sim::Rng rng(seed);
  FaultPlan plan;
  const int n = static_cast<int>(
      rng.uniform_int(cfg.min_faults, std::max(cfg.min_faults,
                                               cfg.max_faults)));
  // A fault window [start, stop) drawn so that stop <= horizon: faults clear
  // before the drain, keeping randomized campaigns livable by construction.
  auto window = [&](sim::TimeNs& start, sim::TimeNs& stop) {
    const auto h = static_cast<double>(cfg.horizon);
    start = static_cast<sim::TimeNs>(rng.uniform(0.0, 0.6 * h));
    stop = static_cast<sim::TimeNs>(
        rng.uniform(static_cast<double>(start) + 0.05 * h, h));
  };
  auto triple = [&](int& leaf, int& spine, int& parallel) {
    leaf = static_cast<int>(rng.uniform_int(0, topo.num_leaves - 1));
    spine = static_cast<int>(rng.uniform_int(0, topo.num_spines - 1));
    parallel = static_cast<int>(rng.uniform_int(0, topo.links_per_spine - 1));
  };

  for (int i = 0; i < n; ++i) {
    switch (rng.uniform_int(0, 4)) {
      case 0: {
        LinkFlapSpec s;
        triple(s.leaf, s.spine, s.parallel);
        window(s.start, s.stop);
        s.detection_delay = cfg.detection_delay;
        s.mean_down_dwell = static_cast<sim::TimeNs>(
            rng.uniform(static_cast<double>(sim::microseconds(50)),
                        static_cast<double>(sim::microseconds(500))));
        s.mean_up_dwell = static_cast<sim::TimeNs>(
            rng.uniform(static_cast<double>(sim::microseconds(100)),
                        static_cast<double>(sim::milliseconds(1))));
        plan.add(s);
        break;
      }
      case 1: {
        DegradeSpec s;
        triple(s.leaf, s.spine, s.parallel);
        window(s.start, s.stop);
        s.rate_scale = rng.uniform(0.05, 0.5);
        plan.add(s);
        break;
      }
      case 2: {
        GrayFailureSpec s;
        triple(s.leaf, s.spine, s.parallel);
        window(s.start, s.stop);
        s.drop_prob = rng.uniform(0.0, cfg.max_gray_drop_prob);
        s.corrupt_prob = rng.uniform(0.0, cfg.max_gray_corrupt_prob);
        plan.add(s);
        break;
      }
      case 3: {
        SwitchRebootSpec s;
        // Leaf reboots sever all of a rack's uplinks; spine reboots remove
        // one core switch. Both must end early enough to drain.
        s.kind = rng.chance(0.5) ? SwitchRebootSpec::Kind::kLeaf
                                 : SwitchRebootSpec::Kind::kSpine;
        s.index = static_cast<int>(rng.uniform_int(
            0, (s.kind == SwitchRebootSpec::Kind::kLeaf ? topo.num_leaves
                                                        : topo.num_spines) -
                   1));
        const auto h = static_cast<double>(cfg.horizon);
        s.at = static_cast<sim::TimeNs>(rng.uniform(0.0, 0.5 * h));
        s.outage = static_cast<sim::TimeNs>(
            rng.uniform(0.05 * h, std::min(0.25 * h,
                                           static_cast<double>(cfg.horizon -
                                                               s.at))));
        s.detection_delay = cfg.detection_delay;
        plan.add(s);
        break;
      }
      default: {
        StaleFeedbackSpec s;
        triple(s.leaf, s.spine, s.parallel);
        window(s.start, s.stop);
        plan.add(s);
        break;
      }
    }
  }
  return plan;
}

}  // namespace conga::fault
