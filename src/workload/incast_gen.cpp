#include "workload/incast_gen.hpp"

#include <cassert>
#include <utility>

namespace conga::workload {

IncastGenerator::IncastGenerator(net::Fabric& fabric,
                                 tcp::FlowFactory factory,
                                 const IncastConfig& cfg)
    : fabric_(fabric),
      factory_(std::move(factory)),
      cfg_(cfg),
      rng_(cfg.seed) {
  assert(!cfg_.servers.empty());
}

void IncastGenerator::start() {
  fabric_.scheduler().schedule_after(0, [this] {
    first_start_ = fabric_.scheduler().now();
    start_round();
  });
}

void IncastGenerator::start_round() {
  // The request fan-out costs one client->server one-way delay; model it as
  // half the base RTT before the synchronized responses fire.
  const sim::TimeNs request_delay = fabric_.base_rtt(200) / 2;
  fabric_.scheduler().schedule_after(request_delay, [this] {
    round_flows_.clear();
    const auto n = static_cast<std::uint64_t>(cfg_.servers.size());
    const std::uint64_t per_server = std::max<std::uint64_t>(
        1, cfg_.total_bytes / n);
    pending_ = static_cast<int>(cfg_.servers.size());
    for (net::HostId server : cfg_.servers) {
      net::FlowKey key;
      key.src_host = server;
      key.dst_host = cfg_.client;
      key.src_port = static_cast<std::uint16_t>(
          cfg_.base_port + (flow_seq_ % 2048) * 16);
      key.dst_port = static_cast<std::uint16_t>(
          cfg_.base_port + 1 + flow_seq_ / 2048);
      ++flow_seq_;
      auto flow = factory_(fabric_.scheduler(), fabric_.host(server),
                           fabric_.host(cfg_.client), key, per_server,
                           [this](tcp::FlowHandle&) { on_flow_complete(); });
      round_flows_.push_back(std::move(flow));
    }
    // Start after building the whole batch (completions mutate no state the
    // loop still touches), each server with its own small response jitter.
    for (auto& f : round_flows_) {
      tcp::FlowHandle* raw = f.get();
      const sim::TimeNs jitter =
          cfg_.start_jitter > 0
              ? static_cast<sim::TimeNs>(rng_.uniform_int(0, cfg_.start_jitter))
              : 0;
      fabric_.scheduler().schedule_after(jitter, [raw] { raw->start(); });
    }
  });
}

void IncastGenerator::on_flow_complete() {
  if (--pending_ > 0) return;
  ++rounds_done_;
  last_end_ = fabric_.scheduler().now();
  if (rounds_done_ < cfg_.rounds) {
    // Defer: destroying the finished flows must not happen inside their own
    // completion callback.
    fabric_.scheduler().schedule_after(0, [this] { start_round(); });
  }
}

double IncastGenerator::goodput_fraction() const {
  if (rounds_done_ == 0 || last_end_ <= first_start_) return 0;
  const auto n = static_cast<std::uint64_t>(cfg_.servers.size());
  const std::uint64_t per_round =
      std::max<std::uint64_t>(1, cfg_.total_bytes / n) * n;
  const double bytes =
      static_cast<double>(per_round) * static_cast<double>(rounds_done_);
  const double secs = sim::to_seconds(last_end_ - first_start_);
  const double rate = fabric_.config().host_link_bps;
  return bytes * 8.0 / secs / rate;
}

}  // namespace conga::workload
