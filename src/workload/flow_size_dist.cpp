#include "workload/flow_size_dist.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace conga::workload {

namespace {

/// Mean of the size over one log-linear CDF segment, times its probability
/// mass: integral of s0*(s1/s0)^x over x in [0,1], scaled by (c1-c0).
double segment_mean(double s0, double s1, double dc) {
  if (dc <= 0) return 0;
  if (s1 <= s0) return dc * s0;
  return dc * (s1 - s0) / std::log(s1 / s0);
}

double segment_mean_sq(double s0, double s1, double dc) {
  if (dc <= 0) return 0;
  if (s1 <= s0) return dc * s0 * s0;
  return dc * (s1 * s1 - s0 * s0) / (2.0 * std::log(s1 / s0));
}

}  // namespace

FlowSizeDist::FlowSizeDist(std::string name, std::vector<CdfPoint> points)
    : name_(std::move(name)), points_(std::move(points)) {
  assert(points_.size() >= 1);
  assert(points_.back().cdf == 1.0);
  double mean = segment_mean(points_[0].size_bytes, points_[0].size_bytes,
                             points_[0].cdf);
  double mean_sq = segment_mean_sq(points_[0].size_bytes,
                                   points_[0].size_bytes, points_[0].cdf);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const auto& a = points_[i - 1];
    const auto& b = points_[i];
    assert(b.size_bytes >= a.size_bytes && b.cdf >= a.cdf);
    mean += segment_mean(a.size_bytes, b.size_bytes, b.cdf - a.cdf);
    mean_sq += segment_mean_sq(a.size_bytes, b.size_bytes, b.cdf - a.cdf);
  }
  mean_ = mean;
  stddev_ = std::sqrt(std::max(0.0, mean_sq - mean * mean));
}

double FlowSizeDist::quantile(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  if (u <= points_.front().cdf) return points_.front().size_bytes;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const auto& a = points_[i - 1];
    const auto& b = points_[i];
    if (u <= b.cdf) {
      if (b.cdf == a.cdf || b.size_bytes <= a.size_bytes) return b.size_bytes;
      const double frac = (u - a.cdf) / (b.cdf - a.cdf);
      return a.size_bytes *
             std::pow(b.size_bytes / a.size_bytes, frac);
    }
  }
  return points_.back().size_bytes;
}

std::uint64_t FlowSizeDist::sample(sim::Rng& rng) const {
  const double s = quantile(rng.uniform());
  return static_cast<std::uint64_t>(std::max(1.0, std::round(s)));
}

double FlowSizeDist::cdf(double size_bytes) const {
  if (size_bytes <= points_.front().size_bytes) {
    return size_bytes < points_.front().size_bytes ? 0.0
                                                   : points_.front().cdf;
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const auto& a = points_[i - 1];
    const auto& b = points_[i];
    if (size_bytes <= b.size_bytes) {
      if (b.size_bytes <= a.size_bytes) return b.cdf;
      const double frac =
          std::log(size_bytes / a.size_bytes) /
          std::log(b.size_bytes / a.size_bytes);
      return a.cdf + (b.cdf - a.cdf) * frac;
    }
  }
  return 1.0;
}

double FlowSizeDist::byte_cdf(double size_bytes) const {
  // E[S ; S <= s] / E[S], accumulating closed-form partial segments.
  double acc = 0.0;
  if (size_bytes >= points_.front().size_bytes) {
    acc += points_.front().cdf * points_.front().size_bytes;
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const auto& a = points_[i - 1];
    const auto& b = points_[i];
    if (size_bytes >= b.size_bytes) {
      acc += segment_mean(a.size_bytes, b.size_bytes, b.cdf - a.cdf);
    } else if (size_bytes > a.size_bytes) {
      const double c_at = cdf(size_bytes);
      acc += segment_mean(a.size_bytes, size_bytes, c_at - a.cdf);
      break;
    } else {
      break;
    }
  }
  return acc / mean_;
}

const FlowSizeDist& enterprise() {
  static const FlowSizeDist dist(
      "enterprise",
      {{100, 0.10},   {200, 0.25},   {400, 0.40},  {1e3, 0.55},
       {2e3, 0.62},   {5e3, 0.70},   {2e4, 0.78},  {1e5, 0.85},
       {5e5, 0.90},   {2e6, 0.94},   {1e7, 0.97},  {3.5e7, 0.99},
       {1e8, 1.0}});
  return dist;
}

const FlowSizeDist& data_mining() {
  static const FlowSizeDist dist(
      "data-mining",
      {{100, 0.03},   {180, 0.10},   {250, 0.20},   {560, 0.30},
       {900, 0.40},   {1100, 0.50},  {1870, 0.60},  {3160, 0.70},
       {1e4, 0.80},   {4e5, 0.90},   {3.16e6, 0.95}, {1e8, 0.98},
       {1e9, 1.0}});
  return dist;
}

const FlowSizeDist& web_search() {
  static const FlowSizeDist dist(
      "web-search",
      {{6e3, 0.15},   {1.3e4, 0.20}, {1.9e4, 0.30}, {3.3e4, 0.40},
       {5.3e4, 0.53}, {1.33e5, 0.60}, {6.67e5, 0.70}, {1.333e6, 0.80},
       {3.333e6, 0.90}, {6.667e6, 0.95}, {2e7, 1.0}});
  return dist;
}

FlowSizeDist fixed_size(double bytes) {
  return FlowSizeDist("fixed", {{bytes, 1.0}});
}

}  // namespace conga::workload
