#include "workload/flowlet_study.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

namespace conga::workload {

std::vector<TracePacket> generate_bursty_trace(const FlowSizeDist& dist,
                                               const BurstyTraceConfig& cfg) {
  sim::Rng rng(cfg.seed);
  std::vector<TracePacket> trace;
  std::uint64_t flow_id = 0;
  double t_arrival = 0;

  while (true) {
    t_arrival += rng.exponential(1.0 / cfg.flow_arrival_per_sec);
    const auto start = static_cast<sim::TimeNs>(t_arrival * 1e9);
    if (start >= cfg.duration) break;

    std::uint64_t size = dist.sample(rng);
    // Per-flow application rate (log-uniform over the configured range):
    // sets the pause between NIC bursts.
    const double log_lo = std::log(cfg.min_app_rate_bps);
    const double log_hi = std::log(cfg.max_app_rate_bps);
    const double app_rate = std::exp(rng.uniform(log_lo, log_hi));

    sim::TimeNs t = start;
    const std::uint64_t id = flow_id++;
    while (size > 0) {
      const std::uint32_t burst = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(cfg.burst_bytes, size));
      // Emit the burst as MTU packets at line rate.
      std::uint32_t remaining = burst;
      sim::TimeNs tp = t;
      while (remaining > 0) {
        const std::uint32_t pkt = std::min(cfg.mtu, remaining);
        trace.push_back(TracePacket{tp, id, pkt});
        tp += static_cast<sim::TimeNs>(static_cast<double>(pkt) * 8.0 /
                                       cfg.line_rate_bps * 1e9);
        remaining -= pkt;
      }
      size -= burst;
      // Next burst when the application average rate catches up.
      t += static_cast<sim::TimeNs>(static_cast<double>(burst) * 8.0 /
                                    app_rate * 1e9);
    }
  }

  std::sort(trace.begin(), trace.end(),
            [](const TracePacket& a, const TracePacket& b) {
              if (a.flow_id != b.flow_id) return a.flow_id < b.flow_id;
              return a.time < b.time;
            });
  return trace;
}

std::vector<std::uint64_t> split_flowlets(const std::vector<TracePacket>& trace,
                                          sim::TimeNs gap) {
  std::vector<std::uint64_t> sizes;
  std::uint64_t cur_flow = UINT64_MAX;
  sim::TimeNs last_time = 0;
  std::uint64_t acc = 0;
  for (const TracePacket& p : trace) {
    const bool new_transfer =
        p.flow_id != cur_flow || p.time - last_time > gap;
    if (new_transfer && acc > 0) {
      sizes.push_back(acc);
      acc = 0;
    }
    cur_flow = p.flow_id;
    last_time = p.time;
    acc += p.bytes;
  }
  if (acc > 0) sizes.push_back(acc);
  return sizes;
}

std::vector<double> bytes_cdf_at(const std::vector<std::uint64_t>& sizes,
                                 const std::vector<double>& query_sizes) {
  std::vector<std::uint64_t> sorted = sizes;
  std::sort(sorted.begin(), sorted.end());
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  std::vector<double> out;
  out.reserve(query_sizes.size());
  double acc = 0;
  std::size_t i = 0;
  for (double q : query_sizes) {
    while (i < sorted.size() && static_cast<double>(sorted[i]) <= q) {
      acc += static_cast<double>(sorted[i]);
      ++i;
    }
    out.push_back(total > 0 ? acc / total : 0.0);
  }
  return out;
}

double bytes_median_size(const std::vector<std::uint64_t>& sizes,
                         double frac) {
  std::vector<std::uint64_t> sorted = sizes;
  std::sort(sorted.begin(), sorted.end());
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  double acc = 0;
  for (std::uint64_t s : sorted) {
    acc += static_cast<double>(s);
    if (acc >= frac * total) return static_cast<double>(s);
  }
  return sorted.empty() ? 0.0 : static_cast<double>(sorted.back());
}

std::vector<std::size_t> concurrent_flows(const std::vector<TracePacket>& trace,
                                          sim::TimeNs window) {
  // interval index -> set of flows; traces are small enough for a map pass.
  std::map<sim::TimeNs, std::vector<std::uint64_t>> buckets;
  for (const TracePacket& p : trace) {
    buckets[p.time / window].push_back(p.flow_id);
  }
  std::vector<std::size_t> counts;
  counts.reserve(buckets.size());
  for (auto& [idx, flows] : buckets) {
    std::sort(flows.begin(), flows.end());
    flows.erase(std::unique(flows.begin(), flows.end()), flows.end());
    counts.push_back(flows.size());
  }
  return counts;
}

}  // namespace conga::workload
