#include "workload/experiment.hpp"

#include "stats/digest.hpp"

namespace conga::workload {

ExperimentResult run_fct_experiment(const ExperimentConfig& cfg) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, cfg.topo, cfg.fabric_seed);
  fabric.install_lb(cfg.lb);
  if (cfg.fabric_hook) cfg.fabric_hook(fabric);

  TrafficGenConfig gen_cfg;
  gen_cfg.load = cfg.load;
  gen_cfg.stop = cfg.warmup + cfg.measure;
  gen_cfg.measure_start = cfg.warmup;
  gen_cfg.measure_stop = cfg.warmup + cfg.measure;
  gen_cfg.seed = cfg.traffic_seed;

  tcp::FlowFactory transport =
      cfg.transport ? cfg.transport : tcp::make_tcp_flow_factory({});
  TrafficGenerator gen(fabric, transport, cfg.dist, gen_cfg);
  gen.start();

  ExperimentResult r;
  r.drained = run_with_drain(sched, gen, gen_cfg.stop, cfg.max_drain);
  if (!r.drained) gen.account_unfinished();

  const stats::FctCollector& c = gen.collector();
  r.avg_norm_fct = c.avg_normalized_fct();
  r.median_norm_fct = c.median_normalized_fct();
  r.p99_norm_fct = c.p99_normalized_fct();
  r.avg_fct_small = c.avg_fct_small();
  r.avg_fct_large = c.avg_fct_large();
  r.avg_fct_overall = c.avg_fct_overall();
  r.flows = c.count();
  r.small_flows = c.count_in(0, stats::FctCollector::kSmallFlowBytes);
  r.large_flows = c.count_in(stats::FctCollector::kLargeFlowBytes, UINT64_MAX);
  r.completed_fraction =
      gen.measured_started() == 0
          ? 1.0
          : static_cast<double>(gen.measured_completed()) /
                static_cast<double>(gen.measured_started());
  r.unfinished_flows = c.unfinished_count();
  r.bytes_outstanding = c.bytes_outstanding();
  r.fct_digest = stats::fct_digest(c);
  r.reorder_segments = c.reorder_segments();
  r.reorder_max_distance = c.reorder_max_distance();
  r.reordered_flows = c.reordered_flows();
  for (int l = 0; l < fabric.num_leaves(); ++l) {
    r.probes_sent += fabric.leaf(l).probes_to_fabric();
    r.probes_received += fabric.leaf(l).probes_from_fabric();
  }
  return r;
}

}  // namespace conga::workload
