// Incast micro-benchmark (paper §5.3, Fig 13).
//
// A client repeatedly requests a file of `total_bytes` striped across N
// servers; all servers answer with total_bytes/N simultaneously (the
// synchronized fan-in that collapses TCP throughput). The metric is the
// client's effective goodput as a percentage of its access-link rate —
// Fig 13's "Throughput (%)" — measured over `rounds` back-to-back requests.
//
// The transport comes in via the FlowFactory, so the same harness produces
// the CONGA+TCP and MPTCP curves.
#pragma once

#include <cstdint>
#include <vector>

#include "net/fabric.hpp"
#include "tcp/flow.hpp"

namespace conga::workload {

struct IncastConfig {
  net::HostId client = 0;
  std::vector<net::HostId> servers;
  std::uint64_t total_bytes = 10'000'000;  ///< 10 MB striped response
  int rounds = 10;
  std::uint16_t base_port = 2000;  ///< port space (disjoint per generator)
  /// Per-server response jitter (uniform in [0, this]): real servers never
  /// reply in perfect lockstep, and without jitter the deterministic
  /// simulator repeats the exact same collision pattern every round.
  sim::TimeNs start_jitter = sim::microseconds(20);
  std::uint64_t seed = 77;
};

class IncastGenerator {
 public:
  IncastGenerator(net::Fabric& fabric, tcp::FlowFactory factory,
                  const IncastConfig& cfg);

  void start();

  bool finished() const { return rounds_done_ == cfg_.rounds; }
  int rounds_done() const { return rounds_done_; }

  /// Goodput as a fraction of the client access-link rate, over the time
  /// from the first request to the last round's completion.
  double goodput_fraction() const;
  sim::TimeNs elapsed() const { return last_end_ - first_start_; }

 private:
  void start_round();
  void on_flow_complete();

  net::Fabric& fabric_;
  tcp::FlowFactory factory_;
  IncastConfig cfg_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<tcp::FlowHandle>> round_flows_;
  int pending_ = 0;
  int rounds_done_ = 0;
  std::uint64_t flow_seq_ = 0;
  sim::TimeNs first_start_ = -1;
  sim::TimeNs last_end_ = -1;
};

}  // namespace conga::workload
