#include "workload/traffic_gen.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "telemetry/probes.hpp"
#include "telemetry/telemetry.hpp"

namespace conga::workload {

TrafficGenerator::TrafficGenerator(net::Fabric& fabric,
                                   tcp::FlowFactory factory,
                                   const FlowSizeDist& dist,
                                   const TrafficGenConfig& cfg)
    : fabric_(fabric),
      factory_(std::move(factory)),
      dist_(dist),
      cfg_(cfg),
      rng_(cfg.seed) {
  // Offered bytes/sec such that each leaf's uplinks see `load`:
  // every flow crosses the fabric exactly once and sources are uniform over
  // leaves, so each leaf's egress carries a 1/L share of the total.
  const auto& topo = fabric_.config();
  const double capacity_bytes =
      topo.leaf_uplink_capacity_bps() / 8.0 * topo.num_leaves;
  lambda_ = cfg_.load * capacity_bytes / dist_.mean_bytes();
  assert(topo.num_leaves >= 2 && "inter-leaf traffic needs >= 2 leaves");
}

void TrafficGenerator::start() {
  fabric_.scheduler().schedule_at(cfg_.start,
                                  [this] { schedule_next_arrival(); });
}

void TrafficGenerator::schedule_next_arrival() {
  const double gap_sec = rng_.exponential(1.0 / lambda_);
  const auto gap = static_cast<sim::TimeNs>(gap_sec * 1e9);
  fabric_.scheduler().schedule_after(gap, [this] {
    if (fabric_.scheduler().now() >= cfg_.stop) return;
    launch_flow();
    schedule_next_arrival();
  });
}

sim::TimeNs TrafficGenerator::optimal_fct(std::uint64_t size) const {
  const std::uint32_t mss = cfg_.mtu - net::kIpTcpHeaderBytes;
  const std::uint64_t pkts = std::max<std::uint64_t>(1, (size + mss - 1) / mss);
  const double wire_bytes =
      static_cast<double>(size) +
      static_cast<double>(pkts) * net::kIpTcpHeaderBytes;
  const double rate = fabric_.config().host_link_bps;
  // The first packet (possibly shorter than one MTU) pipelines store-and-
  // forward through the fabric; the remaining bytes then stream at the
  // access-link rate behind it.
  const auto first_pkt = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(size, mss) + net::kIpTcpHeaderBytes);
  const auto rest = static_cast<sim::TimeNs>(
      (wire_bytes - first_pkt) * 8.0 / rate * 1e9);
  return fabric_.one_way_latency(first_pkt) + std::max<sim::TimeNs>(rest, 0);
}

void TrafficGenerator::launch_flow() {
  net::HostId src, dst;
  if (cfg_.pair_picker) {
    std::tie(src, dst) = cfg_.pair_picker(rng_);
  } else {
    const int num_hosts = fabric_.num_hosts();
    src = static_cast<net::HostId>(
        rng_.index(static_cast<std::size_t>(num_hosts)));
    dst = src;
    while (fabric_.leaf_of(dst) == fabric_.leaf_of(src)) {
      dst = static_cast<net::HostId>(
          rng_.index(static_cast<std::size_t>(num_hosts)));
    }
  }

  const std::uint64_t size = dist_.sample(rng_);
  const std::uint64_t id = started_++;

  net::FlowKey key;
  key.src_host = src;
  key.dst_host = dst;
  // Unique (sport, dport) per flow id, with stride 16 on sport so MPTCP
  // subflow ports never collide across flows.
  key.src_port = static_cast<std::uint16_t>((id % 4096) * 16);
  key.dst_port = static_cast<std::uint16_t>(1 + (id / 4096) % 60000);

  const sim::TimeNs now = fabric_.scheduler().now();
  const bool measured = now >= cfg_.measure_start && now < cfg_.measure_stop;
  if (measured) ++measured_started_;

  auto flow = factory_(
      fabric_.scheduler(), fabric_.host(src), fabric_.host(dst), key, size,
      [this, id](tcp::FlowHandle& f) { on_flow_complete(id, f); });
  tcp::FlowHandle* raw = flow.get();
  flows_.emplace(id, std::move(flow));
  if (monitor_ != nullptr) monitor_->on_flow_started(id, *raw);
  raw->start();
}

void TrafficGenerator::on_flow_complete(std::uint64_t id,
                                        tcp::FlowHandle& flow) {
  const bool measured = flow.start_time() >= cfg_.measure_start &&
                        flow.start_time() < cfg_.measure_stop;
  if (measured) {
    ++measured_completed_;
    collector_.record(flow.size(), flow.fct(), optimal_fct(flow.size()));
    collector_.record_reorder(flow.reorder_segments(),
                              flow.reorder_max_distance());
  }
  if (monitor_ != nullptr) monitor_->on_flow_finished(id);
  dead_.push_back(id);
  if (!reap_scheduled_) {
    reap_scheduled_ = true;
    fabric_.scheduler().schedule_after(0, [this] { reap(); });
  }
}

void TrafficGenerator::account_unfinished() {
  std::vector<std::uint64_t> ids;
  ids.reserve(flows_.size());
  // conga-lint: allow(unordered-iter): collects ids only, sorted below
  // before anything order-sensitive (the collector) consumes them.
  for (const auto& [id, flow] : flows_) {
    if (!flow->complete()) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const std::uint64_t id : ids) {
    const tcp::FlowHandle& f = *flows_.at(id);
    const bool measured = f.start_time() >= cfg_.measure_start &&
                          f.start_time() < cfg_.measure_stop;
    if (measured) collector_.record_unfinished(f.size(), f.progress_bytes());
  }
}

void TrafficGenerator::register_reorder_probes(
    telemetry::TraceSink& sink) const {
  const stats::FctCollector* col = &collector_;
  telemetry::ProbeRegistry& reg = sink.probes();
  reg.add_counter("tcp/reorder_segments",
                  [col] { return col->reorder_segments(); });
  reg.add_counter("tcp/reorder_max_distance",
                  [col] { return col->reorder_max_distance(); });
  reg.add_counter("tcp/reorder_flows",
                  [col] { return col->reordered_flows(); });
}

void TrafficGenerator::reap() {
  reap_scheduled_ = false;
  for (std::uint64_t id : dead_) flows_.erase(id);
  dead_.clear();
}

bool run_with_drain(sim::Scheduler& sched, TrafficGenerator& gen,
                    sim::TimeNs stop, sim::TimeNs max_drain) {
  sched.run_until(stop);
  const sim::TimeNs deadline = stop + max_drain;
  // Step in chunks so we can check the completion predicate cheaply.
  const sim::TimeNs step = sim::milliseconds(1);
  while (!gen.all_measured_complete() && sched.now() < deadline) {
    sched.run_until(sched.now() + step);
  }
  return gen.all_measured_complete();
}

}  // namespace conga::workload
