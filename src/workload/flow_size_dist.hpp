// Empirical flow-size distributions (paper Fig 8 and §5.5).
//
// Piecewise log-linear CDFs digitised from the paper and its sources:
//  * enterprise()  — Fig 8(a), the authors' production-cluster trace. Less
//    heavy-tailed: ~50% of bytes come from flows smaller than ~35 MB.
//  * data_mining() — Fig 8(b), the VL2/Greenberg et al. cluster. Very heavy:
//    ~95% of bytes in the ~3.6% of flows larger than 35 MB.
//  * web_search()  — the DCTCP cluster distribution used by the large-scale
//    simulations (Fig 15 "web search workload").
//
// The tables are approximations read off the published CDFs; EXPERIMENTS.md
// records this substitution. Sampling interpolates log-linearly in size
// between adjacent CDF points.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace conga::workload {

struct CdfPoint {
  double size_bytes;
  double cdf;  ///< fraction of *flows* no larger than size_bytes
};

class FlowSizeDist {
 public:
  /// `points` must be sorted by size and cdf, ending at cdf == 1.
  FlowSizeDist(std::string name, std::vector<CdfPoint> points);

  /// Draws one flow size (bytes, >= 1).
  std::uint64_t sample(sim::Rng& rng) const;

  /// Inverse CDF at quantile u in [0,1].
  double quantile(double u) const;

  /// Mean flow size implied by the table (log-linear segments).
  double mean_bytes() const { return mean_; }

  /// Standard deviation of the flow size (closed form over the log-linear
  /// segments, computed at construction; used by the Theorem 2 analysis).
  double stddev_bytes() const { return stddev_; }

  /// Coefficient of variation sigma/mean — the quantity Theorem 2 shows
  /// governs load-balancing difficulty.
  double coeff_of_variation() const { return stddev_ / mean_; }

  /// P(flow size <= s).
  double cdf(double size_bytes) const;

  /// Fraction of *bytes* carried by flows of size <= s (the "Bytes" curves
  /// of Fig 8 / Fig 5).
  double byte_cdf(double size_bytes) const;

  const std::string& name() const { return name_; }
  const std::vector<CdfPoint>& points() const { return points_; }

 private:
  std::string name_;
  std::vector<CdfPoint> points_;
  double mean_ = 0;
  double stddev_ = 0;
};

/// The paper's three workloads.
const FlowSizeDist& enterprise();
const FlowSizeDist& data_mining();
const FlowSizeDist& web_search();

/// Degenerate distribution (every flow the same size) — the easy case of
/// Theorem 2 (coefficient of variation 0).
FlowSizeDist fixed_size(double bytes);

}  // namespace conga::workload
