// Flowlet measurement study (paper §2.6.1, Fig 5).
//
// The paper instruments a 4500-host production cluster and shows how packet
// inter-arrival gaps split flows into flowlets: with a 500 µs inactivity gap
// the transfer size covering most bytes drops by ~2 orders of magnitude
// (~30 MB for whole flows -> ~500 KB for flowlets).
//
// We cannot use the proprietary trace, so this module provides (a) a
// synthetic bursty trace generator modelling the burstiness source the paper
// identifies — NIC offloads emitting ~64 KB bursts at line rate with pauses
// set by the flow's application rate — and (b) the *same analysis code* that
// would run on a real trace: a splitter grouping per-flow packet timestamps
// into flowlets for a given gap, and byte-weighted size CDFs.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"
#include "workload/flow_size_dist.hpp"

namespace conga::workload {

struct TracePacket {
  sim::TimeNs time;
  std::uint64_t flow_id;
  std::uint32_t bytes;
};

struct BurstyTraceConfig {
  double flow_arrival_per_sec = 2000;
  double line_rate_bps = 10e9;       ///< NIC burst emission rate
  std::uint32_t burst_bytes = 64 * 1024;  ///< typical TSO burst
  double min_app_rate_bps = 50e6;    ///< per-flow average rate range:
  double max_app_rate_bps = 2e9;     ///< gaps = burst/app_rate - burst/line
  std::uint32_t mtu = 1500;
  sim::TimeNs duration = sim::seconds(2.0);
  std::uint64_t seed = 3;
};

/// Generates packet arrival records for flows drawn from `dist`.
/// Records are returned sorted by flow then time (sufficient for splitting).
std::vector<TracePacket> generate_bursty_trace(const FlowSizeDist& dist,
                                               const BurstyTraceConfig& cfg);

/// Splits a trace into flowlets with inactivity gap `gap`; returns the bytes
/// of every resulting transfer. (gap >= any intra-flow pause returns whole
/// flows.) The trace must be grouped by flow with times ascending per flow.
std::vector<std::uint64_t> split_flowlets(const std::vector<TracePacket>& trace,
                                          sim::TimeNs gap);

/// Byte-weighted CDF over transfer sizes: returns fraction of all bytes in
/// transfers of size <= each query point.
std::vector<double> bytes_cdf_at(const std::vector<std::uint64_t>& sizes,
                                 const std::vector<double>& query_sizes);

/// Transfer size at which the byte-weighted CDF crosses `frac` (e.g. 0.5 =
/// "50% of bytes are in transfers larger than this").
double bytes_median_size(const std::vector<std::uint64_t>& sizes,
                         double frac = 0.5);

/// Number of distinct flows with >= 1 packet in each `window`-long interval;
/// returns the per-interval counts (the paper's concurrent-flowlet estimate).
std::vector<std::size_t> concurrent_flows(const std::vector<TracePacket>& trace,
                                          sim::TimeNs window);

}  // namespace conga::workload
