// HDFS write-workload model (paper §5.4, Fig 14 — the TestDFSIO benchmark).
//
// Each writer streams a file into "HDFS" as a sequence of blocks; every
// block is replicated over a pipeline of `replicas` hosts chosen uniformly
// at random (first replica may be remote, as for a MapReduce task writing to
// a non-local DataNode). The pipeline is modelled as concurrent transfers
// writer->r1 and r1->r2 (cut-through at the replica, matching HDFS's
// packet-granularity pipelining); the block completes when every stage
// completes, and the writer then starts its next block.
//
// The job-completion time — Fig 14's metric — is when the last writer
// finishes. Disk is deliberately not modelled (the paper found TestDFSIO
// disk-bound and compensated with background traffic; our interest is the
// network component, and the fig14 bench adds the same enterprise background
// traffic).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "sim/random.hpp"
#include "tcp/flow.hpp"

namespace conga::workload {

struct HdfsConfig {
  std::vector<net::HostId> writers;
  std::uint64_t bytes_per_writer = 64 * 1024 * 1024;
  std::uint64_t block_bytes = 8 * 1024 * 1024;
  int replicas = 3;  ///< 3-way replication: writer + 2 pipeline copies
  std::uint64_t seed = 11;
  std::uint16_t base_port = 40000;
};

class HdfsJob {
 public:
  HdfsJob(net::Fabric& fabric, tcp::FlowFactory factory,
          const HdfsConfig& cfg);

  void start();

  bool finished() const { return writers_done_ == writers_.size(); }
  sim::TimeNs completion_time() const { return completion_time_; }

 private:
  struct Writer {
    net::HostId node;
    std::uint64_t remaining = 0;
    int stages_pending = 0;
    std::vector<std::unique_ptr<tcp::FlowHandle>> stage_flows;
  };

  void start_next_block(std::size_t w);
  void on_stage_complete(std::size_t w);
  net::HostId pick_replica(net::HostId exclude1, net::HostId exclude2);

  net::Fabric& fabric_;
  tcp::FlowFactory factory_;
  HdfsConfig cfg_;
  sim::Rng rng_;
  std::vector<Writer> writers_;
  std::size_t writers_done_ = 0;
  std::uint64_t flow_seq_ = 0;
  sim::TimeNs completion_time_ = -1;
};

}  // namespace conga::workload
