// Reusable FCT-experiment harness: one (topology, workload, load, scheme,
// transport) cell of the paper's evaluation grid, with warmup, a measurement
// window, and a bounded drain. Used by the fig09/10/11/15 benches, the
// ablation bench, and the examples.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/fabric.hpp"
#include "stats/fct_collector.hpp"
#include "tcp/flow.hpp"
#include "workload/flow_size_dist.hpp"
#include "workload/traffic_gen.hpp"

namespace conga::workload {

struct ExperimentConfig {
  net::TopologyConfig topo;
  FlowSizeDist dist = fixed_size(100'000);
  double load = 0.6;
  tcp::FlowFactory transport;  ///< defaults to plain TCP if empty
  net::Fabric::LbFactory lb;   ///< required
  sim::TimeNs warmup = sim::milliseconds(10);
  sim::TimeNs measure = sim::milliseconds(40);
  sim::TimeNs max_drain = sim::seconds(1.0);
  std::uint64_t fabric_seed = 1;
  std::uint64_t traffic_seed = 7;

  /// Called after install_lb, before traffic starts — for fabric-wide modes
  /// a plain LbFactory cannot reach (e.g. Fabric::set_spine_drill for the
  /// "drill" policy, or link degradation for asymmetric cells).
  std::function<void(net::Fabric&)> fabric_hook;
};

struct ExperimentResult {
  double avg_norm_fct = 0;    ///< overall mean FCT / optimal
  double median_norm_fct = 0; ///< tail-robust companion to the mean
  double p99_norm_fct = 0;
  double avg_fct_small = 0;   ///< seconds, flows < 100 KB
  double avg_fct_large = 0;   ///< seconds, flows > 10 MB
  double avg_fct_overall = 0; ///< seconds
  std::size_t flows = 0;
  std::size_t small_flows = 0;
  std::size_t large_flows = 0;
  double completed_fraction = 0;  ///< measured flows that finished in time
  bool drained = false;           ///< all measured flows completed
  std::size_t unfinished_flows = 0;     ///< measured flows still live
  std::uint64_t bytes_outstanding = 0;  ///< their undelivered bytes
  std::uint64_t fct_digest = 0;  ///< order-insensitive digest of the records

  // Reordering ledger over measured flows (receiver-side cost of
  // per-packet / per-flowcell schemes).
  std::uint64_t reorder_segments = 0;
  std::uint64_t reorder_max_distance = 0;
  std::uint64_t reordered_flows = 0;

  // Probe-plane overhead: control packets the leaves injected / consumed
  // (zero for every policy without a probe plane).
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_received = 0;
};

/// Runs one experiment cell to completion and summarizes it.
ExperimentResult run_fct_experiment(const ExperimentConfig& cfg);

}  // namespace conga::workload
