// Open-loop Poisson traffic generator (paper §5.2).
//
// Flows arrive as a Poisson process with rate chosen so the *offered* load on
// each leaf's uplinks equals `load` (relative to the topology's nominal
// pre-failure capacity, as the paper does for Fig 11: "the bisection
// bandwidth ... is 75% of the original capacity; we only consider offered
// loads up to 70%"). Sources are uniform over hosts; destinations uniform
// over hosts under *other* leaves, so all generated traffic crosses the
// spine (the paper's setup: clients under Leaf 0 only use servers under
// Leaf 1 and vice versa).
//
// Flows are measured if they *arrive* inside [measure_start, measure_stop);
// their FCT is recorded at completion together with the idle-network optimal
// FCT for normalisation.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"
#include "sim/random.hpp"
#include "stats/fct_collector.hpp"
#include "tcp/flow.hpp"
#include "workload/flow_size_dist.hpp"

namespace conga::telemetry {
class TraceSink;
}  // namespace conga::telemetry

namespace conga::workload {

struct TrafficGenConfig {
  double load = 0.6;  ///< fraction of per-leaf nominal uplink capacity
  sim::TimeNs start = 0;
  sim::TimeNs stop = sim::milliseconds(100);  ///< arrivals stop here
  sim::TimeNs measure_start = sim::milliseconds(10);
  sim::TimeNs measure_stop = sim::milliseconds(90);
  std::uint64_t seed = 7;
  std::uint32_t mtu = 1500;  ///< for optimal-FCT accounting

  /// Optional custom (src, dst) picker (e.g. "only leaf 1 to leaf 2" for the
  /// Fig 3 scenarios). Defaults to uniform source, uniform inter-leaf
  /// destination. Must return hosts on different leaves.
  std::function<std::pair<net::HostId, net::HostId>(sim::Rng&)> pair_picker;
};

class TrafficGenerator {
 public:
  TrafficGenerator(net::Fabric& fabric, tcp::FlowFactory factory,
                   const FlowSizeDist& dist, const TrafficGenConfig& cfg);

  /// Schedules the arrival process. Call before Scheduler::run*.
  void start();

  /// Attaches a flow monitor (e.g. debug::LivenessWatchdog): it is notified
  /// as flows launch and complete. Call before start(); nullptr detaches.
  void set_monitor(tcp::FlowMonitor* monitor) { monitor_ = monitor; }

  /// Folds every still-live measured flow into the collector's
  /// unfinished-flow accounting (count + bytes outstanding). Call once,
  /// after the drain has given up; live flows are iterated in id order so
  /// the accounting is deterministic.
  void account_unfinished();

  /// Registers the reordering ledger as metric probes (tcp/reorder_segments,
  /// tcp/reorder_max_distance, tcp/reorder_flows). Opt-in rather than part
  /// of Fabric::register_probes: the generator outlives no fabric, and the
  /// standard probe set (and thus the telemetry digest) stays unchanged for
  /// harnesses that don't ask for it.
  void register_reorder_probes(telemetry::TraceSink& sink) const;

  const stats::FctCollector& collector() const { return collector_; }
  std::uint64_t flows_started() const { return started_; }
  std::uint64_t measured_started() const { return measured_started_; }
  std::uint64_t measured_completed() const { return measured_completed_; }
  bool all_measured_complete() const {
    return measured_completed_ == measured_started_;
  }

  /// Total flow arrival rate (flows/sec) implied by the config.
  double arrival_rate() const { return lambda_; }

  /// Idle-network FCT for a flow of `size` bytes (used for normalisation).
  sim::TimeNs optimal_fct(std::uint64_t size) const;

 private:
  void schedule_next_arrival();
  void launch_flow();
  void on_flow_complete(std::uint64_t id, tcp::FlowHandle& flow);
  void reap();

  net::Fabric& fabric_;
  tcp::FlowFactory factory_;
  FlowSizeDist dist_;  ///< by value: callers often pass temporaries
  TrafficGenConfig cfg_;
  sim::Rng rng_;
  double lambda_;

  stats::FctCollector collector_;
  tcp::FlowMonitor* monitor_ = nullptr;
  std::unordered_map<std::uint64_t, std::unique_ptr<tcp::FlowHandle>> flows_;
  std::vector<std::uint64_t> dead_;
  bool reap_scheduled_ = false;
  std::uint64_t started_ = 0;
  std::uint64_t measured_started_ = 0;
  std::uint64_t measured_completed_ = 0;
};

/// Runs `sched` until arrivals stop, then drains until every measured flow
/// completes or `max_drain` more simulated time elapses. Returns true if the
/// drain completed (false = the network could not serve the offered load in
/// time, e.g. ECMP past the saturation point in Fig 11).
bool run_with_drain(sim::Scheduler& sched, TrafficGenerator& gen,
                    sim::TimeNs stop, sim::TimeNs max_drain);

}  // namespace conga::workload
