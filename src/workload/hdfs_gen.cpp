#include "workload/hdfs_gen.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace conga::workload {

HdfsJob::HdfsJob(net::Fabric& fabric, tcp::FlowFactory factory,
                 const HdfsConfig& cfg)
    : fabric_(fabric),
      factory_(std::move(factory)),
      cfg_(cfg),
      rng_(cfg.seed) {
  assert(!cfg_.writers.empty());
  assert(cfg_.replicas >= 1);
  for (net::HostId w : cfg_.writers) {
    writers_.push_back(Writer{w, cfg_.bytes_per_writer, 0, {}});
  }
}

net::HostId HdfsJob::pick_replica(net::HostId exclude1, net::HostId exclude2) {
  const int n = fabric_.num_hosts();
  net::HostId h = exclude1;
  while (h == exclude1 || h == exclude2) {
    h = static_cast<net::HostId>(rng_.index(static_cast<std::size_t>(n)));
  }
  return h;
}

void HdfsJob::start() {
  fabric_.scheduler().schedule_after(0, [this] {
    for (std::size_t w = 0; w < writers_.size(); ++w) start_next_block(w);
  });
}

void HdfsJob::start_next_block(std::size_t w) {
  Writer& wr = writers_[w];
  if (wr.remaining == 0) {
    ++writers_done_;
    if (finished()) completion_time_ = fabric_.scheduler().now();
    return;
  }
  const std::uint64_t block = std::min(cfg_.block_bytes, wr.remaining);
  wr.remaining -= block;

  // Replication pipeline: writer -> r1 -> r2 -> ... (replicas-1 transfers;
  // the writer's own copy is local and free).
  std::vector<net::HostId> chain{wr.node};
  for (int r = 1; r < cfg_.replicas; ++r) {
    chain.push_back(pick_replica(chain[static_cast<std::size_t>(r) - 1],
                                 wr.node));
  }

  wr.stage_flows.clear();
  wr.stages_pending = cfg_.replicas - 1;
  if (wr.stages_pending == 0) {
    // Replication factor 1: purely local write, move on immediately.
    fabric_.scheduler().schedule_after(0, [this, w] { start_next_block(w); });
    return;
  }
  for (int s = 0; s + 1 < static_cast<int>(chain.size()); ++s) {
    const net::HostId src = chain[static_cast<std::size_t>(s)];
    const net::HostId dst = chain[static_cast<std::size_t>(s) + 1];
    net::FlowKey key;
    key.src_host = src;
    key.dst_host = dst;
    key.src_port = static_cast<std::uint16_t>(
        cfg_.base_port + (flow_seq_ % 1024) * 16);
    key.dst_port = static_cast<std::uint16_t>(
        cfg_.base_port + 1 + flow_seq_ / 1024);
    ++flow_seq_;
    wr.stage_flows.push_back(
        factory_(fabric_.scheduler(), fabric_.host(src), fabric_.host(dst),
                 key, block,
                 [this, w](tcp::FlowHandle&) { on_stage_complete(w); }));
  }
  for (auto& f : wr.stage_flows) f->start();
}

void HdfsJob::on_stage_complete(std::size_t w) {
  Writer& wr = writers_[w];
  if (--wr.stages_pending > 0) return;
  // Defer the next block so the finished stage flows are not destroyed
  // inside their own completion callbacks.
  fabric_.scheduler().schedule_after(0, [this, w] { start_next_block(w); });
}

}  // namespace conga::workload
