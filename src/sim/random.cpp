#include "sim/random.hpp"

// Header-only for now; this translation unit anchors the module in the build
// so the header gets compiled standalone at least once.
