// Deterministic 64-bit mixing, shared by hashing consumers across layers
// (packet 5-tuple hashing, seeded RNG stream derivation, run digests).
#pragma once

#include <cstdint>

namespace conga::sim {

/// SplitMix64 finalizer: full-avalanche 64-bit mix. Seeded hashers must run
/// this *after* XORing their seed — a bare `hash ^ seed` keeps seeds
/// correlated (two seeds differing in the low bits produce permuted, not
/// independent, bucket assignments).
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace conga::sim
