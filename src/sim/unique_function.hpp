// Move-only type-erased callable (a minimal std::move_only_function for
// C++20). Scheduler callbacks capture move-only payloads (packets as
// unique_ptr), which std::function cannot hold; this keeps packet ownership
// RAII-clean all the way through the event queue.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace conga::sim {

class UniqueFunction {
 public:
  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction>>>
  UniqueFunction(F&& f)  // NOLINT(google-explicit-constructor): callable wrapper
      : impl_(std::make_unique<Impl<std::decay_t<F>>>(std::forward<F>(f))) {}

  UniqueFunction(UniqueFunction&&) noexcept = default;
  UniqueFunction& operator=(UniqueFunction&&) noexcept = default;
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  void operator()() { impl_->call(); }

  explicit operator bool() const { return impl_ != nullptr; }

 private:
  struct Base {
    virtual ~Base() = default;
    virtual void call() = 0;
  };
  template <typename F>
  struct Impl final : Base {
    explicit Impl(F&& f) : fn(std::move(f)) {}
    explicit Impl(const F& f) : fn(f) {}
    void call() override { fn(); }
    F fn;
  };

  std::unique_ptr<Base> impl_;
};

}  // namespace conga::sim
