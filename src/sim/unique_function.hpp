// Move-only type-erased callable (a minimal std::move_only_function for
// C++20). Scheduler callbacks capture move-only payloads (packets as
// unique_ptr), which std::function cannot hold; this keeps packet ownership
// RAII-clean all the way through the event queue.
//
// Small-buffer optimised: callables up to kInlineSize bytes that are
// nothrow-move-constructible live inline in the wrapper, so the simulator's
// hot-path captures — a `this` pointer for link/timer events, `this` plus a
// pooled PacketPtr for packet delivery — never touch the allocator. Larger
// or throwing-move callables fall back to the heap exactly like the old
// unique_ptr<Base> implementation. Type erasure is a hand-rolled ops table
// (call / relocate / destroy) instead of a virtual base, which also lets the
// wrapper be relocated into a scheduler slot with one indirect call.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace conga::sim {

class UniqueFunction {
 public:
  /// Inline storage size: covers every callback the simulator schedules on
  /// its hot paths (the largest is a lambda capturing `this` plus a pooled
  /// packet plus a port index). Grow with care: the scheduler stores one
  /// UniqueFunction per pending event.
  static constexpr std::size_t kInlineSize = 48;

  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor): callable wrapper
    using D = std::decay_t<F>;
    if constexpr (kInline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &InlineHandler<D>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapHandler<D>::ops;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        ops_ = other.ops_;
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  void operator()() { ops_->call(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*call)(void* storage);
    /// Move-constructs the payload into `dst` from `src` and destroys `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename F>
  static constexpr bool kInline =
      sizeof(F) <= kInlineSize && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  struct InlineHandler {
    static F* get(void* s) { return std::launder(reinterpret_cast<F*>(s)); }
    static void call(void* s) { (*get(s))(); }
    static void relocate(void* dst, void* src) noexcept {
      F* from = get(src);
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void destroy(void* s) noexcept { get(s)->~F(); }
    static constexpr Ops ops{&call, &relocate, &destroy};
  };

  template <typename F>
  struct HeapHandler {
    static F* get(void* s) {
      return *std::launder(reinterpret_cast<F**>(s));
    }
    static void call(void* s) { (*get(s))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) F*(get(src));  // steal the pointer; F itself stays put
    }
    static void destroy(void* s) noexcept { delete get(s); }
    static constexpr Ops ops{&call, &relocate, &destroy};
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte buf_[kInlineSize];
};

}  // namespace conga::sim
