// Discrete-event scheduler: the heart of the simulator.
//
// Single-threaded and deterministic: events at equal timestamps fire in the
// order they were scheduled (a monotone sequence number breaks ties), so a
// run is exactly reproducible given the same seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace conga::sim {

/// Opaque handle identifying a scheduled event, usable for cancellation.
using EventId = std::uint64_t;
constexpr EventId kInvalidEventId = 0;

/// A discrete-event scheduler.
///
/// Usage:
///   Scheduler sched;
///   sched.schedule_after(microseconds(5), [] { ... });
///   sched.run();
///
/// Components hold a `Scheduler&` and schedule callbacks; there is no global
/// singleton, so multiple independent simulations can coexist (which the
/// tests exploit heavily).
///
/// Cancellation is lazy: cancel() records the id and the event is skipped
/// when popped. This keeps the hot path (schedule/pop) allocation-free apart
/// from the std::function payload.
class Scheduler {
 public:
  using Callback = UniqueFunction;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Starts at 0.
  TimeNs now() const { return now_; }

  /// Schedules `cb` at absolute time `t`. Times in the past are clamped to
  /// now() (the event still fires, after currently pending same-time events).
  EventId schedule_at(TimeNs t, Callback cb);

  /// Schedules `cb` after a relative delay `dt` (negative clamps to 0).
  EventId schedule_after(TimeNs dt, Callback cb) {
    return schedule_at(now_ + dt, std::move(cb));
  }

  /// Cancels a pending event. Cancelling an already-fired or invalid id is a
  /// harmless no-op (this makes timer management in TCP much simpler).
  void cancel(EventId id);

  /// Runs until the event queue is empty or stop() is called.
  void run();

  /// Runs events with timestamp <= `t`, then sets now() to `t`.
  void run_until(TimeNs t);

  /// Stops a run() in progress after the current event returns.
  void stop() { stopped_ = true; }

  /// Number of events dispatched so far (useful for perf reporting).
  std::uint64_t events_dispatched() const { return dispatched_; }

  /// Number of events currently pending (excluding cancelled ones).
  std::size_t pending() const { return heap_.size() - cancelled_.size(); }

  /// Observer invoked once per dispatched event with (time, id), in dispatch
  /// order. Event ids are assigned in schedule order, so hashing this stream
  /// fingerprints the run's exact interleaving — the determinism auditor's
  /// event-trace digest. Unset (the default) costs one branch per dispatch.
  using TraceHook = std::function<void(TimeNs, EventId)>;
  void set_trace_hook(TraceHook h) { trace_ = std::move(h); }

 private:
  struct Event {
    TimeNs time;
    EventId id;
    mutable Callback cb;  // moved out at dispatch; priority_queue top() is const
  };
  struct Later {
    // std::priority_queue is a max-heap; invert to pop the earliest event,
    // breaking equal-time ties by schedule order.
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  /// Pops the next non-cancelled event, or returns false if none remain.
  bool pop_next(Event& out);

  TimeNs now_ = 0;
  TraceHook trace_;
  EventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace conga::sim
