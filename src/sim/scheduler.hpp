// Discrete-event scheduler: the heart of the simulator.
//
// Single-threaded and deterministic: events at equal timestamps fire in the
// order they were scheduled (a monotone sequence number breaks ties), so a
// run is exactly reproducible given the same seed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace conga::telemetry {
class TraceSink;
}  // namespace conga::telemetry

namespace conga::sim {

/// Opaque handle identifying a scheduled event, usable for cancellation.
/// Internally packs (slot index, generation); only values returned by
/// schedule_at/schedule_after (and kInvalidEventId) are meaningful.
using EventId = std::uint64_t;
constexpr EventId kInvalidEventId = 0;

/// A discrete-event scheduler.
///
/// Usage:
///   Scheduler sched;
///   sched.schedule_after(microseconds(5), [] { ... });
///   sched.run();
///
/// Components hold a `Scheduler&` and schedule callbacks; there is no global
/// singleton, so multiple independent simulations can coexist (which the
/// tests and the parallel experiment runner exploit heavily).
///
/// Implementation: a 4-ary implicit heap of 24-byte POD nodes ordered by
/// (time, schedule sequence), indexing into a slot arena that owns the
/// callbacks. Each slot carries a generation counter baked into the EventId,
/// so cancel() is an O(1) generation bump — no per-dispatch hash-set lookup,
/// and a stale id (already fired, already cancelled, never valid) can never
/// corrupt the pending-event accounting. A cancelled event's node stays in
/// the heap until it surfaces, where the generation mismatch discards it;
/// its callback (and any packet it owns) is destroyed eagerly at cancel().
class Scheduler {
 public:
  using Callback = UniqueFunction;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Starts at 0.
  TimeNs now() const { return now_; }

  /// Schedules `cb` at absolute time `t`. Times in the past are clamped to
  /// now() (the event still fires, after currently pending same-time events).
  EventId schedule_at(TimeNs t, Callback cb);

  /// Schedules `cb` after a relative delay `dt` (negative clamps to 0).
  EventId schedule_after(TimeNs dt, Callback cb) {
    return schedule_at(now_ + dt, std::move(cb));
  }

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled,
  /// or invalid id is a harmless no-op (this makes timer management in TCP
  /// much simpler). O(1): the slot's generation is bumped so the heap node
  /// goes stale, and the callback is destroyed immediately.
  void cancel(EventId id);

  /// Runs until the event queue is empty or stop() is called.
  void run();

  /// Runs events with timestamp <= `t`, then sets now() to `t`.
  void run_until(TimeNs t);

  /// Stops a run() in progress after the current event returns.
  void stop() { stopped_ = true; }

  /// Number of events dispatched so far (useful for perf reporting).
  std::uint64_t events_dispatched() const { return dispatched_; }

  /// Number of events currently pending (excluding cancelled ones). Exact:
  /// maintained as a live counter, so no amount of redundant cancel() calls
  /// can make it drift (let alone underflow).
  std::size_t pending() const { return live_; }

  /// Observer invoked once per dispatched event with (time, seq), in dispatch
  /// order, where seq is the monotone schedule-order sequence number (1 for
  /// the first event ever scheduled, and so on). Hashing this stream
  /// fingerprints the run's exact interleaving — the determinism auditor's
  /// event-trace digest. Unset (the default) costs one predictable branch
  /// per dispatch.
  using TraceHook = std::function<void(TimeNs, EventId)>;
  void set_trace_hook(TraceHook h) { trace_ = std::move(h); }

  /// Ambient telemetry sink for this simulation, or nullptr (the default).
  /// Components that already hold a `Scheduler&` (TCP senders, generators)
  /// reach the sink through here instead of threading another pointer
  /// through every constructor. The scheduler itself never records; it only
  /// carries the pointer.
  telemetry::TraceSink* telemetry() const { return telemetry_; }
  void set_telemetry(telemetry::TraceSink* sink) { telemetry_ = sink; }

 private:
  /// One pending (or stale) entry in the implicit 4-ary heap. Trivially
  /// copyable and 24 bytes, so sift operations move PODs, not callbacks.
  struct HeapNode {
    TimeNs time;
    std::uint64_t seq;   ///< schedule-order tie-break; fed to the trace hook
    std::uint32_t slot;  ///< index into slots_
    std::uint32_t gen;   ///< slot generation this node refers to
  };

  /// Callback arena entry. `gen` is odd while the slot identifies events
  /// (so a packed EventId is never 0) and advances by 2 every time the slot
  /// is released, invalidating outstanding ids and stale heap nodes. A
  /// generation would have to wrap through 2^31 reuses of one slot while an
  /// old id is still held for a stale handle to collide — out of reach of
  /// any realistic run.
  struct Slot {
    Callback cb;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNoSlot;
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffU;

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(slot) << 32) | gen;
  }

  static bool earlier(const HeapNode& a, const HeapNode& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Removes the heap root (which must exist).
  void pop_top();
  /// Discards stale (cancelled) nodes at the root. Returns false when the
  /// heap is empty, true when a live node is at the root.
  bool settle_top();
  /// Extracts the live root event into (time, seq, cb) and releases its
  /// slot. Caller must have checked settle_top().
  void take_top(TimeNs& time, std::uint64_t& seq, Callback& cb);

  TimeNs now_ = 0;
  TraceHook trace_;
  telemetry::TraceSink* telemetry_ = nullptr;
  std::uint64_t next_seq_ = 1;
  std::uint64_t dispatched_ = 0;
  std::size_t live_ = 0;
  bool stopped_ = false;
  std::vector<HeapNode> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
};

}  // namespace conga::sim
