// Simulated-time types and literals.
//
// All simulation time is kept as a signed 64-bit count of nanoseconds, which
// gives ~292 years of range — far beyond any experiment — while staying cheap
// to compare and add. Helper constructors make call sites read like the paper
// ("Tfl = 500us", "tau = 160us").
#pragma once

#include <cstdint>

namespace conga::sim {

/// Simulated time in nanoseconds since the start of the run.
using TimeNs = std::int64_t;

constexpr TimeNs kNsPerUs = 1'000;
constexpr TimeNs kNsPerMs = 1'000'000;
constexpr TimeNs kNsPerSec = 1'000'000'000;

constexpr TimeNs nanoseconds(std::int64_t n) { return n; }
constexpr TimeNs microseconds(std::int64_t us) { return us * kNsPerUs; }
constexpr TimeNs milliseconds(std::int64_t ms) { return ms * kNsPerMs; }
constexpr TimeNs seconds(double s) {
  return static_cast<TimeNs>(s * static_cast<double>(kNsPerSec));
}

/// Converts a simulated duration to (floating-point) seconds, e.g. for rates.
constexpr double to_seconds(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerSec);
}

}  // namespace conga::sim
