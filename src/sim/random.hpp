// Seeded randomness utilities.
//
// Every stochastic component takes an explicit `Rng&` (or a seed), so whole
// experiments are reproducible and tests can pin seeds. A thin wrapper over
// std::mt19937_64 plus the distributions the workloads need.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace conga::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Exponential with the given mean (used for Poisson inter-arrivals).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Bernoulli with probability p of true.
  bool chance(double p) { return uniform() < p; }

  /// Picks a uniformly random index in [0, n).
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Derives an independent child RNG (e.g. one per traffic source) so that
  /// adding a component does not perturb the random streams of others.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

/// Fisher-Yates shuffle using the simulation RNG (std::shuffle's results are
/// implementation-defined across standard libraries; this one is portable and
/// hence keeps golden tests stable).
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[rng.index(i)]);
  }
}

}  // namespace conga::sim
