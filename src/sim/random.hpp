// Seeded randomness utilities.
//
// Every stochastic component takes an explicit `Rng&` (or a seed), so whole
// experiments are reproducible and tests can pin seeds. A thin wrapper over
// std::mt19937_64 plus the distributions the workloads need.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "sim/hash.hpp"

namespace conga::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : seed_(seed), engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Exponential with the given mean (used for Poisson inter-arrivals).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Bernoulli with probability p of true.
  bool chance(double p) { return uniform() < p; }

  /// Picks a uniformly random index in [0, n).
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Derives an independent child RNG by drawing from this engine. NOTE:
  /// the child depends on how many draws preceded the fork — prefer
  /// stream()/stream_seed(), whose derivation is keyed and draw-order
  /// independent, for per-component streams.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  /// Deterministic per-component seed, a pure function of (this seed, key):
  /// unlike fork(), it does not advance the engine, so adding, removing, or
  /// reordering components never perturbs the streams of others. Callers pick
  /// structured keys (component class + index).
  std::uint64_t stream_seed(std::uint64_t key) const {
    return mix64(seed_ ^ mix64(key + 0x9e3779b97f4a7c15ULL));
  }

  /// Independent child RNG for the component identified by `key`.
  Rng stream(std::uint64_t key) const { return Rng(stream_seed(key)); }

  /// The seed this engine was constructed with (stream derivation base).
  std::uint64_t seed() const { return seed_; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

/// Fisher-Yates shuffle using the simulation RNG (std::shuffle's results are
/// implementation-defined across standard libraries; this one is portable and
/// hence keeps golden tests stable).
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[rng.index(i)]);
  }
}

}  // namespace conga::sim
