#include "sim/scheduler.hpp"

#include <utility>

#include "debug/invariants.hpp"

namespace conga::sim {

EventId Scheduler::schedule_at(TimeNs t, Callback cb) {
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  heap_.push(Event{t, id, std::move(cb)});
  return id;
}

void Scheduler::cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_id_) return;
  cancelled_.insert(id);
}

bool Scheduler::pop_next(Event& out) {
  while (!heap_.empty()) {
    // Safe: we never mutate the key fields (time, id) through this reference,
    // only move the callback out right before pop().
    const Event& top = heap_.top();
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      heap_.pop();
      continue;
    }
    out.time = top.time;
    out.id = top.id;
    out.cb = std::move(top.cb);
    heap_.pop();
    return true;
  }
  return false;
}

void Scheduler::run() {
  stopped_ = false;
  Event ev;
  while (!stopped_ && pop_next(ev)) {
    CONGA_INVARIANT(check_time_monotonic("scheduler", now_, ev.time));
    now_ = ev.time;
    ++dispatched_;
    if (trace_) trace_(ev.time, ev.id);
    ev.cb();
  }
}

void Scheduler::run_until(TimeNs t) {
  stopped_ = false;
  Event ev;
  while (!stopped_) {
    if (heap_.empty()) break;
    // Skip cancelled heads without dispatching.
    if (cancelled_.contains(heap_.top().id)) {
      cancelled_.erase(heap_.top().id);
      heap_.pop();
      continue;
    }
    if (heap_.top().time > t) break;
    if (!pop_next(ev)) break;
    CONGA_INVARIANT(check_time_monotonic("scheduler", now_, ev.time));
    now_ = ev.time;
    ++dispatched_;
    if (trace_) trace_(ev.time, ev.id);
    ev.cb();
  }
  if (now_ < t) now_ = t;
}

}  // namespace conga::sim
