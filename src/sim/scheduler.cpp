#include "sim/scheduler.hpp"

#include <utility>

#include "debug/invariants.hpp"

namespace conga::sim {

std::uint32_t Scheduler::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoSlot;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.gen += 2;  // stays odd; invalidates outstanding ids and stale heap nodes
  s.next_free = free_head_;
  free_head_ = slot;
}

void Scheduler::sift_up(std::size_t i) {
  const HeapNode node = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(node, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = node;
}

void Scheduler::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapNode node = heap_[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], node)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = node;
}

void Scheduler::pop_top() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

bool Scheduler::settle_top() {
  while (!heap_.empty()) {
    const HeapNode& top = heap_.front();
    if (slots_[top.slot].gen == top.gen) return true;
    pop_top();  // stale: the event was cancelled and its slot released
  }
  return false;
}

void Scheduler::take_top(TimeNs& time, std::uint64_t& seq, Callback& cb) {
  const HeapNode top = heap_.front();
  time = top.time;
  seq = top.seq;
  cb = std::move(slots_[top.slot].cb);
  release_slot(top.slot);
  --live_;
  pop_top();
}

EventId Scheduler::schedule_at(TimeNs t, Callback cb) {
  if (t < now_) t = now_;
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = acquire_slot();
  const std::uint32_t gen = slots_[slot].gen;
  slots_[slot].cb = std::move(cb);
  heap_.push_back(HeapNode{t, seq, slot, gen});
  sift_up(heap_.size() - 1);
  ++live_;
  return make_id(slot, gen);
}

void Scheduler::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id >> 32);
  const std::uint32_t gen = static_cast<std::uint32_t>(id);
  // Generations are odd, so kInvalidEventId (gen 0) never matches; a fired
  // or re-cancelled id fails the generation check below.
  if ((gen & 1U) == 0 || slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.gen != gen) return;
  s.cb = Callback{};  // destroy the payload (e.g. a captured packet) now
  release_slot(slot);
  --live_;
}

void Scheduler::run() {
  stopped_ = false;
  TimeNs time = 0;
  std::uint64_t seq = 0;
  Callback cb;
  while (!stopped_ && settle_top()) {
    take_top(time, seq, cb);
    CONGA_INVARIANT(check_time_monotonic("scheduler", now_, time));
    now_ = time;
    ++dispatched_;
    if (trace_) trace_(time, seq);
    cb();
    cb = Callback{};  // release the payload before the next settle
  }
}

void Scheduler::run_until(TimeNs t) {
  stopped_ = false;
  TimeNs time = 0;
  std::uint64_t seq = 0;
  Callback cb;
  while (!stopped_ && settle_top()) {
    if (heap_.front().time > t) break;
    take_top(time, seq, cb);
    CONGA_INVARIANT(check_time_monotonic("scheduler", now_, time));
    now_ = time;
    ++dispatched_;
    if (trace_) trace_(time, seq);
    cb();
    cb = Callback{};
  }
  if (now_ < t) now_ = t;
}

}  // namespace conga::sim
