file(REMOVE_RECURSE
  "CMakeFiles/fig05_flowlet_sizes.dir/fig05_flowlet_sizes.cpp.o"
  "CMakeFiles/fig05_flowlet_sizes.dir/fig05_flowlet_sizes.cpp.o.d"
  "fig05_flowlet_sizes"
  "fig05_flowlet_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_flowlet_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
