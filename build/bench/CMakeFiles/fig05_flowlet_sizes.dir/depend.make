# Empty dependencies file for fig05_flowlet_sizes.
# This may be replaced when dependencies are built.
