file(REMOVE_RECURSE
  "CMakeFiles/fig02_asymmetry_modes.dir/fig02_asymmetry_modes.cpp.o"
  "CMakeFiles/fig02_asymmetry_modes.dir/fig02_asymmetry_modes.cpp.o.d"
  "fig02_asymmetry_modes"
  "fig02_asymmetry_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_asymmetry_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
