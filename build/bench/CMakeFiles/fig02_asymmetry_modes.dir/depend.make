# Empty dependencies file for fig02_asymmetry_modes.
# This may be replaced when dependencies are built.
