# Empty compiler generated dependencies file for fig11_link_failure.
# This may be replaced when dependencies are built.
