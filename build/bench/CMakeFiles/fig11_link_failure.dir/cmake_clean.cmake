file(REMOVE_RECURSE
  "CMakeFiles/fig11_link_failure.dir/fig11_link_failure.cpp.o"
  "CMakeFiles/fig11_link_failure.dir/fig11_link_failure.cpp.o.d"
  "fig11_link_failure"
  "fig11_link_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_link_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
