# Empty dependencies file for discussion_extensions.
# This may be replaced when dependencies are built.
