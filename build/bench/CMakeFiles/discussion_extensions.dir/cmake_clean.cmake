file(REMOVE_RECURSE
  "CMakeFiles/discussion_extensions.dir/discussion_extensions.cpp.o"
  "CMakeFiles/discussion_extensions.dir/discussion_extensions.cpp.o.d"
  "discussion_extensions"
  "discussion_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discussion_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
