file(REMOVE_RECURSE
  "CMakeFiles/thm2_imbalance.dir/thm2_imbalance.cpp.o"
  "CMakeFiles/thm2_imbalance.dir/thm2_imbalance.cpp.o.d"
  "thm2_imbalance"
  "thm2_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm2_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
