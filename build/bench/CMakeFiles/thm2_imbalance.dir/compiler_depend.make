# Empty compiler generated dependencies file for thm2_imbalance.
# This may be replaced when dependencies are built.
