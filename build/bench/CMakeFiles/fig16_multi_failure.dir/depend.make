# Empty dependencies file for fig16_multi_failure.
# This may be replaced when dependencies are built.
