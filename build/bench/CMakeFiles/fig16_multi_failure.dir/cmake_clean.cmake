file(REMOVE_RECURSE
  "CMakeFiles/fig16_multi_failure.dir/fig16_multi_failure.cpp.o"
  "CMakeFiles/fig16_multi_failure.dir/fig16_multi_failure.cpp.o.d"
  "fig16_multi_failure"
  "fig16_multi_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_multi_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
