# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig17_price_of_anarchy.
