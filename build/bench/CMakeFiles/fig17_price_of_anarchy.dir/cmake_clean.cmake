file(REMOVE_RECURSE
  "CMakeFiles/fig17_price_of_anarchy.dir/fig17_price_of_anarchy.cpp.o"
  "CMakeFiles/fig17_price_of_anarchy.dir/fig17_price_of_anarchy.cpp.o.d"
  "fig17_price_of_anarchy"
  "fig17_price_of_anarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_price_of_anarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
