# Empty compiler generated dependencies file for fig17_price_of_anarchy.
# This may be replaced when dependencies are built.
