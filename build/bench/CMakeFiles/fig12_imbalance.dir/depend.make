# Empty dependencies file for fig12_imbalance.
# This may be replaced when dependencies are built.
