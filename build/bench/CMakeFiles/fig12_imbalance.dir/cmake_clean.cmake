file(REMOVE_RECURSE
  "CMakeFiles/fig12_imbalance.dir/fig12_imbalance.cpp.o"
  "CMakeFiles/fig12_imbalance.dir/fig12_imbalance.cpp.o.d"
  "fig12_imbalance"
  "fig12_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
