file(REMOVE_RECURSE
  "CMakeFiles/fig15_large_scale.dir/fig15_large_scale.cpp.o"
  "CMakeFiles/fig15_large_scale.dir/fig15_large_scale.cpp.o.d"
  "fig15_large_scale"
  "fig15_large_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_large_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
