# Empty dependencies file for fig13_incast.
# This may be replaced when dependencies are built.
