file(REMOVE_RECURSE
  "CMakeFiles/fig13_incast.dir/fig13_incast.cpp.o"
  "CMakeFiles/fig13_incast.dir/fig13_incast.cpp.o.d"
  "fig13_incast"
  "fig13_incast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_incast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
