# Empty dependencies file for fig08_workload_cdfs.
# This may be replaced when dependencies are built.
