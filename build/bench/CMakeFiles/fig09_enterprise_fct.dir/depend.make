# Empty dependencies file for fig09_enterprise_fct.
# This may be replaced when dependencies are built.
