file(REMOVE_RECURSE
  "CMakeFiles/fig09_enterprise_fct.dir/fig09_enterprise_fct.cpp.o"
  "CMakeFiles/fig09_enterprise_fct.dir/fig09_enterprise_fct.cpp.o.d"
  "fig09_enterprise_fct"
  "fig09_enterprise_fct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_enterprise_fct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
