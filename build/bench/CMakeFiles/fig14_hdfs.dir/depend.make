# Empty dependencies file for fig14_hdfs.
# This may be replaced when dependencies are built.
