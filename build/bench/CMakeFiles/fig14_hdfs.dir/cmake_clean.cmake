file(REMOVE_RECURSE
  "CMakeFiles/fig14_hdfs.dir/fig14_hdfs.cpp.o"
  "CMakeFiles/fig14_hdfs.dir/fig14_hdfs.cpp.o.d"
  "fig14_hdfs"
  "fig14_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
