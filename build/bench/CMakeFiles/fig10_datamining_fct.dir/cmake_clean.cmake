file(REMOVE_RECURSE
  "CMakeFiles/fig10_datamining_fct.dir/fig10_datamining_fct.cpp.o"
  "CMakeFiles/fig10_datamining_fct.dir/fig10_datamining_fct.cpp.o.d"
  "fig10_datamining_fct"
  "fig10_datamining_fct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_datamining_fct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
