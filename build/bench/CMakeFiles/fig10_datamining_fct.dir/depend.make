# Empty dependencies file for fig10_datamining_fct.
# This may be replaced when dependencies are built.
