# Empty compiler generated dependencies file for fig03_traffic_matrix.
# This may be replaced when dependencies are built.
