file(REMOVE_RECURSE
  "CMakeFiles/fig03_traffic_matrix.dir/fig03_traffic_matrix.cpp.o"
  "CMakeFiles/fig03_traffic_matrix.dir/fig03_traffic_matrix.cpp.o.d"
  "fig03_traffic_matrix"
  "fig03_traffic_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_traffic_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
