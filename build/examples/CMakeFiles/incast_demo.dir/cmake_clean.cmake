file(REMOVE_RECURSE
  "CMakeFiles/incast_demo.dir/incast_demo.cpp.o"
  "CMakeFiles/incast_demo.dir/incast_demo.cpp.o.d"
  "incast_demo"
  "incast_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incast_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
