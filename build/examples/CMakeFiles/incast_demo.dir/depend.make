# Empty dependencies file for incast_demo.
# This may be replaced when dependencies are built.
