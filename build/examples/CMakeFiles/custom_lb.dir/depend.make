# Empty dependencies file for custom_lb.
# This may be replaced when dependencies are built.
