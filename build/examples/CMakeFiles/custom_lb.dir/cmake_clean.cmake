file(REMOVE_RECURSE
  "CMakeFiles/custom_lb.dir/custom_lb.cpp.o"
  "CMakeFiles/custom_lb.dir/custom_lb.cpp.o.d"
  "custom_lb"
  "custom_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
