file(REMOVE_RECURSE
  "CMakeFiles/pods_demo.dir/pods_demo.cpp.o"
  "CMakeFiles/pods_demo.dir/pods_demo.cpp.o.d"
  "pods_demo"
  "pods_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pods_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
