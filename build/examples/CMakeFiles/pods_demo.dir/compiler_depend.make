# Empty compiler generated dependencies file for pods_demo.
# This may be replaced when dependencies are built.
