file(REMOVE_RECURSE
  "CMakeFiles/conga_sim.dir/conga_sim.cpp.o"
  "CMakeFiles/conga_sim.dir/conga_sim.cpp.o.d"
  "conga_sim"
  "conga_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conga_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
