# Empty dependencies file for conga_sim.
# This may be replaced when dependencies are built.
