# Empty dependencies file for conga.
# This may be replaced when dependencies are built.
