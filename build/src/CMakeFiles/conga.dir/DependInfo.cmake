
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bottleneck_game.cpp" "src/CMakeFiles/conga.dir/analysis/bottleneck_game.cpp.o" "gcc" "src/CMakeFiles/conga.dir/analysis/bottleneck_game.cpp.o.d"
  "/root/repo/src/analysis/imbalance_model.cpp" "src/CMakeFiles/conga.dir/analysis/imbalance_model.cpp.o" "gcc" "src/CMakeFiles/conga.dir/analysis/imbalance_model.cpp.o.d"
  "/root/repo/src/analysis/maxflow.cpp" "src/CMakeFiles/conga.dir/analysis/maxflow.cpp.o" "gcc" "src/CMakeFiles/conga.dir/analysis/maxflow.cpp.o.d"
  "/root/repo/src/analysis/simplex.cpp" "src/CMakeFiles/conga.dir/analysis/simplex.cpp.o" "gcc" "src/CMakeFiles/conga.dir/analysis/simplex.cpp.o.d"
  "/root/repo/src/core/conga_lb.cpp" "src/CMakeFiles/conga.dir/core/conga_lb.cpp.o" "gcc" "src/CMakeFiles/conga.dir/core/conga_lb.cpp.o.d"
  "/root/repo/src/core/congestion_tables.cpp" "src/CMakeFiles/conga.dir/core/congestion_tables.cpp.o" "gcc" "src/CMakeFiles/conga.dir/core/congestion_tables.cpp.o.d"
  "/root/repo/src/core/dre.cpp" "src/CMakeFiles/conga.dir/core/dre.cpp.o" "gcc" "src/CMakeFiles/conga.dir/core/dre.cpp.o.d"
  "/root/repo/src/core/flowlet_table.cpp" "src/CMakeFiles/conga.dir/core/flowlet_table.cpp.o" "gcc" "src/CMakeFiles/conga.dir/core/flowlet_table.cpp.o.d"
  "/root/repo/src/lb/weighted_lb.cpp" "src/CMakeFiles/conga.dir/lb/weighted_lb.cpp.o" "gcc" "src/CMakeFiles/conga.dir/lb/weighted_lb.cpp.o.d"
  "/root/repo/src/net/fabric.cpp" "src/CMakeFiles/conga.dir/net/fabric.cpp.o" "gcc" "src/CMakeFiles/conga.dir/net/fabric.cpp.o.d"
  "/root/repo/src/net/host.cpp" "src/CMakeFiles/conga.dir/net/host.cpp.o" "gcc" "src/CMakeFiles/conga.dir/net/host.cpp.o.d"
  "/root/repo/src/net/leaf_switch.cpp" "src/CMakeFiles/conga.dir/net/leaf_switch.cpp.o" "gcc" "src/CMakeFiles/conga.dir/net/leaf_switch.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/conga.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/conga.dir/net/link.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/conga.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/conga.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/pod_fabric.cpp" "src/CMakeFiles/conga.dir/net/pod_fabric.cpp.o" "gcc" "src/CMakeFiles/conga.dir/net/pod_fabric.cpp.o.d"
  "/root/repo/src/net/queue.cpp" "src/CMakeFiles/conga.dir/net/queue.cpp.o" "gcc" "src/CMakeFiles/conga.dir/net/queue.cpp.o.d"
  "/root/repo/src/net/spine_switch.cpp" "src/CMakeFiles/conga.dir/net/spine_switch.cpp.o" "gcc" "src/CMakeFiles/conga.dir/net/spine_switch.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/conga.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/conga.dir/net/topology.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "src/CMakeFiles/conga.dir/sim/random.cpp.o" "gcc" "src/CMakeFiles/conga.dir/sim/random.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/conga.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/conga.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/stats/fct_collector.cpp" "src/CMakeFiles/conga.dir/stats/fct_collector.cpp.o" "gcc" "src/CMakeFiles/conga.dir/stats/fct_collector.cpp.o.d"
  "/root/repo/src/stats/samplers.cpp" "src/CMakeFiles/conga.dir/stats/samplers.cpp.o" "gcc" "src/CMakeFiles/conga.dir/stats/samplers.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/conga.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/conga.dir/stats/summary.cpp.o.d"
  "/root/repo/src/tcp/flow.cpp" "src/CMakeFiles/conga.dir/tcp/flow.cpp.o" "gcc" "src/CMakeFiles/conga.dir/tcp/flow.cpp.o.d"
  "/root/repo/src/tcp/mptcp_connection.cpp" "src/CMakeFiles/conga.dir/tcp/mptcp_connection.cpp.o" "gcc" "src/CMakeFiles/conga.dir/tcp/mptcp_connection.cpp.o.d"
  "/root/repo/src/tcp/tcp_connection.cpp" "src/CMakeFiles/conga.dir/tcp/tcp_connection.cpp.o" "gcc" "src/CMakeFiles/conga.dir/tcp/tcp_connection.cpp.o.d"
  "/root/repo/src/tcp/tcp_sink.cpp" "src/CMakeFiles/conga.dir/tcp/tcp_sink.cpp.o" "gcc" "src/CMakeFiles/conga.dir/tcp/tcp_sink.cpp.o.d"
  "/root/repo/src/workload/experiment.cpp" "src/CMakeFiles/conga.dir/workload/experiment.cpp.o" "gcc" "src/CMakeFiles/conga.dir/workload/experiment.cpp.o.d"
  "/root/repo/src/workload/flow_size_dist.cpp" "src/CMakeFiles/conga.dir/workload/flow_size_dist.cpp.o" "gcc" "src/CMakeFiles/conga.dir/workload/flow_size_dist.cpp.o.d"
  "/root/repo/src/workload/flowlet_study.cpp" "src/CMakeFiles/conga.dir/workload/flowlet_study.cpp.o" "gcc" "src/CMakeFiles/conga.dir/workload/flowlet_study.cpp.o.d"
  "/root/repo/src/workload/hdfs_gen.cpp" "src/CMakeFiles/conga.dir/workload/hdfs_gen.cpp.o" "gcc" "src/CMakeFiles/conga.dir/workload/hdfs_gen.cpp.o.d"
  "/root/repo/src/workload/incast_gen.cpp" "src/CMakeFiles/conga.dir/workload/incast_gen.cpp.o" "gcc" "src/CMakeFiles/conga.dir/workload/incast_gen.cpp.o.d"
  "/root/repo/src/workload/traffic_gen.cpp" "src/CMakeFiles/conga.dir/workload/traffic_gen.cpp.o" "gcc" "src/CMakeFiles/conga.dir/workload/traffic_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
