# Empty compiler generated dependencies file for conga.
# This may be replaced when dependencies are built.
