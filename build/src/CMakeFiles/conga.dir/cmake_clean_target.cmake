file(REMOVE_RECURSE
  "libconga.a"
)
