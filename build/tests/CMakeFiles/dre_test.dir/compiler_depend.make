# Empty compiler generated dependencies file for dre_test.
# This may be replaced when dependencies are built.
