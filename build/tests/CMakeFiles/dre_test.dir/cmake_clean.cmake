file(REMOVE_RECURSE
  "CMakeFiles/dre_test.dir/dre_test.cpp.o"
  "CMakeFiles/dre_test.dir/dre_test.cpp.o.d"
  "dre_test"
  "dre_test.pdb"
  "dre_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dre_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
