# Empty dependencies file for conga_lb_test.
# This may be replaced when dependencies are built.
