file(REMOVE_RECURSE
  "CMakeFiles/conga_lb_test.dir/conga_lb_test.cpp.o"
  "CMakeFiles/conga_lb_test.dir/conga_lb_test.cpp.o.d"
  "conga_lb_test"
  "conga_lb_test.pdb"
  "conga_lb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conga_lb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
