file(REMOVE_RECURSE
  "CMakeFiles/queue_link_test.dir/queue_link_test.cpp.o"
  "CMakeFiles/queue_link_test.dir/queue_link_test.cpp.o.d"
  "queue_link_test"
  "queue_link_test.pdb"
  "queue_link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
