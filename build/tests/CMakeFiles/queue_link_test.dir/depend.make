# Empty dependencies file for queue_link_test.
# This may be replaced when dependencies are built.
