# Empty compiler generated dependencies file for congestion_tables_test.
# This may be replaced when dependencies are built.
