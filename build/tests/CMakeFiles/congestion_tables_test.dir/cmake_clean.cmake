file(REMOVE_RECURSE
  "CMakeFiles/congestion_tables_test.dir/congestion_tables_test.cpp.o"
  "CMakeFiles/congestion_tables_test.dir/congestion_tables_test.cpp.o.d"
  "congestion_tables_test"
  "congestion_tables_test.pdb"
  "congestion_tables_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
