file(REMOVE_RECURSE
  "CMakeFiles/analysis_crosscheck_test.dir/analysis_crosscheck_test.cpp.o"
  "CMakeFiles/analysis_crosscheck_test.dir/analysis_crosscheck_test.cpp.o.d"
  "analysis_crosscheck_test"
  "analysis_crosscheck_test.pdb"
  "analysis_crosscheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_crosscheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
