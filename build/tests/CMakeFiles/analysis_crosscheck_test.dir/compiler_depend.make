# Empty compiler generated dependencies file for analysis_crosscheck_test.
# This may be replaced when dependencies are built.
