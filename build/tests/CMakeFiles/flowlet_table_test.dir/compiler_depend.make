# Empty compiler generated dependencies file for flowlet_table_test.
# This may be replaced when dependencies are built.
