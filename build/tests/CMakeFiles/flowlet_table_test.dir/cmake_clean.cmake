file(REMOVE_RECURSE
  "CMakeFiles/flowlet_table_test.dir/flowlet_table_test.cpp.o"
  "CMakeFiles/flowlet_table_test.dir/flowlet_table_test.cpp.o.d"
  "flowlet_table_test"
  "flowlet_table_test.pdb"
  "flowlet_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowlet_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
