file(REMOVE_RECURSE
  "CMakeFiles/pod_fabric_test.dir/pod_fabric_test.cpp.o"
  "CMakeFiles/pod_fabric_test.dir/pod_fabric_test.cpp.o.d"
  "pod_fabric_test"
  "pod_fabric_test.pdb"
  "pod_fabric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pod_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
