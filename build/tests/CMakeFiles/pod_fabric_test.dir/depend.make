# Empty dependencies file for pod_fabric_test.
# This may be replaced when dependencies are built.
