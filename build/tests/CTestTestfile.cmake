# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/dre_test[1]_include.cmake")
include("/root/repo/build/tests/queue_link_test[1]_include.cmake")
include("/root/repo/build/tests/flowlet_table_test[1]_include.cmake")
include("/root/repo/build/tests/congestion_tables_test[1]_include.cmake")
include("/root/repo/build/tests/conga_lb_test[1]_include.cmake")
include("/root/repo/build/tests/lb_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/pod_fabric_test[1]_include.cmake")
include("/root/repo/build/tests/failure_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/mptcp_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_crosscheck_test[1]_include.cmake")
include("/root/repo/build/tests/host_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
