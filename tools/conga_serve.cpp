// conga_serve — the campaign service CLI.
//
// A campaign is a declarative sweep request (scenario family x policy x load
// x seed x fault grid). conga_serve expands it into content-addressed cells,
// reuses every cell the store already has for this exact code, simulates
// only the misses, and writes a conga-campaign-v1 report that is
// byte-identical whether it came from a cold run, a warm run, a supervised
// run, or a killed-and-resumed run. Cache statistics go to --stats-out /
// stderr, never into the report.
//
// Subcommands:
//   run     execute a campaign incrementally
//           --campaign FILE | --builtin NAME   the request (JSON / built-in)
//           --store DIR                        content-addressed result store
//           --jobs N                           workers (threads, or children
//                                              under --supervise; default 1)
//           --out FILE                         report (default stdout)
//           --stats-out FILE                   cache statistics JSON
//           --baseline FILE                    prior report to compare with
//           --verdict-out FILE                 verdict JSON (needs --baseline)
//           --tolerance X                      relative FCT tolerance (0.01)
//           --verify-sample PCT                recompute PCT% of cache hits;
//                                              any divergence is a poisoned
//                                              store and exits nonzero
//           --supervise                        run each miss in an isolated
//                                              child process: crashes/hangs
//                                              are retried then quarantined,
//                                              never fatal to the sweep
//           --deadline-ms N                    per-cell wall-clock budget
//           --max-attempts N                   attempts before quarantine
//           --backoff-base-ms N / --backoff-cap-ms N   retry schedule
//           --verbose                          per-cell progress on stderr
//   serve   long-lived spool daemon (implies supervision)
//           --spool DIR                        watch DIR for <name>.json
//                                              requests; stream results to
//                                              <name>.out.jsonl; write
//                                              <name>.report.json atomically
//           --store DIR, --jobs N, supervision flags as for run
//           --poll-ms N                        idle re-scan interval (500)
//           --once                             process current requests, exit
//           --drain-grace-ms N                 SIGTERM/SIGINT: budget for
//                                              in-flight children before a
//                                              resume marker is written
//   store   maintain a result store
//           gc    --store DIR [--tmp-age-seconds N] [--keep-fingerprints CSV]
//                 remove orphaned tmp files older than N seconds (3600) and,
//                 when a keep list is given, entries from other fingerprints
//                 ("current" names the running build's fingerprint)
//           stat  --store DIR
//                 entry/byte counts by fingerprint, JSON on stdout
//   expand  print the cell grid (coordinates and cache keys), no simulation
//           --campaign FILE | --builtin NAME
//   verdict compare two reports offline
//           --report FILE --baseline FILE [--out FILE] [--tolerance X]
//
// The CONGA_CELL_FAULT env knob ("crash:0,hang:2@1,tear:3") injects
// deterministic child failures under --supervise / serve — test-only.
//
// Exit status: 0 success; 1 regression verdict, store poisoning, or
// quarantined cells; 2 usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <csignal>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/fingerprint.hpp"
#include "campaign/spool.hpp"
#include "campaign/supervisor.hpp"
#include "telemetry/telemetry.hpp"

using namespace conga;

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void on_shutdown_signal(int) { g_shutdown = 1; }

int usage() {
  std::fprintf(
      stderr,
      "usage: conga_serve run    [--campaign FILE | --builtin NAME] "
      "[--store DIR]\n"
      "                          [--jobs N] [--out FILE] [--stats-out FILE]\n"
      "                          [--baseline FILE --verdict-out FILE]\n"
      "                          [--tolerance X] [--verify-sample PCT]\n"
      "                          [--supervise] [--deadline-ms N] "
      "[--max-attempts N]\n"
      "                          [--backoff-base-ms N] [--backoff-cap-ms N] "
      "[--verbose]\n"
      "       conga_serve serve  --spool DIR [--store DIR] [--jobs N] "
      "[--poll-ms N]\n"
      "                          [--once] [--drain-grace-ms N] "
      "[supervision flags]\n"
      "       conga_serve store  gc   --store DIR [--tmp-age-seconds N]\n"
      "                               [--keep-fingerprints CSV]\n"
      "       conga_serve store  stat --store DIR\n"
      "       conga_serve expand [--campaign FILE | --builtin NAME]\n"
      "       conga_serve verdict --report FILE --baseline FILE "
      "[--out FILE] [--tolerance X]\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  out.clear();
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    out.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return (std::fclose(f) == 0) && ok;
}

/// Resolves --campaign / --builtin into a request; defaults to the built-in
/// smoke campaign when neither is given.
bool load_campaign(const std::string& campaign_path,
                   const std::string& builtin, campaign::CampaignSpec& out,
                   std::string& err) {
  if (!campaign_path.empty() && !builtin.empty()) {
    err = "--campaign and --builtin are mutually exclusive";
    return false;
  }
  if (!campaign_path.empty()) {
    std::string text;
    if (!read_file(campaign_path, text)) {
      err = "cannot read " + campaign_path;
      return false;
    }
    return campaign::parse_campaign(text, out, err);
  }
  const std::string name = builtin.empty() ? "smoke" : builtin;
  if (name == "smoke") {
    out = campaign::make_smoke_campaign();
    return true;
  }
  err = "unknown builtin campaign '" + name + "' (available: smoke)";
  return false;
}

struct Args {
  std::string self_exe;  ///< resolved binary path, for supervised children
  std::string campaign_path;
  std::string builtin;
  std::string store_dir;
  std::string out_path;
  std::string stats_path;
  std::string baseline_path;
  std::string verdict_path;
  std::string report_path;
  std::string spool_dir;
  std::vector<std::string> keep_fingerprints;
  double tolerance = 0.01;
  double verify_sample = 0.0;  ///< fraction, from --verify-sample percent
  int jobs = 1;
  int max_attempts = 3;
  int poll_ms = 500;
  std::int64_t deadline_ms = 120000;
  std::int64_t backoff_base_ms = 250;
  std::int64_t backoff_cap_ms = 5000;
  std::int64_t drain_grace_ms = 5000;
  std::int64_t tmp_age_seconds = 3600;
  bool supervise = false;
  bool once = false;
  bool verbose = false;
};

bool parse_int_flag(const std::string& v, std::int64_t min_value,
                    std::int64_t& out) {
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || parsed < min_value) return false;
  out = parsed;
  return true;
}

bool parse_args(int argc, char** argv, int start, Args& a, std::string& err) {
  for (int i = start; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](std::string& out) {
      if (i + 1 >= argc) {
        err = std::string(arg) + " needs a value";
        return false;
      }
      out = argv[++i];
      return true;
    };
    std::string v;
    std::int64_t n = 0;
    if (std::strcmp(arg, "--campaign") == 0) {
      if (!value(a.campaign_path)) return false;
    } else if (std::strcmp(arg, "--builtin") == 0) {
      if (!value(a.builtin)) return false;
    } else if (std::strcmp(arg, "--store") == 0) {
      if (!value(a.store_dir)) return false;
    } else if (std::strcmp(arg, "--out") == 0) {
      if (!value(a.out_path)) return false;
    } else if (std::strcmp(arg, "--stats-out") == 0) {
      if (!value(a.stats_path)) return false;
    } else if (std::strcmp(arg, "--baseline") == 0) {
      if (!value(a.baseline_path)) return false;
    } else if (std::strcmp(arg, "--verdict-out") == 0) {
      if (!value(a.verdict_path)) return false;
    } else if (std::strcmp(arg, "--report") == 0) {
      if (!value(a.report_path)) return false;
    } else if (std::strcmp(arg, "--spool") == 0) {
      if (!value(a.spool_dir)) return false;
    } else if (std::strcmp(arg, "--keep-fingerprints") == 0) {
      if (!value(v)) return false;
      std::size_t pos = 0;
      while (pos <= v.size()) {
        std::size_t end = v.find(',', pos);
        if (end == std::string::npos) end = v.size();
        std::string token = v.substr(pos, end - pos);
        pos = end + 1;
        if (token.empty()) continue;
        if (token == "current") token = campaign::code_fingerprint();
        a.keep_fingerprints.push_back(std::move(token));
      }
      if (a.keep_fingerprints.empty()) {
        err = "--keep-fingerprints wants a comma list of fingerprints";
        return false;
      }
    } else if (std::strcmp(arg, "--tolerance") == 0) {
      if (!value(v)) return false;
      a.tolerance = std::atof(v.c_str());
      if (!(a.tolerance >= 0.0)) {
        err = "--tolerance must be >= 0";
        return false;
      }
    } else if (std::strcmp(arg, "--verify-sample") == 0) {
      if (!value(v)) return false;
      const double pct = std::atof(v.c_str());
      if (!(pct > 0.0) || pct > 100.0) {
        err = "--verify-sample wants a percentage in (0, 100]";
        return false;
      }
      a.verify_sample = pct / 100.0;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      if (!value(v)) return false;
      a.jobs = std::atoi(v.c_str());
      if (a.jobs <= 0) {
        err = "--jobs must be positive";
        return false;
      }
    } else if (std::strcmp(arg, "--max-attempts") == 0) {
      if (!value(v) || !parse_int_flag(v, 1, n)) {
        if (err.empty()) err = "--max-attempts must be >= 1";
        return false;
      }
      a.max_attempts = static_cast<int>(n);
    } else if (std::strcmp(arg, "--poll-ms") == 0) {
      if (!value(v) || !parse_int_flag(v, 1, n)) {
        if (err.empty()) err = "--poll-ms must be >= 1";
        return false;
      }
      a.poll_ms = static_cast<int>(n);
    } else if (std::strcmp(arg, "--deadline-ms") == 0) {
      if (!value(v) || !parse_int_flag(v, 1, a.deadline_ms)) {
        if (err.empty()) err = "--deadline-ms must be >= 1";
        return false;
      }
    } else if (std::strcmp(arg, "--backoff-base-ms") == 0) {
      if (!value(v) || !parse_int_flag(v, 1, a.backoff_base_ms)) {
        if (err.empty()) err = "--backoff-base-ms must be >= 1";
        return false;
      }
    } else if (std::strcmp(arg, "--backoff-cap-ms") == 0) {
      if (!value(v) || !parse_int_flag(v, 1, a.backoff_cap_ms)) {
        if (err.empty()) err = "--backoff-cap-ms must be >= 1";
        return false;
      }
    } else if (std::strcmp(arg, "--drain-grace-ms") == 0) {
      if (!value(v) || !parse_int_flag(v, 0, a.drain_grace_ms)) {
        if (err.empty()) err = "--drain-grace-ms must be >= 0";
        return false;
      }
    } else if (std::strcmp(arg, "--tmp-age-seconds") == 0) {
      if (!value(v) || !parse_int_flag(v, 0, a.tmp_age_seconds)) {
        if (err.empty()) err = "--tmp-age-seconds must be >= 0";
        return false;
      }
    } else if (std::strcmp(arg, "--supervise") == 0) {
      a.supervise = true;
    } else if (std::strcmp(arg, "--once") == 0) {
      a.once = true;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      a.verbose = true;
    } else {
      err = std::string("unknown flag '") + arg + "'";
      return false;
    }
  }
  return true;
}

campaign::SupervisorOptions supervisor_options(const Args& a) {
  campaign::SupervisorOptions s;
  s.exe = a.self_exe;
  s.store_root = a.store_dir;
  s.jobs = a.jobs;
  s.max_attempts = a.max_attempts;
  s.deadline_ms = a.deadline_ms;
  s.backoff_base_ms = a.backoff_base_ms;
  s.backoff_cap_ms = a.backoff_cap_ms;
  s.drain_grace_ms = a.drain_grace_ms;
  const char* fault = std::getenv("CONGA_CELL_FAULT");
  if (fault != nullptr) s.fault_spec = fault;
  return s;
}

int cmd_expand(const Args& a) {
  campaign::CampaignSpec spec;
  std::string err;
  if (!load_campaign(a.campaign_path, a.builtin, spec, err)) {
    std::fprintf(stderr, "conga_serve: %s\n", err.c_str());
    return 2;
  }
  const std::string fp = campaign::code_fingerprint();
  const std::vector<campaign::Cell> cells =
      campaign::expand_campaign(spec, fp);
  std::printf("campaign %s: %zu cells (fingerprint %s)\n", spec.name.c_str(),
              cells.size(), fp.c_str());
  for (const campaign::Cell& cell : cells) {
    std::printf("%s  %s/%s @ %d%% seeds=%llu/%llu fault=%s/%llu\n",
                cell.key.c_str(), cell.case_name.c_str(),
                cell.spec.policy.c_str(),
                static_cast<int>(cell.spec.load * 100.0 + 0.5),
                static_cast<unsigned long long>(cell.spec.fabric_seed),
                static_cast<unsigned long long>(cell.spec.traffic_seed),
                cell.spec.fault.profile.c_str(),
                static_cast<unsigned long long>(cell.spec.fault.seed));
  }
  return 0;
}

int make_and_emit_verdict(const campaign::Json& report,
                          const std::string& baseline_path,
                          const std::string& verdict_path, double tolerance) {
  std::string base_text;
  std::string err;
  if (!read_file(baseline_path, base_text)) {
    std::fprintf(stderr, "conga_serve: cannot read %s\n",
                 baseline_path.c_str());
    return 2;
  }
  campaign::Json baseline;
  if (!campaign::Json::parse(base_text, baseline, err)) {
    std::fprintf(stderr, "conga_serve: baseline: %s\n", err.c_str());
    return 2;
  }
  campaign::VerdictOptions vopts;
  vopts.rel_fct_tolerance = tolerance;
  campaign::Json verdict;
  if (!campaign::make_verdict(report, baseline, vopts, verdict, err)) {
    std::fprintf(stderr, "conga_serve: %s\n", err.c_str());
    return 2;
  }
  const std::string bytes = verdict.dump_pretty() + "\n";
  if (!verdict_path.empty()) {
    if (!write_file(verdict_path, bytes)) {
      std::fprintf(stderr, "conga_serve: cannot write %s\n",
                   verdict_path.c_str());
      return 2;
    }
  } else {
    std::fputs(bytes.c_str(), stdout);
  }
  const bool pass = campaign::verdict_pass(verdict);
  std::fprintf(stderr, "conga_serve: verdict %s (regressions=%llu)\n",
               pass ? "PASS" : "REGRESSION",
               static_cast<unsigned long long>(
                   verdict.find("regressions")->as_uint()));
  return pass ? 0 : 1;
}

int cmd_run(const Args& a) {
  campaign::CampaignSpec spec;
  std::string err;
  if (!load_campaign(a.campaign_path, a.builtin, spec, err)) {
    std::fprintf(stderr, "conga_serve: %s\n", err.c_str());
    return 2;
  }
  if (!a.verdict_path.empty() && a.baseline_path.empty()) {
    std::fprintf(stderr, "conga_serve: --verdict-out needs --baseline\n");
    return 2;
  }

  campaign::ResultStore store(a.store_dir);
  telemetry::TraceSink sink;
  campaign::RunOptions opts;
  opts.jobs = a.jobs;
  opts.store = a.store_dir.empty() ? nullptr : &store;
  opts.sink = &sink;
  opts.verbose = a.verbose;

  campaign::CampaignRun run;
  if (a.supervise) {
    std::signal(SIGTERM, on_shutdown_signal);
    std::signal(SIGINT, on_shutdown_signal);
    campaign::SuperviseOutcome outcome = campaign::SuperviseOutcome::kComplete;
    if (!campaign::run_campaign_supervised(spec, opts, supervisor_options(a),
                                           nullptr, &g_shutdown, run, outcome,
                                           err)) {
      std::fprintf(stderr, "conga_serve: %s\n", err.c_str());
      return 2;
    }
    if (outcome == campaign::SuperviseOutcome::kDrained) {
      std::fprintf(stderr,
                   "conga_serve: interrupted; completed cells are in the "
                   "store, no report written\n");
      return 2;
    }
  } else if (!campaign::run_campaign(spec, opts, run, err)) {
    std::fprintf(stderr, "conga_serve: %s\n", err.c_str());
    return 2;
  }

  const std::string report_text = campaign::report_json(run);
  if (!a.out_path.empty()) {
    if (!write_file(a.out_path, report_text)) {
      std::fprintf(stderr, "conga_serve: cannot write %s\n",
                   a.out_path.c_str());
      return 2;
    }
  } else {
    std::fputs(report_text.c_str(), stdout);
  }

  // Cache statistics are run-dependent by design; they go to stderr and
  // --stats-out, never into the report (which must stay byte-identical
  // between cold and warm runs).
  const campaign::Json stats = campaign::stats_json(run.stats);
  std::fprintf(stderr, "conga_serve: %s\n", stats.dump().c_str());
  if (!a.stats_path.empty() &&
      !write_file(a.stats_path, stats.dump_pretty() + "\n")) {
    std::fprintf(stderr, "conga_serve: cannot write %s\n",
                 a.stats_path.c_str());
    return 2;
  }

  int status = 0;
  if (run.stats.failed > 0) {
    std::fprintf(stderr, "conga_serve: %zu cell(s) quarantined\n",
                 run.stats.failed);
    status = 1;
  }
  if (a.verify_sample > 0.0) {
    campaign::VerifyOutcome outcome;
    if (!campaign::verify_sample(run, a.verify_sample, a.jobs, opts.sink,
                                 outcome, err)) {
      std::fprintf(stderr, "conga_serve: verify-sample: %s\n", err.c_str());
      return 2;
    }
    std::fprintf(stderr,
                 "conga_serve: verify-sample recomputed %zu hit(s), "
                 "%zu mismatch(es)\n",
                 outcome.sampled, outcome.mismatched);
    for (const std::string& key : outcome.poisoned_keys) {
      std::fprintf(stderr, "conga_serve: POISONED store entry %s\n",
                   key.c_str());
    }
    if (outcome.mismatched > 0) status = 1;
  }

  if (!a.baseline_path.empty()) {
    campaign::Json report;
    if (!campaign::Json::parse(report_text, report, err)) {
      std::fprintf(stderr, "conga_serve: internal: report unparseable: %s\n",
                   err.c_str());
      return 2;
    }
    const int verdict_status = make_and_emit_verdict(
        report, a.baseline_path, a.verdict_path, a.tolerance);
    if (verdict_status != 0) status = verdict_status == 2 ? 2 : 1;
  }
  return status;
}

int cmd_verdict(const Args& a) {
  if (a.report_path.empty() || a.baseline_path.empty()) {
    std::fprintf(stderr,
                 "conga_serve: verdict needs --report and --baseline\n");
    return 2;
  }
  std::string report_text;
  std::string err;
  if (!read_file(a.report_path, report_text)) {
    std::fprintf(stderr, "conga_serve: cannot read %s\n",
                 a.report_path.c_str());
    return 2;
  }
  campaign::Json report;
  if (!campaign::Json::parse(report_text, report, err)) {
    std::fprintf(stderr, "conga_serve: report: %s\n", err.c_str());
    return 2;
  }
  // For the offline subcommand --out and --verdict-out are synonyms.
  return make_and_emit_verdict(
      report, a.baseline_path,
      a.verdict_path.empty() ? a.out_path : a.verdict_path, a.tolerance);
}

int cmd_serve(const Args& a) {
  if (a.spool_dir.empty()) {
    std::fprintf(stderr, "conga_serve: serve needs --spool DIR\n");
    return 2;
  }
  std::signal(SIGTERM, on_shutdown_signal);
  std::signal(SIGINT, on_shutdown_signal);
  campaign::SpoolOptions sp;
  sp.dir = a.spool_dir;
  sp.store_root = a.store_dir;
  sp.poll_ms = a.poll_ms;
  sp.once = a.once;
  sp.verbose = a.verbose;
  sp.supervisor = supervisor_options(a);
  std::string err;
  const int rc = campaign::serve_spool(sp, &g_shutdown, err);
  if (rc != 0) std::fprintf(stderr, "conga_serve: %s\n", err.c_str());
  return rc;
}

/// Hidden child entry point: one cell, request on stdin, response on stdout.
int cmd_cell() {
  std::string request;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), stdin)) > 0) {
    request.append(buf, n);
  }
  std::string response;
  std::string diag;
  const int code = campaign::cell_main(request, response, diag);
  if (!diag.empty()) std::fprintf(stderr, "conga_serve: %s\n", diag.c_str());
  std::fwrite(response.data(), 1, response.size(), stdout);
  std::fflush(stdout);
  return code;
}

int cmd_store_gc(const Args& a) {
  if (a.store_dir.empty()) {
    std::fprintf(stderr, "conga_serve: store gc needs --store DIR\n");
    return 2;
  }
  campaign::ResultStore store(a.store_dir);
  campaign::ResultStore::GcOptions gc;
  gc.tmp_age_seconds = a.tmp_age_seconds;
  gc.keep_fingerprints = a.keep_fingerprints;
  campaign::ResultStore::GcStats stats;
  std::string err;
  if (!store.gc(gc, stats, err)) {
    std::fprintf(stderr, "conga_serve: %s\n", err.c_str());
    return 2;
  }
  std::fprintf(stderr,
               "conga_serve: gc removed %llu tmp file(s) and %llu "
               "entrie(s), reclaimed %llu bytes (kept %llu tmp, %llu "
               "entries)\n",
               static_cast<unsigned long long>(stats.tmp_removed),
               static_cast<unsigned long long>(stats.entries_removed),
               static_cast<unsigned long long>(stats.bytes_reclaimed),
               static_cast<unsigned long long>(stats.tmp_kept),
               static_cast<unsigned long long>(stats.entries_kept));
  return 0;
}

int cmd_store_stat(const Args& a) {
  if (a.store_dir.empty()) {
    std::fprintf(stderr, "conga_serve: store stat needs --store DIR\n");
    return 2;
  }
  campaign::ResultStore store(a.store_dir);
  campaign::ResultStore::StoreStat st;
  std::string err;
  if (!store.stat(st, err)) {
    std::fprintf(stderr, "conga_serve: %s\n", err.c_str());
    return 2;
  }
  campaign::Json doc = campaign::Json::object();
  doc.set("schema", campaign::Json::string("conga-store-stat-v1"));
  doc.set("entries", campaign::Json::uinteger(st.entries));
  doc.set("bytes", campaign::Json::uinteger(st.bytes));
  doc.set("tmp_files", campaign::Json::uinteger(st.tmp_files));
  doc.set("tmp_bytes", campaign::Json::uinteger(st.tmp_bytes));
  doc.set("quarantined", campaign::Json::uinteger(st.quarantined));
  campaign::Json buckets = campaign::Json::array();
  for (const campaign::ResultStore::StatBucket& b : st.by_fingerprint) {
    campaign::Json e = campaign::Json::object();
    e.set("fingerprint", campaign::Json::string(b.fingerprint));
    e.set("entries", campaign::Json::uinteger(b.entries));
    e.set("bytes", campaign::Json::uinteger(b.bytes));
    buckets.push_back(std::move(e));
  }
  doc.set("by_fingerprint", std::move(buckets));
  std::printf("%s\n", doc.dump_pretty().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "cell") return cmd_cell();

  Args a;
  a.self_exe = campaign::self_exe_path(argv[0]);
  std::string err;

  if (cmd == "store") {
    if (argc < 3) {
      std::fprintf(stderr,
                   "conga_serve: store needs a subcommand (gc, stat)\n");
      return usage();
    }
    const std::string sub = argv[2];
    if (!parse_args(argc, argv, 3, a, err)) {
      std::fprintf(stderr, "conga_serve: %s\n", err.c_str());
      return usage();
    }
    if (sub == "gc") return cmd_store_gc(a);
    if (sub == "stat") return cmd_store_stat(a);
    std::fprintf(stderr, "conga_serve: unknown store subcommand '%s'\n",
                 sub.c_str());
    return usage();
  }

  if (!parse_args(argc, argv, 2, a, err)) {
    std::fprintf(stderr, "conga_serve: %s\n", err.c_str());
    return usage();
  }
  if (cmd == "run") return cmd_run(a);
  if (cmd == "serve") return cmd_serve(a);
  if (cmd == "expand") return cmd_expand(a);
  if (cmd == "verdict") return cmd_verdict(a);
  std::fprintf(stderr, "conga_serve: unknown subcommand '%s'\n",
               argv[1]);
  return usage();
}
