// conga_serve — the campaign service CLI.
//
// A campaign is a declarative sweep request (scenario family x policy x load
// x seed x fault grid). conga_serve expands it into content-addressed cells,
// reuses every cell the store already has for this exact code, simulates
// only the misses, and writes a conga-campaign-v1 report that is
// byte-identical whether it came from a cold run, a warm run, or any --jobs
// value. Cache statistics go to --stats-out / stderr, never into the report.
//
// Subcommands:
//   run     execute a campaign incrementally
//           --campaign FILE | --builtin NAME   the request (JSON / built-in)
//           --store DIR                        content-addressed result store
//           --jobs N                           worker threads (default 1)
//           --out FILE                         report (default stdout)
//           --stats-out FILE                   cache statistics JSON
//           --baseline FILE                    prior report to compare with
//           --verdict-out FILE                 verdict JSON (needs --baseline)
//           --tolerance X                      relative FCT tolerance (0.01)
//           --verify-sample PCT                recompute PCT% of cache hits;
//                                              any divergence is a poisoned
//                                              store and exits nonzero
//           --verbose                          per-cell progress on stderr
//   expand  print the cell grid (coordinates and cache keys), no simulation
//           --campaign FILE | --builtin NAME
//   verdict compare two reports offline
//           --report FILE --baseline FILE [--out FILE] [--tolerance X]
//
// Exit status: 0 success; 1 regression verdict or store poisoning; 2 usage
// or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/fingerprint.hpp"
#include "telemetry/telemetry.hpp"

using namespace conga;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: conga_serve run    [--campaign FILE | --builtin NAME] "
      "[--store DIR]\n"
      "                          [--jobs N] [--out FILE] [--stats-out FILE]\n"
      "                          [--baseline FILE --verdict-out FILE]\n"
      "                          [--tolerance X] [--verify-sample PCT] "
      "[--verbose]\n"
      "       conga_serve expand [--campaign FILE | --builtin NAME]\n"
      "       conga_serve verdict --report FILE --baseline FILE "
      "[--out FILE] [--tolerance X]\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  out.clear();
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    out.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return (std::fclose(f) == 0) && ok;
}

/// Resolves --campaign / --builtin into a request; defaults to the built-in
/// smoke campaign when neither is given.
bool load_campaign(const std::string& campaign_path,
                   const std::string& builtin, campaign::CampaignSpec& out,
                   std::string& err) {
  if (!campaign_path.empty() && !builtin.empty()) {
    err = "--campaign and --builtin are mutually exclusive";
    return false;
  }
  if (!campaign_path.empty()) {
    std::string text;
    if (!read_file(campaign_path, text)) {
      err = "cannot read " + campaign_path;
      return false;
    }
    return campaign::parse_campaign(text, out, err);
  }
  const std::string name = builtin.empty() ? "smoke" : builtin;
  if (name == "smoke") {
    out = campaign::make_smoke_campaign();
    return true;
  }
  err = "unknown builtin campaign '" + name + "' (available: smoke)";
  return false;
}

struct Args {
  std::string campaign_path;
  std::string builtin;
  std::string store_dir;
  std::string out_path;
  std::string stats_path;
  std::string baseline_path;
  std::string verdict_path;
  std::string report_path;
  double tolerance = 0.01;
  double verify_sample = 0.0;  ///< fraction, from --verify-sample percent
  int jobs = 1;
  bool verbose = false;
};

bool parse_args(int argc, char** argv, Args& a, std::string& err) {
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](std::string& out) {
      if (i + 1 >= argc) {
        err = std::string(arg) + " needs a value";
        return false;
      }
      out = argv[++i];
      return true;
    };
    std::string v;
    if (std::strcmp(arg, "--campaign") == 0) {
      if (!value(a.campaign_path)) return false;
    } else if (std::strcmp(arg, "--builtin") == 0) {
      if (!value(a.builtin)) return false;
    } else if (std::strcmp(arg, "--store") == 0) {
      if (!value(a.store_dir)) return false;
    } else if (std::strcmp(arg, "--out") == 0) {
      if (!value(a.out_path)) return false;
    } else if (std::strcmp(arg, "--stats-out") == 0) {
      if (!value(a.stats_path)) return false;
    } else if (std::strcmp(arg, "--baseline") == 0) {
      if (!value(a.baseline_path)) return false;
    } else if (std::strcmp(arg, "--verdict-out") == 0) {
      if (!value(a.verdict_path)) return false;
    } else if (std::strcmp(arg, "--report") == 0) {
      if (!value(a.report_path)) return false;
    } else if (std::strcmp(arg, "--tolerance") == 0) {
      if (!value(v)) return false;
      a.tolerance = std::atof(v.c_str());
      if (!(a.tolerance >= 0.0)) {
        err = "--tolerance must be >= 0";
        return false;
      }
    } else if (std::strcmp(arg, "--verify-sample") == 0) {
      if (!value(v)) return false;
      const double pct = std::atof(v.c_str());
      if (!(pct > 0.0) || pct > 100.0) {
        err = "--verify-sample wants a percentage in (0, 100]";
        return false;
      }
      a.verify_sample = pct / 100.0;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      if (!value(v)) return false;
      a.jobs = std::atoi(v.c_str());
      if (a.jobs <= 0) {
        err = "--jobs must be positive";
        return false;
      }
    } else if (std::strcmp(arg, "--verbose") == 0) {
      a.verbose = true;
    } else {
      err = std::string("unknown flag ") + arg;
      return false;
    }
  }
  return true;
}

int cmd_expand(const Args& a) {
  campaign::CampaignSpec spec;
  std::string err;
  if (!load_campaign(a.campaign_path, a.builtin, spec, err)) {
    std::fprintf(stderr, "conga_serve: %s\n", err.c_str());
    return 2;
  }
  const std::string fp = campaign::code_fingerprint();
  const std::vector<campaign::Cell> cells =
      campaign::expand_campaign(spec, fp);
  std::printf("campaign %s: %zu cells (fingerprint %s)\n", spec.name.c_str(),
              cells.size(), fp.c_str());
  for (const campaign::Cell& cell : cells) {
    std::printf("%s  %s/%s @ %d%% seeds=%llu/%llu fault=%s/%llu\n",
                cell.key.c_str(), cell.case_name.c_str(),
                cell.spec.policy.c_str(),
                static_cast<int>(cell.spec.load * 100.0 + 0.5),
                static_cast<unsigned long long>(cell.spec.fabric_seed),
                static_cast<unsigned long long>(cell.spec.traffic_seed),
                cell.spec.fault.profile.c_str(),
                static_cast<unsigned long long>(cell.spec.fault.seed));
  }
  return 0;
}

int make_and_emit_verdict(const campaign::Json& report,
                          const std::string& baseline_path,
                          const std::string& verdict_path, double tolerance) {
  std::string base_text;
  std::string err;
  if (!read_file(baseline_path, base_text)) {
    std::fprintf(stderr, "conga_serve: cannot read %s\n",
                 baseline_path.c_str());
    return 2;
  }
  campaign::Json baseline;
  if (!campaign::Json::parse(base_text, baseline, err)) {
    std::fprintf(stderr, "conga_serve: baseline: %s\n", err.c_str());
    return 2;
  }
  campaign::VerdictOptions vopts;
  vopts.rel_fct_tolerance = tolerance;
  campaign::Json verdict;
  if (!campaign::make_verdict(report, baseline, vopts, verdict, err)) {
    std::fprintf(stderr, "conga_serve: %s\n", err.c_str());
    return 2;
  }
  const std::string bytes = verdict.dump_pretty() + "\n";
  if (!verdict_path.empty()) {
    if (!write_file(verdict_path, bytes)) {
      std::fprintf(stderr, "conga_serve: cannot write %s\n",
                   verdict_path.c_str());
      return 2;
    }
  } else {
    std::fputs(bytes.c_str(), stdout);
  }
  const bool pass = campaign::verdict_pass(verdict);
  std::fprintf(stderr, "conga_serve: verdict %s (regressions=%llu)\n",
               pass ? "PASS" : "REGRESSION",
               static_cast<unsigned long long>(
                   verdict.find("regressions")->as_uint()));
  return pass ? 0 : 1;
}

int cmd_run(const Args& a) {
  campaign::CampaignSpec spec;
  std::string err;
  if (!load_campaign(a.campaign_path, a.builtin, spec, err)) {
    std::fprintf(stderr, "conga_serve: %s\n", err.c_str());
    return 2;
  }
  if (!a.verdict_path.empty() && a.baseline_path.empty()) {
    std::fprintf(stderr, "conga_serve: --verdict-out needs --baseline\n");
    return 2;
  }

  campaign::ResultStore store(a.store_dir);
  telemetry::TraceSink sink;
  campaign::RunOptions opts;
  opts.jobs = a.jobs;
  opts.store = a.store_dir.empty() ? nullptr : &store;
  opts.sink = &sink;
  opts.verbose = a.verbose;

  campaign::CampaignRun run;
  if (!campaign::run_campaign(spec, opts, run, err)) {
    std::fprintf(stderr, "conga_serve: %s\n", err.c_str());
    return 2;
  }

  const std::string report_text = campaign::report_json(run);
  if (!a.out_path.empty()) {
    if (!write_file(a.out_path, report_text)) {
      std::fprintf(stderr, "conga_serve: cannot write %s\n",
                   a.out_path.c_str());
      return 2;
    }
  } else {
    std::fputs(report_text.c_str(), stdout);
  }

  // Cache statistics are run-dependent by design; they go to stderr and
  // --stats-out, never into the report (which must stay byte-identical
  // between cold and warm runs).
  const campaign::Json stats = campaign::stats_json(run.stats);
  std::fprintf(stderr, "conga_serve: %s\n", stats.dump().c_str());
  if (!a.stats_path.empty() &&
      !write_file(a.stats_path, stats.dump_pretty() + "\n")) {
    std::fprintf(stderr, "conga_serve: cannot write %s\n",
                 a.stats_path.c_str());
    return 2;
  }

  int status = 0;
  if (a.verify_sample > 0.0) {
    campaign::VerifyOutcome outcome;
    if (!campaign::verify_sample(run, a.verify_sample, a.jobs, opts.sink,
                                 outcome, err)) {
      std::fprintf(stderr, "conga_serve: verify-sample: %s\n", err.c_str());
      return 2;
    }
    std::fprintf(stderr,
                 "conga_serve: verify-sample recomputed %zu hit(s), "
                 "%zu mismatch(es)\n",
                 outcome.sampled, outcome.mismatched);
    for (const std::string& key : outcome.poisoned_keys) {
      std::fprintf(stderr, "conga_serve: POISONED store entry %s\n",
                   key.c_str());
    }
    if (outcome.mismatched > 0) status = 1;
  }

  if (!a.baseline_path.empty()) {
    campaign::Json report;
    if (!campaign::Json::parse(report_text, report, err)) {
      std::fprintf(stderr, "conga_serve: internal: report unparseable: %s\n",
                   err.c_str());
      return 2;
    }
    const int verdict_status = make_and_emit_verdict(
        report, a.baseline_path, a.verdict_path, a.tolerance);
    if (verdict_status != 0) status = verdict_status == 2 ? 2 : 1;
  }
  return status;
}

int cmd_verdict(const Args& a) {
  if (a.report_path.empty() || a.baseline_path.empty()) {
    std::fprintf(stderr,
                 "conga_serve: verdict needs --report and --baseline\n");
    return 2;
  }
  std::string report_text;
  std::string err;
  if (!read_file(a.report_path, report_text)) {
    std::fprintf(stderr, "conga_serve: cannot read %s\n",
                 a.report_path.c_str());
    return 2;
  }
  campaign::Json report;
  if (!campaign::Json::parse(report_text, report, err)) {
    std::fprintf(stderr, "conga_serve: report: %s\n", err.c_str());
    return 2;
  }
  // For the offline subcommand --out and --verdict-out are synonyms.
  return make_and_emit_verdict(
      report, a.baseline_path,
      a.verdict_path.empty() ? a.out_path : a.verdict_path, a.tolerance);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args a;
  std::string err;
  if (!parse_args(argc, argv, a, err)) {
    std::fprintf(stderr, "conga_serve: %s\n", err.c_str());
    return usage();
  }
  if (std::strcmp(argv[1], "run") == 0) return cmd_run(a);
  if (std::strcmp(argv[1], "expand") == 0) return cmd_expand(a);
  if (std::strcmp(argv[1], "verdict") == 0) return cmd_verdict(a);
  return usage();
}
