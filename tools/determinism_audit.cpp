// determinism_audit — bit-reproducibility gate for the simulator.
//
// Runs one scenario N times (default 2) with identical seeds and compares,
// across runs:
//   * the order-insensitive FCT digest (per-flow results), and
//   * the order-sensitive event-trace digest (the exact dispatch schedule).
// Any dependence on wall clock, pointer order, ASLR, or unordered-container
// iteration shows up as a digest mismatch; exit status 1 makes it a CI gate.
//
// The default scenario is the fig09 enterprise-workload cell (baseline
// testbed topology, CONGA, 60% load) scaled to run in seconds.
//
// Flags:
//   --seed N          fabric seed (traffic seed is derived)   [default 1]
//   --runs N          number of identical runs to compare     [default 2]
//   --duration-ms N   measurement window                      [default 20]
//   --warmup-ms N     warmup before measurement               [default 5]
//   --hosts N         hosts per leaf                          [default 8]
//   --load F          offered load                            [default 0.6]
//   --lb NAME         ecmp|conga|conga-flow|spray|local       [default conga]
//   --workload NAME   enterprise|data-mining|web-search       [default enterprise]
//   --jobs N          parallel-grid mode (see below)          [default 0 = off]
//
// Parallel-grid mode (--jobs N, N >= 2): instead of repeating one scenario,
// runs a grid of independent cells (the configured scenario at several loads
// and seeds) twice — once sequentially and once on N worker threads — and
// requires the per-cell FCT and event-trace digests to be byte-identical.
// This is the CI gate for the parallel experiment runner: any shared mutable
// simulation state between workers shows up as a digest mismatch (and as a
// TSan report in the sanitizer lane).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "debug/determinism.hpp"
#include "lb/factories.hpp"
#include "runtime/parallel_runner.hpp"

using namespace conga;

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr,
               "determinism_audit: %s\n(see the header of "
               "tools/determinism_audit.cpp for flag documentation)\n",
               msg);
  std::exit(2);
}

net::Fabric::LbFactory make_lb(const std::string& name) {
  if (name == "ecmp") return lb::ecmp();
  if (name == "conga") return core::conga();
  if (name == "conga-flow") return core::conga_flow();
  if (name == "spray") return lb::spray();
  if (name == "local") return lb::local_aware();
  usage(("unknown --lb: " + name).c_str());
}

workload::FlowSizeDist make_dist(const std::string& name) {
  if (name == "enterprise") return workload::enterprise();
  if (name == "data-mining") return workload::data_mining();
  if (name == "web-search") return workload::web_search();
  usage(("unknown --workload: " + name).c_str());
}

/// Parallel-grid gate: per-cell digests must not depend on the jobs count.
int run_parallel_grid_audit(const debug::DigestScenario& base, int jobs) {
  struct Cell {
    double load;
    std::uint64_t seed;
  };
  std::vector<Cell> cells;
  for (const double load : {0.3, 0.5, 0.7}) {
    for (std::uint64_t seed_off = 0; seed_off < 2; ++seed_off) {
      cells.push_back({load, base.fabric_seed + seed_off});
    }
  }

  auto run_cell = [&](std::size_t i) {
    debug::DigestScenario s = base;
    s.load = cells[i].load;
    s.fabric_seed = cells[i].seed;
    s.traffic_seed = cells[i].seed * 31 + 7;
    return debug::run_digest_trial(s);
  };

  std::printf("parallel-grid audit: %zu cells, jobs=1 vs jobs=%d\n",
              cells.size(), jobs);
  const std::vector<debug::RunDigests> seq =
      runtime::parallel_map<debug::RunDigests>(cells.size(), 1, run_cell);
  const std::vector<debug::RunDigests> par =
      runtime::parallel_map<debug::RunDigests>(cells.size(), jobs, run_cell);

  bool ok = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const bool same = seq[i] == par[i];
    std::printf("  cell %zu (load=%.2f seed=%llu): fct=%016llx "
                "trace=%016llx tele=%016llx events=%llu %s\n",
                i, cells[i].load,
                static_cast<unsigned long long>(cells[i].seed),
                static_cast<unsigned long long>(seq[i].fct),
                static_cast<unsigned long long>(seq[i].trace),
                static_cast<unsigned long long>(seq[i].telemetry),
                static_cast<unsigned long long>(seq[i].events),
                same ? "OK" : "MISMATCH");
    if (!same) {
      ok = false;
      std::fprintf(stderr,
                   "MISMATCH cell %zu: jobs=%d gave fct=%016llx "
                   "trace=%016llx tele=%016llx events=%llu\n",
                   i, jobs, static_cast<unsigned long long>(par[i].fct),
                   static_cast<unsigned long long>(par[i].trace),
                   static_cast<unsigned long long>(par[i].telemetry),
                   static_cast<unsigned long long>(par[i].events));
    }
  }
  std::printf("%s\n", ok ? "DETERMINISTIC: per-cell digests identical for "
                           "jobs=1 and jobs=N"
                         : "NON-DETERMINISTIC: parallel runner perturbed a "
                           "cell digest");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  int runs = 2;
  int duration_ms = 20;
  int warmup_ms = 5;
  int hosts = 8;
  int jobs = 0;
  double load = 0.6;
  std::string lb = "conga";
  std::string workload_name = "enterprise";

  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("flag needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (a == "--runs") {
      runs = std::atoi(need(i));
    } else if (a == "--duration-ms") {
      duration_ms = std::atoi(need(i));
    } else if (a == "--warmup-ms") {
      warmup_ms = std::atoi(need(i));
    } else if (a == "--hosts") {
      hosts = std::atoi(need(i));
    } else if (a == "--load") {
      load = std::atof(need(i));
    } else if (a == "--jobs") {
      jobs = std::atoi(need(i));
    } else if (a == "--lb") {
      lb = need(i);
    } else if (a == "--workload") {
      workload_name = need(i);
    } else if (a == "--help" || a == "-h") {
      usage("usage");
    } else {
      usage(("unknown flag: " + a).c_str());
    }
  }
  if (runs < 2) usage("--runs must be >= 2");

  debug::DigestScenario s;
  s.topo = net::testbed_baseline();
  s.topo.hosts_per_leaf = hosts;
  s.lb = make_lb(lb);
  s.dist = make_dist(workload_name);
  s.load = load;
  s.warmup = sim::milliseconds(warmup_ms);
  s.measure = sim::milliseconds(duration_ms);
  s.fabric_seed = seed;
  s.traffic_seed = seed * 31 + 7;

  if (jobs != 0) {
    if (jobs < 2) usage("--jobs must be >= 2 (or omitted)");
    // The grid sweeps loads itself; smaller per-cell windows keep the whole
    // grid comparable in cost to the classic two-run audit.
    s.warmup = sim::milliseconds(2);
    s.measure = sim::milliseconds(duration_ms < 10 ? duration_ms : 10);
    return run_parallel_grid_audit(s, jobs);
  }

  std::printf("determinism_audit: %s workload, lb=%s, load=%.2f, seed=%llu, "
              "%d runs\n",
              workload_name.c_str(), lb.c_str(), load,
              static_cast<unsigned long long>(seed), runs);

  std::vector<debug::RunDigests> results;
  for (int r = 0; r < runs; ++r) {
    results.push_back(debug::run_digest_trial(s));
    const auto& d = results.back();
    std::printf("  run %d: fct=%016llx trace=%016llx tele=%016llx "
                "events=%llu flows=%llu%s\n",
                r + 1, static_cast<unsigned long long>(d.fct),
                static_cast<unsigned long long>(d.trace),
                static_cast<unsigned long long>(d.telemetry),
                static_cast<unsigned long long>(d.events),
                static_cast<unsigned long long>(d.flows),
                d.drained ? "" : " (drain incomplete)");
  }

  bool ok = true;
  for (int r = 1; r < runs; ++r) {
    if (results[static_cast<std::size_t>(r)] == results[0]) continue;
    ok = false;
    const auto& d = results[static_cast<std::size_t>(r)];
    std::fprintf(stderr, "MISMATCH run %d vs run 1:%s%s%s%s\n", r + 1,
                 d.fct != results[0].fct ? " fct-digest" : "",
                 d.trace != results[0].trace ? " event-trace-digest" : "",
                 d.telemetry != results[0].telemetry ? " telemetry-digest"
                                                     : "",
                 d.events != results[0].events ? " event-count" : "");
  }
  std::printf("%s\n", ok ? "DETERMINISTIC: all runs identical"
                         : "NON-DETERMINISTIC: digest mismatch");
  return ok ? 0 : 1;
}
