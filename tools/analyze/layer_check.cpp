// layer_check — include-graph layering checker for the CONGA simulator.
//
// The repo declares an ordered layer DAG in tools/analyze/layers.conf
// (bottom -> top). Every in-tree source file is assigned to exactly one
// layer by longest-prefix path match; an #include edge is legal only when
// it points at the same layer or a *lower* one. Two extra mechanisms keep
// the rule honest rather than aspirational:
//
//   crosscutting <prefix>... — modules (debug assertions, telemetry) that
//       any *implementation* file (.cpp/.cc) may include regardless of its
//       layer. Headers still obey strict ordering, so crosscutting calls
//       never leak into lower-layer interfaces.
//   except <from> <to>       — grandfathered edges, reported but not fatal.
//       The current tree needs none; the mechanism exists so a future
//       regression can be ratcheted instead of reverted blind.
//
// Independent of the layer ordering, the checker runs Tarjan SCC over the
// whole include graph: any cycle (including a new one inside a single
// layer) is an error, as is a file no layer claims — the config must be
// maintained alongside the tree, not drift from it.
//
// Modes:
//   layer_check --root DIR [--config FILE] [--json OUT]    check the tree
//   layer_check --root FIXTURE_DIR --config ... --expect EXPECTED_FILE
//       self-test: canonical violation lines must match the expected file
//       exactly (this is how the checker itself is regression-tested).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Layer {
  std::string name;
  int rank = 0;                       // position in the declared order
  std::vector<std::string> prefixes;  // repo-relative paths ('/'-separated)
};

struct LayerConfig {
  std::vector<Layer> layers;
  std::vector<std::string> crosscutting;        // module prefixes
  std::set<std::pair<std::string, std::string>> exceptions;
  std::vector<std::string> scan_roots;
  std::vector<std::string> excludes;
};

struct Violation {
  std::string kind;  // back-edge | cycle | unassigned | self-include
  std::string detail;
};

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         std::equal(prefix.begin(), prefix.end(), s.begin());
}

std::optional<std::string> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

LayerConfig load_config(const fs::path& path) {
  LayerConfig cfg;
  auto text = read_file(path);
  if (!text) {
    std::fprintf(stderr, "layer_check: cannot read config %s\n",
                 path.string().c_str());
    std::exit(2);
  }
  std::istringstream all(*text);
  std::string raw;
  int rank = 0;
  while (std::getline(all, raw)) {
    const std::string line = raw.substr(0, raw.find('#'));
    std::istringstream ss(line);
    std::string verb;
    ss >> verb;
    if (verb == "layer") {
      Layer l;
      ss >> l.name;
      l.rank = rank++;
      std::string p;
      while (ss >> p) l.prefixes.push_back(p);
      if (l.name.empty() || l.prefixes.empty()) {
        std::fprintf(stderr, "layer_check: bad layer line: %s\n", raw.c_str());
        std::exit(2);
      }
      cfg.layers.push_back(std::move(l));
    } else if (verb == "crosscutting") {
      std::string p;
      while (ss >> p) cfg.crosscutting.push_back(p);
    } else if (verb == "except") {
      std::string from, to;
      ss >> from >> to;
      cfg.exceptions.emplace(from, to);
    } else if (verb == "scan") {
      std::string p;
      while (ss >> p) cfg.scan_roots.push_back(p);
    } else if (verb == "exclude") {
      std::string p;
      while (ss >> p) cfg.excludes.push_back(p);
    } else if (!verb.empty()) {
      std::fprintf(stderr, "layer_check: unknown directive `%s`\n",
                   verb.c_str());
      std::exit(2);
    }
  }
  if (cfg.scan_roots.empty()) {
    cfg.scan_roots = {"src", "tools", "bench", "tests", "examples"};
  }
  return cfg;
}

// Longest-prefix layer assignment; exact file entries beat directory
// prefixes because they are longer strings.
const Layer* layer_of(const LayerConfig& cfg, const std::string& rel) {
  const Layer* best = nullptr;
  std::size_t best_len = 0;
  for (const Layer& l : cfg.layers) {
    for (const std::string& p : l.prefixes) {
      if (starts_with(rel, p) && p.size() >= best_len) {
        best = &l;
        best_len = p.size();
      }
    }
  }
  return best;
}

bool is_crosscutting_target(const LayerConfig& cfg, const std::string& rel) {
  for (const std::string& p : cfg.crosscutting) {
    if (starts_with(rel, p)) return true;
  }
  return false;
}

bool is_impl_file(const std::string& rel) {
  return rel.size() > 4 && (rel.rfind(".cpp") == rel.size() - 4 ||
                            rel.rfind(".cc") == rel.size() - 3);
}

bool has_source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".hpp" || e == ".h" || e == ".cc";
}

// ---------------------------------------------------------------------------
struct Graph {
  std::vector<std::string> files;                    // sorted, index = node id
  std::map<std::string, int> id;
  std::vector<std::vector<int>> edges;               // includes
  std::vector<std::pair<int, int>> edge_lines;       // parallel: line numbers
};

const std::regex kIncludeRe("^\\s*#\\s*include\\s*\"([^\"]+)\"");

// Resolve a quoted include against the repo layout: relative to the
// including file first (matching the compiler's search), then the public
// include roots used in target_include_directories (src/, repo root).
std::optional<std::string> resolve_include(const fs::path& root,
                                           const std::string& includer_rel,
                                           const std::string& inc) {
  const fs::path includer_dir = fs::path(includer_rel).parent_path();
  const fs::path candidates[] = {
      includer_dir / inc,
      fs::path("src") / inc,
      fs::path(inc),
  };
  for (const fs::path& c : candidates) {
    if (fs::exists(root / c)) {
      return c.lexically_normal().generic_string();
    }
  }
  return std::nullopt;  // external/system header
}

Graph build_graph(const fs::path& root, const LayerConfig& cfg) {
  Graph g;
  std::vector<fs::path> paths;
  for (const std::string& r : cfg.scan_roots) {
    const fs::path dir = root / r;
    if (!fs::exists(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      const std::string rel = fs::relative(it->path(), root).generic_string();
      bool excluded = false;
      for (const std::string& prefix : cfg.excludes) {
        if (starts_with(rel, prefix)) excluded = true;
      }
      if (excluded) {
        if (it->is_directory()) it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && has_source_ext(it->path())) {
        paths.push_back(it->path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    const std::string rel = fs::relative(p, root).generic_string();
    g.id.emplace(rel, static_cast<int>(g.files.size()));
    g.files.push_back(rel);
  }
  g.edges.resize(g.files.size());
  for (std::size_t u = 0; u < g.files.size(); ++u) {
    auto text = read_file(root / g.files[u]);
    if (!text) continue;
    std::istringstream ss(*text);
    std::string line;
    int line_no = 0;
    while (std::getline(ss, line)) {
      ++line_no;
      std::smatch m;
      if (!std::regex_search(line, m, kIncludeRe)) continue;
      auto target = resolve_include(root, g.files[u], m[1]);
      if (!target) continue;
      auto it = g.id.find(*target);
      if (it == g.id.end()) continue;  // resolved outside the scanned set
      g.edges[u].push_back(it->second);
      g.edge_lines.emplace_back(static_cast<int>(u), line_no);
    }
  }
  return g;
}

// Tarjan strongly-connected components; any SCC with >1 node is a cycle.
struct Tarjan {
  const Graph& g;
  std::vector<int> index, low, comp;
  std::vector<bool> on_stack;
  std::vector<int> stack;
  int next_index = 0, next_comp = 0;
  std::vector<std::vector<int>> sccs;

  explicit Tarjan(const Graph& graph)
      : g(graph),
        index(graph.files.size(), -1),
        low(graph.files.size(), 0),
        comp(graph.files.size(), -1),
        on_stack(graph.files.size(), false) {
    for (std::size_t v = 0; v < g.files.size(); ++v) {
      if (index[v] == -1) strongconnect(static_cast<int>(v));
    }
  }

  // Iterative DFS: fixture trees are tiny but the real tree is ~150 files
  // and header chains can be deep; no recursion-depth gamble.
  void strongconnect(int v0) {
    struct Frame {
      int v;
      std::size_t edge = 0;
    };
    std::vector<Frame> frames{{v0}};
    index[v0] = low[v0] = next_index++;
    stack.push_back(v0);
    on_stack[v0] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < g.edges[static_cast<std::size_t>(f.v)].size()) {
        const int w = g.edges[static_cast<std::size_t>(f.v)][f.edge++];
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back(Frame{w});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          std::vector<int> scc;
          int w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp[w] = next_comp;
            scc.push_back(w);
          } while (w != f.v);
          ++next_comp;
          if (scc.size() > 1) sccs.push_back(std::move(scc));
        }
        const int v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string config_path;
  std::string json_out;
  std::string expect_path;
  bool list_layers = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string();
    };
    if (arg == "--root") {
      root = next();
    } else if (arg == "--config") {
      config_path = next();
    } else if (arg == "--json") {
      json_out = next();
    } else if (arg == "--expect") {
      expect_path = next();
    } else if (arg == "--list") {
      list_layers = true;
    } else if (arg == "-h" || arg == "--help") {
      std::printf(
          "usage: layer_check [--root DIR] [--config FILE] [--json OUT]\n"
          "                   [--expect FILE] [--list]\n");
      return 0;
    } else {
      std::fprintf(stderr, "layer_check: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }
  if (config_path.empty()) {
    config_path = (root / "tools/analyze/layers.conf").string();
  }
  const LayerConfig cfg = load_config(fs::path(config_path));
  const Graph g = build_graph(root, cfg);

  if (list_layers) {
    std::map<std::string, int> counts;
    for (const std::string& f : g.files) {
      const Layer* l = layer_of(cfg, f);
      ++counts[l != nullptr ? l->name : "<unassigned>"];
    }
    for (const Layer& l : cfg.layers) {
      std::printf("%2d %-10s %d file(s)\n", l.rank, l.name.c_str(),
                  counts[l.name]);
    }
    if (counts.count("<unassigned>")) {
      std::printf("   %-10s %d file(s)\n", "<unassigned>",
                  counts["<unassigned>"]);
    }
    return 0;
  }

  std::vector<Violation> violations;
  std::size_t edges_checked = 0;
  std::size_t exempt_crosscut = 0;
  std::size_t grandfathered = 0;

  for (const std::string& f : g.files) {
    if (layer_of(cfg, f) == nullptr) {
      violations.push_back(
          {"unassigned",
           f + " matches no layer prefix in the config — assign it (the "
               "layer map must track the tree)"});
    }
  }

  std::size_t edge_idx = 0;
  for (std::size_t u = 0; u < g.files.size(); ++u) {
    const std::string& from = g.files[u];
    const Layer* lf = layer_of(cfg, from);
    for (std::size_t k = 0; k < g.edges[u].size(); ++k, ++edge_idx) {
      const std::string& to = g.files[static_cast<std::size_t>(g.edges[u][k])];
      const int line = g.edge_lines[edge_idx].second;
      ++edges_checked;
      if (to == from) {
        violations.push_back({"self-include", from + " includes itself"});
        continue;
      }
      const Layer* lt = layer_of(cfg, to);
      if (lf == nullptr || lt == nullptr) continue;  // reported above
      if (lf->rank >= lt->rank) continue;            // same or downward: fine
      if (is_crosscutting_target(cfg, to) && is_impl_file(from)) {
        ++exempt_crosscut;
        continue;
      }
      if (cfg.exceptions.count({from, to})) {
        ++grandfathered;
        std::fprintf(stderr,
                     "layer_check: grandfathered back-edge %s -> %s\n",
                     from.c_str(), to.c_str());
        continue;
      }
      violations.push_back(
          {"back-edge", from + ":" + std::to_string(line) + " (" + lf->name +
                            ") includes " + to + " (" + lt->name +
                            "): upward include crosses the declared layer "
                            "order"});
    }
  }

  const Tarjan tarjan(g);
  for (const std::vector<int>& scc : tarjan.sccs) {
    std::vector<std::string> names;
    names.reserve(scc.size());
    for (const int v : scc) names.push_back(g.files[static_cast<std::size_t>(v)]);
    std::sort(names.begin(), names.end());
    std::string detail = "include cycle: ";
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i != 0) detail += " <-> ";
      detail += names[i];
    }
    violations.push_back({"cycle", detail});
  }

  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.kind, a.detail) < std::tie(b.kind, b.detail);
            });

  if (!json_out.empty()) {
    std::FILE* out = std::fopen(json_out.c_str(), "w");
    if (out != nullptr) {
      std::fprintf(out,
                   "{\"tool\":\"layer-check\",\"schema\":\"layer-check-v1\","
                   "\"files\":%zu,\"edges_checked\":%zu,"
                   "\"crosscutting_exemptions\":%zu,\"grandfathered\":%zu,"
                   "\"violations\":[",
                   g.files.size(), edges_checked, exempt_crosscut,
                   grandfathered);
      bool first = true;
      for (const Violation& v : violations) {
        std::fprintf(out, "%s\n  {\"kind\":\"%s\",\"detail\":\"%s\"}",
                     first ? "" : ",", v.kind.c_str(),
                     json_escape(v.detail).c_str());
        first = false;
      }
      std::fprintf(out, "\n]}\n");
      std::fclose(out);
    } else {
      std::fprintf(stderr, "layer_check: cannot write %s\n", json_out.c_str());
    }
  }

  if (!expect_path.empty()) {
    // Self-test: canonical "kind detail" lines vs the expected file.
    std::vector<std::string> got;
    got.reserve(violations.size());
    for (const Violation& v : violations) got.push_back(v.kind + " " + v.detail);
    std::vector<std::string> want;
    if (auto text = read_file(fs::path(expect_path))) {
      std::istringstream ss(*text);
      std::string line;
      while (std::getline(ss, line)) {
        if (!line.empty() && line[0] != '#') want.push_back(line);
      }
    } else {
      std::fprintf(stderr, "layer_check: cannot read %s\n",
                   expect_path.c_str());
      return 2;
    }
    int status = 0;
    for (const std::string& w : want) {
      if (std::find(got.begin(), got.end(), w) == got.end()) {
        std::fprintf(stderr, "self-test: MISSED expected violation: %s\n",
                     w.c_str());
        status = 1;
      }
    }
    for (const std::string& gline : got) {
      if (std::find(want.begin(), want.end(), gline) == want.end()) {
        std::fprintf(stderr, "self-test: UNEXPECTED violation: %s\n",
                     gline.c_str());
        status = 1;
      }
    }
    std::printf("layer_check self-test: %zu expected, %zu found — %s\n",
                want.size(), got.size(), status == 0 ? "OK" : "MISMATCH");
    return status;
  }

  for (const Violation& v : violations) {
    std::fprintf(stderr, "[%s] %s\n", v.kind.c_str(), v.detail.c_str());
  }
  std::printf(
      "layer_check: %zu file(s), %zu edge(s), %zu crosscutting exemption(s), "
      "%zu violation(s)%s\n",
      g.files.size(), edges_checked, exempt_crosscut, violations.size(),
      violations.empty() ? " — clean" : "");
  return violations.empty() ? 0 : 1;
}
