#!/usr/bin/env bash
# run_analysis.sh — one-shot driver for the repo's static-analysis pass
# (DESIGN.md §13). Builds the standalone checkers if needed, then runs:
#
#   1. conga-lint      determinism lint over src/ tools/ bench/ tests/
#                      examples/ (wall-clock, ambient RNG, raw engines,
#                      unordered iteration, pointer-keyed maps, telemetry
#                      enum append-only contract)
#   2. layer_check     include-graph layering vs tools/analyze/layers.conf
#   3. fixture self-tests for both engines (each must still CATCH its
#                      seeded violations — a checker that stops firing is a
#                      silent hole)
#   4. thread-safety fixtures via clang (skipped loudly without clang++)
#
# JSON findings land in $OUT_DIR (default: analysis-out/) for CI artifact
# upload. Exit: non-zero if any engine reports a finding or a self-test
# fails; missing-toolchain steps skip loudly, they never fail.
#
# Usage: tools/analyze/run_analysis.sh [--out DIR] [--skip-thread-safety]
set -u

cd "$(dirname "$0")/../.."
OUT_DIR=analysis-out
SKIP_TS=""

while [ $# -gt 0 ]; do
  case "$1" in
    --out) OUT_DIR="$2"; shift 2 ;;
    --skip-thread-safety) SKIP_TS=1; shift ;;
    -h|--help) sed -n '2,20p' "$0"; exit 0 ;;
    *) echo "run_analysis.sh: unknown argument $1" >&2; exit 2 ;;
  esac
done

mkdir -p "$OUT_DIR"
CXX="${CXX:-g++}"
STATUS=0

build_tool() {
  local name="$1"
  if [ -x "build/tools/analyze/$name" ] &&
     [ "build/tools/analyze/$name" -nt "tools/analyze/$name.cpp" ]; then
    echo "build/tools/analyze/$name"
    return
  fi
  mkdir -p "$OUT_DIR/bin"
  if [ ! -x "$OUT_DIR/bin/$name" ] ||
     [ "tools/analyze/$name.cpp" -nt "$OUT_DIR/bin/$name" ]; then
    echo "run_analysis.sh: building $name" >&2
    "$CXX" -std=c++20 -O2 -o "$OUT_DIR/bin/$name" \
           "tools/analyze/$name.cpp" >&2 || return 1
  fi
  echo "$OUT_DIR/bin/$name"
}

LINT="$(build_tool conga_lint)" || { echo "FATAL: cannot build conga_lint" >&2; exit 2; }
LAYER="$(build_tool layer_check)" || { echo "FATAL: cannot build layer_check" >&2; exit 2; }

echo "=== conga-lint (tree) ==="
"$LINT" --root . --json "$OUT_DIR/lint.json" || STATUS=1

echo "=== layer_check (tree) ==="
"$LAYER" --root . --json "$OUT_DIR/layers.json" || STATUS=1

echo "=== conga-lint (fixture self-test) ==="
"$LINT" --self-test tools/analyze/fixtures/lint || STATUS=1

echo "=== layer_check (fixture self-test) ==="
"$LAYER" --root tools/analyze/fixtures/layers \
         --config tools/analyze/fixtures/layers/layers.conf \
         --expect tools/analyze/fixtures/layers/expected.txt || STATUS=1

if [ -z "$SKIP_TS" ]; then
  echo "=== thread-safety fixtures (clang) ==="
  tools/analyze/check_thread_safety.sh
  ts=$?
  if [ "$ts" -eq 77 ]; then
    echo "run_analysis.sh: thread-safety step skipped (no clang++)"
  elif [ "$ts" -ne 0 ]; then
    STATUS=1
  fi
fi

echo
if [ "$STATUS" -eq 0 ]; then
  echo "run_analysis.sh: ALL CLEAN (reports in $OUT_DIR/)"
else
  echo "run_analysis.sh: FINDINGS (see above; reports in $OUT_DIR/)" >&2
fi
exit $STATUS
