#!/usr/bin/env bash
# Thread-safety analysis fixture check.
#
# Verifies that the annotation layer (src/core/thread_annotations.hpp,
# src/core/sync.hpp) actually *enforces* under Clang:
#   fixtures/thread_safety/good_guarded.cpp  must compile cleanly
#   fixtures/thread_safety/bad_guarded.cpp   must be rejected
# with -Wthread-safety -Werror=thread-safety.
#
# Needs a clang++ binary. Without one this exits 77 (the ctest skip code —
# see SKIP_RETURN_CODE in tools/analyze/CMakeLists.txt) after printing a
# loud notice, so local GCC-only boxes skip while CI's analysis lane, which
# installs clang, enforces.
set -u

root="$(cd "$(dirname "$0")/../.." && pwd)"
fixtures="$root/tools/analyze/fixtures/thread_safety"

clangxx=""
for c in clang++ clang++-18 clang++-17 clang++-16 clang++-15 clang++-14; do
  if command -v "$c" >/dev/null 2>&1; then
    clangxx="$c"
    break
  fi
done

if [ -z "$clangxx" ]; then
  echo "check_thread_safety: NOTICE: no clang++ on PATH — the thread-safety" >&2
  echo "check_thread_safety: annotations compile to no-ops under this" >&2
  echo "check_thread_safety: toolchain, so there is nothing to verify here." >&2
  echo "check_thread_safety: SKIPPING (CI's analysis lane enforces this)." >&2
  exit 77
fi

flags=(-std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety
       -I "$root/src")
status=0

if "$clangxx" "${flags[@]}" "$fixtures/good_guarded.cpp"; then
  echo "check_thread_safety: good_guarded.cpp clean — OK"
else
  echo "check_thread_safety: FAIL: good_guarded.cpp should compile cleanly" >&2
  status=1
fi

if "$clangxx" "${flags[@]}" "$fixtures/bad_guarded.cpp" 2>/dev/null; then
  echo "check_thread_safety: FAIL: bad_guarded.cpp compiled — the analysis" >&2
  echo "check_thread_safety: caught nothing (annotations inert?)" >&2
  status=1
else
  echo "check_thread_safety: bad_guarded.cpp rejected — OK"
fi

exit $status
