#pragma once
#include "cyc/a.hpp"
// Same-layer cycle: legal by rank ordering, caught by the SCC pass.
inline int cyc_b() { return 2; }
