#pragma once
#include "cyc/b.hpp"
inline int cyc_a() { return 1; }
