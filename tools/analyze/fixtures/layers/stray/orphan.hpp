#pragma once
// No layer claims stray/: the checker must refuse unassigned files.
inline int orphan() { return 0; }
