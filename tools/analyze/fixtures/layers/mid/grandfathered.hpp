#pragma once
#include "high/top_api.hpp"
// Same shape as bad_up.hpp but covered by an `except` line in the config:
// reported on stderr, not fatal — the ratchet mechanism.
inline int mid_grandfathered() { return top_api(); }
