#pragma once
#include "high/top_api.hpp"
// Upward include: mid may not depend on high.
inline int mid_bad() { return top_api(); }
