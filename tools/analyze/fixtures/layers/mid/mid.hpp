#pragma once
#include "low/base.hpp"
inline int mid_value() { return base_value() + 1; }
