#pragma once
#include "xcut/log.hpp"
// A HEADER reaching up into a crosscutting module is still a back-edge:
// the exemption covers implementation files only, so crosscutting calls
// never leak into lower-layer interfaces.
inline void base_log() { xcut_log(1); }
