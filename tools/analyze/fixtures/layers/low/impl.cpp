#include "low/base.hpp"
#include "xcut/log.hpp"
// Legal: an implementation file may include a crosscutting module from any
// layer (this is how debug/telemetry instrumentation reaches hot paths).
int base_twice() {
  xcut_log(2);
  return 2 * base_value();
}
