#pragma once
inline void xcut_log(int) {}
