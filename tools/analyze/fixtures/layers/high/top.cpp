#include "high/top_api.hpp"

#include "mid/mid.hpp"

int top() { return top_api() + mid_value(); }
