#pragma once
inline int top_api() { return 42; }
