// Negative fixture: wall-clock use that lint.conf allowlists (the real
// tree's equivalent is the perf-baseline timing harness). No diagnostics
// may fire here.
#include <chrono>

inline double bench_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
