// Fixture: one seeded violation per determinism rule, plus negative cases
// (comments, strings, suppressions) that must stay silent. Lines that must
// be diagnosed carry an expect-marker naming the rule; the self-test
// requires findings and markers to agree exactly.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Thing {
  int v = 0;
};

// --- wall-clock -----------------------------------------------------------
inline double now_seconds() {
  auto mono = std::chrono::steady_clock::now();   // expect(wall-clock)
  auto wall = std::chrono::system_clock::now();   // expect(wall-clock)
  (void)mono;
  (void)wall;
  return 0.0;
}

inline long posix_time() {
  return std::time(nullptr);  // expect(wall-clock)
}

// --- ambient-rng ----------------------------------------------------------
inline int ambient() {
  std::srand(42);          // expect(ambient-rng)
  int a = std::rand();     // expect(ambient-rng)
  std::random_device rd;   // expect(ambient-rng)
  (void)rd;
  return a;
}

// --- raw-rng-engine / std-shuffle ----------------------------------------
inline void raw_engines(std::vector<int>& v) {
  std::mt19937 gen(1);        // expect(raw-rng-engine)
  std::mt19937_64 gen64(1);   // expect(raw-rng-engine)
  (void)gen64;
  std::shuffle(v.begin(), v.end(), gen);  // expect(std-shuffle)
}

// --- unordered-iter / ptr-keyed-map --------------------------------------
struct Table {
  std::unordered_map<int, Thing> items_;
  std::unordered_set<int> ids_;
  std::map<Thing*, int> by_ptr_;        // expect(ptr-keyed-map)
  std::set<const Thing*> seen_;         // expect(ptr-keyed-map)

  int sum() const {
    int s = 0;
    for (const auto& [k, t] : items_) s += t.v;  // expect(unordered-iter)
    for (int id : ids_) s += id;                 // expect(unordered-iter)
    for (auto it = items_.begin(); it != items_.end(); ++it) {  // expect(unordered-iter)
      s += it->second.v;
    }
    return s;
  }

  int suppressed_sum() const {
    int s = 0;
    // conga-lint: allow(unordered-iter): order-free accumulation (integer
    // addition is commutative); fixture negative case for suppressions.
    for (const auto& [k, t] : items_) s += t.v;
    return s;
  }
};

// --- negatives: none of the below may be diagnosed ------------------------
// Comment mentioning std::mt19937, rand() and steady_clock is stripped.
inline const char* describe() {
  return "calls time() and rand() at runtime";  // string literals stripped
}

inline long digit_separators() { return 1'000'000; }  // not a char literal

inline long runtime_of(int t) { return t; }  // `time` only flags a call

// Ordered map keyed by value: deterministic, fine.
inline int ordered_ok(const std::map<int, Thing>& m) {
  int s = 0;
  for (const auto& [k, t] : m) s += t.v;
  return s;
}

}  // namespace fixture
