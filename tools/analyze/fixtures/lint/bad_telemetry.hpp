// Fixture: telemetry enum with an entry INSERTED before an existing one —
// shifts the numeric value of kBeta, which is digest/wire format.
#pragma once

#include <cstdint>

namespace fixture {

enum class EventType : std::uint8_t {  // expect(telemetry-enum-drift)
  kAlpha,
  kGamma,  // inserted: golden says position 1 is kBeta
  kBeta,
  kTypeCount,
};

enum class Category : std::uint8_t {
  kOne,
  kCount,
};

}  // namespace fixture
