// Must compile CLEANLY under clang -Wthread-safety -Werror=thread-safety:
// the locked/checked twins of bad_guarded.cpp.
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump() {
    const conga::core::MutexLock lock(mu_);
    ++value_;
  }

  int peek() const {
    thread_.check();
    return cached_;
  }

 private:
  conga::core::Mutex mu_;
  int value_ CONGA_GUARDED_BY(mu_) = 0;

  conga::core::ThreadChecker thread_;
  int cached_ CONGA_GUARDED_BY(thread_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.peek();
}
