// Must FAIL to compile under clang -Wthread-safety -Werror=thread-safety:
// writes a guarded member without holding its mutex, and touches thread-
// confined state without asserting the role capability. GCC (where the
// annotations are no-ops) accepts this file — which is exactly why the
// CONGA_THREAD_SAFETY lane insists on Clang.
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump_unlocked() { ++value_; }  // guarded write, no lock held

  int peek_unchecked() const { return cached_; }  // no thread_.check()

 private:
  conga::core::Mutex mu_;
  int value_ CONGA_GUARDED_BY(mu_) = 0;

  conga::core::ThreadChecker thread_;
  int cached_ CONGA_GUARDED_BY(thread_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump_unlocked();
  return c.peek_unchecked();
}
