// conga-lint — domain-specific determinism lint for the CONGA simulator.
//
// The repo's regression oracle is bit-identical run digests (fct / trace /
// telemetry). Generic linters cannot see the rules that protect those
// digests, so this standalone checker encodes them:
//
//   wall-clock        — no std::chrono::{system,steady,high_resolution}_clock,
//                       time(), clock(), gettimeofday, ... in simulation code
//                       (bench timing harnesses are allowlisted by config).
//   ambient-rng       — no rand()/srand()/random()/std::random_device: all
//                       randomness flows from seeded sim::Rng streams.
//   raw-rng-engine    — no direct construction/naming of std engine types
//                       (std::mt19937 & friends) outside src/sim/random.*:
//                       per-component streams must come from the keyed
//                       Rng::stream_seed facility, never ad-hoc engines.
//   std-shuffle       — std::shuffle / random_shuffle are implementation-
//                       defined; use sim::shuffle (portable Fisher-Yates).
//   unordered-iter    — iterating a std::unordered_{map,set} yields
//                       platform/run-dependent order; in a codebase whose
//                       outputs are digested, any such loop is suspect
//                       unless justified (sorted afterwards, order-free
//                       accumulation) with a suppression comment.
//   ptr-keyed-map     — std::map/std::set keyed by pointer iterate in
//                       address order: ASLR-dependent, never deterministic.
//   telemetry-enum-drift — the telemetry EventType/Category enums are wire
//                       format and digest input; they must only ever be
//                       appended to. Checked against a golden list
//                       (tools/analyze/event_kinds.golden).
//
// Suppressions: a comment `conga-lint: allow(<rule>): <reason>` on the
// flagged line or the line above silences one finding; the reason is
// mandatory. `conga-lint: allow-file(<rule>): <reason>` near the top of a
// file waives the rule file-wide. The config file can allowlist whole paths
// (e.g. the bench timer harness for wall-clock).
//
// Modes:
//   conga_lint --root DIR [--config FILE] [--json OUT]   lint the tree
//   conga_lint --self-test DIR                           fixture corpus mode:
//       every finding must match an `expect(<rule>)` annotation and vice
//       versa — this is how the checker itself is regression-tested.
//   conga_lint --root DIR --update-golden                rewrite the golden
//       event-kind list after a deliberate (append-only) telemetry change.
//
// The tool is itself deterministic: sorted directory walks, no timestamps in
// the report.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;  // repo-relative, '/'-separated
  int line = 0;
  std::string rule;
  std::string message;
};

struct Suppression {
  std::string file;
  int line = 0;
  std::string rule;
  std::string reason;
};

struct Config {
  // rule -> list of path prefixes where it is allowlisted.
  std::map<std::string, std::vector<std::string>> allow;
  std::vector<std::string> excludes;  // path prefixes skipped entirely
  std::string telemetry_header;      // for telemetry-enum-drift
  std::string golden_path;
};

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         std::equal(prefix.begin(), prefix.end(), s.begin());
}

// ---------------------------------------------------------------------------
// Source preprocessing: blank out comments and string/char literals so rule
// patterns never match inside them, while preserving line structure (every
// masked character becomes a space; newlines survive).
std::string strip_comments_and_strings(const std::string& src) {
  std::string out = src;
  enum class St { kCode, kLine, kBlock, kStr, kChar, kRaw };
  St st = St::kCode;
  std::string raw_delim;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char n = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && n == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   src[i - 1])) &&
                               src[i - 1] != '_'))) {
          // Raw string R"delim( ... )delim"
          std::size_t p = i + 2;
          raw_delim.clear();
          while (p < src.size() && src[p] != '(') raw_delim += src[p++];
          raw_delim = ")" + raw_delim + "\"";
          for (std::size_t k = i; k <= p && k < src.size(); ++k) out[k] = ' ';
          i = p;
          st = St::kRaw;
        } else if (c == '"') {
          st = St::kStr;
          out[i] = ' ';
        } else if (c == '\'' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   src[i - 1])) &&
                               src[i - 1] != '_'))) {
          // Char literal (the isalnum guard keeps digit separators like
          // 1'000'000 out of the string machinery).
          st = St::kChar;
          out[i] = ' ';
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlock:
        if (c == '*' && n == '/') {
          st = St::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
        if (c == '\\' && n != '\0') {
          out[i] = ' ';
          if (n != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\' && n != '\0') {
          out[i] = ' ';
          if (n != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRaw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) out[i + k] = ' ';
          i += raw_delim.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

std::optional<std::string> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// Template-argument helper: starting just past a '<', returns the first
// top-level template argument (up to a depth-0 ',' or '>').
std::string first_template_arg(const std::string& s, std::size_t after_lt) {
  int depth = 0;
  std::string arg;
  for (std::size_t i = after_lt; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '<' || c == '(' || c == '[') ++depth;
    if (c == '>' || c == ')' || c == ']') {
      if (depth == 0) break;
      --depth;
    }
    if (c == ',' && depth == 0) break;
    arg += c;
  }
  // trim
  const auto b = arg.find_first_not_of(" \t");
  const auto e = arg.find_last_not_of(" \t");
  if (b == std::string::npos) return "";
  return arg.substr(b, e - b + 1);
}

// ---------------------------------------------------------------------------
// One scanned file.
struct SourceFile {
  std::string rel;                  // repo-relative path
  std::vector<std::string> raw;     // original lines (for suppressions)
  std::vector<std::string> code;    // comment/string-stripped lines
};

const std::regex kWallClockRe(
    R"((system_clock|steady_clock|high_resolution_clock|gettimeofday|clock_gettime|timespec_get|\blocaltime\b|\bgmtime\b|\bmktime\b)|\btime\s*\(|\bclock\s*\(\s*\))");
const std::regex kAmbientRngRe(
    R"(\b(rand|srand|rand_r|drand48|lrand48|mrand48|random)\s*\(|random_device|\barc4random)");
const std::regex kRawEngineRe(
    R"(std\s*::\s*(mt19937(_64)?|minstd_rand0?|default_random_engine|ranlux(24|48)(_base)?|knuth_b|mersenne_twister_engine|linear_congruential_engine|subtract_with_carry_engine|discard_block_engine|independent_bits_engine|shuffle_order_engine)\b)");
const std::regex kStdShuffleRe(R"(std\s*::\s*(shuffle|random_shuffle)\b)");
const std::regex kUnorderedDeclRe(R"(\bunordered_(map|set)\s*<)");
const std::regex kUsingAliasRe(
    R"(\busing\s+(\w+)\s*=\s*[^;]*unordered_(map|set)\s*<)");
const std::regex kRangeForRe(R"(\bfor\s*\()");
const std::regex kAllowRe(
    R"(conga-lint:\s*allow\(([a-z0-9-]+)\)\s*:\s*(\S.*))");
const std::regex kAllowFileRe(
    R"(conga-lint:\s*allow-file\(([a-z0-9-]+)\)\s*:\s*(\S.*))");
const std::regex kExpectRe(R"(expect\(([a-z0-9-]+)\))");
const std::regex kIdentRe(R"(^[A-Za-z_]\w*$)");

// Identifier declared right after a (depth-balanced) unordered template or
// alias type: `<type> name [;={(]`.
std::optional<std::string> declared_name_after_type(const std::string& line,
                                                    std::size_t type_end) {
  std::size_t i = type_end;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                             line[i] == '&' || line[i] == '*')) {
    ++i;
  }
  std::string name;
  while (i < line.size() &&
         (std::isalnum(static_cast<unsigned char>(line[i])) ||
          line[i] == '_')) {
    name += line[i++];
  }
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (name.empty()) return std::nullopt;
  if (i >= line.size()) return name;  // declaration continued on next line
  const char c = line[i];
  if (c == ';' || c == '=' || c == '{' || c == '(' || c == ',') return name;
  return std::nullopt;
}

class Linter {
 public:
  explicit Linter(Config cfg, bool self_test)
      : cfg_(std::move(cfg)), self_test_(self_test) {}

  void add_file(SourceFile f) { files_.push_back(std::move(f)); }

  void run() {
    collect_tainted_names();
    for (const SourceFile& f : files_) scan_file(f);
    if (!cfg_.telemetry_header.empty()) check_enum_golden();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.file, a.line, a.rule) <
                       std::tie(b.file, b.line, b.rule);
              });
  }

  const std::vector<Finding>& findings() const { return findings_; }
  const std::vector<Suppression>& suppressions() const { return suppressed_; }
  const std::vector<std::string>& notices() const { return notices_; }
  std::size_t files_scanned() const { return files_.size(); }

  // For --update-golden.
  std::vector<std::string> current_golden_lines() const {
    return golden_lines_;
  }

 private:
  // Names declared anywhere in the scanned set with an unordered container
  // type (member or local) or an alias of one. Deliberately global and
  // over-approximate: a lint, not a type checker — false positives carry a
  // suppression comment with the justification, which is the documentation
  // we want at such loops anyway.
  void collect_tainted_names() {
    for (const SourceFile& f : files_) {
      std::vector<std::string> aliases;
      for (const std::string& line : f.code) {
        std::smatch m;
        std::string rest = line;
        if (std::regex_search(rest, m, kUsingAliasRe)) {
          aliases.push_back(m[1]);
          continue;
        }
        auto begin = std::sregex_iterator(line.begin(), line.end(),
                                          kUnorderedDeclRe);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
          const std::size_t lt = static_cast<std::size_t>(it->position()) +
                                 it->length();
          // Walk past the balanced template argument list.
          int depth = 1;
          std::size_t i = lt;
          while (i < line.size() && depth > 0) {
            if (line[i] == '<') ++depth;
            if (line[i] == '>') --depth;
            ++i;
          }
          if (depth != 0) continue;  // spans lines; next pass may catch decl
          if (auto name = declared_name_after_type(line, i)) {
            tainted_.insert(*name);
          }
        }
      }
      // Second pass: declarations using a local alias name.
      if (!aliases.empty()) {
        for (const std::string& a : aliases) {
          const std::regex alias_decl("\\b" + a + "\\s+(\\w+)\\s*[;={(]");
          for (const std::string& line : f.code) {
            std::smatch m;
            if (std::regex_search(line, m, alias_decl)) tainted_.insert(m[1]);
          }
          tainted_alias_types_.insert(a);
        }
      }
    }
  }

  bool path_allowlisted(const std::string& rule, const std::string& rel) const {
    auto it = cfg_.allow.find(rule);
    if (it == cfg_.allow.end()) return false;
    for (const std::string& prefix : it->second) {
      if (starts_with(rel, prefix)) return true;
    }
    return false;
  }

  // Emits unless suppressed by an inline/preceding-line/file-level allow.
  void emit(const SourceFile& f, int line_no, const std::string& rule,
            const std::string& message) {
    if (path_allowlisted(rule, f.rel)) return;
    // The flagged line itself, then any contiguous block of pure comment
    // lines directly above it (multi-line justifications are encouraged).
    for (int probe = line_no; probe >= 1; --probe) {
      const std::string& raw = f.raw[static_cast<std::size_t>(probe - 1)];
      if (probe != line_no) {
        const auto first = raw.find_first_not_of(" \t");
        if (first == std::string::npos ||
            raw.compare(first, 2, "//") != 0) {
          break;
        }
      }
      std::smatch m;
      if (std::regex_search(raw, m, kAllowRe) && m[1] == rule) {
        suppressed_.push_back(Suppression{f.rel, line_no, rule, m[2]});
        return;
      }
    }
    const int head = std::min<int>(static_cast<int>(f.raw.size()), 40);
    for (int l = 0; l < head; ++l) {
      std::smatch m;
      if (std::regex_search(f.raw[static_cast<std::size_t>(l)], m,
                            kAllowFileRe) &&
          m[1] == rule) {
        suppressed_.push_back(Suppression{f.rel, line_no, rule, m[2]});
        return;
      }
    }
    findings_.push_back(Finding{f.rel, line_no, rule, message});
  }

  void scan_file(const SourceFile& f) {
    const bool is_rng_home =
        f.rel == "src/sim/random.hpp" || f.rel == "src/sim/random.cpp";
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const std::string& line = f.code[i];
      const int ln = static_cast<int>(i) + 1;
      std::smatch m;
      if (std::regex_search(line, m, kWallClockRe)) {
        emit(f, ln, "wall-clock",
             "wall-clock source in simulation code (digests must not depend "
             "on real time); bench timing harnesses belong on the config "
             "allowlist");
      }
      if (std::regex_search(line, m, kAmbientRngRe)) {
        emit(f, ln, "ambient-rng",
             "ambient randomness (" + m.str() +
                 "...) — all randomness must come from seeded sim::Rng "
                 "streams");
      }
      if (!is_rng_home && std::regex_search(line, m, kRawEngineRe)) {
        emit(f, ln, "raw-rng-engine",
             "std RNG engine named outside sim/random.* — derive "
             "per-component streams via sim::Rng::stream()/stream_seed()");
      }
      if (!is_rng_home && std::regex_search(line, m, kStdShuffleRe)) {
        emit(f, ln, "std-shuffle",
             "std::shuffle is implementation-defined across standard "
             "libraries; use sim::shuffle for stable golden results");
      }
      scan_ptr_keyed(f, ln, line);
      scan_unordered_iteration(f, ln, line);
    }
  }

  void scan_ptr_keyed(const SourceFile& f, int ln, const std::string& line) {
    static const std::regex kMapSetRe(
        R"(\b(map|set|unordered_map|unordered_set)\s*<)");
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kMapSetRe);
         it != std::sregex_iterator(); ++it) {
      const std::size_t after =
          static_cast<std::size_t>(it->position()) + it->length();
      const std::string key = first_template_arg(line, after);
      if (!key.empty() && key.back() == '*') {
        emit(f, ln, "ptr-keyed-map",
             "container keyed by pointer (" + key +
                 ") — iteration order follows the allocator/ASLR, never "
                 "deterministic across runs");
      }
    }
  }

  void scan_unordered_iteration(const SourceFile& f, int ln,
                                const std::string& line) {
    // Range-for whose range expression is/contains an unordered container.
    std::smatch m;
    if (std::regex_search(line, m, kRangeForRe)) {
      const std::size_t open =
          static_cast<std::size_t>(m.position()) + m.length() - 1;
      int depth = 0;
      std::size_t colon = std::string::npos;
      std::size_t close = std::string::npos;
      for (std::size_t i = open; i < line.size(); ++i) {
        const char c = line[i];
        if (c == '(' || c == '<' || c == '[') ++depth;
        if (c == ')' || c == '>' || c == ']') {
          --depth;
          if (depth == 0 && c == ')') {
            close = i;
            break;
          }
        }
        if (c == ':' && depth == 1 && colon == std::string::npos &&
            (i == 0 || line[i - 1] != ':') &&
            (i + 1 >= line.size() || line[i + 1] != ':')) {
          colon = i;
        }
      }
      if (colon != std::string::npos) {
        const std::size_t end = close == std::string::npos ? line.size()
                                                           : close;
        std::string range = line.substr(colon + 1, end - colon - 1);
        const auto b = range.find_first_not_of(" \t");
        const auto e = range.find_last_not_of(" \t");
        range = b == std::string::npos ? "" : range.substr(b, e - b + 1);
        if (range_is_unordered(range)) {
          emit(f, ln, "unordered-iter",
               "iteration over unordered container `" + range +
                   "` — order is hash/seed dependent; sort first or justify "
                   "with a suppression");
        }
      }
    }
    // Explicit iterator walk: tainted.begin()/cbegin().
    static const std::regex kBeginRe(R"((\w+)(\.|->)\s*c?begin\s*\()");
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kBeginRe);
         it != std::sregex_iterator(); ++it) {
      if (tainted_.count((*it)[1])) {
        emit(f, ln, "unordered-iter",
             "iterator over unordered container `" + (*it)[1].str() +
                 "` — order is hash/seed dependent; sort first or justify "
                 "with a suppression");
      }
    }
  }

  bool range_is_unordered(const std::string& range) const {
    if (range.empty()) return false;
    if (range.find("unordered_") != std::string::npos) return true;
    // Bare identifier, possibly trailing member access chain: check the
    // final component (x, obj.x, obj->x).
    std::string last = range;
    const auto dot = last.find_last_of('.');
    const auto arrow = last.rfind("->");
    if (arrow != std::string::npos &&
        (dot == std::string::npos || arrow + 1 > dot)) {
      last = last.substr(arrow + 2);
    } else if (dot != std::string::npos) {
      last = last.substr(dot + 1);
    }
    if (!std::regex_match(last, kIdentRe)) return false;
    return tainted_.count(last) > 0;
  }

  // -------------------------------------------------------------------------
  // telemetry-enum-drift: EventType / Category against the golden list.
  static std::vector<std::string> parse_enum(
      const std::vector<std::string>& code, const std::string& enum_name,
      int* start_line) {
    std::vector<std::string> out;
    const std::regex head("\\benum\\s+class\\s+" + enum_name + "\\b");
    bool in_enum = false;
    for (std::size_t i = 0; i < code.size(); ++i) {
      const std::string& line = code[i];
      if (!in_enum) {
        if (std::regex_search(line, head)) {
          in_enum = true;
          if (start_line != nullptr) *start_line = static_cast<int>(i) + 1;
        }
        continue;
      }
      static const std::regex enumerator(R"(^\s*(k\w+)\s*(=[^,]*)?[,}]?)");
      std::smatch m;
      if (std::regex_search(line, m, enumerator)) out.push_back(m[1]);
      if (line.find('}') != std::string::npos) break;
    }
    return out;
  }

  void check_enum_golden() {
    const SourceFile* hdr = nullptr;
    for (const SourceFile& f : files_) {
      if (f.rel == cfg_.telemetry_header) hdr = &f;
    }
    if (hdr == nullptr) {
      findings_.push_back(Finding{cfg_.telemetry_header, 1,
                                  "telemetry-enum-drift",
                                  "configured telemetry header not found in "
                                  "the scanned tree"});
      return;
    }
    int ev_line = 1;
    int cat_line = 1;
    std::vector<std::string> current;
    for (const std::string& e :
         parse_enum(hdr->code, "EventType", &ev_line)) {
      if (e != "kTypeCount") current.push_back("EventType " + e);
    }
    const std::size_t n_events = current.size();
    for (const std::string& c : parse_enum(hdr->code, "Category", &cat_line)) {
      if (c != "kCount") current.push_back("Category " + c);
    }
    golden_lines_ = current;
    if (current.empty() || n_events == 0) {
      findings_.push_back(Finding{hdr->rel, ev_line, "telemetry-enum-drift",
                                  "failed to parse EventType/Category "
                                  "enumerators"});
      return;
    }

    std::vector<std::string> golden;
    if (auto text = read_file(fs::path(cfg_.golden_path))) {
      for (const std::string& line : split_lines(*text)) {
        if (line.empty() || line[0] == '#') continue;
        golden.push_back(line);
      }
    } else {
      findings_.push_back(
          Finding{hdr->rel, ev_line, "telemetry-enum-drift",
                  "golden event-kind list missing (" + cfg_.golden_path +
                      "); create it with --update-golden"});
      return;
    }

    // Split golden into the two sections to enforce append-only per enum.
    auto check_section = [&](const char* prefix, int line_no) {
      std::vector<std::string> g, c;
      for (const std::string& s : golden) {
        if (starts_with(s, prefix)) g.push_back(s);
      }
      for (const std::string& s : current) {
        if (starts_with(s, prefix)) c.push_back(s);
      }
      if (g.size() > c.size()) {
        findings_.push_back(
            Finding{hdr->rel, line_no, "telemetry-enum-drift",
                    std::string(prefix) +
                        ": enumerators removed (wire names and digest values "
                        "of recorded traces would shift)"});
        return;
      }
      for (std::size_t i = 0; i < g.size(); ++i) {
        if (g[i] != c[i]) {
          findings_.push_back(
              Finding{hdr->rel, line_no, "telemetry-enum-drift",
                      std::string(prefix) + ": position " +
                          std::to_string(i) + " is `" + c[i] +
                          "` but golden says `" + g[i] +
                          "` — enums are append-only (existing numeric "
                          "values are digest/wire format)"});
          return;
        }
      }
      if (c.size() > g.size()) {
        notices_.push_back(
            std::string(prefix) + ": " + std::to_string(c.size() - g.size()) +
            " new enumerator(s) appended since the golden list; run "
            "`conga_lint --update-golden` to record them");
      }
    };
    check_section("EventType ", ev_line);
    check_section("Category ", cat_line);
  }

  Config cfg_;
  bool self_test_;
  std::vector<SourceFile> files_;
  std::set<std::string> tainted_;
  std::set<std::string> tainted_alias_types_;
  std::vector<Finding> findings_;
  std::vector<Suppression> suppressed_;
  std::vector<std::string> notices_;
  std::vector<std::string> golden_lines_;
};

// ---------------------------------------------------------------------------
Config load_config(const fs::path& path, const fs::path& root) {
  Config cfg;
  auto text = read_file(path);
  if (!text) return cfg;
  for (const std::string& raw : split_lines(*text)) {
    std::string line = raw.substr(0, raw.find('#'));
    std::istringstream ss(line);
    std::string verb;
    ss >> verb;
    if (verb == "allow") {
      std::string rule, prefix;
      ss >> rule >> prefix;
      if (!rule.empty() && !prefix.empty()) cfg.allow[rule].push_back(prefix);
    } else if (verb == "exclude") {
      std::string prefix;
      while (ss >> prefix) cfg.excludes.push_back(prefix);
    } else if (verb == "telemetry-header") {
      ss >> cfg.telemetry_header;
    } else if (verb == "golden") {
      std::string rel;
      ss >> rel;
      cfg.golden_path = (root / rel).string();
    }
  }
  return cfg;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_json_report(const Linter& lint, const std::string& out_path) {
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "conga-lint: cannot write %s\n", out_path.c_str());
    return;
  }
  std::fprintf(out,
               "{\"tool\":\"conga-lint\",\"schema\":\"conga-lint-v1\","
               "\"files_scanned\":%zu,\"findings\":[",
               lint.files_scanned());
  bool first = true;
  for (const Finding& f : lint.findings()) {
    std::fprintf(out,
                 "%s\n  {\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\","
                 "\"message\":\"%s\"}",
                 first ? "" : ",", json_escape(f.file).c_str(), f.line,
                 f.rule.c_str(), json_escape(f.message).c_str());
    first = false;
  }
  std::fprintf(out, "\n],\"suppressed\":[");
  first = true;
  for (const Suppression& s : lint.suppressions()) {
    std::fprintf(out,
                 "%s\n  {\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\","
                 "\"reason\":\"%s\"}",
                 first ? "" : ",", json_escape(s.file).c_str(), s.line,
                 s.rule.c_str(), json_escape(s.reason).c_str());
    first = false;
  }
  std::fprintf(out, "\n],\"notices\":[");
  first = true;
  for (const std::string& n : lint.notices()) {
    std::fprintf(out, "%s\n  \"%s\"", first ? "" : ",",
                 json_escape(n).c_str());
    first = false;
  }
  std::fprintf(out, "\n]}\n");
  std::fclose(out);
}

bool has_source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".hpp" || e == ".h" || e == ".cc";
}

std::vector<fs::path> collect_sources(const fs::path& root,
                                      const std::vector<std::string>& roots,
                                      const Config& cfg) {
  std::vector<fs::path> out;
  for (const std::string& r : roots) {
    const fs::path dir = root / r;
    if (!fs::exists(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      const std::string rel =
          fs::relative(it->path(), root).generic_string();
      bool excluded = false;
      for (const std::string& prefix : cfg.excludes) {
        if (starts_with(rel, prefix)) excluded = true;
      }
      if (excluded) {
        if (it->is_directory()) it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && has_source_ext(it->path())) {
        out.push_back(it->path());
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

int run_self_test(const fs::path& dir) {
  Config cfg = load_config(dir / "lint.conf", dir);
  Linter lint(cfg, /*self_test=*/true);
  std::vector<std::pair<std::string, std::vector<std::string>>> raws;
  std::vector<fs::path> paths;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (e.is_regular_file() && has_source_ext(e.path())) {
      paths.push_back(e.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    auto text = read_file(p);
    if (!text) continue;
    SourceFile f;
    f.rel = fs::relative(p, dir).generic_string();
    f.raw = split_lines(*text);
    f.code = split_lines(strip_comments_and_strings(*text));
    raws.emplace_back(f.rel, f.raw);
    lint.add_file(std::move(f));
  }
  lint.run();

  // Expected: every `expect(rule)` annotation, keyed (file, line, rule).
  std::set<std::string> expected;
  for (const auto& [rel, lines] : raws) {
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                          kExpectRe);
           it != std::sregex_iterator(); ++it) {
        expected.insert(rel + ":" + std::to_string(i + 1) + ":" +
                        (*it)[1].str());
      }
    }
  }
  std::set<std::string> got;
  for (const Finding& f : lint.findings()) {
    got.insert(f.file + ":" + std::to_string(f.line) + ":" + f.rule);
  }
  int status = 0;
  for (const std::string& e : expected) {
    if (!got.count(e)) {
      std::fprintf(stderr, "self-test: MISSED expected diagnostic %s\n",
                   e.c_str());
      status = 1;
    }
  }
  for (const std::string& g : got) {
    if (!expected.count(g)) {
      std::fprintf(stderr, "self-test: UNEXPECTED diagnostic %s\n", g.c_str());
      status = 1;
    }
  }
  std::printf("conga-lint self-test: %zu fixture file(s), %zu expected, "
              "%zu found — %s\n",
              raws.size(), expected.size(), got.size(),
              status == 0 ? "OK" : "MISMATCH");
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string config_path;
  std::string json_out;
  std::string self_test_dir;
  bool update_golden = false;
  std::vector<std::string> scan_roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string();
    };
    if (arg == "--root") {
      root = next();
    } else if (arg == "--config") {
      config_path = next();
    } else if (arg == "--json") {
      json_out = next();
    } else if (arg == "--self-test") {
      self_test_dir = next();
    } else if (arg == "--update-golden") {
      update_golden = true;
    } else if (arg == "-h" || arg == "--help") {
      std::printf(
          "usage: conga_lint [--root DIR] [--config FILE] [--json OUT]\n"
          "                  [--update-golden] [--self-test FIXTURE_DIR]\n"
          "                  [scan-roots...]\n");
      return 0;
    } else {
      scan_roots.push_back(arg);
    }
  }

  if (!self_test_dir.empty()) return run_self_test(self_test_dir);

  if (config_path.empty()) {
    config_path = (root / "tools/analyze/conga_lint.conf").string();
  }
  Config cfg = load_config(config_path, root);
  if (scan_roots.empty()) {
    scan_roots = {"src", "tools", "bench", "tests", "examples"};
  }

  Linter lint(cfg, /*self_test=*/false);
  for (const fs::path& p : collect_sources(root, scan_roots, cfg)) {
    auto text = read_file(p);
    if (!text) continue;
    SourceFile f;
    f.rel = fs::relative(p, root).generic_string();
    f.raw = split_lines(*text);
    f.code = split_lines(strip_comments_and_strings(*text));
    lint.add_file(std::move(f));
  }
  lint.run();

  if (update_golden) {
    if (cfg.golden_path.empty()) {
      std::fprintf(stderr, "conga-lint: no `golden` path configured\n");
      return 2;
    }
    std::FILE* out = std::fopen(cfg.golden_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "conga-lint: cannot write %s\n",
                   cfg.golden_path.c_str());
      return 2;
    }
    std::fprintf(out,
                 "# Golden telemetry event-kind list — append-only contract.\n"
                 "# Regenerate ONLY for deliberate appends:\n"
                 "#   conga_lint --root . --update-golden\n"
                 "# Reordering, renaming, or removing entries is a lint "
                 "error: enumerator\n# values feed the trace digest and the "
                 "exporter wire format.\n");
    for (const std::string& line : lint.current_golden_lines()) {
      std::fprintf(out, "%s\n", line.c_str());
    }
    std::fclose(out);
    std::printf("conga-lint: wrote %zu entries to %s\n",
                lint.current_golden_lines().size(), cfg.golden_path.c_str());
    return 0;
  }

  for (const Finding& f : lint.findings()) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  for (const std::string& n : lint.notices()) {
    std::fprintf(stderr, "conga-lint: notice: %s\n", n.c_str());
  }
  if (!json_out.empty()) write_json_report(lint, json_out);
  std::printf(
      "conga-lint: %zu file(s), %zu finding(s), %zu suppression(s)%s\n",
      lint.files_scanned(), lint.findings().size(),
      lint.suppressions().size(),
      lint.findings().empty() ? " — clean" : "");
  return lint.findings().empty() ? 0 : 1;
}
