// Minimal streaming JSON writer for the perf baselines (BENCH_core.json).
//
// Deliberately tiny: objects, arrays, string/number/bool scalars, correct
// comma placement and string escaping, two-space indentation. No external
// dependency — the container bakes in only gtest/benchmark, and the
// baseline files must stay diff-friendly for PR-over-PR comparison.
#pragma once

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace conga::tools {

class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* out) : out_(out) {}

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(const std::string& k) {
    comma();
    indent();
    write_string(k);
    std::fputs(": ", out_);
    pending_value_ = true;
  }

  void value(const std::string& v) {
    prefix();
    write_string(v);
    mark();
  }
  void value(const char* v) { value(std::string(v)); }
  void value(bool v) {
    prefix();
    std::fputs(v ? "true" : "false", out_);
    mark();
  }
  void value(double v) {
    prefix();
    if (std::isfinite(v)) {
      std::fprintf(out_, "%.6g", v);
    } else {
      std::fputs("null", out_);  // JSON has no inf/nan
    }
    mark();
  }
  void value(std::uint64_t v) {
    prefix();
    std::fprintf(out_, "%" PRIu64, v);
    mark();
  }
  void value(std::int64_t v) {
    prefix();
    std::fprintf(out_, "%" PRId64, v);
    mark();
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }

  template <typename V>
  void kv(const std::string& k, V v) {
    key(k);
    value(v);
  }

  void finish() { std::fputc('\n', out_); }

 private:
  void open(char c) {
    prefix();
    std::fputc(c, out_);
    stack_.push_back(false);
  }

  void close(char c) {
    const bool had_items = stack_.back();
    stack_.pop_back();
    if (had_items) {
      std::fputc('\n', out_);
      indent();
    }
    std::fputc(c, out_);
    mark();
  }

  /// Writes the separator/indent owed before a value in the current context.
  void prefix() {
    if (pending_value_) {
      pending_value_ = false;  // "key: " already emitted
      return;
    }
    if (!stack_.empty()) {
      comma();
      indent();
    }
  }

  void comma() {
    if (!stack_.empty() && stack_.back()) std::fputs(",", out_);
    std::fputc('\n', out_);
  }

  void indent() {
    for (std::size_t i = 0; i < stack_.size(); ++i) std::fputs("  ", out_);
  }

  /// Marks that the enclosing container now has at least one item.
  void mark() {
    if (!stack_.empty()) stack_.back() = true;
  }

  void write_string(const std::string& s) {
    std::fputc('"', out_);
    for (char c : s) {
      switch (c) {
        case '"': std::fputs("\\\"", out_); break;
        case '\\': std::fputs("\\\\", out_); break;
        case '\n': std::fputs("\\n", out_); break;
        case '\t': std::fputs("\\t", out_); break;
        case '\r': std::fputs("\\r", out_); break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            std::fprintf(out_, "\\u%04x", c);
          } else {
            std::fputc(c, out_);
          }
      }
    }
    std::fputc('"', out_);
  }

  std::FILE* out_;
  std::vector<bool> stack_;  ///< one entry per open container: has items?
  bool pending_value_ = false;
};

}  // namespace conga::tools
