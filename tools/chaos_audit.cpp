// chaos_audit — randomized fault campaigns across every LB policy.
//
// For each campaign a fault plan is drawn (deterministically from the seed)
// and executed against an identical scenario once per load-balancing policy
// (by default every registered policy: ecmp, conga, conga-flow, spray,
// local, letflow, drill, presto, hula). Each cell runs with the liveness
// watchdog attached and is checked after the drain:
//   * conservation — every link's packet ledger must balance: offered ==
//     drops-by-cause + resident + in-flight + delivered;
//   * liveness     — flows that stopped making forward progress are counted
//     (stall reports; a stalled flow that never finishes also shows up as
//     unfinished with bytes outstanding);
//   * invariants   — any CONGA_CHECK_INVARIANTS violation aborts the audit
//     loudly via the default handler.
// Results land in a JSON survival report (--out). The report is a pure
// function of the flags: rerunning with the same seed — at any --jobs count
// — must produce a byte-identical file, which makes the audit itself
// auditable.
//
// Flags:
//   --seed N        base seed; campaign c uses seed+c       [default 1]
//   --campaigns N   number of fault campaigns               [default 3]
//   --jobs N        worker threads over campaign x policy   [default 1]
//   --out FILE      survival report path                    [default chaos_survival.json]
//   --profile NAME  random | gray                           [default random]
//   --hosts N       hosts per leaf                          [default 4]
//   --duration-ms N measurement window                      [default 5]
//   --warmup-ms N   warmup before measurement               [default 1]
//   --drain-ms N    max drain after arrivals stop           [default 1000]
//   --load F        offered load                            [default 0.5]
//   --lb LIST       comma-separated policy subset to audit  [default: all]
//
// The "gray" profile draws gray-failure faults only (Bernoulli loss +
// corruption on a few links), the scenario behind the CONGA-vs-ECMP
// survival comparison; "random" mixes all five fault kinds.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "debug/invariants.hpp"
#include "debug/watchdog.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "lb_ext/policies.hpp"
#include "runtime/parallel_runner.hpp"
#include "stats/digest.hpp"
#include "workload/traffic_gen.hpp"

using namespace conga;

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr,
               "chaos_audit: %s\n(see the header of tools/chaos_audit.cpp "
               "for flag documentation)\n",
               msg);
  std::exit(2);
}

// Audited by default: every registered policy (weighted and local-eq are
// behavioural duplicates of ecmp/local under faults, so they are left to an
// explicit --lb list).
constexpr const char* kDefaultPolicies[] = {
    "ecmp",    "conga", "conga-flow", "spray", "local",
    "letflow", "drill", "presto",     "hula"};

struct AuditConfig {
  std::vector<std::string> policies{std::begin(kDefaultPolicies),
                                    std::end(kDefaultPolicies)};
  std::uint64_t seed = 1;
  int campaigns = 3;
  int jobs = 1;
  std::string out = "chaos_survival.json";
  std::string profile = "random";
  int hosts = 4;
  int duration_ms = 5;
  int warmup_ms = 1;
  // Covers several backed-off RTOs of the default transport (min_rto 200 ms),
  // so "unfinished" means wedged, not merely waiting out a timer.
  int drain_ms = 1000;
  double load = 0.5;
};

struct CellResult {
  std::uint64_t fct_digest = 0;
  std::uint64_t trace_digest = 0;
  std::uint64_t flows = 0;          ///< measured flows completed
  std::uint64_t unfinished = 0;     ///< measured flows never finished
  std::uint64_t bytes_outstanding = 0;
  std::uint64_t stalls = 0;         ///< watchdog stall episodes
  std::uint64_t transitions = 0;    ///< fault transitions applied
  std::uint64_t drops_queue = 0;
  std::uint64_t drops_admin = 0;
  std::uint64_t drops_gray = 0;
  std::uint64_t drops_corrupt = 0;
  std::uint64_t drops_no_route = 0;  ///< switch had no live port toward dst
  bool drained = false;
  bool conservation_ok = true;
  bool survived = false;  ///< drained with a balanced packet ledger
};

fault::FaultPlan make_plan(const AuditConfig& cfg,
                           const net::TopologyConfig& topo,
                           std::uint64_t plan_seed, sim::TimeNs horizon) {
  if (cfg.profile == "gray") {
    // Gray-only campaign: loss + corruption on a few links, the control
    // plane never told. Congestion-aware schemes can at best route around
    // the *retransmission* load; the survival comparison (conga vs ecmp
    // completed flows) is the Fig-16-style robustness headline.
    sim::Rng rng(plan_seed);
    fault::FaultPlan plan;
    const int n = static_cast<int>(rng.uniform_int(2, 3));
    for (int i = 0; i < n; ++i) {
      fault::GrayFailureSpec s;
      s.leaf = static_cast<int>(rng.uniform_int(0, topo.num_leaves - 1));
      s.spine = static_cast<int>(rng.uniform_int(0, topo.num_spines - 1));
      s.parallel =
          static_cast<int>(rng.uniform_int(0, topo.links_per_spine - 1));
      s.drop_prob = rng.uniform(0.005, 0.03);
      s.corrupt_prob = rng.uniform(0.0, 0.01);
      s.start = 0;
      s.stop = horizon;
      plan.add(s);
    }
    return plan;
  }
  fault::RandomPlanConfig rc;
  rc.horizon = horizon;
  return fault::make_random_plan(topo, plan_seed, rc);
}

CellResult run_cell(const AuditConfig& cfg, const std::string& policy,
                    std::uint64_t plan_seed) {
  const sim::TimeNs warmup = sim::milliseconds(cfg.warmup_ms);
  const sim::TimeNs measure = sim::milliseconds(cfg.duration_ms);
  const sim::TimeNs stop = warmup + measure;

  net::TopologyConfig topo = net::testbed_baseline();
  topo.hosts_per_leaf = cfg.hosts;
  const fault::FaultPlan plan = make_plan(cfg, topo, plan_seed, stop);

  sim::Scheduler sched;
  stats::TraceDigest trace;
  sched.set_trace_hook([&trace](sim::TimeNs t, sim::EventId id) {
    trace.add(static_cast<std::uint64_t>(t));
    trace.add(id);
  });

  net::Fabric fabric(sched, topo, cfg.seed);
  if (!lb_ext::install_policy(fabric, policy)) {
    usage(("unknown policy: " + policy +
           " (registered: " + lb_ext::policy_names() + ")")
              .c_str());
  }

  telemetry::TraceSinkConfig sink_cfg;
  sink_cfg.ring_capacity = 64;
  telemetry::TraceSink sink(sink_cfg);
  fabric.attach_telemetry(&sink);

  workload::TrafficGenConfig gc;
  gc.load = cfg.load;
  gc.stop = stop;
  gc.measure_start = warmup;
  gc.measure_stop = stop;
  gc.seed = cfg.seed * 31 + 7;

  workload::TrafficGenerator gen(fabric, tcp::make_tcp_flow_factory({}),
                                 workload::enterprise(), gc);
  debug::WatchdogConfig wd_cfg;
  wd_cfg.horizon = sim::milliseconds(20);
  wd_cfg.poll_interval = sim::milliseconds(2);
  debug::LivenessWatchdog watchdog(sched, wd_cfg);
  watchdog.attach_telemetry(&sink);
  gen.set_monitor(&watchdog);
  gen.start();

  fault::FaultInjector injector(fabric, plan_seed);
  injector.arm(plan);

  CellResult r;
  r.drained =
      workload::run_with_drain(sched, gen, stop, sim::milliseconds(cfg.drain_ms));
  if (!r.drained) gen.account_unfinished();

  r.fct_digest = stats::fct_digest(gen.collector());
  r.trace_digest = trace.value();
  r.flows = gen.collector().count();
  r.unfinished = gen.collector().unfinished_count();
  r.bytes_outstanding = gen.collector().bytes_outstanding();
  r.stalls = watchdog.stall_count();
  r.transitions = injector.transitions();

  auto check_link = [&r](const net::Link* link) {
    r.drops_queue += link->queue().stats().dropped_pkts;
    r.drops_admin += link->drop_stats().admin_down_pkts;
    r.drops_gray += link->drop_stats().gray_pkts;
    r.drops_corrupt += link->drop_stats().corrupt_pkts;
    if (!link->conserves_packets()) r.conservation_ok = false;
  };
  for (const net::Link* link : fabric.fabric_links()) check_link(link);
  for (net::HostId h = 0; h < fabric.num_hosts(); ++h) {
    check_link(fabric.host_to_leaf(h));
    check_link(fabric.leaf_to_host(h));
  }
  for (int l = 0; l < fabric.num_leaves(); ++l) {
    r.drops_no_route += fabric.leaf(l).dropped_no_route();
  }
  for (int s = 0; s < fabric.num_spines(); ++s) {
    r.drops_no_route += fabric.spine(s).dropped_no_route();
  }
  r.survived = r.drained && r.conservation_ok;
  return r;
}

void write_report(std::FILE* f, const AuditConfig& cfg,
                  const std::vector<CellResult>& cells) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"seed\": %" PRIu64 ",\n", cfg.seed);
  std::fprintf(f, "  \"campaigns\": %d,\n", cfg.campaigns);
  std::fprintf(f, "  \"profile\": \"%s\",\n", cfg.profile.c_str());
  std::fprintf(f, "  \"load\": %.3f,\n", cfg.load);
  std::fprintf(f, "  \"cells\": [\n");
  const std::size_t n_policies = cfg.policies.size();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& r = cells[i];
    const int campaign = static_cast<int>(i / n_policies);
    const char* policy = cfg.policies[i % n_policies].c_str();
    std::fprintf(
        f,
        "    {\"campaign\": %d, \"policy\": \"%s\", \"survived\": %s, "
        "\"drained\": %s, \"conservation_ok\": %s, \"flows\": %" PRIu64
        ", \"unfinished\": %" PRIu64 ", \"bytes_outstanding\": %" PRIu64
        ", \"stalls\": %" PRIu64 ", \"fault_transitions\": %" PRIu64
        ", \"drops\": {\"queue\": %" PRIu64 ", \"admin_down\": %" PRIu64
        ", \"gray\": %" PRIu64 ", \"corrupt\": %" PRIu64
        ", \"no_route\": %" PRIu64
        "}, \"fct_digest\": \"%016" PRIx64 "\", \"trace_digest\": "
        "\"%016" PRIx64 "\"}%s\n",
        campaign, policy, r.survived ? "true" : "false",
        r.drained ? "true" : "false", r.conservation_ok ? "true" : "false",
        r.flows, r.unfinished, r.bytes_outstanding, r.stalls, r.transitions,
        r.drops_queue, r.drops_admin, r.drops_gray, r.drops_corrupt,
        r.drops_no_route, r.fct_digest, r.trace_digest,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"summary\": [\n");
  for (std::size_t p = 0; p < n_policies; ++p) {
    std::uint64_t survived = 0, flows = 0, unfinished = 0, stalls = 0;
    for (std::size_t i = p; i < cells.size(); i += n_policies) {
      survived += cells[i].survived ? 1 : 0;
      flows += cells[i].flows;
      unfinished += cells[i].unfinished;
      stalls += cells[i].stalls;
    }
    std::fprintf(f,
                 "    {\"policy\": \"%s\", \"cells\": %d, \"survived\": "
                 "%" PRIu64 ", \"flows_completed\": %" PRIu64
                 ", \"unfinished\": %" PRIu64 ", \"stalls\": %" PRIu64 "}%s\n",
                 cfg.policies[p].c_str(), cfg.campaigns, survived, flows,
                 unfinished, stalls, p + 1 < n_policies ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  bool ok = true;
  for (const CellResult& r : cells) ok = ok && r.conservation_ok;
  std::fprintf(f, "  \"invariant_violations\": %" PRIu64 ",\n",
               debug::violation_count());
  std::fprintf(f, "  \"conservation_ok\": %s\n", ok ? "true" : "false");
  std::fprintf(f, "}\n");
}

}  // namespace

int main(int argc, char** argv) {
  AuditConfig cfg;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("flag needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (a == "--campaigns") {
      cfg.campaigns = std::atoi(need(i));
    } else if (a == "--jobs") {
      cfg.jobs = std::atoi(need(i));
    } else if (a == "--out") {
      cfg.out = need(i);
    } else if (a == "--profile") {
      cfg.profile = need(i);
    } else if (a == "--hosts") {
      cfg.hosts = std::atoi(need(i));
    } else if (a == "--duration-ms") {
      cfg.duration_ms = std::atoi(need(i));
    } else if (a == "--warmup-ms") {
      cfg.warmup_ms = std::atoi(need(i));
    } else if (a == "--drain-ms") {
      cfg.drain_ms = std::atoi(need(i));
    } else if (a == "--load") {
      cfg.load = std::atof(need(i));
    } else if (a == "--lb") {
      cfg.policies.clear();
      std::string list = need(i);
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string name =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!name.empty()) {
          if (lb_ext::find_policy(name) == nullptr) {
            usage(("unknown --lb policy: " + name +
                   " (registered: " + lb_ext::policy_names() + ")")
                      .c_str());
          }
          cfg.policies.push_back(name);
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (cfg.policies.empty()) usage("--lb needs at least one policy");
    } else if (a == "--help" || a == "-h") {
      usage("usage");
    } else {
      usage(("unknown flag: " + a).c_str());
    }
  }
  if (cfg.campaigns < 1) usage("--campaigns must be >= 1");
  if (cfg.profile != "random" && cfg.profile != "gray") {
    usage(("unknown --profile: " + cfg.profile).c_str());
  }

  const std::size_t n_policies = cfg.policies.size();
  const std::size_t n_cells =
      static_cast<std::size_t>(cfg.campaigns) * n_policies;
  std::printf("chaos_audit: %d campaign(s) x %zu policies, profile=%s, "
              "seed=%" PRIu64 ", jobs=%d\n",
              cfg.campaigns, n_policies, cfg.profile.c_str(), cfg.seed,
              cfg.jobs);

  const std::vector<CellResult> cells =
      runtime::parallel_map<CellResult>(n_cells, cfg.jobs, [&](std::size_t i) {
        const std::uint64_t plan_seed = cfg.seed + i / n_policies;
        return run_cell(cfg, cfg.policies[i % n_policies], plan_seed);
      });

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& r = cells[i];
    std::printf("  campaign %zu %-10s %s flows=%" PRIu64 " unfinished=%" PRIu64
                " stalls=%" PRIu64 " transitions=%" PRIu64
                " drops(q/adm/gray/corr)=%" PRIu64 "/%" PRIu64 "/%" PRIu64
                "/%" PRIu64 "\n",
                i / n_policies, cfg.policies[i % n_policies].c_str(),
                r.survived ? "SURVIVED" : (r.conservation_ok ? "unfinished "
                                                             : "LEAK      "),
                r.flows, r.unfinished, r.stalls, r.transitions, r.drops_queue,
                r.drops_admin, r.drops_gray, r.drops_corrupt);
  }

  std::FILE* f = std::fopen(cfg.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "chaos_audit: cannot write %s\n", cfg.out.c_str());
    return 2;
  }
  write_report(f, cfg, cells);
  std::fclose(f);
  std::printf("survival report: %s\n", cfg.out.c_str());

  bool ok = debug::violation_count() == 0;
  for (const CellResult& r : cells) ok = ok && r.conservation_ok;
  std::printf("%s\n", ok ? "CHAOS AUDIT PASSED: packet ledgers balanced, no "
                           "invariant violations"
                         : "CHAOS AUDIT FAILED: conservation or invariant "
                           "breach");
  return ok ? 0 : 1;
}
