// conga_sim — command-line driver for the fabric simulator.
//
// Runs one experiment cell from flags and prints an FCT summary plus a
// per-uplink utilization table, e.g.:
//
//   conga_sim --topology failure --lb conga --workload enterprise
//             --load 0.6 --duration-ms 100
//   conga_sim --leaves 4 --spines 3 --hosts 16 --fail 1:2:0
//             --lb ecmp --workload fixed:500000 --load 0.5
//
// Flags:
//   --topology baseline|failure      preset testbed topologies (Fig 7)
//   --leaves N --spines N --hosts N --parallel N   custom Leaf-Spine
//   --fail L:S:P[:factor]            fail (or degrade) a leaf-spine link
//   --lb NAME                        any registered policy (ecmp, conga,
//                                    conga-flow, spray, local, local-eq,
//                                    weighted, letflow, drill, presto, hula)
//   --workload enterprise|data-mining|web-search|fixed:BYTES
//   --transport tcp|mptcp|dctcp      (dctcp implies --ecn-kb 100 default)
//   --load F --duration-ms N --warmup-ms N --seed N --min-rto-ms N
//   --subflows N (mptcp) --ecn-kb N --shared-buffer-mb N
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "lb_ext/policies.hpp"
#include "stats/samplers.hpp"
#include "tcp/mptcp_connection.hpp"
#include "workload/experiment.hpp"
#include "workload/traffic_gen.hpp"

using namespace conga;

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "conga_sim: %s\n(see the header of tools/conga_sim.cpp "
               "for flag documentation)\n", msg);
  std::exit(2);
}

struct Options {
  std::string topology = "baseline";
  int leaves = -1, spines = -1, hosts = -1, parallel = -1;
  std::vector<net::LinkOverride> fails;
  std::string lb = "conga";
  std::string workload = "enterprise";
  std::string transport = "tcp";
  double load = 0.6;
  int duration_ms = 100;
  int warmup_ms = 10;
  int min_rto_ms = 10;
  int subflows = 8;
  int ecn_kb = 0;
  int shared_buffer_mb = 0;
  std::uint64_t seed = 1;
};

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("flag needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--topology") {
      o.topology = need(i);
    } else if (a == "--leaves") {
      o.leaves = std::atoi(need(i));
    } else if (a == "--spines") {
      o.spines = std::atoi(need(i));
    } else if (a == "--hosts") {
      o.hosts = std::atoi(need(i));
    } else if (a == "--parallel") {
      o.parallel = std::atoi(need(i));
    } else if (a == "--fail") {
      net::LinkOverride ov;
      ov.rate_factor = 0.0;
      double factor = 0.0;
      const char* spec = need(i);
      const int n = std::sscanf(spec, "%d:%d:%d:%lf", &ov.leaf, &ov.spine,
                                &ov.parallel, &factor);
      if (n < 3) usage("--fail expects L:S:P[:factor]");
      if (n == 4) ov.rate_factor = factor;
      o.fails.push_back(ov);
    } else if (a == "--lb") {
      o.lb = need(i);
    } else if (a == "--workload") {
      o.workload = need(i);
    } else if (a == "--transport") {
      o.transport = need(i);
    } else if (a == "--load") {
      o.load = std::atof(need(i));
    } else if (a == "--duration-ms") {
      o.duration_ms = std::atoi(need(i));
    } else if (a == "--warmup-ms") {
      o.warmup_ms = std::atoi(need(i));
    } else if (a == "--min-rto-ms") {
      o.min_rto_ms = std::atoi(need(i));
    } else if (a == "--subflows") {
      o.subflows = std::atoi(need(i));
    } else if (a == "--ecn-kb") {
      o.ecn_kb = std::atoi(need(i));
    } else if (a == "--shared-buffer-mb") {
      o.shared_buffer_mb = std::atoi(need(i));
    } else if (a == "--seed") {
      o.seed = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (a == "--help" || a == "-h") {
      usage("usage");
    } else {
      usage(("unknown flag: " + a).c_str());
    }
  }
  return o;
}

workload::FlowSizeDist make_dist(const std::string& name) {
  if (name == "enterprise") return workload::enterprise();
  if (name == "data-mining") return workload::data_mining();
  if (name == "web-search") return workload::web_search();
  if (name.rfind("fixed:", 0) == 0) {
    return workload::fixed_size(std::atof(name.c_str() + 6));
  }
  usage(("unknown --workload: " + name).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  net::TopologyConfig topo;
  if (o.topology == "baseline") {
    topo = net::testbed_baseline();
  } else if (o.topology == "failure") {
    topo = net::testbed_link_failure();
  } else if (o.topology == "custom") {
    // keep defaults; fields below override
  } else {
    usage(("unknown --topology: " + o.topology).c_str());
  }
  if (o.leaves > 0) topo.num_leaves = o.leaves;
  if (o.spines > 0) topo.num_spines = o.spines;
  if (o.hosts > 0) topo.hosts_per_leaf = o.hosts;
  if (o.parallel > 0) topo.links_per_spine = o.parallel;
  for (const auto& f : o.fails) topo.overrides.push_back(f);
  if (o.ecn_kb > 0) {
    topo.ecn_threshold_bytes = static_cast<std::uint64_t>(o.ecn_kb) * 1000;
  }
  if (o.shared_buffer_mb > 0) {
    topo.shared_buffer_bytes =
        static_cast<std::uint64_t>(o.shared_buffer_mb) * 1024 * 1024;
    topo.edge_queue_bytes = topo.shared_buffer_bytes;
    topo.fabric_queue_bytes = topo.shared_buffer_bytes;
  }

  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(o.min_rto_ms);
  tcp::FlowFactory transport;
  if (o.transport == "tcp") {
    transport = tcp::make_tcp_flow_factory(t);
  } else if (o.transport == "dctcp") {
    t.dctcp = true;
    if (topo.ecn_threshold_bytes == 0) topo.ecn_threshold_bytes = 100'000;
    transport = tcp::make_tcp_flow_factory(t);
  } else if (o.transport == "mptcp") {
    tcp::MptcpConfig m;
    m.tcp = t;
    m.num_subflows = o.subflows;
    transport = tcp::make_mptcp_flow_factory(m);
  } else {
    usage(("unknown --transport: " + o.transport).c_str());
  }

  // Build + run, keeping the fabric around for the utilization report.
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo, o.seed);
  if (!lb_ext::install_policy(fabric, o.lb)) {
    usage(("unknown --lb: " + o.lb +
           " (registered: " + lb_ext::policy_names() + ")")
              .c_str());
  }
  workload::TrafficGenConfig gc;
  gc.load = o.load;
  gc.stop = sim::milliseconds(o.warmup_ms + o.duration_ms);
  gc.measure_start = sim::milliseconds(o.warmup_ms);
  gc.measure_stop = gc.stop;
  gc.seed = o.seed * 31 + 7;
  workload::TrafficGenerator gen(fabric, transport, make_dist(o.workload), gc);
  gen.start();
  const bool drained =
      workload::run_with_drain(sched, gen, gc.stop, sim::seconds(5.0));

  std::printf("topology %s: %d leaves x %d spines x %d links, %d hosts/leaf",
              o.topology.c_str(), topo.num_leaves, topo.num_spines,
              topo.links_per_spine, topo.hosts_per_leaf);
  if (!topo.overrides.empty()) {
    std::printf(", %zu link overrides", topo.overrides.size());
  }
  std::printf("\nscheme %s, transport %s, workload %s @ %.0f%% load, "
              "%d ms window\n\n",
              o.lb.c_str(), o.transport.c_str(), o.workload.c_str(),
              o.load * 100, o.duration_ms);

  const auto& c = gen.collector();
  std::printf("flows measured:        %zu (%s)\n", c.count(),
              drained ? "all completed" : "NOT all completed before drain cap");
  std::printf("avg FCT / optimal:     %.2f\n", c.avg_normalized_fct());
  std::printf("median FCT / optimal:  %.2f\n", c.median_normalized_fct());
  std::printf("p99 FCT / optimal:     %.2f\n", c.p99_normalized_fct());
  std::printf("avg FCT small flows:   %.1f us\n", c.avg_fct_small() * 1e6);
  std::printf("avg FCT large flows:   %.1f ms\n", c.avg_fct_large() * 1e3);

  std::printf("\nper-leaf uplink utilization (delivered bits / capacity, "
              "whole run):\n");
  const double secs = sim::to_seconds(sched.now());
  for (int l = 0; l < fabric.num_leaves(); ++l) {
    std::printf("  leaf%-3d", l);
    for (const auto& up : fabric.leaf(l).uplinks()) {
      std::printf(" %5.2f",
                  static_cast<double>(up.link->bytes_sent()) * 8 / secs /
                      up.link->rate_bps());
    }
    std::printf("\n");
  }
  std::printf("\nfabric drops: ");
  std::uint64_t drops = 0;
  for (const net::Link* l : fabric.fabric_links()) {
    drops += l->queue().stats().dropped_pkts;
  }
  std::printf("%llu packets\n", static_cast<unsigned long long>(drops));
  return 0;
}
