#!/usr/bin/env bash
# check_format.sh — clang-format gate over *changed* files only.
#
# Usage:
#   tools/check_format.sh [--base REF] [--fix] [FILES...]
#
#   --base REF   diff base for file discovery (default: origin/main, falling
#                back to HEAD~1)
#   --fix        rewrite the files instead of checking
#   FILES...     explicit files (overrides the git diff)
#
# Deliberately diff-scoped: the tree predates .clang-format, so a whole-tree
# gate would demand a bulk reformat that buries real changes. New/touched
# files conform; untouched history is left alone.
#
# Exits 0 with a loud notice when clang-format is missing, so GCC-only boxes
# don't fail local hooks; CI's analysis lane installs clang-format and gets
# the real gate.
set -euo pipefail

cd "$(dirname "$0")/.."

FMT="${CLANG_FORMAT:-clang-format}"
BASE=""
FIX=""
FILES=()

while [ $# -gt 0 ]; do
  case "$1" in
    --base) BASE="$2"; shift 2 ;;
    --fix) FIX=1; shift ;;
    -h|--help) sed -n '2,17p' "$0"; exit 0 ;;
    *) FILES+=("$1"); shift ;;
  esac
done

if ! command -v "$FMT" >/dev/null 2>&1; then
  echo "check_format.sh: NOTICE: $FMT not found — skipping format check" >&2
  echo "check_format.sh: (CI's analysis lane installs clang-format and enforces)" >&2
  exit 0
fi

if [ ${#FILES[@]} -eq 0 ]; then
  if [ -z "$BASE" ]; then
    if git rev-parse --verify -q origin/main >/dev/null; then
      BASE=origin/main
    else
      BASE=HEAD~1
    fi
  fi
  mapfile -t FILES < <(git diff --name-only --diff-filter=ACMR "$BASE" -- \
                         '*.cpp' '*.hpp' '*.h' '*.cc' \
                         ':!tools/analyze/fixtures/*' | sort -u)
  if [ ${#FILES[@]} -eq 0 ]; then
    echo "check_format.sh: no changed C++ files vs $BASE; nothing to check."
    exit 0
  fi
fi

echo "check_format.sh: checking ${#FILES[@]} file(s) with $FMT"
STATUS=0
for f in "${FILES[@]}"; do
  [ -f "$f" ] || continue
  if [ -n "$FIX" ]; then
    "$FMT" -i "$f"
  elif ! "$FMT" --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "NEEDS FORMAT: $f (run tools/check_format.sh --fix)" >&2
    STATUS=1
  fi
done
[ $STATUS -eq 0 ] && echo "check_format.sh: all checked files formatted."
exit $STATUS
