// conga_trace — record, slice, and summarize telemetry traces.
//
// Subcommands:
//   record [flags]      run the Fig 11(c) hotspot scenario (one Leaf1-Spine1
//                       40G link down, data-mining @ 60% load) with full
//                       telemetry, export the trace as JSONL, and print the
//                       hotspot queue-occupancy percentiles from the live
//                       sampler. The same percentiles can then be rebuilt
//                       offline from the exported file (see `percentiles`).
//     --out PATH        JSONL output                 [default trace.jsonl]
//     --csv PATH        also export CSV
//     --lb NAME         any registered policy        [default conga]
//     --stop-ms N       run length                   [default 80]
//     --ring N          per-component ring capacity  [default 8192]
//     --cats a,b,...    category mask (queue,link,dre,flowlet,conga_table,
//                       tcp,flow,probe,fault)        [default: all]
//     --fault-seed N    additionally arm a randomized fault campaign
//                       (src/fault/ make_random_plan, horizon = stop) so the
//                       exported trace carries fault transitions and
//                       cause-tagged drops            [default: 0 = off]
//
//   summary FILE        per-category / per-type event counts, component and
//                       time-range overview of a JSONL trace.
//
//   slice FILE [flags]  print the event lines matching every given filter
//                       (JSONL passthrough, meta line dropped).
//     --from-ms N / --to-ms N   time window
//     --cat NAME                category
//     --type NAME               event type
//     --comp SUBSTR             component-name substring
//
//   percentiles FILE [--comp SUBSTR]
//                       rebuild a queue-CDF row from the gauge_sample events
//                       of matching components (default: all gauges); with
//                       the hotspot probe this reproduces the Fig 11(c) row
//                       the bench prints, from the recorded trace alone.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fault/fault_injector.hpp"
#include "lb_ext/policies.hpp"
#include "net/fabric.hpp"
#include "stats/summary.hpp"
#include "telemetry/export.hpp"
#include "telemetry/probes.hpp"
#include "workload/traffic_gen.hpp"

using namespace conga;

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr,
               "conga_trace: %s\n(see the header of tools/conga_trace.cpp "
               "for the subcommand reference)\n",
               msg);
  std::exit(2);
}

// --- minimal JSONL field extraction -----------------------------------------
// The reader only consumes traces this repo's exporter wrote ("conga-trace-v1"
// schema, one flat object per line, machine-generated component names), so
// plain string scanning is sufficient — no JSON dependency needed.

/// The raw text after `"key":` (number or quoted string), or "" if absent.
std::string field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  std::size_t i = at + needle.size();
  if (line[i] == '"') {
    const std::size_t end = line.find('"', i + 1);
    return line.substr(i + 1, end - i - 1);
  }
  std::size_t end = i;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(i, end - i);
}

bool is_event_line(const std::string& line) {
  return line.rfind("{\"t\":", 0) == 0;
}

struct TraceFile {
  std::FILE* f = nullptr;
  explicit TraceFile(const char* path) : f(std::fopen(path, "r")) {
    if (f == nullptr) usage((std::string("cannot open ") + path).c_str());
  }
  ~TraceFile() { std::fclose(f); }
  bool next(std::string& line) {
    line.clear();
    int c = 0;
    while ((c = std::fgetc(f)) != EOF && c != '\n') {
      line.push_back(static_cast<char>(c));
    }
    return !line.empty() || c != EOF;
  }
};

// --- record -----------------------------------------------------------------

int cmd_record(int argc, char** argv) {
  std::string out = "trace.jsonl";
  std::string csv;
  std::string lb_name = "conga";
  int stop_ms = 80;
  std::size_t ring = 8192;
  std::uint32_t mask = telemetry::kAllCategories;
  std::uint64_t fault_seed = 0;

  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("flag needs a value");
    return argv[++i];
  };
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out") {
      out = need(i);
    } else if (a == "--csv") {
      csv = need(i);
    } else if (a == "--lb") {
      lb_name = need(i);
    } else if (a == "--stop-ms") {
      stop_ms = std::atoi(need(i));
    } else if (a == "--ring") {
      ring = static_cast<std::size_t>(std::atoll(need(i)));
    } else if (a == "--fault-seed") {
      fault_seed = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (a == "--cats") {
      mask = 0;
      std::string cats = need(i);
      std::size_t pos = 0;
      while (pos <= cats.size()) {
        std::size_t comma = cats.find(',', pos);
        if (comma == std::string::npos) comma = cats.size();
        telemetry::Category c = telemetry::Category::kCount;
        const std::string name = cats.substr(pos, comma - pos);
        if (!telemetry::parse_category(name, c)) {
          usage(("unknown category: " + name).c_str());
        }
        mask |= telemetry::category_bit(c);
        pos = comma + 1;
      }
    } else {
      usage(("unknown record flag: " + a).c_str());
    }
  }

  if (lb_ext::find_policy(lb_name) == nullptr) {
    usage(("unknown --lb: " + lb_name +
           " (registered: " + lb_ext::policy_names() + ")")
              .c_str());
  }

  // The Fig 11(c) scenario, exactly as bench/fig11_link_failure runs it.
  net::TopologyConfig topo = net::testbed_link_failure();
  topo.hosts_per_leaf = 16;
  topo.fabric_queue_bytes = 10 * 1024 * 1024;

  sim::Scheduler sched;
  net::Fabric fabric(sched, topo, 31);
  lb_ext::install_policy(fabric, lb_name);

  telemetry::TraceSinkConfig cfg;
  cfg.ring_capacity = ring;
  cfg.category_mask = mask;
  telemetry::TraceSink sink(cfg);
  fabric.attach_telemetry(&sink);

  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(10);
  workload::TrafficGenConfig gc;
  gc.load = 0.6;
  gc.stop = sim::milliseconds(stop_ms);
  workload::TrafficGenerator gen(fabric, tcp::make_tcp_flow_factory(t),
                                 workload::data_mining(), gc);
  gen.start();

  fault::FaultInjector injector(fabric, fault_seed);
  if (fault_seed != 0) {
    fault::RandomPlanConfig rc;
    rc.horizon = gc.stop;
    injector.arm(fault::make_random_plan(topo, fault_seed, rc));
  }

  const int hotspot = sink.probes().find("down:l1s1p0/queue_bytes");
  telemetry::PeriodicSampler sampler(sched, sink, sim::microseconds(100),
                                     sim::milliseconds(10), gc.stop,
                                     {hotspot});
  sched.run_until(gc.stop);

  if (!telemetry::write_jsonl_file(sink, out)) {
    usage(("cannot write " + out).c_str());
  }
  if (!csv.empty() && !telemetry::write_csv_file(sink, csv)) {
    usage(("cannot write " + csv).c_str());
  }

  std::printf("recorded %llu events (%llu overwritten by ring wrap) across "
              "%zu components -> %s\n",
              static_cast<unsigned long long>(sink.total_recorded()),
              static_cast<unsigned long long>(sink.total_overwritten()),
              sink.component_count(), out.c_str());
  if (!telemetry::compiled_in()) {
    std::printf("note: built with CONGA_TELEMETRY=OFF — only probe series "
                "were collected, no events recorded\n");
  }
  std::printf("hotspot [Spine1->Leaf1] queue occupancy, %s @ 60%% load:\n",
              lb_name.c_str());
  std::printf("%-6s", "pct");
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    std::printf("%11.0f", p);
  }
  std::printf("  (queue KB)\n%-6s", "");
  const stats::Summary occ = sampler.summary(0);
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    std::printf("%11.1f", occ.percentile(p) / 1e3);
  }
  std::printf("\n");
  return 0;
}

// --- summary ----------------------------------------------------------------

int cmd_summary(const char* path) {
  TraceFile in(path);
  std::string line;
  std::uint64_t events = 0;
  long long t_min = 0, t_max = 0;
  bool first = true;
  // type name -> count, kept in first-seen order for stable output.
  std::vector<std::pair<std::string, std::uint64_t>> by_type;
  std::vector<std::pair<std::string, std::uint64_t>> by_cat;
  auto bump = [](std::vector<std::pair<std::string, std::uint64_t>>& v,
                 const std::string& k) {
    for (auto& [name, n] : v) {
      if (name == k) {
        ++n;
        return;
      }
    }
    v.emplace_back(k, 1);
  };

  while (in.next(line)) {
    if (!is_event_line(line)) {
      if (line.rfind("{\"meta\":", 0) == 0) {
        std::printf("meta: recorded=%s overwritten=%s mask=%s\n",
                    field(line, "total_recorded").c_str(),
                    field(line, "total_overwritten").c_str(),
                    field(line, "category_mask").c_str());
      }
      continue;
    }
    ++events;
    const long long t = std::atoll(field(line, "t").c_str());
    if (first || t < t_min) t_min = t;
    if (first || t > t_max) t_max = t;
    first = false;
    bump(by_cat, field(line, "cat"));
    bump(by_type, field(line, "type"));
  }
  std::printf("%llu exported events, %.3f ms .. %.3f ms\n",
              static_cast<unsigned long long>(events),
              static_cast<double>(t_min) / 1e6,
              static_cast<double>(t_max) / 1e6);
  std::printf("by category:\n");
  for (const auto& [name, n] : by_cat) {
    std::printf("  %-14s %10llu\n", name.c_str(),
                static_cast<unsigned long long>(n));
  }
  std::printf("by type:\n");
  for (const auto& [name, n] : by_type) {
    std::printf("  %-22s %10llu\n", name.c_str(),
                static_cast<unsigned long long>(n));
  }
  return 0;
}

// --- slice ------------------------------------------------------------------

int cmd_slice(const char* path, int argc, char** argv) {
  long long from_ns = -1, to_ns = -1;
  std::string cat, type, comp;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("flag needs a value");
    return argv[++i];
  };
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--from-ms") {
      from_ns = std::atoll(need(i)) * 1'000'000LL;
    } else if (a == "--to-ms") {
      to_ns = std::atoll(need(i)) * 1'000'000LL;
    } else if (a == "--cat") {
      cat = need(i);
    } else if (a == "--type") {
      type = need(i);
    } else if (a == "--comp") {
      comp = need(i);
    } else {
      usage(("unknown slice flag: " + a).c_str());
    }
  }

  TraceFile in(path);
  std::string line;
  while (in.next(line)) {
    if (!is_event_line(line)) continue;
    const long long t = std::atoll(field(line, "t").c_str());
    if (from_ns >= 0 && t < from_ns) continue;
    if (to_ns >= 0 && t > to_ns) continue;
    if (!cat.empty() && field(line, "cat") != cat) continue;
    if (!type.empty() && field(line, "type") != type) continue;
    if (!comp.empty() &&
        field(line, "comp").find(comp) == std::string::npos) {
      continue;
    }
    std::puts(line.c_str());
  }
  return 0;
}

// --- percentiles ------------------------------------------------------------

int cmd_percentiles(const char* path, int argc, char** argv) {
  std::string comp;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--comp") == 0 && i + 1 < argc) {
      comp = argv[++i];
    } else {
      usage(("unknown percentiles flag: " + std::string(argv[i])).c_str());
    }
  }
  TraceFile in(path);
  std::string line;
  stats::Summary values;
  while (in.next(line)) {
    if (!is_event_line(line)) continue;
    if (field(line, "type") != "gauge_sample") continue;
    if (!comp.empty() &&
        field(line, "comp").find(comp) == std::string::npos) {
      continue;
    }
    values.add(std::atof(field(line, "value").c_str()));
  }
  if (values.count() == 0) usage("no matching gauge_sample events");
  std::printf("%llu samples%s%s\n",
              static_cast<unsigned long long>(values.count()),
              comp.empty() ? "" : " from components matching ",
              comp.c_str());
  std::printf("%-6s", "pct");
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    std::printf("%11.0f", p);
  }
  std::printf("  (value / KB if bytes)\n%-6s", "");
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    std::printf("%11.1f", values.percentile(p) / 1e3);
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage("missing subcommand (record|summary|slice|percentiles)");
  const std::string cmd = argv[1];
  if (cmd == "record") return cmd_record(argc - 2, argv + 2);
  if (argc < 3) usage((cmd + " needs a trace file").c_str());
  if (cmd == "summary") return cmd_summary(argv[2]);
  if (cmd == "slice") return cmd_slice(argv[2], argc - 3, argv + 3);
  if (cmd == "percentiles") return cmd_percentiles(argv[2], argc - 3, argv + 3);
  usage(("unknown subcommand: " + cmd).c_str());
}
