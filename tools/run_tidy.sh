#!/usr/bin/env bash
# run_tidy.sh — clang-tidy driver for the CONGA repo.
#
# Usage:
#   tools/run_tidy.sh [--build-dir DIR] [--changed [BASE]] [--fix] [FILES...]
#
#   --build-dir DIR   build tree with compile_commands.json
#                     (default: ./build; configured automatically if missing)
#   --changed [BASE]  lint only files changed vs git BASE (default: origin/main,
#                     falling back to HEAD~1) — the CI "tidy on changed files" mode
#   --fix             apply clang-tidy fix-its in place
#   FILES...          explicit files to lint (overrides --changed)
#
# With no file selection, lints every .cpp under src/, tools/, tests/,
# bench/, and examples/.
# Exits 0 with a notice when clang-tidy is not installed, so developer
# machines without LLVM don't fail local hooks; CI installs clang-tidy and
# gets the real gate.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
FIX=""
CHANGED=""
BASE=""
FILES=()

while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --changed)
      CHANGED=1; shift
      if [ $# -gt 0 ] && [[ "$1" != --* ]] && [[ "$1" != *.cpp ]] && [[ "$1" != *.hpp ]]; then
        BASE="$1"; shift
      fi ;;
    --fix) FIX="--fix"; shift ;;
    -h|--help) sed -n '2,18p' "$0"; exit 0 ;;
    *) FILES+=("$1"); shift ;;
  esac
done

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_tidy.sh: $TIDY not found; skipping lint (install clang-tidy to enable)."
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_tidy.sh: configuring $BUILD_DIR for compile_commands.json"
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi

if [ ${#FILES[@]} -eq 0 ]; then
  if [ -n "$CHANGED" ]; then
    if [ -z "$BASE" ]; then
      if git rev-parse --verify -q origin/main >/dev/null; then
        BASE=origin/main
      else
        BASE=HEAD~1
      fi
    fi
    # Translation units only; headers get covered via HeaderFilterRegex.
    mapfile -t FILES < <(git diff --name-only --diff-filter=ACMR "$BASE" -- \
                           'src/*.cpp' 'tools/*.cpp' 'tests/*.cpp' \
                           'bench/*.cpp' 'examples/*.cpp' | sort -u)
    if [ ${#FILES[@]} -eq 0 ]; then
      echo "run_tidy.sh: no changed .cpp files vs $BASE; nothing to lint."
      exit 0
    fi
  else
    mapfile -t FILES < <(find src tools tests bench examples \
                           -path tools/analyze/fixtures -prune -o \
                           -name '*.cpp' -print | sort)
  fi
fi

echo "run_tidy.sh: linting ${#FILES[@]} file(s) with $TIDY (build dir: $BUILD_DIR)"
STATUS=0
for f in "${FILES[@]}"; do
  [ -f "$f" ] || continue
  echo "--- $f"
  "$TIDY" -p "$BUILD_DIR" $FIX "$f" || STATUS=1
done
exit $STATUS
