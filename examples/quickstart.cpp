// Quickstart: build a Leaf-Spine fabric, install CONGA, run a few TCP flows,
// and print their completion times.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <vector>

#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "tcp/flow.hpp"

using namespace conga;

int main() {
  // 1. A scheduler drives everything; one per simulation.
  sim::Scheduler sched;

  // 2. Describe the fabric: here the paper's baseline testbed (Fig 7a) —
  //    2 leaves x 32 x 10G hosts, 2 spines, 2 x 40G uplinks per pair.
  net::Fabric fabric(sched, net::testbed_baseline(), /*seed=*/42);

  // 3. Pick a load balancer. One line swaps the whole scheme:
  //    lb::ecmp(), lb::spray(), lb::local_aware(), lb::weighted({...}),
  //    core::conga(), core::conga_flow().
  fabric.install_lb(core::conga());

  // 4. Launch some TCP flows across the spine.
  tcp::TcpConfig tcp_cfg;
  tcp_cfg.min_rto = sim::milliseconds(10);
  std::vector<std::unique_ptr<tcp::TcpFlow>> flows;
  const std::uint64_t sizes[] = {20'000, 1'000'000, 50'000'000};
  for (int i = 0; i < 3; ++i) {
    net::FlowKey key;
    key.src_host = i;        // hosts 0..31 are on leaf 0
    key.dst_host = 32 + i;   // hosts 32..63 on leaf 1
    key.src_port = static_cast<std::uint16_t>(1000 + 16 * i);
    key.dst_port = 80;
    flows.push_back(std::make_unique<tcp::TcpFlow>(
        sched, fabric.host(key.src_host), fabric.host(key.dst_host), key,
        sizes[i], tcp_cfg, [](tcp::FlowHandle& f) {
          std::printf("flow of %9llu B finished in %8.1f us (%.2f Gbps)\n",
                      static_cast<unsigned long long>(f.size()),
                      f.fct() / 1e3,
                      static_cast<double>(f.size()) * 8 /
                          sim::to_seconds(f.fct()) / 1e9);
        }));
    flows.back()->start();
  }

  // 5. Run the simulation to completion.
  sched.run();

  std::printf("\nsimulated %.3f ms in %llu events\n",
              sim::to_seconds(sched.now()) * 1e3,
              static_cast<unsigned long long>(sched.events_dispatched()));
  std::printf("leaf0 sent %llu packets into the fabric\n",
              static_cast<unsigned long long>(
                  fabric.leaf(0).packets_to_fabric()));
  return 0;
}
