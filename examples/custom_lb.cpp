// Custom load balancer: the public API lets downstream users drop in their
// own strategy. This example implements "RoundRobinLb" — per-flowlet
// round-robin over the reachable uplinks — plugs it into a fabric, and races
// it against ECMP and CONGA on an asymmetric topology.
//
// The interface contract (lb/load_balancer.hpp):
//   * select_uplink() is called for every fabric-bound packet and must
//     return an uplink index for which leaf.uplink_reaches(i, dst) holds;
//   * annotate() may stamp overlay fields on the outgoing packet;
//   * on_fabric_receive() sees every packet arriving from the fabric.
#include <cstdio>
#include <memory>

#include "core/flowlet_table.hpp"
#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "workload/traffic_gen.hpp"

using namespace conga;

namespace {

class RoundRobinLb final : public lb::LoadBalancer {
 public:
  explicit RoundRobinLb(net::LeafSwitch& leaf)
      : leaf_(leaf), flowlets_(core::FlowletTableConfig{}) {}

  int select_uplink(const net::Packet& pkt, net::LeafId dst_leaf,
                    sim::TimeNs now) override {
    const net::FlowKey key = pkt.wire_key();
    const int cached = flowlets_.lookup(key, now);
    if (cached >= 0 && leaf_.uplink_reaches(cached, dst_leaf)) return cached;
    // Next reachable uplink in cyclic order.
    const int n = static_cast<int>(leaf_.uplinks().size());
    for (int k = 0; k < n; ++k) {
      const int i = (next_ + k) % n;
      if (leaf_.uplink_reaches(i, dst_leaf)) {
        next_ = (i + 1) % n;
        flowlets_.install(key, i, now);
        return i;
      }
    }
    return 0;  // unreachable destination: caller topology guarantees not
  }

  std::string name() const override { return "RoundRobin"; }

 private:
  net::LeafSwitch& leaf_;
  core::FlowletTable flowlets_;
  int next_ = 0;
};

net::Fabric::LbFactory round_robin() {
  return [](net::LeafSwitch& leaf, const net::TopologyConfig&,
            std::uint64_t) -> std::unique_ptr<lb::LoadBalancer> {
    return std::make_unique<RoundRobinLb>(leaf);
  };
}

double run(const char* name, const net::Fabric::LbFactory& lb) {
  net::TopologyConfig topo = net::testbed_link_failure();
  topo.hosts_per_leaf = 16;
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo, 31);
  fabric.install_lb(lb);
  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(10);
  workload::TrafficGenConfig gc;
  gc.load = 0.6;
  gc.stop = sim::milliseconds(60);
  gc.measure_start = sim::milliseconds(10);
  gc.measure_stop = sim::milliseconds(50);
  workload::TrafficGenerator gen(fabric, tcp::make_tcp_flow_factory(t),
                                 workload::enterprise(), gc);
  gen.start();
  workload::run_with_drain(sched, gen, gc.stop, sim::seconds(2.0));
  const double fct = gen.collector().avg_normalized_fct();
  std::printf("%-12s avg FCT %6.2fx optimal over %zu flows\n", name, fct,
              gen.collector().count());
  return fct;
}

}  // namespace

int main() {
  std::printf("custom strategy vs built-ins on the link-failure topology "
              "@60%% load\n\n");
  run("RoundRobin", round_robin());
  run("ECMP", lb::ecmp());
  run("CONGA", core::conga());
  std::printf("\nRound-robin splits evenly like ECMP, so it inherits the "
              "same asymmetry\nblindness; congestion feedback is what "
              "closes the gap.\n");
  return 0;
}
