// Incast demo (paper §5.3): a client requests a 10 MB file striped across N
// servers; all servers answer at once. Compare plain TCP over CONGA against
// MPTCP with 8 subflows, at two minRTO settings.
//
// The fabric is not the bottleneck here — the client's single 10G access
// link is. MPTCP's extra subflows make the synchronized burst worse and its
// tiny per-subflow windows die by timeout (Fig 13).
#include <cstdio>

#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "tcp/mptcp_connection.hpp"
#include "workload/incast_gen.hpp"

using namespace conga;

namespace {

double run(int fanin, const tcp::FlowFactory& transport) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, net::testbed_baseline(), 17);
  fabric.install_lb(core::conga());

  workload::IncastConfig inc;
  inc.client = 0;
  for (int s = 1; s <= fanin; ++s) inc.servers.push_back(s);
  inc.total_bytes = 10'000'000;
  inc.rounds = 3;

  workload::IncastGenerator gen(fabric, transport, inc);
  gen.start();
  sched.run_until(sim::seconds(30.0));
  return gen.finished() ? gen.goodput_fraction() * 100 : 0.0;
}

}  // namespace

int main() {
  std::printf("Incast: 10MB striped over N synchronized servers -> one "
              "client (%% of 10G)\n\n");
  std::printf("%-26s%8s%8s%8s\n", "transport", "N=8", "N=24", "N=63");
  for (const sim::TimeNs min_rto :
       {sim::milliseconds(200), sim::milliseconds(1)}) {
    tcp::TcpConfig t;
    t.min_rto = min_rto;
    tcp::MptcpConfig m;
    m.tcp = t;

    std::printf("TCP+CONGA (minRTO %3lldms)  ",
                static_cast<long long>(min_rto / sim::kNsPerMs));
    for (int n : {8, 24, 63}) {
      std::printf("%8.1f", run(n, tcp::make_tcp_flow_factory(t)));
    }
    std::printf("\nMPTCPx8   (minRTO %3lldms)  ",
                static_cast<long long>(min_rto / sim::kNsPerMs));
    for (int n : {8, 24, 63}) {
      std::printf("%8.1f", run(n, tcp::make_mptcp_flow_factory(m)));
    }
    std::printf("\n");
  }
  std::printf("\nLoad balancing cannot help here; *not* multiplying the "
              "burst (and a small\nminRTO) can. This is the paper's case "
              "against host-based multipath.\n");
  return 0;
}
