// 3-tier pod fabric demo (§7 "Larger topologies").
//
// Builds 2 pods x (2 leaves x 2 spines) + 2 core switches, degrades one
// spine's core links, and shows CONGA steering inter-pod flowlets around the
// damage while intra-pod traffic is balanced as usual.
#include <cstdio>
#include <memory>
#include <vector>

#include "lb/factories.hpp"
#include "net/pod_fabric.hpp"
#include "tcp/flow.hpp"

using namespace conga;

int main() {
  sim::Scheduler sched;

  net::PodTopologyConfig cfg;
  cfg.num_pods = 2;
  cfg.leaves_per_pod = 2;
  cfg.spines_per_pod = 2;
  cfg.hosts_per_leaf = 4;
  cfg.num_cores = 2;
  // Pod 0's spine 1 reaches the core tier at a tenth of the rate.
  cfg.core_overrides.push_back({0, 1, 0, 0.1});
  cfg.core_overrides.push_back({0, 1, 1, 0.1});

  net::PodFabric fabric(sched, cfg, 7);
  fabric.install_lb(core::conga());

  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(5);
  std::vector<std::unique_ptr<tcp::TcpFlow>> flows;
  auto add = [&](net::HostId s, net::HostId d, std::uint16_t port) {
    net::FlowKey key;
    key.src_host = s;
    key.dst_host = d;
    key.src_port = port;
    key.dst_port = 80;
    flows.push_back(std::make_unique<tcp::TcpFlow>(
        sched, fabric.host(s), fabric.host(d), key, std::uint64_t{1} << 40, t,
        tcp::FlowCompleteFn{}));
    flows.back()->start();
  };
  // Two intra-pod flows (pod 0) and two inter-pod flows (pod 0 -> pod 1).
  add(0, 4, 1000);
  add(1, 5, 1016);
  add(2, 12, 1032);
  add(3, 13, 1048);

  sched.run_until(sim::milliseconds(50));

  std::printf("leaf 0 uplink split after 50 ms:\n");
  const auto& ups = fabric.leaf(0).uplinks();
  for (std::size_t u = 0; u < ups.size(); ++u) {
    std::printf("  uplink %zu (to spine %d): %6.2f Gbps\n", u,
                ups[u].spine,
                static_cast<double>(ups[u].link->bytes_sent()) * 8 / 0.05 /
                    1e9);
  }
  std::printf("\ncore links out of pod 0:\n");
  for (int s = 0; s < 2; ++s) {
    for (int c = 0; c < 2; ++c) {
      const net::Link* l = fabric.spine_to_core(0, s, c);
      std::printf("  spine %d -> core %d (%4.0f Gbps cap): %6.2f Gbps\n", s,
                  c, l->rate_bps() / 1e9,
                  static_cast<double>(l->bytes_sent()) * 8 / 0.05 / 1e9);
    }
  }
  std::printf(
      "\nCONGA pushed the inter-pod flowlets toward spine 0 (healthy core\n"
      "path) because the CE field kept reporting congestion on the degraded\n"
      "one — only the first hop is CONGA-controlled, exactly as §7 argues.\n");
  return 0;
}
