// Failover demo: the paper's headline robustness result in miniature.
//
// A link between Leaf 1 and Spine 1 fails (Fig 7b). ECMP keeps hashing half
// of the Leaf0->Leaf1 flows through Spine 1, whose single surviving link
// melts; CONGA's leaf-to-leaf congestion feedback routes around it. The demo
// runs the same Poisson workload under ECMP, CONGA-Flow, and CONGA, and
// prints FCTs and the hotspot queue.
#include <cstdio>

#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "telemetry/probes.hpp"
#include "workload/traffic_gen.hpp"

using namespace conga;

namespace {

void run_scheme(const char* name, const net::Fabric::LbFactory& lb) {
  net::TopologyConfig topo = net::testbed_link_failure();
  topo.hosts_per_leaf = 16;

  sim::Scheduler sched;
  net::Fabric fabric(sched, topo, 31);
  fabric.install_lb(lb);

  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(10);
  workload::TrafficGenConfig gc;
  gc.load = 0.6;  // > 50% is where ECMP breaks (§5.2.2)
  gc.stop = sim::milliseconds(60);
  gc.measure_start = sim::milliseconds(10);
  gc.measure_stop = sim::milliseconds(50);
  workload::TrafficGenerator gen(fabric, tcp::make_tcp_flow_factory(t),
                                 workload::enterprise(), gc);
  gen.start();

  // Watch the hotspot: the surviving [Spine1 -> Leaf1] link, via the
  // fabric's registered queue-occupancy probe.
  telemetry::TraceSink sink;
  fabric.attach_telemetry(&sink);
  sink.set_category_mask(telemetry::category_bit(telemetry::Category::kProbe));
  telemetry::PeriodicSampler hotspot(
      sched, sink, sim::microseconds(200), sim::milliseconds(10), gc.stop,
      {sink.probes().find("down:l1s1p0/queue_bytes")});

  const bool drained =
      workload::run_with_drain(sched, gen, gc.stop, sim::seconds(2.0));

  std::printf("%-12s avg FCT %6.2fx optimal | p99 %7.2fx | hotspot queue "
              "p90 %7.1f KB | %4zu flows%s\n",
              name, gen.collector().avg_normalized_fct(),
              gen.collector().p99_normalized_fct(),
              hotspot.summary(0).percentile(90) / 1e3,
              gen.collector().count(), drained ? "" : "  [NOT DRAINED]");
}

}  // namespace

int main() {
  std::printf("one 40G link of Leaf1 is down; enterprise workload @ 60%% "
              "offered load\n\n");
  run_scheme("ECMP", lb::ecmp());
  run_scheme("CONGA-Flow", core::conga_flow());
  run_scheme("CONGA", core::conga());
  std::printf("\nCONGA shifts flowlets away from the hotspot within a few "
              "RTTs of feedback;\nECMP cannot, and its FCT and queue blow "
              "up (paper Fig 11).\n");
  return 0;
}
