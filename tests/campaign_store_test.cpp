// Content-addressed store tests: entry round-trips, corruption detection
// and self-healing, code-fingerprint invalidation, and torn-entry safety
// under concurrent writers.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/experiment_spec.hpp"
#include "campaign/json.hpp"
#include "campaign/store.hpp"
#include "net/topology.hpp"
#include "runtime/parallel_runner.hpp"

namespace conga::campaign {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("conga_store_test." + tag + "." + std::to_string(::getpid()))) {
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// RAII CONGA_CODE_FINGERPRINT override (code_fingerprint() reads the
/// environment on every call).
struct ScopedFingerprint {
  explicit ScopedFingerprint(const std::string& value) {
    ::setenv("CONGA_CODE_FINGERPRINT", value.c_str(), 1);
  }
  ~ScopedFingerprint() { ::unsetenv("CONGA_CODE_FINGERPRINT"); }
};

workload::ExperimentResult fake_result(double fct, std::uint64_t digest) {
  workload::ExperimentResult r;
  r.avg_norm_fct = fct;
  r.median_norm_fct = fct * 0.8;
  r.p99_norm_fct = fct * 3;
  r.flows = 100;
  r.completed_fraction = 1.0;
  r.drained = true;
  r.fct_digest = digest;
  return r;
}

ExperimentSpec small_spec() {
  ExperimentSpec s;
  s.topo = net::testbed_baseline();
  s.topo.hosts_per_leaf = 4;
  return s;
}

CampaignSpec tiny_campaign() {
  CampaignSpec c;
  c.name = "tiny";
  c.policies = {"ecmp"};
  c.loads_pct = {30};
  net::TopologyConfig topo = net::testbed_baseline();
  topo.hosts_per_leaf = 4;
  c.cases.push_back({"t", topo});
  c.warmup_ns = sim::milliseconds(1);
  c.measure_ns = sim::milliseconds(2);
  c.max_drain_ns = sim::milliseconds(300);
  return c;
}

TEST(ResultStore, PutThenLoadRoundTrips) {
  const TempDir dir("roundtrip");
  ResultStore store(dir.path.string());
  const ExperimentSpec spec = small_spec();
  const std::string key = cell_key(spec, "fp");
  const workload::ExperimentResult written = fake_result(2.5, 0xabcdef);

  std::string err;
  ASSERT_TRUE(store.put(key, "fp", canonical_json(spec), written, err))
      << err;
  EXPECT_EQ(store.writes(), 1U);

  workload::ExperimentResult loaded;
  ASSERT_EQ(store.load(key, loaded, err), ResultStore::LoadStatus::kHit)
      << err;
  EXPECT_EQ(json_of_result(loaded).dump(), json_of_result(written).dump());

  // The entry embeds its spec for auditability.
  std::string bytes;
  {
    std::FILE* f = std::fopen(store.entry_path(key).c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[65536];
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    std::fclose(f);
    bytes.assign(buf, n);
  }
  Json doc;
  ASSERT_TRUE(Json::parse(bytes, doc, err)) << err;
  ASSERT_NE(doc.find("spec"), nullptr);
  EXPECT_EQ(doc.find("spec")->dump(), canonical_json(spec));
  EXPECT_EQ(doc.find("fingerprint")->as_string(), "fp");
}

TEST(ResultStore, MissOnAbsentKey) {
  const TempDir dir("miss");
  ResultStore store(dir.path.string());
  workload::ExperimentResult out;
  std::string err;
  EXPECT_EQ(store.load(std::string(32, 'a'), out, err),
            ResultStore::LoadStatus::kMiss);
}

TEST(ResultStore, CorruptionIsDetected) {
  const TempDir dir("corrupt");
  ResultStore store(dir.path.string());
  const ExperimentSpec spec = small_spec();
  const std::string key = cell_key(spec, "fp");
  std::string err;
  ASSERT_TRUE(
      store.put(key, "fp", canonical_json(spec), fake_result(1.0, 7), err));
  const std::string path = store.entry_path(key);

  auto overwrite = [&](const std::string& bytes) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  };
  std::string original;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[65536];
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    std::fclose(f);
    original.assign(buf, n);
  }

  workload::ExperimentResult out;
  // Unparseable garbage.
  overwrite("not json at all");
  EXPECT_EQ(store.load(key, out, err), ResultStore::LoadStatus::kCorrupt);
  // Truncation (torn tail).
  overwrite(original.substr(0, original.size() / 2));
  EXPECT_EQ(store.load(key, out, err), ResultStore::LoadStatus::kCorrupt);
  // A flipped digit in the stored result: digest verification catches it
  // even though the document still parses.
  std::string tampered = original;
  const std::size_t pos = tampered.find("\"flows\": 100");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 12, "\"flows\": 101");
  overwrite(tampered);
  EXPECT_EQ(store.load(key, out, err), ResultStore::LoadStatus::kCorrupt);
  EXPECT_NE(err.find("digest"), std::string::npos) << err;
  // An entry filed under the wrong key.
  workload::ExperimentResult other;
  EXPECT_EQ(store.load(std::string(32, 'b'), other, err),
            ResultStore::LoadStatus::kMiss);
  fs::create_directories(fs::path(store.entry_path(std::string(32, 'b')))
                             .parent_path());
  fs::copy_file(path, store.entry_path(std::string(32, 'b')),
                fs::copy_options::overwrite_existing);
  overwrite(original);  // restore the real entry first
  EXPECT_EQ(store.load(std::string(32, 'b'), other, err),
            ResultStore::LoadStatus::kCorrupt);
  EXPECT_NE(err.find("key"), std::string::npos) << err;
}

TEST(ResultStore, CampaignHealsCorruptEntry) {
  const TempDir dir("heal");
  ResultStore store(dir.path.string());
  const CampaignSpec spec = tiny_campaign();
  RunOptions opts;
  opts.store = &store;

  CampaignRun cold;
  std::string err;
  ASSERT_TRUE(run_campaign(spec, opts, cold, err)) << err;
  const std::string report = report_json(cold);

  // Garble the entry on disk.
  const std::string path = store.entry_path(cold.cells[0].key);
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"schema\":\"conga-cell-v1\",\"truncated", f);
    std::fclose(f);
  }

  CampaignRun healed;
  ASSERT_TRUE(run_campaign(spec, opts, healed, err)) << err;
  EXPECT_EQ(healed.stats.corrupt, 1U);
  EXPECT_EQ(healed.stats.misses, 1U);
  EXPECT_EQ(healed.stats.hits, 0U);
  EXPECT_EQ(healed.origins[0], CellOrigin::kRecomputed);
  // The recomputation reproduced the original bytes...
  EXPECT_EQ(report_json(healed), report);
  // ...and overwrote the bad entry: the next run is a clean hit.
  CampaignRun warm;
  ASSERT_TRUE(run_campaign(spec, opts, warm, err)) << err;
  EXPECT_EQ(warm.stats.hits, 1U);
  EXPECT_EQ(warm.stats.corrupt, 0U);
}

TEST(ResultStore, FingerprintChangeInvalidatesEverything) {
  const TempDir dir("fingerprint");
  ResultStore store(dir.path.string());
  const CampaignSpec spec = tiny_campaign();
  RunOptions opts;
  opts.store = &store;
  std::string err;

  {
    const ScopedFingerprint fp("build-A");
    CampaignRun cold;
    ASSERT_TRUE(run_campaign(spec, opts, cold, err)) << err;
    EXPECT_EQ(cold.stats.misses, 1U);
    CampaignRun warm;
    ASSERT_TRUE(run_campaign(spec, opts, warm, err)) << err;
    EXPECT_EQ(warm.stats.hits, 1U);
  }
  {
    // "New code": every cached cell must be a miss, old entries untouched.
    const ScopedFingerprint fp("build-B");
    CampaignRun run;
    ASSERT_TRUE(run_campaign(spec, opts, run, err)) << err;
    EXPECT_EQ(run.stats.hits, 0U);
    EXPECT_EQ(run.stats.misses, 1U);
  }
  {
    // Rolling back to the old build finds the old entries again.
    const ScopedFingerprint fp("build-A");
    CampaignRun run;
    ASSERT_TRUE(run_campaign(spec, opts, run, err)) << err;
    EXPECT_EQ(run.stats.hits, 1U);
  }
}

TEST(ResultStore, ConcurrentWritersNeverTearEntries) {
  const TempDir dir("concurrent");
  ResultStore store(dir.path.string());

  // A handful of keys, many writers per key, readers racing the writers.
  // Every load must come back kHit (digest-verified) or kMiss — a kCorrupt
  // would mean a reader saw a torn entry.
  constexpr int kKeys = 4;
  constexpr int kWritersPerKey = 4;
  constexpr int kRoundsPerWriter = 12;
  std::vector<ExperimentSpec> specs(kKeys);
  std::vector<std::string> keys(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    specs[k] = small_spec();
    specs[k].traffic_seed = 100 + static_cast<std::uint64_t>(k);
    keys[k] = cell_key(specs[k], "fp");
  }

  std::atomic<std::uint64_t> corrupt_seen{0};
  std::atomic<std::uint64_t> failures{0};
  const std::size_t writers = kKeys * kWritersPerKey;
  const std::size_t tasks = writers + 4;  // plus 4 racing readers
  runtime::parallel_for(tasks, static_cast<int>(tasks), [&](std::size_t i) {
    std::string err;
    if (i < writers) {
      const int k = static_cast<int>(i) % kKeys;
      // Deterministic results: all writers of a key write identical bytes,
      // as real campaign workers would.
      const workload::ExperimentResult r =
          fake_result(1.0 + k, 1000 + static_cast<std::uint64_t>(k));
      for (int round = 0; round < kRoundsPerWriter; ++round) {
        if (!store.put(keys[k], "fp", canonical_json(specs[k]), r, err)) {
          failures.fetch_add(1);
        }
      }
    } else {
      workload::ExperimentResult out;
      for (int round = 0; round < kRoundsPerWriter * 4; ++round) {
        for (int k = 0; k < kKeys; ++k) {
          if (store.load(keys[k], out, err) ==
              ResultStore::LoadStatus::kCorrupt) {
            corrupt_seen.fetch_add(1);
          }
        }
      }
    }
  });

  EXPECT_EQ(failures.load(), 0U);
  EXPECT_EQ(corrupt_seen.load(), 0U);
  EXPECT_EQ(store.writes(), writers * kRoundsPerWriter);
  // Final state: every key verifies.
  for (int k = 0; k < kKeys; ++k) {
    workload::ExperimentResult out;
    std::string err;
    EXPECT_EQ(store.load(keys[k], out, err), ResultStore::LoadStatus::kHit)
        << err;
    EXPECT_EQ(out.avg_norm_fct, 1.0 + k);
  }
}

}  // namespace
}  // namespace conga::campaign
