// Tests for the TCP NewReno implementation: throughput, slow start,
// loss recovery, RTO behaviour, reordering, fairness.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "tcp/flow.hpp"

namespace conga::tcp {
namespace {

net::TopologyConfig tiny_topo() {
  net::TopologyConfig cfg;
  cfg.num_leaves = 2;
  cfg.num_spines = 1;
  cfg.hosts_per_leaf = 4;
  cfg.host_link_bps = 10e9;
  cfg.fabric_link_bps = 40e9;
  return cfg;
}

struct Rig {
  sim::Scheduler sched;
  net::Fabric fabric;

  explicit Rig(net::TopologyConfig topo = tiny_topo(), std::uint64_t seed = 1)
      : fabric(sched, topo, seed) {
    fabric.install_lb(lb::ecmp());
  }

  std::unique_ptr<TcpFlow> flow(net::HostId src, net::HostId dst,
                                std::uint64_t size, const TcpConfig& cfg,
                                std::uint16_t sport = 100) {
    net::FlowKey key;
    key.src_host = src;
    key.dst_host = dst;
    key.src_port = sport;
    key.dst_port = 200;
    return std::make_unique<TcpFlow>(sched, fabric.host(src),
                                     fabric.host(dst), key, size, cfg,
                                     FlowCompleteFn{});
  }
};

TcpConfig dc_tcp() {
  TcpConfig cfg;
  cfg.min_rto = sim::milliseconds(10);  // fine-grained timers for DC tests
  return cfg;
}

TEST(TcpConfig, MssExcludesHeaders) {
  TcpConfig cfg;
  EXPECT_EQ(cfg.mss(), 1460u);
  cfg.mtu = 9000;
  EXPECT_EQ(cfg.mss(), 8960u);
}

TEST(Tcp, SmallFlowCompletesQuickly) {
  Rig rig;
  auto f = rig.flow(0, 4, 10'000, dc_tcp());
  f->start();
  rig.sched.run();
  ASSERT_TRUE(f->complete());
  // 10 KB fits in the initial window: roughly one RTT plus transmission.
  EXPECT_LT(f->fct(), sim::microseconds(100));
}

TEST(Tcp, SingleFlowReachesLineRate) {
  Rig rig;
  const std::uint64_t size = 50'000'000;  // 50 MB
  auto f = rig.flow(0, 4, size, dc_tcp());
  f->start();
  rig.sched.run();
  ASSERT_TRUE(f->complete());
  const double gbps = size * 8.0 / sim::to_seconds(f->fct()) / 1e9;
  // Must fill most of the 10G access link (headers cost ~3%).
  EXPECT_GT(gbps, 8.5);
  EXPECT_LE(gbps, 10.0);
}

TEST(Tcp, CompletionDeliversExactByteCount) {
  Rig rig;
  const std::uint64_t size = 1'234'567;
  auto f = rig.flow(0, 4, size, dc_tcp());
  f->start();
  rig.sched.run();
  ASSERT_TRUE(f->complete());
  EXPECT_EQ(f->sink().delivered(), size);
  EXPECT_EQ(f->sender().bytes_acked(), size);
}

TEST(Tcp, SlowStartDoublesWindow) {
  Rig rig;
  TcpConfig cfg = dc_tcp();
  cfg.init_cwnd_pkts = 2;
  auto f = rig.flow(0, 4, 10'000'000, cfg);
  f->start();
  const double w0 = f->sender().cwnd_bytes();
  // After ~1 RTT (a few us in this fabric) the window should have grown
  // roughly 2x; sample after enough time for one full round trip.
  rig.sched.run_until(sim::microseconds(20));
  const double w1 = f->sender().cwnd_bytes();
  EXPECT_GE(w1, 1.8 * w0);
}

TEST(Tcp, ZeroByteFlowCompletesImmediately) {
  Rig rig;
  auto f = rig.flow(0, 4, 0, dc_tcp());
  f->start();
  rig.sched.run();
  EXPECT_TRUE(f->complete());
  EXPECT_EQ(f->fct(), 0);
}

TEST(Tcp, OneByteFlow) {
  Rig rig;
  auto f = rig.flow(0, 4, 1, dc_tcp());
  f->start();
  rig.sched.run();
  EXPECT_TRUE(f->complete());
}

TEST(Tcp, TwoFlowsShareBottleneckFairly) {
  Rig rig;
  // Both flows converge on host 4's 10G access link.
  auto f1 = rig.flow(0, 4, 30'000'000, dc_tcp(), 100);
  auto f2 = rig.flow(1, 4, 30'000'000, dc_tcp(), 300);
  f1->start();
  f2->start();
  rig.sched.run();
  ASSERT_TRUE(f1->complete());
  ASSERT_TRUE(f2->complete());
  // Drop-tail + NewReno without pacing is only loosely fair; require that
  // neither flow is starved (completion times within 3x) and that the link
  // stays work-conserving (60 MB over 10G ~= 48 ms + headers/slack).
  const double ratio = static_cast<double>(f1->fct()) /
                       static_cast<double>(f2->fct());
  EXPECT_GT(ratio, 1.0 / 3.0);
  EXPECT_LT(ratio, 3.0);
  const sim::TimeNs last =
      std::max(f1->completion_time(), f2->completion_time());
  EXPECT_LT(last, sim::milliseconds(60));
}

TEST(Tcp, AggregateThroughputSaturatesSharedLink) {
  Rig rig;
  std::vector<std::unique_ptr<TcpFlow>> flows;
  const std::uint64_t size = 10'000'000;
  for (int i = 0; i < 4; ++i) {
    flows.push_back(rig.flow(static_cast<net::HostId>(i % 2), 4, size,
                             dc_tcp(), static_cast<std::uint16_t>(100 + 16 * i)));
    flows.back()->start();
  }
  rig.sched.run();
  sim::TimeNs last = 0;
  for (auto& f : flows) {
    ASSERT_TRUE(f->complete());
    last = std::max(last, f->completion_time());
  }
  const double gbps = 4 * size * 8.0 / sim::to_seconds(last) / 1e9;
  EXPECT_GT(gbps, 8.0);
}

TEST(Tcp, RecoversFromDropsViaFastRetransmit) {
  // Tiny switch buffer forces tail drops; the flow must still complete and
  // use fast retransmit (not only timeouts).
  net::TopologyConfig topo = tiny_topo();
  topo.edge_queue_bytes = 30'000;  // ~20 packets
  Rig rig(topo);
  auto f1 = rig.flow(0, 4, 20'000'000, dc_tcp(), 100);
  auto f2 = rig.flow(1, 4, 20'000'000, dc_tcp(), 300);
  f1->start();
  f2->start();
  rig.sched.run();
  ASSERT_TRUE(f1->complete());
  ASSERT_TRUE(f2->complete());
  EXPECT_GT(f1->sender().retransmits() + f2->sender().retransmits(), 0u);
  // Goodput stays reasonable despite losses.
  const double gbps =
      40'000'000 * 8.0 /
      sim::to_seconds(std::max(f1->completion_time(), f2->completion_time())) /
      1e9;
  EXPECT_GT(gbps, 5.0);
}

TEST(Tcp, SenderTracksRtt) {
  Rig rig;
  auto f = rig.flow(0, 4, 1'000'000, dc_tcp());
  f->start();
  rig.sched.run();
  const sim::TimeNs base = rig.fabric.base_rtt(1500);
  EXPECT_GT(f->sender().srtt(), base / 2);
  // A lone unpaced flow fills the receiver-port buffer (bufferbloat): the
  // upper bound is base RTT + the full edge queue's drain time.
  const auto queue_delay = static_cast<sim::TimeNs>(
      rig.fabric.config().edge_queue_bytes * 8.0 /
      rig.fabric.config().host_link_bps * 1e9);
  EXPECT_LT(f->sender().srtt(), 2 * base + queue_delay);
}

TEST(Tcp, MinRtoIsRespected) {
  // Delay injection: break a flow by dropping everything (down link), then
  // verify the first retransmission waits at least min_rto.
  net::TopologyConfig topo = tiny_topo();
  Rig rig(topo);
  TcpConfig cfg;
  cfg.min_rto = sim::milliseconds(50);
  auto f = rig.flow(0, 4, 100'000, cfg);
  // Kill the host's uplink before starting: all data blackholed.
  rig.fabric.host_to_leaf(0)->set_up(false);
  f->start();
  rig.sched.run_until(sim::milliseconds(49));
  EXPECT_EQ(f->sender().timeouts(), 0u);
  rig.sched.run_until(sim::milliseconds(120));
  EXPECT_GE(f->sender().timeouts(), 1u);
}

TEST(Tcp, RtoBacksOffExponentially) {
  Rig rig;
  TcpConfig cfg;
  cfg.min_rto = sim::milliseconds(10);
  auto f = rig.flow(0, 4, 100'000, cfg);
  rig.fabric.host_to_leaf(0)->set_up(false);
  f->start();
  rig.sched.run_until(sim::milliseconds(35));
  const auto t1 = f->sender().timeouts();  // ~10ms, ~30ms
  rig.sched.run_until(sim::milliseconds(200));
  const auto t2 = f->sender().timeouts();  // + ~70ms, ~150ms
  EXPECT_GE(t1, 1u);
  EXPECT_LE(t1, 2u);
  EXPECT_GT(t2, t1);
  EXPECT_LE(t2, 5u) << "backoff must slow the retry rate";
}

TEST(Tcp, RecoversAfterBlackholeHeals) {
  Rig rig;
  TcpConfig cfg;
  cfg.min_rto = sim::milliseconds(5);
  auto f = rig.flow(0, 4, 500'000, cfg);
  rig.fabric.host_to_leaf(0)->set_up(false);
  f->start();
  rig.sched.run_until(sim::milliseconds(12));
  EXPECT_FALSE(f->complete());
  rig.fabric.host_to_leaf(0)->set_up(true);
  rig.sched.run();
  EXPECT_TRUE(f->complete());
}

TEST(Tcp, ReorderingProducesDupAcksAndOooBuffering) {
  // Per-packet spraying over spines of *unequal speed* reorders heavily
  // (equal-latency idle paths would preserve order).
  net::TopologyConfig topo = tiny_topo();
  topo.num_spines = 4;
  // One spine path 20x slower: its serialization time exceeds the sender's
  // packet spacing, so a queue builds there and spraying reorders.
  topo.overrides.push_back({0, 1, 0, 0.05});
  Rig rig(topo);
  rig.fabric.install_lb(lb::spray());
  auto f = rig.flow(0, 4, 5'000'000, dc_tcp());
  f->start();
  rig.sched.run();
  ASSERT_TRUE(f->complete());
  EXPECT_GT(f->sink().out_of_order_segments(), 0u);
}

TEST(Tcp, ReorderLedgerTracksSegmentsAndDistance) {
  // Same reordering rig as above; the sink's ledger must expose both the
  // OOO segment count and the worst gap (in bytes) ahead of rcv_nxt, and
  // the FlowHandle accessors must mirror the sink.
  net::TopologyConfig topo = tiny_topo();
  topo.num_spines = 4;
  topo.overrides.push_back({0, 1, 0, 0.05});
  Rig rig(topo);
  rig.fabric.install_lb(lb::spray());
  auto f = rig.flow(0, 4, 5'000'000, dc_tcp());
  f->start();
  rig.sched.run();
  ASSERT_TRUE(f->complete());
  ASSERT_GT(f->sink().out_of_order_segments(), 0u);
  // An OOO arrival lands at least one (possibly short) segment past
  // rcv_nxt, so the worst observed gap is a positive byte count.
  EXPECT_GE(f->sink().max_reorder_distance(), 1u);
  EXPECT_EQ(f->reorder_segments(), f->sink().out_of_order_segments());
  EXPECT_EQ(f->reorder_max_distance(), f->sink().max_reorder_distance());
}

TEST(Tcp, InOrderDeliveryLeavesLedgerEmpty) {
  Rig rig;  // single flow, single path: nothing can reorder
  auto f = rig.flow(0, 4, 1'000'000, dc_tcp());
  f->start();
  rig.sched.run();
  ASSERT_TRUE(f->complete());
  EXPECT_EQ(f->sink().out_of_order_segments(), 0u);
  EXPECT_EQ(f->sink().max_reorder_distance(), 0u);
  EXPECT_EQ(f->reorder_segments(), 0u);
  EXPECT_EQ(f->reorder_max_distance(), 0u);
}

TEST(Tcp, DelayedAcksHalveAckCount) {
  Rig rig;
  TcpConfig cfg1 = dc_tcp();
  TcpConfig cfg2 = dc_tcp();
  cfg2.ack_every = 2;
  auto f1 = rig.flow(0, 4, 1'000'000, cfg1, 100);
  f1->start();
  rig.sched.run();
  const auto acks_per_pkt = rig.fabric.host_to_leaf(4)->packets_sent();
  Rig rig2;
  auto f2 = rig2.flow(0, 4, 1'000'000, cfg2, 100);
  f2->start();
  rig2.sched.run();
  const auto acks_delayed = rig2.fabric.host_to_leaf(4)->packets_sent();
  ASSERT_TRUE(f1->complete());
  ASSERT_TRUE(f2->complete());
  EXPECT_LT(acks_delayed, acks_per_pkt * 3 / 4);
}

TEST(Tcp, JumboFramesReduceSegmentCount) {
  Rig rig;
  TcpConfig jumbo = dc_tcp();
  jumbo.mtu = 9000;
  auto f = rig.flow(0, 4, 9'000'000, jumbo);
  f->start();
  rig.sched.run();
  ASSERT_TRUE(f->complete());
  // ~9MB / 8960B ≈ 1005 segments (plus retransmits, if any).
  EXPECT_LT(f->sender().bytes_sent_total() / jumbo.mss(), 1100u);
}

TEST(Tcp, FlowsWithDistinctPortsDontInterfere) {
  Rig rig;
  auto f1 = rig.flow(0, 4, 100'000, dc_tcp(), 100);
  auto f2 = rig.flow(0, 4, 100'000, dc_tcp(), 116);
  f1->start();
  f2->start();
  rig.sched.run();
  EXPECT_TRUE(f1->complete());
  EXPECT_TRUE(f2->complete());
  EXPECT_EQ(f1->sink().delivered(), 100'000u);
  EXPECT_EQ(f2->sink().delivered(), 100'000u);
}

TEST(Tcp, CwndCappedByMaxCwnd) {
  Rig rig;
  TcpConfig cfg = dc_tcp();
  cfg.max_cwnd_bytes = 64 * 1024;
  auto f = rig.flow(0, 4, 20'000'000, cfg);
  f->start();
  rig.sched.run_until(sim::milliseconds(5));
  EXPECT_LE(f->sender().cwnd_bytes(), 64.0 * 1024 + 1);
  rig.sched.run();
  EXPECT_TRUE(f->complete());
}

TEST(Dctcp, KeepsQueueNearThreshold) {
  // DCTCP's point: full throughput with a short standing queue. Two senders
  // converge on one receiver port (a real switch bottleneck, where ECN
  // marking lives — a lone flow only queues at its own NIC).
  auto run_mode = [&](bool dctcp) {
    net::TopologyConfig topo = tiny_topo();
    if (dctcp) topo.ecn_threshold_bytes = 30'000;  // K ~= 20 packets
    Rig rig(topo);
    TcpConfig cfg = dc_tcp();
    cfg.dctcp = dctcp;
    auto f1 = rig.flow(0, 4, 20'000'000, cfg, 100);
    auto f2 = rig.flow(1, 4, 20'000'000, cfg, 300);
    f1->start();
    f2->start();
    rig.sched.run();
    EXPECT_TRUE(f1->complete());
    EXPECT_TRUE(f2->complete());
    const sim::TimeNs last =
        std::max(f1->completion_time(), f2->completion_time());
    const double gbps = 40'000'000 * 8.0 / sim::to_seconds(last) / 1e9;
    return std::pair<double, std::uint64_t>(
        gbps, rig.fabric.leaf_to_host(4)->queue().stats().max_bytes_seen);
  };
  const auto [tcp_gbps, tcp_queue] = run_mode(false);
  const auto [dctcp_gbps, dctcp_queue] = run_mode(true);
  EXPECT_GT(tcp_gbps, 6.0);  // drop-tail loss cycles cost some goodput
  EXPECT_GT(dctcp_gbps, 7.5) << "DCTCP must still fill the pipe";
  EXPECT_LT(dctcp_queue, tcp_queue / 3)
      << "DCTCP must keep the standing queue near K";
}

TEST(Dctcp, AlphaStaysInUnitInterval) {
  net::TopologyConfig topo = tiny_topo();
  topo.ecn_threshold_bytes = 20'000;
  Rig rig(topo);
  TcpConfig cfg = dc_tcp();
  cfg.dctcp = true;
  auto f1 = rig.flow(0, 4, 10'000'000, cfg, 100);
  auto f2 = rig.flow(1, 4, 10'000'000, cfg, 300);
  f1->start();
  f2->start();
  for (int ms = 1; ms <= 20; ++ms) {
    rig.sched.run_until(sim::milliseconds(ms));
    for (auto* f : {f1.get(), f2.get()}) {
      EXPECT_GE(f->sender().dctcp_alpha(), 0.0);
      EXPECT_LE(f->sender().dctcp_alpha(), 1.0);
    }
  }
  rig.sched.run();
  EXPECT_TRUE(f1->complete());
  EXPECT_TRUE(f2->complete());
}

TEST(Dctcp, SeesMarksUnderCongestion) {
  net::TopologyConfig topo = tiny_topo();
  topo.ecn_threshold_bytes = 20'000;
  Rig rig(topo);
  TcpConfig cfg = dc_tcp();
  cfg.dctcp = true;
  auto f1 = rig.flow(0, 4, 20'000'000, cfg, 100);
  auto f2 = rig.flow(1, 4, 20'000'000, cfg, 300);
  f1->start();
  f2->start();
  rig.sched.run();
  EXPECT_GT(rig.fabric.leaf_to_host(4)->queue().stats().ecn_marked_pkts, 0u);
  EXPECT_GT(f1->sender().dctcp_alpha() + f2->sender().dctcp_alpha(), 0.0);
}

TEST(Dctcp, NoEcnMeansPlainBehaviour) {
  // dctcp=true with no marking anywhere must behave like plain TCP.
  Rig rig;
  TcpConfig cfg = dc_tcp();
  cfg.dctcp = true;
  auto f = rig.flow(0, 4, 10'000'000, cfg);
  f->start();
  rig.sched.run();
  ASSERT_TRUE(f->complete());
  EXPECT_DOUBLE_EQ(f->sender().dctcp_alpha(), 0.0);
  const double gbps = 10'000'000 * 8.0 / sim::to_seconds(f->fct()) / 1e9;
  EXPECT_GT(gbps, 8.5);
}

TEST(Tlp, TailLossRecoversInRttScale) {
  // Drop a burst mid-flow (including the window tail) by briefly killing
  // the path, then heal it: with TLP the sender probes after ~2 SRTT
  // instead of waiting the 200 ms minRTO.
  Rig rig;
  TcpConfig cfg;
  cfg.min_rto = sim::milliseconds(200);  // Linux default
  cfg.max_cwnd_bytes = 30'000;           // keep the flow ACK-clocked
  auto f = rig.flow(0, 4, 2'000'000, cfg);
  f->start();
  rig.sched.run_until(sim::microseconds(800));
  rig.fabric.host_to_leaf(0)->set_up(false);
  rig.sched.run_until(sim::microseconds(860));
  rig.fabric.host_to_leaf(0)->set_up(true);
  rig.sched.run();
  ASSERT_TRUE(f->complete());
  EXPECT_LT(f->fct(), sim::milliseconds(50))
      << "TLP must beat the 200 ms RTO for tail losses";
  EXPECT_EQ(f->sender().timeouts(), 0u);
  EXPECT_GT(f->sender().retransmits(), 0u);
}

TEST(Tlp, DisabledFallsBackToRto) {
  Rig rig;
  TcpConfig cfg;
  cfg.min_rto = sim::milliseconds(200);
  cfg.max_cwnd_bytes = 30'000;
  cfg.tlp = false;
  auto f = rig.flow(0, 4, 2'000'000, cfg);
  f->start();
  rig.sched.run_until(sim::microseconds(800));
  rig.fabric.host_to_leaf(0)->set_up(false);
  rig.sched.run_until(sim::microseconds(860));
  rig.fabric.host_to_leaf(0)->set_up(true);
  rig.sched.run();
  ASSERT_TRUE(f->complete());
  EXPECT_GE(f->sender().timeouts(), 1u);
  EXPECT_GT(f->fct(), sim::milliseconds(100));
}

TEST(Tlp, NoSpuriousProbesOnCleanPath) {
  Rig rig;
  TcpConfig cfg = dc_tcp();
  auto f = rig.flow(0, 4, 10'000'000, cfg);
  f->start();
  rig.sched.run();
  ASSERT_TRUE(f->complete());
  EXPECT_EQ(f->sender().retransmits(), 0u)
      << "an idle-path flow must not probe";
}

TEST(Tcp, HighDupackThresholdToleratesReordering) {
  // Per-packet spraying over unequal paths: a reordering-resilient transport
  // (large dupack threshold) should see far fewer spurious retransmissions.
  auto run_k = [&](int k) {
    net::TopologyConfig topo = tiny_topo();
    topo.num_spines = 4;
    // One path 10x slower but still faster than its share of the offered
    // load, plus deep fabric queues: packets are delayed and reordered but
    // never dropped, so every retransmission below is spurious.
    topo.overrides.push_back({0, 1, 0, 0.1});
    topo.fabric_queue_bytes = 64 * 1024 * 1024;
    Rig rig(topo);
    rig.fabric.install_lb(lb::spray());
    TcpConfig cfg = dc_tcp();
    cfg.dupack_segments = k;
    auto f = rig.flow(0, 4, 5'000'000, cfg);
    f->start();
    rig.sched.run();
    EXPECT_TRUE(f->complete());
    return f->sender().retransmits();
  };
  const auto rtx_std = run_k(3);
  const auto rtx_resilient = run_k(64);
  EXPECT_GT(rtx_std, 0u);
  EXPECT_LT(rtx_resilient, rtx_std / 2)
      << "reordering resilience must suppress spurious retransmits";
}

TEST(Tcp, NewRenoModeStillCompletes) {
  // cfg.sack = false selects the classic dupack/NewReno path (ablation).
  net::TopologyConfig topo = tiny_topo();
  topo.edge_queue_bytes = 60'000;
  Rig rig(topo);
  TcpConfig cfg = dc_tcp();
  cfg.sack = false;
  auto f1 = rig.flow(0, 4, 10'000'000, cfg, 100);
  auto f2 = rig.flow(1, 4, 10'000'000, cfg, 300);
  f1->start();
  f2->start();
  rig.sched.run();
  EXPECT_TRUE(f1->complete());
  EXPECT_TRUE(f2->complete());
  EXPECT_EQ(f1->sink().delivered(), 10'000'000u);
}

TEST(Tcp, SackRecoversBurstLossFasterThanNewReno) {
  // Under a burst of drops (tiny switch buffer, competing flows), SACK
  // repairs all holes in ~1 RTT while NewReno repairs one hole per RTT.
  auto run_mode = [&](bool sack) {
    net::TopologyConfig topo = tiny_topo();
    topo.edge_queue_bytes = 45'000;  // ~30 packets
    Rig rig(topo);
    TcpConfig cfg = dc_tcp();
    cfg.sack = sack;
    auto f1 = rig.flow(0, 4, 15'000'000, cfg, 100);
    auto f2 = rig.flow(1, 4, 15'000'000, cfg, 300);
    f1->start();
    f2->start();
    rig.sched.run();
    EXPECT_TRUE(f1->complete());
    EXPECT_TRUE(f2->complete());
    return std::max(f1->completion_time(), f2->completion_time());
  };
  const sim::TimeNs with_sack = run_mode(true);
  const sim::TimeNs newreno = run_mode(false);
  EXPECT_LT(with_sack, newreno);
}

TEST(Tcp, SackDeliversExactlyUnderHeavyLoss) {
  net::TopologyConfig topo = tiny_topo();
  topo.edge_queue_bytes = 20'000;  // brutal: ~13 packets
  Rig rig(topo);
  auto f1 = rig.flow(0, 4, 5'000'000, dc_tcp(), 100);
  auto f2 = rig.flow(1, 4, 5'000'000, dc_tcp(), 300);
  auto f3 = rig.flow(2, 4, 5'000'000, dc_tcp(), 500);
  f1->start();
  f2->start();
  f3->start();
  rig.sched.run();
  for (auto* f : {f1.get(), f2.get(), f3.get()}) {
    ASSERT_TRUE(f->complete());
    EXPECT_EQ(f->sink().delivered(), 5'000'000u);
  }
}

TEST(Tcp, AcksCarrySackBlocksOnlyWhenEnabled) {
  // Structural check on the header plumbing via a reordering path.
  net::TopologyConfig topo = tiny_topo();
  topo.num_spines = 4;
  topo.overrides.push_back({0, 1, 0, 0.05});
  Rig rig(topo);
  rig.fabric.install_lb(lb::spray());
  TcpConfig nosack = dc_tcp();
  nosack.sack = false;
  auto f = rig.flow(0, 4, 2'000'000, nosack);
  f->start();
  rig.sched.run();
  EXPECT_TRUE(f->complete());
  EXPECT_GT(f->sink().out_of_order_segments(), 0u);
}

TEST(Tcp, FctScalesWithSize) {
  Rig rig;
  auto small = rig.flow(0, 4, 100'000, dc_tcp(), 100);
  auto large = rig.flow(1, 5, 10'000'000, dc_tcp(), 300);
  small->start();
  large->start();
  rig.sched.run();
  ASSERT_TRUE(small->complete());
  ASSERT_TRUE(large->complete());
  EXPECT_LT(small->fct(), large->fct());
}

}  // namespace
}  // namespace conga::tcp
