// Tests for the Flowlet Table (paper §3.4).
#include <gtest/gtest.h>

#include "core/flowlet_table.hpp"

namespace conga::core {
namespace {

using sim::microseconds;

net::FlowKey key(int i) {
  net::FlowKey k;
  k.src_host = i;
  k.dst_host = 1000 + i;
  k.src_port = static_cast<std::uint16_t>(i * 7 + 1);
  k.dst_port = 99;
  return k;
}

FlowletTableConfig cfg_with_gap(sim::TimeNs gap,
                                FlowletExpiry mode = FlowletExpiry::kTimestamp) {
  FlowletTableConfig cfg;
  cfg.gap = gap;
  cfg.expiry = mode;
  return cfg;
}

TEST(FlowletTable, MissOnFirstPacket) {
  FlowletTable t(cfg_with_gap(microseconds(500)));
  EXPECT_EQ(t.lookup(key(1), 0), -1);
}

TEST(FlowletTable, HitWithinGap) {
  FlowletTable t(cfg_with_gap(microseconds(500)));
  t.install(key(1), 3, 0);
  EXPECT_EQ(t.lookup(key(1), microseconds(100)), 3);
  EXPECT_EQ(t.lookup(key(1), microseconds(400)), 3);
}

TEST(FlowletTable, PacketsRefreshLiveness) {
  FlowletTable t(cfg_with_gap(microseconds(500)));
  t.install(key(1), 3, 0);
  // Keep touching every 400us; the flowlet must stay alive far beyond Tfl.
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(t.lookup(key(1), microseconds(400) * i), 3) << i;
  }
}

TEST(FlowletTable, ExpiresAfterGap) {
  FlowletTable t(cfg_with_gap(microseconds(500)));
  t.install(key(1), 3, 0);
  EXPECT_EQ(t.lookup(key(1), microseconds(501)), -1);
}

TEST(FlowletTable, ExactGapBoundaryStillAlive) {
  FlowletTable t(cfg_with_gap(microseconds(500)));
  t.install(key(1), 3, 0);
  EXPECT_EQ(t.lookup(key(1), microseconds(500)), 3);
}

TEST(FlowletTable, RemembersLastPortAfterExpiry) {
  // §3.5 tie-break: "preference given to the port cached in the (invalid)
  // entry" — the stale port must remain readable.
  FlowletTable t(cfg_with_gap(microseconds(500)));
  t.install(key(1), 5, 0);
  EXPECT_EQ(t.lookup(key(1), microseconds(2000)), -1);
  EXPECT_EQ(t.last_port(key(1)), 5);
}

TEST(FlowletTable, LastPortUnsetInitially) {
  FlowletTable t(cfg_with_gap(microseconds(500)));
  EXPECT_EQ(t.last_port(key(42)), -1);
}

TEST(FlowletTable, DistinctFlowsTrackedIndependently) {
  FlowletTable t(cfg_with_gap(microseconds(500)));
  t.install(key(1), 1, 0);
  t.install(key(2), 2, 0);
  EXPECT_EQ(t.lookup(key(1), microseconds(10)), 1);
  EXPECT_EQ(t.lookup(key(2), microseconds(10)), 2);
}

TEST(FlowletTable, CollisionsShareTheEntry) {
  // With a 1-entry table every flow collides — the entry is shared, exactly
  // as in the ASIC (paper Remark 1).
  FlowletTableConfig cfg = cfg_with_gap(microseconds(500));
  cfg.num_entries = 1;
  FlowletTable t(cfg);
  t.install(key(1), 4, 0);
  EXPECT_EQ(t.lookup(key(2), microseconds(10)), 4);  // different flow, same slot
}

TEST(FlowletTable, CountsNewFlowlets) {
  FlowletTable t(cfg_with_gap(microseconds(500)));
  t.install(key(1), 0, 0);
  t.install(key(2), 1, 0);
  t.install(key(1), 2, microseconds(1000));  // new flowlet of flow 1
  EXPECT_EQ(t.new_flowlets(), 3u);
}

TEST(FlowletTable, ActiveFlowletCount) {
  FlowletTable t(cfg_with_gap(microseconds(500)));
  t.install(key(1), 0, 0);
  t.install(key(2), 1, 0);
  t.install(key(3), 2, microseconds(450));
  EXPECT_EQ(t.active_flowlets(microseconds(460)), 3u);
  EXPECT_EQ(t.active_flowlets(microseconds(600)), 1u);  // only flow 3 alive
  EXPECT_EQ(t.active_flowlets(microseconds(5000)), 0u);
}

// --- age-bit mode: gaps detected between Tfl and 2*Tfl ---

TEST(FlowletTableAgeBit, NeverExpiresBeforeTfl) {
  FlowletTable t(cfg_with_gap(microseconds(500), FlowletExpiry::kAgeBit));
  // Touch at the very start of a period: survives at least until the second
  // tick after it, i.e. a full 2*Tfl here.
  t.install(key(1), 3, microseconds(500));  // exactly at tick 1
  EXPECT_EQ(t.lookup(key(1), microseconds(999)), 3);
  EXPECT_EQ(t.lookup(key(1), microseconds(1400)), 3)
      << "age bit cannot expire before the second tick";
}

TEST(FlowletTableAgeBit, AlwaysExpiredByTwoTfl) {
  FlowletTable t(cfg_with_gap(microseconds(500), FlowletExpiry::kAgeBit));
  // Touch just before a tick: the earliest possible expiry, just over Tfl.
  t.install(key(1), 3, microseconds(499));
  EXPECT_EQ(t.lookup(key(1), microseconds(1000)), -1)
      << "tick at 1000 finds the entry untouched since before tick at 500";
}

TEST(FlowletTableAgeBit, DetectionWindowIsBetweenTflAnd2Tfl) {
  const sim::TimeNs tfl = microseconds(500);
  for (int offset_us = 0; offset_us < 500; offset_us += 50) {
    FlowletTable t(cfg_with_gap(tfl, FlowletExpiry::kAgeBit));
    const sim::TimeNs touch = microseconds(offset_us);
    t.install(key(1), 3, touch);
    // Find the expiry time: first lookup returning -1.
    sim::TimeNs expiry = -1;
    for (sim::TimeNs probe = touch + 1; probe < touch + 3 * tfl;
         probe += microseconds(10)) {
      FlowletTable fresh(cfg_with_gap(tfl, FlowletExpiry::kAgeBit));
      fresh.install(key(1), 3, touch);
      if (fresh.lookup(key(1), probe) == -1) {
        expiry = probe;
        break;
      }
    }
    ASSERT_GT(expiry, 0) << "entry never expired";
    const sim::TimeNs gap = expiry - touch;
    EXPECT_GT(gap, tfl) << "offset " << offset_us;
    EXPECT_LE(gap, 2 * tfl + microseconds(10)) << "offset " << offset_us;
  }
}

TEST(FlowletTable, CongaFlowGapDisablesSplitting) {
  // CONGA-Flow uses Tfl = 13ms: any realistic intra-flow gap keeps the
  // flowlet alive, so a flow makes one decision.
  FlowletTable t(cfg_with_gap(sim::milliseconds(13)));
  t.install(key(1), 2, 0);
  for (int ms = 1; ms <= 12; ++ms) {
    EXPECT_EQ(t.lookup(key(1), sim::milliseconds(ms)), 2);
  }
}

}  // namespace
}  // namespace conga::core
