// Tests for Host packet demultiplexing and endpoint lifecycle.
#include <gtest/gtest.h>

#include <vector>

#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "net/host.hpp"

namespace conga::net {
namespace {

struct Rig {
  sim::Scheduler sched;
  Fabric fabric;
  Rig() : fabric(sched, small(), 1) { fabric.install_lb(lb::ecmp()); }
  static TopologyConfig small() {
    TopologyConfig cfg;
    cfg.num_leaves = 2;
    cfg.num_spines = 1;
    cfg.hosts_per_leaf = 2;
    return cfg;
  }
  PacketPtr pkt(const FlowKey& key, bool ack = false) {
    PacketPtr p = make_packet();
    p->flow = key;
    p->tcp.is_ack = ack;
    p->size_bytes = 500;
    return p;
  }
};

FlowKey key(std::uint16_t sport) { return FlowKey{0, 2, sport, 80}; }

TEST(Host, RegisteredEndpointReceivesItsFlow) {
  Rig rig;
  int got = 0;
  rig.fabric.host(2).register_flow(key(1), [&](PacketPtr) { ++got; });
  rig.fabric.host(0).send(rig.pkt(key(1)));
  rig.sched.run();
  EXPECT_EQ(got, 1);
}

TEST(Host, FlowsAreIsolated) {
  Rig rig;
  int got1 = 0, got2 = 0;
  rig.fabric.host(2).register_flow(key(1), [&](PacketPtr) { ++got1; });
  rig.fabric.host(2).register_flow(key(2), [&](PacketPtr) { ++got2; });
  rig.fabric.host(0).send(rig.pkt(key(2)));
  rig.fabric.host(0).send(rig.pkt(key(2)));
  rig.sched.run();
  EXPECT_EQ(got1, 0);
  EXPECT_EQ(got2, 2);
}

TEST(Host, AckRoutesToSameFlowKeyAtTheSender) {
  // The data-direction key demuxes both directions: the sender registers the
  // key and receives the reverse-travelling ACK.
  Rig rig;
  int acks = 0;
  rig.fabric.host(0).register_flow(key(9), [&](PacketPtr p) {
    if (p->tcp.is_ack) ++acks;
  });
  rig.fabric.host(2).send(rig.pkt(key(9), /*ack=*/true));
  rig.sched.run();
  EXPECT_EQ(acks, 1);
}

TEST(Host, DefaultHandlerCatchesUnknownFlows) {
  Rig rig;
  int unknown = 0;
  rig.fabric.host(2).set_default_handler([&](PacketPtr) { ++unknown; });
  rig.fabric.host(0).send(rig.pkt(key(42)));
  rig.sched.run();
  EXPECT_EQ(unknown, 1);
}

TEST(Host, UnknownFlowWithoutHandlerIsDropped) {
  Rig rig;
  rig.fabric.host(0).send(rig.pkt(key(43)));
  rig.sched.run();  // must not crash
  SUCCEED();
}

TEST(Host, UnregisterStopsDelivery) {
  Rig rig;
  int got = 0;
  rig.fabric.host(2).register_flow(key(5), [&](PacketPtr) { ++got; });
  rig.fabric.host(0).send(rig.pkt(key(5)));
  rig.sched.run();
  rig.fabric.host(2).unregister_flow(key(5));
  rig.fabric.host(0).send(rig.pkt(key(5)));
  rig.sched.run();
  EXPECT_EQ(got, 1);
}

TEST(Host, HandlerMayUnregisterItselfSafely) {
  Rig rig;
  int got = 0;
  Host& h = rig.fabric.host(2);
  h.register_flow(key(6), [&](PacketPtr) {
    ++got;
    h.unregister_flow(key(6));  // must not invalidate the running callback
  });
  rig.fabric.host(0).send(rig.pkt(key(6)));
  rig.fabric.host(0).send(rig.pkt(key(6)));
  rig.sched.run();
  EXPECT_EQ(got, 1);
}

TEST(Host, BytesReceivedAccumulates) {
  Rig rig;
  rig.fabric.host(2).set_default_handler([](PacketPtr) {});
  rig.fabric.host(0).send(rig.pkt(key(7)));
  rig.fabric.host(0).send(rig.pkt(key(8)));
  rig.sched.run();
  EXPECT_EQ(rig.fabric.host(2).bytes_received(), 1000u);
}

TEST(Host, IdentityAccessors) {
  Rig rig;
  EXPECT_EQ(rig.fabric.host(3).id(), 3);
  EXPECT_EQ(rig.fabric.host(3).leaf(), 1);
  EXPECT_EQ(rig.fabric.host(3).name(), "host3");
}

}  // namespace
}  // namespace conga::net
