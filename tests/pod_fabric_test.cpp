// Tests for the 3-tier pod fabric extension (§7 "Larger topologies").
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "lb/factories.hpp"
#include "net/pod_fabric.hpp"
#include "tcp/flow.hpp"

namespace conga::net {
namespace {

PodTopologyConfig small_pods() {
  PodTopologyConfig cfg;
  cfg.num_pods = 2;
  cfg.leaves_per_pod = 2;
  cfg.spines_per_pod = 2;
  cfg.hosts_per_leaf = 4;
  cfg.num_cores = 2;
  return cfg;
}

tcp::TcpConfig dc_tcp() {
  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(10);
  return t;
}

TEST(PodTopology, ValidatesConfig) {
  PodTopologyConfig cfg = small_pods();
  EXPECT_TRUE(cfg.validate().empty());
  cfg.num_cores = 0;
  EXPECT_FALSE(cfg.validate().empty());
  cfg = small_pods();
  cfg.core_overrides.push_back({5, 0, 0, 0.0});
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(PodFabric, WiresExpectedCounts) {
  sim::Scheduler sched;
  PodFabric fabric(sched, small_pods(), 3);
  EXPECT_EQ(fabric.num_hosts(), 16);
  EXPECT_EQ(fabric.leaf(0).uplinks().size(), 2u);  // one per pod spine
  // Every spine has 2 core uplinks; every core has 2 links into each pod.
  EXPECT_NE(fabric.spine_to_core(0, 0, 0), nullptr);
  EXPECT_NE(fabric.spine_to_core(1, 1, 1), nullptr);
  EXPECT_NE(fabric.core_to_spine(0, 1, 0), nullptr);
}

TEST(PodFabric, DirectoryAndPodMapping) {
  sim::Scheduler sched;
  PodFabric fabric(sched, small_pods(), 3);
  EXPECT_EQ(fabric.leaf_of(0), 0);
  EXPECT_EQ(fabric.leaf_of(5), 1);   // hosts 4..7 on leaf 1
  EXPECT_EQ(fabric.leaf_of(12), 3);  // hosts 12..15 on leaf 3
  EXPECT_EQ(fabric.pod_of_leaf(0), 0);
  EXPECT_EQ(fabric.pod_of_leaf(1), 0);
  EXPECT_EQ(fabric.pod_of_leaf(2), 1);
  EXPECT_EQ(fabric.pod_of_leaf(3), 1);
}

TEST(PodFabric, IntraPodTrafficStaysInPod) {
  sim::Scheduler sched;
  PodFabric fabric(sched, small_pods(), 3);
  fabric.install_lb(core::conga());
  PacketPtr p = make_packet();
  p->flow.src_host = 0;  // leaf 0, pod 0
  p->flow.dst_host = 4;  // leaf 1, pod 0
  p->flow.src_port = 1;
  p->flow.dst_port = 2;
  p->size_bytes = 1000;
  bool got = false;
  fabric.host(4).set_default_handler([&](PacketPtr) { got = true; });
  fabric.host(0).send(std::move(p));
  sched.run();
  EXPECT_TRUE(got);
  // No core link carried anything.
  for (int pod = 0; pod < 2; ++pod) {
    for (int s = 0; s < 2; ++s) {
      for (int c = 0; c < 2; ++c) {
        EXPECT_EQ(fabric.spine_to_core(pod, s, c)->packets_sent(), 0u);
      }
    }
  }
}

TEST(PodFabric, InterPodTrafficTraversesCore) {
  sim::Scheduler sched;
  PodFabric fabric(sched, small_pods(), 3);
  fabric.install_lb(core::conga());
  PacketPtr p = make_packet();
  p->flow.src_host = 0;   // pod 0
  p->flow.dst_host = 12;  // pod 1
  p->flow.src_port = 1;
  p->flow.dst_port = 2;
  p->size_bytes = 1000;
  bool got = false;
  fabric.host(12).set_default_handler([&](PacketPtr pkt) {
    got = true;
    EXPECT_FALSE(pkt->overlay.valid);
  });
  fabric.host(0).send(std::move(p));
  sched.run();
  EXPECT_TRUE(got);
  std::uint64_t core_pkts = 0;
  for (int s = 0; s < 2; ++s) {
    for (int c = 0; c < 2; ++c) {
      core_pkts += fabric.spine_to_core(0, s, c)->packets_sent();
    }
  }
  EXPECT_EQ(core_pkts, 1u);
}

TEST(PodFabric, TcpWorksAcrossPods) {
  sim::Scheduler sched;
  PodFabric fabric(sched, small_pods(), 3);
  fabric.install_lb(core::conga());
  net::FlowKey key;
  key.src_host = 0;
  key.dst_host = 12;
  key.src_port = 100;
  key.dst_port = 200;
  tcp::TcpFlow flow(sched, fabric.host(0), fabric.host(12), key, 5'000'000,
                    dc_tcp(), tcp::FlowCompleteFn{});
  flow.start();
  sched.run();
  ASSERT_TRUE(flow.complete());
  EXPECT_EQ(flow.sink().delivered(), 5'000'000u);
  const double gbps = 5'000'000 * 8.0 / sim::to_seconds(flow.fct()) / 1e9;
  EXPECT_GT(gbps, 8.0);
}

TEST(PodFabric, FailedCoreLinkRemovedAndRouted) {
  PodTopologyConfig cfg = small_pods();
  // Pod 0's spine 0 loses BOTH core uplinks: inter-pod traffic through that
  // spine is impossible, and the leaves must know.
  cfg.core_overrides.push_back({0, 0, 0, 0.0});
  cfg.core_overrides.push_back({0, 0, 1, 0.0});
  sim::Scheduler sched;
  PodFabric fabric(sched, cfg, 3);
  fabric.install_lb(core::conga());
  EXPECT_EQ(fabric.spine_to_core(0, 0, 0), nullptr);

  // Leaf 0's uplink 0 (spine 0) cannot reach remote leaves, but still
  // reaches the local pod.
  EXPECT_FALSE(fabric.leaf(0).uplink_reaches(0, 2));
  EXPECT_TRUE(fabric.leaf(0).uplink_reaches(0, 1));
  EXPECT_TRUE(fabric.leaf(0).uplink_reaches(1, 2));

  // End to end: inter-pod flows still complete via spine 1.
  net::FlowKey key;
  key.src_host = 0;
  key.dst_host = 12;
  key.src_port = 100;
  key.dst_port = 200;
  tcp::TcpFlow flow(sched, fabric.host(0), fabric.host(12), key, 1'000'000,
                    dc_tcp(), tcp::FlowCompleteFn{});
  flow.start();
  sched.run();
  EXPECT_TRUE(flow.complete());
  EXPECT_EQ(fabric.spine(0, 0).dropped_no_route(), 0u);
}

TEST(PodFabric, CongaAvoidsCongestedCorePath) {
  // Degrade pod0-spine1's core links to 10%: CONGA at the source leaf sees
  // the CE marks from the slow core path and shifts inter-pod flowlets to
  // spine 0, even though only the first hop is CONGA-controlled.
  PodTopologyConfig cfg = small_pods();
  cfg.core_overrides.push_back({0, 1, 0, 0.1});
  cfg.core_overrides.push_back({0, 1, 1, 0.1});
  sim::Scheduler sched;
  PodFabric fabric(sched, cfg, 3);
  fabric.install_lb(core::conga());

  tcp::TcpConfig t = dc_tcp();
  t.min_rto = sim::milliseconds(5);
  std::vector<std::unique_ptr<tcp::TcpFlow>> flows;
  for (int i = 0; i < 4; ++i) {
    net::FlowKey key;
    key.src_host = i;        // leaf 0, pod 0
    key.dst_host = 12 + i;   // leaf 3, pod 1
    key.src_port = static_cast<std::uint16_t>(3000 + 16 * i);
    key.dst_port = 80;
    flows.push_back(std::make_unique<tcp::TcpFlow>(
        sched, fabric.host(i), fabric.host(12 + i), key,
        std::uint64_t{1} << 40, t, tcp::FlowCompleteFn{}));
    flows.back()->start();
  }
  sched.run_until(sim::milliseconds(60));
  const auto& ups = fabric.leaf(0).uplinks();
  const double to_s0 = static_cast<double>(ups[0].link->bytes_sent());
  const double to_s1 = static_cast<double>(ups[1].link->bytes_sent());
  EXPECT_GT(to_s0 / (to_s0 + to_s1), 0.7)
      << "CONGA must route around the degraded core path";
}

TEST(PodFabric, EcmpSplitsBlindlyAcrossDegradedCore) {
  PodTopologyConfig cfg = small_pods();
  cfg.core_overrides.push_back({0, 1, 0, 0.1});
  cfg.core_overrides.push_back({0, 1, 1, 0.1});
  sim::Scheduler sched;
  PodFabric fabric(sched, cfg, 3);
  fabric.install_lb(lb::ecmp());
  tcp::TcpConfig t = dc_tcp();
  std::vector<std::unique_ptr<tcp::TcpFlow>> flows;
  for (int i = 0; i < 8; ++i) {
    net::FlowKey key;
    key.src_host = i % 4;
    key.dst_host = 12 + (i % 4);
    key.src_port = static_cast<std::uint16_t>(4000 + 16 * i);
    key.dst_port = 80;
    flows.push_back(std::make_unique<tcp::TcpFlow>(
        sched, fabric.host(key.src_host), fabric.host(key.dst_host), key,
        std::uint64_t{1} << 40, t, tcp::FlowCompleteFn{}));
    flows.back()->start();
  }
  sched.run_until(sim::milliseconds(60));
  const auto& ups = fabric.leaf(0).uplinks();
  const double to_s0 = static_cast<double>(ups[0].link->bytes_sent());
  const double to_s1 = static_cast<double>(ups[1].link->bytes_sent());
  // ECMP's flow split ignores the degradation entirely (bytes through the
  // degraded spine are throttled by TCP, so byte share < 0.5 — but nothing
  // like CONGA's decisive shift; flows stay pinned).
  EXPECT_GT(to_s1, 0.0);
  EXPECT_LT(to_s0 / (to_s0 + to_s1), 0.95);
}

}  // namespace
}  // namespace conga::net
