// Determinism regression tests: the digest primitives behave as specified
// (order-insensitive vs order-sensitive), and a small leaf-spine scenario run
// twice with the same seeds produces bit-identical FCT and event-trace
// digests — the library-level version of the tools/determinism_audit gate.
#include "debug/determinism.hpp"

#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"
#include "lb/factories.hpp"
#include "runtime/parallel_runner.hpp"
#include "stats/digest.hpp"
#include "stats/fct_collector.hpp"
#include "workload/flow_size_dist.hpp"

namespace conga {
namespace {

TEST(Digest, UnorderedDigestIgnoresOrder) {
  stats::UnorderedDigest a, b;
  for (std::uint64_t v : {7u, 42u, 999u, 7u}) a.add(v);
  for (std::uint64_t v : {999u, 7u, 7u, 42u}) b.add(v);
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.count(), b.count());
}

TEST(Digest, UnorderedDigestSeesContentChanges) {
  stats::UnorderedDigest a, b, c;
  for (std::uint64_t v : {7u, 42u}) a.add(v);
  for (std::uint64_t v : {7u, 43u}) b.add(v);
  for (std::uint64_t v : {7u, 42u, 42u}) c.add(v);
  EXPECT_NE(a.value(), b.value());
  EXPECT_NE(a.value(), c.value());  // multiplicity matters
}

TEST(Digest, TraceDigestIsOrderSensitive) {
  stats::TraceDigest ab, ba;
  ab.add(1);
  ab.add(2);
  ba.add(2);
  ba.add(1);
  EXPECT_NE(ab.value(), ba.value());

  stats::TraceDigest prefix;
  prefix.add(1);
  EXPECT_NE(prefix.value(), ab.value());
}

TEST(Digest, HashDoubleCollapsesSignedZero) {
  EXPECT_EQ(stats::hash_double(0.0), stats::hash_double(-0.0));
  EXPECT_NE(stats::hash_double(1.0), stats::hash_double(1.0000000001));
}

TEST(Digest, FctDigestIsOrderInsensitiveOverRecords) {
  stats::FctCollector fwd, rev, other;
  fwd.record(1000, 50, 10);
  fwd.record(2000, 70, 20);
  rev.record(2000, 70, 20);
  rev.record(1000, 50, 10);
  other.record(1000, 50, 10);
  other.record(2000, 71, 20);  // one ns of FCT drift
  EXPECT_EQ(stats::fct_digest(fwd), stats::fct_digest(rev));
  EXPECT_NE(stats::fct_digest(fwd), stats::fct_digest(other));
}

TEST(Digest, FctDigestFieldsAreNotInterchangeable) {
  stats::FctCollector a, b;
  a.record(1000, 50, 10);
  b.record(1000, 10, 50);  // fct and optimal swapped
  EXPECT_NE(stats::fct_digest(a), stats::fct_digest(b));
}

debug::DigestScenario small_scenario(std::uint64_t fabric_seed,
                                     std::uint64_t traffic_seed) {
  debug::DigestScenario s;
  s.topo.num_leaves = 3;
  s.topo.num_spines = 2;
  s.topo.hosts_per_leaf = 4;
  s.lb = core::conga();
  s.dist = workload::fixed_size(50'000);
  s.load = 0.4;
  s.warmup = sim::milliseconds(1);
  s.measure = sim::milliseconds(5);
  s.fabric_seed = fabric_seed;
  s.traffic_seed = traffic_seed;
  return s;
}

TEST(DeterminismRegression, SameSeedsSameDigests) {
  const debug::RunDigests a = debug::run_digest_trial(small_scenario(1, 7));
  const debug::RunDigests b = debug::run_digest_trial(small_scenario(1, 7));
  ASSERT_GT(a.flows, 0u);
  EXPECT_EQ(a.fct, b.fct);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.events, b.events);
  EXPECT_TRUE(a == b);
}

TEST(DeterminismRegression, SameSeedsSameDigestsUnderEcmp) {
  auto s = small_scenario(3, 11);
  s.lb = lb::ecmp();
  const debug::RunDigests a = debug::run_digest_trial(s);
  const debug::RunDigests b = debug::run_digest_trial(s);
  ASSERT_GT(a.flows, 0u);
  EXPECT_TRUE(a == b);
}

TEST(DeterminismRegression, GrayFailureCampaignIsDeterministicAcrossJobs) {
  // A gray-failure campaign adds a second consumer of randomness (per-link
  // loss draws). The digests must still be a pure function of the scenario:
  // identical when the same cell runs sequentially or on a thread pool.
  auto scenario = [](std::size_t cell) {
    debug::DigestScenario s = small_scenario(1, 7 + cell);
    fault::GrayFailureSpec g;
    g.leaf = static_cast<int>(cell % 3);
    g.drop_prob = 0.02;
    g.corrupt_prob = 0.01;
    g.start = sim::milliseconds(1);
    g.stop = sim::milliseconds(4);
    s.faults.add(g);
    return s;
  };
  const std::size_t kCells = 4;
  const auto sequential = runtime::parallel_map<debug::RunDigests>(
      kCells, 1, [&](std::size_t i) { return debug::run_digest_trial(scenario(i)); });
  const auto threaded = runtime::parallel_map<debug::RunDigests>(
      kCells, 4, [&](std::size_t i) { return debug::run_digest_trial(scenario(i)); });
  for (std::size_t i = 0; i < kCells; ++i) {
    ASSERT_GT(sequential[i].flows, 0u);
    EXPECT_TRUE(sequential[i] == threaded[i]) << "cell " << i;
  }
}

TEST(DeterminismRegression, DifferentTrafficSeedDiffers) {
  const debug::RunDigests a = debug::run_digest_trial(small_scenario(1, 7));
  const debug::RunDigests b = debug::run_digest_trial(small_scenario(1, 8));
  // Different arrivals: both digests must move (the trace certainly; the FCT
  // digest with overwhelming probability).
  EXPECT_NE(a.trace, b.trace);
  EXPECT_NE(a.fct, b.fct);
}

}  // namespace
}  // namespace conga
