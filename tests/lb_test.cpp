// Tests for the baseline load balancers: ECMP, spray, local-aware, weighted.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "lb/factories.hpp"
#include "net/fabric.hpp"

namespace conga::lb {
namespace {

net::TopologyConfig topo(int spines = 4) {
  net::TopologyConfig cfg;
  cfg.num_leaves = 2;
  cfg.num_spines = spines;
  cfg.hosts_per_leaf = 2;
  return cfg;
}

net::Packet packet_for_flow(int i) {
  net::Packet p;
  p.flow.src_host = 0;
  p.flow.dst_host = 2;
  p.flow.src_port = static_cast<std::uint16_t>(i);
  p.flow.dst_port = static_cast<std::uint16_t>(i >> 16);
  return p;
}

TEST(EcmpLb, DeterministicPerFlow) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(), 5);
  fabric.install_lb(ecmp());
  auto* lb = fabric.leaf(0).load_balancer();
  net::Packet p = packet_for_flow(12345);
  const int first = lb->select_uplink(p, 1, 0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(lb->select_uplink(p, 1, sim::microseconds(i)), first);
  }
}

TEST(EcmpLb, HashesApproximatelyUniform) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(4), 5);
  fabric.install_lb(ecmp());
  auto* lb = fabric.leaf(0).load_balancer();
  std::map<int, int> hist;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    net::Packet p = packet_for_flow(i);
    ++hist[lb->select_uplink(p, 1, 0)];
  }
  ASSERT_EQ(hist.size(), 4u);
  for (const auto& [port, count] : hist) {
    EXPECT_NEAR(count, n / 4, n / 4 * 0.1) << "port " << port;
  }
}

TEST(EcmpLb, DifferentSeedsGiveDifferentMappings) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(4), 5);
  fabric.install_lb(ecmp());
  auto* lb0 = fabric.leaf(0).load_balancer();
  auto* lb1 = fabric.leaf(1).load_balancer();
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    net::Packet p = packet_for_flow(i);
    if (lb0->select_uplink(p, 1, 0) == lb1->select_uplink(p, 0, 0)) ++same;
  }
  // Independent hashes agree ~1/4 of the time on 4 ports.
  EXPECT_GT(same, 100);
  EXPECT_LT(same, 500);
}

TEST(EcmpLb, AckDirectionHashesIndependently) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(4), 5);
  fabric.install_lb(ecmp());
  auto* lb = fabric.leaf(0).load_balancer();
  int differs = 0;
  for (int i = 0; i < 256; ++i) {
    net::Packet data = packet_for_flow(i);
    net::Packet ack = packet_for_flow(i);
    ack.tcp.is_ack = true;
    if (lb->select_uplink(data, 1, 0) != lb->select_uplink(ack, 1, 0)) {
      ++differs;
    }
  }
  EXPECT_GT(differs, 100);  // reversed tuple hashes differently most times
}

TEST(SprayLb, SpreadsPacketsOfOneFlow) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(4), 5);
  fabric.install_lb(spray());
  auto* lb = fabric.leaf(0).load_balancer();
  net::Packet p = packet_for_flow(1);
  std::set<int> used;
  for (int i = 0; i < 200; ++i) used.insert(lb->select_uplink(p, 1, 0));
  EXPECT_EQ(used.size(), 4u);
}

TEST(LocalAwareLb, PicksLeastLoadedLocalUplink) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(2), 5);
  fabric.install_lb(local_aware());
  auto& leaf = fabric.leaf(0);
  leaf.uplinks()[0].link->dre().add(1 << 22, 0);
  net::Packet p = packet_for_flow(9);
  EXPECT_EQ(leaf.load_balancer()->select_uplink(p, 1, 0), 1);
}

TEST(LocalAwareLb, IgnoresRemoteCongestion) {
  // The defining flaw (§2.4): only local DREs matter. Construct equal local
  // load and verify the decision does not depend on anything else.
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(2), 5);
  fabric.install_lb(local_aware());
  auto& leaf = fabric.leaf(0);
  leaf.uplinks()[0].link->dre().add(1000, 0);
  leaf.uplinks()[1].link->dre().add(2000, 0);
  net::Packet p = packet_for_flow(10);
  EXPECT_EQ(leaf.load_balancer()->select_uplink(p, 1, 0), 0);
}

TEST(LocalAwareLb, FlowletStickinessHolds) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(2), 5);
  fabric.install_lb(local_aware());
  auto& leaf = fabric.leaf(0);
  net::Packet p = packet_for_flow(11);
  const int first = leaf.load_balancer()->select_uplink(p, 1, 0);
  // Make the other uplink cheaper; within the gap the flow must not move.
  leaf.uplinks()[static_cast<std::size_t>(first)].link->dre().add(1 << 22,
                                                                  100);
  EXPECT_EQ(leaf.load_balancer()->select_uplink(p, 1, sim::microseconds(100)),
            first);
}

TEST(WeightedLb, RespectsWeights) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(2), 5);
  fabric.install_lb(weighted({2.0, 1.0}));
  auto* lb = fabric.leaf(0).load_balancer();
  std::map<int, int> hist;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    net::Packet p = packet_for_flow(i);
    ++hist[lb->select_uplink(p, 1, 0)];
  }
  EXPECT_NEAR(static_cast<double>(hist[0]) / n, 2.0 / 3.0, 0.03);
  EXPECT_NEAR(static_cast<double>(hist[1]) / n, 1.0 / 3.0, 0.03);
}

TEST(WeightedLb, ZeroWeightNeverChosen) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(2), 5);
  fabric.install_lb(weighted({1.0, 0.0}));
  auto* lb = fabric.leaf(0).load_balancer();
  for (int i = 0; i < 1000; ++i) {
    net::Packet p = packet_for_flow(i);
    EXPECT_EQ(lb->select_uplink(p, 1, 0), 0);
  }
}

TEST(WeightedLb, FlowletsStickWithinGap) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(2), 5);
  fabric.install_lb(weighted({1.0, 1.0}));
  auto* lb = fabric.leaf(0).load_balancer();
  net::Packet p = packet_for_flow(77);
  const int first = lb->select_uplink(p, 1, 0);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(lb->select_uplink(p, 1, sim::microseconds(100) * i), first);
  }
}

TEST(LocalEqualLb, EnforcesEqualByteSplit) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(2), 5);
  fabric.install_lb(local_equal());
  auto& leaf = fabric.leaf(0);
  // Pretend uplink 0 already transmitted a lot: the next flowlets must all
  // land on uplink 1 until its byte counter catches up.
  // (Byte counters only move via real transmissions, so send real packets.)
  auto* balancer = leaf.load_balancer();
  net::Packet p = packet_for_flow(500);
  const int first = balancer->select_uplink(p, 1, 0);
  EXPECT_GE(first, 0);
  EXPECT_LT(first, 2);
}

TEST(LocalEqualLb, AlternatesWhenCountersEqual) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(2), 5);
  fabric.install_lb(local_equal());
  auto* balancer = fabric.leaf(0).load_balancer();
  // With all counters at zero every new flowlet picks uplink 0 (stable
  // argmin); distinct flows collapse onto one port until bytes move.
  for (int i = 0; i < 5; ++i) {
    net::Packet p = packet_for_flow(600 + i);
    EXPECT_EQ(balancer->select_uplink(p, 1, 0), 0);
  }
}

TEST(LocalEqualLb, RespectsReachability) {
  sim::Scheduler sched;
  net::TopologyConfig cfg = topo(2);
  cfg.overrides.push_back({0, 0, 0, 0.0});  // leaf0 loses its S0 uplink
  net::Fabric fabric(sched, cfg, 5);
  fabric.install_lb(local_equal());
  auto* balancer = fabric.leaf(0).load_balancer();
  net::Packet p = packet_for_flow(700);
  // Only one uplink survives at leaf 0.
  EXPECT_EQ(fabric.leaf(0).uplinks().size(), 1u);
  EXPECT_EQ(balancer->select_uplink(p, 1, 0), 0);
}

TEST(ReachabilityFiltering, AllBalancersAvoidDeadSpines) {
  // Leaf1 keeps both uplinks, but spine 1 loses its downlink to leaf 0:
  // traffic leaf1 -> leaf0 must never use leaf1's uplink to spine 1.
  net::TopologyConfig cfg = topo(2);
  cfg.overrides.push_back({0, 1, 0, 0.0});  // kills the leaf0<->spine1 pair
  for (const auto& factory :
       {ecmp(), spray(), local_aware(), local_equal(),
        weighted({1.0, 1.0}), core::conga()}) {
    sim::Scheduler sched;
    net::Fabric fabric(sched, cfg, 5);
    fabric.install_lb(factory);
    auto& leaf1 = fabric.leaf(1);
    ASSERT_EQ(leaf1.uplinks().size(), 2u);
    int spine1_uplink = -1;
    for (int i = 0; i < 2; ++i) {
      if (leaf1.uplinks()[static_cast<std::size_t>(i)].spine == 1) {
        spine1_uplink = i;
      }
    }
    ASSERT_GE(spine1_uplink, 0);
    for (int i = 0; i < 64; ++i) {
      net::Packet p;
      p.flow.src_host = 2;  // on leaf 1
      p.flow.dst_host = 0;  // on leaf 0
      p.flow.src_port = static_cast<std::uint16_t>(i);
      p.flow.dst_port = 9;
      EXPECT_NE(leaf1.load_balancer()->select_uplink(p, 0, i), spine1_uplink)
          << leaf1.load_balancer()->name();
    }
  }
}

TEST(Names, AreStable) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(2), 5);
  fabric.install_lb(ecmp());
  EXPECT_EQ(fabric.leaf(0).load_balancer()->name(), "ECMP");
  fabric.install_lb(spray());
  EXPECT_EQ(fabric.leaf(0).load_balancer()->name(), "Spray");
  fabric.install_lb(local_aware());
  EXPECT_EQ(fabric.leaf(0).load_balancer()->name(), "Local");
  fabric.install_lb(local_equal());
  EXPECT_EQ(fabric.leaf(0).load_balancer()->name(), "LocalEq");
  fabric.install_lb(weighted({1, 1}));
  EXPECT_EQ(fabric.leaf(0).load_balancer()->name(), "Weighted");
  fabric.install_lb(core::conga());
  EXPECT_EQ(fabric.leaf(0).load_balancer()->name(), "CONGA");
  fabric.install_lb(core::conga_flow());
  EXPECT_EQ(fabric.leaf(0).load_balancer()->name(), "CONGA-Flow");
}

}  // namespace
}  // namespace conga::lb
