// Liveness watchdog: silent non-progress becomes a signal. A stalled flow is
// reported once per episode, healthy flows never are, and an idle watchdog
// schedules nothing at all.
#include "debug/watchdog.hpp"

#include <gtest/gtest.h>

#include "telemetry/telemetry.hpp"

namespace conga::debug {
namespace {

/// A FlowHandle whose progress the test scripts directly.
class FakeFlow final : public tcp::FlowHandle {
 public:
  FakeFlow() : FlowHandle(1'000'000, 0) {}
  void start() override {}
  std::uint64_t progress_bytes() const override { return bytes_; }
  void set_progress(std::uint64_t b) { bytes_ = b; }

 private:
  std::uint64_t bytes_ = 0;
};

WatchdogConfig fast_config() {
  WatchdogConfig cfg;
  cfg.horizon = sim::milliseconds(1);
  cfg.poll_interval = sim::microseconds(100);
  return cfg;
}

TEST(Watchdog, ReportsAStalledFlowOncePerEpisode) {
  sim::Scheduler sched;
  LivenessWatchdog wd(sched, fast_config());
  FakeFlow flow;
  wd.watch(7, &flow);

  sched.run_until(sim::milliseconds(5));
  ASSERT_EQ(wd.stall_count(), 1u) << "one episode, one report";
  EXPECT_EQ(wd.stalls()[0].tag, 7u);
  EXPECT_EQ(wd.stalls()[0].progress_bytes, 0u);
  EXPECT_EQ(wd.stalls()[0].last_progress, 0);
  EXPECT_GE(wd.stalls()[0].detected, sim::milliseconds(1));
  EXPECT_LE(wd.stalls()[0].detected,
            sim::milliseconds(1) + sim::microseconds(200));
  EXPECT_EQ(wd.currently_stalled(), 1u);
  wd.unwatch(7);
  EXPECT_EQ(wd.currently_stalled(), 0u);
}

TEST(Watchdog, HealthyFlowIsNeverReported) {
  sim::Scheduler sched;
  LivenessWatchdog wd(sched, fast_config());
  FakeFlow flow;
  wd.watch(1, &flow);

  // Advance progress every 500 us — always inside the 1 ms horizon. (The
  // run stops 400 us after the last update, before the gap looks stalled.)
  for (int i = 1; i <= 10; ++i) {
    sched.schedule_at(i * sim::microseconds(500),
                      [&flow, i] { flow.set_progress(1000u * i); });
  }
  sched.run_until(sim::microseconds(5400));
  EXPECT_EQ(wd.stall_count(), 0u);
  EXPECT_EQ(wd.currently_stalled(), 0u);
  wd.unwatch(1);
}

TEST(Watchdog, StallResumeStallYieldsTwoReports) {
  sim::Scheduler sched;
  LivenessWatchdog wd(sched, fast_config());
  FakeFlow flow;
  wd.watch(3, &flow);

  // Stall until ~1 ms (first report), resume at 2 ms, stall again.
  sched.schedule_at(sim::milliseconds(2), [&flow] { flow.set_progress(4096); });
  sched.run_until(sim::microseconds(2500));
  EXPECT_EQ(wd.stall_count(), 1u);
  EXPECT_EQ(wd.currently_stalled(), 0u) << "progress ended the episode";

  sched.run_until(sim::milliseconds(5));
  ASSERT_EQ(wd.stall_count(), 2u) << "a second stall is a new episode";
  EXPECT_EQ(wd.stalls()[1].tag, 3u);
  EXPECT_EQ(wd.stalls()[1].progress_bytes, 4096u);
  EXPECT_EQ(wd.currently_stalled(), 1u);
  wd.unwatch(3);
}

TEST(Watchdog, IdleWatchdogSchedulesNothing) {
  sim::Scheduler sched;
  LivenessWatchdog wd(sched, fast_config());
  sched.run();
  EXPECT_EQ(sched.events_dispatched(), 0u) << "pay-for-what-you-use";
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(Watchdog, PollingStopsWhenTheWatchSetEmpties) {
  sim::Scheduler sched;
  LivenessWatchdog wd(sched, fast_config());
  FakeFlow flow;
  wd.watch(1, &flow);
  sched.schedule_at(sim::microseconds(250), [&wd] { wd.unwatch(1); });
  // If polling did not stop, run() would never terminate.
  sched.run();
  EXPECT_EQ(wd.stall_count(), 0u);
  EXPECT_LE(sched.events_dispatched(), 5u);

  // Watching again resumes polling.
  wd.watch(2, &flow);
  sched.run_until(sched.now() + sim::milliseconds(3));
  EXPECT_EQ(wd.stall_count(), 1u);
  wd.unwatch(2);
}

TEST(Watchdog, FlowMonitorInterfaceDrivesWatchAndUnwatch) {
  sim::Scheduler sched;
  LivenessWatchdog wd(sched, fast_config());
  FakeFlow flow;
  tcp::FlowMonitor& mon = wd;
  mon.on_flow_started(42, flow);
  EXPECT_EQ(wd.watched(), 1u);
  mon.on_flow_finished(42);
  EXPECT_EQ(wd.watched(), 0u);
  // Unwatching an unknown tag is harmless.
  mon.on_flow_finished(42);
  EXPECT_EQ(wd.watched(), 0u);
}

TEST(Watchdog, StallReportsEmitTelemetry) {
  sim::Scheduler sched;
  telemetry::TraceSink sink;
  LivenessWatchdog wd(sched, fast_config());
  wd.attach_telemetry(&sink);
  FakeFlow flow;
  wd.watch(9, &flow);
  sched.run_until(sim::milliseconds(2));
  ASSERT_EQ(wd.stall_count(), 1u);
  wd.unwatch(9);

  if (!telemetry::compiled_in()) return;
  const telemetry::ComponentId comp = sink.find_component("watchdog");
  ASSERT_NE(comp, telemetry::kInvalidComponent);
  bool found = false;
  for (const telemetry::Event& e : sink.events(comp)) {
    if (e.type == telemetry::EventType::kFlowStalled && e.a == 9u) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace conga::debug
