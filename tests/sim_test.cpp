// Tests for the discrete-event scheduler and RNG utilities.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace conga::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler sched;
  EXPECT_EQ(sched.now(), 0);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(Scheduler, FiresEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(30, [&] { order.push_back(3); });
  sched.schedule_at(10, [&] { order.push_back(1); });
  sched.schedule_at(20, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30);
}

TEST(Scheduler, EqualTimestampsFireInScheduleOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, NowAdvancesToEventTime) {
  Scheduler sched;
  TimeNs seen = -1;
  sched.schedule_at(123456, [&] { seen = sched.now(); });
  sched.run();
  EXPECT_EQ(seen, 123456);
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  Scheduler sched;
  TimeNs seen = -1;
  sched.schedule_at(100, [&] {
    sched.schedule_after(50, [&] { seen = sched.now(); });
  });
  sched.run();
  EXPECT_EQ(seen, 150);
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler sched;
  TimeNs seen = -1;
  sched.schedule_at(100, [&] {
    sched.schedule_at(10, [&] { seen = sched.now(); });  // in the past
  });
  sched.run();
  EXPECT_EQ(seen, 100);
}

TEST(Scheduler, CancelPreventsDispatch) {
  Scheduler sched;
  bool fired = false;
  const EventId id = sched.schedule_at(10, [&] { fired = true; });
  sched.cancel(id);
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelInvalidIdIsNoop) {
  Scheduler sched;
  sched.cancel(kInvalidEventId);
  sched.cancel(9999);  // never allocated
  bool fired = false;
  sched.schedule_at(1, [&] { fired = true; });
  sched.run();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, CancelAfterFireIsNoop) {
  Scheduler sched;
  const EventId id = sched.schedule_at(1, [] {});
  sched.run();
  sched.cancel(id);  // already fired
  SUCCEED();
}

TEST(Scheduler, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Scheduler sched;
  int count = 0;
  sched.schedule_at(10, [&] { ++count; });
  sched.schedule_at(20, [&] { ++count; });
  sched.schedule_at(30, [&] { ++count; });
  sched.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sched.now(), 20);
  sched.run_until(100);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sched.now(), 100);
}

TEST(Scheduler, StopHaltsRun) {
  Scheduler sched;
  int count = 0;
  sched.schedule_at(1, [&] {
    ++count;
    sched.stop();
  });
  sched.schedule_at(2, [&] { ++count; });
  sched.run();
  EXPECT_EQ(count, 1);
  sched.run();  // resumes
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sched.schedule_after(1, recurse);
  };
  sched.schedule_at(0, recurse);
  sched.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sched.now(), 99);
}

TEST(Scheduler, DispatchCountTracksEvents) {
  Scheduler sched;
  for (int i = 0; i < 7; ++i) sched.schedule_at(i, [] {});
  sched.run();
  EXPECT_EQ(sched.events_dispatched(), 7u);
}

TEST(Scheduler, MoveOnlyCaptureIsSupported) {
  Scheduler sched;
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  sched.schedule_at(1, [p = std::move(payload), &seen] { seen = *p; });
  sched.run();
  EXPECT_EQ(seen, 42);
}

// Regression: cancel() on an already-fired or never-valid id used to insert
// into the lazy-cancel set forever, so pending() (heap size minus cancelled
// size) underflowed and wrapped to a huge size_t. The generation-checked
// slots make such cancels true no-ops on the accounting.
TEST(Scheduler, PendingSurvivesBogusCancels) {
  Scheduler sched;
  const EventId id = sched.schedule_at(1, [] {});
  EXPECT_EQ(sched.pending(), 1u);
  sched.run();
  EXPECT_EQ(sched.pending(), 0u);
  sched.cancel(id);              // already fired
  sched.cancel(id);              // twice
  sched.cancel(kInvalidEventId); // never valid
  sched.cancel(9999);            // forged
  EXPECT_EQ(sched.pending(), 0u);
  sched.schedule_at(2, [] {});
  EXPECT_EQ(sched.pending(), 1u);  // pre-fix: wrapped near SIZE_MAX
  sched.run();
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(Scheduler, DoubleCancelDecrementsPendingOnce) {
  Scheduler sched;
  const EventId a = sched.schedule_at(5, [] {});
  sched.schedule_at(6, [] {});
  EXPECT_EQ(sched.pending(), 2u);
  sched.cancel(a);
  EXPECT_EQ(sched.pending(), 1u);
  sched.cancel(a);  // second cancel of the same event: no-op
  EXPECT_EQ(sched.pending(), 1u);
  sched.run();
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(Scheduler, StaleIdCannotCancelSlotReuse) {
  // After an event fires, its slot is recycled for the next event with a
  // fresh generation; the stale id must not cancel the new occupant.
  Scheduler sched;
  const EventId first = sched.schedule_at(1, [] {});
  sched.run();
  bool fired = false;
  sched.schedule_at(2, [&] { fired = true; });  // reuses the slot
  sched.cancel(first);                          // stale generation
  EXPECT_EQ(sched.pending(), 1u);
  sched.run();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, HeavyCancelChurnKeepsOrderAndAccounting) {
  // Interleaved schedule/cancel churn (the TCP timer pattern) across a
  // backlog: survivors fire in (time, schedule order) and pending() stays
  // exact throughout.
  Scheduler sched;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(sched.schedule_at(100 + (i % 10), [&fired, i] {
      fired.push_back(i);
    }));
  }
  std::size_t expected = 200;
  for (int i = 0; i < 200; i += 2) {  // cancel the even half
    sched.cancel(ids[static_cast<std::size_t>(i)]);
    --expected;
    ASSERT_EQ(sched.pending(), expected);
  }
  sched.run();
  EXPECT_EQ(sched.pending(), 0u);
  ASSERT_EQ(fired.size(), 100u);
  // Survivors (odd i) grouped by time bucket (100 + i%10), schedule order
  // within a bucket.
  std::vector<int> expected_order;
  for (int bucket = 1; bucket < 10; bucket += 2) {
    for (int i = bucket; i < 200; i += 10) expected_order.push_back(i);
  }
  EXPECT_EQ(fired, expected_order);
}

TEST(Scheduler, CancelDestroysPayloadEagerly) {
  // Cancelling an event frees its captured payload immediately (pooled
  // packets must return to the pool without waiting for the node to
  // surface in the heap).
  Scheduler sched;
  auto payload = std::make_shared<int>(7);
  std::weak_ptr<int> watch = payload;
  const EventId id = sched.schedule_at(1000, [p = std::move(payload)] {
    (void)*p;
  });
  EXPECT_FALSE(watch.expired());
  sched.cancel(id);
  EXPECT_TRUE(watch.expired());
  sched.run();
}

TEST(Scheduler, CancelledHeadSkippedByRunUntil) {
  Scheduler sched;
  bool fired_a = false, fired_b = false;
  const EventId a = sched.schedule_at(5, [&] { fired_a = true; });
  sched.schedule_at(10, [&] { fired_b = true; });
  sched.cancel(a);
  sched.run_until(10);
  EXPECT_FALSE(fired_a);
  EXPECT_TRUE(fired_b);
}

TEST(Rng, DeterministicWithSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1 << 30) == b.uniform_int(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, IndexCoversRange) {
  Rng rng(13);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) ++hits[rng.index(10)];
  for (int h : hits) EXPECT_GT(h, 800);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.fork();
  // The child stream should not replicate the parent stream.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.uniform_int(0, 1 << 30) == child.uniform_int(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, StreamSeedIsDrawOrderIndependent) {
  // Keyed streams are a pure function of (seed, key): consuming draws from
  // the parent must not change them — unlike fork().
  Rng fresh(42);
  Rng consumed(42);
  for (int i = 0; i < 100; ++i) (void)consumed.uniform();
  for (std::uint64_t key : {0ULL, 1ULL, (1ULL << 56) | 3ULL, ~0ULL}) {
    EXPECT_EQ(fresh.stream_seed(key), consumed.stream_seed(key));
  }
}

TEST(Rng, StreamSeedSeparatesKeysAndSeeds) {
  Rng rng(42);
  EXPECT_NE(rng.stream_seed(1), rng.stream_seed(2));
  EXPECT_NE(rng.stream_seed((1ULL << 56) | 0ULL),
            rng.stream_seed((2ULL << 56) | 0ULL));
  Rng other(43);
  EXPECT_NE(rng.stream_seed(1), other.stream_seed(1));
}

TEST(Rng, StreamProducesIndependentReproducibleChildren) {
  Rng parent(7);
  Rng a = parent.stream(5);
  Rng b = parent.stream(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.uniform(), b.uniform());
  Rng c = parent.stream(6);
  int same = 0;
  Rng d = parent.stream(5);
  for (int i = 0; i < 16; ++i) same += (d.uniform() == c.uniform());
  EXPECT_LT(same, 3);
}

TEST(Shuffle, PermutesAllElements) {
  Rng rng(17);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  shuffle(v, rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

}  // namespace
}  // namespace conga::sim
