// Tests for flow-size distributions, the Poisson traffic generator, the
// Incast/HDFS workloads, and the flowlet trace study.
#include <gtest/gtest.h>

#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "tcp/flow.hpp"
#include "workload/experiment.hpp"
#include "workload/flow_size_dist.hpp"
#include "workload/flowlet_study.hpp"
#include "workload/hdfs_gen.hpp"
#include "workload/incast_gen.hpp"
#include "workload/traffic_gen.hpp"

namespace conga::workload {
namespace {

TEST(FlowSizeDist, CdfIsMonotoneAndEndsAtOne) {
  for (const FlowSizeDist* d :
       {&enterprise(), &data_mining(), &web_search()}) {
    double prev = 0;
    for (double s = 10; s < 2e9; s *= 2) {
      const double c = d->cdf(s);
      EXPECT_GE(c, prev) << d->name() << " at " << s;
      EXPECT_LE(c, 1.0);
      prev = c;
    }
    EXPECT_DOUBLE_EQ(d->cdf(2e9), 1.0) << d->name();
  }
}

TEST(FlowSizeDist, QuantileInvertsCdf) {
  const FlowSizeDist& d = data_mining();
  for (double u : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double s = d.quantile(u);
    EXPECT_NEAR(d.cdf(s), u, 0.01) << "u=" << u;
  }
}

TEST(FlowSizeDist, SampleMeanMatchesAnalyticMean) {
  sim::Rng rng(21);
  const FlowSizeDist& d = web_search();
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(d.sample(rng));
  EXPECT_NEAR(sum / n / d.mean_bytes(), 1.0, 0.05);
}

TEST(FlowSizeDist, EnterpriseHalfOfBytesBelow35MB) {
  // The paper's headline statistic for Fig 8(a): ~50% of bytes from flows
  // smaller than 35 MB.
  EXPECT_NEAR(enterprise().byte_cdf(35e6), 0.5, 0.15);
}

TEST(FlowSizeDist, DataMiningIsMuchHeavier) {
  // Fig 8(b): flows smaller than 35 MB carry only ~5% of bytes.
  EXPECT_LT(data_mining().byte_cdf(35e6), 0.2);
  EXPECT_LT(data_mining().byte_cdf(35e6), enterprise().byte_cdf(35e6) / 2);
}

TEST(FlowSizeDist, CoeffOfVariationOrdersWorkloads) {
  // Theorem 2: the data-mining workload is harder to balance — its flow-size
  // coefficient of variation must dominate the enterprise workload's.
  EXPECT_GT(data_mining().coeff_of_variation(),
            enterprise().coeff_of_variation());
  EXPECT_GT(enterprise().coeff_of_variation(), 1.0);
}

TEST(FlowSizeDist, FixedSizeHasZeroVariance) {
  const FlowSizeDist d = fixed_size(5000);
  EXPECT_DOUBLE_EQ(d.mean_bytes(), 5000);
  EXPECT_NEAR(d.coeff_of_variation(), 0.0, 1e-9);
  sim::Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.sample(rng), 5000u);
}

TEST(FlowSizeDist, ByteCdfIsMonotone) {
  const FlowSizeDist& d = enterprise();
  double prev = 0;
  for (double s = 100; s <= 5e8; s *= 3) {
    const double b = d.byte_cdf(s);
    EXPECT_GE(b, prev - 1e-12);
    prev = b;
  }
  EXPECT_NEAR(d.byte_cdf(5e8), 1.0, 1e-9);
}

// --- traffic generator ---

net::TopologyConfig gen_topo() {
  net::TopologyConfig cfg;
  cfg.num_leaves = 2;
  cfg.num_spines = 2;
  cfg.hosts_per_leaf = 8;
  cfg.host_link_bps = 10e9;
  cfg.fabric_link_bps = 40e9;
  return cfg;
}

TEST(TrafficGen, ArrivalRateMatchesLoad) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, gen_topo(), 4);
  fabric.install_lb(lb::ecmp());
  TrafficGenConfig cfg;
  cfg.load = 0.5;
  const FlowSizeDist dist = fixed_size(100'000);
  TrafficGenerator gen(fabric, tcp::make_tcp_flow_factory({}), dist, cfg);
  // load * 2 leaves * 80 Gbps / 8 / 100 KB = 1e10 B/s / 1e5 B = 1e5 flows/s.
  EXPECT_NEAR(gen.arrival_rate(), 1e5, 1.0);
}

TEST(TrafficGen, GeneratesAndCompletesFlows) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, gen_topo(), 4);
  fabric.install_lb(lb::ecmp());
  TrafficGenConfig cfg;
  cfg.load = 0.2;
  cfg.stop = sim::milliseconds(10);
  cfg.measure_start = sim::milliseconds(1);
  cfg.measure_stop = sim::milliseconds(9);
  tcp::TcpConfig tcp_cfg;
  tcp_cfg.min_rto = sim::milliseconds(10);
  TrafficGenerator gen(fabric, tcp::make_tcp_flow_factory(tcp_cfg),
                       fixed_size(50'000), cfg);
  gen.start();
  const bool drained = run_with_drain(sched, gen, cfg.stop,
                                      sim::milliseconds(200));
  EXPECT_TRUE(drained);
  EXPECT_GT(gen.flows_started(), 100u);
  EXPECT_GT(gen.measured_started(), 50u);
  EXPECT_EQ(gen.measured_completed(), gen.measured_started());
  EXPECT_EQ(gen.collector().count(), gen.measured_started());
}

TEST(TrafficGen, OfferedLoadReachesUplinks) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, gen_topo(), 4);
  fabric.install_lb(core::conga());
  TrafficGenConfig cfg;
  cfg.load = 0.4;
  cfg.stop = sim::milliseconds(20);
  tcp::TcpConfig tcp_cfg;
  tcp_cfg.min_rto = sim::milliseconds(10);
  TrafficGenerator gen(fabric, tcp::make_tcp_flow_factory(tcp_cfg),
                       fixed_size(200'000), cfg);
  gen.start();
  sched.run_until(sim::milliseconds(20));
  // Measure delivered bytes on leaf0's uplinks: should be ~load (40%).
  std::uint64_t bytes = 0;
  for (const auto& up : fabric.leaf(0).uplinks()) {
    bytes += up.link->bytes_sent();
  }
  const double util =
      bytes * 8.0 / 0.020 / fabric.config().leaf_uplink_capacity_bps();
  EXPECT_NEAR(util, 0.4, 0.12);
}

TEST(TrafficGen, AllTrafficCrossesTheFabric) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, gen_topo(), 4);
  fabric.install_lb(lb::ecmp());
  TrafficGenConfig cfg;
  cfg.load = 0.1;
  cfg.stop = sim::milliseconds(5);
  TrafficGenerator gen(fabric, tcp::make_tcp_flow_factory({}),
                       fixed_size(10'000), cfg);
  gen.start();
  sched.run_until(sim::milliseconds(10));
  EXPECT_GT(fabric.leaf(0).packets_to_fabric() +
                fabric.leaf(1).packets_to_fabric(),
            0u);
}

TEST(TrafficGen, OptimalFctIsLowerBound) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, gen_topo(), 4);
  fabric.install_lb(core::conga());
  TrafficGenConfig cfg;
  cfg.load = 0.3;
  cfg.stop = sim::milliseconds(10);
  cfg.measure_start = 0;
  cfg.measure_stop = sim::milliseconds(10);
  tcp::TcpConfig tcp_cfg;
  tcp_cfg.min_rto = sim::milliseconds(10);
  TrafficGenerator gen(fabric, tcp::make_tcp_flow_factory(tcp_cfg),
                       enterprise(), cfg);
  gen.start();
  run_with_drain(sched, gen, cfg.stop, sim::milliseconds(500));
  ASSERT_GT(gen.collector().count(), 0u);
  for (const auto& r : gen.collector().records()) {
    EXPECT_GE(r.fct, r.optimal_fct * 9 / 10)
        << "size " << r.size_bytes;  // 10% slack for rounding
  }
  EXPECT_GE(gen.collector().avg_normalized_fct(), 0.9);
}

// --- incast ---

TEST(Incast, SingleServerApproachesLineRate) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, gen_topo(), 4);
  fabric.install_lb(core::conga());
  IncastConfig cfg;
  cfg.client = 0;
  cfg.servers = {8};  // one server on the other leaf
  cfg.total_bytes = 10'000'000;
  cfg.rounds = 3;
  tcp::TcpConfig tcp_cfg;
  tcp_cfg.min_rto = sim::milliseconds(10);
  IncastGenerator gen(fabric, tcp::make_tcp_flow_factory(tcp_cfg), cfg);
  gen.start();
  sched.run();
  ASSERT_TRUE(gen.finished());
  EXPECT_GT(gen.goodput_fraction(), 0.8);
}

TEST(Incast, ModerateFanInStillGood) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, gen_topo(), 4);
  fabric.install_lb(core::conga());
  IncastConfig cfg;
  cfg.client = 0;
  cfg.servers = {8, 9, 10, 11, 12, 13, 14, 15};
  cfg.total_bytes = 10'000'000;
  cfg.rounds = 3;
  tcp::TcpConfig tcp_cfg;
  tcp_cfg.min_rto = sim::milliseconds(1);
  IncastGenerator gen(fabric, tcp::make_tcp_flow_factory(tcp_cfg), cfg);
  gen.start();
  sched.run();
  ASSERT_TRUE(gen.finished());
  EXPECT_GT(gen.goodput_fraction(), 0.5);
}

TEST(Incast, RoundsAreSequential) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, gen_topo(), 4);
  fabric.install_lb(core::conga());
  IncastConfig cfg;
  cfg.client = 0;
  cfg.servers = {8, 9};
  cfg.total_bytes = 1'000'000;
  cfg.rounds = 5;
  IncastGenerator gen(fabric, tcp::make_tcp_flow_factory({}), cfg);
  gen.start();
  sched.run();
  EXPECT_TRUE(gen.finished());
  EXPECT_EQ(gen.rounds_done(), 5);
  EXPECT_GT(gen.elapsed(), 0);
}

// --- HDFS ---

TEST(Hdfs, JobCompletes) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, gen_topo(), 4);
  fabric.install_lb(core::conga());
  HdfsConfig cfg;
  cfg.writers = {0, 1, 8, 9};
  cfg.bytes_per_writer = 8'000'000;
  cfg.block_bytes = 2'000'000;
  tcp::TcpConfig tcp_cfg;
  tcp_cfg.min_rto = sim::milliseconds(10);
  HdfsJob job(fabric, tcp::make_tcp_flow_factory(tcp_cfg), cfg);
  job.start();
  sched.run();
  ASSERT_TRUE(job.finished());
  EXPECT_GT(job.completion_time(), 0);
  // 4 writers x 8 MB x 2 pipeline stages over a fabric with ample capacity:
  // a writer's serial chain is ~2 x 8 MB at <=10G ~= 13 ms + overheads.
  EXPECT_LT(job.completion_time(), sim::milliseconds(200));
}

TEST(Hdfs, ReplicationFactorOneIsLocal) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, gen_topo(), 4);
  fabric.install_lb(core::conga());
  HdfsConfig cfg;
  cfg.writers = {0};
  cfg.bytes_per_writer = 4'000'000;
  cfg.block_bytes = 1'000'000;
  cfg.replicas = 1;
  HdfsJob job(fabric, tcp::make_tcp_flow_factory({}), cfg);
  job.start();
  sched.run();
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(fabric.leaf(0).packets_to_fabric(), 0u);  // nothing on the wire
}

// --- experiment harness ---

TEST(Experiment, RunsOneCellEndToEnd) {
  ExperimentConfig cfg;
  cfg.topo = gen_topo();
  cfg.dist = fixed_size(100'000);
  cfg.load = 0.3;
  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(10);
  cfg.transport = tcp::make_tcp_flow_factory(t);
  cfg.lb = core::conga();
  cfg.warmup = sim::milliseconds(5);
  cfg.measure = sim::milliseconds(20);
  cfg.max_drain = sim::seconds(1.0);
  const ExperimentResult r = run_fct_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_GT(r.flows, 50u);
  EXPECT_GE(r.avg_norm_fct, 1.0);
  EXPECT_GE(r.median_norm_fct, 0.95);
  EXPECT_LE(r.median_norm_fct, r.p99_norm_fct + 1e-9);
  EXPECT_DOUBLE_EQ(r.completed_fraction, 1.0);
  EXPECT_EQ(r.small_flows, 0u);  // all flows are 100 KB (== boundary)
}

TEST(Experiment, DeterministicAcrossRuns) {
  ExperimentConfig cfg;
  cfg.topo = gen_topo();
  cfg.dist = enterprise();
  cfg.load = 0.4;
  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(10);
  cfg.transport = tcp::make_tcp_flow_factory(t);
  cfg.lb = core::conga();
  cfg.warmup = sim::milliseconds(5);
  cfg.measure = sim::milliseconds(15);
  const ExperimentResult a = run_fct_experiment(cfg);
  const ExperimentResult b = run_fct_experiment(cfg);
  EXPECT_EQ(a.flows, b.flows);
  EXPECT_DOUBLE_EQ(a.avg_norm_fct, b.avg_norm_fct);
}

TEST(Experiment, HigherLoadHurtsFct) {
  auto run_at = [&](double load) {
    ExperimentConfig cfg;
    cfg.topo = gen_topo();
    cfg.dist = fixed_size(500'000);
    cfg.load = load;
    tcp::TcpConfig t;
    t.min_rto = sim::milliseconds(10);
    cfg.transport = tcp::make_tcp_flow_factory(t);
    cfg.lb = lb::ecmp();
    cfg.warmup = sim::milliseconds(5);
    cfg.measure = sim::milliseconds(25);
    return run_fct_experiment(cfg).median_norm_fct;
  };
  EXPECT_LT(run_at(0.1), run_at(0.8));
}

// --- flowlet study ---

TEST(FlowletStudy, TraceIsNonEmptyAndOrdered) {
  BurstyTraceConfig cfg;
  cfg.duration = sim::milliseconds(200);
  cfg.flow_arrival_per_sec = 500;
  const auto trace = generate_bursty_trace(enterprise(), cfg);
  ASSERT_GT(trace.size(), 1000u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].flow_id == trace[i - 1].flow_id) {
      EXPECT_GE(trace[i].time, trace[i - 1].time);
    }
  }
}

TEST(FlowletStudy, HugeGapReturnsWholeFlows) {
  BurstyTraceConfig cfg;
  cfg.duration = sim::milliseconds(100);
  cfg.flow_arrival_per_sec = 300;
  const auto trace = generate_bursty_trace(enterprise(), cfg);
  const auto flows = split_flowlets(trace, sim::seconds(10.0));
  // Transfer count == number of distinct flows in the trace.
  std::size_t distinct = trace.empty() ? 0 : 1;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].flow_id != trace[i - 1].flow_id) ++distinct;
  }
  EXPECT_EQ(flows.size(), distinct);
}

TEST(FlowletStudy, SmallerGapsGiveMoreSmallerTransfers) {
  BurstyTraceConfig cfg;
  cfg.duration = sim::milliseconds(300);
  const auto trace = generate_bursty_trace(enterprise(), cfg);
  const auto whole = split_flowlets(trace, sim::milliseconds(250));
  const auto f500 = split_flowlets(trace, sim::microseconds(500));
  const auto f100 = split_flowlets(trace, sim::microseconds(100));
  EXPECT_GE(f500.size(), whole.size());
  EXPECT_GE(f100.size(), f500.size());
  EXPECT_LE(bytes_median_size(f500), bytes_median_size(whole));
  EXPECT_LE(bytes_median_size(f100), bytes_median_size(f500));
}

TEST(FlowletStudy, ByteConservationAcrossSplits) {
  BurstyTraceConfig cfg;
  cfg.duration = sim::milliseconds(100);
  const auto trace = generate_bursty_trace(enterprise(), cfg);
  std::uint64_t total = 0;
  for (const auto& p : trace) total += p.bytes;
  for (sim::TimeNs gap : {sim::microseconds(100), sim::microseconds(500),
                          sim::milliseconds(250)}) {
    const auto parts = split_flowlets(trace, gap);
    std::uint64_t sum = 0;
    for (auto s : parts) sum += s;
    EXPECT_EQ(sum, total);
  }
}

TEST(FlowletStudy, BytesCdfIsMonotoneIn01) {
  BurstyTraceConfig cfg;
  cfg.duration = sim::milliseconds(100);
  const auto trace = generate_bursty_trace(enterprise(), cfg);
  const auto parts = split_flowlets(trace, sim::microseconds(500));
  const std::vector<double> queries{1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9};
  const auto cdf = bytes_cdf_at(parts, queries);
  double prev = 0;
  for (double v : cdf) {
    EXPECT_GE(v, prev);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
  EXPECT_NEAR(cdf.back(), 1.0, 1e-9);
}

TEST(FlowletStudy, ConcurrentFlowCountsAreBounded) {
  BurstyTraceConfig cfg;
  cfg.duration = sim::milliseconds(100);
  cfg.flow_arrival_per_sec = 1000;
  const auto trace = generate_bursty_trace(enterprise(), cfg);
  const auto counts = concurrent_flows(trace, sim::milliseconds(1));
  ASSERT_FALSE(counts.empty());
  for (std::size_t c : counts) EXPECT_LT(c, 5000u);
}

}  // namespace
}  // namespace conga::workload
