// Tests for summary statistics, FCT accounting, and the periodic samplers.
#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "stats/fct_collector.hpp"
#include "stats/samplers.hpp"
#include "stats/summary.hpp"

namespace conga::stats {
namespace {

TEST(Summary, MeanAndStddev) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1.0), 0);
  EXPECT_TRUE(s.cdf_points(10).empty());
}

TEST(Summary, PercentilesInterpolate) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.median(), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(90), 90.1, 0.2);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100);
}

TEST(Summary, CdfAtCountsInclusive) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(Summary, CdfPointsSpanRange) {
  Summary s;
  for (int i = 0; i < 1000; ++i) s.add(i);
  const auto pts = s.cdf_points(11);
  ASSERT_EQ(pts.size(), 11u);
  EXPECT_DOUBLE_EQ(pts.front().first, 0);
  EXPECT_DOUBLE_EQ(pts.back().first, 999);
  EXPECT_NEAR(pts.back().second, 1.0, 1e-9);
}

TEST(FctCollector, NormalizedFct) {
  FctCollector c;
  c.record(1000, 200, 100);   // 2x optimal
  c.record(2000, 400, 100);   // 4x optimal
  EXPECT_DOUBLE_EQ(c.avg_normalized_fct(), 3.0);
}

TEST(FctCollector, SizeBuckets) {
  FctCollector c;
  c.record(50'000, sim::milliseconds(1), 100);      // small
  c.record(500'000, sim::milliseconds(10), 100);    // mid
  c.record(50'000'000, sim::milliseconds(100), 100);  // large
  EXPECT_EQ(c.count_in(0, FctCollector::kSmallFlowBytes), 1u);
  EXPECT_EQ(c.count_in(FctCollector::kLargeFlowBytes, UINT64_MAX), 1u);
  EXPECT_NEAR(c.avg_fct_small(), 1e-3, 1e-9);
  EXPECT_NEAR(c.avg_fct_large(), 0.1, 1e-9);
  EXPECT_NEAR(c.avg_fct_overall(), (0.001 + 0.01 + 0.1) / 3, 1e-9);
}

TEST(FctCollector, ReorderLedgerAccumulates) {
  FctCollector c;
  EXPECT_EQ(c.reorder_segments(), 0u);
  EXPECT_EQ(c.reorder_max_distance(), 0u);
  EXPECT_EQ(c.reordered_flows(), 0u);
  c.record_reorder(0, 0);  // in-order flow: counted nowhere
  c.record_reorder(5, 2900);
  c.record_reorder(3, 1460);  // smaller max must not regress the ledger
  EXPECT_EQ(c.reorder_segments(), 8u);
  EXPECT_EQ(c.reorder_max_distance(), 2900u);
  EXPECT_EQ(c.reordered_flows(), 2u);
}

TEST(FctCollector, P99Normalized) {
  FctCollector c;
  for (int i = 0; i < 99; ++i) c.record(1000, 100, 100);  // 1x
  c.record(1000, 10000, 100);                             // 100x outlier
  // p99 interpolates between the 99th sample (1x) and the outlier (100x).
  EXPECT_GT(c.p99_normalized_fct(), 1.5);
}

/// Node that drops everything (endpoint for sampler tests).
class NullNode : public net::Node {
 public:
  void receive(net::PacketPtr, int) override {}
  std::string name() const override { return "null"; }
};

TEST(ImbalanceSampler, EqualLoadGivesLowImbalance) {
  sim::Scheduler sched;
  NullNode sink;
  net::LinkConfig cfg;
  cfg.rate_bps = 10e9;
  net::Link a(sched, "a", cfg), b(sched, "b", cfg);
  a.connect_to(&sink, 0);
  b.connect_to(&sink, 0);
  ThroughputImbalanceSampler sampler(sched, {&a, &b}, sim::milliseconds(1), 0,
                                     sim::milliseconds(10));
  // Equal packet streams on both links.
  for (int i = 0; i < 1000; ++i) {
    sched.schedule_at(sim::microseconds(10) * i, [&a, &b] {
      auto pa = net::make_packet();
      pa->size_bytes = 1000;
      a.send(std::move(pa));
      auto pb = net::make_packet();
      pb->size_bytes = 1000;
      b.send(std::move(pb));
    });
  }
  sched.run();
  ASSERT_GT(sampler.imbalance_pct().count(), 5u);
  EXPECT_LT(sampler.imbalance_pct().mean(), 1.0);
}

TEST(ImbalanceSampler, SkewedLoadGivesHighImbalance) {
  sim::Scheduler sched;
  NullNode sink;
  net::LinkConfig cfg;
  cfg.rate_bps = 10e9;
  net::Link a(sched, "a", cfg), b(sched, "b", cfg);
  a.connect_to(&sink, 0);
  b.connect_to(&sink, 0);
  ThroughputImbalanceSampler sampler(sched, {&a, &b}, sim::milliseconds(1), 0,
                                     sim::milliseconds(10));
  for (int i = 0; i < 1000; ++i) {
    sched.schedule_at(sim::microseconds(10) * i, [&a, &b, i] {
      auto pa = net::make_packet();
      pa->size_bytes = 1000;
      a.send(std::move(pa));
      if (i % 3 == 0) {  // b gets a third of the traffic
        auto pb = net::make_packet();
        pb->size_bytes = 1000;
        b.send(std::move(pb));
      }
    });
  }
  sched.run();
  // (max-min)/avg with loads 1 and 1/3: (1 - 1/3) / (2/3) = 100%.
  EXPECT_NEAR(sampler.imbalance_pct().mean(), 100.0, 15.0);
}

TEST(ImbalanceSampler, MeanThroughputPerLink) {
  sim::Scheduler sched;
  NullNode sink;
  net::LinkConfig cfg;
  cfg.rate_bps = 10e9;
  net::Link a(sched, "a", cfg), b(sched, "b", cfg);
  a.connect_to(&sink, 0);
  b.connect_to(&sink, 0);
  ThroughputImbalanceSampler sampler(sched, {&a, &b}, sim::milliseconds(1), 0,
                                     sim::milliseconds(10));
  // 1000 x 1000B on a over 10ms = 0.8 Gbps.
  for (int i = 0; i < 1000; ++i) {
    sched.schedule_at(sim::microseconds(10) * i, [&a] {
      auto p = net::make_packet();
      p->size_bytes = 1000;
      a.send(std::move(p));
    });
  }
  sched.run_until(sim::milliseconds(10));
  const auto tputs = sampler.mean_throughput_bps();
  ASSERT_EQ(tputs.size(), 2u);
  EXPECT_NEAR(tputs[0], 0.8e9, 0.05e9);
  EXPECT_NEAR(tputs[1], 0.0, 1.0);
}

}  // namespace
}  // namespace conga::stats
