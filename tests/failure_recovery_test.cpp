// Runtime link failure and recovery: the dataplane blackholes immediately,
// the routing layer withdraws the link after a detection delay, and traffic
// reconverges — the dynamics behind the paper's §1 motivation that failures
// are frequent and disruptive.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/fault_injector.hpp"
#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "tcp/flow.hpp"
#include "workload/traffic_gen.hpp"

namespace conga::net {
namespace {

TopologyConfig topo2x2(int hosts = 8) {
  TopologyConfig cfg;
  cfg.num_leaves = 2;
  cfg.num_spines = 2;
  cfg.hosts_per_leaf = hosts;
  cfg.host_link_bps = 10e9;
  cfg.fabric_link_bps = 40e9;
  return cfg;
}

tcp::TcpConfig dc_tcp() {
  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(5);
  return t;
}

TEST(FailureRecovery, DetectionWithdrawsAndRestoreReinstates) {
  sim::Scheduler sched;
  Fabric fabric(sched, topo2x2(), 1);
  fabric.install_lb(core::conga());

  EXPECT_TRUE(fabric.leaf(0).uplink_reaches(1, 1));
  fabric.fail_fabric_link(0, 1, 0, sim::microseconds(100));
  // Before detection: forwarding state unchanged (packets blackhole).
  sched.run_until(sim::microseconds(50));
  EXPECT_TRUE(fabric.leaf(0).uplink_reaches(1, 1));
  // After detection: the uplink is withdrawn for every destination.
  sched.run_until(sim::microseconds(200));
  EXPECT_FALSE(fabric.leaf(0).uplink_reaches(1, 1));
  EXPECT_FALSE(fabric.leaf(0).uplink_live(1));
  EXPECT_TRUE(fabric.leaf(0).uplink_reaches(0, 1)) << "other uplink fine";

  fabric.restore_fabric_link(0, 1, 0, sim::microseconds(100));
  sched.run_until(sim::microseconds(400));
  EXPECT_TRUE(fabric.leaf(0).uplink_reaches(1, 1));
  EXPECT_TRUE(fabric.leaf(0).uplink_live(1));
}

TEST(FailureRecovery, SpineSideAlsoWithdrawn) {
  sim::Scheduler sched;
  Fabric fabric(sched, topo2x2(), 1);
  fabric.install_lb(core::conga());
  fabric.fail_fabric_link(1, 0, 0, 0);
  sched.run_until(sim::microseconds(10));
  // Leaf 0's uplinks must avoid spine 0 for destination leaf 1: spine 0 has
  // no remaining downlink to leaf 1 (links_per_spine == 1).
  EXPECT_FALSE(fabric.leaf(0).uplink_reaches(0, 1));
  EXPECT_TRUE(fabric.leaf(0).uplink_reaches(1, 1));
}

TEST(FailureRecovery, FlowsSurviveAFailureMidTransfer) {
  sim::Scheduler sched;
  Fabric fabric(sched, topo2x2(), 1);
  fabric.install_lb(core::conga());
  std::vector<std::unique_ptr<tcp::TcpFlow>> flows;
  for (int i = 0; i < 4; ++i) {
    FlowKey key;
    key.src_host = i;
    key.dst_host = 8 + i;
    key.src_port = static_cast<std::uint16_t>(1000 + 16 * i);
    key.dst_port = 80;
    flows.push_back(std::make_unique<tcp::TcpFlow>(
        sched, fabric.host(i), fabric.host(8 + i), key, 20'000'000, dc_tcp(),
        tcp::FlowCompleteFn{}));
    flows.back()->start();
  }
  sched.schedule_at(sim::milliseconds(5), [&] {
    fabric.fail_fabric_link(0, 0, 0, sim::milliseconds(1));
  });
  sched.run();
  for (auto& f : flows) {
    ASSERT_TRUE(f->complete());
    EXPECT_EQ(f->sink().delivered(), 20'000'000u);
  }
}

TEST(FailureRecovery, ThroughputReconvergesAfterDetection) {
  // 60% offered load; fail one of leaf0's two uplinks mid-run with a 1 ms
  // detection delay. After reconvergence the surviving uplink must carry
  // (nearly) all of leaf 0's egress.
  sim::Scheduler sched;
  Fabric fabric(sched, topo2x2(16), 1);
  fabric.install_lb(core::conga());
  workload::TrafficGenConfig gc;
  gc.load = 0.4;
  gc.stop = sim::milliseconds(60);
  workload::TrafficGenerator gen(fabric,
                                 tcp::make_tcp_flow_factory(dc_tcp()),
                                 workload::fixed_size(200'000), gc);
  gen.start();
  sched.schedule_at(sim::milliseconds(20), [&] {
    fabric.fail_fabric_link(0, 0, 0, sim::milliseconds(1));
  });
  sched.run_until(sim::milliseconds(30));
  const auto& ups = fabric.leaf(0).uplinks();
  const std::uint64_t dead_at_30 = ups[0].link->bytes_sent();
  const std::uint64_t live_at_30 = ups[1].link->bytes_sent();
  sched.run_until(sim::milliseconds(60));
  const std::uint64_t dead_at_60 = ups[0].link->bytes_sent();
  const std::uint64_t live_at_60 = ups[1].link->bytes_sent();
  EXPECT_EQ(dead_at_60, dead_at_30)
      << "nothing may be sent to a withdrawn uplink";
  EXPECT_GT(live_at_60 - live_at_30, (dead_at_30 + live_at_30) / 4)
      << "the survivor must absorb the load";
}

TEST(FailureRecovery, RestoredLinkCarriesTrafficAgain) {
  sim::Scheduler sched;
  Fabric fabric(sched, topo2x2(16), 1);
  fabric.install_lb(core::conga());
  workload::TrafficGenConfig gc;
  gc.load = 0.4;
  gc.stop = sim::milliseconds(80);
  workload::TrafficGenerator gen(fabric,
                                 tcp::make_tcp_flow_factory(dc_tcp()),
                                 workload::fixed_size(200'000), gc);
  gen.start();
  sched.schedule_at(sim::milliseconds(10), [&] {
    fabric.fail_fabric_link(0, 0, 0, sim::milliseconds(1));
  });
  sched.schedule_at(sim::milliseconds(40), [&] {
    fabric.restore_fabric_link(0, 0, 0, sim::milliseconds(1));
  });
  const auto& ups = fabric.leaf(0).uplinks();
  sched.run_until(sim::milliseconds(45));
  const std::uint64_t before = ups[0].link->bytes_sent();
  sched.run_until(sim::milliseconds(80));
  EXPECT_GT(ups[0].link->bytes_sent(), before)
      << "the restored uplink must attract flowlets again";
}

TEST(FailureRecovery, FailRestoreFailWithinOneDetectionWindow) {
  // Regression: overlapping fail/restore calls used to apply every handler,
  // double-flipping liveness and duplicating spine forwarding entries. Only
  // the LAST call may take effect, after its own detection delay.
  sim::Scheduler sched;
  Fabric fabric(sched, topo2x2(), 1);
  fabric.install_lb(core::conga());

  fabric.fail_fabric_link(0, 1, 0, sim::microseconds(300));
  sched.schedule_at(sim::microseconds(100), [&] {
    fabric.restore_fabric_link(0, 1, 0, sim::microseconds(300));
  });
  sched.schedule_at(sim::microseconds(200), [&] {
    fabric.fail_fabric_link(0, 1, 0, sim::microseconds(300));
  });

  // t=350us: the first fail's handler has fired but was superseded — the
  // uplink must still be in the forwarding state.
  sched.run_until(sim::microseconds(350));
  EXPECT_TRUE(fabric.leaf(0).uplink_live(1))
      << "superseded fail handler must not withdraw";
  EXPECT_EQ(fabric.spine(1).downlink_count(0), 1u);

  // t=550us: the last call (fail at 200us, detected at 500us) wins.
  sched.run_until(sim::microseconds(550));
  EXPECT_FALSE(fabric.leaf(0).uplink_live(1));
  EXPECT_FALSE(fabric.leaf(0).uplink_reaches(1, 1));
  EXPECT_EQ(fabric.spine(1).downlink_count(0), 0u);

  // A clean restore reinstates exactly one forwarding entry.
  fabric.restore_fabric_link(0, 1, 0, sim::microseconds(100));
  sched.run_until(sim::microseconds(700));
  EXPECT_TRUE(fabric.leaf(0).uplink_live(1));
  EXPECT_EQ(fabric.spine(1).downlink_count(0), 1u);
}

TEST(FailureRecovery, DoubleFailAndDoubleRestoreAreIdempotent) {
  sim::Scheduler sched;
  Fabric fabric(sched, topo2x2(), 1);
  fabric.install_lb(core::conga());

  // Two fails with overlapping windows: one withdrawal.
  fabric.fail_fabric_link(0, 0, 0, sim::microseconds(100));
  sched.schedule_at(sim::microseconds(50), [&] {
    fabric.fail_fabric_link(0, 0, 0, sim::microseconds(100));
  });
  sched.run_until(sim::microseconds(300));
  EXPECT_FALSE(fabric.leaf(0).uplink_live(0));
  EXPECT_EQ(fabric.spine(0).downlink_count(0), 0u);

  // Two restores with overlapping windows: exactly one forwarding entry —
  // a duplicate would skew the spine's ECMP spread forever after.
  fabric.restore_fabric_link(0, 0, 0, sim::microseconds(100));
  sched.schedule_at(sim::microseconds(350), [&] {
    fabric.restore_fabric_link(0, 0, 0, sim::microseconds(100));
  });
  sched.run_until(sim::microseconds(600));
  EXPECT_TRUE(fabric.leaf(0).uplink_live(0));
  EXPECT_EQ(fabric.spine(0).downlink_count(0), 1u);
}

TEST(FailureRecovery, FlowsSurviveAFlappingLink) {
  // A link flapping faster than the detection window, driven by the fault
  // injector, must not wedge transfers: the flap clears by 6 ms and every
  // flow completes via the surviving uplink and RTO recovery.
  sim::Scheduler sched;
  Fabric fabric(sched, topo2x2(), 1);
  fabric.install_lb(core::conga());

  std::vector<std::unique_ptr<tcp::TcpFlow>> flows;
  for (int i = 0; i < 4; ++i) {
    FlowKey key;
    key.src_host = i;
    key.dst_host = 8 + i;
    key.src_port = static_cast<std::uint16_t>(1000 + 16 * i);
    key.dst_port = 80;
    flows.push_back(std::make_unique<tcp::TcpFlow>(
        sched, fabric.host(i), fabric.host(8 + i), key, 5'000'000, dc_tcp(),
        tcp::FlowCompleteFn{}));
    flows.back()->start();
  }

  fault::FaultPlan plan;
  fault::LinkFlapSpec flap;
  flap.leaf = 0;
  flap.spine = 0;
  flap.parallel = 0;
  flap.mean_down_dwell = sim::microseconds(150);
  flap.mean_up_dwell = sim::microseconds(300);
  flap.detection_delay = sim::microseconds(250);  // slower than the dwells
  flap.start = sim::milliseconds(1);
  flap.stop = sim::milliseconds(6);
  plan.add(flap);

  fault::FaultInjector injector(fabric, 42);
  injector.arm(plan);

  sched.run();
  EXPECT_GT(injector.transitions(), 4u) << "the link must actually flap";
  EXPECT_TRUE(fabric.up_link(0, 0, 0)->is_up()) << "flap must end link-up";
  EXPECT_TRUE(fabric.leaf(0).uplink_live(0)) << "forwarding state restored";
  EXPECT_EQ(fabric.spine(0).downlink_count(0), 1u);
  for (auto& f : flows) {
    ASSERT_TRUE(f->complete());
    EXPECT_EQ(f->sink().delivered(), 5'000'000u);
  }
}

TEST(FailureRecovery, EcmpAlsoRespectsWithdrawal) {
  sim::Scheduler sched;
  Fabric fabric(sched, topo2x2(), 1);
  fabric.install_lb(lb::ecmp());
  fabric.fail_fabric_link(0, 0, 0, 0);
  sched.run_until(sim::microseconds(10));
  for (int i = 0; i < 64; ++i) {
    Packet p;
    p.flow.src_host = 0;
    p.flow.dst_host = 8;
    p.flow.src_port = static_cast<std::uint16_t>(i);
    p.flow.dst_port = 9;
    EXPECT_EQ(fabric.leaf(0).load_balancer()->select_uplink(p, 1, 0), 1);
  }
}

}  // namespace
}  // namespace conga::net
