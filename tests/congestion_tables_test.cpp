// Tests for the Congestion-To-Leaf / Congestion-From-Leaf tables (§3.3).
#include <gtest/gtest.h>

#include "core/congestion_tables.hpp"

namespace conga::core {
namespace {

using sim::milliseconds;
using sim::microseconds;

CongestionTableConfig cfg(int leaves = 4, int uplinks = 4,
                          sim::TimeNs age = milliseconds(10)) {
  CongestionTableConfig c;
  c.num_leaves = leaves;
  c.num_uplinks = uplinks;
  c.age_after = age;
  return c;
}

TEST(ToLeafTable, UnknownCellsReadZero) {
  CongestionToLeafTable t(cfg());
  EXPECT_EQ(t.metric(0, 0, 0), 0);
  EXPECT_EQ(t.metric(3, 3, milliseconds(100)), 0);
}

TEST(ToLeafTable, StoresAndReads) {
  CongestionToLeafTable t(cfg());
  t.update(2, 1, 5, microseconds(10));
  EXPECT_EQ(t.metric(2, 1, microseconds(20)), 5);
  EXPECT_EQ(t.metric(2, 0, microseconds(20)), 0);  // other uplink untouched
  EXPECT_EQ(t.metric(1, 1, microseconds(20)), 0);  // other leaf untouched
}

TEST(ToLeafTable, OverwritesWithLatest) {
  CongestionToLeafTable t(cfg());
  t.update(0, 0, 7, 0);
  t.update(0, 0, 2, microseconds(50));
  EXPECT_EQ(t.metric(0, 0, microseconds(60)), 2);
}

TEST(ToLeafTable, FreshMetricNotAged) {
  CongestionToLeafTable t(cfg());
  t.update(0, 0, 6, 0);
  EXPECT_EQ(t.metric(0, 0, milliseconds(10)), 6);  // exactly at threshold
}

TEST(ToLeafTable, StaleMetricDecaysLinearlyToZero) {
  CongestionToLeafTable t(cfg());
  t.update(0, 0, 6, 0);
  const std::uint8_t at_12ms = t.metric(0, 0, milliseconds(12));
  const std::uint8_t at_15ms = t.metric(0, 0, milliseconds(15));
  const std::uint8_t at_18ms = t.metric(0, 0, milliseconds(18));
  EXPECT_LT(at_12ms, 6);
  EXPECT_LT(at_15ms, at_12ms);
  EXPECT_LT(at_18ms, at_15ms);
  EXPECT_EQ(t.metric(0, 0, milliseconds(20)), 0);  // fully aged out
  EXPECT_EQ(t.metric(0, 0, milliseconds(100)), 0);
}

TEST(ToLeafTable, AgingGuaranteesReprobing) {
  // A path that looked congested must eventually read 0 so it gets probed
  // again (§3.3 "guarantees that a path that appears congested is eventually
  // probed again").
  CongestionToLeafTable t(cfg());
  t.update(1, 2, 7, 0);
  EXPECT_EQ(t.metric(1, 2, milliseconds(25)), 0);
}

TEST(FromLeafTable, NoFeedbackBeforeAnyUpdate) {
  CongestionFromLeafTable t(cfg());
  EXPECT_FALSE(t.pick_feedback(0, 0).has_value());
}

TEST(FromLeafTable, FeedbackReturnsStoredMetric) {
  CongestionFromLeafTable t(cfg());
  t.update(1, 2, 5, 0);
  const auto fb = t.pick_feedback(1, microseconds(1));
  ASSERT_TRUE(fb.has_value());
  EXPECT_EQ(fb->lbtag, 2);
  EXPECT_EQ(fb->metric, 5);
}

TEST(FromLeafTable, RoundRobinOverLbtags) {
  CongestionFromLeafTable t(cfg());
  t.update(0, 0, 1, 0);
  t.update(0, 1, 2, 0);
  t.update(0, 2, 3, 0);
  // Three changed entries: served in round-robin order.
  EXPECT_EQ(t.pick_feedback(0, 1)->lbtag, 0);
  EXPECT_EQ(t.pick_feedback(0, 2)->lbtag, 1);
  EXPECT_EQ(t.pick_feedback(0, 3)->lbtag, 2);
  // All clean now: plain round-robin continues over written entries.
  EXPECT_EQ(t.pick_feedback(0, 4)->lbtag, 0);
  EXPECT_EQ(t.pick_feedback(0, 5)->lbtag, 1);
}

TEST(FromLeafTable, ChangedEntriesServedFirst) {
  CongestionFromLeafTable t(cfg());
  t.update(0, 0, 1, 0);
  t.update(0, 1, 2, 0);
  t.update(0, 2, 3, 0);
  // Drain the changed flags.
  t.pick_feedback(0, 1);
  t.pick_feedback(0, 2);
  t.pick_feedback(0, 3);
  // Now only lbtag 1 changes; despite the cursor being at 0, entry 1 must be
  // served first.
  t.update(0, 1, 6, microseconds(10));
  EXPECT_EQ(t.pick_feedback(0, microseconds(11))->lbtag, 1);
}

TEST(FromLeafTable, SameValueUpdateDoesNotSetChanged) {
  CongestionFromLeafTable t(cfg());
  t.update(0, 0, 4, 0);
  t.pick_feedback(0, 1);  // clears changed on entry 0
  t.update(0, 1, 2, 2);
  t.update(0, 0, 4, 3);  // same value: not "changed"
  // Entry 1 (changed) should win over entry 0 (refreshed but unchanged),
  // even though round-robin order would pick 0 next... cursor is at 1 after
  // serving 0, so verify precisely: changed-first scan starts at cursor 1.
  EXPECT_EQ(t.pick_feedback(0, 4)->lbtag, 1);
}

TEST(FromLeafTable, PerSourceLeafState) {
  CongestionFromLeafTable t(cfg());
  t.update(0, 0, 1, 0);
  t.update(1, 3, 7, 0);
  EXPECT_EQ(t.pick_feedback(0, 1)->metric, 1);
  const auto fb = t.pick_feedback(1, 1);
  EXPECT_EQ(fb->lbtag, 3);
  EXPECT_EQ(fb->metric, 7);
}

TEST(FromLeafTable, RawAccess) {
  CongestionFromLeafTable t(cfg());
  t.update(2, 1, 6, 0);
  EXPECT_EQ(t.raw(2, 1), 6);
  EXPECT_EQ(t.raw(2, 0), 0);
}

TEST(FromLeafTable, FeedbackValueAges) {
  CongestionFromLeafTable t(cfg());
  t.update(0, 0, 6, 0);
  const auto fb = t.pick_feedback(0, milliseconds(30));
  ASSERT_TRUE(fb.has_value());
  EXPECT_EQ(fb->metric, 0);  // stale: decayed to zero before being sent
}

TEST(FromLeafTable, PlainRoundRobinWhenFavorChangedDisabled) {
  CongestionTableConfig c = cfg();
  c.favor_changed = false;
  CongestionFromLeafTable t(c);
  t.update(0, 0, 1, 0);
  t.update(0, 2, 3, 0);
  // Drain both; cursor now past 2 (at 3).
  EXPECT_EQ(t.pick_feedback(0, 1)->lbtag, 0);
  EXPECT_EQ(t.pick_feedback(0, 2)->lbtag, 2);
  // Entry 2 changes again, but plain round-robin must serve 0 next anyway.
  t.update(0, 2, 7, 3);
  EXPECT_EQ(t.pick_feedback(0, 4)->lbtag, 0);
}

TEST(AgedValue, Semantics) {
  MetricCell cell;
  EXPECT_EQ(aged_value(cell, 100, milliseconds(10)), 0);  // never written
  cell.value = 8;
  cell.updated = 0;
  EXPECT_EQ(aged_value(cell, milliseconds(5), milliseconds(10)), 8);
  EXPECT_EQ(aged_value(cell, milliseconds(15), milliseconds(10)), 4);
  EXPECT_EQ(aged_value(cell, milliseconds(20), milliseconds(10)), 0);
}

}  // namespace
}  // namespace conga::core
