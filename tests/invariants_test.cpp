// Tests for the runtime invariant checker (src/debug/invariants.hpp).
//
// Each invariant class is exercised directly with violating inputs — a
// deliberate negative dequeue, a time regression, a DRE underflow, etc. —
// and the test asserts that the checker fires with the right invariant name
// and a report carrying the node and simulated time. A final test runs a
// real (small) simulation under a capture handler and asserts zero
// violations, which is the CONGA_CHECK_INVARIANTS=ON gate future refactors
// run under.
#include "debug/invariants.hpp"

#include <gtest/gtest.h>

#include "debug/determinism.hpp"
#include "lb/factories.hpp"
#include "net/queue.hpp"
#include "workload/flow_size_dist.hpp"

namespace conga {
namespace {

using debug::ScopedViolationCapture;

TEST(ViolationReporting, CaptureInterceptsAndCounts) {
  const std::uint64_t before = debug::violation_count();
  ScopedViolationCapture cap;
  debug::report({"nodeX", sim::microseconds(3), "test.class", "details"});
  ASSERT_EQ(cap.count(), 1u);
  EXPECT_EQ(cap.violations()[0].node, "nodeX");
  EXPECT_EQ(cap.violations()[0].time, sim::microseconds(3));
  EXPECT_EQ(cap.violations()[0].invariant, "test.class");
  EXPECT_TRUE(cap.fired("test.class"));
  EXPECT_FALSE(cap.fired("other.class"));
  EXPECT_EQ(debug::violation_count(), before + 1);
}

TEST(ViolationReporting, FormatNamesNodeTimeAndInvariant) {
  const std::string s = debug::format_violation(
      {"leaf3", 12345, "queue.byte-conservation", "delta=-40"});
  EXPECT_NE(s.find("leaf3"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
  EXPECT_NE(s.find("queue.byte-conservation"), std::string::npos);
  EXPECT_NE(s.find("delta=-40"), std::string::npos);
}

TEST(ViolationReporting, CaptureRestoresPreviousHandler) {
  int outer_hits = 0;
  auto prev = debug::set_violation_handler(
      [&outer_hits](const debug::Violation&) { ++outer_hits; });
  {
    ScopedViolationCapture cap;
    debug::report({"n", 0, "inner", ""});
    EXPECT_EQ(cap.count(), 1u);
    EXPECT_EQ(outer_hits, 0);
  }
  debug::report({"n", 0, "outer", ""});
  EXPECT_EQ(outer_hits, 1);
  debug::set_violation_handler(std::move(prev));
}

TEST(TimeMonotonicity, RegressionFires) {
  ScopedViolationCapture cap;
  EXPECT_TRUE(debug::check_time_monotonic("scheduler", 100, 100));
  EXPECT_TRUE(debug::check_time_monotonic("scheduler", 100, 150));
  EXPECT_EQ(cap.count(), 0u);
  // An event timestamped before the current simulated time: a regression.
  EXPECT_FALSE(debug::check_time_monotonic("scheduler", 100, 50));
  EXPECT_TRUE(cap.fired("scheduler.time-monotonic"));
}

TEST(ByteConservation, NegativeDequeueFires) {
  ScopedViolationCapture cap;
  EXPECT_TRUE(debug::check_byte_conservation("link", 10, 1000, 400, 600));
  EXPECT_EQ(cap.count(), 0u);
  // "Negative dequeue": more bytes left the queue than ever entered it.
  EXPECT_FALSE(debug::check_byte_conservation("link", 10, 1000, 1500, 0));
  // Leak: bytes vanished without being dequeued.
  EXPECT_FALSE(debug::check_byte_conservation("link", 10, 1000, 400, 0));
  EXPECT_EQ(cap.count(), 2u);
  EXPECT_TRUE(cap.fired("queue.byte-conservation"));
  EXPECT_EQ(cap.violations()[0].node, "link");
}

TEST(QueueBounds, OverCapacityAndEmptinessMismatchFire) {
  ScopedViolationCapture cap;
  EXPECT_TRUE(debug::check_queue_bounds("q", 0, 500, 1000, 1));
  EXPECT_TRUE(debug::check_queue_bounds("q", 0, 0, 1000, 0));
  EXPECT_EQ(cap.count(), 0u);
  EXPECT_FALSE(debug::check_queue_bounds("q", 0, 1500, 1000, 2));
  EXPECT_FALSE(debug::check_queue_bounds("q", 0, 100, 1000, 0));
  EXPECT_FALSE(debug::check_queue_bounds("q", 0, 0, 1000, 3));
  EXPECT_EQ(cap.count(), 3u);
  EXPECT_TRUE(cap.fired("queue.occupancy-bounds"));
}

TEST(DreRegister, UnderflowAndDecayGrowthFire) {
  ScopedViolationCapture cap;
  EXPECT_TRUE(debug::check_dre_register("link", 0, 100.0, 87.5));
  EXPECT_TRUE(debug::check_dre_register("link", 0, 100.0, 100.0));
  EXPECT_TRUE(debug::check_dre_register("link", 0, 0.0, 0.0));
  EXPECT_EQ(cap.count(), 0u);
  // Underflow: the register went negative.
  EXPECT_FALSE(debug::check_dre_register("link", 0, 10.0, -1.0));
  // Decay that *increased* the register.
  EXPECT_FALSE(debug::check_dre_register("link", 0, 10.0, 20.0));
  EXPECT_EQ(cap.count(), 2u);
  EXPECT_TRUE(cap.fired("dre.register-bounds"));
}

TEST(FlowletEntry, FutureTimestampAndStaleHitFire) {
  const sim::TimeNs gap = sim::microseconds(500);
  ScopedViolationCapture cap;
  EXPECT_TRUE(debug::check_flowlet_entry("leaf0/flowlets", 1000, 800, gap,
                                         true, 2));
  EXPECT_TRUE(debug::check_flowlet_entry("leaf0/flowlets", 1000, 900, gap,
                                         false, -1));
  EXPECT_EQ(cap.count(), 0u);
  // last_seen in the future of the lookup.
  EXPECT_FALSE(debug::check_flowlet_entry("leaf0/flowlets", 1000, 2000, gap,
                                          true, 2));
  // A hit returned from an invalid entry.
  EXPECT_FALSE(debug::check_flowlet_entry("leaf0/flowlets", 1000, 800, gap,
                                          false, 2));
  // A hit returned long past any expiry mode's horizon.
  EXPECT_FALSE(debug::check_flowlet_entry(
      "leaf0/flowlets", 10 * gap, 0, gap, true, 2));
  EXPECT_EQ(cap.count(), 3u);
  EXPECT_TRUE(cap.fired("flowlet.age-consistency"));
}

TEST(TcpWindow, OrderingAndNegativeCwndFire) {
  ScopedViolationCapture cap;
  EXPECT_TRUE(debug::check_tcp_window("tcp", 0, 100, 200, 300, 14600.0));
  EXPECT_TRUE(debug::check_tcp_window("tcp", 0, 0, 0, 0, 0.0));
  EXPECT_EQ(cap.count(), 0u);
  EXPECT_FALSE(debug::check_tcp_window("tcp", 0, 250, 200, 300, 14600.0));
  EXPECT_FALSE(debug::check_tcp_window("tcp", 0, 100, 400, 300, 14600.0));
  EXPECT_FALSE(debug::check_tcp_window("tcp", 0, 100, 200, 300, -1.0));
  EXPECT_EQ(cap.count(), 3u);
  EXPECT_TRUE(cap.fired("tcp.sequence-window"));
}

TEST(GenericCondition, FiresWithCallerClass) {
  ScopedViolationCapture cap;
  EXPECT_TRUE(debug::check_condition(true, "leaf1", 5, "leaf.uplink-validity",
                                     "unused"));
  EXPECT_EQ(cap.count(), 0u);
  EXPECT_FALSE(debug::check_condition(false, "leaf1", 5,
                                      "leaf.uplink-validity", "bad uplink"));
  ASSERT_TRUE(cap.fired("leaf.uplink-validity"));
  EXPECT_EQ(cap.violations()[0].detail, "bad uplink");
}

// A healthy queue run never trips the hooks (meaningful when the library is
// built with CONGA_CHECK_INVARIANTS=ON; trivially true otherwise).
TEST(HookIntegration, HealthyQueueRaisesNothing) {
  ScopedViolationCapture cap;
  net::DropTailQueue q(3000);
  q.set_label("test-queue");
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {  // 4 x 1000 > capacity: last one drops
      net::PacketPtr p = net::make_packet();
      p->size_bytes = 1000;
      q.enqueue(std::move(p), sim::microseconds(round * 10 + i));
    }
    while (!q.empty()) q.dequeue(sim::microseconds(round * 10 + 5));
  }
  EXPECT_EQ(q.stats().enqueued_bytes,
            q.stats().dequeued_bytes);  // all drained
  EXPECT_EQ(q.stats().dropped_pkts, 3u);
  EXPECT_EQ(cap.count(), 0u);
}

// End-to-end: a real (small) fabric simulation completes with zero
// violations. This is the CONGA_CHECK_INVARIANTS=ON integration gate.
TEST(HookIntegration, SmallSimulationRunsCleanly) {
  ScopedViolationCapture cap;
  debug::DigestScenario s;
  s.topo.num_leaves = 2;
  s.topo.num_spines = 2;
  s.topo.hosts_per_leaf = 4;
  s.lb = core::conga();
  s.dist = workload::fixed_size(50'000);
  s.load = 0.4;
  s.warmup = sim::milliseconds(1);
  s.measure = sim::milliseconds(5);
  const debug::RunDigests d = debug::run_digest_trial(s);
  EXPECT_GT(d.events, 0u);
  EXPECT_GT(d.flows, 0u);
  EXPECT_TRUE(d.drained);
  EXPECT_EQ(cap.count(), 0u) << (cap.count() > 0
                                     ? debug::format_violation(
                                           cap.violations()[0])
                                     : "");
}

}  // namespace
}  // namespace conga
