// Tests for the drop-tail queue and link transmission model.
#include <gtest/gtest.h>

#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/scheduler.hpp"

namespace conga::net {
namespace {

PacketPtr packet_of(std::uint32_t bytes) {
  PacketPtr p = make_packet();
  p->size_bytes = bytes;
  return p;
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(1 << 20);
  auto a = packet_of(100);
  auto b = packet_of(200);
  const auto ida = a->id;
  const auto idb = b->id;
  q.enqueue(std::move(a), 0);
  q.enqueue(std::move(b), 0);
  EXPECT_EQ(q.dequeue(1)->id, ida);
  EXPECT_EQ(q.dequeue(2)->id, idb);
  EXPECT_EQ(q.dequeue(3), nullptr);
}

TEST(DropTailQueue, ByteAccounting) {
  DropTailQueue q(1000);
  EXPECT_TRUE(q.enqueue(packet_of(400), 0));
  EXPECT_TRUE(q.enqueue(packet_of(600), 0));
  EXPECT_EQ(q.bytes(), 1000u);
  EXPECT_EQ(q.packets(), 2u);
  q.dequeue(1);
  EXPECT_EQ(q.bytes(), 600u);
}

TEST(DropTailQueue, DropsWhenFull) {
  DropTailQueue q(1000);
  EXPECT_TRUE(q.enqueue(packet_of(900), 0));
  EXPECT_FALSE(q.enqueue(packet_of(200), 0));  // would exceed capacity
  EXPECT_EQ(q.stats().dropped_pkts, 1u);
  EXPECT_EQ(q.stats().dropped_bytes, 200u);
  // A packet that exactly fits still goes in.
  EXPECT_TRUE(q.enqueue(packet_of(100), 0));
}

TEST(DropTailQueue, TracksMaxOccupancy) {
  DropTailQueue q(10000);
  q.enqueue(packet_of(4000), 0);
  q.enqueue(packet_of(4000), 0);
  q.dequeue(1);
  q.dequeue(2);
  EXPECT_EQ(q.stats().max_bytes_seen, 8000u);
}

TEST(DropTailQueue, TimeAverageIntegratesOccupancy) {
  DropTailQueue q(1 << 20);
  q.enqueue(packet_of(1000), 0);   // 1000 B over [0, 100)
  q.dequeue(100);                  // 0 B over [100, 200)
  EXPECT_NEAR(q.time_avg_bytes(200), 500.0, 1e-6);
}

/// Captures delivered packets with their arrival times.
class SinkNode : public Node {
 public:
  void receive(PacketPtr pkt, int in_port) override {
    arrivals.emplace_back(pkt->id, in_port);
    sizes.push_back(pkt->size_bytes);
  }
  std::string name() const override { return "sink"; }
  std::vector<std::pair<std::uint64_t, int>> arrivals;
  std::vector<std::uint32_t> sizes;
};

LinkConfig test_link_cfg() {
  LinkConfig cfg;
  cfg.rate_bps = 1e9;  // 1 Gbps: 8 ns per byte, easy math
  cfg.propagation_delay = sim::microseconds(2);
  cfg.queue_capacity_bytes = 1 << 20;
  return cfg;
}

TEST(Link, DeliversAfterSerializationPlusPropagation) {
  sim::Scheduler sched;
  SinkNode sink;
  Link link(sched, "l", test_link_cfg());
  link.connect_to(&sink, 7);
  link.send(packet_of(1250));  // 1250 B * 8 / 1e9 = 10 us serialization
  sched.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].second, 7);
  EXPECT_EQ(sched.now(), sim::microseconds(12));  // 10 us ser + 2 us prop
}

TEST(Link, BackToBackPacketsSerializeSequentially) {
  sim::Scheduler sched;
  SinkNode sink;
  Link link(sched, "l", test_link_cfg());
  link.connect_to(&sink, 0);
  link.send(packet_of(1250));
  link.send(packet_of(1250));
  std::vector<sim::TimeNs> times;
  sched.schedule_at(sim::microseconds(12), [&] { times.push_back(sched.now()); });
  sched.run();
  // Second packet: starts at 10us, arrives at 22us.
  EXPECT_EQ(sched.now(), sim::microseconds(22));
  EXPECT_EQ(sink.arrivals.size(), 2u);
}

TEST(Link, PreservesOrder) {
  sim::Scheduler sched;
  SinkNode sink;
  Link link(sched, "l", test_link_cfg());
  link.connect_to(&sink, 0);
  std::vector<std::uint64_t> sent_ids;
  for (int i = 0; i < 20; ++i) {
    auto p = packet_of(500);
    sent_ids.push_back(p->id);
    link.send(std::move(p));
  }
  sched.run();
  ASSERT_EQ(sink.arrivals.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(sink.arrivals[static_cast<size_t>(i)].first,
              sent_ids[static_cast<size_t>(i)]);
  }
}

TEST(Link, ThroughputMatchesRate) {
  sim::Scheduler sched;
  SinkNode sink;
  LinkConfig cfg = test_link_cfg();
  cfg.queue_capacity_bytes = 4 << 20;  // hold the whole 1.25 MB burst
  Link link(sched, "l", cfg);
  link.connect_to(&sink, 0);
  const int n = 1000;
  for (int i = 0; i < n; ++i) link.send(packet_of(1250));
  sched.run();
  const double secs = sim::to_seconds(sched.now() - cfg.propagation_delay);
  const double bps = n * 1250 * 8.0 / secs;
  EXPECT_NEAR(bps / cfg.rate_bps, 1.0, 0.01);
}

TEST(Link, DropsOverflowInsteadOfQueueing) {
  sim::Scheduler sched;
  SinkNode sink;
  LinkConfig cfg = test_link_cfg();
  cfg.queue_capacity_bytes = 2500;  // room for 2 x 1250B
  Link link(sched, "l", cfg);
  link.connect_to(&sink, 0);
  // First packet starts transmitting immediately (not queued), next two fill
  // the queue, remaining two drop.
  for (int i = 0; i < 5; ++i) link.send(packet_of(1250));
  sched.run();
  EXPECT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(link.queue().stats().dropped_pkts, 2u);
}

TEST(Link, CeMarkingOnFabricLinks) {
  sim::Scheduler sched;
  SinkNode sink;
  LinkConfig cfg = test_link_cfg();
  cfg.marks_ce = true;
  Link link(sched, "l", cfg);
  link.connect_to(&sink, 0);

  // Prime the DRE to a high utilization.
  link.dre().add(static_cast<std::uint32_t>(1e9 / 8 * 160e-6), 0);

  auto p = packet_of(1000);
  p->overlay.valid = true;
  p->overlay.ce = 1;
  link.send(std::move(p));

  bool checked = false;
  SinkNode* s = &sink;
  sched.schedule_at(sim::milliseconds(1), [&checked, s] {
    checked = !s->arrivals.empty();
  });
  sched.run();
  EXPECT_TRUE(checked);
  // CE must have been raised to the DRE's quantized level (> 1).
  // We can't inspect the delivered packet via SinkNode easily, so re-check
  // via a second packet with a fresh sink below.
}

/// Sink that records the CE values of delivered packets.
class CeSink : public Node {
 public:
  void receive(PacketPtr pkt, int) override { ce.push_back(pkt->overlay.ce); }
  std::string name() const override { return "ce-sink"; }
  std::vector<std::uint8_t> ce;
};

TEST(Link, CeIsMaxOfPacketAndLink) {
  sim::Scheduler sched;
  CeSink sink;
  LinkConfig cfg = test_link_cfg();
  cfg.marks_ce = true;
  Link link(sched, "l", cfg);
  link.connect_to(&sink, 0);
  link.dre().add(static_cast<std::uint32_t>(1e9 / 8 * 160e-6 / 2), 0);  // ~0.5

  auto low = packet_of(100);
  low->overlay.valid = true;
  low->overlay.ce = 0;
  auto high = packet_of(100);
  high->overlay.valid = true;
  high->overlay.ce = 7;
  link.send(std::move(low));
  link.send(std::move(high));
  sched.run();
  ASSERT_EQ(sink.ce.size(), 2u);
  EXPECT_GE(sink.ce[0], 3);  // raised to link metric
  EXPECT_EQ(sink.ce[1], 7);  // kept: packet already saw worse congestion
}

TEST(Link, CeSumAggregationAddsAndClamps) {
  sim::Scheduler sched;
  CeSink sink;
  LinkConfig cfg = test_link_cfg();
  cfg.marks_ce = true;
  cfg.ce_sum = true;
  Link link(sched, "l", cfg);
  link.connect_to(&sink, 0);
  link.dre().add(static_cast<std::uint32_t>(1e9 / 8 * 160e-6 / 2), 0);  // ~0.5

  auto low = packet_of(100);
  low->overlay.valid = true;
  low->overlay.ce = 2;
  auto high = packet_of(100);
  high->overlay.valid = true;
  high->overlay.ce = 6;
  link.send(std::move(low));
  link.send(std::move(high));
  sched.run();
  ASSERT_EQ(sink.ce.size(), 2u);
  EXPECT_GE(sink.ce[0], 5);  // 2 + ~3..4
  EXPECT_EQ(sink.ce[1], 7);  // clamped at the Q-bit maximum
}

TEST(Link, EdgeLinksDoNotMarkCe) {
  sim::Scheduler sched;
  CeSink sink;
  LinkConfig cfg = test_link_cfg();
  cfg.marks_ce = false;
  Link link(sched, "l", cfg);
  link.connect_to(&sink, 0);
  link.dre().add(1 << 24, 0);  // very hot
  auto p = packet_of(100);
  p->overlay.valid = true;
  p->overlay.ce = 0;
  link.send(std::move(p));
  sched.run();
  ASSERT_EQ(sink.ce.size(), 1u);
  EXPECT_EQ(sink.ce[0], 0);
}

TEST(DropTailQueue, EcnMarksAboveThreshold) {
  DropTailQueue q(1 << 20, /*ecn_threshold_bytes=*/2000);
  auto a = packet_of(1500);
  net::Packet* pa = a.get();
  q.enqueue(std::move(a), 0);
  EXPECT_FALSE(pa->ecn_ce) << "below threshold";
  auto b = packet_of(1500);
  net::Packet* pb = b.get();
  q.enqueue(std::move(b), 0);
  EXPECT_FALSE(pb->ecn_ce) << "occupancy 1500 <= 2000 at enqueue";
  auto c = packet_of(1500);
  net::Packet* pc = c.get();
  q.enqueue(std::move(c), 0);
  EXPECT_TRUE(pc->ecn_ce) << "occupancy 3000 > 2000 at enqueue";
  EXPECT_EQ(q.stats().ecn_marked_pkts, 1u);
}

TEST(DropTailQueue, EcnDisabledByDefault) {
  DropTailQueue q(1 << 20);
  for (int i = 0; i < 100; ++i) q.enqueue(packet_of(1500), 0);
  EXPECT_EQ(q.stats().ecn_marked_pkts, 0u);
}

TEST(Link, DownLinkBlackholes) {
  sim::Scheduler sched;
  SinkNode sink;
  Link link(sched, "l", test_link_cfg());
  link.connect_to(&sink, 0);
  link.set_up(false);
  link.send(packet_of(100));
  sched.run();
  EXPECT_TRUE(sink.arrivals.empty());
}

TEST(SharedBufferPool, DynamicLimitShrinksWithUse) {
  SharedBufferPool pool(1000, 1.0);
  EXPECT_EQ(pool.dynamic_limit(), 1000u);
  pool.reserve(400);
  EXPECT_EQ(pool.dynamic_limit(), 600u);
  pool.release(400);
  EXPECT_EQ(pool.dynamic_limit(), 1000u);
}

TEST(SharedBufferPool, AlphaScalesHeadroom) {
  SharedBufferPool pool(1000, 2.0);
  pool.reserve(600);
  EXPECT_EQ(pool.dynamic_limit(), 800u);  // 2 * 400 free
}

TEST(SharedBufferPool, OneHotQueueTakesMostOfThePool) {
  // With alpha=1 a single queue converges to total/2; with alpha=2, to 2/3.
  SharedBufferPool pool(900, 2.0);
  DropTailQueue q(1 << 30, 0, &pool);
  std::uint64_t accepted = 0;
  for (int i = 0; i < 1000; ++i) {
    auto p = packet_of(100);
    if (!q.enqueue(std::move(p), 0)) break;
    accepted += 100;
  }
  EXPECT_NEAR(static_cast<double>(accepted), 600.0, 100.0);
}

TEST(SharedBufferPool, TwoQueuesSqueezeEachOther) {
  SharedBufferPool pool(1200, 1.0);
  DropTailQueue a(1 << 30, 0, &pool);
  DropTailQueue b(1 << 30, 0, &pool);
  // Alternate enqueues until both saturate.
  for (int i = 0; i < 200; ++i) {
    a.enqueue(packet_of(100), 0);
    b.enqueue(packet_of(100), 0);
  }
  // Equilibrium: each holds ~total/3 with alpha=1 (limit = free = T - 2q).
  EXPECT_NEAR(static_cast<double>(a.bytes()), 400.0, 120.0);
  EXPECT_NEAR(static_cast<double>(b.bytes()), 400.0, 120.0);
  // Dequeuing from one frees headroom for the other.
  const auto before = pool.dynamic_limit();
  for (int i = 0; i < 3; ++i) a.dequeue(1);
  EXPECT_GT(pool.dynamic_limit(), before);
}

TEST(SharedBufferPool, StaticCapStillApplies) {
  SharedBufferPool pool(1 << 20, 8.0);
  DropTailQueue q(500, 0, &pool);  // hard per-port cap dominates
  EXPECT_TRUE(q.enqueue(packet_of(400), 0));
  EXPECT_FALSE(q.enqueue(packet_of(400), 0));
}

TEST(Link, SerializationDelayHelper) {
  sim::Scheduler sched;
  SinkNode sink;
  LinkConfig cfg;
  cfg.rate_bps = 40e9;
  Link link(sched, "l", cfg);
  EXPECT_EQ(link.serialization_delay(1500), 1500 * 8 / 40);  // 300 ns
}

}  // namespace
}  // namespace conga::net
