// Supervisor unit tests: the deterministic backoff schedule, the
// CONGA_CELL_FAULT directive grammar, fault -> (cell, attempt) matching,
// and the child-side cell_main protocol (request in, response + store entry
// out) exercised in-process — the fork/exec loop itself is covered end to
// end by serve_cli_test.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/experiment_spec.hpp"
#include "campaign/json.hpp"
#include "campaign/store.hpp"
#include "campaign/supervisor.hpp"
#include "net/topology.hpp"

namespace conga::campaign {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("conga_supervisor_test." + tag + "." +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

TEST(Backoff, DeterministicPerKeyAndAttempt) {
  SupervisorOptions opts;
  opts.backoff_base_ms = 100;
  opts.backoff_cap_ms = 2000;
  const std::int64_t a1 = backoff_delay_ms("cell-a", 1, opts);
  const std::int64_t a1_again = backoff_delay_ms("cell-a", 1, opts);
  EXPECT_EQ(a1, a1_again);  // pure function: reruns retry on one schedule
  // Distinct keys get distinct jitter (with overwhelming probability for
  // these two fixed strings — this is a regression pin, not a property).
  EXPECT_NE(backoff_delay_ms("cell-a", 1, opts),
            backoff_delay_ms("cell-b", 1, opts));
}

TEST(Backoff, GrowsExponentiallyToTheCap) {
  SupervisorOptions opts;
  opts.backoff_base_ms = 100;
  opts.backoff_cap_ms = 1000;
  const std::int64_t jitter_span = opts.backoff_base_ms / 4;
  for (int attempt = 1; attempt <= 10; ++attempt) {
    const std::int64_t d = backoff_delay_ms("k", attempt, opts);
    const std::int64_t floor =
        std::min<std::int64_t>(opts.backoff_cap_ms,
                               opts.backoff_base_ms << (attempt - 1));
    EXPECT_GE(d, floor) << "attempt " << attempt;
    EXPECT_LT(d, floor + jitter_span) << "attempt " << attempt;
  }
  // Far past the cap the shifted base would overflow without the clamp.
  const std::int64_t huge = backoff_delay_ms("k", 1000, opts);
  EXPECT_GE(huge, opts.backoff_cap_ms);
  EXPECT_LT(huge, opts.backoff_cap_ms + jitter_span);
}

TEST(FaultSpec, ParsesDirectiveLists) {
  std::vector<CellFaultDirective> out;
  std::string err;
  ASSERT_TRUE(parse_cell_fault("crash:0,hang:2@1,tear:3", out, err)) << err;
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].mode, CellFaultDirective::Mode::kCrash);
  EXPECT_EQ(out[0].cell, 0u);
  EXPECT_EQ(out[0].attempt, 0);  // every attempt
  EXPECT_EQ(out[1].mode, CellFaultDirective::Mode::kHang);
  EXPECT_EQ(out[1].cell, 2u);
  EXPECT_EQ(out[1].attempt, 1);
  EXPECT_EQ(out[2].mode, CellFaultDirective::Mode::kTear);

  ASSERT_TRUE(parse_cell_fault("", out, err));
  EXPECT_TRUE(out.empty());
}

TEST(FaultSpec, RejectsMalformedDirectives) {
  std::vector<CellFaultDirective> out;
  std::string err;
  EXPECT_FALSE(parse_cell_fault("explode:0", out, err));
  EXPECT_NE(err.find("unknown CONGA_CELL_FAULT mode"), std::string::npos);
  EXPECT_FALSE(parse_cell_fault("crash", out, err));
  EXPECT_FALSE(parse_cell_fault("crash:x", out, err));
  EXPECT_FALSE(parse_cell_fault("crash:1@0", out, err));
  EXPECT_FALSE(parse_cell_fault("crash:-1", out, err));
}

TEST(FaultSpec, ActionMatchesCellAndAttempt) {
  std::vector<CellFaultDirective> d;
  std::string err;
  ASSERT_TRUE(parse_cell_fault("crash:0,hang:2@1", d, err)) << err;
  EXPECT_STREQ(fault_action(d, 0, 1), "crash");
  EXPECT_STREQ(fault_action(d, 0, 3), "crash");  // @ omitted: every attempt
  EXPECT_STREQ(fault_action(d, 2, 1), "hang");
  EXPECT_STREQ(fault_action(d, 2, 2), "");  // attempt-pinned: only @1
  EXPECT_STREQ(fault_action(d, 1, 1), "");
}

TEST(SelfExe, ResolvesARealExecutable) {
  const std::string exe = self_exe_path("fallback");
  ASSERT_FALSE(exe.empty());
  EXPECT_EQ(::access(exe.c_str(), X_OK), 0) << exe;
}

/// Builds the conga-cell-request-v1 document the supervisor sends.
std::string make_request(const ExperimentSpec& spec, const std::string& key,
                         const std::string& store_root) {
  Json j = Json::object();
  j.set("schema", Json::string("conga-cell-request-v1"));
  j.set("key", Json::string(key));
  j.set("fingerprint", Json::string("testfp"));
  j.set("store", Json::string(store_root));
  j.set("spec", json_of_spec(spec));
  return j.dump();
}

ExperimentSpec tiny_spec() {
  ExperimentSpec s;
  s.policy = "ecmp";
  s.load = 0.3;
  s.topo = net::testbed_baseline();
  s.topo.hosts_per_leaf = 4;
  s.warmup_ns = sim::milliseconds(1);
  s.measure_ns = sim::milliseconds(2);
  s.max_drain_ns = sim::milliseconds(300);
  return s;
}

TEST(CellMain, SimulatesStoresAndEchoes) {
  TempDir tmp("cellmain");
  const std::string store_root = (tmp.path / "store").string();
  const ExperimentSpec spec = tiny_spec();
  const std::string key = cell_key(spec, "testfp");

  std::string response;
  std::string diag;
  const int code =
      cell_main(make_request(spec, key, store_root), response, diag);
  ASSERT_EQ(code, 0) << diag;

  Json doc;
  std::string err;
  ASSERT_TRUE(Json::parse(response, doc, err)) << err;
  EXPECT_EQ(doc.find("schema")->as_string(), "conga-cell-response-v1");
  EXPECT_EQ(doc.find("key")->as_string(), key);
  EXPECT_TRUE(doc.find("stored")->as_bool());
  workload::ExperimentResult echoed;
  ASSERT_TRUE(result_from_json(*doc.find("result"), echoed, err)) << err;
  EXPECT_GT(echoed.flows, 0u);

  // The child wrote the store entry itself; the parent can read it back.
  ResultStore store(store_root);
  workload::ExperimentResult loaded;
  ASSERT_EQ(store.load(key, loaded, err), ResultStore::LoadStatus::kHit)
      << err;
  EXPECT_EQ(json_of_result(loaded).dump(), json_of_result(echoed).dump());
}

TEST(CellMain, StorelessRunStillEchoes) {
  const ExperimentSpec spec = tiny_spec();
  std::string response;
  std::string diag;
  const int code =
      cell_main(make_request(spec, cell_key(spec, "testfp"), ""), response,
                diag);
  ASSERT_EQ(code, 0) << diag;
  Json doc;
  std::string err;
  ASSERT_TRUE(Json::parse(response, doc, err)) << err;
  EXPECT_FALSE(doc.find("stored")->as_bool());
}

TEST(CellMain, RejectsBadRequestsPermanently) {
  std::string response;
  std::string diag;
  EXPECT_EQ(cell_main("not json", response, diag), 3);
  EXPECT_EQ(cell_main("{\"schema\":\"wrong\"}", response, diag), 3);
  // Unresolvable spec (unknown policy): exit 3, retrying cannot help.
  ExperimentSpec spec = tiny_spec();
  spec.policy = "no-such-policy";
  EXPECT_EQ(cell_main(make_request(spec, "k", ""), response, diag), 3);
  EXPECT_TRUE(response.empty());
  EXPECT_FALSE(diag.empty());
}

}  // namespace
}  // namespace conga::campaign
