// Tests for MPTCP with LIA coupled congestion control.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "tcp/mptcp_connection.hpp"

namespace conga::tcp {
namespace {

net::TopologyConfig topo4() {
  net::TopologyConfig cfg;
  cfg.num_leaves = 2;
  cfg.num_spines = 4;
  cfg.hosts_per_leaf = 4;
  cfg.host_link_bps = 10e9;
  cfg.fabric_link_bps = 10e9;  // fabric paths individually narrower than 4x
  return cfg;
}

struct Rig {
  sim::Scheduler sched;
  net::Fabric fabric;
  explicit Rig(net::TopologyConfig t = topo4()) : fabric(sched, t, 3) {
    fabric.install_lb(lb::ecmp());
  }

  std::unique_ptr<MptcpFlow> flow(net::HostId src, net::HostId dst,
                                  std::uint64_t size, const MptcpConfig& cfg,
                                  std::uint16_t sport = 100) {
    net::FlowKey key;
    key.src_host = src;
    key.dst_host = dst;
    key.src_port = sport;
    key.dst_port = 200;
    return std::make_unique<MptcpFlow>(sched, fabric.host(src),
                                       fabric.host(dst), key, size, cfg,
                                       FlowCompleteFn{});
  }
};

MptcpConfig dc_mptcp(int subflows = 8) {
  MptcpConfig cfg;
  cfg.num_subflows = subflows;
  cfg.tcp.min_rto = sim::milliseconds(10);
  return cfg;
}

TEST(Mptcp, CompletesTransfer) {
  Rig rig;
  auto f = rig.flow(0, 4, 5'000'000, dc_mptcp());
  f->start();
  rig.sched.run();
  ASSERT_TRUE(f->complete());
}

TEST(Mptcp, CreatesRequestedSubflows) {
  Rig rig;
  auto f = rig.flow(0, 4, 1'000'000, dc_mptcp(8));
  EXPECT_EQ(f->num_subflows(), 8);
  auto g = rig.flow(0, 5, 1'000'000, dc_mptcp(2), 300);
  EXPECT_EQ(g->num_subflows(), 2);
}

TEST(Mptcp, SubflowsHaveDistinctPorts) {
  Rig rig;
  auto f = rig.flow(0, 4, 1'000'000, dc_mptcp(8));
  std::set<std::uint16_t> ports;
  for (int i = 0; i < f->num_subflows(); ++i) {
    ports.insert(f->subflow(i).flow().src_port);
  }
  EXPECT_EQ(ports.size(), 8u);
}

TEST(Mptcp, SingleSubflowBehavesLikeTcp) {
  Rig rig;
  const std::uint64_t size = 20'000'000;
  auto f = rig.flow(0, 4, size, dc_mptcp(1));
  f->start();
  rig.sched.run();
  ASSERT_TRUE(f->complete());
  const double gbps = size * 8.0 / sim::to_seconds(f->fct()) / 1e9;
  EXPECT_GT(gbps, 8.0);
}

TEST(Mptcp, AggregatesMultiplePaths) {
  // Host links 40G, fabric links 10G: one subflow can at best use one 10G
  // path, while 8 subflows spread over 4 spines and aggregate more.
  net::TopologyConfig t = topo4();
  t.host_link_bps = 40e9;
  Rig rig(t);
  const std::uint64_t size = 30'000'000;

  auto one = rig.flow(0, 4, size, dc_mptcp(1), 100);
  one->start();
  rig.sched.run();
  ASSERT_TRUE(one->complete());
  const double gbps_one = size * 8.0 / sim::to_seconds(one->fct()) / 1e9;

  Rig rig2(t);
  auto many = rig2.flow(0, 4, size, dc_mptcp(8), 100);
  many->start();
  rig2.sched.run();
  ASSERT_TRUE(many->complete());
  const double gbps_many = size * 8.0 / sim::to_seconds(many->fct()) / 1e9;

  EXPECT_LT(gbps_one, 11.0);
  EXPECT_GT(gbps_many, 1.5 * gbps_one);
}

TEST(Mptcp, DeliversExactly) {
  Rig rig;
  const std::uint64_t size = 3'333'333;
  auto f = rig.flow(0, 4, size, dc_mptcp());
  f->start();
  rig.sched.run();
  ASSERT_TRUE(f->complete());
  std::uint64_t acked = 0;
  for (int i = 0; i < f->num_subflows(); ++i) {
    acked += f->subflow(i).bytes_acked();
  }
  EXPECT_EQ(acked, size);
}

TEST(Mptcp, AlphaIsFiniteAndPositive) {
  Rig rig;
  auto f = rig.flow(0, 4, 10'000'000, dc_mptcp());
  f->start();
  rig.sched.run_until(sim::milliseconds(2));
  EXPECT_GT(f->alpha(), 0.0);
  EXPECT_LT(f->alpha(), 1e6);
  rig.sched.run();
  EXPECT_TRUE(f->complete());
}

TEST(Mptcp, CoupledIncreaseIsGentlerThanNSingleFlows) {
  // LIA caps the aggregate increase: after the same time on an uncongested
  // path, total cwnd of 8 coupled subflows stays below 8x a single TCP's
  // growth (RFC 6356 goal: don't be more aggressive than one TCP per path
  // bundle). We compare against 8 * single-subflow cwnd.
  Rig rig;
  auto coupled = rig.flow(0, 4, 50'000'000, dc_mptcp(8), 100);
  coupled->start();
  Rig rig2;
  auto single = rig2.flow(0, 4, 50'000'000, dc_mptcp(1), 100);
  single->start();
  // Run past slow start into congestion avoidance.
  rig.sched.run_until(sim::milliseconds(20));
  rig2.sched.run_until(sim::milliseconds(20));
  EXPECT_LT(coupled->total_cwnd(), 8.0 * single->total_cwnd());
}

TEST(Mptcp, LiaIsNotGrosslyUnfairToSingleTcp) {
  // RFC 6356 goal: an MPTCP bundle should take about one TCP's share of a
  // shared bottleneck, not num_subflows shares. Drop-tail makes the contest
  // oscillate, so assert a generous band over a long horizon.
  net::TopologyConfig topo;
  topo.num_leaves = 2;
  topo.num_spines = 2;
  topo.hosts_per_leaf = 4;
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo, 1);
  fabric.install_lb(lb::ecmp());
  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(10);
  net::FlowKey k1{0, 4, 100, 200};
  TcpFlow tcp_flow(sched, fabric.host(0), fabric.host(4), k1,
                   std::uint64_t{1} << 40, t, FlowCompleteFn{});
  MptcpConfig m;
  m.tcp = t;
  m.num_subflows = 8;
  net::FlowKey k2{1, 4, 300, 400};
  MptcpFlow mptcp_flow(sched, fabric.host(1), fabric.host(4), k2,
                       std::uint64_t{1} << 40, m, FlowCompleteFn{});
  tcp_flow.start();
  sched.schedule_at(sim::milliseconds(5), [&] { mptcp_flow.start(); });

  sched.run_until(sim::milliseconds(40));  // past the start-up transient
  const std::uint64_t t0 = tcp_flow.sender().bytes_acked();
  std::uint64_t m0 = 0;
  for (int i = 0; i < 8; ++i) m0 += mptcp_flow.subflow(i).bytes_acked();
  sched.run_until(sim::milliseconds(240));
  const std::uint64_t t1 = tcp_flow.sender().bytes_acked();
  std::uint64_t m1 = 0;
  for (int i = 0; i < 8; ++i) m1 += mptcp_flow.subflow(i).bytes_acked();

  const double tcp_bytes = static_cast<double>(t1 - t0);
  const double mptcp_bytes = static_cast<double>(m1 - m0);
  const double mptcp_share = mptcp_bytes / (tcp_bytes + mptcp_bytes);
  EXPECT_GT(mptcp_share, 0.1) << "MPTCP must not starve";
  EXPECT_LT(mptcp_share, 0.75)
      << "coupling must prevent 8 subflows taking 8 shares";
  // The link stays busy throughout.
  EXPECT_GT((tcp_bytes + mptcp_bytes) * 8 / 0.2, 8e9);
}

TEST(Mptcp, ZeroByteFlowCompletes) {
  Rig rig;
  auto f = rig.flow(0, 4, 0, dc_mptcp());
  f->start();
  rig.sched.run();
  EXPECT_TRUE(f->complete());
}

TEST(Mptcp, SmallFlowSmallerThanSubflowCount) {
  Rig rig;
  auto f = rig.flow(0, 4, 3, dc_mptcp(8));
  f->start();
  rig.sched.run();
  EXPECT_TRUE(f->complete());
}

TEST(Mptcp, SurvivesPathFailureAfterStart) {
  // One subflow's path dies; its RTO eventually re-sends the stranded chunk
  // on the same subflow... which is blackholed, but other subflows carry the
  // rest. The flow cannot fully complete if the chunk is stranded — verify
  // the connection at least delivers everything when the path heals.
  Rig rig;
  auto f = rig.flow(0, 4, 10'000'000, dc_mptcp(8));
  f->start();
  rig.sched.run_until(sim::microseconds(500));
  rig.fabric.down_link(2, 1, 0)->set_up(false);  // kill one spine->leaf1 path
  rig.sched.run_until(sim::milliseconds(100));
  rig.fabric.down_link(2, 1, 0)->set_up(true);
  rig.sched.run();
  EXPECT_TRUE(f->complete());
}

TEST(Mptcp, FactoryProducesWorkingFlows) {
  Rig rig;
  auto factory = make_mptcp_flow_factory(dc_mptcp());
  net::FlowKey key;
  key.src_host = 0;
  key.dst_host = 4;
  key.src_port = 500;
  key.dst_port = 600;
  bool completed = false;
  auto f = factory(rig.sched, rig.fabric.host(0), rig.fabric.host(4), key,
                   1'000'000, [&](FlowHandle&) { completed = true; });
  f->start();
  rig.sched.run();
  EXPECT_TRUE(completed);
  EXPECT_TRUE(f->complete());
}

}  // namespace
}  // namespace conga::tcp
