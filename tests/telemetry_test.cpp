// Telemetry subsystem tests: ring wraparound, category masks, exporter
// schema, probe sampling, fabric instrumentation, and trace-digest
// determinism (including across parallel-runner jobs counts).
#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <string>
#include <vector>

#include "debug/determinism.hpp"
#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "runtime/parallel_runner.hpp"
#include "telemetry/export.hpp"
#include "telemetry/probes.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/traffic_gen.hpp"

namespace conga {
namespace {

using telemetry::Category;
using telemetry::ComponentId;
using telemetry::Event;
using telemetry::EventType;
using telemetry::TraceSink;
using telemetry::TraceSinkConfig;

TEST(TraceSink, RecordsTypedEventsInSeqOrder) {
  TraceSink sink;
  const ComponentId q = sink.intern_component("q0");
  sink.record(EventType::kQueueEnqueue, q, 10, 1500, 1500);
  sink.record(EventType::kQueueDequeue, q, 20, 1500, 0);
  const std::vector<Event> ev = sink.events(q);
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].type, EventType::kQueueEnqueue);
  EXPECT_EQ(ev[0].t, 10);
  EXPECT_EQ(ev[0].a, 1500u);
  EXPECT_EQ(ev[1].type, EventType::kQueueDequeue);
  EXPECT_LT(ev[0].seq, ev[1].seq);
  EXPECT_EQ(sink.total_recorded(), 2u);
  EXPECT_EQ(sink.total_overwritten(), 0u);
}

TEST(TraceSink, ComponentInterningIsIdempotent) {
  TraceSink sink;
  const ComponentId a = sink.intern_component("leaf0");
  const ComponentId b = sink.intern_component("leaf1");
  EXPECT_NE(a, b);
  EXPECT_EQ(sink.intern_component("leaf0"), a);
  EXPECT_EQ(sink.find_component("leaf1"), b);
  EXPECT_EQ(sink.find_component("nope"), telemetry::kInvalidComponent);
  EXPECT_EQ(sink.component_name(a), "leaf0");
  EXPECT_EQ(sink.component_count(), 2u);
}

TEST(TraceSink, RingWrapsKeepingNewestEvents) {
  TraceSinkConfig cfg;
  cfg.ring_capacity = 4;
  TraceSink sink(cfg);
  const ComponentId c = sink.intern_component("c");
  for (std::uint64_t i = 0; i < 10; ++i) {
    sink.record(EventType::kDreUpdate, c, static_cast<sim::TimeNs>(i), i, 0);
  }
  EXPECT_EQ(sink.total_recorded(), 10u);
  EXPECT_EQ(sink.recorded(c), 10u);
  EXPECT_EQ(sink.total_overwritten(), 6u);
  const std::vector<Event> ev = sink.events(c);
  ASSERT_EQ(ev.size(), 4u);
  // Oldest-first unwrap: the four newest events, a = 6, 7, 8, 9.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ev[i].a, 6 + i);
    if (i > 0) EXPECT_LT(ev[i - 1].seq, ev[i].seq);
  }
}

TEST(TraceSink, DigestIndependentOfRingCapacity) {
  TraceSinkConfig small_cfg;
  small_cfg.ring_capacity = 2;
  TraceSink small(small_cfg);
  TraceSink big;  // default 8192
  for (TraceSink* s : {&small, &big}) {
    const ComponentId c = s->intern_component("c");
    for (std::uint64_t i = 0; i < 100; ++i) {
      s->record(EventType::kQueueEnqueue, c, static_cast<sim::TimeNs>(i), i,
                2 * i);
    }
  }
  // The streaming digest covers every event ever recorded, including those
  // the small ring overwrote.
  EXPECT_EQ(small.digest(), big.digest());
  EXPECT_GT(small.total_overwritten(), 0u);
  EXPECT_EQ(big.total_overwritten(), 0u);
}

TEST(TraceSink, CategoryMaskGatesEmit) {
  TraceSink sink;
  sink.set_category_mask(telemetry::category_bit(Category::kQueue));
  EXPECT_TRUE(sink.enabled(Category::kQueue));
  EXPECT_FALSE(sink.enabled(Category::kTcp));
  const ComponentId c = sink.intern_component("c");
  telemetry::emit(&sink, EventType::kQueueEnqueue, c, 1, 100, 100);
  telemetry::emit(&sink, EventType::kTcpRetransmit, c, 2, 0, 1);
  telemetry::emit(nullptr, EventType::kQueueEnqueue, c, 3);  // must not crash
#ifdef CONGA_TELEMETRY
  ASSERT_EQ(sink.total_recorded(), 1u);
  EXPECT_EQ(sink.events(c)[0].type, EventType::kQueueEnqueue);
#else
  EXPECT_EQ(sink.total_recorded(), 0u);  // emit() compiles to nothing
#endif
}

TEST(EventNames, RoundTripThroughParse) {
  for (unsigned i = 0; i < static_cast<unsigned>(EventType::kTypeCount); ++i) {
    const EventType t = static_cast<EventType>(i);
    EventType back = EventType::kTypeCount;
    ASSERT_TRUE(telemetry::parse_event_type(telemetry::event_type_name(t),
                                            back));
    EXPECT_EQ(back, t);
  }
  for (unsigned i = 0; i < static_cast<unsigned>(Category::kCount); ++i) {
    const Category c = static_cast<Category>(i);
    Category back = Category::kCount;
    ASSERT_TRUE(telemetry::parse_category(telemetry::category_name(c), back));
    EXPECT_EQ(back, c);
  }
  EventType t = EventType::kTypeCount;
  EXPECT_FALSE(telemetry::parse_event_type("no_such_event", t));
  Category c = Category::kCount;
  EXPECT_FALSE(telemetry::parse_category("no_such_category", c));
}

/// Reads a whole FILE* written by an exporter back into a string.
std::string slurp(std::FILE* f) {
  std::rewind(f);
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  return out;
}

TEST(Exporters, JsonlSchemaAndCsvHeader) {
  TraceSink sink;
  const ComponentId q = sink.intern_component("down:l1s1p0");
  sink.record(EventType::kQueueEnqueue, q, 1000, 1500, 1500);
  sink.record(EventType::kCounterSample, q, 2000, 41, 41);
  sink.record(EventType::kGaugeSample, q, 3000,
              std::bit_cast<std::uint64_t>(2.5), 0);

  std::FILE* jf = std::tmpfile();
  ASSERT_NE(jf, nullptr);
  telemetry::write_jsonl(sink, jf);
  const std::string jsonl = slurp(jf);
  std::fclose(jf);

  // Meta header first, then one object per event in seq order.
  EXPECT_EQ(jsonl.rfind("{\"meta\":{\"schema\":\"conga-trace-v1\"", 0), 0u);
  EXPECT_NE(jsonl.find("\"components\":[\"down:l1s1p0\"]"), std::string::npos);
  EXPECT_NE(jsonl.find("\"total_recorded\":3"), std::string::npos);
  EXPECT_NE(jsonl.find("{\"t\":1000,\"seq\":1,\"comp\":\"down:l1s1p0\","
                       "\"cat\":\"queue\",\"type\":\"queue_enqueue\","
                       "\"a\":1500,\"b\":1500}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"counter_sample\",\"a\":41,\"b\":41,"
                       "\"value\":41,\"delta\":41}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"gauge_sample\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"value\":2.5}"), std::string::npos);
  // Line count: meta + 3 events.
  std::size_t lines = 0;
  for (char ch : jsonl) lines += ch == '\n';
  EXPECT_EQ(lines, 4u);

  std::FILE* cf = std::tmpfile();
  ASSERT_NE(cf, nullptr);
  telemetry::write_csv(sink, cf);
  const std::string csv = slurp(cf);
  std::fclose(cf);
  EXPECT_EQ(csv.rfind("t,seq,comp,cat,type,a,b\n", 0), 0u);
  EXPECT_NE(csv.find("1000,1,down:l1s1p0,queue,queue_enqueue,1500,1500\n"),
            std::string::npos);
}

TEST(PeriodicSampler, CounterDeltasAndGaugeValues) {
  sim::Scheduler sched;
  TraceSink sink;
  std::uint64_t bytes = 0;
  double depth = 0.0;
  sink.probes().add_counter("x/bytes", [&bytes] { return bytes; });
  sink.probes().add_gauge("x/depth", [&depth] { return depth; });
  // Bump the counter by 100 and the gauge by 1.0 every ms, starting at 0.5ms.
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(sim::microseconds(500) + sim::milliseconds(i),
                      [&bytes, &depth] {
                        bytes += 100;
                        depth += 1.0;
                      });
  }
  telemetry::PeriodicSampler sampler(sched, sink, sim::milliseconds(1), 0,
                                     sim::milliseconds(10));
  sched.run();

  ASSERT_EQ(sampler.probe_count(), 2u);
  // Ticks at 0, 1, ..., 10 ms inclusive (same schedule the old QueueSampler
  // used: first at start, then while now + interval <= end).
  ASSERT_EQ(sampler.times().size(), 11u);
  EXPECT_EQ(sampler.times().front(), 0);
  EXPECT_EQ(sampler.times().back(), sim::milliseconds(10));
  // Counter: first sample is the baseline, so 10 deltas of 100 each.
  ASSERT_EQ(sampler.series(0).size(), 10u);
  for (double d : sampler.series(0)) EXPECT_DOUBLE_EQ(d, 100.0);
  // Gauge: 11 instantaneous values 0, 1, ..., 10.
  ASSERT_EQ(sampler.series(1).size(), 11u);
  for (std::size_t i = 0; i < 11; ++i) {
    EXPECT_DOUBLE_EQ(sampler.series(1)[i], static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(sampler.summary("x/depth").max(), 10.0);
#ifdef CONGA_TELEMETRY
  // Probe samples are also recorded as events: (11 counter + 11 gauge).
  EXPECT_EQ(sink.total_recorded(), 22u);
#endif
}

#ifdef CONGA_TELEMETRY

TEST(FabricTelemetry, RuntimeFailureEmitsLinkEvents) {
  sim::Scheduler sched;
  net::TopologyConfig topo = net::testbed_baseline();
  topo.hosts_per_leaf = 2;
  net::Fabric fabric(sched, topo, 1);
  fabric.install_lb(lb::ecmp());
  TraceSink sink;
  fabric.attach_telemetry(&sink);

  sched.schedule_at(sim::milliseconds(1), [&fabric] {
    fabric.fail_fabric_link(1, 1, 0, sim::milliseconds(1));
  });
  sched.schedule_at(sim::milliseconds(5), [&fabric] {
    fabric.restore_fabric_link(1, 1, 0, sim::milliseconds(1));
  });
  sched.run();

  const ComponentId up = sink.find_component("up:l1s1p0");
  ASSERT_NE(up, telemetry::kInvalidComponent);
  std::vector<EventType> types;
  for (const Event& e : sink.events(up)) types.push_back(e.type);
  const std::vector<EventType> want = {
      EventType::kLinkDown,      // dataplane dies at 1ms
      EventType::kLinkWithdrawn, // control plane notices at 2ms
      EventType::kLinkUp,        // dataplane back at 5ms
      EventType::kLinkRestored,  // control plane reinstates at 6ms
  };
  EXPECT_EQ(types, want);
  const std::vector<Event> ev = sink.events(up);
  EXPECT_EQ(ev[1].t, sim::milliseconds(2));
  EXPECT_EQ(ev[1].a, 1u);  // spine
  EXPECT_EQ(ev[1].b, 1u);  // leaf
}

TEST(FabricTelemetry, WorkloadRunCoversEveryLayer) {
  sim::Scheduler sched;
  net::TopologyConfig topo = net::testbed_baseline();
  topo.hosts_per_leaf = 4;
  net::Fabric fabric(sched, topo, 1);
  fabric.install_lb(core::conga());
  TraceSink sink;
  fabric.attach_telemetry(&sink);

  workload::TrafficGenConfig gc;
  gc.load = 0.4;
  gc.stop = sim::milliseconds(5);
  workload::TrafficGenerator gen(fabric,
                                 tcp::make_tcp_flow_factory({}),
                                 workload::enterprise(), gc);
  gen.start();
  workload::run_with_drain(sched, gen, gc.stop, sim::seconds(1.0));

  // Every instrumented layer shows up in one short run.
  std::uint32_t seen = 0;
  for (ComponentId c = 0; c < sink.component_count(); ++c) {
    for (const Event& e : sink.events(c)) {
      seen |= telemetry::category_bit(telemetry::category_of(e.type));
    }
  }
  EXPECT_TRUE(seen & telemetry::category_bit(Category::kQueue));
  EXPECT_TRUE(seen & telemetry::category_bit(Category::kDre));
  EXPECT_TRUE(seen & telemetry::category_bit(Category::kFlowlet));
  EXPECT_TRUE(seen & telemetry::category_bit(Category::kCongaTable));
  EXPECT_TRUE(seen & telemetry::category_bit(Category::kFlow));

  // all_events() is the seq-ordered merge of every ring.
  const std::vector<Event> all = sink.all_events();
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].seq, all[i].seq);
  }
}

#endif  // CONGA_TELEMETRY

debug::DigestScenario small_scenario() {
  debug::DigestScenario s;
  s.topo = net::testbed_baseline();
  s.topo.hosts_per_leaf = 4;
  s.lb = core::conga();
  s.load = 0.5;
  s.warmup = sim::milliseconds(1);
  s.measure = sim::milliseconds(5);
  return s;
}

TEST(TelemetryDeterminism, SinkIsPassive) {
  // Attaching a fully enabled sink must not perturb the packet schedule:
  // FCT digest, event-trace digest, and event count all stay identical.
  debug::DigestScenario off = small_scenario();
  off.telemetry = debug::TelemetryMode::kOff;
  debug::DigestScenario full = small_scenario();
  full.telemetry = debug::TelemetryMode::kFull;
  const debug::RunDigests a = debug::run_digest_trial(off);
  const debug::RunDigests b = debug::run_digest_trial(full);
  EXPECT_EQ(a.fct, b.fct);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.flows, b.flows);
  EXPECT_EQ(a.telemetry, 0u);  // kOff leaves the field zero
}

TEST(TelemetryDeterminism, SameSeedsSameTraceDigest) {
  const debug::DigestScenario s = small_scenario();
  const debug::RunDigests a = debug::run_digest_trial(s);
  const debug::RunDigests b = debug::run_digest_trial(s);
  EXPECT_EQ(a, b);  // includes the telemetry digest field
#ifdef CONGA_TELEMETRY
  EXPECT_NE(a.telemetry, 0u);
#endif
}

TEST(TelemetryDeterminism, TraceDigestIdenticalAcrossJobsCounts) {
  // The parallel experiment runner must not perturb recorded traces: the
  // per-cell telemetry digest is byte-identical for jobs=1 and jobs=4.
  std::vector<debug::DigestScenario> cells;
  for (const double load : {0.3, 0.6}) {
    for (std::uint64_t seed : {1ULL, 2ULL}) {
      debug::DigestScenario s = small_scenario();
      s.load = load;
      s.fabric_seed = seed;
      s.traffic_seed = seed * 31 + 7;
      cells.push_back(s);
    }
  }
  auto run_cell = [&cells](std::size_t i) {
    return debug::run_digest_trial(cells[i]);
  };
  const std::vector<debug::RunDigests> seq =
      runtime::parallel_map<debug::RunDigests>(cells.size(), 1, run_cell);
  const std::vector<debug::RunDigests> par =
      runtime::parallel_map<debug::RunDigests>(cells.size(), 4, run_cell);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].telemetry, par[i].telemetry) << "cell " << i;
    EXPECT_EQ(seq[i], par[i]) << "cell " << i;
  }
  // Distinct cells must not collide (the digest actually varies with input).
#ifdef CONGA_TELEMETRY
  EXPECT_NE(seq[0].telemetry, seq[1].telemetry);
#endif
}

}  // namespace
}  // namespace conga
