// Tests for CONGA's decision logic and feedback loop (§3.3, §3.5),
// exercised on a real (small) fabric so local DREs and tables are live.
#include <gtest/gtest.h>

#include <set>

#include "core/conga_lb.hpp"
#include "lb/factories.hpp"
#include "net/fabric.hpp"

namespace conga::core {
namespace {

net::TopologyConfig small_topo() {
  net::TopologyConfig cfg;
  cfg.num_leaves = 3;
  cfg.num_spines = 2;
  cfg.hosts_per_leaf = 2;
  cfg.links_per_spine = 1;
  cfg.host_link_bps = 10e9;
  cfg.fabric_link_bps = 40e9;
  return cfg;
}

struct TestRig {
  sim::Scheduler sched;
  net::Fabric fabric;
  CongaLb* lb0;

  explicit TestRig(const net::TopologyConfig& topo = small_topo(),
                   CongaConfig conga_cfg = {})
      : fabric(sched, topo, 99) {
    fabric.install_lb(conga(conga_cfg));
    lb0 = dynamic_cast<CongaLb*>(fabric.leaf(0).load_balancer());
  }
};

net::FlowKey key(int i) {
  net::FlowKey k;
  k.src_host = 0;
  k.dst_host = 2;  // host on leaf 1
  k.src_port = static_cast<std::uint16_t>(100 + i);
  k.dst_port = 7;
  return k;
}

TEST(CongaLb, InstalledOnEveryLeaf) {
  TestRig rig;
  for (int l = 0; l < 3; ++l) {
    EXPECT_NE(dynamic_cast<CongaLb*>(rig.fabric.leaf(l).load_balancer()),
              nullptr);
    EXPECT_EQ(rig.fabric.leaf(l).load_balancer()->name(), "CONGA");
  }
}

TEST(CongaLb, CostIsMaxOfLocalAndRemote) {
  TestRig rig;
  ASSERT_NE(rig.lb0, nullptr);
  // No traffic: both components zero.
  EXPECT_EQ(rig.lb0->cost(1, 0, 0), 0);
  // Heat up the local DRE of uplink 0.
  rig.fabric.leaf(0).uplinks()[0].link->dre().add(1 << 24, 0);
  EXPECT_GT(rig.lb0->cost(1, 0, 0), 0);
  // Remote metric alone also raises the cost on the other uplink.
  // (Simulate received feedback: our uplink 1 is congested toward leaf 1.)
  net::Packet fb;
  fb.overlay.valid = true;
  fb.overlay.src_leaf = 1;
  fb.overlay.lbtag = 0;
  fb.overlay.ce = 0;
  fb.overlay.fb_valid = true;
  fb.overlay.fb_lbtag = 1;
  fb.overlay.fb_metric = 6;
  rig.lb0->on_fabric_receive(fb, 0);
  EXPECT_EQ(rig.lb0->cost(1, 1, 0), 6);
}

TEST(CongaLb, DecisionPicksLeastCost) {
  TestRig rig;
  // Make uplink 0 expensive via remote feedback for destination leaf 1.
  net::Packet fb;
  fb.overlay.valid = true;
  fb.overlay.src_leaf = 1;
  fb.overlay.lbtag = 0;
  fb.overlay.fb_valid = true;
  fb.overlay.fb_lbtag = 0;
  fb.overlay.fb_metric = 7;
  rig.lb0->on_fabric_receive(fb, 0);
  // Decision for a new flowlet toward leaf 1 must avoid uplink 0.
  EXPECT_EQ(rig.lb0->decide(key(1), 1, 1), 1);
}

TEST(CongaLb, RemoteMetricsArePerDestinationLeaf) {
  TestRig rig;
  // Uplink 0 congested toward leaf 1 only; decisions toward leaf 2 ignore it.
  net::Packet fb;
  fb.overlay.valid = true;
  fb.overlay.src_leaf = 1;
  fb.overlay.fb_valid = true;
  fb.overlay.fb_lbtag = 0;
  fb.overlay.fb_metric = 7;
  rig.lb0->on_fabric_receive(fb, 0);
  EXPECT_EQ(rig.lb0->cost(1, 0, 1), 7);
  EXPECT_EQ(rig.lb0->cost(2, 0, 1), 0);
}

TEST(CongaLb, TieBreakPrefersPreviousPort) {
  TestRig rig;
  const net::FlowKey k = key(2);
  // Install then expire a flowlet on uplink 1.
  rig.lb0->flowlets().install(k, 1, 0);
  const sim::TimeNs later = sim::milliseconds(5);
  ASSERT_EQ(rig.lb0->flowlets().lookup(k, later), -1) << "must have expired";
  // All costs equal (idle fabric): the flow must stay on uplink 1.
  for (int trial = 0; trial < 20; ++trial) {
    EXPECT_EQ(rig.lb0->decide(k, 1, later), 1);
  }
}

TEST(CongaLb, MovesOnlyForStrictlyBetterUplink) {
  TestRig rig;
  const net::FlowKey k = key(3);
  rig.lb0->flowlets().install(k, 0, 0);
  // Uplink 0 slightly congested, uplink 1 idle: strictly better -> move.
  net::Packet fb;
  fb.overlay.valid = true;
  fb.overlay.src_leaf = 1;
  fb.overlay.fb_valid = true;
  fb.overlay.fb_lbtag = 0;
  fb.overlay.fb_metric = 3;
  rig.lb0->on_fabric_receive(fb, 0);
  EXPECT_EQ(rig.lb0->decide(k, 1, 1), 1);
}

TEST(CongaLb, FlowletStickinessAcrossPackets) {
  TestRig rig;
  net::Packet pkt;
  pkt.flow = key(4);
  const int first = rig.lb0->select_uplink(pkt, 1, 0);
  // Subsequent packets within the gap stick to the same uplink even if the
  // other becomes cheaper in the meantime.
  rig.fabric.leaf(0)
      .uplinks()[static_cast<std::size_t>(first)]
      .link->dre()
      .add(1 << 24, 0);
  EXPECT_EQ(rig.lb0->select_uplink(pkt, 1, sim::microseconds(100)), first);
  EXPECT_EQ(rig.lb0->select_uplink(pkt, 1, sim::microseconds(400)), first);
}

TEST(CongaLb, NewFlowletReconsiders) {
  TestRig rig;
  net::Packet pkt;
  pkt.flow = key(5);
  const int first = rig.lb0->select_uplink(pkt, 1, 0);
  // Heat the chosen uplink right before the next flowlet's decision (the DRE
  // decays within ~10 tau, so the burst must be recent).
  rig.fabric.leaf(0)
      .uplinks()[static_cast<std::size_t>(first)]
      .link->dre()
      .add(1 << 24, sim::milliseconds(10));
  // After the flowlet gap the congested uplink must be abandoned.
  const int second =
      rig.lb0->select_uplink(pkt, 1, sim::milliseconds(10));
  EXPECT_NE(second, first);
}

TEST(CongaLb, AnnotateInsertsFeedback) {
  TestRig rig;
  // Receive a packet from leaf 1 so the From-Leaf table has something.
  net::Packet in;
  in.overlay.valid = true;
  in.overlay.src_leaf = 1;
  in.overlay.lbtag = 1;
  in.overlay.ce = 4;
  rig.lb0->on_fabric_receive(in, 0);

  net::Packet out;
  out.overlay.valid = true;
  out.overlay.dst_leaf = 1;
  rig.lb0->annotate(out, 0, 1);
  EXPECT_TRUE(out.overlay.fb_valid);
  EXPECT_EQ(out.overlay.fb_lbtag, 1);
  EXPECT_EQ(out.overlay.fb_metric, 4);
}

TEST(CongaLb, AnnotateWithoutStateSendsNoFeedback) {
  TestRig rig;
  net::Packet out;
  out.overlay.valid = true;
  out.overlay.dst_leaf = 2;
  rig.lb0->annotate(out, 0, 1);
  EXPECT_FALSE(out.overlay.fb_valid);
}

TEST(CongaLb, EndToEndFeedbackLoopPopulatesTables) {
  // Send real packets host(leaf0) -> host(leaf1) and back; both leaves'
  // tables must fill in via piggybacking.
  TestRig rig;
  auto send = [&](net::HostId src, net::HostId dst, std::uint16_t port) {
    net::PacketPtr p = net::make_packet();
    p->flow.src_host = src;
    p->flow.dst_host = dst;
    p->flow.src_port = port;
    p->flow.dst_port = 80;
    p->size_bytes = 1500;
    rig.fabric.host(src).send(std::move(p));
  };
  for (int i = 0; i < 50; ++i) {
    send(0, 2, static_cast<std::uint16_t>(1000 + i));  // leaf0 -> leaf1
    send(2, 0, static_cast<std::uint16_t>(2000 + i));  // leaf1 -> leaf0
  }
  rig.sched.run();

  auto* lb1 = dynamic_cast<CongaLb*>(rig.fabric.leaf(1).load_balancer());
  ASSERT_NE(lb1, nullptr);
  // Leaf 1 must have received CE state from leaf 0 (From-Leaf table) —
  // check via pick_feedback which only returns data for updated entries.
  EXPECT_TRUE(lb1->from_leaf_table().pick_feedback(0, rig.sched.now())
                  .has_value());
  EXPECT_TRUE(rig.lb0->from_leaf_table().pick_feedback(1, rig.sched.now())
                  .has_value());
}

TEST(CongaLb, CongaFlowConfigUsesLongGap) {
  const CongaConfig cfg = make_conga_flow_config();
  EXPECT_EQ(cfg.flowlet.gap, sim::milliseconds(13));
}

TEST(CongaLb, SelectSpreadsNewFlowsUnderEqualCost) {
  TestRig rig;
  std::set<int> used;
  for (int i = 0; i < 64; ++i) {
    net::Packet pkt;
    pkt.flow = key(100 + i);
    used.insert(rig.lb0->select_uplink(pkt, 1, 0));
  }
  EXPECT_EQ(used.size(), 2u) << "random tie-break should use both uplinks";
}

}  // namespace
}  // namespace conga::core
