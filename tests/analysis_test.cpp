// Tests for max-flow, the LP solver, the bottleneck routing game (§6.1),
// and the Theorem 2 imbalance model (§6.2).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bottleneck_game.hpp"
#include "analysis/imbalance_model.hpp"
#include "analysis/maxflow.hpp"
#include "analysis/simplex.hpp"
#include "workload/flow_size_dist.hpp"

namespace conga::analysis {
namespace {

TEST(MaxFlow, SimplePath) {
  MaxFlow mf(3);
  mf.add_edge(0, 1, 5);
  mf.add_edge(1, 2, 3);
  EXPECT_DOUBLE_EQ(mf.solve(0, 2), 3.0);
}

TEST(MaxFlow, ParallelPathsAdd) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 4);
  mf.add_edge(1, 3, 4);
  mf.add_edge(0, 2, 6);
  mf.add_edge(2, 3, 2);
  EXPECT_DOUBLE_EQ(mf.solve(0, 3), 6.0);
}

TEST(MaxFlow, ClassicDiamond) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 10);
  mf.add_edge(0, 2, 10);
  mf.add_edge(1, 2, 1);
  mf.add_edge(1, 3, 5);
  mf.add_edge(2, 3, 10);
  EXPECT_DOUBLE_EQ(mf.solve(0, 3), 15.0);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 5);
  mf.add_edge(2, 3, 5);
  EXPECT_DOUBLE_EQ(mf.solve(0, 3), 0.0);
}

TEST(MaxFlow, EdgeFlowsAreConsistent) {
  MaxFlow mf(3);
  mf.add_edge(0, 1, 5);  // edge 0
  mf.add_edge(1, 2, 3);  // edge 1
  mf.solve(0, 2);
  EXPECT_DOUBLE_EQ(mf.edge_flow(1), 3.0);
  EXPECT_DOUBLE_EQ(mf.edge_flow(0), 3.0);
}

TEST(MaxFlow, ResetRestoresCapacity) {
  MaxFlow mf(2);
  mf.add_edge(0, 1, 7);
  EXPECT_DOUBLE_EQ(mf.solve(0, 1), 7.0);
  mf.reset();
  EXPECT_DOUBLE_EQ(mf.solve(0, 1), 7.0);
}

TEST(MaxFlow, Fig2AsymmetricCapacity) {
  // Fig 2: L0 -> {S0, S1} -> L1, links 80/80/80/40. Max L0->L1 throughput
  // is 80 + 40 = 120 if the leaf uplinks were unconstrained... with uplinks
  // at 80 each: min cut = 80 + 40 = 120.
  MaxFlow mf(4);  // 0=L0, 1=S0, 2=S1, 3=L1
  mf.add_edge(0, 1, 80);
  mf.add_edge(0, 2, 80);
  mf.add_edge(1, 3, 80);
  mf.add_edge(2, 3, 40);
  EXPECT_DOUBLE_EQ(mf.solve(0, 3), 120.0);
}

// --- simplex ---

TEST(Simplex, Simple2D) {
  // max x + y  s.t. x <= 3, y <= 4, x + y <= 5
  std::vector<std::vector<double>> A{{1, 0}, {0, 1}, {1, 1}};
  std::vector<double> b{3, 4, 5};
  std::vector<double> c{1, 1};
  std::vector<double> x;
  Simplex lp(A, b, c);
  EXPECT_NEAR(lp.solve(x), 5.0, 1e-9);
  EXPECT_NEAR(x[0] + x[1], 5.0, 1e-9);
}

TEST(Simplex, UnboundedReturnsInfinity) {
  std::vector<std::vector<double>> A{{-1, 0}};
  std::vector<double> b{0};
  std::vector<double> c{1, 1};
  std::vector<double> x;
  Simplex lp(A, b, c);
  EXPECT_TRUE(std::isinf(lp.solve(x)));
}

TEST(Simplex, InfeasibleReturnsMinusInfinity) {
  // x <= -1 with x >= 0 is infeasible.
  std::vector<std::vector<double>> A{{1}};
  std::vector<double> b{-1};
  std::vector<double> c{1};
  std::vector<double> x;
  Simplex lp(A, b, c);
  EXPECT_EQ(lp.solve(x), -std::numeric_limits<double>::infinity());
}

TEST(Simplex, EqualityViaTwoInequalities) {
  // max y  s.t. x + y = 2 (as <= and >=), y <= 1.5
  std::vector<std::vector<double>> A{{1, 1}, {-1, -1}, {0, 1}};
  std::vector<double> b{2, -2, 1.5};
  std::vector<double> c{0, 1};
  std::vector<double> x;
  Simplex lp(A, b, c);
  EXPECT_NEAR(lp.solve(x), 1.5, 1e-9);
  EXPECT_NEAR(x[0], 0.5, 1e-9);
}

TEST(Simplex, DegenerateProblemStillSolves) {
  // Several redundant constraints.
  std::vector<std::vector<double>> A{{1, 0}, {1, 0}, {1, 0}, {0, 1}};
  std::vector<double> b{2, 2, 2, 3};
  std::vector<double> c{1, 2};
  std::vector<double> x;
  Simplex lp(A, b, c);
  EXPECT_NEAR(lp.solve(x), 8.0, 1e-9);
}

// --- bottleneck game ---

LeafSpineGame fig2_game() {
  // Fig 2: L0 -> L1 demand 100, links 80 except (S1,L1) = 40.
  LeafSpineGame g = LeafSpineGame::uniform(2, 2, 80);
  g.down[1][1] = 40;
  g.users.push_back({0, 1, 100});
  return g;
}

TEST(Game, OptimalBottleneckFig2) {
  // Optimal: 66.6 up / 33.3 down — utilization 66.6/80 = 0.833.
  LeafSpineGame g = fig2_game();
  GameFlow opt;
  const double b = optimal_bottleneck(g, &opt);
  EXPECT_NEAR(b, 100.0 / 120.0, 1e-6);
  EXPECT_NEAR(opt.x[0][0], 100.0 * 80 / 120, 1e-4);
  EXPECT_NEAR(opt.x[0][1], 100.0 * 40 / 120, 1e-4);
}

TEST(Game, BestResponseFindsFig2Split) {
  LeafSpineGame g = fig2_game();
  GameFlow f = GameFlow::zeros(g);
  f.x[0] = {50, 50};  // the ECMP-style even split
  best_response(g, f, 0);
  EXPECT_NEAR(f.x[0][0], 66.67, 0.5);
  EXPECT_NEAR(f.x[0][1], 33.33, 0.5);
}

TEST(Game, SingleUserNashIsOptimal) {
  LeafSpineGame g = fig2_game();
  GameFlow f = GameFlow::zeros(g);
  f.x[0] = {100, 0};
  best_response_dynamics(g, f);
  EXPECT_TRUE(is_nash(g, f));
  EXPECT_NEAR(anarchy_ratio(g, f), 1.0, 1e-3);
}

TEST(Game, Fig3TrafficMatrixDependence) {
  // Fig 3: 3 leaves, 2 spines, all 40G links. (a) only L1->L2 80G: best
  // split is 40/40. (b) plus L0->L2 40G via S0 only (its S1 uplink absent):
  // L1->L2 must shift to avoid S0's downlink to L2.
  LeafSpineGame g = LeafSpineGame::uniform(3, 2, 40);
  g.up[0][1] = 0;  // L0 has no uplink to S1 (the asymmetry)
  g.users.push_back({1, 2, 80});  // L1 -> L2

  GameFlow f = GameFlow::zeros(g);
  f.x[0] = {80, 0};
  best_response_dynamics(g, f);
  EXPECT_NEAR(f.x[0][0], 40, 1.0);
  EXPECT_NEAR(f.x[0][1], 40, 1.0);

  g.users.push_back({0, 2, 40});  // now L0 -> L2 appears (S0 only)
  GameFlow f2 = GameFlow::zeros(g);
  f2.x = {{40, 40}, {40, 0}};
  best_response_dynamics(g, f2);
  // The optimal split: L0's 40 all via S0, L1->L2 mostly via S1.
  const double b_opt = optimal_bottleneck(g);
  EXPECT_NEAR(network_bottleneck(g, f2), b_opt, 0.05);
  EXPECT_GT(f2.x[0][1], f2.x[0][0]);  // L1 shifted toward S1
}

TEST(Game, DynamicsSettleToNash) {
  sim::Rng rng(77);
  for (int inst = 0; inst < 20; ++inst) {
    LeafSpineGame g = LeafSpineGame::uniform(3, 3, 10);
    const int users = 1 + static_cast<int>(rng.index(4));
    for (int u = 0; u < users; ++u) {
      int src = static_cast<int>(rng.index(3));
      int dst = static_cast<int>(rng.index(3));
      while (dst == src) dst = static_cast<int>(rng.index(3));
      g.users.push_back({src, dst, 1.0 + rng.uniform() * 10});
    }
    GameFlow f = random_flow(g, rng);
    const int rounds = best_response_dynamics(g, f);
    EXPECT_LT(rounds, 200) << "did not settle";
    EXPECT_TRUE(is_nash(g, f, 1e-5)) << "instance " << inst;
  }
}

TEST(Game, PriceOfAnarchyAtMostTwo) {
  // Theorem 1: network bottleneck at any Nash is <= 2x optimal. Probe random
  // instances from random starts.
  sim::Rng rng(123);
  double worst = 1.0;
  for (int inst = 0; inst < 30; ++inst) {
    LeafSpineGame g;
    g.num_leaves = 2 + static_cast<int>(rng.index(3));
    g.num_spines = 2 + static_cast<int>(rng.index(3));
    g.up.assign(static_cast<std::size_t>(g.num_leaves),
                std::vector<double>(static_cast<std::size_t>(g.num_spines)));
    g.down.assign(static_cast<std::size_t>(g.num_spines),
                  std::vector<double>(static_cast<std::size_t>(g.num_leaves)));
    for (int l = 0; l < g.num_leaves; ++l) {
      for (int s = 0; s < g.num_spines; ++s) {
        g.up[static_cast<std::size_t>(l)][static_cast<std::size_t>(s)] =
            10 + rng.uniform() * 90;
        g.down[static_cast<std::size_t>(s)][static_cast<std::size_t>(l)] =
            10 + rng.uniform() * 90;
      }
    }
    const int users = 2 + static_cast<int>(rng.index(4));
    for (int u = 0; u < users; ++u) {
      int src = static_cast<int>(rng.index(static_cast<std::size_t>(g.num_leaves)));
      int dst = static_cast<int>(rng.index(static_cast<std::size_t>(g.num_leaves)));
      while (dst == src) {
        dst = static_cast<int>(rng.index(static_cast<std::size_t>(g.num_leaves)));
      }
      g.users.push_back({src, dst, 5 + rng.uniform() * 40});
    }
    for (int start = 0; start < 3; ++start) {
      GameFlow f = random_flow(g, rng);
      best_response_dynamics(g, f);
      if (is_nash(g, f, 1e-5)) {
        worst = std::max(worst, anarchy_ratio(g, f));
      }
    }
  }
  EXPECT_LE(worst, 2.0 + 1e-6);
}

TEST(Game, InfeasibleDemandsReportInfinity) {
  LeafSpineGame g = LeafSpineGame::uniform(2, 1, 10);
  g.up[0][0] = 0;  // user's only path has no capacity
  g.users.push_back({0, 1, 5});
  EXPECT_TRUE(std::isinf(optimal_bottleneck(g)));
}

// --- Theorem 2 ---

TEST(Theorem2, ImbalanceDecaysOverTime) {
  const workload::FlowSizeDist d = workload::fixed_size(1000);
  ImbalanceParams p;
  p.n_links = 4;
  p.lambda = 50000;
  p.trials = 100;
  p.t_seconds = 0.05;
  const double chi_short = expected_imbalance(d, p);
  p.t_seconds = 1.0;
  const double chi_long = expected_imbalance(d, p);
  EXPECT_LT(chi_long, chi_short);
  // chi ~ 1/sqrt(t): 20x longer -> ~4.5x smaller.
  EXPECT_LT(chi_long, chi_short / 2.5);
}

TEST(Theorem2, HeavierTailsAreWorse) {
  ImbalanceParams p;
  p.n_links = 4;
  p.lambda = 20000;
  p.trials = 100;
  p.t_seconds = 0.5;
  const double chi_fixed =
      expected_imbalance(workload::fixed_size(
                             workload::data_mining().mean_bytes()),
                         p);
  const double chi_dm = expected_imbalance(workload::data_mining(), p);
  EXPECT_GT(chi_dm, 2.0 * chi_fixed)
      << "high coefficient of variation must hurt balance";
}

TEST(Theorem2, EffectiveRateFormula) {
  const workload::FlowSizeDist d = workload::fixed_size(1000);  // cv = 0
  // lambda_e = lambda / (8 n log n).
  EXPECT_NEAR(effective_rate(d, 4, 1000.0),
              1000.0 / (8 * 4 * std::log(4.0)), 1e-9);
}

TEST(Theorem2, BoundHoldsInSimulation) {
  // The Monte-Carlo imbalance must respect the analytic upper bound
  // E[chi(t)] <= 1/sqrt(lambda_e t) (+O(1/t), ignored — bound is loose).
  for (const workload::FlowSizeDist* d :
       {&workload::enterprise(), &workload::web_search()}) {
    ImbalanceParams p;
    p.n_links = 4;
    p.lambda = 20000;
    p.trials = 60;
    p.t_seconds = 0.5;
    const double chi = expected_imbalance(*d, p);
    const double bound = theorem2_bound(*d, p.n_links, p.lambda, p.t_seconds);
    EXPECT_LE(chi, bound) << d->name();
  }
}

}  // namespace
}  // namespace conga::analysis
