// Campaign service tests: canonical JSON round-trips (including a fuzz
// sweep), cache-key sensitivity, expansion order, the cold-vs-warm
// byte-identity promise, verdicts, verify-sample poisoning detection, and
// the kCampaign telemetry events.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/experiment_spec.hpp"
#include "campaign/fingerprint.hpp"
#include "campaign/json.hpp"
#include "campaign/store.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"
#include "telemetry/telemetry.hpp"

namespace conga::campaign {
namespace {

namespace fs = std::filesystem;

/// Unique throwaway directory per test; removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("conga_campaign_test." + tag + "." +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// A campaign whose cells simulate in well under a second: a shrunken
/// testbed and millisecond windows.
CampaignSpec tiny_campaign() {
  CampaignSpec c;
  c.name = "tiny";
  c.policies = {"ecmp"};
  c.loads_pct = {30};
  net::TopologyConfig topo = net::testbed_baseline();
  topo.hosts_per_leaf = 4;
  c.cases.push_back({"t", topo});
  c.warmup_ns = sim::milliseconds(1);
  c.measure_ns = sim::milliseconds(2);
  c.max_drain_ns = sim::milliseconds(300);
  return c;
}

TEST(CampaignJson, SpecCanonicalRoundTrip) {
  ExperimentSpec s;
  s.topo = net::testbed_baseline();
  const std::string bytes = canonical_json(s);
  ExperimentSpec parsed;
  std::string err;
  ASSERT_TRUE(parse_spec(bytes, parsed, err)) << err;
  EXPECT_EQ(canonical_json(parsed), bytes);
}

TEST(CampaignJson, FuzzSpecRoundTripIsByteStable) {
  // Property: for any spec the serializer can produce, parse(dump) re-dumps
  // to the identical bytes — doubles included (shortest-round-trip form).
  sim::Rng rng(2024);
  const char* dists[] = {"enterprise", "datamining", "websearch",
                         "fixed:1234"};
  const char* profiles[] = {"none", "random", "gray"};
  for (int trial = 0; trial < 300; ++trial) {
    ExperimentSpec s;
    s.dist = dists[rng.uniform_int(0, 3)];
    s.policy = rng.uniform_int(0, 1) != 0 ? "conga" : "letflow";
    s.load = rng.uniform(0.01, 1.0);
    s.topo = net::testbed_baseline();
    s.topo.num_leaves = static_cast<int>(rng.uniform_int(2, 6));
    s.topo.num_spines = static_cast<int>(rng.uniform_int(2, 4));
    s.topo.hosts_per_leaf = static_cast<int>(rng.uniform_int(1, 32));
    s.topo.host_link_bps = rng.uniform(1e9, 4e10);
    s.topo.dre.alpha = rng.uniform(0.0, 1.0);
    s.topo.shared_buffer_alpha = rng.uniform(0.1, 16.0);
    if (rng.uniform_int(0, 1) != 0) {
      s.topo.overrides.push_back(net::LinkOverride{
          static_cast<int>(rng.uniform_int(0, 3)),
          static_cast<int>(rng.uniform_int(0, 3)), 0,
          rng.uniform(0.01, 1.0)});
    }
    s.min_rto_ns = static_cast<sim::TimeNs>(rng.uniform_int(1, 1U << 30));
    s.dctcp = rng.uniform_int(0, 1) != 0;
    s.warmup_ns = static_cast<sim::TimeNs>(rng.uniform_int(0, 1U << 30));
    s.measure_ns = static_cast<sim::TimeNs>(rng.uniform_int(1, 1U << 30));
    s.fabric_seed = rng.uniform_int(0, ~0ULL);
    s.traffic_seed = rng.uniform_int(0, ~0ULL);
    s.fault.profile = profiles[rng.uniform_int(0, 2)];
    s.fault.seed = rng.uniform_int(0, ~0ULL);

    const std::string bytes = canonical_json(s);
    ExperimentSpec parsed;
    std::string err;
    ASSERT_TRUE(parse_spec(bytes, parsed, err))
        << err << "\nbytes: " << bytes;
    ASSERT_EQ(canonical_json(parsed), bytes);
    // And the generic document layer agrees with itself.
    Json doc;
    ASSERT_TRUE(Json::parse(bytes, doc, err)) << err;
    ASSERT_EQ(doc.dump(), bytes);
  }
}

TEST(CampaignJson, ReorderedFieldsCanonicalizeToSameBytes) {
  ExperimentSpec s;
  s.topo = net::testbed_baseline();
  s.policy = "letflow";
  s.load = 0.45;
  const std::string canonical = canonical_json(s);

  // Same content, scrambled member order (and the topo via the canonical
  // writer, spliced mid-document).
  const std::string topo_bytes = json_of_topo(s.topo).dump();
  const std::string scrambled = std::string("{\"load\":0.45,\"topo\":") +
                                topo_bytes +
                                ",\"policy\":\"letflow\",\"schema\":"
                                "\"conga-cell-spec-v1\"}";
  ExperimentSpec parsed;
  std::string err;
  ASSERT_TRUE(parse_spec(scrambled, parsed, err)) << err;
  EXPECT_EQ(canonical_json(parsed), canonical);
}

TEST(CampaignJson, UnknownFieldsAreErrors) {
  ExperimentSpec parsed;
  std::string err;
  EXPECT_FALSE(parse_spec("{\"bogus\":1}", parsed, err));
  EXPECT_NE(err.find("unknown spec field"), std::string::npos) << err;
  EXPECT_FALSE(parse_spec("{\"topo\":{\"num_leeves\":4}}", parsed, err));
  EXPECT_NE(err.find("unknown topo field"), std::string::npos) << err;
  EXPECT_FALSE(parse_spec("{\"fault\":{\"profil\":\"none\"}}", parsed, err));
  EXPECT_NE(err.find("unknown fault field"), std::string::npos) << err;

  CampaignSpec campaign;
  EXPECT_FALSE(parse_campaign("{\"policy\":[\"conga\"]}", campaign, err));
  EXPECT_NE(err.find("unknown campaign field"), std::string::npos) << err;
}

TEST(CampaignJson, CampaignRequestRoundTrip) {
  CampaignSpec c = make_smoke_campaign();
  c.seeds.push_back({3, 11});
  c.faults.push_back({"gray", 5});
  const std::string bytes = json_of_campaign(c).dump();
  CampaignSpec parsed;
  std::string err;
  ASSERT_TRUE(parse_campaign(bytes, parsed, err)) << err;
  EXPECT_EQ(json_of_campaign(parsed).dump(), bytes);
}

TEST(CampaignJson, ResultPayloadRoundTrip) {
  workload::ExperimentResult r;
  r.avg_norm_fct = 12.345678901234567;
  r.median_norm_fct = 1.5;
  r.p99_norm_fct = 99.25;
  r.flows = 1234;
  r.completed_fraction = 0.9990234375;
  r.drained = true;
  r.fct_digest = 0xda563ccc62ab9618ULL;
  r.reorder_segments = 42;
  r.probes_sent = 7;
  const std::string bytes = json_of_result(r).dump();
  workload::ExperimentResult parsed;
  std::string err;
  Json doc;
  ASSERT_TRUE(Json::parse(bytes, doc, err)) << err;
  ASSERT_TRUE(result_from_json(doc, parsed, err)) << err;
  EXPECT_EQ(json_of_result(parsed).dump(), bytes);
  EXPECT_EQ(parsed.fct_digest, r.fct_digest);
  EXPECT_EQ(parsed.flows, r.flows);
}

TEST(CampaignKey, StableAndSensitive) {
  ExperimentSpec s;
  s.topo = net::testbed_baseline();
  const std::string key = cell_key(s, "fp");
  EXPECT_EQ(key.size(), 32U);
  EXPECT_EQ(cell_key(s, "fp"), key);

  ExperimentSpec mutated = s;
  mutated.load = s.load + 0.1;
  EXPECT_NE(cell_key(mutated, "fp"), key);
  mutated = s;
  mutated.traffic_seed ^= 1;
  EXPECT_NE(cell_key(mutated, "fp"), key);
  mutated = s;
  mutated.fault.profile = "gray";
  EXPECT_NE(cell_key(mutated, "fp"), key);
  mutated = s;
  mutated.topo.hosts_per_leaf += 1;
  EXPECT_NE(cell_key(mutated, "fp"), key);
  // The same config under different code is a different cell.
  EXPECT_NE(cell_key(s, "fp2"), key);
}

TEST(CampaignExpand, CanonicalOrder) {
  CampaignSpec c;
  c.policies = {"ecmp", "conga"};
  c.loads_pct = {30, 60};
  net::TopologyConfig topo = net::testbed_baseline();
  net::TopologyConfig degraded = topo;
  degraded.overrides.push_back(net::LinkOverride{1, 1, 0, 0.1});
  // Cases with identical topologies would share cells (the key hashes the
  // spec, and the case name is presentation, not configuration) — the
  // degraded case keeps this grid fully distinct.
  c.cases = {{"a", topo}, {"b", degraded}};
  c.seeds = {{1, 7}, {2, 9}};
  c.faults = {{"none", 1}, {"gray", 3}};

  const std::vector<Cell> cells = expand_campaign(c, "fp");
  ASSERT_EQ(cells.size(), 32U);
  // case -> policy -> load -> seed -> fault, fault innermost.
  EXPECT_EQ(cells[0].case_name, "a");
  EXPECT_EQ(cells[0].spec.policy, "ecmp");
  EXPECT_EQ(cells[0].spec.load, 0.30);
  EXPECT_EQ(cells[0].spec.fault.profile, "none");
  EXPECT_EQ(cells[1].spec.fault.profile, "gray");
  EXPECT_EQ(cells[2].spec.fabric_seed, 2U);
  EXPECT_EQ(cells[4].spec.load, 0.60);
  EXPECT_EQ(cells[8].spec.policy, "conga");
  EXPECT_EQ(cells[16].case_name, "b");
  // Keys are unique across the grid.
  std::vector<std::string> keys;
  for (const Cell& cell : cells) keys.push_back(cell.key);
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end());
}

TEST(CampaignRun, ColdThenWarmIsByteIdentical) {
  const TempDir dir("coldwarm");
  ResultStore store(dir.path.string());
  const CampaignSpec spec = tiny_campaign();
  RunOptions opts;
  opts.store = &store;

  CampaignRun cold;
  std::string err;
  ASSERT_TRUE(run_campaign(spec, opts, cold, err)) << err;
  EXPECT_EQ(cold.stats.cells, 1U);
  EXPECT_EQ(cold.stats.misses, 1U);
  EXPECT_EQ(cold.stats.hits, 0U);
  EXPECT_EQ(cold.stats.store_writes, 1U);
  ASSERT_EQ(cold.origins.size(), 1U);
  EXPECT_EQ(cold.origins[0], CellOrigin::kComputed);

  CampaignRun warm;
  ASSERT_TRUE(run_campaign(spec, opts, warm, err)) << err;
  EXPECT_EQ(warm.stats.hits, 1U);
  EXPECT_EQ(warm.stats.misses, 0U);
  EXPECT_EQ(warm.stats.store_writes, 0U);
  EXPECT_EQ(warm.origins[0], CellOrigin::kCached);

  EXPECT_EQ(report_json(cold), report_json(warm));
}

TEST(CampaignRun, NoStoreComputesEverything) {
  const CampaignSpec spec = tiny_campaign();
  RunOptions opts;  // store == nullptr
  CampaignRun run;
  std::string err;
  ASSERT_TRUE(run_campaign(spec, opts, run, err)) << err;
  EXPECT_EQ(run.stats.misses, run.stats.cells);
  EXPECT_EQ(run.stats.store_writes, 0U);
}

TEST(CampaignRun, UnknownPolicyFailsWithContext) {
  CampaignSpec spec = tiny_campaign();
  spec.policies = {"definitely-not-a-policy"};
  RunOptions opts;
  CampaignRun run;
  std::string err;
  EXPECT_FALSE(run_campaign(spec, opts, run, err));
  EXPECT_NE(err.find("unknown policy"), std::string::npos) << err;
}

TEST(CampaignVerdict, PassAndRegressionAndMissing) {
  const CampaignSpec spec = tiny_campaign();
  RunOptions opts;
  CampaignRun run;
  std::string err;
  ASSERT_TRUE(run_campaign(spec, opts, run, err)) << err;

  Json report;
  ASSERT_TRUE(Json::parse(report_json(run), report, err)) << err;

  // Identical reports: clean pass.
  Json verdict;
  ASSERT_TRUE(make_verdict(report, report, VerdictOptions{}, verdict, err))
      << err;
  EXPECT_TRUE(verdict_pass(verdict));
  EXPECT_EQ(verdict.find("regressions")->as_uint(), 0U);

  // Inflate the current FCT: regression against the original baseline.
  CampaignRun slower = run;
  slower.results[0].avg_norm_fct *= 2.0;
  slower.results[0].fct_digest ^= 1;
  Json slow_report;
  ASSERT_TRUE(Json::parse(report_json(slower), slow_report, err)) << err;
  ASSERT_TRUE(
      make_verdict(slow_report, report, VerdictOptions{}, verdict, err))
      << err;
  EXPECT_FALSE(verdict_pass(verdict));
  EXPECT_EQ(verdict.find("regressions")->as_uint(), 1U);
  const Json& cell = verdict.find("cells")->at(0);
  EXPECT_EQ(cell.find("status")->as_string(), "regression");
  EXPECT_TRUE(cell.find("fct_digest_changed")->as_bool());

  // And the mirror image reads as an improvement.
  ASSERT_TRUE(
      make_verdict(report, slow_report, VerdictOptions{}, verdict, err))
      << err;
  EXPECT_TRUE(verdict_pass(verdict));
  EXPECT_EQ(verdict.find("improvements")->as_uint(), 1U);

  // A cell with no baseline counterpart is reported, not failed.
  CampaignRun other = run;
  other.cells[0].spec.traffic_seed += 1;
  Json other_report;
  ASSERT_TRUE(Json::parse(report_json(other), other_report, err)) << err;
  ASSERT_TRUE(
      make_verdict(other_report, report, VerdictOptions{}, verdict, err))
      << err;
  EXPECT_TRUE(verdict_pass(verdict));
  EXPECT_EQ(verdict.find("missing_baseline")->size(), 1U);
}

TEST(CampaignVerify, SampleDetectsPoisonedStore) {
  const TempDir dir("poison");
  ResultStore store(dir.path.string());
  const CampaignSpec spec = tiny_campaign();
  RunOptions opts;
  opts.store = &store;

  CampaignRun cold;
  std::string err;
  ASSERT_TRUE(run_campaign(spec, opts, cold, err)) << err;

  // Poison the entry *consistently*: a modified result re-wrapped with a
  // valid payload digest, indistinguishable from a real entry on load.
  workload::ExperimentResult forged = cold.results[0];
  forged.avg_norm_fct += 1.0;
  ASSERT_TRUE(store.put(cold.cells[0].key, cold.fingerprint,
                        canonical_json(cold.cells[0].spec), forged, err))
      << err;

  CampaignRun warm;
  ASSERT_TRUE(run_campaign(spec, opts, warm, err)) << err;
  ASSERT_EQ(warm.stats.hits, 1U);  // the poison loads cleanly...

  VerifyOutcome outcome;
  ASSERT_TRUE(verify_sample(warm, 1.0, 1, nullptr, outcome, err)) << err;
  EXPECT_EQ(outcome.sampled, 1U);
  EXPECT_EQ(outcome.mismatched, 1U);  // ...but recomputation exposes it
  ASSERT_EQ(outcome.poisoned_keys.size(), 1U);
  EXPECT_EQ(outcome.poisoned_keys[0], warm.cells[0].key);

  // An honest store passes the same audit.
  ASSERT_TRUE(store.put(cold.cells[0].key, cold.fingerprint,
                        canonical_json(cold.cells[0].spec), cold.results[0],
                        err))
      << err;
  CampaignRun honest;
  ASSERT_TRUE(run_campaign(spec, opts, honest, err)) << err;
  ASSERT_TRUE(verify_sample(honest, 1.0, 1, nullptr, outcome, err)) << err;
  EXPECT_EQ(outcome.mismatched, 0U);
}

#ifdef CONGA_TELEMETRY
TEST(CampaignTelemetry, CacheDecisionsAreTraced) {
  const TempDir dir("telemetry");
  ResultStore store(dir.path.string());
  const CampaignSpec spec = tiny_campaign();
  telemetry::TraceSink sink;
  RunOptions opts;
  opts.store = &store;
  opts.sink = &sink;

  CampaignRun cold;
  std::string err;
  ASSERT_TRUE(run_campaign(spec, opts, cold, err)) << err;
  CampaignRun warm;
  ASSERT_TRUE(run_campaign(spec, opts, warm, err)) << err;
  VerifyOutcome outcome;
  ASSERT_TRUE(verify_sample(warm, 1.0, 1, &sink, outcome, err)) << err;

  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t writes = 0;
  std::size_t recomputes = 0;
  for (const telemetry::Event& e : sink.all_events()) {
    switch (e.type) {
      case telemetry::EventType::kCampaignCellHit: ++hits; break;
      case telemetry::EventType::kCampaignCellMiss: ++misses; break;
      case telemetry::EventType::kCampaignStoreWrite: ++writes; break;
      case telemetry::EventType::kCampaignVerifyRecompute: ++recomputes; break;
      default: break;
    }
  }
  EXPECT_EQ(misses, 1U);       // cold pass
  EXPECT_EQ(writes, 1U);       // cold pass wrote the entry
  EXPECT_EQ(hits, 1U);         // warm pass
  EXPECT_EQ(recomputes, 1U);   // verify-sample audit
  EXPECT_EQ(telemetry::category_of(telemetry::EventType::kCampaignCellHit),
            telemetry::Category::kCampaign);

  // Wire names round-trip through the CLI-facing parsers.
  telemetry::EventType parsed;
  ASSERT_TRUE(telemetry::parse_event_type("campaign_cell_miss", parsed));
  EXPECT_EQ(parsed, telemetry::EventType::kCampaignCellMiss);
  telemetry::Category cat;
  ASSERT_TRUE(telemetry::parse_category("campaign", cat));
  EXPECT_EQ(cat, telemetry::Category::kCampaign);
}
#endif  // CONGA_TELEMETRY

}  // namespace
}  // namespace conga::campaign
