// End-to-end CLI tests for conga_serve, driving the real binary
// (CONGA_SERVE_BIN): supervised containment of crashing and hanging cells,
// SIGTERM drain + resume, SIGKILL + resume, store gc/stat maintenance,
// graceful store degradation, and the documented 0/1/2 exit codes.
//
// Every scenario that needs a child failure injects it deterministically
// through CONGA_CELL_FAULT; nothing here depends on timing beyond "a
// hanging child does not finish on its own".
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/json.hpp"
#include "campaign/store.hpp"
#include "campaign/supervisor.hpp"
#include "net/topology.hpp"

namespace conga::campaign {
namespace {

namespace fs = std::filesystem;

constexpr const char* kBin = CONGA_SERVE_BIN;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("conga_serve_cli_test." + tag + "." +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string sub(const std::string& name) const {
    return (path / name).string();
  }
};

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  out.clear();
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    out.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

/// Runs a shell command to completion; returns its exit code (-1 if it
/// died on a signal).
int run_cmd(const std::string& cmd) {
  const int st = std::system(cmd.c_str());
  if (st == -1) return -1;
  return WIFEXITED(st) ? WEXITSTATUS(st) : -1;
}

/// Launches a shell command as a direct child (sh exec's the binary, so
/// signals sent to the returned pid reach conga_serve itself).
pid_t spawn_cmd(const std::string& cmd) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execl("/bin/sh", "sh", "-c", ("exec " + cmd).c_str(),
            static_cast<char*>(nullptr));
    std::_Exit(127);
  }
  return pid;
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 50) {
    if (pred()) return true;
    ::usleep(50 * 1000);
  }
  return pred();
}

std::size_t count_lines(const std::string& path) {
  std::string text;
  if (!read_file(path, text)) return 0;
  std::size_t n = 0;
  for (const char c : text) {
    if (c == '\n') ++n;
  }
  return n;
}

/// A fast campaign request: one shrunken-testbed case, `policies` cells.
void write_tiny_request(const std::string& path,
                        const std::vector<std::string>& policies) {
  CampaignSpec c;
  c.name = "tiny";
  c.policies = policies;
  c.loads_pct = {30};
  net::TopologyConfig topo = net::testbed_baseline();
  topo.hosts_per_leaf = 4;
  c.cases.push_back({"t", topo});
  c.warmup_ns = sim::milliseconds(1);
  c.measure_ns = sim::milliseconds(2);
  c.max_drain_ns = sim::milliseconds(300);
  write_file(path, json_of_campaign(c).dump() + "\n");
}

Json parse_or_die(const std::string& path) {
  std::string text;
  EXPECT_TRUE(read_file(path, text)) << path;
  Json doc;
  std::string err;
  EXPECT_TRUE(Json::parse(text, doc, err)) << path << ": " << err;
  return doc;
}

/// report "cells" entries indexed by cache key, serialized — the unit of
/// the "undisturbed cells are byte-identical" comparisons.
std::vector<std::pair<std::string, std::string>> cells_by_key(
    const Json& report) {
  std::vector<std::pair<std::string, std::string>> out;
  const Json* cells = report.find("cells");
  if (cells == nullptr) return out;
  for (const Json& e : cells->items()) {
    out.emplace_back(e.find("key")->as_string(), e.dump());
  }
  return out;
}

TEST(ServeCli, ExitCodesAndErrorReporting) {
  TempDir tmp("exitcodes");
  const std::string err_path = tmp.sub("err.txt");
  std::string err_text;

  // 0: success.
  EXPECT_EQ(run_cmd(std::string(kBin) +
                    " expand --builtin smoke >/dev/null 2>/dev/null"),
            0);

  // 2: unknown subcommand, named in the error.
  EXPECT_EQ(run_cmd(std::string(kBin) + " frobnicate >/dev/null 2>" +
                    err_path),
            2);
  ASSERT_TRUE(read_file(err_path, err_text));
  EXPECT_NE(err_text.find("unknown subcommand 'frobnicate'"),
            std::string::npos)
      << err_text;

  // 2: unknown flag, quoted in the error.
  EXPECT_EQ(run_cmd(std::string(kBin) + " run --bogus >/dev/null 2>" +
                    err_path),
            2);
  ASSERT_TRUE(read_file(err_path, err_text));
  EXPECT_NE(err_text.find("unknown flag '--bogus'"), std::string::npos)
      << err_text;

  // 2: missing required value / bad subcommand of store.
  EXPECT_EQ(run_cmd(std::string(kBin) +
                    " store frobnicate >/dev/null 2>" + err_path),
            2);
  ASSERT_TRUE(read_file(err_path, err_text));
  EXPECT_NE(err_text.find("unknown store subcommand 'frobnicate'"),
            std::string::npos)
      << err_text;
  EXPECT_EQ(run_cmd(std::string(kBin) + " store gc 2>/dev/null"), 2);

  // 1: a quarantined cell fails the run without killing it.
  const std::string req = tmp.sub("req.json");
  write_tiny_request(req, {"ecmp"});
  EXPECT_EQ(run_cmd("CONGA_CELL_FAULT=crash:0 " + std::string(kBin) +
                    " run --campaign " + req +
                    " --supervise --max-attempts 1 --backoff-base-ms 20"
                    " --backoff-cap-ms 50 >/dev/null 2>/dev/null"),
            1);
}

TEST(ServeCli, ContainmentCrashAndHang) {
  TempDir tmp("containment");
  const std::string req = tmp.sub("req.json");
  write_tiny_request(req, {"ecmp", "conga", "letflow"});

  // Reference: the same request, undisturbed.
  const std::string ref_report = tmp.sub("ref.json");
  ASSERT_EQ(run_cmd(std::string(kBin) + " run --campaign " + req +
                    " --supervise --store " + tmp.sub("refstore") +
                    " --out " + ref_report + " 2>/dev/null"),
            0);

  // Faulted: cell 0 aborts on every attempt, cell 1 hangs on every attempt.
  const std::string store = tmp.sub("store");
  const std::string report = tmp.sub("report.json");
  const std::string stats = tmp.sub("stats.json");
  ASSERT_EQ(
      run_cmd("CONGA_CELL_FAULT=crash:0,hang:1 " + std::string(kBin) +
              " run --campaign " + req + " --supervise --store " + store +
              " --out " + report + " --stats-out " + stats +
              " --jobs 2 --deadline-ms 1500 --max-attempts 2"
              " --backoff-base-ms 20 --backoff-cap-ms 100 2>/dev/null"),
      1);

  // The supervisor survived and wrote a complete report with an explicit
  // failed_cells block.
  const Json rep = parse_or_die(report);
  const Json* failed = rep.find("failed_cells");
  ASSERT_NE(failed, nullptr);
  ASSERT_EQ(failed->items().size(), 2u);
  const Json& crash = failed->items()[0];
  EXPECT_EQ(crash.find("coordinate")->as_string(), "t|ecmp|30|1|7|none|1");
  EXPECT_EQ(crash.find("outcome")->as_string(), "signal");
  EXPECT_EQ(crash.find("signal")->as_int(), SIGABRT);
  EXPECT_EQ(crash.find("attempts")->as_int(), 2);
  const Json& hang = failed->items()[1];
  EXPECT_EQ(hang.find("coordinate")->as_string(), "t|conga|30|1|7|none|1");
  EXPECT_EQ(hang.find("outcome")->as_string(), "timeout");
  EXPECT_EQ(hang.find("attempts")->as_int(), 2);

  // Quarantine poison records exist and carry the attempt log, including
  // the deterministic backoff the supervisor actually used.
  for (const Json& f : failed->items()) {
    const std::string qpath = f.find("quarantine")->as_string();
    ASSERT_FALSE(qpath.empty());
    const Json q = parse_or_die(qpath);
    EXPECT_EQ(q.find("schema")->as_string(), "conga-quarantine-v1");
    EXPECT_EQ(q.find("key")->as_string(), f.find("key")->as_string());
    ASSERT_EQ(q.find("attempts")->items().size(), 2u);
    SupervisorOptions bopts;
    bopts.backoff_base_ms = 20;
    bopts.backoff_cap_ms = 100;
    EXPECT_EQ(q.find("attempts")->items()[0].find("backoff_ms")->as_int(),
              backoff_delay_ms(f.find("key")->as_string(), 1, bopts));
  }

  // The undisturbed cell is byte-identical to the reference run's.
  const auto ref_cells = cells_by_key(parse_or_die(ref_report));
  const auto got_cells = cells_by_key(rep);
  ASSERT_EQ(ref_cells.size(), 3u);
  ASSERT_EQ(got_cells.size(), 1u);
  bool matched = false;
  for (const auto& [key, bytes] : ref_cells) {
    if (key == got_cells[0].first) {
      EXPECT_EQ(bytes, got_cells[0].second);
      matched = true;
    }
  }
  EXPECT_TRUE(matched);

  // Stats tell the failure story.
  const Json st = parse_or_die(stats);
  EXPECT_EQ(st.find("failed")->as_uint(), 2u);
  EXPECT_EQ(st.find("retries")->as_uint(), 2u);
  EXPECT_EQ(st.find("timeouts")->as_uint(), 2u);
  EXPECT_EQ(st.find("store")->as_string(), "ok");
}

TEST(ServeCli, SigtermDrainsAndResumesByteIdentical) {
  TempDir tmp("drain");
  const std::string spool = tmp.sub("spool");
  const std::string store = tmp.sub("store");
  fs::create_directories(spool);
  write_tiny_request(spool + "/job.json", {"ecmp", "conga", "letflow"});

  // Reference: same request, never interrupted.
  const std::string refspool = tmp.sub("refspool");
  fs::create_directories(refspool);
  write_tiny_request(refspool + "/job.json", {"ecmp", "conga", "letflow"});
  ASSERT_EQ(run_cmd(std::string(kBin) + " serve --spool " + refspool +
                    " --store " + tmp.sub("refstore") +
                    " --once 2>/dev/null"),
            0);

  // Daemon: cell 2 hangs (deadline far away), cells 0 and 1 complete.
  const pid_t pid = spawn_cmd(
      "env CONGA_CELL_FAULT=hang:2 " + std::string(kBin) +
      " serve --spool " + spool + " --store " + store +
      " --deadline-ms 60000 --drain-grace-ms 300 2>" + tmp.sub("d1.err"));
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(wait_until(
      [&] { return count_lines(spool + "/job.out.jsonl") >= 2; }, 60000));

  // SIGTERM: drain the in-flight hanging child, fsync a resume marker,
  // exit 0.
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_TRUE(fs::exists(spool + "/job.resume.json"));
  EXPECT_FALSE(fs::exists(spool + "/job.report.json"));
  const Json marker = parse_or_die(spool + "/job.resume.json");
  EXPECT_EQ(marker.find("schema")->as_string(), "conga-spool-resume-v1");
  EXPECT_EQ(marker.find("cells")->as_uint(), 3u);
  EXPECT_EQ(marker.find("resolved")->as_uint(), 2u);

  // Restart (no fault): completed cells come back as hits, only the
  // in-flight cell is recomputed, and the report is byte-identical.
  ASSERT_EQ(run_cmd(std::string(kBin) + " serve --spool " + spool +
                    " --store " + store + " --once 2>" + tmp.sub("d2.err")),
            0);
  EXPECT_FALSE(fs::exists(spool + "/job.resume.json"));
  std::string ref_bytes;
  std::string got_bytes;
  ASSERT_TRUE(read_file(refspool + "/job.report.json", ref_bytes));
  ASSERT_TRUE(read_file(spool + "/job.report.json", got_bytes));
  EXPECT_EQ(got_bytes, ref_bytes);
  std::string serve_log;
  ASSERT_TRUE(read_file(tmp.sub("d2.err"), serve_log));
  EXPECT_NE(serve_log.find("2 hits"), std::string::npos) << serve_log;
}

TEST(ServeCli, SigkillLeavesNoTornStateAndResumes) {
  TempDir tmp("sigkill");
  const std::string spool = tmp.sub("spool");
  const std::string store = tmp.sub("store");
  fs::create_directories(spool);
  write_tiny_request(spool + "/job.json", {"ecmp", "conga", "letflow"});

  const std::string refspool = tmp.sub("refspool");
  fs::create_directories(refspool);
  write_tiny_request(refspool + "/job.json", {"ecmp", "conga", "letflow"});
  ASSERT_EQ(run_cmd(std::string(kBin) + " serve --spool " + refspool +
                    " --store " + tmp.sub("refstore") +
                    " --once 2>/dev/null"),
            0);

  const pid_t pid = spawn_cmd(
      "env CONGA_CELL_FAULT=hang:2 " + std::string(kBin) +
      " serve --spool " + spool + " --store " + store +
      " --deadline-ms 60000 2>/dev/null");
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(wait_until(
      [&] { return count_lines(spool + "/job.out.jsonl") >= 2; }, 60000));

  // SIGKILL: no drain, no marker — the store's tmp+rename discipline is the
  // only thing protecting the entries.
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_FALSE(fs::exists(spool + "/job.report.json"));

  // No torn entries: both completed cells load as verified hits.
  ResultStore rs(store);
  ResultStore::StoreStat st;
  std::string err;
  ASSERT_TRUE(rs.stat(st, err)) << err;
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.tmp_files, 0u);

  // Restart: byte-identical report, exactly the two stored cells reused.
  ASSERT_EQ(run_cmd(std::string(kBin) + " serve --spool " + spool +
                    " --store " + store + " --once 2>" + tmp.sub("k.err")),
            0);
  std::string ref_bytes;
  std::string got_bytes;
  ASSERT_TRUE(read_file(refspool + "/job.report.json", ref_bytes));
  ASSERT_TRUE(read_file(spool + "/job.report.json", got_bytes));
  EXPECT_EQ(got_bytes, ref_bytes);
  std::string serve_log;
  ASSERT_TRUE(read_file(tmp.sub("k.err"), serve_log));
  EXPECT_NE(serve_log.find("2 hits"), std::string::npos) << serve_log;
}

TEST(ServeCli, StoreGcAndStat) {
  TempDir tmp("gc");
  const std::string req = tmp.sub("req.json");
  const std::string store = tmp.sub("store");
  write_tiny_request(req, {"ecmp", "conga"});

  // tear:0@1 — the first attempt of cell 0 dies between tmp write and
  // rename (orphaning a tmp file); the retry succeeds, so the campaign
  // still completes cleanly.
  ASSERT_EQ(run_cmd("CONGA_CELL_FAULT=tear:0@1 " + std::string(kBin) +
                    " run --campaign " + req + " --supervise --store " +
                    store +
                    " --backoff-base-ms 20 --backoff-cap-ms 50"
                    " >/dev/null 2>/dev/null"),
            0);

  ResultStore rs(store);
  ResultStore::StoreStat st;
  std::string err;
  ASSERT_TRUE(rs.stat(st, err)) << err;
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.tmp_files, 1u);  // the orphan from the torn first attempt

  // stat (CLI): deterministic JSON with per-fingerprint buckets.
  const std::string stat_out = tmp.sub("stat.json");
  ASSERT_EQ(run_cmd(std::string(kBin) + " store stat --store " + store +
                    " >" + stat_out + " 2>/dev/null"),
            0);
  const Json doc = parse_or_die(stat_out);
  EXPECT_EQ(doc.find("schema")->as_string(), "conga-store-stat-v1");
  EXPECT_EQ(doc.find("entries")->as_uint(), 2u);
  EXPECT_EQ(doc.find("tmp_files")->as_uint(), 1u);
  ASSERT_EQ(doc.find("by_fingerprint")->items().size(), 1u);
  EXPECT_GT(doc.find("by_fingerprint")->items()[0].find("entries")->as_uint(),
            0u);

  // A young orphan survives the default age threshold...
  ASSERT_EQ(run_cmd(std::string(kBin) + " store gc --store " + store +
                    " >/dev/null 2>/dev/null"),
            0);
  ASSERT_TRUE(rs.stat(st, err));
  EXPECT_EQ(st.tmp_files, 1u);

  // ...and --tmp-age-seconds 0 reaps it without touching live entries.
  ASSERT_EQ(run_cmd(std::string(kBin) + " store gc --store " + store +
                    " --tmp-age-seconds 0 >/dev/null 2>/dev/null"),
            0);
  ASSERT_TRUE(rs.stat(st, err));
  EXPECT_EQ(st.tmp_files, 0u);
  EXPECT_EQ(st.entries, 2u);

  // --keep-fingerprints current keeps this build's entries...
  ASSERT_EQ(run_cmd(std::string(kBin) + " store gc --store " + store +
                    " --keep-fingerprints current >/dev/null 2>/dev/null"),
            0);
  ASSERT_TRUE(rs.stat(st, err));
  EXPECT_EQ(st.entries, 2u);

  // ...while an unrelated keep list removes them.
  ASSERT_EQ(run_cmd(std::string(kBin) + " store gc --store " + store +
                    " --keep-fingerprints deadbeef >/dev/null 2>/dev/null"),
            0);
  ASSERT_TRUE(rs.stat(st, err));
  EXPECT_EQ(st.entries, 0u);
}

TEST(ServeCli, UnwritableStoreDegradesGracefully) {
  TempDir tmp("degraded");
  const std::string req = tmp.sub("req.json");
  write_tiny_request(req, {"ecmp", "conga"});

  // Reference: the same request without any store.
  const std::string ref_report = tmp.sub("ref.json");
  ASSERT_EQ(run_cmd(std::string(kBin) + " run --campaign " + req +
                    " --supervise --out " + ref_report + " 2>/dev/null"),
            0);

  // A store root nested under a regular file can never be created — the
  // reliable "unwritable" on any uid, including root.
  write_file(tmp.sub("blocker"), "not a directory\n");
  const std::string report = tmp.sub("report.json");
  const std::string stats = tmp.sub("stats.json");
  const std::string errlog = tmp.sub("err.txt");
  ASSERT_EQ(run_cmd(std::string(kBin) + " run --campaign " + req +
                    " --supervise --store " + tmp.sub("blocker") +
                    "/store --out " + report + " --stats-out " + stats +
                    " 2>" + errlog),
            0);

  // Full report, byte-identical to the storeless run; stats carry the
  // degradation; the warning printed once.
  std::string ref_bytes;
  std::string got_bytes;
  ASSERT_TRUE(read_file(ref_report, ref_bytes));
  ASSERT_TRUE(read_file(report, got_bytes));
  EXPECT_EQ(got_bytes, ref_bytes);
  const Json st = parse_or_die(stats);
  EXPECT_EQ(st.find("store")->as_string(), "degraded");
  EXPECT_EQ(st.find("store_writes")->as_uint(), 0u);
  std::string err_text;
  ASSERT_TRUE(read_file(errlog, err_text));
  std::size_t warnings = 0;
  for (std::size_t pos = err_text.find("store degraded");
       pos != std::string::npos;
       pos = err_text.find("store degraded", pos + 1)) {
    ++warnings;
  }
  EXPECT_EQ(warnings, 1u);
}

}  // namespace
}  // namespace conga::campaign
