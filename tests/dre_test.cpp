// Tests for the Discounting Rate Estimator (paper §3.2).
#include <gtest/gtest.h>

#include <cmath>

#include "core/dre.hpp"

namespace conga::core {
namespace {

using sim::microseconds;
using sim::milliseconds;

DreConfig default_cfg() {
  DreConfig cfg;  // Tdre = 20us, alpha = 0.125 -> tau = 160us (paper default)
  return cfg;
}

// At steady input rate R the register ripples within [(1-alpha)Rtau, Rtau];
// tests accept that band plus a little sampling noise.
constexpr double kRippleLo = 0.85;
constexpr double kRippleHi = 1.03;

TEST(Dre, TauIsTdreOverAlpha) {
  DreConfig cfg;
  cfg.t_dre = microseconds(40);
  cfg.alpha = 0.25;
  EXPECT_EQ(cfg.tau(), microseconds(160));
}

TEST(Dre, StartsAtZero) {
  Dre dre(default_cfg(), 10e9);
  EXPECT_EQ(dre.quantized(0), 0);
  EXPECT_DOUBLE_EQ(dre.utilization(0), 0.0);
}

TEST(Dre, TracksSteadyRate) {
  // Feed packets at exactly half the link rate; after several tau the
  // estimate must settle near 0.5 utilization (X ~= R * tau).
  const double rate_bps = 10e9;
  Dre dre(default_cfg(), rate_bps);
  const std::uint32_t pkt = 1500;
  const double half_rate_Bps = rate_bps / 8.0 / 2.0;
  const auto gap = static_cast<sim::TimeNs>(pkt / half_rate_Bps * 1e9);
  sim::TimeNs t = 0;
  for (int i = 0; i < 2000; ++i) {
    dre.add(pkt, t);
    t += gap;
  }
  EXPECT_GT(dre.utilization(t), 0.5 * kRippleLo);
  EXPECT_LT(dre.utilization(t), 0.5 * kRippleHi);
}

TEST(Dre, TracksFullRate) {
  const double rate_bps = 40e9;
  Dre dre(default_cfg(), rate_bps);
  const std::uint32_t pkt = 1500;
  const auto gap =
      static_cast<sim::TimeNs>(pkt * 8.0 / rate_bps * 1e9);
  sim::TimeNs t = 0;
  for (int i = 0; i < 5000; ++i) {
    dre.add(pkt, t);
    t += gap;
  }
  EXPECT_GT(dre.utilization(t), kRippleLo);
  EXPECT_LT(dre.utilization(t), kRippleHi);
  EXPECT_GE(dre.quantized(t), dre.max_metric() - 1);
}

TEST(Dre, RateEstimateMatchesOfferedRate) {
  const double rate_bps = 10e9;
  Dre dre(default_cfg(), rate_bps);
  const std::uint32_t pkt = 9000;
  const double offered = 3e9;  // 3 Gbps
  const auto gap = static_cast<sim::TimeNs>(pkt * 8.0 / offered * 1e9);
  sim::TimeNs t = 0;
  for (int i = 0; i < 3000; ++i) {
    dre.add(pkt, t);
    t += gap;
  }
  // Jumbo packets every 24us vs a 20us decay period: lumpier ripple than the
  // steady-stream cases, so accept a wider band.
  EXPECT_GT(dre.rate_bps(t) / offered, 0.8);
  EXPECT_LT(dre.rate_bps(t) / offered, 1.15);
}

TEST(Dre, DecaysWhenIdle) {
  Dre dre(default_cfg(), 10e9);
  dre.add(100000, 0);
  const double initial = dre.raw_register(microseconds(1));
  EXPECT_GT(initial, 0);
  // After 10 tau of idleness the register should be nearly empty.
  EXPECT_LT(dre.raw_register(microseconds(1600)), initial * 0.01);
  EXPECT_EQ(dre.quantized(milliseconds(10)), 0);
}

TEST(Dre, DecayMatchesClosedForm) {
  DreConfig cfg;
  cfg.t_dre = microseconds(40);
  cfg.alpha = 0.25;
  Dre dre(cfg, 10e9);
  dre.add(1000, microseconds(5));  // within period 0
  // After k complete periods, X = 1000 * (0.75)^k.
  for (int k = 1; k <= 20; ++k) {
    const double expect = 1000.0 * std::pow(0.75, k);
    EXPECT_NEAR(dre.raw_register(microseconds(40) * k + 1), expect, 1e-6)
        << "k=" << k;
  }
}

TEST(Dre, LongIdleShortCircuitsToZero) {
  Dre dre(default_cfg(), 10e9);
  dre.add(1 << 30, 0);
  EXPECT_EQ(dre.raw_register(sim::seconds(10.0)), 0.0);
}

TEST(Dre, RespondsToBurstImmediately) {
  // Unlike a sampled EWMA, the DRE register rises at the instant the burst
  // is transmitted — the property §3.2 calls out.
  Dre dre(default_cfg(), 10e9);
  EXPECT_EQ(dre.quantized(100), 0);
  // One tau worth of line-rate bytes in a single burst.
  const auto burst = static_cast<std::uint32_t>(10e9 / 8 * 160e-6);
  dre.add(burst, 100);
  EXPECT_GE(dre.quantized(100), dre.max_metric() - 1);
}

TEST(Dre, QuantizationBitsRespectQ) {
  for (int q = 1; q <= 6; ++q) {
    DreConfig cfg;
    cfg.q_bits = q;
    Dre dre(cfg, 10e9);
    EXPECT_EQ(dre.max_metric(), (1u << q) - 1);
    // Saturate: metric must clamp at max.
    dre.add(1u << 30, 0);
    EXPECT_EQ(dre.quantized(0), dre.max_metric());
  }
}

TEST(Dre, QuantizedIsMonotoneInUtilization) {
  DreConfig cfg;
  Dre dre(cfg, 10e9);
  std::uint8_t prev = dre.quantized(0);
  for (int i = 0; i < 50; ++i) {
    dre.add(10000, 0);
    const std::uint8_t q = dre.quantized(0);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(Dre, HalfUtilizationQuantizesToMidScale) {
  DreConfig cfg;  // Q = 3 -> metric in 0..7
  Dre dre(cfg, 10e9);
  // Fill the register to exactly half of C * tau.
  const auto half = static_cast<std::uint32_t>(10e9 / 8 * 160e-6 / 2);
  dre.add(half, 0);
  const int q = dre.quantized(0);
  EXPECT_GE(q, 3);
  EXPECT_LE(q, 4);
}

TEST(Dre, UtilizationCanExceedOneDuringBurst) {
  Dre dre(default_cfg(), 10e9);
  const auto twice = static_cast<std::uint32_t>(2 * 10e9 / 8 * 160e-6);
  dre.add(twice, 0);
  EXPECT_GT(dre.utilization(0), 1.5);
  EXPECT_EQ(dre.quantized(0), dre.max_metric());  // clamped
}

TEST(Dre, IndependentOfAbsoluteStartTime) {
  Dre a(default_cfg(), 10e9), b(default_cfg(), 10e9);
  a.add(5000, microseconds(40) * 1000 + 3);
  b.add(5000, 3);
  EXPECT_DOUBLE_EQ(a.utilization(microseconds(40) * 1000 + 10),
                   b.utilization(10));
}

TEST(Dre, SmallerTauReactsFaster) {
  DreConfig fast;
  fast.t_dre = microseconds(10);
  fast.alpha = 0.25;  // tau = 40us
  DreConfig slow;
  slow.t_dre = microseconds(40);
  slow.alpha = 0.1;  // tau = 400us
  Dre f(fast, 10e9), s(slow, 10e9);
  f.add(100000, 0);
  s.add(100000, 0);
  // After 100us of idleness the fast DRE decays much further.
  EXPECT_LT(f.raw_register(microseconds(100)),
            s.raw_register(microseconds(100)) * 0.5);
}

}  // namespace
}  // namespace conga::core
